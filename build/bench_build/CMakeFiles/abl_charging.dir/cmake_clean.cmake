file(REMOVE_RECURSE
  "../bench/abl_charging"
  "../bench/abl_charging.pdb"
  "CMakeFiles/abl_charging.dir/abl_charging.cpp.o"
  "CMakeFiles/abl_charging.dir/abl_charging.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_charging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
