# Empty dependencies file for abl_charging.
# This may be replaced when dependencies are built.
