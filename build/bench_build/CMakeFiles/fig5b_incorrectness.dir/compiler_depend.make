# Empty compiler generated dependencies file for fig5b_incorrectness.
# This may be replaced when dependencies are built.
