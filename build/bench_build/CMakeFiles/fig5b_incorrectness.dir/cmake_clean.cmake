file(REMOVE_RECURSE
  "../bench/fig5b_incorrectness"
  "../bench/fig5b_incorrectness.pdb"
  "CMakeFiles/fig5b_incorrectness.dir/fig5b_incorrectness.cpp.o"
  "CMakeFiles/fig5b_incorrectness.dir/fig5b_incorrectness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_incorrectness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
