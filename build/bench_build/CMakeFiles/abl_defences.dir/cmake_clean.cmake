file(REMOVE_RECURSE
  "../bench/abl_defences"
  "../bench/abl_defences.pdb"
  "CMakeFiles/abl_defences.dir/abl_defences.cpp.o"
  "CMakeFiles/abl_defences.dir/abl_defences.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_defences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
