# Empty compiler generated dependencies file for abl_defences.
# This may be replaced when dependencies are built.
