file(REMOVE_RECURSE
  "../bench/abl_paillier"
  "../bench/abl_paillier.pdb"
  "CMakeFiles/abl_paillier.dir/abl_paillier.cpp.o"
  "CMakeFiles/abl_paillier.dir/abl_paillier.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_paillier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
