# Empty dependencies file for abl_paillier.
# This may be replaced when dependencies are built.
