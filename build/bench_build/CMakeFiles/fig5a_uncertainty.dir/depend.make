# Empty dependencies file for fig5a_uncertainty.
# This may be replaced when dependencies are built.
