file(REMOVE_RECURSE
  "../bench/fig5a_uncertainty"
  "../bench/fig5a_uncertainty.pdb"
  "CMakeFiles/fig5a_uncertainty.dir/fig5a_uncertainty.cpp.o"
  "CMakeFiles/fig5a_uncertainty.dir/fig5a_uncertainty.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_uncertainty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
