# Empty compiler generated dependencies file for tab_theorems.
# This may be replaced when dependencies are built.
