file(REMOVE_RECURSE
  "../bench/tab_theorems"
  "../bench/tab_theorems.pdb"
  "CMakeFiles/tab_theorems.dir/tab_theorems.cpp.o"
  "CMakeFiles/tab_theorems.dir/tab_theorems.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_theorems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
