file(REMOVE_RECURSE
  "../bench/fig4b_attack_success"
  "../bench/fig4b_attack_success.pdb"
  "CMakeFiles/fig4b_attack_success.dir/fig4b_attack_success.cpp.o"
  "CMakeFiles/fig4b_attack_success.dir/fig4b_attack_success.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_attack_success.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
