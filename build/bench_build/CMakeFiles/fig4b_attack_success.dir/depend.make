# Empty dependencies file for fig4b_attack_success.
# This may be replaced when dependencies are built.
