file(REMOVE_RECURSE
  "../bench/tab_comm_cost"
  "../bench/tab_comm_cost.pdb"
  "CMakeFiles/tab_comm_cost.dir/tab_comm_cost.cpp.o"
  "CMakeFiles/tab_comm_cost.dir/tab_comm_cost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_comm_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
