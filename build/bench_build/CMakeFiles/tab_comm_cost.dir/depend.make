# Empty dependencies file for tab_comm_cost.
# This may be replaced when dependencies are built.
