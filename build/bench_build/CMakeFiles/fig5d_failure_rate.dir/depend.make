# Empty dependencies file for fig5d_failure_rate.
# This may be replaced when dependencies are built.
