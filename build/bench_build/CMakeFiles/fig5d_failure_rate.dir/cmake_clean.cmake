file(REMOVE_RECURSE
  "../bench/fig5d_failure_rate"
  "../bench/fig5d_failure_rate.pdb"
  "CMakeFiles/fig5d_failure_rate.dir/fig5d_failure_rate.cpp.o"
  "CMakeFiles/fig5d_failure_rate.dir/fig5d_failure_rate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5d_failure_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
