# Empty compiler generated dependencies file for abl_id_mixing.
# This may be replaced when dependencies are built.
