file(REMOVE_RECURSE
  "../bench/abl_id_mixing"
  "../bench/abl_id_mixing.pdb"
  "CMakeFiles/abl_id_mixing.dir/abl_id_mixing.cpp.o"
  "CMakeFiles/abl_id_mixing.dir/abl_id_mixing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_id_mixing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
