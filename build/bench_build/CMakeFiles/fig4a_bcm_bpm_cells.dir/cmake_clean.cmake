file(REMOVE_RECURSE
  "../bench/fig4a_bcm_bpm_cells"
  "../bench/fig4a_bcm_bpm_cells.pdb"
  "CMakeFiles/fig4a_bcm_bpm_cells.dir/fig4a_bcm_bpm_cells.cpp.o"
  "CMakeFiles/fig4a_bcm_bpm_cells.dir/fig4a_bcm_bpm_cells.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_bcm_bpm_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
