# Empty compiler generated dependencies file for fig4a_bcm_bpm_cells.
# This may be replaced when dependencies are built.
