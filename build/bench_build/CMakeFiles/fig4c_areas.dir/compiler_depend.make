# Empty compiler generated dependencies file for fig4c_areas.
# This may be replaced when dependencies are built.
