file(REMOVE_RECURSE
  "../bench/fig4c_areas"
  "../bench/fig4c_areas.pdb"
  "CMakeFiles/fig4c_areas.dir/fig4c_areas.cpp.o"
  "CMakeFiles/fig4c_areas.dir/fig4c_areas.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4c_areas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
