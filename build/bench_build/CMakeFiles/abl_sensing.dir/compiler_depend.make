# Empty compiler generated dependencies file for abl_sensing.
# This may be replaced when dependencies are built.
