file(REMOVE_RECURSE
  "../bench/abl_sensing"
  "../bench/abl_sensing.pdb"
  "CMakeFiles/abl_sensing.dir/abl_sensing.cpp.o"
  "CMakeFiles/abl_sensing.dir/abl_sensing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
