file(REMOVE_RECURSE
  "../bench/abl_allocation"
  "../bench/abl_allocation.pdb"
  "CMakeFiles/abl_allocation.dir/abl_allocation.cpp.o"
  "CMakeFiles/abl_allocation.dir/abl_allocation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
