# Empty compiler generated dependencies file for abl_cloaking.
# This may be replaced when dependencies are built.
