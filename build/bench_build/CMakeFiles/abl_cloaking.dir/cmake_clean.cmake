file(REMOVE_RECURSE
  "../bench/abl_cloaking"
  "../bench/abl_cloaking.pdb"
  "CMakeFiles/abl_cloaking.dir/abl_cloaking.cpp.o"
  "CMakeFiles/abl_cloaking.dir/abl_cloaking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cloaking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
