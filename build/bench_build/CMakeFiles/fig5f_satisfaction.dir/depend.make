# Empty dependencies file for fig5f_satisfaction.
# This may be replaced when dependencies are built.
