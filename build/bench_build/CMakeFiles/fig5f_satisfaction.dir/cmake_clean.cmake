file(REMOVE_RECURSE
  "../bench/fig5f_satisfaction"
  "../bench/fig5f_satisfaction.pdb"
  "CMakeFiles/fig5f_satisfaction.dir/fig5f_satisfaction.cpp.o"
  "CMakeFiles/fig5f_satisfaction.dir/fig5f_satisfaction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5f_satisfaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
