file(REMOVE_RECURSE
  "../bench/fig5e_winning_bids"
  "../bench/fig5e_winning_bids.pdb"
  "CMakeFiles/fig5e_winning_bids.dir/fig5e_winning_bids.cpp.o"
  "CMakeFiles/fig5e_winning_bids.dir/fig5e_winning_bids.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5e_winning_bids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
