# Empty compiler generated dependencies file for fig5e_winning_bids.
# This may be replaced when dependencies are built.
