file(REMOVE_RECURSE
  "../bench/fig5c_possible_cells"
  "../bench/fig5c_possible_cells.pdb"
  "CMakeFiles/fig5c_possible_cells.dir/fig5c_possible_cells.cpp.o"
  "CMakeFiles/fig5c_possible_cells.dir/fig5c_possible_cells.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5c_possible_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
