# Empty compiler generated dependencies file for fig5c_possible_cells.
# This may be replaced when dependencies are built.
