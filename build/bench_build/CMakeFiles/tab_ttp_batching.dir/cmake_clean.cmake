file(REMOVE_RECURSE
  "../bench/tab_ttp_batching"
  "../bench/tab_ttp_batching.pdb"
  "CMakeFiles/tab_ttp_batching.dir/tab_ttp_batching.cpp.o"
  "CMakeFiles/tab_ttp_batching.dir/tab_ttp_batching.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_ttp_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
