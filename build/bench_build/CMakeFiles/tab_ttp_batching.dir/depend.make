# Empty dependencies file for tab_ttp_batching.
# This may be replaced when dependencies are built.
