file(REMOVE_RECURSE
  "CMakeFiles/bid_matrix_test.dir/bid_matrix_test.cpp.o"
  "CMakeFiles/bid_matrix_test.dir/bid_matrix_test.cpp.o.d"
  "bid_matrix_test"
  "bid_matrix_test.pdb"
  "bid_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bid_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
