file(REMOVE_RECURSE
  "CMakeFiles/whitespace_db_test.dir/whitespace_db_test.cpp.o"
  "CMakeFiles/whitespace_db_test.dir/whitespace_db_test.cpp.o.d"
  "whitespace_db_test"
  "whitespace_db_test.pdb"
  "whitespace_db_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whitespace_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
