# Empty compiler generated dependencies file for whitespace_db_test.
# This may be replaced when dependencies are built.
