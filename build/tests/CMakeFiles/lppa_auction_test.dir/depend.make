# Empty dependencies file for lppa_auction_test.
# This may be replaced when dependencies are built.
