file(REMOVE_RECURSE
  "CMakeFiles/lppa_auction_test.dir/lppa_auction_test.cpp.o"
  "CMakeFiles/lppa_auction_test.dir/lppa_auction_test.cpp.o.d"
  "lppa_auction_test"
  "lppa_auction_test.pdb"
  "lppa_auction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lppa_auction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
