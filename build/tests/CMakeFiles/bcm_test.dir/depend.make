# Empty dependencies file for bcm_test.
# This may be replaced when dependencies are built.
