file(REMOVE_RECURSE
  "CMakeFiles/bcm_test.dir/bcm_test.cpp.o"
  "CMakeFiles/bcm_test.dir/bcm_test.cpp.o.d"
  "bcm_test"
  "bcm_test.pdb"
  "bcm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
