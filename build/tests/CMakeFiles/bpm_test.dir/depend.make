# Empty dependencies file for bpm_test.
# This may be replaced when dependencies are built.
