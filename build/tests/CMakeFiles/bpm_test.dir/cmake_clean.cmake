file(REMOVE_RECURSE
  "CMakeFiles/bpm_test.dir/bpm_test.cpp.o"
  "CMakeFiles/bpm_test.dir/bpm_test.cpp.o.d"
  "bpm_test"
  "bpm_test.pdb"
  "bpm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
