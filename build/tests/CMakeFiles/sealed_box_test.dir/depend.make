# Empty dependencies file for sealed_box_test.
# This may be replaced when dependencies are built.
