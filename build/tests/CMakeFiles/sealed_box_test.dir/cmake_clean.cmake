file(REMOVE_RECURSE
  "CMakeFiles/sealed_box_test.dir/sealed_box_test.cpp.o"
  "CMakeFiles/sealed_box_test.dir/sealed_box_test.cpp.o.d"
  "sealed_box_test"
  "sealed_box_test.pdb"
  "sealed_box_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sealed_box_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
