file(REMOVE_RECURSE
  "CMakeFiles/proto_session_test.dir/proto_session_test.cpp.o"
  "CMakeFiles/proto_session_test.dir/proto_session_test.cpp.o.d"
  "proto_session_test"
  "proto_session_test.pdb"
  "proto_session_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proto_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
