# Empty compiler generated dependencies file for keys_test.
# This may be replaced when dependencies are built.
