file(REMOVE_RECURSE
  "CMakeFiles/attack_metrics_test.dir/attack_metrics_test.cpp.o"
  "CMakeFiles/attack_metrics_test.dir/attack_metrics_test.cpp.o.d"
  "attack_metrics_test"
  "attack_metrics_test.pdb"
  "attack_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
