# Empty dependencies file for attack_metrics_test.
# This may be replaced when dependencies are built.
