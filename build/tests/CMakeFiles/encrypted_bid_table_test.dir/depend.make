# Empty dependencies file for encrypted_bid_table_test.
# This may be replaced when dependencies are built.
