file(REMOVE_RECURSE
  "CMakeFiles/encrypted_bid_table_test.dir/encrypted_bid_table_test.cpp.o"
  "CMakeFiles/encrypted_bid_table_test.dir/encrypted_bid_table_test.cpp.o.d"
  "encrypted_bid_table_test"
  "encrypted_bid_table_test.pdb"
  "encrypted_bid_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encrypted_bid_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
