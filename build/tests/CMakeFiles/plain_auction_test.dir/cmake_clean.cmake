file(REMOVE_RECURSE
  "CMakeFiles/plain_auction_test.dir/plain_auction_test.cpp.o"
  "CMakeFiles/plain_auction_test.dir/plain_auction_test.cpp.o.d"
  "plain_auction_test"
  "plain_auction_test.pdb"
  "plain_auction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plain_auction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
