# Empty compiler generated dependencies file for plain_auction_test.
# This may be replaced when dependencies are built.
