# Empty compiler generated dependencies file for pathloss_test.
# This may be replaced when dependencies are built.
