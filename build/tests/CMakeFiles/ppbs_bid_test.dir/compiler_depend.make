# Empty compiler generated dependencies file for ppbs_bid_test.
# This may be replaced when dependencies are built.
