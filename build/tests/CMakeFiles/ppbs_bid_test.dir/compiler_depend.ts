# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ppbs_bid_test.
