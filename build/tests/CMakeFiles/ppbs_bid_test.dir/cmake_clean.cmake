file(REMOVE_RECURSE
  "CMakeFiles/ppbs_bid_test.dir/ppbs_bid_test.cpp.o"
  "CMakeFiles/ppbs_bid_test.dir/ppbs_bid_test.cpp.o.d"
  "ppbs_bid_test"
  "ppbs_bid_test.pdb"
  "ppbs_bid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppbs_bid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
