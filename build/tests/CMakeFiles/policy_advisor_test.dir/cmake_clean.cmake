file(REMOVE_RECURSE
  "CMakeFiles/policy_advisor_test.dir/policy_advisor_test.cpp.o"
  "CMakeFiles/policy_advisor_test.dir/policy_advisor_test.cpp.o.d"
  "policy_advisor_test"
  "policy_advisor_test.pdb"
  "policy_advisor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_advisor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
