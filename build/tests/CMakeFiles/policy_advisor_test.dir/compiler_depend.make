# Empty compiler generated dependencies file for policy_advisor_test.
# This may be replaced when dependencies are built.
