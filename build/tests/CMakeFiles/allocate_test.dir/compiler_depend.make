# Empty compiler generated dependencies file for allocate_test.
# This may be replaced when dependencies are built.
