file(REMOVE_RECURSE
  "CMakeFiles/allocate_test.dir/allocate_test.cpp.o"
  "CMakeFiles/allocate_test.dir/allocate_test.cpp.o.d"
  "allocate_test"
  "allocate_test.pdb"
  "allocate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allocate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
