# Empty compiler generated dependencies file for ppbs_location_test.
# This may be replaced when dependencies are built.
