file(REMOVE_RECURSE
  "CMakeFiles/ppbs_location_test.dir/ppbs_location_test.cpp.o"
  "CMakeFiles/ppbs_location_test.dir/ppbs_location_test.cpp.o.d"
  "ppbs_location_test"
  "ppbs_location_test.pdb"
  "ppbs_location_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppbs_location_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
