
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/multi_round_test.cpp" "tests/CMakeFiles/multi_round_test.dir/multi_round_test.cpp.o" "gcc" "tests/CMakeFiles/multi_round_test.dir/multi_round_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/lppa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/lppa_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lppa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/auction/CMakeFiles/lppa_auction.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/lppa_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/prefix/CMakeFiles/lppa_prefix.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/lppa_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lppa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
