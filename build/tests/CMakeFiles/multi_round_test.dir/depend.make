# Empty dependencies file for multi_round_test.
# This may be replaced when dependencies are built.
