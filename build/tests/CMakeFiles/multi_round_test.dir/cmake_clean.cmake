file(REMOVE_RECURSE
  "CMakeFiles/multi_round_test.dir/multi_round_test.cpp.o"
  "CMakeFiles/multi_round_test.dir/multi_round_test.cpp.o.d"
  "multi_round_test"
  "multi_round_test.pdb"
  "multi_round_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_round_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
