file(REMOVE_RECURSE
  "CMakeFiles/hashed_set_test.dir/hashed_set_test.cpp.o"
  "CMakeFiles/hashed_set_test.dir/hashed_set_test.cpp.o.d"
  "hashed_set_test"
  "hashed_set_test.pdb"
  "hashed_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hashed_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
