# Empty dependencies file for cellset_test.
# This may be replaced when dependencies are built.
