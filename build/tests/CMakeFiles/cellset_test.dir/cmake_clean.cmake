file(REMOVE_RECURSE
  "CMakeFiles/cellset_test.dir/cellset_test.cpp.o"
  "CMakeFiles/cellset_test.dir/cellset_test.cpp.o.d"
  "cellset_test"
  "cellset_test.pdb"
  "cellset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
