# Empty dependencies file for ttp_test.
# This may be replaced when dependencies are built.
