file(REMOVE_RECURSE
  "CMakeFiles/ttp_test.dir/ttp_test.cpp.o"
  "CMakeFiles/ttp_test.dir/ttp_test.cpp.o.d"
  "ttp_test"
  "ttp_test.pdb"
  "ttp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
