# Empty dependencies file for synthetic_fcc_test.
# This may be replaced when dependencies are built.
