file(REMOVE_RECURSE
  "CMakeFiles/synthetic_fcc_test.dir/synthetic_fcc_test.cpp.o"
  "CMakeFiles/synthetic_fcc_test.dir/synthetic_fcc_test.cpp.o.d"
  "synthetic_fcc_test"
  "synthetic_fcc_test.pdb"
  "synthetic_fcc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_fcc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
