file(REMOVE_RECURSE
  "CMakeFiles/proto_bus_test.dir/proto_bus_test.cpp.o"
  "CMakeFiles/proto_bus_test.dir/proto_bus_test.cpp.o.d"
  "proto_bus_test"
  "proto_bus_test.pdb"
  "proto_bus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proto_bus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
