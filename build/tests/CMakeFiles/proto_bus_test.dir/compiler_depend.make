# Empty compiler generated dependencies file for proto_bus_test.
# This may be replaced when dependencies are built.
