file(REMOVE_RECURSE
  "../examples/tradeoff_explorer"
  "../examples/tradeoff_explorer.pdb"
  "CMakeFiles/tradeoff_explorer.dir/tradeoff_explorer.cpp.o"
  "CMakeFiles/tradeoff_explorer.dir/tradeoff_explorer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tradeoff_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
