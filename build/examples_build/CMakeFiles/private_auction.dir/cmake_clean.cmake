file(REMOVE_RECURSE
  "../examples/private_auction"
  "../examples/private_auction.pdb"
  "CMakeFiles/private_auction.dir/private_auction.cpp.o"
  "CMakeFiles/private_auction.dir/private_auction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_auction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
