# Empty compiler generated dependencies file for wire_session.
# This may be replaced when dependencies are built.
