file(REMOVE_RECURSE
  "../examples/wire_session"
  "../examples/wire_session.pdb"
  "CMakeFiles/wire_session.dir/wire_session.cpp.o"
  "CMakeFiles/wire_session.dir/wire_session.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
