# Empty dependencies file for lppa_cli.
# This may be replaced when dependencies are built.
