file(REMOVE_RECURSE
  "../examples/lppa_cli"
  "../examples/lppa_cli.pdb"
  "CMakeFiles/lppa_cli.dir/lppa_cli.cpp.o"
  "CMakeFiles/lppa_cli.dir/lppa_cli.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lppa_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
