file(REMOVE_RECURSE
  "CMakeFiles/lppa_sim.dir/cloaking.cpp.o"
  "CMakeFiles/lppa_sim.dir/cloaking.cpp.o.d"
  "CMakeFiles/lppa_sim.dir/experiments.cpp.o"
  "CMakeFiles/lppa_sim.dir/experiments.cpp.o.d"
  "CMakeFiles/lppa_sim.dir/multi_round.cpp.o"
  "CMakeFiles/lppa_sim.dir/multi_round.cpp.o.d"
  "CMakeFiles/lppa_sim.dir/scenario.cpp.o"
  "CMakeFiles/lppa_sim.dir/scenario.cpp.o.d"
  "liblppa_sim.a"
  "liblppa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lppa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
