# Empty compiler generated dependencies file for lppa_sim.
# This may be replaced when dependencies are built.
