file(REMOVE_RECURSE
  "liblppa_sim.a"
)
