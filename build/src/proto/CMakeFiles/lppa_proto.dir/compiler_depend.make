# Empty compiler generated dependencies file for lppa_proto.
# This may be replaced when dependencies are built.
