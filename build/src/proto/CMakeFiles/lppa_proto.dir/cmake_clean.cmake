file(REMOVE_RECURSE
  "CMakeFiles/lppa_proto.dir/bus.cpp.o"
  "CMakeFiles/lppa_proto.dir/bus.cpp.o.d"
  "CMakeFiles/lppa_proto.dir/messages.cpp.o"
  "CMakeFiles/lppa_proto.dir/messages.cpp.o.d"
  "CMakeFiles/lppa_proto.dir/parties.cpp.o"
  "CMakeFiles/lppa_proto.dir/parties.cpp.o.d"
  "CMakeFiles/lppa_proto.dir/session.cpp.o"
  "CMakeFiles/lppa_proto.dir/session.cpp.o.d"
  "liblppa_proto.a"
  "liblppa_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lppa_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
