file(REMOVE_RECURSE
  "liblppa_proto.a"
)
