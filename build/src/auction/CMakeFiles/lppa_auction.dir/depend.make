# Empty dependencies file for lppa_auction.
# This may be replaced when dependencies are built.
