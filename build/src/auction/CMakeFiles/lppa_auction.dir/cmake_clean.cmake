file(REMOVE_RECURSE
  "CMakeFiles/lppa_auction.dir/allocate.cpp.o"
  "CMakeFiles/lppa_auction.dir/allocate.cpp.o.d"
  "CMakeFiles/lppa_auction.dir/bid_matrix.cpp.o"
  "CMakeFiles/lppa_auction.dir/bid_matrix.cpp.o.d"
  "CMakeFiles/lppa_auction.dir/conflict.cpp.o"
  "CMakeFiles/lppa_auction.dir/conflict.cpp.o.d"
  "CMakeFiles/lppa_auction.dir/plain_auction.cpp.o"
  "CMakeFiles/lppa_auction.dir/plain_auction.cpp.o.d"
  "liblppa_auction.a"
  "liblppa_auction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lppa_auction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
