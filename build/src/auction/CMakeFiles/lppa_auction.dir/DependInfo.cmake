
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/auction/allocate.cpp" "src/auction/CMakeFiles/lppa_auction.dir/allocate.cpp.o" "gcc" "src/auction/CMakeFiles/lppa_auction.dir/allocate.cpp.o.d"
  "/root/repo/src/auction/bid_matrix.cpp" "src/auction/CMakeFiles/lppa_auction.dir/bid_matrix.cpp.o" "gcc" "src/auction/CMakeFiles/lppa_auction.dir/bid_matrix.cpp.o.d"
  "/root/repo/src/auction/conflict.cpp" "src/auction/CMakeFiles/lppa_auction.dir/conflict.cpp.o" "gcc" "src/auction/CMakeFiles/lppa_auction.dir/conflict.cpp.o.d"
  "/root/repo/src/auction/plain_auction.cpp" "src/auction/CMakeFiles/lppa_auction.dir/plain_auction.cpp.o" "gcc" "src/auction/CMakeFiles/lppa_auction.dir/plain_auction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lppa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/lppa_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
