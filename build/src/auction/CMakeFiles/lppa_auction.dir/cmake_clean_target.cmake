file(REMOVE_RECURSE
  "liblppa_auction.a"
)
