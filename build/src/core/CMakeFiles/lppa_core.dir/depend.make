# Empty dependencies file for lppa_core.
# This may be replaced when dependencies are built.
