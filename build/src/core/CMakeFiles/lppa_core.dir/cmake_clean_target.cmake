file(REMOVE_RECURSE
  "liblppa_core.a"
)
