
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adversary.cpp" "src/core/CMakeFiles/lppa_core.dir/adversary.cpp.o" "gcc" "src/core/CMakeFiles/lppa_core.dir/adversary.cpp.o.d"
  "/root/repo/src/core/attack_metrics.cpp" "src/core/CMakeFiles/lppa_core.dir/attack_metrics.cpp.o" "gcc" "src/core/CMakeFiles/lppa_core.dir/attack_metrics.cpp.o.d"
  "/root/repo/src/core/bcm.cpp" "src/core/CMakeFiles/lppa_core.dir/bcm.cpp.o" "gcc" "src/core/CMakeFiles/lppa_core.dir/bcm.cpp.o.d"
  "/root/repo/src/core/bpm.cpp" "src/core/CMakeFiles/lppa_core.dir/bpm.cpp.o" "gcc" "src/core/CMakeFiles/lppa_core.dir/bpm.cpp.o.d"
  "/root/repo/src/core/encrypted_bid_table.cpp" "src/core/CMakeFiles/lppa_core.dir/encrypted_bid_table.cpp.o" "gcc" "src/core/CMakeFiles/lppa_core.dir/encrypted_bid_table.cpp.o.d"
  "/root/repo/src/core/lppa_auction.cpp" "src/core/CMakeFiles/lppa_core.dir/lppa_auction.cpp.o" "gcc" "src/core/CMakeFiles/lppa_core.dir/lppa_auction.cpp.o.d"
  "/root/repo/src/core/policy_advisor.cpp" "src/core/CMakeFiles/lppa_core.dir/policy_advisor.cpp.o" "gcc" "src/core/CMakeFiles/lppa_core.dir/policy_advisor.cpp.o.d"
  "/root/repo/src/core/ppbs_bid.cpp" "src/core/CMakeFiles/lppa_core.dir/ppbs_bid.cpp.o" "gcc" "src/core/CMakeFiles/lppa_core.dir/ppbs_bid.cpp.o.d"
  "/root/repo/src/core/ppbs_location.cpp" "src/core/CMakeFiles/lppa_core.dir/ppbs_location.cpp.o" "gcc" "src/core/CMakeFiles/lppa_core.dir/ppbs_location.cpp.o.d"
  "/root/repo/src/core/theorems.cpp" "src/core/CMakeFiles/lppa_core.dir/theorems.cpp.o" "gcc" "src/core/CMakeFiles/lppa_core.dir/theorems.cpp.o.d"
  "/root/repo/src/core/ttp.cpp" "src/core/CMakeFiles/lppa_core.dir/ttp.cpp.o" "gcc" "src/core/CMakeFiles/lppa_core.dir/ttp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lppa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/lppa_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/prefix/CMakeFiles/lppa_prefix.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/lppa_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/auction/CMakeFiles/lppa_auction.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
