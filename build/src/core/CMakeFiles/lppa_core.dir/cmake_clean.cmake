file(REMOVE_RECURSE
  "CMakeFiles/lppa_core.dir/adversary.cpp.o"
  "CMakeFiles/lppa_core.dir/adversary.cpp.o.d"
  "CMakeFiles/lppa_core.dir/attack_metrics.cpp.o"
  "CMakeFiles/lppa_core.dir/attack_metrics.cpp.o.d"
  "CMakeFiles/lppa_core.dir/bcm.cpp.o"
  "CMakeFiles/lppa_core.dir/bcm.cpp.o.d"
  "CMakeFiles/lppa_core.dir/bpm.cpp.o"
  "CMakeFiles/lppa_core.dir/bpm.cpp.o.d"
  "CMakeFiles/lppa_core.dir/encrypted_bid_table.cpp.o"
  "CMakeFiles/lppa_core.dir/encrypted_bid_table.cpp.o.d"
  "CMakeFiles/lppa_core.dir/lppa_auction.cpp.o"
  "CMakeFiles/lppa_core.dir/lppa_auction.cpp.o.d"
  "CMakeFiles/lppa_core.dir/policy_advisor.cpp.o"
  "CMakeFiles/lppa_core.dir/policy_advisor.cpp.o.d"
  "CMakeFiles/lppa_core.dir/ppbs_bid.cpp.o"
  "CMakeFiles/lppa_core.dir/ppbs_bid.cpp.o.d"
  "CMakeFiles/lppa_core.dir/ppbs_location.cpp.o"
  "CMakeFiles/lppa_core.dir/ppbs_location.cpp.o.d"
  "CMakeFiles/lppa_core.dir/theorems.cpp.o"
  "CMakeFiles/lppa_core.dir/theorems.cpp.o.d"
  "CMakeFiles/lppa_core.dir/ttp.cpp.o"
  "CMakeFiles/lppa_core.dir/ttp.cpp.o.d"
  "liblppa_core.a"
  "liblppa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lppa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
