file(REMOVE_RECURSE
  "liblppa_common.a"
)
