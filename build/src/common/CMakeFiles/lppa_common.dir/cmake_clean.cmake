file(REMOVE_RECURSE
  "CMakeFiles/lppa_common.dir/bytes.cpp.o"
  "CMakeFiles/lppa_common.dir/bytes.cpp.o.d"
  "CMakeFiles/lppa_common.dir/cellset.cpp.o"
  "CMakeFiles/lppa_common.dir/cellset.cpp.o.d"
  "CMakeFiles/lppa_common.dir/math_util.cpp.o"
  "CMakeFiles/lppa_common.dir/math_util.cpp.o.d"
  "CMakeFiles/lppa_common.dir/rng.cpp.o"
  "CMakeFiles/lppa_common.dir/rng.cpp.o.d"
  "CMakeFiles/lppa_common.dir/table.cpp.o"
  "CMakeFiles/lppa_common.dir/table.cpp.o.d"
  "liblppa_common.a"
  "liblppa_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lppa_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
