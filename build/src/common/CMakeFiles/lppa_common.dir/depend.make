# Empty dependencies file for lppa_common.
# This may be replaced when dependencies are built.
