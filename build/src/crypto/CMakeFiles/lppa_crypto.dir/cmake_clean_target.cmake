file(REMOVE_RECURSE
  "liblppa_crypto.a"
)
