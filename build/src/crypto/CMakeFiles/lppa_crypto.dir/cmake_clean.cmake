file(REMOVE_RECURSE
  "CMakeFiles/lppa_crypto.dir/aes.cpp.o"
  "CMakeFiles/lppa_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/lppa_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/lppa_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/lppa_crypto.dir/hmac.cpp.o"
  "CMakeFiles/lppa_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/lppa_crypto.dir/keys.cpp.o"
  "CMakeFiles/lppa_crypto.dir/keys.cpp.o.d"
  "CMakeFiles/lppa_crypto.dir/paillier.cpp.o"
  "CMakeFiles/lppa_crypto.dir/paillier.cpp.o.d"
  "CMakeFiles/lppa_crypto.dir/sealed_box.cpp.o"
  "CMakeFiles/lppa_crypto.dir/sealed_box.cpp.o.d"
  "CMakeFiles/lppa_crypto.dir/sha256.cpp.o"
  "CMakeFiles/lppa_crypto.dir/sha256.cpp.o.d"
  "liblppa_crypto.a"
  "liblppa_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lppa_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
