# Empty compiler generated dependencies file for lppa_crypto.
# This may be replaced when dependencies are built.
