# Empty dependencies file for lppa_prefix.
# This may be replaced when dependencies are built.
