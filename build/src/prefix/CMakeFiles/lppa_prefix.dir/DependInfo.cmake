
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prefix/hashed_set.cpp" "src/prefix/CMakeFiles/lppa_prefix.dir/hashed_set.cpp.o" "gcc" "src/prefix/CMakeFiles/lppa_prefix.dir/hashed_set.cpp.o.d"
  "/root/repo/src/prefix/prefix.cpp" "src/prefix/CMakeFiles/lppa_prefix.dir/prefix.cpp.o" "gcc" "src/prefix/CMakeFiles/lppa_prefix.dir/prefix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lppa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/lppa_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
