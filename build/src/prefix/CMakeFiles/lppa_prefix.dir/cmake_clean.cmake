file(REMOVE_RECURSE
  "CMakeFiles/lppa_prefix.dir/hashed_set.cpp.o"
  "CMakeFiles/lppa_prefix.dir/hashed_set.cpp.o.d"
  "CMakeFiles/lppa_prefix.dir/prefix.cpp.o"
  "CMakeFiles/lppa_prefix.dir/prefix.cpp.o.d"
  "liblppa_prefix.a"
  "liblppa_prefix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lppa_prefix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
