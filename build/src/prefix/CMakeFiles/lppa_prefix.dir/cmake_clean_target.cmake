file(REMOVE_RECURSE
  "liblppa_prefix.a"
)
