# Empty dependencies file for lppa_geo.
# This may be replaced when dependencies are built.
