file(REMOVE_RECURSE
  "liblppa_geo.a"
)
