file(REMOVE_RECURSE
  "CMakeFiles/lppa_geo.dir/coverage.cpp.o"
  "CMakeFiles/lppa_geo.dir/coverage.cpp.o.d"
  "CMakeFiles/lppa_geo.dir/grid.cpp.o"
  "CMakeFiles/lppa_geo.dir/grid.cpp.o.d"
  "CMakeFiles/lppa_geo.dir/pathloss.cpp.o"
  "CMakeFiles/lppa_geo.dir/pathloss.cpp.o.d"
  "CMakeFiles/lppa_geo.dir/render.cpp.o"
  "CMakeFiles/lppa_geo.dir/render.cpp.o.d"
  "CMakeFiles/lppa_geo.dir/sensing.cpp.o"
  "CMakeFiles/lppa_geo.dir/sensing.cpp.o.d"
  "CMakeFiles/lppa_geo.dir/synthetic_fcc.cpp.o"
  "CMakeFiles/lppa_geo.dir/synthetic_fcc.cpp.o.d"
  "CMakeFiles/lppa_geo.dir/whitespace_db.cpp.o"
  "CMakeFiles/lppa_geo.dir/whitespace_db.cpp.o.d"
  "liblppa_geo.a"
  "liblppa_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lppa_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
