
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/coverage.cpp" "src/geo/CMakeFiles/lppa_geo.dir/coverage.cpp.o" "gcc" "src/geo/CMakeFiles/lppa_geo.dir/coverage.cpp.o.d"
  "/root/repo/src/geo/grid.cpp" "src/geo/CMakeFiles/lppa_geo.dir/grid.cpp.o" "gcc" "src/geo/CMakeFiles/lppa_geo.dir/grid.cpp.o.d"
  "/root/repo/src/geo/pathloss.cpp" "src/geo/CMakeFiles/lppa_geo.dir/pathloss.cpp.o" "gcc" "src/geo/CMakeFiles/lppa_geo.dir/pathloss.cpp.o.d"
  "/root/repo/src/geo/render.cpp" "src/geo/CMakeFiles/lppa_geo.dir/render.cpp.o" "gcc" "src/geo/CMakeFiles/lppa_geo.dir/render.cpp.o.d"
  "/root/repo/src/geo/sensing.cpp" "src/geo/CMakeFiles/lppa_geo.dir/sensing.cpp.o" "gcc" "src/geo/CMakeFiles/lppa_geo.dir/sensing.cpp.o.d"
  "/root/repo/src/geo/synthetic_fcc.cpp" "src/geo/CMakeFiles/lppa_geo.dir/synthetic_fcc.cpp.o" "gcc" "src/geo/CMakeFiles/lppa_geo.dir/synthetic_fcc.cpp.o.d"
  "/root/repo/src/geo/whitespace_db.cpp" "src/geo/CMakeFiles/lppa_geo.dir/whitespace_db.cpp.o" "gcc" "src/geo/CMakeFiles/lppa_geo.dir/whitespace_db.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lppa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
