// private_auction: the full LPPA protocol, role by role.
//
// Shows each message the three parties exchange — the TTP's key setup,
// the SUs' masked location + bid submissions, the auctioneer's
// conflict-graph reconstruction and encrypted-domain allocation, and the
// batched TTP charging — together with the byte volumes on each hop.
//
// Build & run:  cmake --build build && ./build/examples/private_auction
#include <iomanip>
#include <iostream>

#include "core/lppa_auction.h"
#include "sim/scenario.h"

int main() {
  using namespace lppa;

  // A worldful of users (Area 3, the paper's defence-evaluation area).
  sim::ScenarioConfig world;
  world.area_id = 3;
  world.fcc.num_channels = 24;
  world.num_users = 30;
  world.seed = 99;
  sim::Scenario scenario(world);

  std::cout << "=== TTP: key generation =====================================\n";
  core::LppaConfig cfg;
  cfg.num_channels = world.fcc.num_channels;
  cfg.lambda = world.lambda_m;
  cfg.coord_width = scenario.coord_width();
  cfg.bid = core::PpbsBidConfig::advanced(
      world.bmax, /*rd=*/3, /*cr=*/4,
      core::ZeroDisguisePolicy::linear(world.bmax, /*replace_prob=*/0.4));
  cfg.ttp_batch_size = 8;
  core::LppaAuction engine(cfg, /*ttp_seed=*/20130708);

  std::cout << "  keys: g0 (location), gb_1..gb_" << cfg.num_channels
            << " (per-channel bid keys), gc (TTP sealing)\n"
            << "  parameters: bmax=" << cfg.bid.enc.bmax
            << " rd=" << cfg.bid.enc.rd << " cr=" << cfg.bid.enc.cr
            << " -> scaled bid width w=" << cfg.bid.enc.scaled_width()
            << " bits\n\n";

  std::cout << "=== SUs: PPBS submissions ===================================\n";
  Rng rng(7);
  auto result = engine.run(scenario.locations(), scenario.bids(), rng);
  const auto& view = result.view;
  std::cout << "  " << view.locations.size() << " masked locations ("
            << view.location_wire_bytes / 1024 << " KiB), "
            << view.bids.size() << " masked bid vectors ("
            << view.bid_wire_bytes / 1024 << " KiB)\n"
            << "  nothing in these messages reveals a coordinate or a "
               "price.\n\n";

  std::cout << "=== Auctioneer: PSD =========================================\n";
  std::cout << "  conflict graph: " << view.conflicts.edge_count()
            << " edges reconstructed from hashed prefixes alone\n"
            << "  greedy allocation granted " << view.awards.size()
            << " (user, channel) pairs via encrypted-domain max search\n\n";

  std::cout << "=== TTP: batched charging ===================================\n";
  std::cout << "  " << engine.ttp().queries_processed() << " charge queries in "
            << engine.ttp().batches_processed() << " batches of <= "
            << cfg.ttp_batch_size << "\n";

  std::size_t invalid = 0;
  for (const auto& award : result.outcome.awards) {
    if (!award.valid) ++invalid;
  }
  std::cout << "  " << invalid << " wins were disguised/true zeros and were "
               "invalidated\n"
            << "  manipulations detected: " << result.manipulations_detected
            << "\n\n";

  std::cout << "=== Outcome =================================================\n";
  const std::size_t interested = auction::count_interested(scenario.bids());
  std::cout << std::fixed << std::setprecision(3)
            << "  revenue (sum of winning bids): "
            << result.outcome.winning_bid_sum() << "\n"
            << "  user satisfaction: "
            << result.outcome.user_satisfaction(interested) << " ("
            << result.outcome.satisfied_winners() << "/" << interested
            << " interested bidders served)\n";

  std::cout << "\nwinner  channel  charge  valid\n";
  for (const auto& award : result.outcome.awards) {
    std::cout << "  SU" << std::setw(3) << award.user << "   ch"
              << std::setw(3) << award.channel << "    " << std::setw(4)
              << award.charge << "   " << (award.valid ? "yes" : "no ")
              << "\n";
  }
  return 0;
}
