// Quickstart: one full LPPA round on a small synthetic world.
//
//   1. Generate an FCC-style coverage dataset (Area 4 preset).
//   2. Drop 40 secondary users on the map with truthful bids.
//   3. Show what a curious auctioneer learns WITHOUT LPPA (BCM+BPM).
//   4. Run the LPPA auction end to end (PPBS -> PSD -> TTP charging).
//   5. Show what the same adversary learns WITH LPPA.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "core/adversary.h"
#include "core/bpm.h"
#include "sim/experiments.h"

int main() {
  using namespace lppa;

  // --- 1+2: world ----------------------------------------------------------
  sim::ScenarioConfig cfg;
  cfg.area_id = 4;            // rural preset: crisp coverage, strong attacks
  cfg.fcc.num_channels = 40;  // keep the demo fast
  cfg.num_users = 40;
  cfg.seed = 2026;
  sim::Scenario scenario(cfg);

  std::cout << "dataset: " << scenario.dataset().channel_count()
            << " channels over a " << scenario.dataset().grid().rows() << "x"
            << scenario.dataset().grid().cols() << " grid\n";

  // --- 3: the attack the paper identifies ----------------------------------
  const auto no_defense = sim::run_attack_point(
      scenario, cfg.fcc.num_channels, /*bpm_fraction=*/0.5,
      /*bpm_cell_cap=*/250);
  std::cout << "\nWITHOUT LPPA (curious auctioneer):\n"
            << "  BCM: mean possible cells = "
            << no_defense.bcm.mean_possible_cells
            << ", failure rate = " << no_defense.bcm.failure_rate << "\n"
            << "  BPM: mean possible cells = "
            << no_defense.bpm.mean_possible_cells
            << ", mean error = " << no_defense.bpm.mean_incorrectness_m / 1000.0
            << " km, failure rate = " << no_defense.bpm.failure_rate << "\n";

  // --- 4: the LPPA auction --------------------------------------------------
  const auction::Money bmax = cfg.bmax;
  core::LppaConfig lppa_cfg;
  lppa_cfg.num_channels = cfg.fcc.num_channels;
  lppa_cfg.lambda = cfg.lambda_m;
  lppa_cfg.coord_width = scenario.coord_width();
  lppa_cfg.bid = core::PpbsBidConfig::advanced(
      bmax, /*rd=*/3, /*cr=*/4,
      core::ZeroDisguisePolicy::uniform(bmax, /*replace_prob=*/0.5));

  core::LppaAuction auction_engine(lppa_cfg, /*ttp_seed=*/99);
  Rng rng(7);
  const auto result =
      auction_engine.run(scenario.locations(), scenario.bids(), rng);

  std::cout << "\nLPPA auction:\n"
            << "  awards: " << result.outcome.awards.size()
            << ", valid winners: " << result.outcome.satisfied_winners()
            << ", revenue: " << result.outcome.winning_bid_sum() << "\n"
            << "  TTP batches: " << auction_engine.ttp().batches_processed()
            << ", submission volume: "
            << (result.view.bid_wire_bytes + result.view.location_wire_bytes) /
                   1024
            << " KiB\n";

  // --- 5: the adversary against LPPA ----------------------------------------
  const core::LppaAdversary adversary(scenario.dataset());
  const auto estimates = adversary.attack(result.view.bids,
                                          /*top_fraction=*/0.25);
  std::vector<core::AttackMetrics> metrics;
  for (std::size_t i = 0; i < estimates.size(); ++i) {
    metrics.push_back(core::evaluate_attack(
        estimates[i], scenario.dataset().grid(), scenario.users()[i].cell));
  }
  const auto agg = core::aggregate(metrics);
  std::cout << "\nWITH LPPA (same adversary, masked submissions):\n"
            << "  mean possible cells = " << agg.mean_possible_cells
            << ", failure rate = " << agg.failure_rate << "\n";

  std::cout << "\nLPPA hides bid values and locations; the attacker's "
               "possible-cell sets inflate\nand its failure rate climbs, "
               "while the auction still clears.\n";
  return 0;
}
