// lppa_cli: a command-line experiment runner over the whole library.
//
// Configure a world and a defence from flags, run the attacks with and
// without LPPA plus the auction performance comparison, and print a
// compact report.  This is the "one binary to poke at everything" tool
// for downstream users.
//
//   ./build/examples/lppa_cli --area 3 --users 80 --channels 40
//       --replace 0.5 --fraction 0.5 --seed 7 --second-price
//
// Run with --help for the full flag list.
#include <cstring>
#include <iomanip>
#include <iostream>
#include <string>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "sim/experiments.h"

namespace {

struct CliOptions {
  int area = 3;
  std::size_t users = 60;
  std::size_t channels = 40;
  double replace = 0.5;
  double fraction = 0.5;
  std::uint64_t seed = 1;
  bool second_price = false;
  bool sensing = false;
  double sensing_sigma = 2.0;
  std::string metrics_path;
};

void print_help() {
  std::cout <<
      "lppa_cli — run one LPPA experiment\n"
      "  --area N          terrain preset 1..4 (default 3)\n"
      "  --users N         number of secondary users (default 60)\n"
      "  --channels N      number of auctioned channels (default 40)\n"
      "  --replace P       zero-replace probability 1-p0 (default 0.5)\n"
      "  --fraction P      attacker's per-column top fraction (default 0.5)\n"
      "  --seed N          experiment seed (default 1)\n"
      "  --second-price    charge winners the column runner-up price\n"
      "  --sensing [SIGMA] use spectrum sensing for the initial phase\n"
      "  --metrics PATH    write an obs metrics snapshot (.prom = Prometheus)\n"
      "  --help            this text\n";
}

bool parse(int argc, char** argv, CliOptions& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next_value = [&](double& out) {
      if (i + 1 >= argc) return false;
      out = std::stod(argv[++i]);
      return true;
    };
    double v = 0;
    if (flag == "--help") {
      print_help();
      return false;
    } else if (flag == "--area" && next_value(v)) {
      opts.area = static_cast<int>(v);
    } else if (flag == "--users" && next_value(v)) {
      opts.users = static_cast<std::size_t>(v);
    } else if (flag == "--channels" && next_value(v)) {
      opts.channels = static_cast<std::size_t>(v);
    } else if (flag == "--replace" && next_value(v)) {
      opts.replace = v;
    } else if (flag == "--fraction" && next_value(v)) {
      opts.fraction = v;
    } else if (flag == "--seed" && next_value(v)) {
      opts.seed = static_cast<std::uint64_t>(v);
    } else if (flag == "--second-price") {
      opts.second_price = true;
    } else if (flag == "--sensing") {
      opts.sensing = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        opts.sensing_sigma = std::stod(argv[++i]);
      }
    } else if (flag == "--metrics" && i + 1 < argc) {
      opts.metrics_path = argv[++i];
    } else {
      std::cerr << "unknown or incomplete flag: " << flag << "\n";
      print_help();
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lppa;
  CliOptions opts;
  if (!parse(argc, argv, opts)) return 1;

  sim::ScenarioConfig cfg;
  cfg.area_id = opts.area;
  cfg.fcc.num_channels = static_cast<int>(opts.channels);
  cfg.num_users = opts.users;
  cfg.seed = opts.seed;
  if (opts.sensing) {
    cfg.initial_phase = sim::InitialPhase::kSpectrumSensing;
    cfg.sensing.measurement_sigma_db = opts.sensing_sigma;
  }
  sim::Scenario scenario(cfg);

  // --metrics: the registry observes the run (top-level spans per
  // experiment phase; under --second-price also the full auction-stack
  // instrumentation) and is snapshotted to the requested path at exit.
  obs::MetricsRegistry registry;
  obs::MetricsRegistry* const metrics =
      opts.metrics_path.empty() ? nullptr : &registry;

  std::cout << "world: area " << opts.area << " ("
            << geo::area_preset(opts.area).name << "), " << opts.users
            << " users, " << opts.channels << " channels, seed "
            << opts.seed
            << (opts.sensing ? ", sensing initial phase" : "") << "\n\n";

  // --- attacks without LPPA ------------------------------------------------
  obs::Span attacks_span(metrics, "cli.attacks");
  const auto plain = sim::run_attack_point(scenario, opts.channels, 0.5, 250);
  attacks_span.end();
  std::cout << std::fixed << std::setprecision(3);
  std::cout << "without LPPA:\n"
            << "  BCM: " << plain.bcm.mean_possible_cells << " cells, "
            << "failure " << plain.bcm.failure_rate << "\n"
            << "  BPM: " << plain.bpm.mean_possible_cells << " cells, "
            << "failure " << plain.bpm.failure_rate << ", error "
            << plain.bpm.mean_incorrectness_m / 1000.0 << " km\n\n";

  // --- defence -------------------------------------------------------------
  sim::DefenseOptions defense;
  defense.replace_prob = opts.replace;
  defense.top_fraction = opts.fraction;
  obs::Span defense_span(metrics, "cli.defense");
  const auto protected_point =
      sim::run_defense_point(scenario, defense, opts.seed + 100);
  defense_span.end();
  std::cout << "with LPPA (replace " << opts.replace << ", attacker top "
            << opts.fraction * 100 << "%):\n"
            << "  ranking attack: " << protected_point.lppa.mean_possible_cells
            << " cells, failure " << protected_point.lppa.failure_rate
            << ", error "
            << protected_point.lppa.mean_incorrectness_m / 1000.0
            << " km\n\n";

  // --- auction performance --------------------------------------------------
  obs::Span perf_span(metrics, "cli.performance");
  const auto perf = sim::run_performance_point(
      scenario, opts.replace, 3, 4, /*rounds=*/2, opts.seed + 200);
  perf_span.end();
  std::cout << "auction performance (LPPA / plain):\n"
            << "  revenue ratio:      " << perf.bid_sum_ratio << "\n"
            << "  satisfaction ratio: " << perf.satisfaction_ratio << "\n";
  if (opts.second_price) {
    core::LppaConfig lcfg;
    lcfg.num_channels = opts.channels;
    lcfg.lambda = cfg.lambda_m;
    lcfg.coord_width = scenario.coord_width();
    lcfg.bid = core::PpbsBidConfig::advanced(
        cfg.bmax, 3, 4,
        core::ZeroDisguisePolicy::linear(cfg.bmax, opts.replace));
    lcfg.charging_rule = core::ChargingRule::kSecondPrice;
    lcfg.metrics = metrics;
    core::LppaAuction engine(lcfg, opts.seed + 300);
    Rng rng(opts.seed + 400);
    const auto outcome =
        engine.run(scenario.locations(), scenario.bids(), rng);
    std::cout << "  second-price revenue: "
              << outcome.outcome.winning_bid_sum() << " over "
              << outcome.outcome.satisfied_winners() << " valid winners\n";
  }

  if (metrics != nullptr) {
    std::string error;
    if (!obs::write_metrics_file(registry, opts.metrics_path, &error)) {
      std::cerr << "FATAL: " << error << "\n";
      return 1;
    }
    std::cout << "\nwrote " << opts.metrics_path << " (metrics snapshot)\n";
  }
  return 0;
}
