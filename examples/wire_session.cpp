// wire_session: the LPPA auction as actual network traffic.
//
// Every protocol message — masked locations, masked bid vectors, charge
// query batches, charge results — travels through a MessageBus as
// serialized bytes, exactly as it would between real hosts.  The example
// prints the per-link traffic matrix and checks the Theorem 4 prediction
// against what was really shipped.
//
// Build & run:  cmake --build build && ./build/examples/wire_session
//               (add --metrics <path> for an obs snapshot; .prom suffix
//               selects the Prometheus text format)
#include <cstring>
#include <iomanip>
#include <iostream>
#include <string>

#include "core/theorems.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "proto/session.h"
#include "sim/scenario.h"

int main(int argc, char** argv) {
  using namespace lppa;

  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::cout << "usage: " << argv[0] << " [--metrics <path>]\n"
                << "  --metrics <path> write an obs metrics snapshot"
                   " (.prom = Prometheus text)\n";
      return 0;
    } else {
      std::cerr << "unknown or incomplete flag: " << argv[i] << "\n";
      return 1;
    }
  }

  sim::ScenarioConfig world;
  world.area_id = 3;
  world.fcc.num_channels = 16;
  world.num_users = 20;
  world.seed = 515;
  sim::Scenario scenario(world);

  obs::MetricsRegistry registry;
  obs::MetricsRegistry* const metrics =
      metrics_path.empty() ? nullptr : &registry;

  core::LppaConfig cfg;
  cfg.num_channels = world.fcc.num_channels;
  cfg.lambda = world.lambda_m;
  cfg.coord_width = scenario.coord_width();
  cfg.bid = core::PpbsBidConfig::advanced(
      world.bmax, 3, 4, core::ZeroDisguisePolicy::linear(world.bmax, 0.4));
  cfg.ttp_batch_size = 6;
  cfg.metrics = metrics;

  core::TrustedThirdParty ttp(cfg.bid, 2026);
  ttp.set_metrics(metrics);
  proto::MessageBus bus;
  bus.set_metrics(metrics);
  Rng rng(9);
  const auto result = proto::run_wire_auction(
      cfg, ttp, scenario.locations(), scenario.bids(), bus, rng);

  std::cout << "=== link traffic =============================================\n";
  const auto su_to_auc = result.submission_traffic;
  std::cout << "  SUs -> auctioneer : " << su_to_auc.messages
            << " messages, " << su_to_auc.bytes / 1024 << " KiB\n";
  const auto to_ttp =
      bus.link(proto::Address::auctioneer(), proto::Address::ttp());
  const auto from_ttp =
      bus.link(proto::Address::ttp(), proto::Address::auctioneer());
  std::cout << "  auctioneer -> TTP : " << to_ttp.messages << " batches, "
            << to_ttp.bytes << " bytes\n"
            << "  TTP -> auctioneer : " << from_ttp.messages << " batches, "
            << from_ttp.bytes << " bytes\n";

  std::cout << "\n=== Theorem 4 check ==========================================\n";
  const int w = cfg.bid.enc.scaled_width();
  const double predicted_bits = core::theorems::thm4_comm_bits(
      core::theorems::hmac_length_ratio(w), cfg.num_channels,
      world.num_users, w);
  std::cout << std::fixed << std::setprecision(1)
            << "  predicted bid-digest volume: " << predicted_bits / 8 / 1024
            << " KiB (h*k*N*(3w-1)(w+1), w=" << w << ")\n"
            << "  measured SU->auctioneer:     "
            << static_cast<double>(su_to_auc.bytes) / 1024
            << " KiB (adds locations, framing, sealed payloads)\n";

  std::cout << "\n=== outcome ==================================================\n";
  std::size_t valid = 0;
  for (const auto& a : result.awards) valid += a.valid ? 1 : 0;
  std::cout << "  " << result.awards.size() << " awards (" << valid
            << " validly charged) across " << result.ttp_batches
            << " TTP batches\n"
            << "  every byte of this auction crossed the bus as a\n"
               "  serialized message and was parsed back on arrival.\n";

  if (metrics != nullptr) {
    std::string error;
    if (!obs::write_metrics_file(registry, metrics_path, &error)) {
      std::cerr << "FATAL: " << error << "\n";
      return 1;
    }
    std::cout << "\nwrote " << metrics_path << " (metrics snapshot)\n";
  }
  return 0;
}
