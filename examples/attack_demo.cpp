// attack_demo: walks one victim through the paper's two attacks.
//
// A secondary user sitting in a known cell submits truthful plaintext
// bids; the curious auctioneer first runs BCM (intersecting availability
// regions of every positively-bid channel) and then BPM (ranking the
// surviving cells by bid-to-quality distance dq).  The demo prints how
// each stage shrinks the victim's anonymity.
//
// Build & run:  cmake --build build && ./build/examples/attack_demo
#include <iomanip>
#include <iostream>

#include "core/attack_metrics.h"
#include "core/bcm.h"
#include "core/bpm.h"
#include "geo/render.h"
#include "sim/scenario.h"

int main() {
  using namespace lppa;

  sim::ScenarioConfig cfg;
  cfg.area_id = 4;  // rural: crisp coverage boundaries, strongest attack
  cfg.fcc.num_channels = 60;
  cfg.num_users = 1;
  cfg.seed = 4711;
  const sim::Scenario scenario(cfg);
  const auto& victim = scenario.users().front();
  const auto& dataset = scenario.dataset();
  const auto& grid = dataset.grid();

  std::cout << "victim's true cell: (" << victim.cell.row << ", "
            << victim.cell.col << ") of a " << grid.rows() << "x"
            << grid.cols() << " map (" << grid.cell_count() << " cells)\n";

  std::size_t positive = 0;
  for (auto b : victim.bids) positive += b > 0 ? 1 : 0;
  std::cout << "victim bids on " << positive << " of "
            << victim.bids.size() << " channels\n\n";

  // --- Stage 1: BCM -------------------------------------------------------
  const core::BcmAttack bcm(dataset);
  const CellSet possible = bcm.run(victim.bids);
  const auto bcm_metrics = core::evaluate_attack(
      core::LocationEstimate::uniform_over(possible), grid, victim.cell);
  geo::RenderOptions map_opts;
  map_opts.block = 4;  // 100x100 cells -> 25x25 characters
  std::cout << "BCM candidate region (#), victim (X), 1 char = 3x3 km:\n"
            << geo::render_ascii_map(grid, possible, &victim.cell, map_opts)
            << "\n";

  std::cout << "BCM attack (Algorithm 1):\n"
            << "  possible cells: " << grid.cell_count() << " -> "
            << possible.count() << "\n"
            << "  uncertainty: " << std::fixed << std::setprecision(2)
            << bcm_metrics.uncertainty_nats << " nats, expected error "
            << bcm_metrics.incorrectness_m / 1000.0 << " km\n"
            << "  contains the true cell: "
            << (bcm_metrics.failed ? "no" : "yes") << "\n\n";

  // --- Stage 2: BPM -------------------------------------------------------
  const core::BpmAttack bpm(dataset);
  for (double fraction : {0.5, 0.25, 0.1}) {
    core::BpmOptions opts;
    opts.keep_fraction = fraction;
    opts.max_cells = 250;
    const auto ranked = bpm.run(possible, victim.bids, opts);
    const auto metrics = core::evaluate_attack(
        core::LocationEstimate::uniform_over(ranked.cells), grid,
        victim.cell);
    std::cout << "BPM attack (Algorithm 2), keep " << fraction * 100
              << "% of cells:\n"
              << "  kept " << ranked.cells.size() << " cells, best dq = "
              << (ranked.dq.empty() ? 0.0 : ranked.dq.front()) << "\n"
              << "  expected error " << metrics.incorrectness_m / 1000.0
              << " km, success: " << (metrics.failed ? "no" : "yes") << "\n";
    if (!ranked.cells.empty()) {
      const geo::Cell best = grid.cell_at(ranked.cells.front());
      std::cout << "  top guess: (" << best.row << ", " << best.col
                << "), " << grid.cell_distance_m(best, victim.cell) / 1000.0
                << " km from the truth\n";
    }
  }

  std::cout << "\nThe tighter the attacker cuts, the closer its top guess\n"
               "gets — this is the leakage LPPA's masked submissions close.\n";
  return 0;
}
