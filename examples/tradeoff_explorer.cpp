// tradeoff_explorer: the knob every SU has to set — the zero-replace
// probability 1-p0 — traded between location privacy and auction
// performance (paper §IV-C.3 and §VI-D).
//
// For a grid of replace probabilities this example prints, side by side,
// the attacker's failure rate / candidate-set size (privacy, higher =
// better) and the auction's revenue + satisfaction ratios relative to the
// non-private baseline (performance, higher = better), plus the Theorem 1
// prediction for "a disguised zero steals the channel".
//
// Build & run:  cmake --build build && ./build/examples/tradeoff_explorer
#include <iomanip>
#include <iostream>

#include "core/policy_advisor.h"
#include "core/theorems.h"
#include "sim/experiments.h"

int main() {
  using namespace lppa;

  sim::ScenarioConfig cfg;
  cfg.area_id = 3;
  cfg.fcc.num_channels = 30;
  cfg.num_users = 50;
  cfg.seed = 31337;
  sim::Scenario scenario(cfg);

  const std::vector<double> replace_probs = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};

  std::cout << "replace  | privacy: failure  cells | performance: revenue  "
               "satisfaction | thm1 P[zero loses]\n"
            << "---------+-------------------------+---------------------"
               "--------------+-------------------\n";
  for (double replace : replace_probs) {
    sim::DefenseOptions opts;
    opts.replace_prob = replace;
    opts.top_fraction = 0.5;
    const auto defense =
        replace > 0.0
            ? sim::run_defense_point(scenario, opts, 4242)
            : sim::DefensePoint{};  // no disguise -> use the BCM baseline
    const double failure = replace > 0.0
                               ? defense.lppa.failure_rate
                               : 0.0;
    const double cells = replace > 0.0 ? defense.lppa.mean_possible_cells
                                       : 0.0;

    const auto perf =
        sim::run_performance_point(scenario, replace, 3, 4, 2, 777);

    // Theorem 1 at a representative channel: top bid 12, five zeros.
    const auto policy = core::ZeroDisguisePolicy::linear(
        cfg.bmax, std::max(replace, 1e-9));
    const double thm1 =
        core::theorems::thm1_zero_not_win(12, 5, policy);

    std::cout << std::fixed << std::setprecision(3) << "  " << std::setw(5)
              << replace << "  |      " << std::setw(6) << failure << "  "
              << std::setw(6) << std::setprecision(1) << cells
              << std::setprecision(3) << " |        " << std::setw(6)
              << perf.bid_sum_ratio << "       " << std::setw(6)
              << perf.satisfaction_ratio << "      |      " << std::setw(6)
              << thm1 << "\n";
  }

  std::cout << "\nReading the table: pushing the replace probability up\n"
               "buys attack failure (privacy) and costs revenue and\n"
               "satisfaction; Theorem 1 explains the cost — the chance a\n"
               "genuine top bid survives the disguised zeros falls.\n"
               "Pick the smallest replace probability whose privacy level\n"
               "meets your requirement (paper's guidance, §VI-D).\n";

  // The library can pick that point for you: PolicyAdvisor bisects the
  // Theorem 1/2 closed forms for the smallest replace probability that
  // meets a no-leakage target.
  std::cout << "\nPolicyAdvisor recommendations (b_N=12, m=10 zeros, "
               "attacker harvests t=3):\n"
               "  target P[no leakage] | recommended 1-p0 | P[top bid "
               "survives]\n";
  core::AdvisorScenario advisor_scenario;
  advisor_scenario.bmax = cfg.bmax;
  const core::PolicyAdvisor advisor(advisor_scenario,
                                    core::DisguiseFamily::kUniform);
  for (double target : {0.1, 0.2, 0.3}) {
    const auto advice = advisor.recommend(target);
    std::cout << std::fixed << std::setprecision(3) << "        " << target
              << "          |      " << advice.replace_prob
              << "       |      " << advice.top_bid_survival
              << (advice.target_achievable ? "" : "   (target unreachable)")
              << "\n";
  }
  return 0;
}
