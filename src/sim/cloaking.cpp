#include "sim/cloaking.h"

#include <algorithm>
#include <cmath>

#include "auction/plain_auction.h"
#include "core/bcm.h"
#include "core/bpm.h"

namespace lppa::sim {

namespace {

/// The cloak block (top-left cell) containing a cell.
geo::Cell block_of(const geo::Cell& cell, std::size_t cloak_cells) {
  const int c = static_cast<int>(cloak_cells);
  return geo::Cell{(cell.row / c) * c, (cell.col / c) * c};
}

/// Minimum distance between two integer intervals [a, a+len) and
/// [b, b+len) in cell units.
int interval_gap(int a, int b, int len) {
  if (a < b) return std::max(0, b - (a + len));
  return std::max(0, a - (b + len));
}

}  // namespace

bool cloaked_conflict(const geo::Grid& grid, const geo::Cell& a,
                      const geo::Cell& b, std::size_t cloak_cells,
                      std::uint64_t lambda_m) {
  // Two users can interfere iff their coordinates can come within 2λ on
  // both axes; with block-granular knowledge the auctioneer must assume
  // the closest possible positions.
  const int len = static_cast<int>(cloak_cells);
  const double cell = grid.cell_size_m();
  const double min_dx = interval_gap(a.col, b.col, len) * cell;
  const double min_dy = interval_gap(a.row, b.row, len) * cell;
  return min_dx <= 2.0 * static_cast<double>(lambda_m) &&
         min_dy <= 2.0 * static_cast<double>(lambda_m);
}

CloakingPoint run_cloaking_point(const Scenario& scenario,
                                 std::size_t cloak_cells,
                                 std::uint64_t seed) {
  LPPA_REQUIRE(cloak_cells >= 1, "cloak block must be at least one cell");
  const geo::Dataset& dataset = scenario.dataset();
  const geo::Grid& grid = dataset.grid();

  CloakingPoint point;
  point.cloak_cells = cloak_cells;

  // --- privacy: the attacker clips BCM/BPM to the cloak block ------------
  const core::BcmAttack bcm(dataset);
  const core::BpmAttack bpm(dataset);
  std::vector<core::AttackMetrics> metrics;
  for (const auto& su : scenario.users()) {
    const geo::Cell block = block_of(su.cell, cloak_cells);
    CellSet cloak(grid.cell_count());
    for (int dr = 0; dr < static_cast<int>(cloak_cells); ++dr) {
      for (int dc = 0; dc < static_cast<int>(cloak_cells); ++dc) {
        const geo::Cell c{block.row + dr, block.col + dc};
        if (grid.in_bounds(c)) cloak.insert(grid.index(c));
      }
    }
    CellSet possible = bcm.run(su.bids);
    possible &= cloak;
    core::BpmOptions opts;
    opts.keep_fraction = 0.5;
    const auto ranked = bpm.run(possible, su.bids, opts);
    metrics.push_back(core::evaluate_attack(
        core::LocationEstimate::uniform_over(ranked.cells), grid, su.cell));
  }
  point.privacy = core::aggregate(metrics);

  // --- performance: conservative conflict graph destroys reuse ------------
  const auto locations = scenario.locations();
  const auto bids = scenario.bids();
  const std::uint64_t lambda = scenario.config().lambda_m;

  const auto exact =
      auction::ConflictGraph::from_locations(locations, lambda);
  auction::ConflictGraph conservative(locations.size());
  for (std::size_t i = 0; i < locations.size(); ++i) {
    const geo::Cell bi = block_of(scenario.users()[i].cell, cloak_cells);
    for (std::size_t j = i + 1; j < locations.size(); ++j) {
      const geo::Cell bj = block_of(scenario.users()[j].cell, cloak_cells);
      if (cloaked_conflict(grid, bi, bj, cloak_cells, lambda)) {
        conservative.add_conflict(i, j);
      }
    }
  }
  point.conflict_inflation =
      exact.edge_count() == 0
          ? static_cast<double>(conservative.edge_count())
          : static_cast<double>(conservative.edge_count()) /
                static_cast<double>(exact.edge_count());

  auto revenue_with = [&](const auction::ConflictGraph& g,
                          std::uint64_t rng_seed) {
    auction::BidMatrix table(bids, dataset.channel_count());
    Rng rng(rng_seed);
    auto awards = auction::greedy_allocate(table, g, rng);
    auction::Money total = 0;
    for (const auto& a : awards) total += bids[a.user][a.channel];
    return static_cast<double>(total);
  };
  const double exact_revenue = revenue_with(exact, seed);
  const double cloaked_revenue = revenue_with(conservative, seed);
  point.revenue_ratio =
      exact_revenue > 0.0 ? cloaked_revenue / exact_revenue : 0.0;
  return point;
}

}  // namespace lppa::sim
