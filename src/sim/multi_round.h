// Repeated participation and ID mixing (paper §V-C.3).
//
// An SU's position is fixed for the lease duration, but it may enter the
// auction many times.  Without fresh pseudonyms, the curious auctioneer
// can link a bidder's submissions across rounds and VOTE over its
// per-round inferred availability sets: genuine channels recur every
// round while disguised zeros are independent noise, so a majority
// filter strips the zero-disguise defence.  The paper's countermeasure —
// mixing the buyers' IDs between auctions — caps the attacker at
// single-round knowledge.
//
// run_multi_round() simulates both worlds and returns the attack quality
// after R rounds; the abl_id_mixing bench sweeps R.
#pragma once

#include "core/adversary.h"
#include "proto/fault.h"
#include "proto/round_report.h"
#include "proto/session.h"
#include "sim/scenario.h"

namespace lppa::sim {

/// Optional fault layer: when enabled, every round additionally runs as
/// a hardened wire auction (proto::run_hardened_wire_auction) over a
/// per-round MessageBus with a seeded FaultInjector attached, and the
/// resulting RoundReports land in MultiRoundResult::reports.  A fresh
/// bus per round models session-scoped channels — stale delayed traffic
/// from round k cannot masquerade as a round-k+1 submission.
/// Optional crash layer on top of the fault layer: when enabled, each
/// wire round runs the crash-tolerant session
/// (proto::run_recoverable_wire_auction) with a per-round seeded
/// CrashInjector, so the auctioneer dies and recovers mid-round on a
/// reproducible schedule.  Per-round recovery counts, journal sizes and
/// degradations land in the round's RoundReport.
struct MultiRoundCrashes {
  bool enabled = false;
  std::uint64_t seed = 7;          ///< crash-schedule Rng seed base
  double crash_prob = 0.0;         ///< per-checkpoint crash probability
  std::size_t max_per_round = 1;   ///< crash budget per round
  std::size_t deadline_ticks = 0;  ///< round deadline (0 = none)
  std::size_t min_quorum = 1;      ///< degraded-commit quorum floor
  std::size_t recovery_cost_ticks = 1;  ///< ticks each restart costs
};

struct MultiRoundFaults {
  bool enabled = false;
  std::uint64_t seed = 99;               ///< injector Rng seed base
  proto::FaultSpec link;                 ///< default per-sender fault rates
  std::vector<std::size_t> byzantine;    ///< SU indices that always corrupt
  proto::HardenedSessionConfig session;  ///< retry / backoff policy
  MultiRoundCrashes crashes;             ///< auctioneer crash schedule
};

struct MultiRoundConfig {
  std::size_t rounds = 5;
  bool mix_ids = true;        ///< fresh pseudonyms every round
  double replace_prob = 0.5;  ///< zero-disguise level (linear policy)
  /// Mobility churn: per-round probability that each SU moves to a fresh
  /// position (and re-senses its bids there) before the round runs.
  /// Movement breaks cross-round evidence accumulation for the moved SU
  /// the same way ID mixing does — the linking attacker votes over
  /// availability sets of DIFFERENT cells.  0 keeps the paper's
  /// fixed-lease setting.
  double move_prob = 0.0;
  auction::Money rd = 3;
  std::uint64_t cr = 4;
  double top_fraction = 0.5;  ///< attacker's per-column selection
  MultiRoundFaults faults;    ///< wire-round fault injection (off by default)
};

struct MultiRoundResult {
  core::AggregateMetrics metrics;  ///< attack quality against each victim
  /// Mean number of channels the attacker ended up intersecting per
  /// victim (accumulated evidence without mixing; last round with).
  double mean_channels_used = 0.0;
  /// One report per round when faults are enabled (empty otherwise).
  std::vector<proto::RoundReport> reports;
};

/// Runs R auction rounds over a fixed user population (positions pinned,
/// bids redrawn per round) and attacks with the linking adversary.
MultiRoundResult run_multi_round(Scenario& scenario,
                                 const MultiRoundConfig& config,
                                 std::uint64_t seed);

}  // namespace lppa::sim
