// Scenario: one experimental world — a synthetic FCC coverage dataset plus
// a population of secondary users with positions and truthful bids.
//
// Bid model (paper §VI-A): b_j^i = q_j * beta_i + eta, where q_j is the
// channel quality at the user's position, beta_i the user's transmission
// urgency, and |eta| <= noise_frac * q_j * beta_i.  Bids are quantised to
// integers in [0, bmax]; channels unavailable at the user's cell bid 0.
#pragma once

#include <cstdint>
#include <vector>

#include "auction/bid.h"
#include "auction/conflict.h"
#include "geo/sensing.h"
#include "geo/synthetic_fcc.h"
#include "geo/whitespace_db.h"

namespace lppa::sim {

/// How SUs learn channel availability in the initial phase (§II-A):
/// query the white-space database (exact availability, statistic-based
/// quality plus sensing refinement noise) or energy-detection sensing
/// (fallible availability AND quality).
enum class InitialPhase {
  kDatabaseQuery,
  kSpectrumSensing,
};

struct ScenarioConfig {
  int area_id = 4;                 ///< terrain preset (1..4)
  geo::SyntheticFccConfig fcc;     ///< grid / channels / threshold
  std::size_t num_users = 100;
  InitialPhase initial_phase = InitialPhase::kDatabaseQuery;
  geo::SensingConfig sensing;      ///< used when sensing is selected
  auction::Money bmax = 15;        ///< bid quantisation ceiling
  double beta_min = 0.5;           ///< urgency range
  double beta_max = 1.0;
  double noise_frac = 0.2;         ///< the paper's 20 % bid noise
  /// Spectrum-sensing discrepancy (paper §III-B): the SU's perceived
  /// quality is the database statistic plus N(0, sd) noise, clamped to
  /// [0,1].  This is what makes BPM fallible — without it the bid vector
  /// identifies the cell almost perfectly.
  double quality_noise_sd = 0.12;
  std::uint64_t lambda_m = 1000;   ///< interference half-side, metres
  std::uint64_t seed = 1;          ///< dataset + population seed
};

struct SuRecord {
  geo::Cell cell;             ///< true cell (attack ground truth)
  auction::SuLocation loc;    ///< integer coordinates in metres (PPBS input)
  auction::BidVector bids;    ///< truthful bids, one per channel
  double beta = 1.0;          ///< urgency drawn for this user
};

class Scenario {
 public:
  explicit Scenario(const ScenarioConfig& config);

  // The white-space database holds a pointer into this object.
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  const ScenarioConfig& config() const noexcept { return config_; }
  const geo::Dataset& dataset() const noexcept { return dataset_; }
  /// The TVWS database the SUs query in the initial phase; its query
  /// counter reflects population (re)generation.
  const geo::WhiteSpaceDatabase& database() const noexcept { return db_; }
  const std::vector<SuRecord>& users() const noexcept { return users_; }

  std::vector<auction::SuLocation> locations() const;
  std::vector<auction::BidVector> bids() const;

  /// Bits needed for PPBS coordinates: every loc + 2*lambda must fit.
  int coord_width() const;

  /// Redraws the user population (new auction round) without rebuilding
  /// the coverage dataset.
  void resample_users(std::uint64_t seed);

  /// Redraws urgencies and bids while keeping every user's position —
  /// the repeated-participation setting of §V-C.3 where an SU's position
  /// is fixed for the lease duration but its bids vary round to round.
  void rebid(std::uint64_t seed);

  /// Mobility (churn): each user independently moves with probability
  /// `prob` to a fresh uniform cell/position and re-senses its bids
  /// there (a moved SU's old availability set no longer applies).
  /// Returns the indices of the users that moved, ascending.
  std::vector<std::size_t> move_users(std::uint64_t seed, double prob);

 private:
  void generate_users(Rng& rng);
  void generate_bids(SuRecord& su, std::size_t cell_index, Rng& rng);

  ScenarioConfig config_;
  geo::Dataset dataset_;
  geo::WhiteSpaceDatabase db_{dataset_};
  std::vector<SuRecord> users_;
};

/// Truthful bid for quality q and urgency beta: round(q*beta*bmax*(1+eta)),
/// clamped to [0, bmax]; exposed for unit tests.
auction::Money quantize_bid(double q, double beta, auction::Money bmax,
                            double noise_frac, Rng& rng);

}  // namespace lppa::sim
