// ChurnSchedule: seeded per-round SU churn over a fixed slot roster —
// arrivals into dead slots, departures, moves, and re-bids of live ones.
//
// An auction in a cognitive radio network is not a one-shot event over a
// frozen population: SUs power up, finish their leases and leave, drive
// to a different cell, or come back with fresh demand.  The schedule is
// a pure function of its config (one private Rng stream, liveness
// tracked internally), so one instance replayed from the same seed emits
// the same event stream — which lets the churn soak harness
// (bench/abl_churn) drive the incrementally maintained pipeline
// (core::ChurnState) and the from-scratch rebuild oracle over ONE shared
// stream and assert bit-equality every round.
#pragma once

#include <cstdint>
#include <vector>

#include "auction/bid.h"
#include "auction/conflict.h"
#include "common/rng.h"

namespace lppa::sim {

/// One plaintext churn event.  The driver masks the payload (PPBS
/// location/bid submission) before it touches any auctioneer-side state.
struct ChurnEvent {
  enum class Kind : std::uint8_t {
    kArrive,  ///< dead slot comes alive at `loc` bidding `bids`
    kDepart,  ///< live slot leaves
    kMove,    ///< live slot relocates to `loc` (bids unchanged)
    kRebid,   ///< live slot re-submits fresh `bids` in place
  };
  Kind kind = Kind::kArrive;
  std::size_t user = 0;
  auction::SuLocation loc;   ///< kArrive / kMove
  auction::BidVector bids;   ///< kArrive / kRebid
};

struct ChurnScheduleConfig {
  std::size_t capacity = 64;      ///< roster slots (fixed universe)
  std::size_t initial_live = 32;  ///< slots live before round 1
  double arrive_prob = 0.25;      ///< per dead slot, per round
  double depart_prob = 0.10;      ///< per live slot, per round
  double move_prob = 0.15;        ///< per surviving live slot, per round
  double rebid_prob = 0.30;       ///< per surviving live slot, per round
  std::size_t num_channels = 3;
  auction::Money bmax = 15;
  int coord_width = 16;   ///< positions drawn so loc + 2λ always fits
  std::uint64_t lambda = 512;
  std::uint64_t seed = 1;
};

class ChurnSchedule {
 public:
  explicit ChurnSchedule(const ChurnScheduleConfig& config);

  const ChurnScheduleConfig& config() const noexcept { return config_; }

  /// Plaintext roster after the last next_round() (or the initial one).
  const std::vector<bool>& live() const noexcept { return live_; }
  const std::vector<auction::SuLocation>& locations() const noexcept {
    return locations_;
  }
  const std::vector<auction::BidVector>& bids() const noexcept {
    return bids_;
  }
  std::size_t live_count() const noexcept { return live_count_; }

  /// Advances one round: every dead slot may arrive, every live slot may
  /// depart, else move, else re-bid (one cascaded uniform draw per slot,
  /// so the event mix is exactly the configured probabilities).  Returns
  /// the events in slot order — the application order the maintained and
  /// rebuilt pipelines both follow.
  std::vector<ChurnEvent> next_round();

 private:
  auction::SuLocation draw_location();
  auction::BidVector draw_bids();

  ChurnScheduleConfig config_;
  Rng rng_;
  std::vector<bool> live_;
  std::vector<auction::SuLocation> locations_;
  std::vector<auction::BidVector> bids_;
  std::size_t live_count_ = 0;
};

}  // namespace lppa::sim
