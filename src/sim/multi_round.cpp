#include "sim/multi_round.h"

#include <algorithm>
#include <map>

#include "core/bcm.h"
#include "sim/experiments.h"

namespace lppa::sim {

MultiRoundResult run_multi_round(Scenario& scenario,
                                 const MultiRoundConfig& config,
                                 std::uint64_t seed) {
  LPPA_REQUIRE(config.rounds >= 1, "need at least one round");
  const geo::Dataset& dataset = scenario.dataset();
  const std::size_t n = scenario.users().size();
  const core::LppaAdversary adversary(dataset);

  // evidence[u][r] = number of rounds in which the attacker linked
  // channel r to (the pseudonym it believes is) user u.
  std::vector<std::map<std::size_t, std::size_t>> evidence(n);
  std::vector<std::vector<std::size_t>> last_round_sets(n);
  std::vector<proto::RoundReport> reports;

  for (std::size_t round = 0; round < config.rounds; ++round) {
    scenario.rebid(seed + 31 * round);
    if (config.move_prob > 0.0 && round > 0) {
      // Mobility strikes between rounds; round 0 runs over the initial
      // population.  The attack's ground truth (users()[u].cell, read
      // after the last round) is each SU's final position.
      scenario.move_users(seed + 977 * round, config.move_prob);
    }

    const auto policy = core::ZeroDisguisePolicy::linear(
        scenario.config().bmax, config.replace_prob);
    const auto bid_config = core::PpbsBidConfig::advanced(
        scenario.config().bmax, config.rd, config.cr, policy);
    // Fresh keys each auction, as the TTP would issue them.
    core::TrustedThirdParty ttp(bid_config, seed + 1000 * round);
    const auto submissions = make_submissions(scenario, bid_config,
                                              ttp.su_keys(), seed + round);

    if (config.faults.enabled) {
      // Run the same round over the wire under injected faults.  The
      // bus and injector are per-round (session-scoped channels); the
      // wire Rng is independent of the attack-model streams above so
      // enabling faults never perturbs the privacy metrics.
      proto::MessageBus bus;
      proto::FaultInjector injector(config.faults.seed + round,
                                    config.faults.link);
      for (const std::size_t b : config.faults.byzantine) {
        if (b < n) injector.mark_byzantine(proto::Address::su(b));
      }
      bus.set_fault_injector(&injector);

      core::LppaConfig lppa;
      lppa.num_channels = scenario.users().front().bids.size();
      lppa.lambda = scenario.config().lambda_m;
      lppa.coord_width = scenario.coord_width();
      lppa.bid = bid_config;

      const std::uint64_t wire_seed = seed + 4242 * (round + 1);
      if (config.faults.crashes.enabled) {
        // Crash-tolerant round: the auctioneer dies at seeded checkpoints
        // and recovers from its journal; a crash-free schedule leaves the
        // outcome byte-identical to the hardened path under Rng(wire_seed).
        const MultiRoundCrashes& cr = config.faults.crashes;
        proto::CrashInjector crash_injector = proto::CrashInjector::seeded(
            cr.seed + round, cr.crash_prob, cr.max_per_round);
        proto::RecoverableSessionConfig recov;
        recov.hardened = config.faults.session;
        recov.deadline_ticks = cr.deadline_ticks;
        recov.min_quorum = cr.min_quorum;
        recov.recovery_cost_ticks = cr.recovery_cost_ticks;
        auto wire = proto::run_recoverable_wire_auction(
            lppa, ttp, scenario.locations(), scenario.bids(), bus, wire_seed,
            recov, &crash_injector);
        wire.report.round = round;
        reports.push_back(std::move(wire.report));
      } else {
        Rng wire_rng(wire_seed);
        auto wire =
            proto::run_hardened_wire_auction(lppa, ttp, scenario.locations(),
                                             scenario.bids(), bus, wire_rng,
                                             config.faults.session);
        wire.report.round = round;
        reports.push_back(std::move(wire.report));
      }
    }

    const auto ranks = adversary.rank_columns(submissions);
    const auto ordered = core::LppaAdversary::infer_ordered_sets(
        ranks, n, config.top_fraction);

    // With ID mixing, each round's pseudonyms are an unknown fresh
    // permutation: cross-round accumulation is impossible and the
    // rational attacker keeps only per-round knowledge.  Without mixing,
    // submissions link by ID and evidence accumulates.
    for (std::size_t u = 0; u < n; ++u) {
      last_round_sets[u] = ordered[u];
      if (!config.mix_ids) {
        for (std::size_t r : ordered[u]) ++evidence[u][r];
      }
    }
  }

  const core::BcmAttack bcm(dataset);
  std::vector<core::AttackMetrics> metrics;
  metrics.reserve(n);
  double channels_used = 0.0;

  for (std::size_t u = 0; u < n; ++u) {
    std::vector<std::size_t> channels;
    if (config.mix_ids) {
      // Single-round knowledge only.
      channels = last_round_sets[u];
    } else {
      // Majority vote over the linked rounds: keep channels seen in more
      // than half of them, most-recurrent first.  Genuine channels recur;
      // disguised zeros are per-round noise and get voted out.
      const std::size_t threshold = config.rounds / 2 + 1;
      std::vector<std::pair<std::size_t, std::size_t>> counted;
      for (const auto& [channel, count] : evidence[u]) {
        if (count >= threshold) counted.emplace_back(count, channel);
      }
      std::sort(counted.rbegin(), counted.rend());
      for (const auto& [count, channel] : counted) {
        channels.push_back(channel);
      }
    }
    channels_used += static_cast<double>(channels.size());
    metrics.push_back(core::evaluate_attack(
        core::LocationEstimate::uniform_over(bcm.run_consistent(channels)),
        dataset.grid(), scenario.users()[u].cell));
  }

  MultiRoundResult result;
  result.metrics = core::aggregate(metrics);
  result.mean_channels_used = channels_used / static_cast<double>(n);
  result.reports = std::move(reports);
  return result;
}

}  // namespace lppa::sim
