#include "sim/experiments.h"

#include <algorithm>

#include "core/theorems.h"

namespace lppa::sim {

using core::AggregateMetrics;
using core::AttackMetrics;
using core::BcmAttack;
using core::BpmAttack;
using core::LocationEstimate;

AttackPoint run_attack_point(const Scenario& scenario,
                             std::size_t num_channels, double bpm_fraction,
                             std::size_t bpm_cell_cap) {
  const geo::Dataset dataset = scenario.dataset().restricted_to(num_channels);
  const BcmAttack bcm(dataset);
  const BpmAttack bpm(dataset);

  std::vector<AttackMetrics> bcm_metrics;
  std::vector<AttackMetrics> bpm_metrics;
  bcm_metrics.reserve(scenario.users().size());
  bpm_metrics.reserve(scenario.users().size());

  for (const auto& su : scenario.users()) {
    auction::BidVector bids(su.bids.begin(),
                            su.bids.begin() +
                                static_cast<std::ptrdiff_t>(num_channels));
    const CellSet possible = bcm.run(bids);
    bcm_metrics.push_back(core::evaluate_attack(
        LocationEstimate::uniform_over(possible), dataset.grid(), su.cell));

    core::BpmOptions opts;
    opts.keep_fraction = bpm_fraction;
    opts.max_cells = bpm_cell_cap;
    const core::BpmResult ranked = bpm.run(possible, bids, opts);
    bpm_metrics.push_back(core::evaluate_attack(
        LocationEstimate::uniform_over(ranked.cells), dataset.grid(),
        su.cell));
  }

  AttackPoint point;
  point.num_channels = num_channels;
  point.bpm_fraction = bpm_fraction;
  point.bpm_cell_cap = bpm_cell_cap;
  point.bcm = core::aggregate(bcm_metrics);
  point.bpm = core::aggregate(bpm_metrics);
  return point;
}

std::vector<core::BidSubmission> make_submissions(
    const Scenario& scenario, const core::PpbsBidConfig& config,
    const core::SuKeyBundle& keys, std::uint64_t seed) {
  const core::BidSubmitter submitter(config, keys.gb_master, keys.gc);
  Rng rng(seed);
  std::vector<core::BidSubmission> out;
  out.reserve(scenario.users().size());
  for (const auto& su : scenario.users()) {
    Rng su_rng = rng.fork();
    out.push_back(submitter.submit(su.bids, su_rng));
  }
  return out;
}

DefensePoint run_defense_point(const Scenario& scenario,
                               const DefenseOptions& options,
                               std::uint64_t seed) {
  DefensePoint point;
  point.options = options;
  const geo::Dataset& dataset = scenario.dataset();

  // --- baselines without LPPA (Fig. 5's reference curves) ---------------
  const BcmAttack bcm(dataset);
  const BpmAttack bpm(dataset);
  std::vector<AttackMetrics> plain_bcm;
  std::vector<AttackMetrics> plain_bpm;
  for (const auto& su : scenario.users()) {
    const CellSet possible = bcm.run(su.bids);
    plain_bcm.push_back(core::evaluate_attack(
        LocationEstimate::uniform_over(possible), dataset.grid(), su.cell));
    core::BpmOptions opts;
    opts.keep_fraction = 0.5;
    opts.max_cells = options.bpm_cell_cap;
    const auto ranked = bpm.run(possible, su.bids, opts);
    plain_bpm.push_back(core::evaluate_attack(
        LocationEstimate::uniform_over(ranked.cells), dataset.grid(),
        su.cell));
  }
  point.plain_bcm = core::aggregate(plain_bcm);
  point.plain_bpm = core::aggregate(plain_bpm);

  // --- the LPPA round as seen by the curious auctioneer ------------------
  const auto policy = core::ZeroDisguisePolicy::linear(
      scenario.config().bmax, options.replace_prob);
  const auto config = core::PpbsBidConfig::advanced(
      scenario.config().bmax, options.rd, options.cr, policy);
  const core::TrustedThirdParty ttp(config, seed ^ 0x747470ULL);
  const auto submissions =
      make_submissions(scenario, config, ttp.su_keys(), seed);

  const core::LppaAdversary adversary(dataset);
  const auto estimates = adversary.attack(submissions, options.top_fraction);

  std::vector<AttackMetrics> lppa_metrics;
  lppa_metrics.reserve(estimates.size());
  for (std::size_t i = 0; i < estimates.size(); ++i) {
    lppa_metrics.push_back(core::evaluate_attack(
        estimates[i], dataset.grid(), scenario.users()[i].cell));
  }
  point.lppa = core::aggregate(lppa_metrics);
  return point;
}

DefenseSweepResult run_defense_sweep(const Scenario& scenario,
                                     const std::vector<double>& replace_probs,
                                     const std::vector<double>& top_fractions,
                                     const DefenseOptions& base,
                                     std::uint64_t seed) {
  DefenseSweepResult result;
  const geo::Dataset& dataset = scenario.dataset();

  // Baselines (the "without LPPA" reference of Fig. 5), computed once.
  {
    const core::BcmAttack bcm(dataset);
    const core::BpmAttack bpm(dataset);
    std::vector<core::AttackMetrics> plain_bcm, plain_bpm;
    for (const auto& su : scenario.users()) {
      const CellSet possible = bcm.run(su.bids);
      plain_bcm.push_back(core::evaluate_attack(
          LocationEstimate::uniform_over(possible), dataset.grid(), su.cell));
      core::BpmOptions opts;
      opts.keep_fraction = 0.5;
      opts.max_cells = base.bpm_cell_cap;
      const auto ranked = bpm.run(possible, su.bids, opts);
      plain_bpm.push_back(core::evaluate_attack(
          LocationEstimate::uniform_over(ranked.cells), dataset.grid(),
          su.cell));
    }
    result.plain_bcm = core::aggregate(plain_bcm);
    result.plain_bpm = core::aggregate(plain_bpm);
  }

  const core::LppaAdversary adversary(dataset);
  for (double replace : replace_probs) {
    const auto policy = core::ZeroDisguisePolicy::linear(
        scenario.config().bmax, replace);
    const auto config = core::PpbsBidConfig::advanced(
        scenario.config().bmax, base.rd, base.cr, policy);
    const core::TrustedThirdParty ttp(config, seed ^ 0x747470ULL);
    const auto submissions =
        make_submissions(scenario, config, ttp.su_keys(), seed);
    const auto ranks = adversary.rank_columns(submissions);

    for (double fraction : top_fractions) {
      const auto estimates =
          adversary.attack_from_ranks(ranks, submissions.size(), fraction);
      std::vector<core::AttackMetrics> metrics;
      metrics.reserve(estimates.size());
      for (std::size_t i = 0; i < estimates.size(); ++i) {
        metrics.push_back(core::evaluate_attack(
            estimates[i], dataset.grid(), scenario.users()[i].cell));
      }
      result.points.push_back(
          DefenseSweepPoint{replace, fraction, core::aggregate(metrics)});
    }
  }
  return result;
}

DefenseSweepResult run_defense_sweep_repeated(
    Scenario& scenario, std::size_t repetitions,
    const std::vector<double>& replace_probs,
    const std::vector<double>& top_fractions, const DefenseOptions& base,
    std::uint64_t seed) {
  LPPA_REQUIRE(repetitions >= 1, "need at least one repetition");
  std::vector<DefenseSweepResult> runs;
  runs.reserve(repetitions);
  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    scenario.resample_users(seed + 7919 * rep);
    runs.push_back(run_defense_sweep(scenario, replace_probs, top_fractions,
                                     base, seed + rep));
  }

  DefenseSweepResult merged = runs.front();
  std::vector<core::AggregateMetrics> bcm_runs, bpm_runs;
  for (const auto& run : runs) {
    bcm_runs.push_back(run.plain_bcm);
    bpm_runs.push_back(run.plain_bpm);
  }
  merged.plain_bcm = core::average_aggregates(bcm_runs);
  merged.plain_bpm = core::average_aggregates(bpm_runs);
  for (std::size_t p = 0; p < merged.points.size(); ++p) {
    std::vector<core::AggregateMetrics> point_runs;
    for (const auto& run : runs) point_runs.push_back(run.points[p].lppa);
    merged.points[p].lppa = core::average_aggregates(point_runs);
  }
  return merged;
}

PerformancePoint run_performance_point(Scenario& scenario,
                                       double replace_prob, auction::Money rd,
                                       std::uint64_t cr, std::size_t rounds,
                                       std::uint64_t seed) {
  LPPA_REQUIRE(rounds > 0, "need at least one auction round");
  PerformancePoint point;
  point.replace_prob = replace_prob;
  point.num_users = scenario.users().size();

  const std::size_t k = scenario.dataset().channel_count();
  const auction::Money bmax = scenario.config().bmax;
  const std::uint64_t lambda = scenario.config().lambda_m;

  double plain_sum = 0.0, lppa_sum = 0.0;
  double plain_sat = 0.0, lppa_sat = 0.0;

  for (std::size_t round = 0; round < rounds; ++round) {
    scenario.resample_users(seed + 1000 * round);
    const auto locations = scenario.locations();
    const auto bids = scenario.bids();
    const std::size_t interested = auction::count_interested(bids);

    // Plain baseline and LPPA run under identical allocation randomness:
    // LppaAuction consumes exactly one fork() of its rng for SU-side
    // masking before allocating, so discard one fork here to align the
    // two allocation streams channel-draw for channel-draw.
    Rng plain_rng(seed + 7 * round);
    Rng lppa_rng(seed + 7 * round);
    plain_rng.fork();

    const auction::PlainAuction plain(k, lambda);
    const auto plain_outcome = plain.run(locations, bids, plain_rng);
    plain_sum += static_cast<double>(plain_outcome.winning_bid_sum());
    plain_sat += plain_outcome.user_satisfaction(interested);

    core::LppaConfig cfg;
    cfg.num_channels = k;
    cfg.lambda = lambda;
    cfg.coord_width = scenario.coord_width();
    cfg.bid = core::PpbsBidConfig::advanced(
        bmax, rd, cr,
        core::ZeroDisguisePolicy::linear(bmax, replace_prob));
    core::LppaAuction lppa(cfg, seed ^ (0xabcdULL + round));
    const auto lppa_outcome = lppa.run(locations, bids, lppa_rng);
    lppa_sum += static_cast<double>(lppa_outcome.outcome.winning_bid_sum());
    lppa_sat += lppa_outcome.outcome.user_satisfaction(interested);
  }

  const auto n = static_cast<double>(rounds);
  point.plain_bid_sum = plain_sum / n;
  point.lppa_bid_sum = lppa_sum / n;
  point.bid_sum_ratio =
      (plain_sum > 0.0) ? lppa_sum / plain_sum : 0.0;
  point.plain_satisfaction = plain_sat / n;
  point.lppa_satisfaction = lppa_sat / n;
  point.satisfaction_ratio =
      (plain_sat > 0.0) ? lppa_sat / plain_sat : 0.0;
  return point;
}

CommCostRow measure_comm_cost(std::size_t users, std::size_t channels,
                              auction::Money bmax, auction::Money rd,
                              std::uint64_t cr, std::uint64_t seed) {
  const auto config = core::PpbsBidConfig::advanced(
      bmax, rd, cr, core::ZeroDisguisePolicy::none(bmax));
  const core::TrustedThirdParty ttp(config, seed);
  const auto keys = ttp.su_keys();
  const core::BidSubmitter submitter(config, keys.gb_master, keys.gc);

  const int w = config.enc.scaled_width();
  Rng rng(seed + 1);
  std::size_t digests = 0;
  std::size_t wire_bytes = 0;
  for (std::size_t u = 0; u < users; ++u) {
    auction::BidVector bids(channels);
    for (auto& b : bids) {
      b = static_cast<auction::Money>(
          rng.uniform_int(0, static_cast<std::int64_t>(bmax)));
    }
    const auto submission = submitter.submit(bids, rng);
    for (const auto& ch : submission.channels) {
      digests += ch.value_family.size() + ch.range_set.size();
    }
    wire_bytes += submission.wire_size();
  }

  CommCostRow row;
  row.width = w;
  row.channels = channels;
  row.users = users;
  row.predicted_bits = core::theorems::thm4_comm_bits(
      core::theorems::hmac_length_ratio(w), channels, users, w);
  row.measured_digest_bits = static_cast<double>(digests) * 256.0;
  row.measured_wire_bits = static_cast<double>(wire_bytes) * 8.0;
  return row;
}

}  // namespace lppa::sim
