#include "sim/scenario.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace lppa::sim {

auction::Money quantize_bid(double q, double beta, auction::Money bmax,
                            double noise_frac, Rng& rng) {
  LPPA_REQUIRE(q >= 0.0 && q <= 1.0, "quality must be in [0,1]");
  LPPA_REQUIRE(beta >= 0.0, "urgency must be non-negative");
  if (q <= 0.0) return 0;
  const double eta = rng.uniform(-noise_frac, noise_frac);
  const double value = q * beta * static_cast<double>(bmax) * (1.0 + eta);
  const double rounded = std::round(std::clamp(
      value, 0.0, static_cast<double>(bmax)));
  return static_cast<auction::Money>(rounded);
}

Scenario::Scenario(const ScenarioConfig& config)
    : config_(config),
      dataset_(geo::generate_dataset(geo::area_preset(config.area_id),
                                     config.fcc, config.seed)) {
  LPPA_REQUIRE(config_.num_users > 0, "scenario requires users");
  LPPA_REQUIRE(config_.beta_min > 0.0 && config_.beta_min <= config_.beta_max,
               "invalid urgency range");
  Rng rng(config_.seed ^ 0x757365727321ULL);  // users stream
  generate_users(rng);
}

void Scenario::resample_users(std::uint64_t seed) {
  Rng rng(seed ^ 0x757365727321ULL);
  generate_users(rng);
}

void Scenario::generate_users(Rng& rng) {
  const geo::Grid& grid = dataset_.grid();
  users_.clear();
  users_.reserve(config_.num_users);
  for (std::size_t i = 0; i < config_.num_users; ++i) {
    SuRecord su;
    const std::size_t cell_index = rng.below(grid.cell_count());
    su.cell = grid.cell_at(cell_index);

    // Uniform position inside the cell, quantised to integer metres.
    const geo::Point center = grid.center(su.cell);
    const double half = grid.cell_size_m() / 2.0;
    const double x = center.x + rng.uniform(-half, half);
    const double y = center.y + rng.uniform(-half, half);
    su.loc.x = static_cast<std::uint64_t>(std::max(0.0, std::round(x)));
    su.loc.y = static_cast<std::uint64_t>(std::max(0.0, std::round(y)));

    generate_bids(su, cell_index, rng);
    users_.push_back(std::move(su));
  }
}

void Scenario::generate_bids(SuRecord& su, std::size_t cell_index, Rng& rng) {
  su.beta = rng.uniform(config_.beta_min, config_.beta_max);
  su.bids.assign(dataset_.channel_count(), 0);
  if (config_.initial_phase == InitialPhase::kDatabaseQuery) {
    // The SU asks the white-space database which channels are usable at
    // its position and what their published quality statistics are...
    const auto available = db_.query(dataset_.grid().cell_at(cell_index));
    for (const auto& info : available) {
      // ...then evaluates each by sensing: the statistic plus
      // measurement discrepancy (paper §III-B), clamped to [0,1].
      const double q_sensed = std::clamp(
          info.quality + rng.normal(0.0, config_.quality_noise_sd), 0.0,
          1.0);
      su.bids[info.channel] = quantize_bid(q_sensed, su.beta, config_.bmax,
                                           config_.noise_frac, rng);
    }
  } else {
    // Pure spectrum sensing: both the availability verdict and the
    // quality estimate come from noisy energy detection — the SU can bid
    // on a protected channel (interference) or miss an available one.
    const geo::EnergyDetector detector(config_.sensing);
    for (const auto& sensed : detector.sense(dataset_, cell_index, rng)) {
      su.bids[sensed.channel] = quantize_bid(
          sensed.quality, su.beta, config_.bmax, config_.noise_frac, rng);
    }
  }
}

std::vector<std::size_t> Scenario::move_users(std::uint64_t seed,
                                              double prob) {
  LPPA_REQUIRE(prob >= 0.0 && prob <= 1.0,
               "move probability must be in [0,1]");
  Rng rng(seed ^ 0x6d6f766521ULL);  // moves stream
  const geo::Grid& grid = dataset_.grid();
  std::vector<std::size_t> moved;
  for (std::size_t i = 0; i < users_.size(); ++i) {
    if (rng.uniform(0.0, 1.0) >= prob) continue;
    SuRecord& su = users_[i];
    const std::size_t cell_index = rng.below(grid.cell_count());
    su.cell = grid.cell_at(cell_index);
    const geo::Point center = grid.center(su.cell);
    const double half = grid.cell_size_m() / 2.0;
    const double x = center.x + rng.uniform(-half, half);
    const double y = center.y + rng.uniform(-half, half);
    su.loc.x = static_cast<std::uint64_t>(std::max(0.0, std::round(x)));
    su.loc.y = static_cast<std::uint64_t>(std::max(0.0, std::round(y)));
    generate_bids(su, cell_index, rng);
    moved.push_back(i);
  }
  return moved;
}

void Scenario::rebid(std::uint64_t seed) {
  Rng rng(seed ^ 0x726562696421ULL);
  for (auto& su : users_) {
    generate_bids(su, dataset_.grid().index(su.cell), rng);
  }
}

std::vector<auction::SuLocation> Scenario::locations() const {
  std::vector<auction::SuLocation> out;
  out.reserve(users_.size());
  for (const auto& su : users_) out.push_back(su.loc);
  return out;
}

std::vector<auction::BidVector> Scenario::bids() const {
  std::vector<auction::BidVector> out;
  out.reserve(users_.size());
  for (const auto& su : users_) out.push_back(su.bids);
  return out;
}

int Scenario::coord_width() const {
  const geo::Grid& grid = dataset_.grid();
  const double max_extent = std::max(grid.width_m(), grid.height_m());
  const std::uint64_t max_coord =
      static_cast<std::uint64_t>(std::ceil(max_extent)) + 2 * config_.lambda_m;
  return bit_width_for_value(max_coord);
}

}  // namespace lppa::sim
