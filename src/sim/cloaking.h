// Location-cloaking baseline defence, for comparison against LPPA.
//
// The obvious alternative to cryptographic masking is spatial cloaking:
// each SU reports only the cloak block (of `cloak_cells` x `cloak_cells`
// grid cells) containing it, with plaintext bids.  Two consequences:
//
//   * privacy is capped — the auctioneer still sees the bid vector, so
//     BCM/BPM run at full strength and the cloak only clips their
//     output to the block;
//   * the auctioneer must build the conflict graph conservatively
//     (any two blocks that COULD contain interfering users conflict),
//     which destroys spatial reuse as blocks grow.
//
// LPPA dominates this baseline: it gets the conflict graph exactly right
// (no reuse loss from location hiding) while denying the attacker the
// bid values entirely.  bench/abl_cloaking quantifies both sides.
#pragma once

#include "core/attack_metrics.h"
#include "sim/scenario.h"

namespace lppa::sim {

struct CloakingPoint {
  std::size_t cloak_cells = 1;  ///< cloak block side, in grid cells
  /// Attack quality: cloak block ∩ BCM, refined by BPM at 50 %.
  core::AggregateMetrics privacy;
  /// Revenue of the auction under the conservative conflict graph,
  /// relative to the exact-location auction on the same world.
  double revenue_ratio = 0.0;
  /// Conflict-edge inflation: conservative edges / exact edges.
  double conflict_inflation = 0.0;
};

/// The conservative conflict predicate between two cloak blocks: true
/// iff some pair of positions inside the blocks could interfere.
bool cloaked_conflict(const geo::Grid& grid, const geo::Cell& a,
                      const geo::Cell& b, std::size_t cloak_cells,
                      std::uint64_t lambda_m);

/// Evaluates the cloaking defence at one block size.
CloakingPoint run_cloaking_point(const Scenario& scenario,
                                 std::size_t cloak_cells, std::uint64_t seed);

}  // namespace lppa::sim
