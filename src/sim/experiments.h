// Experiment drivers shared by the bench binaries and the integration
// tests.  Each function reproduces one measurement family from the
// paper's §VI; the bench binaries only choose parameter grids and print
// tables.
#pragma once

#include <vector>

#include "core/adversary.h"
#include "core/attack_metrics.h"
#include "core/bcm.h"
#include "core/bpm.h"
#include "core/lppa_auction.h"
#include "sim/scenario.h"

namespace lppa::sim {

// ---------------------------------------------------------------- attacks

/// One point of the Fig. 4 sweeps: BCM + BPM over every user of a
/// scenario, with the dataset restricted to `num_channels` channels.
struct AttackPoint {
  std::size_t num_channels = 0;
  double bpm_fraction = 1.0;      ///< fraction of BCM cells BPM keeps
  std::size_t bpm_cell_cap = 0;   ///< hard cap (0 = none)
  core::AggregateMetrics bcm;     ///< metrics of the BCM stage
  core::AggregateMetrics bpm;     ///< metrics of the BPM stage
};

AttackPoint run_attack_point(const Scenario& scenario,
                             std::size_t num_channels, double bpm_fraction,
                             std::size_t bpm_cell_cap);

// ---------------------------------------------------------------- defence

/// Parameters of one Fig. 5(a)-(d) point.
struct DefenseOptions {
  double replace_prob = 0.5;  ///< 1 - p_0, the zero-replace probability
  double top_fraction = 0.5;  ///< attacker's per-column top percentage
  auction::Money rd = 3;      ///< offset
  std::uint64_t cr = 4;       ///< range-mapping factor
  std::size_t bpm_cell_cap = 250;
};

/// One Fig. 5(a)-(d) point: the LPPA-protected adversary metrics next to
/// the unprotected BCM and BPM baselines on the same user population.
struct DefensePoint {
  DefenseOptions options;
  core::AggregateMetrics lppa;       ///< top-x% ranking attack vs LPPA
  core::AggregateMetrics plain_bcm;  ///< BCM without LPPA
  core::AggregateMetrics plain_bpm;  ///< BPM without LPPA
};

DefensePoint run_defense_point(const Scenario& scenario,
                               const DefenseOptions& options,
                               std::uint64_t seed);

/// The whole Fig. 5(a)-(d) grid in one pass: submissions and column
/// rankings are built once per replace_prob and every top_fraction is
/// evaluated against them.  Baselines are computed once.
struct DefenseSweepPoint {
  double replace_prob = 0.0;
  double top_fraction = 0.0;
  core::AggregateMetrics lppa;
};

struct DefenseSweepResult {
  core::AggregateMetrics plain_bcm;  ///< BCM without LPPA
  core::AggregateMetrics plain_bpm;  ///< BPM without LPPA (50 % keep)
  std::vector<DefenseSweepPoint> points;
};

DefenseSweepResult run_defense_sweep(const Scenario& scenario,
                                     const std::vector<double>& replace_probs,
                                     const std::vector<double>& top_fractions,
                                     const DefenseOptions& base,
                                     std::uint64_t seed);

/// Repetition-averaged variant: resamples the user population
/// `repetitions` times (same coverage world) and averages every metric —
/// the smoothing the paper's Fig. 5 curves imply.
DefenseSweepResult run_defense_sweep_repeated(
    Scenario& scenario, std::size_t repetitions,
    const std::vector<double>& replace_probs,
    const std::vector<double>& top_fractions, const DefenseOptions& base,
    std::uint64_t seed);

/// Builds the masked bid submissions an auctioneer would hold for this
/// scenario (PPBS only; no allocation) — the adversary's input.
std::vector<core::BidSubmission> make_submissions(
    const Scenario& scenario, const core::PpbsBidConfig& config,
    const core::SuKeyBundle& keys, std::uint64_t seed);

// ------------------------------------------------------------ performance

/// One Fig. 5(e)/(f) point: plain vs LPPA auction performance, averaged
/// over `rounds` resampled user populations.
struct PerformancePoint {
  double replace_prob = 0.5;
  std::size_t num_users = 0;
  double plain_bid_sum = 0.0;
  double lppa_bid_sum = 0.0;
  double bid_sum_ratio = 0.0;  ///< lppa / plain ("reduction" = 1 - ratio)
  double plain_satisfaction = 0.0;
  double lppa_satisfaction = 0.0;
  double satisfaction_ratio = 0.0;
};

PerformancePoint run_performance_point(Scenario& scenario,
                                       double replace_prob, auction::Money rd,
                                       std::uint64_t cr, std::size_t rounds,
                                       std::uint64_t seed);

// -------------------------------------------------------- communication

/// Theorem 4 check: predicted vs measured bid-submission volume.
struct CommCostRow {
  int width = 0;            ///< scaled bid width w
  std::size_t channels = 0;
  std::size_t users = 0;
  double predicted_bits = 0.0;    ///< h*k*N*(3w-1)(w+1)
  double measured_digest_bits = 0.0;  ///< 256 bits per transmitted digest
  double measured_wire_bits = 0.0;    ///< full wire size incl. framing
};

CommCostRow measure_comm_cost(std::size_t users, std::size_t channels,
                              auction::Money bmax, auction::Money rd,
                              std::uint64_t cr, std::uint64_t seed);

}  // namespace lppa::sim
