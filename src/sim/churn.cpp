#include "sim/churn.h"

#include "common/error.h"

namespace lppa::sim {

ChurnSchedule::ChurnSchedule(const ChurnScheduleConfig& config)
    : config_(config),
      rng_(config.seed ^ 0x636875726e21ULL),  // churn stream
      live_(config.capacity, false),
      locations_(config.capacity),
      bids_(config.capacity) {
  LPPA_REQUIRE(config_.capacity > 0, "churn schedule needs slots");
  LPPA_REQUIRE(config_.initial_live <= config_.capacity,
               "initial_live exceeds capacity");
  LPPA_REQUIRE(config_.num_channels > 0, "churn schedule needs channels");
  LPPA_REQUIRE(config_.coord_width > 1 && config_.coord_width <= 62,
               "coordinate width out of range");
  const std::uint64_t extent = std::uint64_t{1} << config_.coord_width;
  LPPA_REQUIRE(2 * config_.lambda < extent,
               "interference range exceeds the coordinate space");
  LPPA_REQUIRE(config_.depart_prob + config_.move_prob + config_.rebid_prob
                   <= 1.0,
               "per-live-slot event probabilities exceed 1");
  for (std::size_t u = 0; u < config_.initial_live; ++u) {
    live_[u] = true;
    locations_[u] = draw_location();
    bids_[u] = draw_bids();
    ++live_count_;
  }
}

auction::SuLocation ChurnSchedule::draw_location() {
  // Keep loc + 2λ inside the coordinate space so every range cover the
  // PPBS layer derives from this position is well-formed.
  const std::uint64_t extent = std::uint64_t{1} << config_.coord_width;
  const std::uint64_t span = extent - 2 * config_.lambda;
  auction::SuLocation loc;
  loc.x = rng_.below(span);
  loc.y = rng_.below(span);
  return loc;
}

auction::BidVector ChurnSchedule::draw_bids() {
  auction::BidVector bids(config_.num_channels, 0);
  for (auto& b : bids) {
    b = static_cast<auction::Money>(
        rng_.below(static_cast<std::uint64_t>(config_.bmax) + 1));
  }
  return bids;
}

std::vector<ChurnEvent> ChurnSchedule::next_round() {
  std::vector<ChurnEvent> events;
  for (std::size_t u = 0; u < config_.capacity; ++u) {
    if (!live_[u]) {
      if (rng_.uniform(0.0, 1.0) >= config_.arrive_prob) continue;
      ChurnEvent ev;
      ev.kind = ChurnEvent::Kind::kArrive;
      ev.user = u;
      ev.loc = draw_location();
      ev.bids = draw_bids();
      live_[u] = true;
      locations_[u] = ev.loc;
      bids_[u] = ev.bids;
      ++live_count_;
      events.push_back(std::move(ev));
      continue;
    }
    // One draw per live slot, cascaded so the outcomes are mutually
    // exclusive with exactly the configured probabilities.
    const double roll = rng_.uniform(0.0, 1.0);
    if (roll < config_.depart_prob) {
      // Never empty the auction: a departure that would leave no live
      // SU is suppressed (the greedy allocator requires participants).
      if (live_count_ == 1) continue;
      ChurnEvent ev;
      ev.kind = ChurnEvent::Kind::kDepart;
      ev.user = u;
      live_[u] = false;
      locations_[u] = auction::SuLocation{};
      bids_[u].clear();
      --live_count_;
      events.push_back(std::move(ev));
    } else if (roll < config_.depart_prob + config_.move_prob) {
      ChurnEvent ev;
      ev.kind = ChurnEvent::Kind::kMove;
      ev.user = u;
      ev.loc = draw_location();
      ev.bids = bids_[u];
      locations_[u] = ev.loc;
      events.push_back(std::move(ev));
    } else if (roll <
               config_.depart_prob + config_.move_prob + config_.rebid_prob) {
      ChurnEvent ev;
      ev.kind = ChurnEvent::Kind::kRebid;
      ev.user = u;
      ev.loc = locations_[u];
      ev.bids = draw_bids();
      bids_[u] = ev.bids;
      events.push_back(std::move(ev));
    }
  }
  return events;
}

}  // namespace lppa::sim
