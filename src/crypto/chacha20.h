// ChaCha20 stream cipher (RFC 8439), implemented from scratch.
//
// This is the TTP symmetric primitive: SUs seal their true bid under the
// TTP key gc (crypto/sealed_box.h wraps it in encrypt-then-MAC).  The
// paper leaves the symmetric scheme unspecified; any IND-CPA cipher works
// and ChaCha20 is compact and constant-time by construction.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/bytes.h"
#include "crypto/keys.h"

namespace lppa::crypto {

/// A 96-bit ChaCha20 nonce.  Must never repeat under one key; SealedBox
/// derives nonces from a per-key counter plus RNG salt.
using Nonce = std::array<std::uint8_t, 12>;

/// XORs `data` with the ChaCha20 keystream for (key, nonce, counter).
/// Encryption and decryption are the same operation.
Bytes chacha20_xor(const SecretKey& key, const Nonce& nonce,
                   std::uint32_t initial_counter,
                   std::span<const std::uint8_t> data);

/// Exposes one 64-byte keystream block for test-vector validation
/// (RFC 8439 section 2.3.2).
std::array<std::uint8_t, 64> chacha20_block(const SecretKey& key,
                                            const Nonce& nonce,
                                            std::uint32_t counter);

}  // namespace lppa::crypto
