#include "crypto/sealed_box.h"

#include "crypto/aes.h"

namespace lppa::crypto {

Bytes SealedMessage::serialize() const {
  ByteWriter w;
  w.raw(std::span<const std::uint8_t>(nonce));
  w.bytes(std::span<const std::uint8_t>(ciphertext));
  w.raw(std::span<const std::uint8_t>(tag.bytes));
  return w.take();
}

SealedMessage SealedMessage::deserialize(std::span<const std::uint8_t> wire) {
  ByteReader r(wire);
  SealedMessage m;
  const Bytes nonce_bytes = r.raw(m.nonce.size());
  std::copy(nonce_bytes.begin(), nonce_bytes.end(), m.nonce.begin());
  m.ciphertext = r.bytes();
  const Bytes tag_bytes = r.raw(m.tag.bytes.size());
  std::copy(tag_bytes.begin(), tag_bytes.end(), m.tag.bytes.begin());
  LPPA_PROTOCOL_CHECK(r.at_end(), "trailing bytes after SealedMessage");
  return m;
}

SealedBox::SealedBox(const SecretKey& gc, SealedCipher cipher)
    : cipher_(cipher),
      // Per-cipher key separation: switching ciphers also switches keys,
      // so a ciphertext can never be accidentally opened under the wrong
      // primitive.
      enc_key_(gc.derive(cipher == SealedCipher::kChaCha20 ? "enc-chacha"
                                                           : "enc-aes",
                         0)),
      mac_key_(gc.derive("mac", static_cast<std::uint64_t>(cipher))) {}

Bytes SealedBox::keystream_xor(const Nonce& nonce,
                               std::span<const std::uint8_t> data) const {
  switch (cipher_) {
    case SealedCipher::kChaCha20:
      return chacha20_xor(enc_key_, nonce, /*initial_counter=*/1, data);
    case SealedCipher::kAes128Ctr:
      return aes128_ctr_xor(
          std::span<const std::uint8_t>(enc_key_.bytes().data(), 16),
          std::span<const std::uint8_t>(nonce.data(), nonce.size()),
          /*initial_counter=*/1, data);
  }
  LPPA_REQUIRE(false, "unknown sealed cipher");
  return {};
}

namespace {
Digest compute_tag(const SecretKey& mac_key, const Nonce& nonce,
                   std::span<const std::uint8_t> ciphertext) {
  HmacSha256 mac(mac_key);
  mac.update(std::span<const std::uint8_t>(nonce));
  mac.update(ciphertext);
  return mac.finalize();
}
}  // namespace

SealedMessage SealedBox::seal(std::span<const std::uint8_t> plaintext,
                              Rng& rng) const {
  SealedMessage m;
  for (auto& b : m.nonce) b = static_cast<std::uint8_t>(rng.below(256));
  m.ciphertext = keystream_xor(m.nonce, plaintext);
  m.tag = compute_tag(mac_key_, m.nonce, std::span<const std::uint8_t>(m.ciphertext));
  return m;
}

std::optional<Bytes> SealedBox::open(const SealedMessage& message) const {
  const Digest expected = compute_tag(
      mac_key_, message.nonce, std::span<const std::uint8_t>(message.ciphertext));
  if (!ct_equal(expected.bytes, message.tag.bytes)) return std::nullopt;
  return keystream_xor(message.nonce,
                       std::span<const std::uint8_t>(message.ciphertext));
}

}  // namespace lppa::crypto
