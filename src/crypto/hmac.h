// HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//
// This is the masking function the PPBS protocol applies to numericalised
// prefixes: H_g(x) = HMAC_g(O(x)).  The auctioneer only ever compares
// digests for equality, so HMAC's PRF property is exactly the hiding the
// scheme needs.
//
// Hot-path note: a one-shot HMAC over a short message costs 4 SHA-256
// compressions — ipad block, inner finalise, opad block, outer finalise.
// Every prefix family / range cover hashes dozens of 8-byte messages
// under the SAME key, so HmacKeyCtx absorbs the ipad and opad blocks once
// per key and clones the cached midstates per message, cutting the
// steady-state cost to 2 compressions per digest.  All entry points below
// (including the RFC-vector raw-key path) are built on the midstate cache,
// so the RFC 4231 suite exercises it directly.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "crypto/keys.h"
#include "crypto/sha256.h"

namespace lppa::crypto {

/// Per-key HMAC context: the SHA-256 midstates after absorbing the ipad
/// and opad blocks.  Construction costs 2 compressions; each mac() then
/// costs 2 (for messages up to 55 bytes) instead of the one-shot 4.
/// Immutable after construction, so one context can be shared freely
/// across threads.
class HmacKeyCtx {
 public:
  /// Protocol keys are always 32 bytes (< block size): zero-padded.
  explicit HmacKeyCtx(const SecretKey& key) noexcept;

  /// RFC 2104 key handling for arbitrary-length raw keys: longer than the
  /// 64-byte block are pre-hashed, shorter ones zero-padded.  Exists so
  /// the RFC 4231 vectors (short and oversized keys) run through the
  /// midstate-cached path.
  static HmacKeyCtx from_raw_key(std::span<const std::uint8_t> key) noexcept;

  /// HMAC over a full message, from the cached midstates.
  Digest mac(std::span<const std::uint8_t> message) const noexcept;

  /// HMAC over a single little-endian 64-bit integer — the numericalised
  /// prefix hot path.
  Digest mac_u64(std::uint64_t value) const noexcept;

  /// Batched form of mac_u64: out[i] = HMAC(key, values[i]).  Requires
  /// out.size() == values.size().  Equivalent digest-for-digest to the
  /// per-call API (pinned by a property test); exists so callers hashing
  /// a whole prefix family make one call and the key schedule is paid
  /// exactly once per key instead of once per digest.
  void mac_u64_batch(std::span<const std::uint64_t> values,
                     std::span<Digest> out) const;

  /// The inner-hash midstate (ipad block absorbed).  Streaming callers
  /// (HmacSha256) clone this and keep update()ing.
  const Sha256& inner_midstate() const noexcept { return inner_mid_; }

  /// Finishes the outer hash over an inner digest.
  Digest finish_outer(const Digest& inner_digest) const noexcept;

 private:
  HmacKeyCtx() = default;
  void init(std::span<const std::uint8_t> padded_key) noexcept;

  Sha256 inner_mid_;  ///< state after absorbing key ^ ipad
  Sha256 outer_mid_;  ///< state after absorbing key ^ opad
};

/// One-shot HMAC-SHA-256 over a byte message.
Digest hmac_sha256(const SecretKey& key, std::span<const std::uint8_t> message);

/// HMAC-SHA-256 with an arbitrary-length raw key (RFC 2104 key handling:
/// keys longer than the block are pre-hashed, shorter ones zero-padded).
/// The protocol always uses 32-byte SecretKeys; this entry point exists
/// so the implementation can be validated against the RFC 4231 vectors,
/// which exercise short and oversized keys.
Digest hmac_sha256_raw_key(std::span<const std::uint8_t> key,
                           std::span<const std::uint8_t> message);

/// Convenience overload for string messages (test vectors).
Digest hmac_sha256(const SecretKey& key, std::string_view message);

/// HMAC over a single little-endian 64-bit integer — the hot path for
/// hashing numericalised prefixes.  One-shot; callers with more than one
/// value per key should hold an HmacKeyCtx or use the batch API.
Digest hmac_sha256_u64(const SecretKey& key, std::uint64_t value);

/// out[i] = HMAC(key, values[i]); requires out.size() == values.size().
void hmac_sha256_u64_batch(const SecretKey& key,
                           std::span<const std::uint64_t> values,
                           std::span<Digest> out);

/// Incremental HMAC, for the SealedBox MAC over header+ciphertext.
class HmacSha256 {
 public:
  explicit HmacSha256(const SecretKey& key) noexcept;

  void update(std::span<const std::uint8_t> data) noexcept {
    inner_.update(data);
  }
  Digest finalize() noexcept;

 private:
  HmacKeyCtx ctx_;
  Sha256 inner_;
};

}  // namespace lppa::crypto
