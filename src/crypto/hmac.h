// HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//
// This is the masking function the PPBS protocol applies to numericalised
// prefixes: H_g(x) = HMAC_g(O(x)).  The auctioneer only ever compares
// digests for equality, so HMAC's PRF property is exactly the hiding the
// scheme needs.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "crypto/keys.h"
#include "crypto/sha256.h"

namespace lppa::crypto {

/// One-shot HMAC-SHA-256 over a byte message.
Digest hmac_sha256(const SecretKey& key, std::span<const std::uint8_t> message);

/// HMAC-SHA-256 with an arbitrary-length raw key (RFC 2104 key handling:
/// keys longer than the block are pre-hashed, shorter ones zero-padded).
/// The protocol always uses 32-byte SecretKeys; this entry point exists
/// so the implementation can be validated against the RFC 4231 vectors,
/// which exercise short and oversized keys.
Digest hmac_sha256_raw_key(std::span<const std::uint8_t> key,
                           std::span<const std::uint8_t> message);

/// Convenience overload for string messages (test vectors).
Digest hmac_sha256(const SecretKey& key, std::string_view message);

/// HMAC over a single little-endian 64-bit integer — the hot path for
/// hashing numericalised prefixes.
Digest hmac_sha256_u64(const SecretKey& key, std::uint64_t value);

/// Incremental HMAC, for the SealedBox MAC over header+ciphertext.
class HmacSha256 {
 public:
  explicit HmacSha256(const SecretKey& key) noexcept;

  void update(std::span<const std::uint8_t> data) noexcept {
    inner_.update(data);
  }
  Digest finalize() noexcept;

 private:
  Sha256 inner_;
  std::array<std::uint8_t, 64> opad_key_;
};

}  // namespace lppa::crypto
