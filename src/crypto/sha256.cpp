#include "crypto/sha256.h"

#include <bit>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <cpuid.h>
#include <immintrin.h>
#define LPPA_SHA_NI_DISPATCH 1
#endif

namespace lppa::crypto {

namespace {

constexpr std::array<std::uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::array<std::uint32_t, 8> kInitialState = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

inline std::uint32_t rotr(std::uint32_t x, int n) noexcept {
  return std::rotr(x, n);
}

#ifdef LPPA_SHA_NI_DISPATCH

// Hardware compression via the x86 SHA extensions (sha256rnds2 does two
// rounds per instruction; sha256msg1/msg2 run the message schedule).
// Register layout follows Intel's reference: STATE0 holds {A,B,E,F},
// STATE1 holds {C,D,G,H}, and the schedule keeps four 4-word message
// blocks rotating through msgs[0..3].  Bit-identical to the scalar path —
// the RFC/FIPS vector tests exercise whichever path dispatch picks.
__attribute__((target("sha,sse4.1,ssse3"))) void process_block_shani(
    std::array<std::uint32_t, 8>& state, const std::uint8_t* block) noexcept {
  const __m128i kBswapMask =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);    // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);         // CDGH

  const __m128i abef_save = state0;
  const __m128i cdgh_save = state1;

  __m128i msgs[4];
  for (int g = 0; g < 16; ++g) {
    __m128i x0;
    if (g < 4) {
      x0 = _mm_shuffle_epi8(
          _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(block + 16 * g)),
          kBswapMask);
      msgs[g] = x0;
    } else {
      x0 = msgs[g & 3];
    }
    __m128i msg = _mm_add_epi32(
        x0, _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(&kRoundConstants[4 * g])));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    if (g >= 3 && g < 15) {
      // W[4(g+1)..4(g+1)+3] = msg2(msg1-partial + W[i-7] terms, x0).
      const __m128i w_im7 = _mm_alignr_epi8(x0, msgs[(g + 3) & 3], 4);
      msgs[(g + 1) & 3] = _mm_sha256msg2_epu32(
          _mm_add_epi32(msgs[(g + 1) & 3], w_im7), x0);
    }
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    if (g >= 1 && g < 13) {
      msgs[(g + 3) & 3] = _mm_sha256msg1_epu32(msgs[(g + 3) & 3], x0);
    }
  }

  state0 = _mm_add_epi32(state0, abef_save);
  state1 = _mm_add_epi32(state1, cdgh_save);

  tmp = _mm_shuffle_epi32(state0, 0x1B);     // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);  // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);      // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);         // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

bool detect_sha_ni() noexcept {
  unsigned a = 0, b = 0, c = 0, d = 0;
  if (!__get_cpuid_count(7, 0, &a, &b, &c, &d)) return false;
  const bool sha = (b >> 29) & 1u;
  if (!__get_cpuid(1, &a, &b, &c, &d)) return false;
  const bool ssse3 = (c >> 9) & 1u;
  const bool sse41 = (c >> 19) & 1u;
  return sha && ssse3 && sse41;
}

const bool kHasShaNi = detect_sha_ni();

#endif  // LPPA_SHA_NI_DISPATCH

}  // namespace

std::uint64_t Digest::fingerprint() const noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  return v;
}

Sha256::Sha256() noexcept { reset(); }

void Sha256::reset() noexcept {
  state_ = kInitialState;
  buffer_len_ = 0;
  total_len_ = 0;
}

void Sha256::update(std::string_view data) noexcept {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

void Sha256::update(std::span<const std::uint8_t> data) noexcept {
  total_len_ += data.size();
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == 64) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

void Sha256::process_block(const std::uint8_t* block) noexcept {
#ifdef LPPA_SHA_NI_DISPATCH
  if (kHasShaNi) {
    process_block_shani(state_, block);
    return;
  }
#endif
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = static_cast<std::uint32_t>(block[4 * i]) << 24 |
           static_cast<std::uint32_t>(block[4 * i + 1]) << 16 |
           static_cast<std::uint32_t>(block[4 * i + 2]) << 8 |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];

  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t temp1 = h + s1 + ch + kRoundConstants[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }

  state_[0] += a; state_[1] += b; state_[2] += c; state_[3] += d;
  state_[4] += e; state_[5] += f; state_[6] += g; state_[7] += h;
}

Digest Sha256::finalize() noexcept {
  const std::uint64_t bit_len = total_len_ * 8;
  // Padding: 0x80, zeros, 64-bit big-endian length.
  std::uint8_t pad[72] = {0x80};
  const std::size_t pad_len =
      (buffer_len_ < 56) ? (56 - buffer_len_) : (120 - buffer_len_);
  update(std::span<const std::uint8_t>(pad, pad_len));
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  // Note: update() bumps total_len_, but we already captured bit_len.
  update(std::span<const std::uint8_t>(len_bytes, 8));

  Digest out;
  for (int i = 0; i < 8; ++i) {
    out.bytes[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    out.bytes[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out.bytes[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out.bytes[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

Digest Sha256::hash(std::span<const std::uint8_t> data) noexcept {
  Sha256 h;
  h.update(data);
  return h.finalize();
}

Digest Sha256::hash(std::string_view data) noexcept {
  Sha256 h;
  h.update(data);
  return h.finalize();
}

bool Sha256::accelerated() noexcept {
#ifdef LPPA_SHA_NI_DISPATCH
  return kHasShaNi;
#else
  return false;
#endif
}

}  // namespace lppa::crypto
