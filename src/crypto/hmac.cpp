#include "crypto/hmac.h"

#include <cstring>

#include "common/error.h"

namespace lppa::crypto {

namespace {
constexpr std::size_t kBlockSize = 64;
}

void HmacKeyCtx::init(std::span<const std::uint8_t> padded_key) noexcept {
  std::array<std::uint8_t, kBlockSize> pad;
  for (std::size_t i = 0; i < kBlockSize; ++i) pad[i] = padded_key[i] ^ 0x36;
  inner_mid_.update(std::span<const std::uint8_t>(pad));
  for (std::size_t i = 0; i < kBlockSize; ++i) pad[i] = padded_key[i] ^ 0x5c;
  outer_mid_.update(std::span<const std::uint8_t>(pad));
}

HmacKeyCtx::HmacKeyCtx(const SecretKey& key) noexcept {
  // Keys are always 32 bytes (< block size), so no pre-hashing needed.
  std::array<std::uint8_t, kBlockSize> padded{};
  const auto kb = key.bytes();
  std::memcpy(padded.data(), kb.data(), kb.size());
  init(padded);
}

HmacKeyCtx HmacKeyCtx::from_raw_key(
    std::span<const std::uint8_t> key) noexcept {
  std::array<std::uint8_t, kBlockSize> padded{};
  if (key.size() > kBlockSize) {
    const Digest hashed = Sha256::hash(key);
    std::memcpy(padded.data(), hashed.bytes.data(), hashed.bytes.size());
  } else {
    std::memcpy(padded.data(), key.data(), key.size());
  }
  HmacKeyCtx ctx;
  ctx.init(padded);
  return ctx;
}

Digest HmacKeyCtx::finish_outer(const Digest& inner_digest) const noexcept {
  Sha256 outer = outer_mid_;
  outer.update(std::span<const std::uint8_t>(inner_digest.bytes));
  return outer.finalize();
}

Digest HmacKeyCtx::mac(std::span<const std::uint8_t> message) const noexcept {
  Sha256 inner = inner_mid_;
  inner.update(message);
  return finish_outer(inner.finalize());
}

Digest HmacKeyCtx::mac_u64(std::uint64_t value) const noexcept {
  std::uint8_t buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::uint8_t>(value >> (8 * i));
  return mac(std::span<const std::uint8_t>(buf, 8));
}

void HmacKeyCtx::mac_u64_batch(std::span<const std::uint64_t> values,
                               std::span<Digest> out) const {
  LPPA_REQUIRE(values.size() == out.size(),
               "hmac batch output span must match input size");
  for (std::size_t i = 0; i < values.size(); ++i) out[i] = mac_u64(values[i]);
}

HmacSha256::HmacSha256(const SecretKey& key) noexcept
    : ctx_(key), inner_(ctx_.inner_midstate()) {}

Digest HmacSha256::finalize() noexcept {
  return ctx_.finish_outer(inner_.finalize());
}

Digest hmac_sha256(const SecretKey& key, std::span<const std::uint8_t> message) {
  return HmacKeyCtx(key).mac(message);
}

Digest hmac_sha256_raw_key(std::span<const std::uint8_t> key,
                           std::span<const std::uint8_t> message) {
  return HmacKeyCtx::from_raw_key(key).mac(message);
}

Digest hmac_sha256(const SecretKey& key, std::string_view message) {
  return hmac_sha256(
      key, std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(message.data()),
               message.size()));
}

Digest hmac_sha256_u64(const SecretKey& key, std::uint64_t value) {
  return HmacKeyCtx(key).mac_u64(value);
}

void hmac_sha256_u64_batch(const SecretKey& key,
                           std::span<const std::uint64_t> values,
                           std::span<Digest> out) {
  HmacKeyCtx(key).mac_u64_batch(values, out);
}

}  // namespace lppa::crypto
