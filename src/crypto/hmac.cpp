#include "crypto/hmac.h"

#include <cstring>

namespace lppa::crypto {

namespace {
constexpr std::size_t kBlockSize = 64;
}

HmacSha256::HmacSha256(const SecretKey& key) noexcept {
  // Keys are always 32 bytes (< block size), so no pre-hashing needed.
  std::array<std::uint8_t, kBlockSize> ipad_key{};
  opad_key_.fill(0x5c);
  ipad_key.fill(0x36);
  const auto kb = key.bytes();
  for (std::size_t i = 0; i < kb.size(); ++i) {
    ipad_key[i] ^= kb[i];
    opad_key_[i] ^= kb[i];
  }
  inner_.update(std::span<const std::uint8_t>(ipad_key));
}

Digest HmacSha256::finalize() noexcept {
  const Digest inner_digest = inner_.finalize();
  Sha256 outer;
  outer.update(std::span<const std::uint8_t>(opad_key_));
  outer.update(std::span<const std::uint8_t>(inner_digest.bytes));
  return outer.finalize();
}

Digest hmac_sha256(const SecretKey& key, std::span<const std::uint8_t> message) {
  HmacSha256 mac(key);
  mac.update(message);
  return mac.finalize();
}

Digest hmac_sha256_raw_key(std::span<const std::uint8_t> key,
                           std::span<const std::uint8_t> message) {
  std::array<std::uint8_t, kBlockSize> padded{};
  if (key.size() > kBlockSize) {
    const Digest hashed = Sha256::hash(key);
    std::memcpy(padded.data(), hashed.bytes.data(), hashed.bytes.size());
  } else {
    std::memcpy(padded.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, kBlockSize> ipad_key{};
  std::array<std::uint8_t, kBlockSize> opad_key{};
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad_key[i] = padded[i] ^ 0x36;
    opad_key[i] = padded[i] ^ 0x5c;
  }
  Sha256 inner;
  inner.update(std::span<const std::uint8_t>(ipad_key));
  inner.update(message);
  const Digest inner_digest = inner.finalize();
  Sha256 outer;
  outer.update(std::span<const std::uint8_t>(opad_key));
  outer.update(std::span<const std::uint8_t>(inner_digest.bytes));
  return outer.finalize();
}

Digest hmac_sha256(const SecretKey& key, std::string_view message) {
  return hmac_sha256(
      key, std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(message.data()),
               message.size()));
}

Digest hmac_sha256_u64(const SecretKey& key, std::uint64_t value) {
  std::uint8_t buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::uint8_t>(value >> (8 * i));
  return hmac_sha256(key, std::span<const std::uint8_t>(buf, 8));
}

}  // namespace lppa::crypto
