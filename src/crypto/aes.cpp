#include "crypto/aes.h"

#include "common/error.h"

namespace lppa::crypto {

namespace {

constexpr std::array<std::uint8_t, 256> kSbox = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr std::array<std::uint8_t, 11> kRcon = {0x00, 0x01, 0x02, 0x04, 0x08,
                                                0x10, 0x20, 0x40, 0x80, 0x1b,
                                                0x36};

/// GF(2^8) multiply by x (xtime).
inline std::uint8_t xtime(std::uint8_t v) {
  return static_cast<std::uint8_t>((v << 1) ^ ((v >> 7) * 0x1b));
}

}  // namespace

Aes128::Aes128(std::span<const std::uint8_t> key16) {
  LPPA_REQUIRE(key16.size() == 16, "AES-128 requires a 16-byte key");
  std::copy(key16.begin(), key16.end(), round_keys_[0].begin());
  for (int round = 1; round <= 10; ++round) {
    const auto& prev = round_keys_[round - 1];
    auto& rk = round_keys_[round];
    // First word: RotWord + SubWord + Rcon.
    rk[0] = prev[0] ^ kSbox[prev[13]] ^ kRcon[round];
    rk[1] = prev[1] ^ kSbox[prev[14]];
    rk[2] = prev[2] ^ kSbox[prev[15]];
    rk[3] = prev[3] ^ kSbox[prev[12]];
    for (int i = 4; i < 16; ++i) {
      rk[static_cast<std::size_t>(i)] =
          prev[static_cast<std::size_t>(i)] ^ rk[static_cast<std::size_t>(i - 4)];
    }
  }
}

std::array<std::uint8_t, 16> Aes128::encrypt_block(
    const std::array<std::uint8_t, 16>& plaintext) const {
  std::array<std::uint8_t, 16> s = plaintext;
  auto add_round_key = [&](int round) {
    for (int i = 0; i < 16; ++i) {
      s[static_cast<std::size_t>(i)] ^=
          round_keys_[static_cast<std::size_t>(round)][static_cast<std::size_t>(i)];
    }
  };
  auto sub_bytes = [&] {
    for (auto& b : s) b = kSbox[b];
  };
  auto shift_rows = [&] {
    // State is column-major: byte index = 4*col + row.
    std::array<std::uint8_t, 16> t = s;
    for (int row = 1; row < 4; ++row) {
      for (int col = 0; col < 4; ++col) {
        s[static_cast<std::size_t>(4 * col + row)] =
            t[static_cast<std::size_t>(4 * ((col + row) % 4) + row)];
      }
    }
  };
  auto mix_columns = [&] {
    for (int col = 0; col < 4; ++col) {
      const std::size_t base = static_cast<std::size_t>(4 * col);
      const std::uint8_t a0 = s[base], a1 = s[base + 1], a2 = s[base + 2],
                         a3 = s[base + 3];
      const std::uint8_t all = a0 ^ a1 ^ a2 ^ a3;
      s[base] = static_cast<std::uint8_t>(a0 ^ all ^ xtime(a0 ^ a1));
      s[base + 1] = static_cast<std::uint8_t>(a1 ^ all ^ xtime(a1 ^ a2));
      s[base + 2] = static_cast<std::uint8_t>(a2 ^ all ^ xtime(a2 ^ a3));
      s[base + 3] = static_cast<std::uint8_t>(a3 ^ all ^ xtime(a3 ^ a0));
    }
  };

  add_round_key(0);
  for (int round = 1; round <= 9; ++round) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(10);
  return s;
}

Bytes aes128_ctr_xor(std::span<const std::uint8_t> key16,
                     std::span<const std::uint8_t> nonce12,
                     std::uint32_t initial_counter,
                     std::span<const std::uint8_t> data) {
  LPPA_REQUIRE(nonce12.size() == 12, "CTR nonce must be 12 bytes");
  const Aes128 aes(key16);
  Bytes out(data.begin(), data.end());
  std::uint32_t counter = initial_counter;
  std::size_t offset = 0;
  while (offset < out.size()) {
    std::array<std::uint8_t, 16> block{};
    std::copy(nonce12.begin(), nonce12.end(), block.begin());
    block[12] = static_cast<std::uint8_t>(counter >> 24);
    block[13] = static_cast<std::uint8_t>(counter >> 16);
    block[14] = static_cast<std::uint8_t>(counter >> 8);
    block[15] = static_cast<std::uint8_t>(counter);
    ++counter;
    const auto keystream = aes.encrypt_block(block);
    const std::size_t take = std::min<std::size_t>(16, out.size() - offset);
    for (std::size_t i = 0; i < take; ++i) out[offset + i] ^= keystream[i];
    offset += take;
  }
  return out;
}

}  // namespace lppa::crypto
