#include "crypto/chacha20.h"

#include <bit>
#include <cstring>

namespace lppa::crypto {

namespace {

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) noexcept {
  a += b; d ^= a; d = std::rotl(d, 16);
  c += d; b ^= c; b = std::rotl(b, 12);
  a += b; d ^= a; d = std::rotl(d, 8);
  c += d; b ^= c; b = std::rotl(b, 7);
}

inline std::uint32_t load32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

inline void store32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace

std::array<std::uint8_t, 64> chacha20_block(const SecretKey& key,
                                            const Nonce& nonce,
                                            std::uint32_t counter) {
  std::array<std::uint32_t, 16> state;
  // "expand 32-byte k"
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  const auto kb = key.bytes();
  for (int i = 0; i < 8; ++i) state[4 + i] = load32(kb.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = load32(nonce.data() + 4 * i);

  std::array<std::uint32_t, 16> x = state;
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  std::array<std::uint8_t, 64> out;
  for (int i = 0; i < 16; ++i) store32(out.data() + 4 * i, x[i] + state[i]);
  return out;
}

Bytes chacha20_xor(const SecretKey& key, const Nonce& nonce,
                   std::uint32_t initial_counter,
                   std::span<const std::uint8_t> data) {
  Bytes out(data.begin(), data.end());
  std::uint32_t counter = initial_counter;
  std::size_t offset = 0;
  while (offset < out.size()) {
    const auto block = chacha20_block(key, nonce, counter++);
    const std::size_t take = std::min<std::size_t>(64, out.size() - offset);
    for (std::size_t i = 0; i < take; ++i) out[offset + i] ^= block[i];
    offset += take;
  }
  return out;
}

}  // namespace lppa::crypto
