// AES-128 (FIPS 197) with CTR-mode keystreaming (NIST SP 800-38A),
// implemented from scratch.
//
// The LPPA protocol treats the TTP's symmetric cipher as a black box;
// SealedBox defaults to ChaCha20 and can be switched to AES-128-CTR —
// the cipher-agility test pins that the protocol is indifferent.  The
// implementation is table-free in the S-box sense (one 256-byte S-box,
// no T-tables) and favours clarity over throughput.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/bytes.h"
#include "crypto/keys.h"

namespace lppa::crypto {

/// An expanded AES-128 key schedule (11 round keys).
class Aes128 {
 public:
  /// Expands a 16-byte key.
  explicit Aes128(std::span<const std::uint8_t> key16);

  /// Encrypts one 16-byte block in place semantics (returns the output).
  std::array<std::uint8_t, 16> encrypt_block(
      const std::array<std::uint8_t, 16>& plaintext) const;

 private:
  std::array<std::array<std::uint8_t, 16>, 11> round_keys_;
};

/// CTR keystream XOR: counter block = nonce(12 bytes) || big-endian
/// 32-bit counter, incremented per block.  Encryption == decryption.
Bytes aes128_ctr_xor(std::span<const std::uint8_t> key16,
                     std::span<const std::uint8_t> nonce12,
                     std::uint32_t initial_counter,
                     std::span<const std::uint8_t> data);

}  // namespace lppa::crypto
