// Paillier cryptosystem (additively homomorphic public-key encryption).
//
// This is the machinery behind the paper's closest prior work — Pan et
// al., "Purging the back-room dealing: secure spectrum auction leveraging
// Paillier cryptosystem" (IEEE JSAC'11, the paper's [7]) — which the
// paper dismisses as "a large number of communication costs, which does
// not fit an efficient auction mechanism".  We implement Paillier
// faithfully (keygen over random primes, g = n+1, CRT-free decryption)
// at parameterised key sizes so bench/abl_paillier can measure the
// claimed gap on real operations.
//
// The arithmetic is bounded to n < 2^32 so every mod-n² operation fits
// __uint128_t; 32-bit moduli are of course toy security, which the bench
// compensates by reporting alongside the asymptotic scaling to the
// 1024/2048-bit moduli [7] requires.  Nothing in the LPPA protocol
// itself uses Paillier.
#pragma once

#include <cstdint>
#include <optional>

#include "common/rng.h"

namespace lppa::crypto {

/// Deterministic Miller-Rabin for 64-bit inputs (bases 2,3,5,7,11,13,17,
/// 23, 29, 31, 37 are exact below 3.3 * 10^24).
bool is_prime_u64(std::uint64_t n);

/// Uniform random prime with exactly `bits` bits (MSB set), bits in
/// [3, 32].
std::uint64_t random_prime(int bits, Rng& rng);

/// x^e mod m with 128-bit intermediates; m may be up to 2^64 - 1.
std::uint64_t modpow_u64(std::uint64_t x, std::uint64_t e, std::uint64_t m);

/// Modular inverse via extended Euclid; nullopt when gcd(a, m) != 1.
std::optional<std::uint64_t> modinv_u64(std::uint64_t a, std::uint64_t m);

struct PaillierPublicKey {
  std::uint64_t n = 0;         ///< modulus p*q
  std::uint64_t n_squared = 0; ///< n^2 (fits: n < 2^32)

  /// Encrypts m in [0, n): c = (n+1)^m * r^n mod n^2.
  std::uint64_t encrypt(std::uint64_t plaintext, Rng& rng) const;

  /// Homomorphic addition: Dec(add(c1, c2)) = m1 + m2 (mod n).
  std::uint64_t add(std::uint64_t c1, std::uint64_t c2) const;

  /// Homomorphic scalar multiply: Dec(scale(c, k)) = k * m (mod n).
  std::uint64_t scale(std::uint64_t c, std::uint64_t k) const;

  /// Ciphertext size in bits (what goes on the wire per value).
  int ciphertext_bits() const noexcept;
};

struct PaillierPrivateKey {
  std::uint64_t lambda = 0;  ///< lcm(p-1, q-1)
  std::uint64_t mu = 0;      ///< (L((n+1)^lambda mod n^2))^-1 mod n

  std::uint64_t decrypt(std::uint64_t ciphertext,
                        const PaillierPublicKey& pub) const;
};

struct PaillierKeyPair {
  PaillierPublicKey pub;
  PaillierPrivateKey priv;
};

/// Generates a key pair from two fresh primes of `prime_bits` bits each
/// (prime_bits in [4, 16] keeps n below 2^32).
PaillierKeyPair paillier_keygen(int prime_bits, Rng& rng);

}  // namespace lppa::crypto
