#include "crypto/keys.h"

#include <cstring>

#include "crypto/hmac.h"

namespace lppa::crypto {

SecretKey SecretKey::generate(Rng& rng) {
  // Whiten four RNG words through SHA-256 so the key bytes never expose
  // the xoshiro stream directly.
  std::uint8_t seed[32];
  for (int w = 0; w < 4; ++w) {
    const std::uint64_t v = rng.next();
    for (int i = 0; i < 8; ++i) {
      seed[8 * w + i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
  }
  const Digest d = Sha256::hash(std::span<const std::uint8_t>(seed, 32));
  SecretKey key;
  key.bytes_ = d.bytes;
  return key;
}

SecretKey SecretKey::from_bytes(std::span<const std::uint8_t> bytes) {
  LPPA_REQUIRE(bytes.size() == kSize, "SecretKey requires exactly 32 bytes");
  SecretKey key;
  std::memcpy(key.bytes_.data(), bytes.data(), kSize);
  return key;
}

SecretKey SecretKey::derive(std::string_view label, std::uint64_t index) const {
  ByteWriter w;
  w.raw(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(label.data()), label.size()));
  w.u64(index);
  const Digest d = hmac_sha256(*this, std::span<const std::uint8_t>(w.data()));
  SecretKey key;
  key.bytes_ = d.bytes;
  return key;
}

}  // namespace lppa::crypto
