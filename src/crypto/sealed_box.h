// SealedBox: authenticated symmetric encryption (encrypt-then-MAC).
//
// Construction: ChaCha20 under enc_key = derive(gc, "enc"), then
// HMAC-SHA-256 over nonce||ciphertext under mac_key = derive(gc, "mac").
// This is what carries the winner's true bid to the TTP; the auctioneer
// relays boxes opaquely and cannot read or forge them.
#pragma once

#include <optional>

#include "common/bytes.h"
#include "common/rng.h"
#include "crypto/chacha20.h"
#include "crypto/hmac.h"

namespace lppa::crypto {

/// An opaque sealed message: nonce || ciphertext || tag.
struct SealedMessage {
  Nonce nonce{};
  Bytes ciphertext;
  Digest tag{};

  /// Serialised wire size in bytes.
  std::size_t wire_size() const noexcept {
    return nonce.size() + ciphertext.size() + tag.bytes.size();
  }

  Bytes serialize() const;
  static SealedMessage deserialize(std::span<const std::uint8_t> wire);

  bool operator==(const SealedMessage&) const = default;
};

/// Which stream cipher seals the payload.  The protocol never looks
/// inside the box, so the choice is free — the cipher-agility tests pin
/// that both instantiations behave identically at the protocol level.
enum class SealedCipher : std::uint8_t {
  kChaCha20,
  kAes128Ctr,
};

class SealedBox {
 public:
  /// Both SUs and the TTP construct a SealedBox from the shared key gc.
  explicit SealedBox(const SecretKey& gc,
                     SealedCipher cipher = SealedCipher::kChaCha20);

  /// Seals a plaintext; the nonce is drawn from `rng` (the caller owns
  /// nonce-uniqueness by owning the RNG stream).
  SealedMessage seal(std::span<const std::uint8_t> plaintext, Rng& rng) const;

  /// Opens a sealed message; returns nullopt when the tag does not verify
  /// (tampering, or a relayed box sealed under another key).
  std::optional<Bytes> open(const SealedMessage& message) const;

 private:
  Bytes keystream_xor(const Nonce& nonce,
                      std::span<const std::uint8_t> data) const;

  SealedCipher cipher_;
  SecretKey enc_key_;
  SecretKey mac_key_;
};

}  // namespace lppa::crypto
