// Key material for the LPPA protocol.
//
// The TTP (core::TrustedThirdParty) owns:
//   g0          — HMAC key for the private location submission,
//   gb_1..gb_k  — per-channel HMAC keys for the advanced bid submission,
//   gc          — symmetric key sealing the true bid for the TTP,
// plus the public-ish protocol parameters rd and cr.  All keys here are
// 32-byte blobs; derivation of the per-channel family from a master key is
// HMAC-based (HKDF-Expand-like, one block) so tests can regenerate them.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "crypto/sha256.h"

namespace lppa::crypto {

/// A 256-bit secret key.  Value type; comparison is only used in tests.
class SecretKey {
 public:
  static constexpr std::size_t kSize = 32;

  SecretKey() = default;

  /// Samples a fresh key from the (deterministic, experiment-seeded) RNG.
  /// The raw RNG words are whitened through SHA-256 so that key bytes are
  /// never a direct window onto the simulation RNG stream.
  static SecretKey generate(Rng& rng);

  /// Builds a key from exactly kSize raw bytes.
  static SecretKey from_bytes(std::span<const std::uint8_t> bytes);

  /// Deterministically derives a sub-key: HMAC(master, label || index).
  /// Used for the per-channel bid keys gb_r = derive(gb_master, "gb", r).
  SecretKey derive(std::string_view label, std::uint64_t index) const;

  std::span<const std::uint8_t, kSize> bytes() const noexcept {
    return std::span<const std::uint8_t, kSize>(bytes_);
  }

  bool operator==(const SecretKey&) const = default;

 private:
  std::array<std::uint8_t, kSize> bytes_{};
};

}  // namespace lppa::crypto
