// SHA-256 (FIPS 180-4), implemented from scratch.
//
// The protocol uses SHA-256 only through HMAC (crypto/hmac.h); the digest
// type defined here is also the canonical "hashed prefix" element that the
// auctioneer intersects, so Digest carries ordering and hashing support.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <span>
#include <string>

#include "common/bytes.h"

namespace lppa::crypto {

/// A 256-bit digest.  Strong ordering lets HashedPrefixSet keep sorted
/// vectors and intersect them in linear time.
struct Digest {
  static constexpr std::size_t kSize = 32;
  std::array<std::uint8_t, kSize> bytes{};

  auto operator<=>(const Digest&) const = default;

  /// First 8 bytes as a little-endian integer — used as a fast hash for
  /// unordered containers (the bytes are already uniform).
  std::uint64_t fingerprint() const noexcept;

  std::string hex() const { return to_hex(bytes); }
};

/// Incremental SHA-256.
class Sha256 {
 public:
  Sha256() noexcept;

  void update(std::span<const std::uint8_t> data) noexcept;
  void update(std::string_view data) noexcept;

  /// Finalises and returns the digest.  The object must not be reused
  /// afterwards without calling reset().
  Digest finalize() noexcept;

  void reset() noexcept;

  /// One-shot convenience.
  static Digest hash(std::span<const std::uint8_t> data) noexcept;
  static Digest hash(std::string_view data) noexcept;

  /// True when the compression function dispatches to a hardware
  /// implementation (x86 SHA extensions) on this machine.  Purely
  /// informational — both paths compute the same FIPS 180-4 function.
  static bool accelerated() noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_;
  std::uint64_t total_len_;
};

}  // namespace lppa::crypto

template <>
struct std::hash<lppa::crypto::Digest> {
  std::size_t operator()(const lppa::crypto::Digest& d) const noexcept {
    return static_cast<std::size_t>(d.fingerprint());
  }
};
