#include "crypto/paillier.h"

#include <numeric>

#include "common/error.h"
#include "common/math_util.h"

namespace lppa::crypto {

namespace {

std::uint64_t mulmod_u64(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(a) * b) % m);
}

/// Paillier's L function: L(x) = (x - 1) / n, defined on x = 1 mod n.
std::uint64_t paillier_l(std::uint64_t x, std::uint64_t n) {
  LPPA_REQUIRE(x >= 1 && (x - 1) % n == 0, "L(x) requires x = 1 (mod n)");
  return (x - 1) / n;
}

}  // namespace

std::uint64_t modpow_u64(std::uint64_t x, std::uint64_t e, std::uint64_t m) {
  LPPA_REQUIRE(m != 0, "modulus must be non-zero");
  std::uint64_t result = 1 % m;
  std::uint64_t base = x % m;
  while (e != 0) {
    if (e & 1) result = mulmod_u64(result, base, m);
    base = mulmod_u64(base, base, m);
    e >>= 1;
  }
  return result;
}

bool is_prime_u64(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL,
                          19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n == p) return true;
    if (n % p == 0) return false;
  }
  // n - 1 = d * 2^s
  std::uint64_t d = n - 1;
  int s = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++s;
  }
  for (std::uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL,
                          19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
    std::uint64_t x = modpow_u64(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool witness = true;
    for (int round = 1; round < s; ++round) {
      x = mulmod_u64(x, x, n);
      if (x == n - 1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

std::uint64_t random_prime(int bits, Rng& rng) {
  LPPA_REQUIRE(bits >= 3 && bits <= 32, "prime size must be in [3, 32] bits");
  const std::uint64_t lo = std::uint64_t{1} << (bits - 1);
  const std::uint64_t hi = (std::uint64_t{1} << bits) - 1;
  for (int attempt = 0; attempt < 100000; ++attempt) {
    std::uint64_t candidate =
        lo + rng.below(hi - lo + 1);
    candidate |= 1;  // odd
    if (candidate <= hi && is_prime_u64(candidate)) return candidate;
  }
  LPPA_REQUIRE(false, "prime sampling failed (astronomically unlikely)");
  return 0;
}

std::optional<std::uint64_t> modinv_u64(std::uint64_t a, std::uint64_t m) {
  LPPA_REQUIRE(m > 1, "modulus must exceed 1");
  // Extended Euclid on signed 128-bit to dodge overflow.
  __int128 old_r = static_cast<__int128>(a % m), r = m;
  __int128 old_s = 1, s = 0;
  while (r != 0) {
    const __int128 q = old_r / r;
    const __int128 tmp_r = old_r - q * r;
    old_r = r;
    r = tmp_r;
    const __int128 tmp_s = old_s - q * s;
    old_s = s;
    s = tmp_s;
  }
  if (old_r != 1) return std::nullopt;  // not coprime
  __int128 inv = old_s % static_cast<__int128>(m);
  if (inv < 0) inv += m;
  return static_cast<std::uint64_t>(inv);
}

std::uint64_t PaillierPublicKey::encrypt(std::uint64_t plaintext,
                                         Rng& rng) const {
  LPPA_REQUIRE(plaintext < n, "plaintext must be below the modulus");
  // r uniform in Z*_n.
  std::uint64_t r = 0;
  do {
    r = 1 + rng.below(n - 1);
  } while (std::gcd(r, n) != 1);
  // (n+1)^m mod n^2 == 1 + m*n (binomial), computed directly.  The
  // plaintext is NOT reduced mod n here: an out-of-range value must be
  // the typed rejection above, never a silent wrap-around that encrypts
  // a different number than the caller handed in.
  const std::uint64_t g_m =
      (1 + mulmod_u64(plaintext, n, n_squared)) % n_squared;
  const std::uint64_t r_n = modpow_u64(r, n, n_squared);
  return mulmod_u64(g_m, r_n, n_squared);
}

std::uint64_t PaillierPublicKey::add(std::uint64_t c1, std::uint64_t c2) const {
  return mulmod_u64(c1, c2, n_squared);
}

std::uint64_t PaillierPublicKey::scale(std::uint64_t c,
                                       std::uint64_t k) const {
  return modpow_u64(c, k, n_squared);
}

int PaillierPublicKey::ciphertext_bits() const noexcept {
  return bit_width_for_value(n_squared - 1);
}

std::uint64_t PaillierPrivateKey::decrypt(
    std::uint64_t ciphertext, const PaillierPublicKey& pub) const {
  LPPA_REQUIRE(ciphertext < pub.n_squared, "ciphertext out of range");
  const std::uint64_t x = modpow_u64(ciphertext, lambda, pub.n_squared);
  return mulmod_u64(paillier_l(x, pub.n), mu, pub.n);
}

PaillierKeyPair paillier_keygen(int prime_bits, Rng& rng) {
  LPPA_REQUIRE(prime_bits >= 4 && prime_bits <= 16,
               "prime_bits must be in [4, 16] so n^2 fits 64 bits");
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const std::uint64_t p = random_prime(prime_bits, rng);
    std::uint64_t q = p;
    while (q == p) q = random_prime(prime_bits, rng);
    const std::uint64_t n = p * q;
    const std::uint64_t lambda = std::lcm(p - 1, q - 1);
    // Standard requirement: gcd(n, (p-1)(q-1)) == 1.
    if (std::gcd(n, (p - 1) * (q - 1)) != 1) continue;

    PaillierKeyPair keys;
    keys.pub.n = n;
    keys.pub.n_squared = n * n;
    keys.priv.lambda = lambda;
    // mu = L((n+1)^lambda mod n^2)^-1 mod n; with g = n+1 this is
    // L(1 + lambda*n) = lambda mod n.
    const std::uint64_t g_lambda =
        modpow_u64(n + 1, lambda, keys.pub.n_squared);
    const auto inv = modinv_u64(paillier_l(g_lambda, n), n);
    if (!inv) continue;
    keys.priv.mu = *inv;
    return keys;
  }
  LPPA_REQUIRE(false, "Paillier keygen failed to find a valid modulus");
  return {};
}

}  // namespace lppa::crypto
