// DigestIndex: an inverted index from hashed-prefix digests to the
// submissions that contain them.
//
// The PMV trick (SafeQ, the paper's [11]) makes range membership a set
// intersection over keyed digests — which means the auctioneer's
// all-pairs conflict scan is really a join on digest equality.  Instead
// of merge-intersecting every (family, range) pair (O(n²·w) digest
// comparisons), we index every range digest once and probe each family
// digest against the table: O(n·w) expected work plus one comparison per
// actual x-axis hit.  Padding digests (uniform random 32-byte strings)
// sit harmlessly in the index — they equal a real family digest with
// probability 2⁻²⁵⁶, and because both the pairwise and the indexed path
// compare the very same digest multisets, the two paths produce
// *identical* graphs, not merely equal with high probability.
//
// The table is a flat open-addressing hash map (linear probing) keyed by
// the full 32-byte digest; HMAC outputs are uniform, so the first eight
// bytes (Digest::fingerprint) are already a perfect hash seed.  Owners
// of duplicate digests are chained through a side array, keeping the
// slot array itself flat and cache-friendly.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/sha256.h"
#include "prefix/hashed_set.h"

namespace lppa::prefix {

class DigestIndex {
 public:
  DigestIndex() = default;

  /// Pre-sizes the table for `expected` insertions (load factor 0.5).
  void reserve(std::size_t expected);

  /// Records that `owner`'s set contains digest `d`.
  void insert(const crypto::Digest& d, std::uint32_t owner);

  /// Inserts every digest of `set` for `owner`.
  void insert_all(const HashedPrefixSet& set, std::uint32_t owner);

  /// Removes ONE (d, owner) pair previously recorded by insert — the
  /// churn-maintenance inverse of insert, symmetric call-for-call so
  /// erase_all(set, u) exactly undoes insert_all(set, u) even when `set`
  /// contains duplicate digests.  The freed entry is recycled by later
  /// insertions.  Returns false when no such pair is present.
  bool erase(const crypto::Digest& d, std::uint32_t owner);

  /// Erases every digest of `set` for `owner`; returns how many pairs
  /// were actually removed.
  std::size_t erase_all(const HashedPrefixSet& set, std::uint32_t owner);

  /// Appends to `out` every owner recorded for digest `d` (possibly with
  /// duplicates if an owner inserted the digest twice).  Returns the
  /// number of owners appended.
  std::size_t collect(const crypto::Digest& d,
                      std::vector<std::uint32_t>& out) const;

  /// Number of distinct digests in the table.  Digests whose last owner
  /// was erased still count until the next rehash compacts them away.
  std::size_t distinct_digests() const noexcept { return used_; }

  /// Live (digest, owner) pairs: insertions minus erasures.
  std::size_t entry_count() const noexcept { return live_entries_; }

  /// Current slot-array capacity (always a power of two once non-empty).
  /// reserve(expected) guarantees that up to `expected` subsequent
  /// insertions never rehash, i.e. slot_capacity() stays constant.
  std::size_t slot_capacity() const noexcept { return slots_.size(); }

  /// Bytes held by the slot array plus the owner chains — the per-shard
  /// memory figure reported by the sharded conflict build.
  std::size_t memory_bytes() const noexcept {
    return slots_.size() * sizeof(Slot) + entries_.capacity() * sizeof(Entry);
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  /// A slot whose whole owner chain was erased.  It stays occupied (so
  /// linear-probe chains that stepped over it remain intact) until a
  /// rehash compacts it away or an insert of the same digest revives it.
  static constexpr std::uint32_t kDeadChain = 0xfffffffeu;

  struct Slot {
    crypto::Digest key{};
    std::uint32_t head = kNil;  ///< chain head into entries_, kNil = empty
  };
  struct Entry {
    std::uint32_t owner;
    std::uint32_t next;  ///< next entry for the same digest, kNil = end
  };

  void grow(std::size_t min_capacity);
  void rehash_to(std::size_t capacity);
  std::size_t find_slot(const crypto::Digest& d) const noexcept;

  std::vector<Slot> slots_;     // capacity is always a power of two
  std::vector<Entry> entries_;  // chained owner lists
  std::size_t used_ = 0;        // occupied slots (incl. dead chains)
  std::size_t dead_slots_ = 0;  // occupied slots with an empty chain
  std::size_t live_entries_ = 0;   // entries not on the free list
  std::uint32_t free_head_ = kNil;  // recycled entries_ indices
};

}  // namespace lppa::prefix
