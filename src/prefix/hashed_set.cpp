#include "prefix/hashed_set.h"

#include <algorithm>

namespace lppa::prefix {

namespace {

std::vector<crypto::Digest> hash_prefixes(const crypto::HmacKeyCtx& ctx,
                                          const std::vector<Prefix>& prefixes) {
  std::vector<std::uint64_t> nums;
  nums.reserve(prefixes.size());
  for (const auto& p : prefixes) nums.push_back(numericalize(p));
  std::vector<crypto::Digest> out(nums.size());
  ctx.mac_u64_batch(nums, out);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

HashedPrefixSet HashedPrefixSet::of_value(const crypto::SecretKey& key,
                                          std::uint64_t x, int width) {
  return of_value(crypto::HmacKeyCtx(key), x, width);
}

HashedPrefixSet HashedPrefixSet::of_range(const crypto::SecretKey& key,
                                          std::uint64_t a, std::uint64_t b,
                                          int width) {
  return of_range(crypto::HmacKeyCtx(key), a, b, width);
}

HashedPrefixSet HashedPrefixSet::of_value(const crypto::HmacKeyCtx& ctx,
                                          std::uint64_t x, int width) {
  HashedPrefixSet s;
  s.digests_ = hash_prefixes(ctx, prefix_family(x, width));
  return s;
}

HashedPrefixSet HashedPrefixSet::of_range(const crypto::HmacKeyCtx& ctx,
                                          std::uint64_t a, std::uint64_t b,
                                          int width) {
  HashedPrefixSet s;
  s.digests_ = hash_prefixes(ctx, range_prefixes(a, b, width));
  return s;
}

HashedPrefixSet HashedPrefixSet::from_digests(
    std::vector<crypto::Digest> digests) {
  HashedPrefixSet s;
  s.digests_ = std::move(digests);
  std::sort(s.digests_.begin(), s.digests_.end());
  return s;
}

bool HashedPrefixSet::intersects(const HashedPrefixSet& other) const noexcept {
  // Linear merge over the two sorted vectors.  The membership check uses
  // ct_equal: a short-circuiting digest == would leak, through timing,
  // how many leading bytes of an HMAC'd prefix digest the probe matched.
  // The < used to advance the merge only orders digests, it never
  // confirms membership, so it stays an ordinary comparison.
  auto a = digests_.begin();
  auto b = other.digests_.begin();
  while (a != digests_.end() && b != other.digests_.end()) {
    if (ct_equal(a->bytes, b->bytes)) return true;
    if (*a < *b) {
      ++a;
    } else {
      ++b;
    }
  }
  return false;
}

void HashedPrefixSet::pad_to(std::size_t target, Rng& rng) {
  while (digests_.size() < target) {
    crypto::Digest d;
    for (auto& byte : d.bytes) byte = static_cast<std::uint8_t>(rng.below(256));
    digests_.push_back(d);
  }
  std::sort(digests_.begin(), digests_.end());
}

void HashedPrefixSet::serialize(ByteWriter& w) const {
  w.u32(static_cast<std::uint32_t>(digests_.size()));
  for (const auto& d : digests_) w.raw(std::span<const std::uint8_t>(d.bytes));
}

HashedPrefixSet HashedPrefixSet::deserialize(ByteReader& r) {
  const std::uint32_t n = r.u32();
  std::vector<crypto::Digest> digests(n);
  for (auto& d : digests) {
    const Bytes raw = r.raw(crypto::Digest::kSize);
    std::copy(raw.begin(), raw.end(), d.bytes.begin());
  }
  return from_digests(std::move(digests));
}

bool box_match(const HashedPrefixSet& x_family, const HashedPrefixSet& y_family,
               const HashedPrefixSet& x_range, const HashedPrefixSet& y_range)
    noexcept {
  return x_family.intersects(x_range) && y_family.intersects(y_range);
}

}  // namespace lppa::prefix
