#include "prefix/prefix.h"

#include <algorithm>

namespace lppa::prefix {

void check_value_width(std::uint64_t v, int width) {
  LPPA_REQUIRE(width >= 1 && width <= kMaxWidth,
               "prefix width must be in [1, 62]");
  LPPA_REQUIRE(width == 64 || (v >> width) == 0,
               "value does not fit the declared bit width");
}

std::string Prefix::pattern() const {
  std::string out;
  out.reserve(static_cast<std::size_t>(width));
  for (int i = len - 1; i >= 0; --i) {
    out.push_back(((bits >> i) & 1) ? '1' : '0');
  }
  out.append(static_cast<std::size_t>(width - len), '*');
  return out;
}

std::vector<Prefix> prefix_family(std::uint64_t x, int width) {
  check_value_width(x, width);
  std::vector<Prefix> family;
  family.reserve(static_cast<std::size_t>(width) + 1);
  for (int len = width; len >= 0; --len) {
    family.push_back(Prefix{x >> (width - len), len, width});
  }
  return family;
}

namespace {

// Recursive minimal cover: the prefix {bits,len} spans [lo,hi]; emit it if
// fully inside [a,b], recurse into halves if it straddles the boundary.
void cover(std::uint64_t a, std::uint64_t b, std::uint64_t bits, int len,
           int width, std::vector<Prefix>& out) {
  const Prefix p{bits, len, width};
  const std::uint64_t lo = p.range_lo();
  const std::uint64_t hi = p.range_hi();
  if (lo > b || hi < a) return;  // disjoint
  if (lo >= a && hi <= b) {      // contained: emit
    out.push_back(p);
    return;
  }
  // len == width implies lo == hi, which is either disjoint or contained,
  // so reaching here guarantees room to split.
  cover(a, b, bits << 1, len + 1, width, out);
  cover(a, b, (bits << 1) | 1, len + 1, width, out);
}

}  // namespace

std::vector<Prefix> range_prefixes(std::uint64_t a, std::uint64_t b, int width) {
  check_value_width(a, width);
  check_value_width(b, width);
  LPPA_REQUIRE(a <= b, "range_prefixes requires a <= b");
  std::vector<Prefix> out;
  cover(a, b, 0, 0, width, out);
  return out;
}

std::uint64_t numericalize(const Prefix& p) {
  // t1..ts followed by wildcards -> (w+1)-bit t1..ts 1 0..0.
  const int tail = p.width - p.len;
  return (p.bits << (tail + 1)) | (std::uint64_t{1} << tail);
}

bool member_of_range(std::uint64_t x, std::uint64_t a, std::uint64_t b,
                     int width) {
  const auto family = prefix_family(x, width);
  const auto cover_set = range_prefixes(a, b, width);
  std::vector<std::uint64_t> fam_nums;
  fam_nums.reserve(family.size());
  for (const auto& p : family) fam_nums.push_back(numericalize(p));
  std::sort(fam_nums.begin(), fam_nums.end());
  for (const auto& p : cover_set) {
    if (std::binary_search(fam_nums.begin(), fam_nums.end(), numericalize(p))) {
      return true;
    }
  }
  return false;
}

std::size_t max_range_prefixes(int width) {
  LPPA_REQUIRE(width >= 1, "width must be positive");
  return static_cast<std::size_t>(std::max(1, 2 * width - 2));
}

}  // namespace lppa::prefix
