// HashedPrefixSet: the masked form of a prefix family / range cover.
//
// Each numericalised prefix is pushed through HMAC under the scheme key;
// the auctioneer only ever asks "do two sets intersect?".  Digests are
// kept sorted so intersection is a linear merge, and the set can be padded
// with uniformly random digests up to the worst-case cardinality 2w-2 to
// hide how many real prefixes a range produced (paper §IV-C.2, fix (v)).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "crypto/hmac.h"
#include "prefix/prefix.h"

namespace lppa::prefix {

class HashedPrefixSet {
 public:
  HashedPrefixSet() = default;

  /// H_g(G(x)): the hashed prefix family of a value.
  static HashedPrefixSet of_value(const crypto::SecretKey& key,
                                  std::uint64_t x, int width);

  /// H_g(Q([a,b])): the hashed minimal cover of a range.
  static HashedPrefixSet of_range(const crypto::SecretKey& key,
                                  std::uint64_t a, std::uint64_t b, int width);

  /// Midstate-cached variants: same digests, but the HMAC key schedule is
  /// paid once per HmacKeyCtx instead of once per prefix.  Protocol-side
  /// callers that hash several sets under one key (a value family plus
  /// its range cover, or every submission under g0) hold one context and
  /// batch-hash through it.
  static HashedPrefixSet of_value(const crypto::HmacKeyCtx& ctx,
                                  std::uint64_t x, int width);
  static HashedPrefixSet of_range(const crypto::HmacKeyCtx& ctx,
                                  std::uint64_t a, std::uint64_t b, int width);

  /// Builds from raw digests (deserialisation path).
  static HashedPrefixSet from_digests(std::vector<crypto::Digest> digests);

  /// True iff the two masked sets share a digest.  This is the only
  /// operation the untrusted auctioneer performs.
  bool intersects(const HashedPrefixSet& other) const noexcept;

  /// Pads with uniform random digests up to `target` elements.  Random
  /// 32-byte strings collide with real HMAC outputs with probability
  /// ~2^-256, so padding never flips a membership answer.
  void pad_to(std::size_t target, Rng& rng);

  std::size_t size() const noexcept { return digests_.size(); }
  std::span<const crypto::Digest> digests() const noexcept { return digests_; }

  /// Wire encoding: u32 count, then 32-byte digests.
  void serialize(ByteWriter& w) const;
  static HashedPrefixSet deserialize(ByteReader& r);
  std::size_t wire_size() const noexcept { return 4 + 32 * digests_.size(); }

  bool operator==(const HashedPrefixSet&) const = default;

 private:
  std::vector<crypto::Digest> digests_;  // sorted ascending
};

/// Conjunctive 2-D check used by the location protocol: point (x,y) is in
/// the box iff both axes intersect.
bool box_match(const HashedPrefixSet& x_family, const HashedPrefixSet& y_family,
               const HashedPrefixSet& x_range, const HashedPrefixSet& y_range)
    noexcept;

}  // namespace lppa::prefix
