// Prefix membership verification (PMV) primitives, after Chen & Liu,
// "SafeQ" (INFOCOM'11), as used by the paper's §II-B.
//
// A w-bit value x is in a range [a,b] iff the prefix family of x and the
// minimal prefix cover of [a,b] share at least one prefix.  Prefixes are
// "numericalised" into distinct (w+1)-bit integers so that prefix equality
// becomes integer equality, which in turn survives keyed hashing — that is
// what lets an untrusted auctioneer evaluate range predicates on HMAC'd
// data.
//
// Representation: Prefix{bits, len, width} denotes the pattern whose `len`
// leading bits equal the low `len` bits of `bits`, followed by width-len
// wildcard bits.  E.g. 110* over w=4 is {bits=0b110, len=3, width=4}.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"

namespace lppa::prefix {

/// Widest supported value: 62 bits, so that numericalisation (w+1 bits)
/// and the "scaled bid" arithmetic never overflow a u64.
inline constexpr int kMaxWidth = 62;

struct Prefix {
  std::uint64_t bits = 0;  ///< value of the fixed leading bits
  int len = 0;             ///< number of fixed leading bits, 0..width
  int width = 0;           ///< total bit width w of the encoded values

  /// Smallest value matching the prefix (fill wildcards with 0).
  std::uint64_t range_lo() const noexcept {
    return bits << (width - len);
  }
  /// Largest value matching the prefix (fill wildcards with 1).
  std::uint64_t range_hi() const noexcept {
    const int tail = width - len;
    return (bits << tail) | ((tail == 0) ? 0 : ((std::uint64_t{1} << tail) - 1));
  }

  /// True iff value v (a width-bit number) matches the prefix.
  bool matches(std::uint64_t v) const noexcept {
    return (v >> (width - len)) == bits;
  }

  /// Human-readable pattern, e.g. "110*" — used in logs and tests.
  std::string pattern() const;

  bool operator==(const Prefix&) const = default;
};

/// Validates that v fits in `width` bits and width is in [1, kMaxWidth].
void check_value_width(std::uint64_t v, int width);

/// The prefix family G(x): the w+1 prefixes of x with lengths w, w-1, .., 0.
/// Each is a range containing x.
std::vector<Prefix> prefix_family(std::uint64_t x, int width);

/// The minimal prefix cover Q([a,b]) of an inclusive range; at most 2w-2
/// prefixes (Gupta & McKeown).  Requires a <= b and both fitting `width`.
std::vector<Prefix> range_prefixes(std::uint64_t a, std::uint64_t b, int width);

/// Prefix numericalisation O(U): the w-bit pattern t1..ts*..* becomes the
/// unique (w+1)-bit integer t1..ts 1 0..0.
std::uint64_t numericalize(const Prefix& p);

/// Plaintext membership check: x in [a,b] iff O(G(x)) ∩ O(Q([a,b])) != ∅.
/// Used by tests as the reference semantics for the hashed scheme.
bool member_of_range(std::uint64_t x, std::uint64_t a, std::uint64_t b,
                     int width);

/// Worst-case cardinality of a range prefix cover for width w (the padding
/// target of the advanced bid submission protocol): max(1, 2w-2).
std::size_t max_range_prefixes(int width);

}  // namespace lppa::prefix
