#include "prefix/digest_index.h"

#include <algorithm>

namespace lppa::prefix {

namespace {

std::size_t next_pow2(std::size_t v) {
  std::size_t p = 16;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

void DigestIndex::reserve(std::size_t expected) {
  entries_.reserve(expected);
  grow(next_pow2(expected * 2 + 1));
}

std::size_t DigestIndex::find_slot(const crypto::Digest& d) const noexcept {
  // Probe confirmation goes through ct_equal for the same reason as
  // HashedPrefixSet::intersects: a short-circuiting key comparison would
  // leak the matched byte count of an HMAC'd digest through timing.
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(d.fingerprint()) & mask;
  while (slots_[i].head != kNil && !ct_equal(slots_[i].key.bytes, d.bytes)) {
    i = (i + 1) & mask;
  }
  return i;
}

void DigestIndex::grow(std::size_t min_capacity) {
  if (slots_.size() >= min_capacity) return;
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(min_capacity, Slot{});
  for (const Slot& s : old) {
    if (s.head == kNil) continue;
    slots_[find_slot(s.key)] = s;
  }
}

void DigestIndex::insert(const crypto::Digest& d, std::uint32_t owner) {
  if (slots_.empty() || (used_ + 1) * 2 > slots_.size()) {
    grow(next_pow2(slots_.size() * 2 + 16));
  }
  const std::size_t i = find_slot(d);
  Slot& slot = slots_[i];
  const bool fresh = slot.head == kNil;
  if (fresh) {
    slot.key = d;
    ++used_;
  }
  // Prepend to the owner chain (order is irrelevant: probers dedupe).
  entries_.push_back(Entry{owner, fresh ? kNil : slot.head});
  slot.head = static_cast<std::uint32_t>(entries_.size() - 1);
}

void DigestIndex::insert_all(const HashedPrefixSet& set, std::uint32_t owner) {
  for (const auto& d : set.digests()) insert(d, owner);
}

std::size_t DigestIndex::collect(const crypto::Digest& d,
                                 std::vector<std::uint32_t>& out) const {
  if (slots_.empty()) return 0;
  const Slot& slot = slots_[find_slot(d)];
  std::size_t appended = 0;
  for (std::uint32_t e = slot.head; e != kNil; e = entries_[e].next) {
    out.push_back(entries_[e].owner);
    ++appended;
  }
  return appended;
}

}  // namespace lppa::prefix
