#include "prefix/digest_index.h"

#include <algorithm>

namespace lppa::prefix {

namespace {

std::size_t next_pow2(std::size_t v) {
  std::size_t p = 16;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

void DigestIndex::reserve(std::size_t expected) {
  entries_.reserve(expected);
  grow(next_pow2(expected * 2 + 1));
}

std::size_t DigestIndex::find_slot(const crypto::Digest& d) const noexcept {
  // Probe confirmation goes through ct_equal for the same reason as
  // HashedPrefixSet::intersects: a short-circuiting key comparison would
  // leak the matched byte count of an HMAC'd digest through timing.
  // kDeadChain slots are still *occupied* for probing purposes: freeing
  // them in place would sever the probe chains of digests inserted after
  // them, so they persist until rehash_to drops them.
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(d.fingerprint()) & mask;
  while (slots_[i].head != kNil && !ct_equal(slots_[i].key.bytes, d.bytes)) {
    i = (i + 1) & mask;
  }
  return i;
}

void DigestIndex::rehash_to(std::size_t capacity) {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(capacity, Slot{});
  used_ = 0;
  dead_slots_ = 0;
  for (const Slot& s : old) {
    if (s.head >= kDeadChain) continue;  // empty or fully-erased: drop
    slots_[find_slot(s.key)] = s;
    ++used_;
  }
}

void DigestIndex::grow(std::size_t min_capacity) {
  if (slots_.size() >= min_capacity) return;
  rehash_to(min_capacity);
}

void DigestIndex::insert(const crypto::Digest& d, std::uint32_t owner) {
  if (slots_.empty() || (used_ + 1) * 2 > slots_.size()) {
    // Rehash drops fully-erased slots, so under churn the table only
    // doubles when the *live* digest population actually outgrew it.
    const std::size_t live = used_ - dead_slots_;
    rehash_to(std::max(slots_.size(), next_pow2((live + 1) * 2 + 1)));
  }
  const std::size_t i = find_slot(d);
  Slot& slot = slots_[i];
  const bool fresh = slot.head == kNil;
  const bool revived = slot.head == kDeadChain;
  if (fresh) {
    slot.key = d;
    ++used_;
  }
  if (revived) --dead_slots_;
  // Prepend to the owner chain (order is irrelevant: probers dedupe),
  // recycling an erased entry when one is available.
  const std::uint32_t next = (fresh || revived) ? kNil : slot.head;
  std::uint32_t e;
  if (free_head_ != kNil) {
    e = free_head_;
    free_head_ = entries_[e].next;
    entries_[e] = Entry{owner, next};
  } else {
    entries_.push_back(Entry{owner, next});
    e = static_cast<std::uint32_t>(entries_.size() - 1);
  }
  slot.head = e;
  ++live_entries_;
}

void DigestIndex::insert_all(const HashedPrefixSet& set, std::uint32_t owner) {
  for (const auto& d : set.digests()) insert(d, owner);
}

bool DigestIndex::erase(const crypto::Digest& d, std::uint32_t owner) {
  if (slots_.empty()) return false;
  Slot& slot = slots_[find_slot(d)];
  if (slot.head >= kDeadChain) return false;
  std::uint32_t* link = &slot.head;
  while (*link != kNil) {
    Entry& e = entries_[*link];
    if (e.owner == owner) {
      const std::uint32_t freed = *link;
      *link = e.next;
      e.owner = kNil;  // poison: a freed entry must never report an owner
      e.next = free_head_;
      free_head_ = freed;
      --live_entries_;
      if (slot.head == kNil) {
        slot.head = kDeadChain;
        ++dead_slots_;
      }
      return true;
    }
    link = &e.next;
  }
  return false;
}

std::size_t DigestIndex::erase_all(const HashedPrefixSet& set,
                                   std::uint32_t owner) {
  std::size_t erased = 0;
  for (const auto& d : set.digests()) {
    if (erase(d, owner)) ++erased;
  }
  return erased;
}

std::size_t DigestIndex::collect(const crypto::Digest& d,
                                 std::vector<std::uint32_t>& out) const {
  if (slots_.empty()) return 0;
  const Slot& slot = slots_[find_slot(d)];
  if (slot.head >= kDeadChain) return 0;
  std::size_t appended = 0;
  for (std::uint32_t e = slot.head; e != kNil; e = entries_[e].next) {
    out.push_back(entries_[e].owner);
    ++appended;
  }
  return appended;
}

}  // namespace lppa::prefix
