#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace lppa {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  LPPA_REQUIRE(!headers_.empty(), "Table requires at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  LPPA_REQUIRE(cells.size() == headers_.size(),
               "Table row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::cell(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::cell(std::size_t v) { return std::to_string(v); }
std::string Table::cell(long long v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += std::string(widths[c] + 2, '-');
  os << rule << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace lppa
