// Byte-buffer serialisation used by the protocol messages.
//
// Wire format: little-endian fixed-width integers, length-prefixed byte
// strings.  Kept deliberately boring — the point is to be able to count
// exactly how many bytes each protocol message costs (Theorem 4) and to
// round-trip messages through tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"

namespace lppa {

using Bytes = std::vector<std::uint8_t>;

/// Appends values to a growing byte vector.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);

  /// Length-prefixed (u32) raw bytes.
  void bytes(std::span<const std::uint8_t> data);

  /// Raw bytes with no length prefix (fixed-size fields).
  void raw(std::span<const std::uint8_t> data);

  const Bytes& data() const noexcept { return buf_; }
  Bytes take() noexcept { return std::move(buf_); }
  std::size_t size() const noexcept { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Consumes values from a byte span; throws LppaError(kProtocol) on
/// truncation.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();

  /// Length-prefixed bytes (mirrors ByteWriter::bytes).
  Bytes bytes();

  /// Exactly n raw bytes (mirrors ByteWriter::raw).
  Bytes raw(std::size_t n);

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool at_end() const noexcept { return remaining() == 0; }

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Constant-time equality over two byte spans: the running time depends
/// only on the lengths, never on the contents or on where the first
/// mismatch sits.  Use this for every comparison of secret-derived bytes
/// (HMAC'd prefix digests, MAC tags) — a short-circuiting == leaks the
/// match length through timing.  Length mismatch returns false
/// immediately; lengths are public here (digest sizes are fixed by the
/// protocol).
bool ct_equal(std::span<const std::uint8_t> a,
              std::span<const std::uint8_t> b) noexcept;

/// Lowercase hex encoding, handy in logs and tests.
std::string to_hex(std::span<const std::uint8_t> data);

/// Inverse of to_hex; throws on odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

}  // namespace lppa
