// Numeric helpers used by the Theorem 1-3 closed forms (common/math_util)
// and the attack metrics: log-domain combinatorics to keep the binomial
// sums stable for large m, and small statistics utilities.
#pragma once

#include <cstdint>
#include <vector>

namespace lppa {

/// ln(n!) via lgamma.
double log_factorial(std::uint64_t n);

/// ln C(n, k); returns -inf when k > n.
double log_binomial(std::uint64_t n, std::uint64_t k);

/// C(n, k) as a double (may overflow to inf for huge arguments; the
/// theorem code works in the log domain and only exponentiates sums).
double binomial(std::uint64_t n, std::uint64_t k);

/// Numerically stable log(exp(a) + exp(b)).
double log_add_exp(double a, double b);

/// x^n for non-negative integer n (exact repeated squaring on doubles).
double ipow(double x, std::uint64_t n);

/// Shannon entropy (nats) of a probability vector; ignores zero entries.
/// Does not require the input to be normalised — it normalises internally.
double entropy(const std::vector<double>& probs);

/// Mean of a sample; returns 0 for an empty sample.
double mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 points.
double sample_stddev(const std::vector<double>& xs);

/// Number of bits needed to represent v (bit_width); 1 for v == 0 so that
/// "a w-bit number" is always well-formed.
int bit_width_for_value(std::uint64_t v);

}  // namespace lppa
