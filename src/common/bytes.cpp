#include "common/bytes.h"

#include <cstring>

namespace lppa {

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  LPPA_REQUIRE(data.size() <= ~std::uint32_t{0},
               "byte string too long for u32 length prefix");
  u32(static_cast<std::uint32_t>(data.size()));
  raw(data);
}

void ByteWriter::raw(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteReader::need(std::size_t n) const {
  LPPA_PROTOCOL_CHECK(remaining() >= n, "truncated message");
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

Bytes ByteReader::bytes() {
  const std::uint32_t n = u32();
  return raw(n);
}

Bytes ByteReader::raw(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

bool ct_equal(std::span<const std::uint8_t> a,
              std::span<const std::uint8_t> b) noexcept {
  if (a.size() != b.size()) return false;
  // volatile keeps the compiler from collapsing the loop into memcmp
  // (which short-circuits) once it proves `diff` is only read at the end.
  volatile std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff = diff | static_cast<std::uint8_t>(a[i] ^ b[i]);
  }
  return diff == 0;
}

std::string to_hex(std::span<const std::uint8_t> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  LPPA_REQUIRE(hex.size() % 2 == 0, "hex string must have even length");
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    LPPA_REQUIRE(false, "invalid hex character");
    return 0;
  };
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(nibble(hex[i]) << 4 | nibble(hex[i + 1])));
  }
  return out;
}

}  // namespace lppa
