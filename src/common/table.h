// Plain-text table printing for the benchmark harnesses.
//
// Every figure/table reproduction in bench/ prints its series through this
// class so the output format is uniform: a header row, aligned columns,
// and an optional CSV dump for downstream plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace lppa {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic values with sensible precision.
  static std::string cell(double v, int precision = 4);
  static std::string cell(std::size_t v);
  static std::string cell(long long v);
  static std::string cell(int v) { return cell(static_cast<long long>(v)); }

  /// Pretty-prints with aligned columns.
  void print(std::ostream& os) const;

  /// Machine-readable CSV (no alignment padding).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lppa
