// CellSet: a fixed-universe bitset used to represent sets of grid cells
// (possible-location sets in the BCM/BPM attacks, channel availability
// rasters in the coverage maps).
//
// The universe size is fixed at construction (rows*cols of the grid).  The
// attacks spend almost all their time intersecting these sets, so the
// representation is a packed word array with branch-free bulk operations.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "common/error.h"

namespace lppa {

class CellSet {
 public:
  /// Empty set over a universe of `universe_size` cells.
  explicit CellSet(std::size_t universe_size);

  /// Full set (all cells present) over the universe.
  static CellSet full(std::size_t universe_size);

  std::size_t universe_size() const noexcept { return size_; }

  bool contains(std::size_t i) const;
  void insert(std::size_t i);
  void erase(std::size_t i);

  /// Number of cells in the set (popcount over the words).
  std::size_t count() const noexcept;
  bool empty() const noexcept { return count() == 0; }

  /// In-place set algebra.  All operands must share a universe size.
  CellSet& operator&=(const CellSet& other);
  CellSet& operator|=(const CellSet& other);
  CellSet& operator-=(const CellSet& other);

  friend CellSet operator&(CellSet a, const CellSet& b) { return a &= b; }
  friend CellSet operator|(CellSet a, const CellSet& b) { return a |= b; }
  friend CellSet operator-(CellSet a, const CellSet& b) { return a -= b; }

  /// Complement within the universe.
  CellSet complement() const;

  bool operator==(const CellSet& other) const noexcept = default;

  /// Materialises the member indices in ascending order.
  std::vector<std::size_t> to_indices() const;

  /// Calls fn(index) for every member, ascending.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(w * 64 + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

 private:
  void check_same_universe(const CellSet& other) const;
  void clear_tail() noexcept;

  std::size_t size_;
  std::vector<std::uint64_t> words_;
};

}  // namespace lppa
