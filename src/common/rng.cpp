#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace lppa {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t derive_stream_seed(std::uint64_t seed,
                                 std::uint64_t domain) noexcept {
  SplitMix64 outer(seed);
  SplitMix64 inner(outer.next() ^ domain);
  return inner.next();
}

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t n) {
  LPPA_REQUIRE(n > 0, "Rng::below requires n > 0");
  // Lemire's nearly-divisionless method.
  __uint128_t m = static_cast<__uint128_t>(next()) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(next()) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  LPPA_REQUIRE(lo <= hi, "Rng::uniform_int requires lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform01() noexcept {
  // 53 uniform bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  LPPA_REQUIRE(lo <= hi, "Rng::uniform requires lo <= hi");
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) {
  LPPA_REQUIRE(p >= 0.0 && p <= 1.0, "Rng::bernoulli requires p in [0,1]");
  return uniform01() < p;
}

double Rng::normal(double mean, double stddev) {
  LPPA_REQUIRE(stddev >= 0.0, "Rng::normal requires stddev >= 0");
  // Box-Muller; u1 nudged away from 0 to keep log finite.
  const double u1 = uniform01() + 0x1.0p-60;
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

std::size_t Rng::discrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    LPPA_REQUIRE(w >= 0.0, "Rng::discrete requires non-negative weights");
    total += w;
  }
  LPPA_REQUIRE(total > 0.0, "Rng::discrete requires a positive weight");
  double r = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point tail
}

Rng Rng::fork() noexcept {
  // Mixing two fresh outputs through SplitMix gives an independent stream.
  SplitMix64 sm(next() ^ rotl(next(), 31));
  return Rng(sm.next());
}

}  // namespace lppa
