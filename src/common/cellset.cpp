#include "common/cellset.h"

#include <bit>

namespace lppa {

CellSet::CellSet(std::size_t universe_size)
    : size_(universe_size), words_((universe_size + 63) / 64, 0) {
  LPPA_REQUIRE(universe_size > 0, "CellSet universe must be non-empty");
}

CellSet CellSet::full(std::size_t universe_size) {
  CellSet s(universe_size);
  for (auto& w : s.words_) w = ~0ULL;
  s.clear_tail();
  return s;
}

void CellSet::clear_tail() noexcept {
  const std::size_t tail_bits = size_ % 64;
  if (tail_bits != 0) {
    words_.back() &= (1ULL << tail_bits) - 1;
  }
}

bool CellSet::contains(std::size_t i) const {
  LPPA_REQUIRE(i < size_, "CellSet index out of range");
  return (words_[i / 64] >> (i % 64)) & 1ULL;
}

void CellSet::insert(std::size_t i) {
  LPPA_REQUIRE(i < size_, "CellSet index out of range");
  words_[i / 64] |= 1ULL << (i % 64);
}

void CellSet::erase(std::size_t i) {
  LPPA_REQUIRE(i < size_, "CellSet index out of range");
  words_[i / 64] &= ~(1ULL << (i % 64));
}

std::size_t CellSet::count() const noexcept {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

void CellSet::check_same_universe(const CellSet& other) const {
  LPPA_REQUIRE(size_ == other.size_,
               "CellSet operands must share a universe size");
}

CellSet& CellSet::operator&=(const CellSet& other) {
  check_same_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

CellSet& CellSet::operator|=(const CellSet& other) {
  check_same_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

CellSet& CellSet::operator-=(const CellSet& other) {
  check_same_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

CellSet CellSet::complement() const {
  CellSet out(size_);
  for (std::size_t i = 0; i < words_.size(); ++i) out.words_[i] = ~words_[i];
  out.clear_tail();
  return out;
}

std::vector<std::size_t> CellSet::to_indices() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for_each([&](std::size_t i) { out.push_back(i); });
  return out;
}

}  // namespace lppa
