// Deterministic pseudo-random number generation.
//
// Every stochastic component of the library (synthetic coverage maps, SU
// placement, bid noise, zero-disguise sampling, allocation tie-breaks)
// draws from an lppa::Rng seeded explicitly by the experiment driver, so
// every figure in EXPERIMENTS.md is reproducible bit-for-bit.
//
// The generator is xoshiro256** (Blackman & Vigna, public domain), seeded
// through SplitMix64 as its authors recommend.  It is NOT a cryptographic
// RNG; key material is generated via crypto::SecretKey which hashes Rng
// output through SHA-256 (fine for a simulation — see DESIGN.md).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/error.h"

namespace lppa {

/// SplitMix64: used to expand a 64-bit seed into xoshiro state, and handy
/// as a tiny standalone generator for hashing-style mixing.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Derives the seed of an independent, domain-separated RNG stream from
/// a base seed and a caller-chosen domain tag.
///
/// This replaces the old `seed ^ tag` idiom, which was not a derivation
/// at all: XOR is invertible, so the adversarially-related seeds `s` and
/// `s ^ tag` produced byte-identical "independent" streams (stream(s,
/// tag) == stream(s ^ tag, 0)).  Here the base seed passes through a
/// SplitMix64 finalisation round *before* the domain is mixed in, so a
/// cross-seed/cross-domain collision requires mix(s1) ^ mix(s2) == d1 ^
/// d2 — a ~2^-64 accident under the finaliser's avalanche, not a
/// constructible identity.
///
/// Compat note: core::TrustedThirdParty switched its g0/gb_master/gc key
/// streams to this derivation, so golden transcripts (exact masked
/// digests, sealed payload bytes) recorded before the switch differ from
/// current output.  Every invariant the tests pin (cross-run
/// determinism, wire round-trips, allocation equivalences) is unchanged.
std::uint64_t derive_stream_seed(std::uint64_t seed,
                                 std::uint64_t domain) noexcept;

/// xoshiro256** with convenience distributions.  Satisfies
/// UniformRandomBitGenerator so it can drive <random> and std::shuffle.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform unsigned in [0, n) via Lemire rejection.  Requires n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Standard normal via Box-Muller (no cached spare: keeps the generator
  /// state a pure function of the draw count).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Samples an index from an unnormalised non-negative weight vector.
  /// Requires at least one strictly positive weight.
  std::size_t discrete(const std::vector<double>& weights);

  /// Derives an independent child generator; used to give each module /
  /// user / round its own stream so adding draws in one place does not
  /// perturb another.
  Rng fork() noexcept;

  /// Fisher-Yates shuffle of a contiguous container.
  template <typename Container>
  void shuffle(Container& c) {
    if (c.size() < 2) return;
    for (std::size_t i = c.size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(below(i + 1));
      using std::swap;
      swap(c[i], c[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace lppa
