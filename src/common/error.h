// Error handling for the LPPA library.
//
// All contract violations (bad arguments, broken invariants, malformed
// protocol messages) throw LppaError.  We deliberately use one exception
// type with a category tag rather than a hierarchy: callers either recover
// at a protocol boundary (and then only care about the category) or they
// don't catch at all.
#pragma once

#include <stdexcept>
#include <string>

namespace lppa {

/// Coarse classification of an error, available to protocol-boundary code
/// that wants to distinguish "peer sent garbage" from "caller bug".
enum class ErrorKind {
  kInvalidArgument,  ///< caller violated a precondition
  kProtocol,         ///< malformed or inconsistent protocol message
  kCrypto,           ///< authentication / decryption failure
  kState,            ///< object used in the wrong lifecycle state
};

/// The single exception type thrown by this library.
class LppaError : public std::runtime_error {
 public:
  LppaError(ErrorKind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  ErrorKind kind() const noexcept { return kind_; }

 private:
  ErrorKind kind_;
};

namespace detail {
[[noreturn]] inline void raise(ErrorKind kind, const std::string& msg) {
  throw LppaError(kind, msg);
}
}  // namespace detail

}  // namespace lppa

/// Precondition check: throws LppaError(kInvalidArgument) when `cond` is
/// false.  Used at public API boundaries; internal invariants use assert.
#define LPPA_REQUIRE(cond, msg)                                         \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::lppa::detail::raise(::lppa::ErrorKind::kInvalidArgument,        \
                            std::string("precondition failed: ") + msg); \
    }                                                                   \
  } while (0)

/// Protocol-message validation: throws LppaError(kProtocol).
#define LPPA_PROTOCOL_CHECK(cond, msg)                               \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::lppa::detail::raise(::lppa::ErrorKind::kProtocol,            \
                            std::string("protocol violation: ") + msg); \
    }                                                                \
  } while (0)
