// A small fixed-size thread pool plus a parallel_for helper.
//
// Design constraints, in order:
//   1. Determinism: parallelised callers only ever write to
//      index-addressed slots, so the schedule (which worker runs which
//      index, and when) is observationally irrelevant.  parallel_for
//      exposes nothing about the schedule to its body.
//   2. No work stealing, no futures, no task graph — the hot paths
//      (submission generation, digest-index probing) are flat loops over
//      independent items, and a chunked atomic-counter loop covers them.
//   3. Safe under TSan: all completion signalling goes through one
//      mutex/condvar pair; exceptions from workers are captured and
//      rethrown on the calling thread.
//
// The calling thread always participates as worker 0, so `run` makes
// progress even when the pool itself has fewer threads than requested
// (including the degenerate single-core pool).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lppa {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means hardware_threads().
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of pool-owned worker threads (the caller adds one more).
  std::size_t worker_count() const noexcept { return workers_.size(); }

  /// Runs job(w) once for every w in [0, workers): w = 0 on the calling
  /// thread, the rest on pool threads.  Blocks until every invocation
  /// returns.  The first exception thrown by any invocation is rethrown
  /// here (caller's own exception wins ties).
  ///
  /// On a stopped pool (stop() ran, or destruction has begun) every
  /// invocation runs inline on the calling thread, in ascending w order.
  /// Without this fallback a run() racing shutdown would enqueue tasks
  /// no worker will ever pop and block forever on their completion — the
  /// exact hang a server tearing down with queued frames used to risk.
  void run(std::size_t workers, const std::function<void(std::size_t)>& job);

  /// Deterministic shutdown: wakes every worker, lets them drain the
  /// queue (queued tasks run to completion, never silently dropped),
  /// and joins.  Idempotent; the destructor calls it.  After stop(),
  /// run() degrades to inline execution (see above), so callers that
  /// own both a pool and work-producing threads can tear down in either
  /// order without racing the pool destructor — the contract
  /// net::AuctioneerServer's destructor relies on and
  /// thread_pool_test / net_transport_test pin.
  void stop();

  /// std::thread::hardware_concurrency(), clamped to at least 1.
  static std::size_t hardware_threads() noexcept;

  /// Process-wide pool sized to hardware_threads().  Lazily constructed;
  /// lives until process exit.
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Calls body(i) once for every i in [0, n), spread over up to
/// `num_threads` threads (0 = hardware_threads()).  Indices are handed
/// out in contiguous chunks through an atomic cursor; bodies must
/// tolerate any assignment of indices to threads — in practice that
/// means "write only to slot i".  Serial (and allocation-free) when the
/// effective thread count is 1.
///
/// When one or more bodies throw, the exception from the LOWEST erroring
/// index is rethrown — deterministically, for every thread count — so a
/// parallel failure reproduces exactly under num_threads=1.  Indices
/// above the winning error may be skipped; indices below it always run.
void parallel_for(std::size_t n, std::size_t num_threads,
                  const std::function<void(std::size_t)>& body);

}  // namespace lppa
