#include "common/math_util.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

namespace lppa {

double log_factorial(std::uint64_t n) {
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double log_binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

double binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0.0;
  return std::exp(log_binomial(n, k));
}

double log_add_exp(double a, double b) {
  if (a == -std::numeric_limits<double>::infinity()) return b;
  if (b == -std::numeric_limits<double>::infinity()) return a;
  const double hi = std::max(a, b);
  const double lo = std::min(a, b);
  return hi + std::log1p(std::exp(lo - hi));
}

double ipow(double x, std::uint64_t n) {
  double result = 1.0;
  double base = x;
  while (n != 0) {
    if (n & 1) result *= base;
    base *= base;
    n >>= 1;
  }
  return result;
}

double entropy(const std::vector<double>& probs) {
  double total = 0.0;
  for (double p : probs) {
    if (p > 0.0) total += p;
  }
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double p : probs) {
    if (p <= 0.0) continue;
    const double q = p / total;
    h -= q * std::log(q);
  }
  return h;
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double sample_stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

int bit_width_for_value(std::uint64_t v) {
  return v == 0 ? 1 : std::bit_width(v);
}

}  // namespace lppa
