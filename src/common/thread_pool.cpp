#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace lppa {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = num_threads == 0 ? hardware_threads() : num_threads;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { stop(); }

void ThreadPool::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Workers only exit once the queue is empty (worker_loop drains after
  // stop_), so nothing enqueued before stop() is ever dropped.
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::run(std::size_t workers,
                     const std::function<void(std::size_t)>& job) {
  if (workers == 0) return;

  // Completion state shared with the enqueued tasks; everything lives on
  // this frame, which outlives the tasks because we block on `pending`.
  struct Sync {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t pending;
    std::exception_ptr error;
  } sync;
  sync.pending = workers - 1;

  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stop_) {
      // Stopped pool: no worker will ever pop the queue again, so
      // enqueueing here would block this call forever.  Degrade to
      // inline execution (outside the pool lock — job may re-enter the
      // pool) — deterministic (ascending w, first exception propagates)
      // and exactly what a server draining its last frames during
      // shutdown wants.
      lock.unlock();
      for (std::size_t w = 0; w < workers; ++w) job(w);
      return;
    }
    for (std::size_t w = 1; w < workers; ++w) {
      queue_.emplace_back([&sync, &job, w] {
        std::exception_ptr err;
        try {
          job(w);
        } catch (...) {
          err = std::current_exception();
        }
        // Notify under the lock: the waiter may destroy `sync` the
        // moment it observes pending == 0.
        std::lock_guard<std::mutex> l(sync.mutex);
        if (err && !sync.error) sync.error = err;
        if (--sync.pending == 0) sync.done.notify_one();
      });
    }
  }
  wake_.notify_all();

  std::exception_ptr caller_error;
  try {
    job(0);
  } catch (...) {
    caller_error = std::current_exception();
  }

  {
    std::unique_lock<std::mutex> lock(sync.mutex);
    sync.done.wait(lock, [&sync] { return sync.pending == 0; });
  }
  if (caller_error) std::rethrow_exception(caller_error);
  if (sync.error) std::rethrow_exception(sync.error);
}

std::size_t ThreadPool::hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(hardware_threads());
  return pool;
}

void parallel_for(std::size_t n, std::size_t num_threads,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  std::size_t threads =
      num_threads == 0 ? ThreadPool::hardware_threads() : num_threads;
  threads = std::min(threads, n);
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Chunked dynamic scheduling: coarse enough to amortise the atomic,
  // fine enough (8 chunks per thread) to absorb uneven per-item cost.
  //
  // Error capture is deterministic: the exception thrown by the LOWEST
  // erroring index wins, independent of the schedule and thread count, so
  // a failure reproduces identically under num_threads=1.  Chunks are
  // claimed in increasing index order, so once an error at index e is
  // recorded no unclaimed chunk can contain an index < e — workers stop
  // claiming then, but they always finish evaluating the chunk they hold
  // up to e, which guarantees every index below the final winner ran.
  const std::size_t chunk = std::max<std::size_t>(1, n / (threads * 8));
  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> first_error{n};  // lowest erroring index so far
  std::mutex error_mutex;
  std::exception_ptr error;
  std::size_t error_index = n;
  ThreadPool::shared().run(threads, [&](std::size_t) {
    for (;;) {
      const std::size_t begin =
          cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) return;
      if (begin > first_error.load(std::memory_order_acquire)) return;
      const std::size_t end = std::min(n, begin + chunk);
      for (std::size_t i = begin; i < end; ++i) {
        if (i > first_error.load(std::memory_order_acquire)) return;
        try {
          body(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (i < error_index) {
            error_index = i;
            error = std::current_exception();
          }
          std::size_t seen = first_error.load(std::memory_order_relaxed);
          while (i < seen && !first_error.compare_exchange_weak(
                                 seen, i, std::memory_order_release)) {
          }
        }
      }
    }
  });
  if (error) std::rethrow_exception(error);
}

}  // namespace lppa
