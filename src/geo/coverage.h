// CoverageMap / Dataset: the per-channel rasters every attack and defence
// consumes.
//
// For each channel r the dataset stores
//   rssi_dbm[cell]   — received PU signal strength,
//   available        — the set C_r of cells where an SU may transmit
//                      (rssi <= threshold; the FCC rule with the paper's
//                      practical threshold of -81 dBm),
//   quality[cell]    — q*_r(m,n): the channel quality statistic a
//                      geo-location database would publish.  We use the
//                      normalised headroom below the availability
//                      threshold: deeper inside the white space => higher
//                      quality; 0 where the channel is unavailable.
#pragma once

#include <vector>

#include "common/bytes.h"
#include "common/cellset.h"
#include "geo/grid.h"

namespace lppa::geo {

struct ChannelCoverage {
  std::vector<double> rssi_dbm;  ///< per-cell PU signal strength
  CellSet available;             ///< C_r: complement of the PU protection region
  std::vector<double> quality;   ///< q*_r per cell, in [0,1], 0 if unavailable

  explicit ChannelCoverage(std::size_t cells)
      : rssi_dbm(cells, 0.0), available(cells), quality(cells, 0.0) {}
};

class Dataset {
 public:
  Dataset(Grid grid, double threshold_dbm);

  const Grid& grid() const noexcept { return grid_; }
  double threshold_dbm() const noexcept { return threshold_dbm_; }

  void add_channel(ChannelCoverage channel);

  std::size_t channel_count() const noexcept { return channels_.size(); }
  const ChannelCoverage& channel(std::size_t r) const;

  /// C_r as a CellSet (the attack intersects these).
  const CellSet& availability(std::size_t r) const { return channel(r).available; }

  /// q*_r(m,n).
  double quality(std::size_t r, const Cell& cell) const;
  double quality_at_index(std::size_t r, std::size_t cell_index) const;

  /// AS(cell): indices of channels available in a cell.
  std::vector<std::size_t> available_channels(const Cell& cell) const;

  /// A reduced dataset keeping only the first k channels — the paper's
  /// Fig. 4(a)/(b) sweeps the number of auctioned channels.
  Dataset restricted_to(std::size_t k) const;

  /// Snapshot serialisation: lets an experiment pin the exact coverage
  /// world it ran on (the role the paper's downloaded TVFool extract
  /// plays).  Stores geometry, the rssi raster (quantised to centi-dB,
  /// far beyond physical precision) and the authoritative availability
  /// mask; quality is reconstructed as headroom over the default 30 dB
  /// span on the stored available cells.
  Bytes serialize() const;
  static Dataset deserialize(std::span<const std::uint8_t> wire);

 private:
  Grid grid_;
  double threshold_dbm_;
  std::vector<ChannelCoverage> channels_;
};

/// Builds availability + quality rasters from a raw rssi raster.
/// quality = clamp((threshold - rssi) / quality_span_db, 0, 1) on available
/// cells; 0 elsewhere.
ChannelCoverage finalize_channel(const Grid& grid,
                                 std::vector<double> rssi_dbm,
                                 double threshold_dbm,
                                 double quality_span_db = 30.0);

}  // namespace lppa::geo
