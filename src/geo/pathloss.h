// Radio propagation: log-distance path loss with spatially smoothed
// lognormal shadowing.
//
// This replaces the paper's FCC/TVFool measured coverage maps (see
// DESIGN.md §2).  The received PU signal strength at distance d from a
// transmitter with EIRP `tx_power_dbm` is
//
//   rssi(d) = tx_power_dbm - (pl0 + 10 * n * log10(max(d, d0) / d0)) - S
//
// where n is the terrain path-loss exponent and S a zero-mean Gaussian
// shadowing field with standard deviation sigma, smoothed over a few cells
// so coverage boundaries are ragged but spatially coherent — the property
// that makes urban areas harder to attack in Fig. 4(c).
#pragma once

#include <vector>

#include "common/rng.h"
#include "geo/grid.h"

namespace lppa::geo {

struct PathLossModel {
  double exponent = 3.0;        ///< n, terrain dependent (2.0 free space .. 4+ dense urban)
  double reference_loss_db = 90.0;  ///< pl0 at d0 (VHF/UHF broadcast scale)
  double reference_distance_m = 1000.0;  ///< d0
  double shadowing_sigma_db = 6.0;       ///< lognormal shadowing std-dev
  int shadowing_smooth_radius = 2;       ///< box-blur radius in cells

  /// Median (shadowing-free) received power in dBm.
  double median_rssi_dbm(double tx_power_dbm, double distance_m) const;
};

/// A per-cell shadowing field: iid Gaussian samples box-blurred
/// `smooth_radius` cells and rescaled back to `sigma_db`.  One field is
/// drawn per channel (each PU transmitter sees its own terrain realisation).
std::vector<double> make_shadowing_field(const Grid& grid, double sigma_db,
                                         int smooth_radius, Rng& rng);

}  // namespace lppa::geo
