#include "geo/whitespace_db.h"

namespace lppa::geo {

WhiteSpaceDatabase::WhiteSpaceDatabase(const Dataset& dataset)
    : dataset_(&dataset) {}

std::vector<WhiteSpaceDatabase::ChannelInfo> WhiteSpaceDatabase::query(
    const Point& position) const {
  return query(dataset_->grid().cell_of(position));
}

std::vector<WhiteSpaceDatabase::ChannelInfo> WhiteSpaceDatabase::query(
    const Cell& cell) const {
  ++queries_;
  const std::size_t index = dataset_->grid().index(cell);
  std::vector<ChannelInfo> out;
  for (std::size_t r = 0; r < dataset_->channel_count(); ++r) {
    if (dataset_->availability(r).contains(index)) {
      out.push_back({r, dataset_->quality_at_index(r, index)});
    }
  }
  return out;
}

double WhiteSpaceDatabase::quality(std::size_t channel,
                                   const Cell& cell) const {
  return dataset_->quality(channel, cell);
}

bool WhiteSpaceDatabase::available(std::size_t channel,
                                   const Cell& cell) const {
  return dataset_->availability(channel).contains(
      dataset_->grid().index(cell));
}

std::size_t WhiteSpaceDatabase::channel_count() const noexcept {
  return dataset_->channel_count();
}

const Grid& WhiteSpaceDatabase::grid() const noexcept {
  return dataset_->grid();
}

}  // namespace lppa::geo
