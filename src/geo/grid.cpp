#include "geo/grid.h"

#include <algorithm>
#include <cmath>

namespace lppa::geo {

double distance(const Point& a, const Point& b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

Grid::Grid(int rows, int cols, double cell_size_m)
    : rows_(rows), cols_(cols), cell_size_m_(cell_size_m) {
  LPPA_REQUIRE(rows > 0 && cols > 0, "Grid dimensions must be positive");
  LPPA_REQUIRE(cell_size_m > 0.0, "Grid cell size must be positive");
}

std::size_t Grid::index(const Cell& c) const {
  LPPA_REQUIRE(in_bounds(c), "cell out of grid bounds");
  return static_cast<std::size_t>(c.row) * static_cast<std::size_t>(cols_) +
         static_cast<std::size_t>(c.col);
}

Cell Grid::cell_at(std::size_t index) const {
  LPPA_REQUIRE(index < cell_count(), "cell index out of range");
  return Cell{static_cast<int>(index / static_cast<std::size_t>(cols_)),
              static_cast<int>(index % static_cast<std::size_t>(cols_))};
}

Point Grid::center(const Cell& c) const {
  LPPA_REQUIRE(in_bounds(c), "cell out of grid bounds");
  return Point{(c.col + 0.5) * cell_size_m_, (c.row + 0.5) * cell_size_m_};
}

Cell Grid::cell_of(const Point& p) const noexcept {
  int col = static_cast<int>(std::floor(p.x / cell_size_m_));
  int row = static_cast<int>(std::floor(p.y / cell_size_m_));
  col = std::clamp(col, 0, cols_ - 1);
  row = std::clamp(row, 0, rows_ - 1);
  return Cell{row, col};
}

double Grid::cell_distance_m(const Cell& a, const Cell& b) const {
  return distance(center(a), center(b));
}

}  // namespace lppa::geo
