// ASCII rendering of grid rasters — used by the examples to show
// coverage maps and attack candidate sets in a terminal (the repo's
// stand-in for the paper's Fig. 1(b) Google-Earth screenshots).
//
// Row 0 is drawn at the bottom so the picture matches the metric
// coordinate system (y grows north).
#pragma once

#include <functional>
#include <string>

#include "common/cellset.h"
#include "geo/grid.h"

namespace lppa::geo {

struct RenderOptions {
  /// Downsample: each output character covers block x block cells (a
  /// block is "set" when any member cell is).  1 = full resolution.
  int block = 1;
  char set_char = '#';    ///< member cells
  char clear_char = '.';  ///< non-member cells
  char mark_char = 'X';   ///< marked cell (e.g. the victim's position)
};

/// Renders the member cells of `set` over the grid; `marked` (optional,
/// pass nullptr for none) overrides the glyph at one cell.
std::string render_ascii_map(const Grid& grid, const CellSet& set,
                             const Cell* marked = nullptr,
                             const RenderOptions& options = {});

/// Renders a scalar raster (e.g. a quality field) with the glyph ramp
/// " .:-=+*#%@" over [lo, hi].
std::string render_ascii_field(const Grid& grid,
                               const std::function<double(std::size_t)>& value,
                               double lo, double hi, int block = 1);

}  // namespace lppa::geo
