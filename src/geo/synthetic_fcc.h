// SyntheticFcc: generator producing FCC/TVFool-like per-channel coverage
// datasets (the paper's experimental substrate, see DESIGN.md §2).
//
// Each channel gets one PU transmitter (a TV tower) placed in an extended
// neighbourhood of the area, a random EIRP, and a terrain-dependent
// path-loss + shadowing realisation.  Four presets model the paper's
// Areas 1-4: denser terrain (higher exponent, stronger shadowing) shrinks
// and roughens coverage, which is what differentiates the BCM/BPM attack
// quality across areas in Fig. 4(c).
#pragma once

#include <cstdint>
#include <string>

#include "geo/coverage.h"
#include "geo/pathloss.h"

namespace lppa::geo {

struct Tower {
  Point position;        ///< metres; may lie outside the area proper
  double tx_power_dbm;   ///< EIRP
};

struct TerrainPreset {
  std::string name;
  double pathloss_exponent;
  double shadow_sigma_db;
  int shadow_smooth_radius;
  double tx_power_min_dbm;
  double tx_power_max_dbm;
  /// Towers are placed uniformly in the area square extended by this
  /// fraction on every side.
  double tower_spread;
};

/// The four evaluation areas of the paper (1 = densest urban .. 4 = rural).
const TerrainPreset& area_preset(int area_id);

/// Number of supported presets.
int area_preset_count() noexcept;

struct SyntheticFccConfig {
  int rows = 100;
  int cols = 100;
  double cell_size_m = 750.0;      ///< 100 x 750 m = the paper's 75 km side
  double threshold_dbm = -81.0;    ///< paper's practical availability rule
  double quality_span_db = 30.0;   ///< headroom that saturates quality at 1
  int num_channels = 129;          ///< LA has 129 channels on TVFool
  /// Towers per channel drawn uniformly from [1, max_towers_per_channel]
  /// (single-frequency networks / translator stations).  A cell is
  /// protected when ANY tower's signal exceeds the threshold, so more
  /// towers shrink availability.  Default 1 = one PU transmitter per
  /// channel, the configuration all paper-reproduction benches use.
  int max_towers_per_channel = 1;
};

/// Deterministically generates the dataset for (preset, config, seed).
Dataset generate_dataset(const TerrainPreset& preset,
                         const SyntheticFccConfig& config, std::uint64_t seed);

/// The tower layout used for channel r under (preset, config, seed); split
/// out so tests can verify determinism and geometry independently.
Tower tower_for_channel(const TerrainPreset& preset,
                        const SyntheticFccConfig& config, Rng& rng);

}  // namespace lppa::geo
