#include "geo/render.h"

#include <algorithm>

namespace lppa::geo {

std::string render_ascii_map(const Grid& grid, const CellSet& set,
                             const Cell* marked,
                             const RenderOptions& options) {
  LPPA_REQUIRE(set.universe_size() == grid.cell_count(),
               "set universe must match the grid");
  LPPA_REQUIRE(options.block >= 1, "block size must be positive");
  const int block = options.block;
  const int out_rows = (grid.rows() + block - 1) / block;
  const int out_cols = (grid.cols() + block - 1) / block;

  std::string out;
  out.reserve(static_cast<std::size_t>(out_rows) * (out_cols + 1));
  for (int br = out_rows - 1; br >= 0; --br) {  // row 0 at the bottom
    for (int bc = 0; bc < out_cols; ++bc) {
      char glyph = options.clear_char;
      bool has_mark = false;
      for (int r = br * block; r < std::min((br + 1) * block, grid.rows());
           ++r) {
        for (int c = bc * block; c < std::min((bc + 1) * block, grid.cols());
             ++c) {
          if (set.contains(grid.index({r, c}))) glyph = options.set_char;
          if (marked && marked->row == r && marked->col == c) {
            has_mark = true;
          }
        }
      }
      out.push_back(has_mark ? options.mark_char : glyph);
    }
    out.push_back('\n');
  }
  return out;
}

std::string render_ascii_field(const Grid& grid,
                               const std::function<double(std::size_t)>& value,
                               double lo, double hi, int block) {
  LPPA_REQUIRE(hi > lo, "field range must be non-empty");
  LPPA_REQUIRE(block >= 1, "block size must be positive");
  static constexpr char kRamp[] = " .:-=+*#%@";
  constexpr int kLevels = sizeof(kRamp) - 2;  // last index of the ramp

  const int out_rows = (grid.rows() + block - 1) / block;
  const int out_cols = (grid.cols() + block - 1) / block;
  std::string out;
  out.reserve(static_cast<std::size_t>(out_rows) * (out_cols + 1));
  for (int br = out_rows - 1; br >= 0; --br) {
    for (int bc = 0; bc < out_cols; ++bc) {
      double acc = 0.0;
      int count = 0;
      for (int r = br * block; r < std::min((br + 1) * block, grid.rows());
           ++r) {
        for (int c = bc * block; c < std::min((bc + 1) * block, grid.cols());
             ++c) {
          acc += value(grid.index({r, c}));
          ++count;
        }
      }
      const double mean = acc / std::max(count, 1);
      const double unit = std::clamp((mean - lo) / (hi - lo), 0.0, 1.0);
      out.push_back(kRamp[static_cast<int>(unit * kLevels)]);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace lppa::geo
