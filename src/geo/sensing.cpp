#include "geo/sensing.h"

#include <algorithm>
#include <cmath>

namespace lppa::geo {

EnergyDetector::EnergyDetector(const SensingConfig& config)
    : config_(config) {
  LPPA_REQUIRE(config_.measurement_sigma_db >= 0.0,
               "measurement sigma must be non-negative");
  LPPA_REQUIRE(config_.averaging >= 1, "averaging needs at least one sample");
  LPPA_REQUIRE(config_.quality_span_db > 0.0, "quality span must be positive");
}

double EnergyDetector::effective_sigma() const noexcept {
  return config_.measurement_sigma_db /
         std::sqrt(static_cast<double>(config_.averaging));
}

double EnergyDetector::measure(const Dataset& dataset, std::size_t channel,
                               std::size_t cell_index, Rng& rng) const {
  const double truth = dataset.channel(channel).rssi_dbm.at(cell_index);
  return truth + rng.normal(0.0, effective_sigma());
}

bool EnergyDetector::channel_occupied(const Dataset& dataset,
                                      std::size_t channel,
                                      std::size_t cell_index,
                                      Rng& rng) const {
  return measure(dataset, channel, cell_index, rng) >
         config_.detection_threshold_dbm;
}

std::vector<EnergyDetector::SensedChannel> EnergyDetector::sense(
    const Dataset& dataset, std::size_t cell_index, Rng& rng) const {
  std::vector<SensedChannel> out;
  for (std::size_t r = 0; r < dataset.channel_count(); ++r) {
    const double measured = measure(dataset, r, cell_index, rng);
    if (measured > config_.detection_threshold_dbm) continue;  // occupied
    const double headroom = config_.detection_threshold_dbm - measured;
    out.push_back(
        {r, std::clamp(headroom / config_.quality_span_db, 0.0, 1.0)});
  }
  return out;
}

double EnergyDetector::occupied_probability(double rssi_dbm) const {
  const double sigma = effective_sigma();
  const double gap = config_.detection_threshold_dbm - rssi_dbm;
  if (sigma == 0.0) return gap < 0.0 ? 1.0 : 0.0;
  // P[rssi + noise > threshold] = Q(gap / sigma).
  return 0.5 * std::erfc(gap / (sigma * std::sqrt(2.0)));
}

}  // namespace lppa::geo
