// Grid geometry: the paper divides each 75 km x 75 km area into 100 x 100
// cells and represents a cell by its (row, column) pair.  This class owns
// the cell <-> index <-> metric-coordinate conversions used by the
// coverage maps, the attacks and the metrics.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/error.h"

namespace lppa::geo {

/// A cell address (m = row, n = column in the paper's notation).
struct Cell {
  int row = 0;
  int col = 0;
  bool operator==(const Cell&) const = default;
};

/// A point in metres within the area, origin at the south-west corner.
struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// Euclidean distance in metres.
double distance(const Point& a, const Point& b) noexcept;

class Grid {
 public:
  /// rows x cols cells, each cell_size_m metres on a side.
  Grid(int rows, int cols, double cell_size_m);

  int rows() const noexcept { return rows_; }
  int cols() const noexcept { return cols_; }
  double cell_size_m() const noexcept { return cell_size_m_; }
  std::size_t cell_count() const noexcept {
    return static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_);
  }
  /// Extent of the area in metres (width == cols * cell size).
  double width_m() const noexcept { return cols_ * cell_size_m_; }
  double height_m() const noexcept { return rows_ * cell_size_m_; }

  bool in_bounds(const Cell& c) const noexcept {
    return c.row >= 0 && c.row < rows_ && c.col >= 0 && c.col < cols_;
  }

  /// Row-major linear index of a cell.
  std::size_t index(const Cell& c) const;
  Cell cell_at(std::size_t index) const;

  /// Centre of a cell in metres.
  Point center(const Cell& c) const;

  /// The cell containing a point (clamped to the boundary cells so that
  /// jittered positions on the very edge stay in-universe).
  Cell cell_of(const Point& p) const noexcept;

  /// Distance between cell centres in metres — the metric behind the
  /// "incorrectness" attack measure.
  double cell_distance_m(const Cell& a, const Cell& b) const;

  bool operator==(const Grid&) const = default;

 private:
  int rows_;
  int cols_;
  double cell_size_m_;
};

}  // namespace lppa::geo
