#include "geo/synthetic_fcc.h"

#include <array>
#include <limits>

namespace lppa::geo {

namespace {

const std::array<TerrainPreset, 4> kPresets = {{
    // Area 1: urban core — strong loss, heavy ragged shadowing.
    {"area1-urban", 3.8, 9.0, 2, 50.0, 68.0, 0.40},
    // Area 2: dense metro — extreme loss, small patchy coverage, so the
    // complement (availability) is huge and BCM yields large sets, which
    // matches the paper's remark that Area 2's BCM output is "quite large".
    {"area2-dense-metro", 4.2, 10.0, 1, 48.0, 64.0, 0.30},
    // Area 3: suburban — the defence-evaluation area (Fig. 5).
    {"area3-suburban", 3.2, 7.0, 2, 48.0, 66.0, 0.50},
    // Area 4: exurban/rural — clean propagation, crisp coverage edges; the
    // attack-evaluation area (Fig. 4(a)(b)).
    {"area4-rural", 2.8, 5.0, 3, 46.0, 66.0, 0.60},
}};

}  // namespace

const TerrainPreset& area_preset(int area_id) {
  LPPA_REQUIRE(area_id >= 1 && area_id <= static_cast<int>(kPresets.size()),
               "area_id must be in [1, 4]");
  return kPresets[static_cast<std::size_t>(area_id - 1)];
}

int area_preset_count() noexcept { return static_cast<int>(kPresets.size()); }

Tower tower_for_channel(const TerrainPreset& preset,
                        const SyntheticFccConfig& config, Rng& rng) {
  const double width = config.cols * config.cell_size_m;
  const double height = config.rows * config.cell_size_m;
  const double sx = preset.tower_spread * width;
  const double sy = preset.tower_spread * height;
  Tower t;
  t.position.x = rng.uniform(-sx, width + sx);
  t.position.y = rng.uniform(-sy, height + sy);
  t.tx_power_dbm = rng.uniform(preset.tx_power_min_dbm, preset.tx_power_max_dbm);
  return t;
}

Dataset generate_dataset(const TerrainPreset& preset,
                         const SyntheticFccConfig& config, std::uint64_t seed) {
  LPPA_REQUIRE(config.num_channels > 0, "need at least one channel");
  Grid grid(config.rows, config.cols, config.cell_size_m);
  Dataset dataset(grid, config.threshold_dbm);

  PathLossModel model;
  model.exponent = preset.pathloss_exponent;
  model.shadowing_sigma_db = preset.shadow_sigma_db;
  model.shadowing_smooth_radius = preset.shadow_smooth_radius;

  LPPA_REQUIRE(config.max_towers_per_channel >= 1,
               "each channel needs at least one tower");
  Rng rng(seed);
  for (int r = 0; r < config.num_channels; ++r) {
    // Independent streams per channel: tower geometry and shadow field.
    Rng channel_rng = rng.fork();
    const int towers =
        1 + static_cast<int>(channel_rng.below(
                static_cast<std::uint64_t>(config.max_towers_per_channel)));
    std::vector<Tower> layout;
    layout.reserve(static_cast<std::size_t>(towers));
    for (int t = 0; t < towers; ++t) {
      layout.push_back(tower_for_channel(preset, config, channel_rng));
    }
    const std::vector<double> shadow = make_shadowing_field(
        grid, model.shadowing_sigma_db, model.shadowing_smooth_radius,
        channel_rng);

    // The protection contour follows the strongest transmitter of the
    // channel's network at each cell.
    std::vector<double> rssi(grid.cell_count(),
                             -std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < rssi.size(); ++i) {
      const Point p = grid.center(grid.cell_at(i));
      for (const Tower& tower : layout) {
        const double d = distance(p, tower.position);
        rssi[i] = std::max(
            rssi[i], model.median_rssi_dbm(tower.tx_power_dbm, d));
      }
      rssi[i] += shadow[i];
    }
    dataset.add_channel(finalize_channel(grid, std::move(rssi),
                                         config.threshold_dbm,
                                         config.quality_span_db));
  }
  return dataset;
}

}  // namespace lppa::geo
