// WhiteSpaceDatabase: the geo-location database of database-driven CRNs
// (paper §II-A "through spectrum sensing or database query", and the
// attacker's assumed source of the per-cell quality statistics
// q*_r(m,n) in §III-B).
//
// The database answers position queries with the channels available at
// the containing cell and their quality statistics, and exposes the
// full per-cell statistic table (public FCC-style data, which is exactly
// why the BPM attacker has it too).  Query accounting lets experiments
// report SU-side database load.
#pragma once

#include <cstddef>
#include <vector>

#include "geo/coverage.h"

namespace lppa::geo {

class WhiteSpaceDatabase {
 public:
  /// The database serves a fixed published dataset snapshot; the caller
  /// keeps `dataset` alive.
  explicit WhiteSpaceDatabase(const Dataset& dataset);

  struct ChannelInfo {
    std::size_t channel = 0;
    double quality = 0.0;  ///< q*_r at the queried cell

    bool operator==(const ChannelInfo&) const = default;
  };

  /// Channels available at the cell containing `position`, with their
  /// quality statistics.  Mirrors a TVWS database query.
  std::vector<ChannelInfo> query(const Point& position) const;

  /// Same, by cell address.
  std::vector<ChannelInfo> query(const Cell& cell) const;

  /// The full public statistic (what the BPM attacker downloads).
  double quality(std::size_t channel, const Cell& cell) const;

  /// True iff the channel may be used at the cell.
  bool available(std::size_t channel, const Cell& cell) const;

  std::size_t channel_count() const noexcept;
  const Grid& grid() const noexcept;

  /// Number of position queries served so far (TVWS databases meter
  /// device queries; experiments report this as SU-side load).
  std::size_t queries_served() const noexcept { return queries_; }

 private:
  const Dataset* dataset_;
  mutable std::size_t queries_ = 0;
};

}  // namespace lppa::geo
