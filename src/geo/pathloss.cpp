#include "geo/pathloss.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace lppa::geo {

double PathLossModel::median_rssi_dbm(double tx_power_dbm,
                                      double distance_m) const {
  const double d = std::max(distance_m, reference_distance_m);
  const double pl =
      reference_loss_db + 10.0 * exponent * std::log10(d / reference_distance_m);
  return tx_power_dbm - pl;
}

std::vector<double> make_shadowing_field(const Grid& grid, double sigma_db,
                                         int smooth_radius, Rng& rng) {
  LPPA_REQUIRE(sigma_db >= 0.0, "shadowing sigma must be non-negative");
  LPPA_REQUIRE(smooth_radius >= 0, "smoothing radius must be non-negative");
  const int rows = grid.rows();
  const int cols = grid.cols();
  std::vector<double> field(grid.cell_count());
  for (auto& v : field) v = rng.normal(0.0, 1.0);
  if (sigma_db == 0.0) {
    std::fill(field.begin(), field.end(), 0.0);
    return field;
  }

  // Separable box blur (horizontal then vertical), edge-clamped.
  if (smooth_radius > 0) {
    std::vector<double> tmp(field.size());
    auto blur_pass = [&](bool horizontal) {
      for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
          double acc = 0.0;
          int count = 0;
          for (int k = -smooth_radius; k <= smooth_radius; ++k) {
            const int rr = horizontal ? r : std::clamp(r + k, 0, rows - 1);
            const int cc = horizontal ? std::clamp(c + k, 0, cols - 1) : c;
            acc += field[static_cast<std::size_t>(rr) * cols + cc];
            ++count;
          }
          tmp[static_cast<std::size_t>(r) * cols + c] = acc / count;
        }
      }
      field.swap(tmp);
    };
    blur_pass(true);
    blur_pass(false);
  }

  // Blurring shrank the variance (and the scale-up would amplify any
  // residual sample mean), so centre then rescale to the requested sigma.
  const double m = mean(field);
  for (auto& v : field) v -= m;
  const double sd = sample_stddev(field);
  const double scale = (sd > 1e-12) ? sigma_db / sd : 0.0;
  for (auto& v : field) v *= scale;
  return field;
}

}  // namespace lppa::geo
