#include "geo/coverage.h"

#include <algorithm>
#include <cmath>

namespace lppa::geo {

Dataset::Dataset(Grid grid, double threshold_dbm)
    : grid_(grid), threshold_dbm_(threshold_dbm) {}

void Dataset::add_channel(ChannelCoverage channel) {
  LPPA_REQUIRE(channel.rssi_dbm.size() == grid_.cell_count(),
               "channel raster size must match the grid");
  LPPA_REQUIRE(channel.available.universe_size() == grid_.cell_count(),
               "channel availability universe must match the grid");
  channels_.push_back(std::move(channel));
}

const ChannelCoverage& Dataset::channel(std::size_t r) const {
  LPPA_REQUIRE(r < channels_.size(), "channel index out of range");
  return channels_[r];
}

double Dataset::quality(std::size_t r, const Cell& cell) const {
  return quality_at_index(r, grid_.index(cell));
}

double Dataset::quality_at_index(std::size_t r, std::size_t cell_index) const {
  const auto& ch = channel(r);
  LPPA_REQUIRE(cell_index < ch.quality.size(), "cell index out of range");
  return ch.quality[cell_index];
}

std::vector<std::size_t> Dataset::available_channels(const Cell& cell) const {
  const std::size_t idx = grid_.index(cell);
  std::vector<std::size_t> out;
  for (std::size_t r = 0; r < channels_.size(); ++r) {
    if (channels_[r].available.contains(idx)) out.push_back(r);
  }
  return out;
}

Dataset Dataset::restricted_to(std::size_t k) const {
  LPPA_REQUIRE(k <= channels_.size(),
               "cannot restrict to more channels than exist");
  Dataset out(grid_, threshold_dbm_);
  for (std::size_t r = 0; r < k; ++r) out.add_channel(channels_[r]);
  return out;
}

namespace {
// rssi values are stored as centi-dB offsets from a -300 dBm floor in a
// u32 — lossless far beyond any physical precision.
constexpr double kRssiFloorDbm = -300.0;

std::uint32_t pack_rssi(double dbm) {
  const double clamped = std::max(dbm, kRssiFloorDbm);
  return static_cast<std::uint32_t>(
      std::llround((clamped - kRssiFloorDbm) * 100.0));
}

double unpack_rssi(std::uint32_t packed) {
  return kRssiFloorDbm + static_cast<double>(packed) / 100.0;
}
}  // namespace

Bytes Dataset::serialize() const {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(grid_.rows()));
  w.u32(static_cast<std::uint32_t>(grid_.cols()));
  w.u64(static_cast<std::uint64_t>(grid_.cell_size_m() * 1000.0));  // mm
  w.u32(pack_rssi(threshold_dbm_));
  w.u32(static_cast<std::uint32_t>(channels_.size()));
  const std::size_t mask_bytes = (grid_.cell_count() + 7) / 8;
  for (const auto& ch : channels_) {
    for (double rssi : ch.rssi_dbm) w.u32(pack_rssi(rssi));
    // The availability mask is authoritative (cells sitting within
    // quantisation distance of the threshold must not flip on reload —
    // the attacks consume these bits).
    Bytes mask(mask_bytes, 0);
    ch.available.for_each(
        [&](std::size_t i) { mask[i / 8] |= std::uint8_t{1} << (i % 8); });
    w.raw(mask);
  }
  return w.take();
}

Dataset Dataset::deserialize(std::span<const std::uint8_t> wire) {
  ByteReader r(wire);
  const std::uint32_t rows = r.u32();
  const std::uint32_t cols = r.u32();
  const double cell_size_m = static_cast<double>(r.u64()) / 1000.0;
  LPPA_PROTOCOL_CHECK(rows > 0 && cols > 0 && cell_size_m > 0.0,
                      "invalid dataset geometry");
  const double threshold = unpack_rssi(r.u32());
  const Grid grid(static_cast<int>(rows), static_cast<int>(cols),
                  cell_size_m);
  Dataset ds(grid, threshold);
  const std::uint32_t channels = r.u32();
  const std::size_t mask_bytes = (grid.cell_count() + 7) / 8;
  for (std::uint32_t c = 0; c < channels; ++c) {
    ChannelCoverage ch(grid.cell_count());
    for (auto& v : ch.rssi_dbm) v = unpack_rssi(r.u32());
    const Bytes mask = r.raw(mask_bytes);
    for (std::size_t i = 0; i < grid.cell_count(); ++i) {
      if ((mask[i / 8] >> (i % 8)) & 1) {
        ch.available.insert(i);
        const double headroom = threshold - ch.rssi_dbm[i];
        ch.quality[i] = std::clamp(headroom / 30.0, 0.0, 1.0);
      }
    }
    ds.add_channel(std::move(ch));
  }
  LPPA_PROTOCOL_CHECK(r.at_end(), "trailing bytes after Dataset");
  return ds;
}

ChannelCoverage finalize_channel(const Grid& grid,
                                 std::vector<double> rssi_dbm,
                                 double threshold_dbm,
                                 double quality_span_db) {
  LPPA_REQUIRE(rssi_dbm.size() == grid.cell_count(),
               "rssi raster size must match the grid");
  LPPA_REQUIRE(quality_span_db > 0.0, "quality span must be positive");
  ChannelCoverage ch(grid.cell_count());
  ch.rssi_dbm = std::move(rssi_dbm);
  for (std::size_t i = 0; i < ch.rssi_dbm.size(); ++i) {
    if (ch.rssi_dbm[i] <= threshold_dbm) {
      ch.available.insert(i);
      const double headroom = threshold_dbm - ch.rssi_dbm[i];
      ch.quality[i] = std::clamp(headroom / quality_span_db, 0.0, 1.0);
    }
  }
  return ch;
}

}  // namespace lppa::geo
