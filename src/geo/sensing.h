// Energy-detection spectrum sensing: the "through spectrum sensing" arm
// of the paper's initial phase (§II-A), as the alternative to querying
// the white-space database.
//
// The SU measures the PU signal on each channel; measurement noise makes
// the detector fallible, so a sensing SU can (a) miss a protected
// channel and bid on it — harmful interference, and a submission that
// breaks the BCM attacker's "bids imply availability" assumption — or
// (b) falsely detect occupancy and forgo an available channel.
// bench/abl_sensing quantifies how those errors degrade the BCM/BPM
// attacks even before any deliberate defence.
#pragma once

#include <vector>

#include "common/rng.h"
#include "geo/coverage.h"

namespace lppa::geo {

struct SensingConfig {
  /// The availability decision threshold; matched to the FCC rule the
  /// dataset was built with (paper: -81 dBm practical threshold).
  double detection_threshold_dbm = -81.0;
  /// Std-dev of a single energy measurement in dB.
  double measurement_sigma_db = 2.0;
  /// Independent measurements averaged per channel (noise shrinks with
  /// sqrt(averaging)).
  int averaging = 4;
  /// Quality span for the sensed-quality estimate (matches the dataset's
  /// headroom convention).
  double quality_span_db = 30.0;
};

class EnergyDetector {
 public:
  explicit EnergyDetector(const SensingConfig& config);

  /// One sensing measurement of channel r at a cell: the true received
  /// power plus averaged measurement noise, in dBm.
  double measure(const Dataset& dataset, std::size_t channel,
                 std::size_t cell_index, Rng& rng) const;

  /// The SU's sensed verdict: channel considered occupied (unavailable)?
  bool channel_occupied(const Dataset& dataset, std::size_t channel,
                        std::size_t cell_index, Rng& rng) const;

  /// Full sensed view of one cell: estimated-available channels with the
  /// sensed quality (headroom below the threshold, clamped to [0,1]).
  struct SensedChannel {
    std::size_t channel = 0;
    double quality = 0.0;
  };
  std::vector<SensedChannel> sense(const Dataset& dataset,
                                   std::size_t cell_index, Rng& rng) const;

  /// Closed-form probability that a channel with true received power
  /// `rssi_dbm` is declared occupied (Gaussian measurement model).
  double occupied_probability(double rssi_dbm) const;

  const SensingConfig& config() const noexcept { return config_; }

 private:
  double effective_sigma() const noexcept;
  SensingConfig config_;
};

}  // namespace lppa::geo
