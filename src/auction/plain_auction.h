// PlainAuction: the non-private baseline ("without LPPA" in Fig. 5).
//
// The auctioneer sees plaintext locations and bids, builds the conflict
// graph, runs the identical greedy allocation (Algorithm 3), and charges
// first-price.  Every privacy-vs-performance figure compares LppaAuction
// against this engine under the same seed and workload.
#pragma once

#include <vector>

#include "auction/allocate.h"
#include "auction/bid.h"
#include "auction/bid_matrix.h"
#include "auction/conflict.h"

namespace lppa::auction {

/// Aggregate result of one auction round plus the paper's two performance
/// metrics.
struct AuctionOutcome {
  std::vector<Award> awards;

  /// Sum of the winners' (valid) charges — the paper's "sum of winning
  /// bids".
  Money winning_bid_sum() const noexcept;

  /// Number of awards whose charge is a valid positive price.
  std::size_t satisfied_winners() const noexcept;

  /// "User satisfaction": fraction of interested bidders (those with at
  /// least one positive true bid) that ended up holding a channel at a
  /// valid price.
  double user_satisfaction(std::size_t interested_users) const noexcept;
};

/// Number of users with at least one positive bid.
std::size_t count_interested(const std::vector<BidVector>& bids);

class PlainAuction {
 public:
  /// lambda: half interference-square side (paper's λ), in the same
  /// integer units as the locations.
  PlainAuction(std::size_t num_channels, std::uint64_t lambda);

  /// Runs one full round: conflict graph from plaintext locations, greedy
  /// allocation, first-price charging.  A zero-bid win is possible when a
  /// column holds only zeros; such awards are marked invalid (charge 0),
  /// mirroring how the TTP invalidates them under LPPA.
  AuctionOutcome run(const std::vector<SuLocation>& locations,
                     const std::vector<BidVector>& bids, Rng& rng) const;

  std::uint64_t lambda() const noexcept { return lambda_; }
  std::size_t num_channels() const noexcept { return num_channels_; }

 private:
  std::size_t num_channels_;
  std::uint64_t lambda_;
};

}  // namespace lppa::auction
