#include "auction/conflict.h"

#include <algorithm>
#include <numeric>

namespace lppa::auction {

bool locations_conflict(const SuLocation& a, const SuLocation& b,
                        std::uint64_t lambda) noexcept {
  const std::uint64_t dx = a.x > b.x ? a.x - b.x : b.x - a.x;
  const std::uint64_t dy = a.y > b.y ? a.y - b.y : b.y - a.y;
  // PPBS checks "x_i in [x_j - 2l, x_j + 2l]", an inclusive predicate, so
  // the plaintext reference uses <= to match it exactly.
  return dx <= 2 * lambda && dy <= 2 * lambda;
}

ConflictGraph::ConflictGraph(std::size_t num_users)
    : num_users_(num_users),
      adjacency_(num_users, CellSet(num_users == 0 ? 1 : num_users)) {
  LPPA_REQUIRE(num_users > 0, "ConflictGraph requires at least one user");
}

ConflictGraph ConflictGraph::from_locations(
    const std::vector<SuLocation>& locations, std::uint64_t lambda) {
  ConflictGraph g(locations.size());
  for (std::size_t i = 0; i < locations.size(); ++i) {
    for (std::size_t j = i + 1; j < locations.size(); ++j) {
      if (locations_conflict(locations[i], locations[j], lambda)) {
        g.add_conflict(i, j);
      }
    }
  }
  return g;
}

ConflictGraph ConflictGraph::from_locations_sweep(
    const std::vector<SuLocation>& locations, std::uint64_t lambda) {
  ConflictGraph g(locations.size());
  std::vector<std::size_t> order(locations.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return locations[a].x < locations[b].x;
  });

  const std::uint64_t diameter = 2 * lambda;
  std::size_t window_start = 0;
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const auto& current = locations[order[pos]];
    // Slide the window: keep only candidates within 2λ on the x axis.
    while (locations[order[window_start]].x + diameter < current.x) {
      ++window_start;
    }
    for (std::size_t other = window_start; other < pos; ++other) {
      if (locations_conflict(current, locations[order[other]], lambda)) {
        g.add_conflict(order[pos], order[other]);
      }
    }
  }
  return g;
}

void ConflictGraph::add_conflict(std::size_t i, std::size_t j) {
  LPPA_REQUIRE(i < num_users_ && j < num_users_, "user index out of range");
  LPPA_REQUIRE(i != j, "a user does not conflict with itself");
  adjacency_[i].insert(j);
  adjacency_[j].insert(i);
}

void ConflictGraph::remove_su(std::size_t i) {
  LPPA_REQUIRE(i < num_users_, "user index out of range");
  adjacency_[i].for_each([&](std::size_t j) { adjacency_[j].erase(i); });
  adjacency_[i] = CellSet(num_users_);
}

void ConflictGraph::add_su(std::size_t i,
                           const std::vector<std::size_t>& neighbors) {
  LPPA_REQUIRE(i < num_users_, "user index out of range");
  LPPA_REQUIRE(adjacency_[i].empty(), "add_su requires an isolated slot");
  for (std::size_t j : neighbors) add_conflict(i, j);
}

void ConflictGraph::move_su(std::size_t i,
                            const std::vector<std::size_t>& neighbors) {
  remove_su(i);
  add_su(i, neighbors);
}

bool ConflictGraph::conflicts(std::size_t i, std::size_t j) const {
  LPPA_REQUIRE(i < num_users_ && j < num_users_, "user index out of range");
  if (i == j) return false;
  return adjacency_[i].contains(j);
}

const CellSet& ConflictGraph::neighbors(std::size_t i) const {
  LPPA_REQUIRE(i < num_users_, "user index out of range");
  return adjacency_[i];
}

std::size_t ConflictGraph::edge_count() const noexcept {
  std::size_t total = 0;
  for (const auto& adj : adjacency_) total += adj.count();
  return total / 2;
}

}  // namespace lppa::auction
