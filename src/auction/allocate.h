// Greedy spectrum allocation (paper Algorithm 3), written once against an
// abstract bid-table view so the plaintext baseline and the LPPA
// encrypted-domain auction share the identical allocation logic — any
// performance difference between them is then attributable purely to the
// privacy machinery (zero-disguise), which is what Fig. 5(e)/(f) measures.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "auction/bid.h"
#include "auction/conflict.h"
#include "common/rng.h"

namespace lppa::auction {

/// What the allocator needs from a bid table.  `argmax_in_column` is where
/// the two worlds differ: the plaintext table compares integers, the
/// encrypted table runs prefix-membership checks.
class BidTableView {
 public:
  virtual ~BidTableView() = default;

  virtual std::size_t num_users() const noexcept = 0;
  virtual std::size_t num_channels() const noexcept = 0;

  /// Entry still present in the table?
  virtual bool has(UserId u, ChannelId r) const = 0;

  /// Erase one entry / a whole user row.
  virtual void remove(UserId u, ChannelId r) = 0;
  virtual void remove_user(UserId u) = 0;

  /// The user holding the maximum bid among entries still present in
  /// column r, or nullopt if the column is empty.  Ties may be broken
  /// arbitrarily but deterministically.
  virtual std::optional<UserId> argmax_in_column(ChannelId r) const = 0;

  virtual bool empty() const noexcept = 0;
};

/// Runs Algorithm 3: repeatedly draw a channel uniformly from the rotation
/// set R, grant the column max, erase the winner's row and the
/// conflicting neighbours' entries in that column; refill R when it runs
/// dry; stop when the table is empty.  Charges are NOT set here (the
/// charging protocol owns them); Award::charge is left 0.
std::vector<Award> greedy_allocate(BidTableView& table,
                                   const ConflictGraph& conflicts, Rng& rng);

/// Global-greedy allocation: grants (user, channel) pairs in decreasing
/// bid order, skipping users already served and channel conflicts.
///
/// This order needs cross-channel bid comparisons, which the LPPA masked
/// domain deliberately makes impossible (per-channel keys) — Algorithm 3
/// randomises the channel order precisely because of that.  The
/// plaintext-only variant exists to quantify what that privacy-driven
/// design choice costs (bench/abl_allocation).
std::vector<Award> global_greedy_allocate(const std::vector<BidVector>& bids,
                                          const ConflictGraph& conflicts);

}  // namespace lppa::auction
