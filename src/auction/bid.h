// Shared value types of the auction layer.
#pragma once

#include <cstdint>
#include <vector>

namespace lppa::auction {

/// Index of a secondary user (bidder) within one auction round.
using UserId = std::size_t;

/// Index of an auctioned channel.
using ChannelId = std::size_t;

/// A bid price.  The paper assumes non-negative integer bids bounded by
/// bmax; zero means "channel not available to me / not wanted".
using Money = std::uint64_t;

/// One SU's bid vector B_i = {b_1 .. b_k}; entry r is the bid on channel r.
using BidVector = std::vector<Money>;

/// An award made by the allocation algorithm: user `user` wins channel
/// `channel`.  `charge` is the first-price charge determined at charging
/// time (equals the true bid for the plaintext auction; for LPPA it is
/// what the TTP reveals, and zero-disguised wins are flagged invalid).
struct Award {
  UserId user = 0;
  ChannelId channel = 0;
  Money charge = 0;
  bool valid = true;  ///< false when the TTP reports a disguised-zero win

  bool operator==(const Award&) const = default;
};

}  // namespace lppa::auction
