// BidMatrix: the auctioneer's bid table T (paper §V-A).
//
// Rows are users, columns are channels.  Entries are erased as the greedy
// allocator grants channels (winner's whole row; conflicting neighbours'
// entries in the granted column).  This is the plaintext instantiation of
// the BidTableView interface; the encrypted-domain twin lives in
// core/encrypted_bid_table.h.
#pragma once

#include <optional>
#include <vector>

#include "auction/allocate.h"
#include "auction/bid.h"

namespace lppa::auction {

class BidMatrix final : public BidTableView {
 public:
  /// Builds from one BidVector per user; all vectors must have length k.
  BidMatrix(const std::vector<BidVector>& bids, std::size_t num_channels);

  std::size_t num_users() const noexcept override { return users_; }
  std::size_t num_channels() const noexcept override { return channels_; }

  bool has(UserId u, ChannelId r) const override;
  void remove(UserId u, ChannelId r) override;
  void remove_user(UserId u) override;
  std::optional<UserId> argmax_in_column(ChannelId r) const override;
  bool empty() const noexcept override;

  /// The (still present) bid value; requires has(u, r).
  Money bid(UserId u, ChannelId r) const;

 private:
  std::size_t users_;
  std::size_t channels_;
  std::vector<std::optional<Money>> entries_;  // row-major

  std::size_t idx(UserId u, ChannelId r) const;
};

}  // namespace lppa::auction
