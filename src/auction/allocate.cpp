#include "auction/allocate.h"

#include <algorithm>

#include "common/error.h"

namespace lppa::auction {

std::vector<Award> greedy_allocate(BidTableView& table,
                                   const ConflictGraph& conflicts, Rng& rng) {
  LPPA_REQUIRE(conflicts.num_users() == table.num_users(),
               "conflict graph and bid table disagree on user count");
  const std::size_t k = table.num_channels();

  std::vector<Award> awards;
  std::vector<ChannelId> rotation;  // the set R of Algorithm 3
  auto refill = [&] {
    rotation.resize(k);
    for (std::size_t r = 0; r < k; ++r) rotation[r] = r;
  };
  refill();

  while (!table.empty()) {
    if (rotation.empty()) refill();
    // Draw a channel uniformly from R and remove it from the rotation.
    const std::size_t pick = static_cast<std::size_t>(rng.below(rotation.size()));
    const ChannelId r = rotation[pick];
    rotation.erase(rotation.begin() + static_cast<std::ptrdiff_t>(pick));

    const auto winner = table.argmax_in_column(r);
    if (!winner) continue;  // column already empty; rotate on

    awards.push_back(Award{*winner, r, /*charge=*/0, /*valid=*/true});

    // Delete the conflicting neighbours' entries for this channel, then the
    // winner's whole row (the winner only wanted one channel).
    conflicts.neighbors(*winner).for_each(
        [&](std::size_t neighbor) { table.remove(neighbor, r); });
    table.remove_user(*winner);
  }
  return awards;
}

std::vector<Award> global_greedy_allocate(const std::vector<BidVector>& bids,
                                          const ConflictGraph& conflicts) {
  LPPA_REQUIRE(!bids.empty(), "auction requires at least one bidder");
  LPPA_REQUIRE(conflicts.num_users() == bids.size(),
               "conflict graph and bid table disagree on user count");
  const std::size_t k = bids.front().size();
  for (const auto& bv : bids) {
    LPPA_REQUIRE(bv.size() == k, "ragged bid matrix");
  }

  struct Entry {
    Money bid;
    UserId user;
    ChannelId channel;
  };
  std::vector<Entry> entries;
  entries.reserve(bids.size() * k);
  for (UserId u = 0; u < bids.size(); ++u) {
    for (ChannelId r = 0; r < k; ++r) {
      entries.push_back({bids[u][r], u, r});
    }
  }
  // Decreasing bid; ties by (user, channel) for determinism.
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.bid != b.bid) return a.bid > b.bid;
    if (a.user != b.user) return a.user < b.user;
    return a.channel < b.channel;
  });

  std::vector<bool> served(bids.size(), false);
  // winners_on[r]: users already granted channel r.
  std::vector<std::vector<UserId>> winners_on(k);
  std::vector<Award> awards;
  for (const auto& e : entries) {
    if (served[e.user]) continue;
    bool blocked = false;
    for (UserId w : winners_on[e.channel]) {
      if (conflicts.conflicts(e.user, w)) {
        blocked = true;
        break;
      }
    }
    if (blocked) continue;
    served[e.user] = true;
    winners_on[e.channel].push_back(e.user);
    awards.push_back(Award{e.user, e.channel, /*charge=*/0, /*valid=*/true});
  }
  return awards;
}

}  // namespace lppa::auction
