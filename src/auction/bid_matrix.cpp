#include "auction/bid_matrix.h"

#include "common/error.h"

namespace lppa::auction {

BidMatrix::BidMatrix(const std::vector<BidVector>& bids,
                     std::size_t num_channels)
    : users_(bids.size()), channels_(num_channels) {
  LPPA_REQUIRE(users_ > 0, "BidMatrix requires at least one user");
  LPPA_REQUIRE(channels_ > 0, "BidMatrix requires at least one channel");
  entries_.resize(users_ * channels_);
  for (std::size_t u = 0; u < users_; ++u) {
    LPPA_REQUIRE(bids[u].size() == channels_,
                 "every bid vector must cover every channel");
    for (std::size_t r = 0; r < channels_; ++r) {
      entries_[u * channels_ + r] = bids[u][r];
    }
  }
}

std::size_t BidMatrix::idx(UserId u, ChannelId r) const {
  LPPA_REQUIRE(u < users_ && r < channels_, "bid table index out of range");
  return u * channels_ + r;
}

bool BidMatrix::has(UserId u, ChannelId r) const {
  return entries_[idx(u, r)].has_value();
}

void BidMatrix::remove(UserId u, ChannelId r) { entries_[idx(u, r)].reset(); }

void BidMatrix::remove_user(UserId u) {
  for (std::size_t r = 0; r < channels_; ++r) entries_[idx(u, r)].reset();
}

std::optional<UserId> BidMatrix::argmax_in_column(ChannelId r) const {
  std::optional<UserId> best;
  Money best_bid = 0;
  for (std::size_t u = 0; u < users_; ++u) {
    const auto& e = entries_[idx(u, r)];
    if (!e) continue;
    if (!best || *e > best_bid) {
      best = u;
      best_bid = *e;
    }
  }
  return best;
}

bool BidMatrix::empty() const noexcept {
  for (const auto& e : entries_) {
    if (e) return false;
  }
  return true;
}

Money BidMatrix::bid(UserId u, ChannelId r) const {
  const auto& e = entries_[idx(u, r)];
  LPPA_REQUIRE(e.has_value(), "bid entry already removed");
  return *e;
}

}  // namespace lppa::auction
