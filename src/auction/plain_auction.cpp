#include "auction/plain_auction.h"

#include "common/error.h"

namespace lppa::auction {

Money AuctionOutcome::winning_bid_sum() const noexcept {
  Money total = 0;
  for (const auto& a : awards) {
    if (a.valid) total += a.charge;
  }
  return total;
}

std::size_t AuctionOutcome::satisfied_winners() const noexcept {
  std::size_t n = 0;
  for (const auto& a : awards) {
    if (a.valid && a.charge > 0) ++n;
  }
  return n;
}

double AuctionOutcome::user_satisfaction(
    std::size_t interested_users) const noexcept {
  if (interested_users == 0) return 0.0;
  return static_cast<double>(satisfied_winners()) /
         static_cast<double>(interested_users);
}

std::size_t count_interested(const std::vector<BidVector>& bids) {
  std::size_t n = 0;
  for (const auto& bv : bids) {
    for (Money b : bv) {
      if (b > 0) {
        ++n;
        break;
      }
    }
  }
  return n;
}

PlainAuction::PlainAuction(std::size_t num_channels, std::uint64_t lambda)
    : num_channels_(num_channels), lambda_(lambda) {
  LPPA_REQUIRE(num_channels > 0, "auction requires at least one channel");
}

AuctionOutcome PlainAuction::run(const std::vector<SuLocation>& locations,
                                 const std::vector<BidVector>& bids,
                                 Rng& rng) const {
  LPPA_REQUIRE(locations.size() == bids.size(),
               "one location per bid vector required");
  LPPA_REQUIRE(!bids.empty(), "auction requires at least one bidder");

  const ConflictGraph conflicts =
      ConflictGraph::from_locations(locations, lambda_);
  BidMatrix table(bids, num_channels_);

  AuctionOutcome outcome;
  outcome.awards = greedy_allocate(table, conflicts, rng);

  // First-price charging directly from the plaintext bids.
  for (auto& award : outcome.awards) {
    const Money true_bid = bids[award.user][award.channel];
    award.charge = true_bid;
    award.valid = true_bid > 0;
  }
  return outcome;
}

}  // namespace lppa::auction
