// ConflictGraph: which pairs of SUs may not share a channel.
//
// The paper models interference as axis-aligned proximity: SU_i and SU_j
// conflict iff |x_i - x_j| <= 2*lambda and |y_i - y_j| <= 2*lambda (each
// user's interference range is a square of side 2*lambda centred on it).
// The plaintext path builds the graph from coordinates; the LPPA path
// reconstructs the same graph from hashed prefix submissions — tests
// assert the two graphs are identical.
#pragma once

#include <cstdint>
#include <vector>

#include "common/cellset.h"

namespace lppa::auction {

/// Integer SU coordinates (quantised metres), as PPBS requires
/// non-negative integers.
struct SuLocation {
  std::uint64_t x = 0;
  std::uint64_t y = 0;
  bool operator==(const SuLocation&) const = default;
};

/// The paper's conflict predicate.
bool locations_conflict(const SuLocation& a, const SuLocation& b,
                        std::uint64_t lambda) noexcept;

class ConflictGraph {
 public:
  explicit ConflictGraph(std::size_t num_users);

  /// Builds the graph from plaintext coordinates (the baseline path).
  static ConflictGraph from_locations(const std::vector<SuLocation>& locations,
                                      std::uint64_t lambda);

  /// Sweep-line variant: sorts by x and only tests pairs within the
  /// 2λ x-window — O(N log N + E·window) instead of O(N²) pairs.  The
  /// masked (PPBS) path cannot use this shortcut (hashed coordinates
  /// admit no sorting), but it has an equivalent escape from O(N²): the
  /// digest hash-join of prefix/digest_index.h, which joins on digest
  /// equality instead of coordinate order (bench/perf_scaling compares
  /// the two).  Produces exactly the same graph.
  static ConflictGraph from_locations_sweep(
      const std::vector<SuLocation>& locations, std::uint64_t lambda);

  std::size_t num_users() const noexcept { return num_users_; }

  void add_conflict(std::size_t i, std::size_t j);
  bool conflicts(std::size_t i, std::size_t j) const;

  /// Churn delta updates.  The graph keeps a fixed user universe (slot
  /// roster); arrivals and departures toggle a slot's edges in place.

  /// Detaches slot i from every neighbour: i becomes isolated.
  void remove_su(std::size_t i);

  /// Attaches slot i (which must currently be isolated) to every slot in
  /// `neighbors` — the caller supplies the probed conflict set.
  void add_su(std::size_t i, const std::vector<std::size_t>& neighbors);

  /// remove_su followed by add_su: slot i moved to a new location.
  void move_su(std::size_t i, const std::vector<std::size_t>& neighbors);

  /// N(i): neighbours of user i as a bitset over users.
  const CellSet& neighbors(std::size_t i) const;

  std::size_t edge_count() const noexcept;

  bool operator==(const ConflictGraph&) const = default;

 private:
  std::size_t num_users_;
  std::vector<CellSet> adjacency_;
};

}  // namespace lppa::auction
