#include "core/shard_conflict.h"

#include <algorithm>

#include "common/error.h"
#include "common/thread_pool.h"
#include "obs/span.h"
#include "prefix/digest_index.h"

namespace lppa::core {

auction::ConflictGraph build_conflict_graph_sharded(
    const std::vector<LocationSubmission>& submissions,
    const shard::ShardAssignment& assignment, std::size_t num_threads,
    obs::MetricsRegistry* metrics, ShardConflictStats* stats) {
  const std::size_t n = submissions.size();
  const std::size_t shards = assignment.num_shards;
  LPPA_REQUIRE(assignment.shard_of.size() == n,
               "shard assignment must cover every submission");
  auction::ConflictGraph g(n);
  ShardConflictStats local_stats;
  local_stats.boundary_sus = assignment.boundary_sus;
  if (n >= 2) {
    // Per-shard inverted x-range indexes, pre-sized to their exact
    // occupancy (members + halo) so the build never pays rehash churn.
    std::vector<prefix::DigestIndex> index(shards);
    std::vector<std::size_t> halo_digests(shards, 0);
    parallel_for(shards, num_threads, [&](std::size_t s) {
      obs::Span build_span(metrics, "shard.index_build");
      std::size_t expected = 0;
      for (const std::uint32_t j : assignment.members[s]) {
        expected += submissions[j].x_range.size();
      }
      for (const std::uint32_t j : assignment.halo[s]) {
        expected += submissions[j].x_range.size();
      }
      index[s].reserve(expected);
      for (const std::uint32_t j : assignment.members[s]) {
        index[s].insert_all(submissions[j].x_range, j);
      }
      // The halo exchange: ship ONLY the boundary SUs' index entries —
      // the per-tile working set stays bounded by the tile population
      // plus a 2λ-wide border strip, never the global index.
      for (const std::uint32_t j : assignment.halo[s]) {
        index[s].insert_all(submissions[j].x_range, j);
        halo_digests[s] += submissions[j].x_range.size();
      }
    });

    // Probe phase: each SU probes its HOME shard's index only.  Same
    // orientation as the global build (family of the probing SU against
    // indexed ranges, keep candidates j > i, then y-confirm), and
    // hits[i] is written solely by the task owning i's shard — so the
    // edge set is schedule- and shard-count-independent.
    std::vector<std::vector<std::uint32_t>> hits(n);
    parallel_for(shards, num_threads, [&](std::size_t s) {
      obs::Span probe_span(metrics, "shard.probe");
      std::vector<std::uint32_t> candidates;
      for (const std::uint32_t i : assignment.members[s]) {
        candidates.clear();
        for (const auto& d : submissions[i].x_family.digests()) {
          index[s].collect(d, candidates);
        }
        std::sort(candidates.begin(), candidates.end());
        candidates.erase(std::unique(candidates.begin(), candidates.end()),
                         candidates.end());
        for (const std::uint32_t j : candidates) {
          if (j <= i) continue;
          if (submissions[i].y_family.intersects(submissions[j].y_range)) {
            hits[i].push_back(j);
          }
        }
      }
    });

    for (std::size_t i = 0; i < n; ++i) {
      for (const std::uint32_t j : hits[i]) {
        g.add_conflict(i, j);
        if (assignment.shard_of[i] != assignment.shard_of[j]) {
          ++local_stats.halo_edges;
        } else {
          ++local_stats.local_edges;
        }
      }
    }
    for (std::size_t s = 0; s < shards; ++s) {
      local_stats.halo_entries += halo_digests[s];
      local_stats.peak_index_bytes =
          std::max(local_stats.peak_index_bytes, index[s].memory_bytes());
    }
  }

  if (metrics != nullptr) {
    metrics->gauge("shard.count").set(static_cast<double>(shards));
    metrics->counter("shard.boundary_sus").inc(local_stats.boundary_sus);
    metrics->counter("shard.halo_index_entries").inc(local_stats.halo_entries);
    metrics->counter("shard.halo_edges").inc(local_stats.halo_edges);
    metrics->counter("shard.local_edges").inc(local_stats.local_edges);
    metrics->gauge("shard.peak_index_bytes")
        .set(static_cast<double>(local_stats.peak_index_bytes));
  }
  if (stats != nullptr) *stats = local_stats;
  return g;
}

}  // namespace lppa::core
