#include "core/churn_state.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/span.h"

namespace lppa::core {

ChurnState::ChurnState(const LppaConfig& config,
                       std::vector<auction::SuLocation> locations,
                       std::vector<LocationSubmission> loc_subs,
                       std::vector<BidSubmission> bid_subs,
                       std::vector<bool> live)
    : config_(config),
      channels_(config.num_channels),
      plan_(shard::ShardPlan::make(config.coord_width, config.lambda,
                                   config.num_shards)),
      locations_(std::move(locations)),
      loc_subs_(std::move(loc_subs)),
      bid_subs_(std::move(bid_subs)),
      live_(std::move(live)),
      graph_(locations_.size()) {
  const std::size_t n = locations_.size();
  LPPA_REQUIRE(n >= 1, "churn roster requires at least one slot");
  LPPA_REQUIRE(loc_subs_.size() == n && bid_subs_.size() == n &&
                   live_.size() == n,
               "roster vectors must have equal size");
  for (std::size_t u = 0; u < n; ++u) {
    if (live_[u]) ++live_count_;
    LPPA_REQUIRE(live_[u] || loc_subs_[u] == LocationSubmission{},
                 "dead slots must hold an empty location submission");
  }

  assignment_ = plan_.assign_live(locations_, live_);
  graph_ = build_conflict_graph_sharded(loc_subs_, assignment_,
                                        config_.num_threads, config_.metrics);

  // Seed the live per-tile indexes from the assignment — the range index
  // holds exactly what the sharded build indexed (members + halo), the
  // family index only the members' probe sets.
  const std::size_t tiles = plan_.num_shards();
  range_index_.resize(tiles);
  family_index_.resize(tiles);
  for (std::size_t s = 0; s < tiles; ++s) {
    std::size_t expected_range = 0;
    std::size_t expected_family = 0;
    for (const std::uint32_t j : assignment_.members[s]) {
      expected_range += loc_subs_[j].x_range.size();
      expected_family += loc_subs_[j].x_family.size();
    }
    for (const std::uint32_t j : assignment_.halo[s]) {
      expected_range += loc_subs_[j].x_range.size();
    }
    range_index_[s].reserve(expected_range);
    family_index_[s].reserve(expected_family);
    for (const std::uint32_t j : assignment_.members[s]) {
      range_index_[s].insert_all(loc_subs_[j].x_range, j);
      family_index_[s].insert_all(loc_subs_[j].x_family, j);
    }
    for (const std::uint32_t j : assignment_.halo[s]) {
      range_index_[s].insert_all(loc_subs_[j].x_range, j);
    }
  }

  // The table's slot→shard partition is frozen at construction: the
  // global image and every argmax answer are partition-independent, so
  // an SU that later moves across tiles keeps its table shard.
  table_shard_of_ = assignment_.shard_of;
  table_.emplace(bid_subs_, channels_, table_shard_of_, plan_.num_shards(),
                 config_.argmax_strategy, config_.num_threads,
                 config_.metrics);
  for (std::size_t u = 0; u < n; ++u) {
    if (!live_[u]) table_->remove_user(u);
  }
}

void ChurnState::link_su(std::size_t u) {
  const auction::SuLocation& loc = locations_[u];
  const LocationSubmission& sub = loc_subs_[u];
  const std::uint32_t home = plan_.tile_of(loc);
  const auto halo_tiles = plan_.halo_tiles_of(loc);

  // Upper partners (u, j) with j > u: in a rebuild, u itself probes its
  // home index — x-test u.x_family ∩ j.x_range, y-test
  // u.y_family ∩ j.y_range.  The home range index holds exactly the
  // members' + halo's x-range digests, so probing it reproduces those
  // tests digest for digest.
  std::vector<std::uint32_t> candidates;
  for (const auto& d : sub.x_family.digests()) {
    range_index_[home].collect(d, candidates);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  std::vector<std::size_t> neighbors;
  for (const std::uint32_t j : candidates) {
    if (j <= u) continue;
    if (sub.y_family.intersects(loc_subs_[j].y_range)) {
      neighbors.push_back(j);
    }
  }

  // Lower partners (i, u) with i < u: in a rebuild, i probes ITS home
  // index, which holds u's x-range iff u is a member or halo entry of
  // i's tile — i.e. iff i's tile is u's home or one of u's halo tiles.
  // Probing u.x_range against those tiles' family indexes finds exactly
  // the i with i.x_family ∩ u.x_range non-empty; y-confirmation keeps
  // the rebuild's orientation (i.y_family ∩ u.y_range).
  std::vector<std::uint32_t> lower;
  for (const auto& d : sub.x_range.digests()) {
    family_index_[home].collect(d, lower);
    for (const std::uint32_t t : halo_tiles) {
      family_index_[t].collect(d, lower);
    }
  }
  std::sort(lower.begin(), lower.end());
  lower.erase(std::unique(lower.begin(), lower.end()), lower.end());
  for (const std::uint32_t i : lower) {
    if (i >= u) continue;
    if (loc_subs_[i].y_family.intersects(sub.y_range)) {
      neighbors.push_back(i);
    }
  }

  graph_.add_su(u, neighbors);

  // Only now publish u's own digests (probe-before-insert: u never
  // discovers itself, and the j > u candidates above cannot include u).
  const std::uint32_t uid = static_cast<std::uint32_t>(u);
  range_index_[home].insert_all(sub.x_range, uid);
  for (const std::uint32_t t : halo_tiles) {
    range_index_[t].insert_all(sub.x_range, uid);
  }
  family_index_[home].insert_all(sub.x_family, uid);

  if (config_.metrics != nullptr) {
    config_.metrics->counter("churn.edges_added").inc(neighbors.size());
    config_.metrics->counter("churn.digests_inserted")
        .inc(sub.x_range.size() * (1 + halo_tiles.size()) +
             sub.x_family.size());
  }
}

void ChurnState::unlink_su(std::size_t u) {
  if (config_.metrics != nullptr) {
    config_.metrics->counter("churn.edges_removed")
        .inc(graph_.neighbors(u).count());
  }
  graph_.remove_su(u);

  const auction::SuLocation& loc = locations_[u];
  const LocationSubmission& sub = loc_subs_[u];
  const std::uint32_t home = plan_.tile_of(loc);
  const std::uint32_t uid = static_cast<std::uint32_t>(u);
  std::size_t erased = range_index_[home].erase_all(sub.x_range, uid);
  for (const std::uint32_t t : plan_.halo_tiles_of(loc)) {
    erased += range_index_[t].erase_all(sub.x_range, uid);
  }
  erased += family_index_[home].erase_all(sub.x_family, uid);
  if (config_.metrics != nullptr) {
    config_.metrics->counter("churn.digests_erased").inc(erased);
  }
}

void ChurnState::add_su(std::size_t u, const auction::SuLocation& loc,
                        LocationSubmission loc_sub, BidSubmission bid_sub) {
  LPPA_REQUIRE(u < capacity(), "churn slot out of range");
  LPPA_REQUIRE(!live_[u], "add_su requires a dead slot");
  LPPA_REQUIRE(bid_sub.channels.size() == channels_,
               "arriving bid must cover every channel");
  obs::Span span(config_.metrics, "churn.add_su");
  if (config_.metrics != nullptr) {
    config_.metrics->counter("churn.arrivals").inc();
  }

  live_[u] = true;
  ++live_count_;
  locations_[u] = loc;
  loc_subs_[u] = std::move(loc_sub);
  plan_.reassign(assignment_, static_cast<std::uint32_t>(u), std::nullopt,
                 loc);
  link_su(u);
  bid_subs_[u] = std::move(bid_sub);
  table_->insert_user(u);
}

void ChurnState::remove_su(std::size_t u) {
  LPPA_REQUIRE(u < capacity(), "churn slot out of range");
  LPPA_REQUIRE(live_[u], "remove_su requires a live slot");
  obs::Span span(config_.metrics, "churn.remove_su");
  if (config_.metrics != nullptr) {
    config_.metrics->counter("churn.departures").inc();
  }

  unlink_su(u);
  plan_.reassign(assignment_, static_cast<std::uint32_t>(u), locations_[u],
                 std::nullopt);
  table_->remove_user(u);
  // The slot reverts to the dead-roster convention: empty location
  // submission (no digests), origin location, stale-but-shape-valid bid
  // submission left in place for the table.
  locations_[u] = auction::SuLocation{};
  loc_subs_[u] = LocationSubmission{};
  live_[u] = false;
  --live_count_;
}

void ChurnState::move_su(std::size_t u, const auction::SuLocation& loc,
                         LocationSubmission loc_sub) {
  LPPA_REQUIRE(u < capacity(), "churn slot out of range");
  LPPA_REQUIRE(live_[u], "move_su requires a live slot");
  obs::Span span(config_.metrics, "churn.move_su");
  if (config_.metrics != nullptr) {
    config_.metrics->counter("churn.moves").inc();
  }

  unlink_su(u);
  plan_.reassign(assignment_, static_cast<std::uint32_t>(u), locations_[u],
                 loc);
  locations_[u] = loc;
  loc_subs_[u] = std::move(loc_sub);
  link_su(u);
}

void ChurnState::rebid_su(std::size_t u, BidSubmission bid_sub) {
  LPPA_REQUIRE(u < capacity(), "churn slot out of range");
  LPPA_REQUIRE(live_[u], "rebid_su requires a live slot");
  LPPA_REQUIRE(bid_sub.channels.size() == channels_,
               "re-bid must cover every channel");
  obs::Span span(config_.metrics, "churn.rebid_su");
  if (config_.metrics != nullptr) {
    config_.metrics->counter("churn.rebids").inc();
  }

  table_->remove_user(u);
  bid_subs_[u] = std::move(bid_sub);
  table_->insert_user(u);
}

auction::ConflictGraph ChurnState::rebuild_conflicts() const {
  const shard::ShardAssignment fresh = plan_.assign_live(locations_, live_);
  return build_conflict_graph_sharded(loc_subs_, fresh, config_.num_threads,
                                      nullptr);
}

shard::ShardAssignment ChurnState::rebuild_assignment() const {
  return plan_.assign_live(locations_, live_);
}

ShardedBidTable ChurnState::rebuild_table() const {
  ShardedBidTable fresh(bid_subs_, channels_, table_shard_of_,
                        plan_.num_shards(), config_.argmax_strategy,
                        config_.num_threads, nullptr);
  for (std::size_t u = 0; u < capacity(); ++u) {
    if (!live_[u]) fresh.remove_user(u);
  }
  return fresh;
}

}  // namespace lppa::core
