#include "core/ppbs_bid.h"

#include <cmath>
#include <mutex>
#include <numeric>

#include "common/math_util.h"
#include "prefix/prefix.h"

namespace lppa::core {

// ---------------------------------------------------------------- policy

ZeroDisguisePolicy::ZeroDisguisePolicy(std::vector<double> probs)
    : probs_(std::move(probs)) {
  LPPA_REQUIRE(probs_.size() >= 2, "policy needs probabilities for 0..bmax");
  double total = 0.0;
  for (double p : probs_) {
    LPPA_REQUIRE(p >= 0.0 && p <= 1.0, "probabilities must be in [0,1]");
    total += p;
  }
  LPPA_REQUIRE(std::abs(total - 1.0) < 1e-9,
               "zero-disguise probabilities must sum to 1");
}

ZeroDisguisePolicy ZeroDisguisePolicy::none(Money bmax) {
  std::vector<double> probs(static_cast<std::size_t>(bmax) + 1, 0.0);
  probs[0] = 1.0;
  return ZeroDisguisePolicy(std::move(probs));
}

ZeroDisguisePolicy ZeroDisguisePolicy::uniform(Money bmax,
                                               double replace_prob) {
  LPPA_REQUIRE(replace_prob >= 0.0 && replace_prob <= 1.0,
               "replace_prob must be in [0,1]");
  LPPA_REQUIRE(bmax >= 1, "bmax must be at least 1");
  std::vector<double> probs(static_cast<std::size_t>(bmax) + 1,
                            replace_prob / static_cast<double>(bmax));
  probs[0] = 1.0 - replace_prob;
  return ZeroDisguisePolicy(std::move(probs));
}

ZeroDisguisePolicy ZeroDisguisePolicy::linear(Money bmax, double replace_prob) {
  LPPA_REQUIRE(replace_prob >= 0.0 && replace_prob <= 1.0,
               "replace_prob must be in [0,1]");
  LPPA_REQUIRE(bmax >= 1, "bmax must be at least 1");
  std::vector<double> probs(static_cast<std::size_t>(bmax) + 1, 0.0);
  double weight_sum = 0.0;
  for (Money t = 1; t <= bmax; ++t) {
    weight_sum += static_cast<double>(bmax + 1 - t);
  }
  for (Money t = 1; t <= bmax; ++t) {
    probs[static_cast<std::size_t>(t)] =
        replace_prob * static_cast<double>(bmax + 1 - t) / weight_sum;
  }
  probs[0] = 1.0 - replace_prob;
  return ZeroDisguisePolicy(std::move(probs));
}

ZeroDisguisePolicy ZeroDisguisePolicy::best_protection(Money bmax) {
  std::vector<double> probs(static_cast<std::size_t>(bmax) + 1,
                            1.0 / static_cast<double>(bmax + 1));
  return ZeroDisguisePolicy(std::move(probs));
}

ZeroDisguisePolicy ZeroDisguisePolicy::from_probs(std::vector<double> probs) {
  return ZeroDisguisePolicy(std::move(probs));
}

Money ZeroDisguisePolicy::sample(Rng& rng) const {
  return static_cast<Money>(rng.discrete(probs_));
}

// ---------------------------------------------------------------- params

int BidEncodingParams::scaled_width() const {
  return bit_width_for_value(scaled_max());
}

void BidEncodingParams::validate() const {
  LPPA_REQUIRE(bmax >= 1, "bmax must be at least 1");
  LPPA_REQUIRE(cr >= 1, "cr must be at least 1");
  LPPA_REQUIRE(scaled_width() <= prefix::kMaxWidth,
               "scaled bid encoding exceeds the supported prefix width");
}

PpbsBidConfig PpbsBidConfig::basic(Money bmax) {
  PpbsBidConfig cfg;
  cfg.enc = BidEncodingParams{bmax, /*rd=*/0, /*cr=*/1};
  cfg.policy = ZeroDisguisePolicy::none(bmax);
  cfg.per_channel_keys = false;
  cfg.pad_range_sets = false;
  return cfg;
}

PpbsBidConfig PpbsBidConfig::advanced(Money bmax, Money rd, std::uint64_t cr,
                                      ZeroDisguisePolicy policy) {
  LPPA_REQUIRE(policy.bmax() == bmax, "policy bmax must match enc bmax");
  PpbsBidConfig cfg;
  cfg.enc = BidEncodingParams{bmax, rd, cr};
  cfg.policy = std::move(policy);
  cfg.per_channel_keys = true;
  cfg.pad_range_sets = true;
  return cfg;
}

// --------------------------------------------------------------- payload

Bytes SealedBidPayload::serialize() const {
  ByteWriter w;
  w.u64(true_bid);
  w.u64(scaled);
  return w.take();
}

SealedBidPayload SealedBidPayload::deserialize(
    std::span<const std::uint8_t> wire) {
  ByteReader r(wire);
  SealedBidPayload p;
  p.true_bid = r.u64();
  p.scaled = r.u64();
  LPPA_PROTOCOL_CHECK(r.at_end(), "trailing bytes after SealedBidPayload");
  return p;
}

// ------------------------------------------------------------ submissions

void ChannelBidSubmission::serialize(ByteWriter& w) const {
  value_family.serialize(w);
  range_set.serialize(w);
  const Bytes sealed_wire = sealed.serialize();
  w.bytes(sealed_wire);
  // Implied backend tag: a Paillier cell has no prefix digests, so the
  // empty value family doubles as the "ciphertext follows" marker.  HMAC
  // cells (family size >= 2) serialize exactly the pre-backend bytes.
  if (value_family.size() == 0) w.u64(paillier_ct);
}

ChannelBidSubmission ChannelBidSubmission::deserialize(ByteReader& r) {
  ChannelBidSubmission out;
  out.value_family = prefix::HashedPrefixSet::deserialize(r);
  out.range_set = prefix::HashedPrefixSet::deserialize(r);
  const Bytes sealed_wire = r.bytes();
  out.sealed = crypto::SealedMessage::deserialize(sealed_wire);
  if (out.value_family.size() == 0) out.paillier_ct = r.u64();
  return out;
}

Bytes BidSubmission::serialize() const {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(channels.size()));
  for (const auto& c : channels) c.serialize(w);
  return w.take();
}

BidSubmission BidSubmission::deserialize(std::span<const std::uint8_t> wire) {
  ByteReader r(wire);
  const std::uint32_t n = r.u32();
  BidSubmission out;
  out.channels.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    out.channels.push_back(ChannelBidSubmission::deserialize(r));
  }
  LPPA_PROTOCOL_CHECK(r.at_end(), "trailing bytes after BidSubmission");
  return out;
}

// -------------------------------------------------------------- submitter

crypto::SecretKey derive_channel_key(const crypto::SecretKey& gb_master,
                                     ChannelId r, bool per_channel_keys) {
  return per_channel_keys ? gb_master.derive("gb", r) : gb_master;
}

/// Grow-only memo of per-channel HmacKeyCtx values.  Readers take a
/// snapshot shared_ptr under the mutex (one lock per submit call, not per
/// digest); growth copies the old vector so existing snapshots stay valid.
struct BidSubmitter::KeyCtxCache {
  std::mutex mutex;
  std::shared_ptr<const std::vector<crypto::HmacKeyCtx>> ctxs =
      std::make_shared<const std::vector<crypto::HmacKeyCtx>>();
};

BidSubmitter::BidSubmitter(PpbsBidConfig config, crypto::SecretKey gb_master,
                           crypto::SecretKey gc,
                           std::optional<crypto::PaillierPublicKey> paillier)
    : config_(std::move(config)),
      gb_master_(gb_master),
      box_(gc, config_.sealed_cipher),
      key_ctxs_(std::make_shared<KeyCtxCache>()) {
  config_.enc.validate();
  LPPA_REQUIRE(config_.policy.bmax() == config_.enc.bmax,
               "disguise policy must cover exactly 0..bmax");
  if (config_.backend == crypto::BidBackendId::kPaillier) {
    LPPA_REQUIRE(paillier.has_value(),
                 "Paillier backend needs the TTP-published public key");
    // SU-side: encode-only, no comparison oracle.
    backend_ = std::make_shared<crypto::PaillierBackend>(*paillier, nullptr);
  } else {
    // Non-owning alias of the singleton.
    backend_ = std::shared_ptr<const crypto::BidBackend>(
        std::shared_ptr<void>(), &crypto::hmac_backend());
  }
}

crypto::SecretKey BidSubmitter::channel_key(ChannelId r) const {
  return derive_channel_key(gb_master_, r, config_.per_channel_keys);
}

std::shared_ptr<const std::vector<crypto::HmacKeyCtx>>
BidSubmitter::channel_ctxs(std::size_t k) const {
  // Without per-channel keys every channel shares gb_master, so one
  // context suffices regardless of k.
  const std::size_t need = config_.per_channel_keys ? k : std::min<std::size_t>(k, 1);
  std::lock_guard<std::mutex> lock(key_ctxs_->mutex);
  if (key_ctxs_->ctxs->size() < need) {
    auto grown = std::make_shared<std::vector<crypto::HmacKeyCtx>>(
        *key_ctxs_->ctxs);
    grown->reserve(need);
    for (std::size_t r = grown->size(); r < need; ++r) {
      grown->emplace_back(channel_key(r));
    }
    key_ctxs_->ctxs = std::move(grown);
  }
  return key_ctxs_->ctxs;
}

ChannelBidSubmission BidSubmitter::encode_bid(ChannelId r, Money true_bid,
                                              Rng& rng) const {
  const auto ctxs = channel_ctxs(r + 1);
  return encode_bid_with((*ctxs)[config_.per_channel_keys ? r : 0], true_bid,
                         rng);
}

ChannelBidSubmission BidSubmitter::encode_bid_with(
    const crypto::HmacKeyCtx& key_ctx, Money true_bid, Rng& rng) const {
  const auto& enc = config_.enc;
  LPPA_REQUIRE(true_bid <= enc.bmax, "bid exceeds bmax");

  // Step (ii)+(iii): effective value with offset rd; zeros either disguise
  // as t + rd or spread uniformly over [0, rd].
  Money effective;
  if (true_bid > 0) {
    effective = true_bid + enc.rd;
  } else {
    const Money disguise = config_.policy.sample(rng);
    effective = (disguise > 0)
                    ? disguise + enc.rd
                    : static_cast<Money>(rng.uniform_int(
                          0, static_cast<std::int64_t>(enc.rd)));
  }

  // Step (iv): scale by cr into a random slot of [cr*e, cr*(e+1)-1].
  const std::uint64_t scaled = enc.cr * effective + rng.below(enc.cr);

  // The masked representation itself is the backend's business; the
  // disguise/offset/scale pipeline above and the sealed payload below
  // are backend-agnostic.
  ChannelBidSubmission out;
  const crypto::BidEncodeCtx ctx{&key_ctx, enc.scaled_max(),
                                 enc.scaled_width(), config_.pad_range_sets};
  backend_->encode_cell(out, ctx, scaled, rng);

  const SealedBidPayload payload{true_bid, scaled};
  const Bytes plain = payload.serialize();
  out.sealed = box_.seal(std::span<const std::uint8_t>(plain), rng);
  return out;
}

BidSubmission BidSubmitter::submit(const BidVector& bids, Rng& rng) const {
  // One cache lookup for the whole vector; the snapshot keeps every
  // channel context alive for the duration of the encode loop.
  const auto ctxs = channel_ctxs(bids.size());
  BidSubmission out;
  out.channels.reserve(bids.size());
  for (ChannelId r = 0; r < bids.size(); ++r) {
    out.channels.push_back(encode_bid_with(
        (*ctxs)[config_.per_channel_keys ? r : 0], bids[r], rng));
  }
  return out;
}

bool encrypted_ge(const ChannelBidSubmission& a,
                  const ChannelBidSubmission& b) noexcept {
  // a >= b  iff  s_a ∈ [s_b, smax]  iff  G(s_a) ∩ Q([s_b, smax]) != ∅.
  return a.value_family.intersects(b.range_set);
}

}  // namespace lppa::core
