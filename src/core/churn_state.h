// ChurnState: incrementally maintained auctioneer round state under SU
// churn and mobility (arrivals, departures, moves, re-bids).
//
// The from-scratch pipeline rebuilds the shard assignment, the conflict
// graph, and the encrypted bid table from all n submissions every round
// — O(n·w) digest work even when only Δ ≪ n users changed.  ChurnState
// keeps all three structures live across rounds and applies per-SU delta
// updates in O(Δ·w) expected:
//
//   * the roster is a fixed slot universe of `capacity` SUs.  A dead
//     slot holds an empty LocationSubmission (no digests — it can never
//     intersect anything) and a stale but shape-valid BidSubmission
//     (fully tombstoned in the table), so every maintained structure is
//     comparable by == / byte equality to a from-scratch rebuild over
//     the same roster;
//   * per tile, TWO live prefix::DigestIndex instances persist: the
//     range index (x-range digests of members + halo, exactly what the
//     sharded build indexes) and a family index (x-family digests of
//     members only).  An arriving SU u probes its x-family against its
//     home tile's range index to find conflicts (u, j) with j > u, and
//     probes its x-range against the family indexes of every tile its
//     interference box touches to find conflicts (i, u) with i < u —
//     together these test exactly the digest multisets the rebuild
//     tests for every pair involving u, so the maintained graph is
//     IDENTICAL to the rebuilt one (not merely equal w.h.p.);
//   * the conflict graph applies add_su/remove_su/move_su deltas, the
//     shard assignment applies ShardPlan::reassign, and the bid table
//     re-activates tombstoned slots in place via
//     ShardedBidTable::insert_user — its column orders stay the exact
//     (value-descending, id-ascending) canonical order a fresh sort
//     produces, because entries only ever leave or enter at their
//     canonical position and no in-place value mutation occurs.
//
// Allocation consumes a table, so a churn round clones the pristine
// maintained table (ShardedBidTable::clone) and allocates on the copy.
// The rebuild_* oracles recompute each structure from scratch over the
// current roster; bench/abl_churn asserts bit-equality every round for
// thousands of rounds.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/lppa_auction.h"
#include "core/shard_conflict.h"
#include "core/sharded_bid_table.h"
#include "prefix/digest_index.h"
#include "shard/shard_plan.h"

namespace lppa::core {

class ChurnState {
 public:
  /// Builds the maintained state over an initial roster.  All four
  /// vectors must have the same size (the roster capacity, >= 1); slots
  /// with live[u] == false must carry an empty (default-constructed)
  /// LocationSubmission and a shape-valid placeholder BidSubmission
  /// covering every channel (e.g. a masked all-zero bid) — the table
  /// needs the shape, but the values are never consulted while dead.
  /// The slot→shard partition of the bid table is frozen here (answers
  /// and images are partition-independent; see core/sharded_bid_table.h).
  ChurnState(const LppaConfig& config,
             std::vector<auction::SuLocation> locations,
             std::vector<LocationSubmission> loc_subs,
             std::vector<BidSubmission> bid_subs, std::vector<bool> live);

  /// An SU arrives into dead slot u with a fresh masked submission pair.
  void add_su(std::size_t u, const auction::SuLocation& loc,
              LocationSubmission loc_sub, BidSubmission bid_sub);

  /// Live SU u departs: its edges, digests, shard membership, and table
  /// row are retired; the slot becomes dead (and reusable).
  void remove_su(std::size_t u);

  /// Live SU u moves: location/graph/indexes/assignment update; its bid
  /// row is untouched (a move without a re-bid keeps the old bids).
  void move_su(std::size_t u, const auction::SuLocation& loc,
               LocationSubmission loc_sub);

  /// Live SU u replaces its bid submission (fresh masks each round, as
  /// repeated participation requires).
  void rebid_su(std::size_t u, BidSubmission bid_sub);

  // --- Maintained state (the auctioneer's round inputs) ------------------
  std::size_t capacity() const noexcept { return locations_.size(); }
  std::size_t live_count() const noexcept { return live_count_; }
  const std::vector<bool>& live() const noexcept { return live_; }
  const std::vector<auction::SuLocation>& plain_locations() const noexcept {
    return locations_;
  }
  const std::vector<LocationSubmission>& locations() const noexcept {
    return loc_subs_;
  }
  const std::vector<BidSubmission>& bids() const noexcept { return bid_subs_; }
  const auction::ConflictGraph& graph() const noexcept { return graph_; }
  const shard::ShardAssignment& assignment() const noexcept {
    return assignment_;
  }
  const ShardedBidTable& table() const noexcept { return *table_; }

  /// Deep copy of the pristine maintained table for one allocation pass.
  ShardedBidTable table_for_allocation() const { return table_->clone(); }

  /// Global table image (EncryptedBidTable wire format) — the byte-level
  /// equality target against rebuild_table().serialize().
  Bytes serialize_table() const { return table_->serialize(); }

  // --- From-scratch oracles (differential / soak checks) -----------------
  /// Rebuilds the conflict graph from scratch over the current roster
  /// with the same sharded builder the full pipeline uses.
  auction::ConflictGraph rebuild_conflicts() const;

  /// Recomputes the shard assignment from scratch.
  shard::ShardAssignment rebuild_assignment() const;

  /// Rebuilds the bid table from scratch over the current submissions
  /// (same frozen partition as the maintained table, then re-applies the
  /// dead-slot tombstones).
  ShardedBidTable rebuild_table() const;

 private:
  /// Probes u's fresh submission against the live indexes, attaches its
  /// edges, and inserts its digests (probe strictly before insert, so u
  /// never discovers itself).
  void link_su(std::size_t u);

  /// Detaches u's edges and erases its digests from every index that
  /// holds them (computed from its current location).
  void unlink_su(std::size_t u);

  LppaConfig config_;
  std::size_t channels_ = 0;
  shard::ShardPlan plan_;
  shard::ShardAssignment assignment_;
  std::vector<auction::SuLocation> locations_;
  std::vector<LocationSubmission> loc_subs_;
  std::vector<BidSubmission> bid_subs_;
  std::vector<bool> live_;
  std::size_t live_count_ = 0;
  auction::ConflictGraph graph_;
  /// Per tile: x-range digests of members + halo (what arrivals probe
  /// their family against, and what ships in the halo exchange).
  std::vector<prefix::DigestIndex> range_index_;
  /// Per tile: x-family digests of members only (what arrivals probe
  /// their range against, discovering lower-id partners).
  std::vector<prefix::DigestIndex> family_index_;
  /// Frozen slot→shard partition for the maintained table (reassignment
  /// moves an SU's conflict-graph tile, never its table shard — answers
  /// are partition-independent).
  std::vector<std::uint32_t> table_shard_of_;
  std::optional<ShardedBidTable> table_;
};

}  // namespace lppa::core
