#include "core/bcm.h"

#include "common/error.h"

namespace lppa::core {

CellSet BcmAttack::run(const auction::BidVector& bids) const {
  LPPA_REQUIRE(bids.size() <= dataset_->channel_count(),
               "bid vector longer than the dataset's channel list");
  std::vector<std::size_t> channels;
  for (std::size_t r = 0; r < bids.size(); ++r) {
    if (bids[r] > 0) channels.push_back(r);
  }
  return run_with_channels(channels);
}

CellSet BcmAttack::run_with_channels(
    const std::vector<std::size_t>& channels) const {
  CellSet possible = CellSet::full(dataset_->grid().cell_count());
  for (std::size_t r : channels) {
    possible &= dataset_->availability(r);
  }
  return possible;
}

CellSet BcmAttack::run_consistent(
    const std::vector<std::size_t>& ordered_channels) const {
  CellSet possible = CellSet::full(dataset_->grid().cell_count());
  for (std::size_t r : ordered_channels) {
    CellSet narrowed = possible & dataset_->availability(r);
    if (!narrowed.empty()) possible = std::move(narrowed);
  }
  return possible;
}

}  // namespace lppa::core
