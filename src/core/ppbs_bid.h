// PPBS — Private Bid Submission protocols (paper §IV-B, §IV-C).
//
// Basic scheme: per channel r the SU submits H_gb(G(b_r)) and
// H_gb(Q([b_r, bmax])); the auctioneer finds the column maximum through
// set intersections (an order-preserving masked encoding).
//
// Advanced scheme (the one LPPA actually runs) adds five fixes:
//   (i)  per-channel keys gb_1..gb_k  — kills cross-channel comparison,
//   (ii) zero-disguise with probabilities p_t — a zero bid masquerades as
//        a positive one,
//   (iii) offset rd, true zeros uniform in [0, rd] — kills frequency
//        analysis of the zero ciphertext,
//   (iv) scale by cr with a random slot in [cr·x, cr·(x+1)-1] — kills
//        plaintext-ciphertext replay after charges are published,
//   (v)  range covers padded to the worst case 2w-2 — kills cardinality
//        analysis.
//
// Both schemes are instances of one code path parameterised by
// PpbsBidConfig; PpbsBidConfig::basic() recovers the basic scheme exactly
// (rd=0, cr=1, no disguise, shared key, no padding), which is how the
// ablation bench isolates each fix.
#pragma once

#include <memory>
#include <vector>

#include "auction/bid.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "core/bid_backend.h"
#include "crypto/sealed_box.h"
#include "prefix/hashed_set.h"

namespace lppa::core {

using auction::BidVector;
using auction::ChannelId;
using auction::Money;
using auction::UserId;

/// The zero-replacement distribution p_0..p_bmax (paper §IV-C.2/3):
/// a zero bid stays recognisably zero with probability p_0 and is
/// disguised as value t >= 1 with probability p_t, p_1 >= ... >= p_bmax.
class ZeroDisguisePolicy {
 public:
  /// No disguise (p_0 = 1) — the basic scheme.
  static ZeroDisguisePolicy none(Money bmax);

  /// Replace with total probability `replace_prob` (= 1 - p_0), spread
  /// uniformly over 1..bmax.
  static ZeroDisguisePolicy uniform(Money bmax, double replace_prob);

  /// Replace with total probability `replace_prob`, weight on t
  /// proportional to (bmax + 1 - t): larger disguise values are rarer,
  /// honouring the paper's p_1 >= ... >= p_bmax guidance with less
  /// auction-performance damage than uniform.
  static ZeroDisguisePolicy linear(Money bmax, double replace_prob);

  /// The paper's best-protection point: p_r = 1/(bmax+1) for all r.
  static ZeroDisguisePolicy best_protection(Money bmax);

  /// Arbitrary distribution; probs has bmax+1 entries summing to ~1.
  static ZeroDisguisePolicy from_probs(std::vector<double> probs);

  Money bmax() const noexcept { return static_cast<Money>(probs_.size() - 1); }
  const std::vector<double>& probs() const noexcept { return probs_; }
  double replace_prob() const noexcept { return 1.0 - probs_[0]; }

  /// Samples the disguise value for one zero bid: 0 = stay zero.
  Money sample(Rng& rng) const;

 private:
  explicit ZeroDisguisePolicy(std::vector<double> probs);
  std::vector<double> probs_;  // p_0 .. p_bmax
};

/// Numeric encoding parameters shared by SUs and TTP.
struct BidEncodingParams {
  Money bmax = 15;       ///< upper bound of true bids
  Money rd = 0;          ///< additive offset; true zeros map into [0, rd]
  std::uint64_t cr = 1;  ///< multiplicative range-mapping factor

  /// Largest effective (offset) value: bmax + rd.
  Money max_effective() const noexcept { return bmax + rd; }
  /// Largest scaled value: cr*(bmax+rd+1) - 1.
  std::uint64_t scaled_max() const noexcept {
    return cr * (max_effective() + 1) - 1;
  }
  /// Bit width w of the scaled encoding.
  int scaled_width() const;

  void validate() const;
};

/// Full protocol configuration (advanced scheme by default).
struct PpbsBidConfig {
  BidEncodingParams enc;
  ZeroDisguisePolicy policy = ZeroDisguisePolicy::none(15);
  bool per_channel_keys = true;  ///< fix (i)
  bool pad_range_sets = true;    ///< fix (v)
  /// Symmetric cipher sealing the TTP payload; the protocol treats it as
  /// a black box (cipher-agility tests pin the equivalence).
  crypto::SealedCipher sealed_cipher = crypto::SealedCipher::kChaCha20;
  /// Which crypto backend masks the per-channel cells (core/bid_backend.h).
  /// The zero-disguise / offset / scale pipeline and the sealed payload
  /// are backend-agnostic; only the masked representation and its order
  /// test swap.
  crypto::BidBackendId backend = crypto::BidBackendId::kHmacPrefix;
  /// Prime size for the TTP's Paillier keygen (kPaillier only).  The
  /// default 12-bit primes give n ≈ 2^23–2^24, comfortably past the
  /// oracle's n > 128·scaled_max exactness bound for every stock config.
  int paillier_prime_bits = 12;

  /// The paper's basic scheme: one key, raw values, no countermeasures.
  static PpbsBidConfig basic(Money bmax);

  /// The advanced scheme with all fixes enabled.
  static PpbsBidConfig advanced(Money bmax, Money rd, std::uint64_t cr,
                                ZeroDisguisePolicy policy);
};

/// The plaintext the SU seals for the TTP: the true bid v plus the scaled
/// encoding s whose prefix sets were submitted, so the TTP can verify
/// non-manipulation and invalidate disguised-zero wins (DESIGN.md §2).
struct SealedBidPayload {
  Money true_bid = 0;
  std::uint64_t scaled = 0;

  Bytes serialize() const;
  static SealedBidPayload deserialize(std::span<const std::uint8_t> wire);
  bool operator==(const SealedBidPayload&) const = default;
};

/// One SU's per-channel bid message.  Exactly one masked representation
/// is populated: the HMAC backend fills the two prefix sets, the
/// Paillier backend fills paillier_ct and leaves both sets empty.  The
/// wire format keys off that: the ciphertext is (de)serialized iff the
/// value family is empty — an honest HMAC family always has width+1 >= 2
/// digests — so HMAC bytes are bit-identical to the pre-backend format.
struct ChannelBidSubmission {
  prefix::HashedPrefixSet value_family;  ///< H_gb_r(G(s))
  prefix::HashedPrefixSet range_set;     ///< H_gb_r(Q([s, smax])), padded
  crypto::SealedMessage sealed;          ///< SealedBidPayload under gc
  std::uint64_t paillier_ct = 0;         ///< E_pub(s), Paillier backend only

  std::size_t wire_size() const noexcept {
    return value_family.wire_size() + range_set.wire_size() +
           sealed.wire_size() + (value_family.size() == 0 ? 8 : 0);
  }

  void serialize(ByteWriter& w) const;
  static ChannelBidSubmission deserialize(ByteReader& r);
  bool operator==(const ChannelBidSubmission&) const = default;
};

/// One SU's full bid vector message.
struct BidSubmission {
  std::vector<ChannelBidSubmission> channels;

  std::size_t wire_size() const noexcept {
    std::size_t total = 0;
    for (const auto& c : channels) total += c.wire_size();
    return total;
  }

  Bytes serialize() const;
  static BidSubmission deserialize(std::span<const std::uint8_t> wire);
  bool operator==(const BidSubmission&) const = default;
};

/// SU-side encoder.  Thread-safe for concurrent submit() calls: the
/// per-channel HMAC key contexts are memoised in a grow-only cache behind
/// a mutex, and everything else is immutable after construction.
class BidSubmitter {
 public:
  /// `paillier` is the TTP-published public key, required (and only
  /// consulted) when config.backend == kPaillier.
  BidSubmitter(PpbsBidConfig config, crypto::SecretKey gb_master,
               crypto::SecretKey gc,
               std::optional<crypto::PaillierPublicKey> paillier =
                   std::nullopt);

  /// Encodes a full bid vector (bids[r] <= bmax required).
  BidSubmission submit(const BidVector& bids, Rng& rng) const;

  /// Encodes one bid — exposed so tests can pin down each transformation.
  ChannelBidSubmission encode_bid(ChannelId r, Money true_bid, Rng& rng) const;

  /// The HMAC key used for channel r (gb_r when per-channel keys are on,
  /// gb_master otherwise).
  crypto::SecretKey channel_key(ChannelId r) const;

  const PpbsBidConfig& config() const noexcept { return config_; }

 private:
  /// Midstate-cached HMAC contexts for channels [0, k): derived once per
  /// submitter (not once per SU bid), then shared.  Returns a snapshot
  /// covering at least `k` channels.
  std::shared_ptr<const std::vector<crypto::HmacKeyCtx>> channel_ctxs(
      std::size_t k) const;

  ChannelBidSubmission encode_bid_with(const crypto::HmacKeyCtx& key_ctx,
                                       Money true_bid, Rng& rng) const;

  PpbsBidConfig config_;
  crypto::SecretKey gb_master_;
  crypto::SealedBox box_;
  struct KeyCtxCache;
  std::shared_ptr<KeyCtxCache> key_ctxs_;  ///< shared across copies
  /// The cell encoder (never null): the HMAC singleton, or an SU-side
  /// (encode-only) PaillierBackend owning the published public key.
  std::shared_ptr<const crypto::BidBackend> backend_;
};

/// Auctioneer-side order test within one channel column:
/// true iff bid `a` >= bid `b` in the masked order-preserving encoding.
/// HMAC-backend cells only — backend-generic code paths go through
/// crypto::BidBackend::ge instead.
bool encrypted_ge(const ChannelBidSubmission& a,
                  const ChannelBidSubmission& b) noexcept;

/// Derives gb_r from the master key the same way BidSubmitter does —
/// shared with the TTP's verification path.
crypto::SecretKey derive_channel_key(const crypto::SecretKey& gb_master,
                                     ChannelId r, bool per_channel_keys);

}  // namespace lppa::core
