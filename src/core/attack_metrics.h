// The four location-privacy metrics of the paper's §VI-A:
//
//   uncertainty    = -sum_x Pr_x * log(Pr_x)   (entropy of the attacker's
//                    posterior over the possible-cell set),
//   incorrectness  = sum_x Pr_x * ||l_x - l0|| (expected distance, metres,
//                    between guessed and true location),
//   failure        = the true cell is not in the attacker's set,
//   possible cells = |P|.
//
// Larger values of all four mean better-preserved privacy.
#pragma once

#include <vector>

#include "common/cellset.h"
#include "geo/grid.h"

namespace lppa::core {

/// An attacker's belief: candidate cells with (unnormalised, non-negative)
/// weights.  BCM produces uniform weights; BPM can weight by 1/dq rank or
/// keep uniform over the selected slice — the paper treats the output set
/// as uniform, and we follow it.
struct LocationEstimate {
  std::vector<std::size_t> cells;   ///< candidate cell indices
  std::vector<double> weights;      ///< same length; empty means uniform

  static LocationEstimate uniform_over(const CellSet& set);
  static LocationEstimate uniform_over(std::vector<std::size_t> cells);
};

struct AttackMetrics {
  double uncertainty_nats = 0.0;
  double incorrectness_m = 0.0;
  bool failed = false;
  std::size_t possible_cells = 0;
};

/// Evaluates one attack output against the true cell of the victim.
/// An empty estimate is a failed attack with zero-entropy metrics.
AttackMetrics evaluate_attack(const LocationEstimate& estimate,
                              const geo::Grid& grid, const geo::Cell& truth);

/// Mean metrics over a population of attacked users.  The success_*
/// fields average only over attacks whose candidate set contained the
/// true cell — the conditioning Fig. 5(a)-(c) uses, since a failed attack
/// (often an empty set) has no meaningful posterior.
struct AggregateMetrics {
  double mean_uncertainty_nats = 0.0;
  double mean_incorrectness_m = 0.0;
  double failure_rate = 0.0;
  double mean_possible_cells = 0.0;
  double success_uncertainty_nats = 0.0;
  double success_incorrectness_m = 0.0;
  double success_possible_cells = 0.0;
  std::size_t samples = 0;
  std::size_t successes = 0;
};

AggregateMetrics aggregate(const std::vector<AttackMetrics>& metrics);

/// Averages aggregates from repeated experiment runs (equal weight per
/// run; success-conditioned fields weighted by each run's successes).
AggregateMetrics average_aggregates(const std::vector<AggregateMetrics>& runs);

}  // namespace lppa::core
