// BidBackend: the pluggable crypto backend behind the encrypted-bid hot
// path — a vtable of encode / compare / validate hooks so the masked-bid
// scheme a round runs on is a configuration choice, not a compile-time
// fact.
//
// Two backends exist:
//   * HmacPrefixBackend (id 0) — the paper's PPBS construction: HMAC'd
//     prefix families compared by set intersection.  This is the seed
//     code path verbatim; the refactor is differential-pinned to produce
//     byte-identical wire images, snapshots, awards and charges.
//   * PaillierBackend (id 1) — the construction of the paper's [7] (Pan
//     et al., JSAC'11) on crypto/paillier.h: each cell carries one
//     Paillier ciphertext of the scaled bid, and order tests go through
//     a TTP-held PaillierCompareOracle (blinded-difference decryption).
//     Combined with ChargingRule::kSecondPrice this yields the
//     PPS-style strategyproof tier (arXiv 1307.7792).
//
// The backend only owns the per-cell masked representation and its order
// test.  Everything around it — zero disguise, offset/scale, the sealed
// TTP payload, conflict graphs, journals, sharding — is backend-agnostic
// and shared (the differential suite pins the shared invariants).
//
// Wire/snapshot compatibility: HMAC cells and images are bit-identical
// to the seed format (no tag anywhere).  Non-HMAC snapshot images are
// prefixed with a magic u32 (high bit set, see kImageMagic) carrying the
// backend id; restoring an image under a different backend fails with a
// typed kProtocol error in both directions.  docs/crypto_backends.md has
// the full contract.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/rng.h"
#include "crypto/paillier.h"

namespace lppa::core {
struct ChannelBidSubmission;
}  // namespace lppa::core

namespace lppa::crypto {

class HmacKeyCtx;

/// Stable backend identifiers: they appear in snapshot images and bench
/// JSON, so values are append-only.
enum class BidBackendId : std::uint8_t {
  kHmacPrefix = 0,
  kPaillier = 1,
};

/// Snapshot image tag for non-HMAC backends: 0xB1DBAC00 | backend id.
/// The high bit distinguishes a tag from the legacy (untagged, HMAC)
/// image whose first u32 is a user count — counts never have the high
/// bit set.
inline constexpr std::uint32_t kImageMagic = 0xB1DBAC00u;
inline constexpr std::uint32_t kImageMagicMask = 0xFFFFFF00u;

/// Everything encode_cell / validate_cell need beyond the cell itself:
/// the per-channel HMAC context (HMAC backend only) and the shared
/// scaled-encoding parameters.
struct BidEncodeCtx {
  const HmacKeyCtx* key_ctx = nullptr;  ///< HMAC backend only
  std::uint64_t scaled_max = 0;
  int width = 0;
  bool pad_range_sets = false;
};

/// The vtable.  Implementations are stateless or immutable after
/// construction and safe for concurrent use (the Paillier oracle keeps
/// its op counters in atomics).
class BidBackend {
 public:
  virtual ~BidBackend() = default;

  virtual BidBackendId id() const noexcept = 0;
  virtual const char* name() const noexcept = 0;

  /// Fills the masked representation of one cell from the scaled value.
  /// The caller (BidSubmitter) owns the zero-disguise / offset / scale
  /// steps before this hook and the sealed TTP payload after it.
  virtual void encode_cell(core::ChannelBidSubmission& cell,
                           const BidEncodeCtx& ctx, std::uint64_t scaled,
                           Rng& rng) const = 0;

  /// Order test within one channel column: true iff bid a >= bid b.
  /// Must induce a total preorder with ge(a, a) == true, so every table
  /// strategy (stable sort, tournament scan, shard merge) breaks ties to
  /// the lowest user id identically.
  virtual bool ge(const core::ChannelBidSubmission& a,
                  const core::ChannelBidSubmission& b) const = 0;

  /// Structural validation of one cell's masked representation; nullopt
  /// when well-formed.  The HMAC backend returns nullopt — its prefix
  /// family/range checks predate this interface and stay verbatim in
  /// core::SubmissionValidator so rejection text never changes.
  virtual std::optional<std::string> validate_cell(
      const core::ChannelBidSubmission& cell) const = 0;
};

/// The singleton seed backend (id 0).
const BidBackend& hmac_backend() noexcept;

/// Null-tolerant resolution: configs carry a nullable pointer whose null
/// means "the seed backend", keeping every pre-backend call site valid.
inline const BidBackend& resolve_backend(const BidBackend* backend) noexcept {
  return backend != nullptr ? *backend : hmac_backend();
}

/// The TTP-held comparison oracle of the Paillier tier: answers a >= b
/// over ciphertexts by decrypting a multiplicatively blinded difference
/// (a stand-in for the interactive comparison subprotocol of [7]; the
/// auctioneer never holds the private key in the deployment story, it
/// round-trips each test through this object).
///
/// Correctness bound: the blinding factor k is in [1, 64] and plaintexts
/// are in [0, scaled_max], so k*(a-b) stays in (-n/2, n/2) — i.e. the
/// sign test "decrypt > n/2 means negative" is exact — iff
/// n > 128 * scaled_max, which the constructor requires.
class PaillierCompareOracle {
 public:
  PaillierCompareOracle(PaillierKeyPair keys, std::uint64_t scaled_max);

  /// a >= b over ciphertexts.  Deterministic for a given ciphertext pair
  /// (the blinding factor derives from the ciphertexts), so repeated
  /// queries — e.g. a recovery replaying an allocation — agree.
  bool ge(std::uint64_t ct_a, std::uint64_t ct_b) const;

  /// Plain decryption (charging verification path).
  std::uint64_t decrypt(std::uint64_t ct) const;

  const PaillierPublicKey& pub() const noexcept { return keys_.pub; }
  std::uint64_t scaled_max() const noexcept { return scaled_max_; }

  /// Op counters for the head-to-head bench (per-oracle totals).
  std::size_t compares() const noexcept {
    return compares_.load(std::memory_order_relaxed);
  }
  std::size_t decrypts() const noexcept {
    return decrypts_.load(std::memory_order_relaxed);
  }

 private:
  PaillierKeyPair keys_;
  std::uint64_t scaled_max_ = 0;
  mutable std::atomic<std::size_t> compares_{0};
  mutable std::atomic<std::size_t> decrypts_{0};
};

/// id 1: Paillier-encrypted bids (see the file comment).  SU-side
/// instances (encode only) carry a null oracle; the auctioneer/TTP side
/// needs the oracle for ge(), which throws kState without one.
class PaillierBackend final : public BidBackend {
 public:
  PaillierBackend(PaillierPublicKey pub,
                  std::shared_ptr<const PaillierCompareOracle> oracle);

  BidBackendId id() const noexcept override { return BidBackendId::kPaillier; }
  const char* name() const noexcept override { return "paillier"; }

  void encode_cell(core::ChannelBidSubmission& cell, const BidEncodeCtx& ctx,
                   std::uint64_t scaled, Rng& rng) const override;
  bool ge(const core::ChannelBidSubmission& a,
          const core::ChannelBidSubmission& b) const override;
  std::optional<std::string> validate_cell(
      const core::ChannelBidSubmission& cell) const override;

  const PaillierPublicKey& pub() const noexcept { return pub_; }
  const PaillierCompareOracle* oracle() const noexcept {
    return oracle_.get();
  }

 private:
  PaillierPublicKey pub_;
  std::shared_ptr<const PaillierCompareOracle> oracle_;  ///< null SU-side
};

}  // namespace lppa::crypto
