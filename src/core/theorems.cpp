#include "core/theorems.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/math_util.h"

namespace lppa::core::theorems {

namespace {

/// P[replacement value < b_n] under the policy (value 0 = stayed zero).
double prob_below(Money b_n, const ZeroDisguisePolicy& policy) {
  double q = 0.0;
  for (Money r = 0; r < b_n; ++r) q += policy.probs()[static_cast<std::size_t>(r)];
  return q;
}

/// P[replacement value > b_n].
double prob_above(Money b_n, const ZeroDisguisePolicy& policy) {
  double a = 0.0;
  for (Money r = b_n + 1; r <= policy.bmax(); ++r) {
    a += policy.probs()[static_cast<std::size_t>(r)];
  }
  return a;
}

/// x^n with the 0^0 = 1 convention used throughout the formulas.
double powi(double x, std::size_t n) { return ipow(x, n); }

}  // namespace

double thm1_zero_not_win(Money b_n, std::size_t m,
                         const ZeroDisguisePolicy& policy) {
  LPPA_REQUIRE(b_n >= 1 && b_n <= policy.bmax(),
               "b_N must be a positive bid within [1, bmax]");
  if (m == 0) return 1.0;
  const double q = prob_below(b_n, policy);
  const double p = policy.probs()[static_cast<std::size_t>(b_n)];
  if (p < 1e-15) return powi(q, m);  // limit of the closed form as p -> 0
  const double num = powi(q + p, m + 1) - powi(q, m + 1);
  return num / (static_cast<double>(m + 1) * p);
}

double thm1_monte_carlo(Money b_n, std::size_t m,
                        const ZeroDisguisePolicy& policy, std::size_t trials,
                        Rng& rng) {
  LPPA_REQUIRE(trials > 0, "need at least one trial");
  std::size_t original_wins = 0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    Money max_repl = 0;
    std::size_t ties_with_bn = 0;
    for (std::size_t z = 0; z < m; ++z) {
      const Money v = policy.sample(rng);
      max_repl = std::max(max_repl, v);
      if (v == b_n) ++ties_with_bn;
    }
    if (max_repl > b_n) continue;  // a disguised zero wins outright
    if (max_repl == b_n) {
      // Uniform tie-break among the original holder and the tied zeros.
      if (rng.below(ties_with_bn + 1) == 0) ++original_wins;
    } else {
      ++original_wins;
    }
  }
  return static_cast<double>(original_wins) / static_cast<double>(trials);
}

double thm2_no_leakage(Money b_n, std::size_t m, std::size_t t,
                       const ZeroDisguisePolicy& policy) {
  LPPA_REQUIRE(b_n >= 1 && b_n <= policy.bmax(),
               "b_N must be a positive bid within [1, bmax]");
  LPPA_REQUIRE(t >= 1, "the auctioneer selects at least one price");
  if (t > m) return 0.0;  // cannot fill t slots with only m zeros

  const double above = prob_above(b_n, policy);
  const double at = policy.probs()[static_cast<std::size_t>(b_n)];
  const double below = prob_below(b_n, policy);
  const double at_or_below = below + at;

  // Condition 1: at least t zeros strictly above b_N.
  double term1 = 0.0;
  for (std::size_t k = t; k <= m; ++k) {
    term1 += binomial(m, k) * powi(above, k) * powi(at_or_below, m - k);
  }

  // Condition 2: k < t zeros above, j >= t-k zeros exactly at b_N, and the
  // original b_N holder loses every boundary draw (factor (j-1)/j per the
  // paper's derivation).
  double term2 = 0.0;
  for (std::size_t k = 0; k < t; ++k) {
    double inner = 0.0;
    for (std::size_t j = t - k; j <= m - k; ++j) {
      if (j == 0) continue;
      inner += (static_cast<double>(j) - 1.0) / static_cast<double>(j) *
               binomial(m - k, j) * powi(below, m - k - j) * powi(at, j);
    }
    term2 += binomial(m, k) * powi(above, k) * inner;
  }
  return term1 + term2;
}

double thm2_no_leakage_exact(Money b_n, std::size_t m, std::size_t t,
                             const ZeroDisguisePolicy& policy) {
  LPPA_REQUIRE(b_n >= 1 && b_n <= policy.bmax(),
               "b_N must be a positive bid within [1, bmax]");
  LPPA_REQUIRE(t >= 1, "the auctioneer selects at least one price");
  if (t > m) return 0.0;

  const double above = prob_above(b_n, policy);
  const double at = policy.probs()[static_cast<std::size_t>(b_n)];
  const double below = prob_below(b_n, policy);

  double total = 0.0;
  for (std::size_t k = 0; k <= m; ++k) {  // zeros strictly above b_N
    const double pk = binomial(m, k) * powi(above, k);
    if (pk == 0.0) continue;
    if (k >= t) {
      // Slots already filled by strictly-greater zeros: always safe.
      total += pk * powi(at + below, m - k);
      continue;
    }
    const std::size_t s = t - k;  // boundary slots to fill at value b_N
    double inner = 0.0;
    for (std::size_t j = s; j <= m - k; ++j) {  // zeros tied at b_N
      const double cfg =
          binomial(m - k, j) * powi(at, j) * powi(below, m - k - j);
      // Fill s slots uniformly from (j zeros + the original holder);
      // safe iff the original is not drawn.
      inner += cfg * static_cast<double>(j + 1 - s) /
               static_cast<double>(j + 1);
    }
    total += pk * inner;
  }
  return total;
}

double thm2_monte_carlo(Money b_n, std::size_t m, std::size_t t,
                        const ZeroDisguisePolicy& policy, std::size_t trials,
                        Rng& rng) {
  LPPA_REQUIRE(trials > 0, "need at least one trial");
  LPPA_REQUIRE(t >= 1, "the auctioneer selects at least one price");
  std::size_t no_leakage = 0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    std::size_t strictly_above = 0;
    std::size_t at_bn = 0;
    for (std::size_t z = 0; z < m; ++z) {
      const Money v = policy.sample(rng);
      if (v > b_n) ++strictly_above;
      else if (v == b_n) ++at_bn;
    }
    if (strictly_above >= t) {
      ++no_leakage;
      continue;
    }
    const std::size_t slots = t - strictly_above;
    if (at_bn < slots) continue;  // b_N itself must be selected: leakage
    // `slots` picks from the pool of (at_bn zeros + the original holder);
    // no leakage iff the original is not drawn.
    const double p_safe = static_cast<double>(at_bn + 1 - slots) /
                          static_cast<double>(at_bn + 1);
    if (rng.bernoulli(p_safe)) ++no_leakage;
  }
  return static_cast<double>(no_leakage) / static_cast<double>(trials);
}

double thm3_expected_true_bids(const std::vector<Money>& sorted_bids,
                               std::size_t m, std::size_t t, Money bmax) {
  LPPA_REQUIRE(!sorted_bids.empty(), "need at least one non-zero bid");
  LPPA_REQUIRE(std::is_sorted(sorted_bids.begin(), sorted_bids.end()),
               "bids must be sorted ascending");
  LPPA_REQUIRE(t >= 1, "the auctioneer selects at least one price");
  const std::size_t n = sorted_bids.size();
  const double p = 1.0 / (static_cast<double>(bmax) + 1.0);

  // Implemented exactly as printed in the paper (see EXPERIMENTS.md for
  // the measured divergence from the Monte-Carlo ground truth; the
  // printed combinatorics under-count boundary-tie configurations).
  double expectation = 0.0;
  const std::size_t mu_hi = std::min(t, n);
  for (std::size_t mu = 1; mu <= mu_hi; ++mu) {
    const Money b_ref = sorted_bids[n - mu];  // b_{N-mu}, 1-indexed
    if (bmax < b_ref + mu) continue;          // C(negative, .) = 0
    const double outer =
        binomial(static_cast<std::uint64_t>(bmax - b_ref - mu), t - mu);
    if (outer == 0.0) continue;
    double j_sum = 0.0;
    for (std::size_t j = (t > mu ? t - mu : 0); j <= m; ++j) {
      double i_sum = 0.0;
      for (std::size_t i = 0; i + t <= j + mu; ++i) {
        const double c1 = binomial(j, i);
        const double c2 = binomial(i + mu - 1, mu - 1);
        const double c3 = (t >= mu + 1)
                              ? ((j >= i + 1) ? binomial(j - i - 1, t - mu - 1)
                                              : 0.0)
                              : ((i == j) ? 1.0 : 0.0);  // t == mu: no
                                                          // mandatory drawers
        i_sum += c1 * c2 * c3;
      }
      j_sum += binomial(m, j) * i_sum *
               powi(1.0 + static_cast<double>(b_ref), m - j);
    }
    expectation += static_cast<double>(mu) * powi(p, m) * outer * j_sum;
  }
  return expectation;
}

double thm3_monte_carlo(const std::vector<Money>& sorted_bids, std::size_t m,
                        std::size_t t, Money bmax, std::size_t trials,
                        Rng& rng) {
  LPPA_REQUIRE(!sorted_bids.empty(), "need at least one non-zero bid");
  LPPA_REQUIRE(trials > 0, "need at least one trial");
  LPPA_REQUIRE(t >= 1, "the auctioneer selects at least one price");
  double total_mu = 0.0;
  std::vector<Money> values;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    values.clear();
    values.insert(values.end(), sorted_bids.begin(), sorted_bids.end());
    for (std::size_t z = 0; z < m; ++z) {
      values.push_back(static_cast<Money>(
          rng.uniform_int(0, static_cast<std::int64_t>(bmax))));
    }
    // The t-th largest value; everyone at or above it is selected
    // ("we select all users bidding t largest price").
    std::vector<Money> sorted_desc = values;
    std::sort(sorted_desc.begin(), sorted_desc.end(), std::greater<>());
    const std::size_t rank = std::min(t, sorted_desc.size()) - 1;
    const Money cutoff = sorted_desc[rank];
    std::size_t mu = 0;
    for (std::size_t i = 0; i < sorted_bids.size(); ++i) {
      if (values[i] >= cutoff) ++mu;
    }
    total_mu += static_cast<double>(mu);
  }
  return total_mu / static_cast<double>(trials);
}

double thm4_comm_bits(double h, std::size_t k, std::size_t n, int w) {
  LPPA_REQUIRE(h > 0.0 && w >= 1, "invalid Theorem 4 parameters");
  return h * static_cast<double>(k) * static_cast<double>(n) *
         (3.0 * w - 1.0) * (w + 1.0);
}

double hmac_length_ratio(int w) {
  LPPA_REQUIRE(w >= 1, "width must be positive");
  return 256.0 / (static_cast<double>(w) + 1.0);
}

}  // namespace lppa::core::theorems
