// BCM — Bid-Channels Mining attack (paper Algorithm 1).
//
// An SU only bids on channels that are available at its position, so each
// positive bid reveals "the SU is inside C_r".  Intersecting the
// availability regions of every positively-bid channel shrinks the
// possible-location set.
#pragma once

#include <vector>

#include "auction/bid.h"
#include "common/cellset.h"
#include "geo/coverage.h"

namespace lppa::core {

class BcmAttack {
 public:
  /// The attacker is assumed to know the full coverage dataset (it is
  /// public FCC data).
  explicit BcmAttack(const geo::Dataset& dataset) : dataset_(&dataset) {}

  /// Algorithm 1: P = A ∩ (∩_{r : b_r > 0} C_r).
  CellSet run(const auction::BidVector& bids) const;

  /// Variant taking the inferred available-channel set directly — the
  /// form used against LPPA, where the adversary only has a *guess* of
  /// which channels each user finds available.
  CellSet run_with_channels(const std::vector<std::size_t>& channels) const;

  /// Consistent-subset variant for noisy channel guesses: channels are
  /// intersected in the given (most-confident-first) order, and any
  /// channel that would empty the running set is skipped as presumed
  /// disinformation.  This is the rational attacker against the
  /// zero-disguise defence — a strict intersection would let one forged
  /// channel void everything the attacker learned; the cost is that
  /// heavy disguise leaves the attacker holding large, wrong regions.
  CellSet run_consistent(const std::vector<std::size_t>& ordered_channels)
      const;

 private:
  const geo::Dataset* dataset_;
};

}  // namespace lppa::core
