#include "core/lppa_auction.h"

#include "common/thread_pool.h"
#include "core/shard_conflict.h"
#include "core/sharded_bid_table.h"
#include "core/submission_validator.h"
#include "obs/span.h"
#include "shard/shard_plan.h"

namespace lppa::core {

LppaAuction::LppaAuction(LppaConfig config, std::uint64_t ttp_seed)
    : config_(config), ttp_(config.bid, ttp_seed, config.charging_rule) {
  LPPA_REQUIRE(config_.num_channels > 0, "auction requires channels");
  LPPA_REQUIRE(config_.ttp_batch_size > 0, "TTP batch size must be positive");
  LPPA_REQUIRE(config_.num_shards >= 1, "shard count must be at least 1");
  if (config_.backend == nullptr) config_.backend = &ttp_.bid_backend();
  LPPA_REQUIRE(config_.backend->id() == config_.bid.backend,
               "LppaConfig backend does not match the bid-config backend id");
  ttp_.set_metrics(config_.metrics);
}

LppaOutcome LppaAuction::run(
    const std::vector<auction::SuLocation>& locations,
    const std::vector<BidVector>& bids, Rng& rng) {
  LPPA_REQUIRE(locations.size() == bids.size(),
               "one location per bid vector required");
  LPPA_REQUIRE(!bids.empty(), "auction requires at least one bidder");
  for (const auto& bv : bids) {
    LPPA_REQUIRE(bv.size() == config_.num_channels,
                 "bid vectors must cover every auctioned channel");
  }

  obs::MetricsRegistry* const m = config_.metrics;
  obs::Span round_span(m, "auction.round");
  if (m != nullptr) {
    m->counter("auction.rounds").inc();
    m->counter("auction.submissions").inc(bids.size());
    m->counter(config_.argmax_strategy == ArgmaxStrategy::kSortedColumns
                   ? "auction.argmax.sorted_rounds"
                   : "auction.argmax.scan_rounds")
        .inc();
  }

  LppaOutcome result;
  AuctioneerView& view = result.view;

  // --- SU side: PPBS -----------------------------------------------------
  const SuKeyBundle keys = ttp_.su_keys();
  const PpbsLocation location_protocol(keys.g0, config_.coord_width,
                                       config_.lambda,
                                       config_.pad_location_ranges);
  const BidSubmitter submitter(ttp_.config(), keys.gb_master, keys.gc,
                               keys.paillier);

  // All SU-side randomness comes from a single fork of the caller's
  // stream, so the allocation below consumes exactly one fork() worth of
  // caller state regardless of N or k — a baseline run can mirror that
  // with one fork() and then share the allocation random sequence.
  //
  // Per-SU streams are forked serially up front (forks are cheap), then
  // the HMAC-heavy submission work fans out: SU i reads only su_rngs[i]
  // and writes only slot i, so the transcript is byte-identical for
  // every value of num_threads.
  Rng su_master = rng.fork();
  const std::size_t n = locations.size();
  std::vector<Rng> su_rngs;
  su_rngs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) su_rngs.push_back(su_master.fork());

  view.locations.resize(n);
  view.bids.resize(n);
  {
    obs::Span submit_span(m, "auction.submit", &round_span);
    parallel_for(n, config_.num_threads, [&](std::size_t i) {
      view.locations[i] = location_protocol.submit(locations[i], su_rngs[i]);
      view.bids[i] = submitter.submit(bids[i], su_rngs[i]);
    });
  }
  for (std::size_t i = 0; i < n; ++i) {
    view.location_wire_bytes += view.locations[i].wire_size();
    view.bid_wire_bytes += view.bids[i].wire_size();
  }
  if (m != nullptr) {
    m->counter("auction.submission_bytes")
        .inc(view.location_wire_bytes + view.bid_wire_bytes);
  }

  // --- Auctioneer side: PSD ----------------------------------------------
  if (config_.validate_submissions) {
    obs::Span validate_span(m, "auction.validate", &round_span);
    const SubmissionValidator validator(config_);
    for (std::size_t i = 0; i < n; ++i) {
      validator.check_location(view.locations[i]);
      validator.check_bid(view.bids[i]);
    }
  }
  // Geo-sharding (num_shards > 1): the plan partitions the grid into
  // tiles and is computed from the SU-side plaintext locations this
  // in-process round already holds on the SUs' behalf — the auctioneer
  // still only ever touches the masked submissions (see
  // shard/shard_plan.h on routing and tile-granular disclosure).
  std::optional<shard::ShardAssignment> assignment;
  if (config_.num_shards > 1) {
    const shard::ShardPlan plan = shard::ShardPlan::make(
        config_.coord_width, config_.lambda, config_.num_shards);
    assignment = plan.assign(locations);
  }
  {
    obs::Span conflict_span(m, "auction.conflict_graph", &round_span);
    if (assignment) {
      view.conflicts = build_conflict_graph_sharded(
          view.locations, *assignment, config_.num_threads, m);
    } else {
      view.conflicts = PpbsLocation::build_conflict_graph(view.locations,
                                                          config_.num_threads);
    }
  }
  const std::vector<bool> all_live(n, true);
  MaintainedRoundOutcome round;
  if (assignment) {
    ShardedBidTable table(view.bids, config_.num_channels, assignment->shard_of,
                          config_.num_shards, config_.argmax_strategy,
                          config_.num_threads, m, config_.backend);
    round = allocate_and_charge(view.bids, view.conflicts, table, all_live, rng,
                                &round_span);
  } else {
    EncryptedBidTable table(view.bids, config_.num_channels,
                            config_.argmax_strategy, config_.num_threads,
                            config_.backend);
    round = allocate_and_charge(view.bids, view.conflicts, table, all_live, rng,
                                &round_span);
  }

  result.manipulations_detected = round.manipulations_detected;
  result.outcome.awards = round.awards;
  view.awards = std::move(round.awards);
  return result;
}

MaintainedRoundOutcome LppaAuction::allocate_and_charge(
    const std::vector<BidSubmission>& bids,
    const auction::ConflictGraph& conflicts, auction::BidTableView& table,
    const std::vector<bool>& live, Rng& rng, obs::Span* parent) {
  LPPA_REQUIRE(live.size() == bids.size(), "live mask must cover every slot");
  obs::MetricsRegistry* const m = config_.metrics;

  obs::Span allocate_span(m, "auction.allocate", parent);
  MaintainedRoundOutcome result;
  result.awards = auction::greedy_allocate(table, conflicts, rng);
  allocate_span.end();
  if (m != nullptr) m->counter("auction.awards").inc(result.awards.size());

  obs::Span charging_span(m, "auction.charging", parent);
  std::vector<auction::Award>& awards = result.awards;

  // --- Charging through the periodically-available TTP --------------------
  std::vector<ChargeQuery> pending;
  auto flush = [&] {
    if (pending.empty()) return;
    const auto results = ttp_.process_batch(pending);
    for (const auto& res : results) {
      for (auto& award : awards) {
        if (award.user == res.user && award.channel == res.channel) {
          if (res.manipulated) {
            ++result.manipulations_detected;
            award.valid = false;
            award.charge = 0;
          } else {
            award.valid = res.valid;
            award.charge = res.charge;
          }
        }
      }
    }
    pending.clear();
  };
  for (const auto& award : awards) {
    const ChannelBidSubmission& entry = bids[award.user].channels[award.channel];
    ChargeQuery query{award.user,         award.channel, entry.sealed,
                      entry.value_family, entry.paillier_ct,
                      std::nullopt,       std::nullopt,  0};
    if (config_.charging_rule == ChargingRule::kSecondPrice) {
      // The runner-up of the column among all other LIVE bidders, found
      // with the same masked tournament the allocator uses.  Dead roster
      // slots hold stale masks from before their departure and must not
      // leak into the price.
      std::optional<UserId> second;
      for (UserId u = 0; u < bids.size(); ++u) {
        if (u == award.user || !live[u]) continue;
        if (!second ||
            !config_.backend->ge(bids[*second].channels[award.channel],
                                 bids[u].channels[award.channel])) {
          second = u;
        }
      }
      if (second) {
        const auto& runner_up = bids[*second].channels[award.channel];
        query.runner_up_sealed = runner_up.sealed;
        query.runner_up_family = runner_up.value_family;
        query.runner_up_ct = runner_up.paillier_ct;
      }
    }
    pending.push_back(std::move(query));
    if (pending.size() >= config_.ttp_batch_size) flush();
  }
  flush();
  charging_span.end();
  if (m != nullptr && result.manipulations_detected > 0) {
    m->counter("auction.manipulations").inc(result.manipulations_detected);
  }
  return result;
}

}  // namespace lppa::core
