#include "core/submission_validator.h"

namespace lppa::core {

namespace {

/// Sorted digest vectors must be strictly increasing: an honest family
/// hashes w+1 distinct numericalised prefixes and padding digests are
/// uniform random, so a repeated digest only ever arises from a
/// malformed (or replayed-within-itself) submission.
bool has_duplicate(std::span<const crypto::Digest> digests) {
  for (std::size_t i = 1; i < digests.size(); ++i) {
    if (digests[i - 1] == digests[i]) return true;
  }
  return false;
}

}  // namespace

SubmissionValidator::SubmissionValidator(const LppaConfig& config)
    : coord_width_(config.coord_width),
      pad_location_ranges_(config.pad_location_ranges),
      num_channels_(config.num_channels),
      bid_width_(config.bid.enc.scaled_width()),
      pad_bid_ranges_(config.bid.pad_range_sets),
      sealed_payload_size_(SealedBidPayload{}.serialize().size()),
      backend_(&crypto::resolve_backend(config.backend)) {
  config.bid.enc.validate();
  LPPA_REQUIRE(coord_width_ >= 1 && coord_width_ <= prefix::kMaxWidth,
               "coordinate width out of range");
  LPPA_REQUIRE(num_channels_ > 0, "auction requires channels");
  LPPA_REQUIRE(backend_->id() == config.bid.backend,
               "validator backend does not match the bid-config backend id");
}

std::optional<std::string> SubmissionValidator::validate_family(
    const prefix::HashedPrefixSet& set, int width, const char* what) const {
  const std::size_t expected = family_size(width);
  if (set.size() != expected) {
    return std::string(what) + ": prefix family has " +
           std::to_string(set.size()) + " digests, expected " +
           std::to_string(expected) + " for width " + std::to_string(width);
  }
  if (has_duplicate(set.digests())) {
    return std::string(what) + ": duplicate digest in prefix family";
  }
  return std::nullopt;
}

std::optional<std::string> SubmissionValidator::validate_range(
    const prefix::HashedPrefixSet& set, int width, bool padded,
    const char* what) const {
  const std::size_t max = prefix::max_range_prefixes(width);
  if (padded) {
    if (set.size() != max) {
      return std::string(what) + ": padded range cover has " +
             std::to_string(set.size()) + " digests, expected exactly " +
             std::to_string(max);
    }
  } else {
    if (set.size() < 1 || set.size() > max) {
      return std::string(what) + ": range cover has " +
             std::to_string(set.size()) + " digests, expected 1.." +
             std::to_string(max);
    }
  }
  if (has_duplicate(set.digests())) {
    return std::string(what) + ": duplicate digest in range cover";
  }
  return std::nullopt;
}

std::optional<std::string> SubmissionValidator::validate_location(
    const LocationSubmission& s) const {
  if (auto e = validate_family(s.x_family, coord_width_, "x_family")) return e;
  if (auto e = validate_family(s.y_family, coord_width_, "y_family")) return e;
  if (auto e = validate_range(s.x_range, coord_width_, pad_location_ranges_,
                              "x_range")) {
    return e;
  }
  if (auto e = validate_range(s.y_range, coord_width_, pad_location_ranges_,
                              "y_range")) {
    return e;
  }
  return std::nullopt;
}

std::optional<std::string> SubmissionValidator::validate_bid(
    const BidSubmission& s) const {
  if (s.channels.size() != num_channels_) {
    return "bid submission covers " + std::to_string(s.channels.size()) +
           " channels, auction has " + std::to_string(num_channels_);
  }
  for (std::size_t r = 0; r < s.channels.size(); ++r) {
    const ChannelBidSubmission& c = s.channels[r];
    const std::string where = "channel " + std::to_string(r);
    if (backend_->id() != crypto::BidBackendId::kHmacPrefix) {
      // Non-HMAC cells carry no prefix structure; the backend owns the
      // per-cell shape test (empty families, ciphertext range).
      if (auto e = backend_->validate_cell(c)) return where + ": " + *e;
    } else {
      // Digest counts bound the encoded value to the [0, bmax] scaled
      // encoding: a family over any wider width (i.e. a value beyond
      // scaled_max) has more than bid_width_+1 digests and is rejected.
      if (auto e = validate_family(c.value_family, bid_width_,
                                   (where + " value_family").c_str())) {
        return e;
      }
      if (auto e = validate_range(c.range_set, bid_width_, pad_bid_ranges_,
                                  (where + " range_set").c_str())) {
        return e;
      }
    }
    // The stream cipher preserves length, so a well-formed sealed payload
    // has exactly the SealedBidPayload wire size as ciphertext.
    if (c.sealed.ciphertext.size() != sealed_payload_size_) {
      return where + " sealed payload has " +
             std::to_string(c.sealed.ciphertext.size()) +
             " ciphertext bytes, expected " +
             std::to_string(sealed_payload_size_);
    }
  }
  return std::nullopt;
}

void SubmissionValidator::check_location(const LocationSubmission& s) const {
  if (auto e = validate_location(s)) {
    detail::raise(ErrorKind::kProtocol, "invalid location submission: " + *e);
  }
}

void SubmissionValidator::check_bid(const BidSubmission& s) const {
  if (auto e = validate_bid(s)) {
    detail::raise(ErrorKind::kProtocol, "invalid bid submission: " + *e);
  }
}

}  // namespace lppa::core
