// PolicyAdvisor: turns §IV-C.3's advice — "users should carefully select
// the value of p_t based on their demand for both privacy protection and
// spectrum utilization" — into an algorithm.
//
// The knob is the zero-replace probability (1 - p_0) of a disguise
// family (uniform or linear).  Theorems 1 and 2 give closed forms for
// both sides of the trade-off:
//   * privacy:      P[no leakage] when the auctioneer harvests the t
//                   largest prices of a channel (thm2, exact form);
//   * performance:  P[the genuine top bid still wins] (thm1).
// Both are monotone in the replace probability, so the minimal
// probability meeting a privacy target — the performance-optimal choice
// — is found by bisection.
#pragma once

#include "core/ppbs_bid.h"

namespace lppa::core {

/// Which parametric disguise family to search within.
enum class DisguiseFamily {
  kUniform,  ///< ZeroDisguisePolicy::uniform
  kLinear,   ///< ZeroDisguisePolicy::linear (paper's p_1 >= ... >= p_bmax)
};

/// The channel model the advisor plans against: a representative channel
/// with top genuine bid b_n and m zero bidders, attacked by an
/// auctioneer harvesting the t largest prices.
struct AdvisorScenario {
  Money bmax = 15;
  Money b_n = 12;      ///< representative top genuine bid
  std::size_t m = 10;  ///< zeros on the channel
  std::size_t t = 3;   ///< prices the attacker harvests
};

struct PolicyAdvice {
  double replace_prob = 0.0;        ///< the recommended 1 - p_0
  double privacy = 0.0;             ///< achieved P[no leakage] (thm2 exact)
  double top_bid_survival = 0.0;    ///< achieved P[genuine max wins] (thm1)
  bool target_achievable = false;   ///< false: even replace_prob 1 falls short
  ZeroDisguisePolicy policy = ZeroDisguisePolicy::none(15);
};

class PolicyAdvisor {
 public:
  PolicyAdvisor(AdvisorScenario scenario, DisguiseFamily family);

  /// P[no leakage] at a given replace probability (thm2 exact form).
  double privacy_at(double replace_prob) const;

  /// P[the genuine top bid wins] at a given replace probability (thm1).
  double survival_at(double replace_prob) const;

  /// Smallest replace probability whose privacy meets `privacy_target`
  /// (in [0,1]); bisection to `tolerance`.  When the target is not
  /// achievable even at replace_prob = 1, returns the best effort with
  /// target_achievable = false.
  PolicyAdvice recommend(double privacy_target,
                         double tolerance = 1e-4) const;

  ZeroDisguisePolicy make_policy(double replace_prob) const;

 private:
  AdvisorScenario scenario_;
  DisguiseFamily family_;
};

}  // namespace lppa::core
