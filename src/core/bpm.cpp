#include "core/bpm.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace lppa::core {

BpmResult BpmAttack::run(const CellSet& possible,
                         const auction::BidVector& bids,
                         const BpmOptions& options) const {
  LPPA_REQUIRE(options.keep_fraction > 0.0 && options.keep_fraction <= 1.0,
               "keep_fraction must be in (0, 1]");
  LPPA_REQUIRE(bids.size() <= dataset_->channel_count(),
               "bid vector longer than the dataset's channel list");

  // AS(i) and the reference channel r_max (maximum bid).
  std::vector<std::size_t> available;
  std::size_t r_max = 0;
  auction::Money b_max = 0;
  for (std::size_t r = 0; r < bids.size(); ++r) {
    if (bids[r] == 0) continue;
    available.push_back(r);
    if (bids[r] > b_max) {
      b_max = bids[r];
      r_max = r;
    }
  }
  if (available.empty() || b_max == 0) return {};  // nothing to mine

  // Estimated quality ratios q̂_r = b_r / b_max (q̂_rmax = 1).
  std::vector<double> q_hat(available.size());
  for (std::size_t idx = 0; idx < available.size(); ++idx) {
    q_hat[idx] = static_cast<double>(bids[available[idx]]) /
                 static_cast<double>(b_max);
  }

  struct Scored {
    std::size_t cell;
    double dq;
  };
  std::vector<Scored> scored;
  scored.reserve(possible.count());
  possible.for_each([&](std::size_t cell) {
    const double q_ref = dataset_->quality_at_index(r_max, cell);
    if (q_ref <= 0.0) return;  // reference channel dead here: not scorable
    double dq = 0.0;
    for (std::size_t idx = 0; idx < available.size(); ++idx) {
      const double q_true =
          dataset_->quality_at_index(available[idx], cell) / q_ref;
      const double diff = q_hat[idx] - q_true;
      dq += diff * diff;
    }
    scored.push_back({cell, dq});
  });
  if (scored.empty()) return {};

  std::size_t keep = static_cast<std::size_t>(
      std::ceil(options.keep_fraction * static_cast<double>(scored.size())));
  keep = std::max<std::size_t>(keep, 1);
  if (options.max_cells > 0) keep = std::min(keep, options.max_cells);
  keep = std::min(keep, scored.size());

  std::nth_element(scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(keep - 1),
                   scored.end(),
                   [](const Scored& a, const Scored& b) { return a.dq < b.dq; });
  scored.resize(keep);
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) { return a.dq < b.dq; });

  BpmResult result;
  result.cells.reserve(keep);
  result.dq.reserve(keep);
  for (const auto& s : scored) {
    result.cells.push_back(s.cell);
    result.dq.push_back(s.dq);
  }
  return result;
}

BpmResult BpmAttack::run_global(const auction::BidVector& bids,
                                const BpmOptions& options) const {
  return run(CellSet::full(dataset_->grid().cell_count()), bids, options);
}

}  // namespace lppa::core
