// TrustedThirdParty (paper §II-C, §V-B): the periodically-available
// authority that
//   * generates and distributes the protocol keys (g0 to mask locations,
//     gb_1..gb_k to mask bids, gc to seal true bids) and the public
//     encoding parameters rd and cr,
//   * decrypts winners' sealed bids in batches, verifies the plaintext
//     against the submitted prefix encoding (anti-manipulation), flags
//     disguised-/true-zero wins as invalid, and returns the first-price
//     charge.
//
// Keys are handed to SUs via su_keys(); the auctioneer never sees them —
// the API makes that separation explicit by bundling exactly what each
// party may hold.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/ppbs_bid.h"

namespace lppa::obs {
class MetricsRegistry;
}  // namespace lppa::obs

namespace lppa::core {

/// The key material an SU receives from the TTP.
struct SuKeyBundle {
  crypto::SecretKey g0;         ///< location-masking HMAC key
  crypto::SecretKey gb_master;  ///< master for gb_1..gb_k
  crypto::SecretKey gc;         ///< sealing key towards the TTP
  /// Published Paillier public key (kPaillier backend only) — the SUs
  /// encrypt their scaled bids under it; the private half never leaves
  /// the TTP's comparison oracle.
  std::optional<crypto::PaillierPublicKey> paillier;
};

/// How winners are charged.  The paper uses first-price (§V-C.1) and
/// leaves truthfulness to future work; kSecondPrice is this library's
/// extension implementing that future work: the winner pays the
/// second-highest (TTP-validated) bid of its column, which makes
/// truthful bidding a dominant strategy per column.
enum class ChargingRule {
  kFirstPrice,
  kSecondPrice,
};

/// A winner's charge request relayed by the auctioneer.  Under the
/// Paillier backend the prefix families are empty and the ciphertext
/// fields carry the submitted masked bids instead; the wire format uses
/// the same implied tag as ChannelBidSubmission (ciphertext present iff
/// the family is empty), so HMAC queries keep their pre-backend bytes.
struct ChargeQuery {
  UserId user = 0;
  ChannelId channel = 0;
  crypto::SealedMessage sealed;          ///< the winner's sealed payload
  prefix::HashedPrefixSet value_family;  ///< the submitted H_gb_r(G(s))
  std::uint64_t paillier_ct = 0;         ///< the submitted E_pub(s)

  /// Under kSecondPrice the auctioneer also relays the column's
  /// runner-up submission (absent when the winner was alone).
  std::optional<crypto::SealedMessage> runner_up_sealed;
  std::optional<prefix::HashedPrefixSet> runner_up_family;
  std::uint64_t runner_up_ct = 0;

  void serialize(ByteWriter& w) const;
  static ChargeQuery deserialize(ByteReader& r);
};

/// What the TTP reveals back to the auctioneer.
struct ChargeResult {
  UserId user = 0;
  ChannelId channel = 0;
  bool valid = false;        ///< false: disguised/true zero -> no charge
  Money charge = 0;          ///< first-price charge when valid
  bool manipulated = false;  ///< prefix encoding did not match the payload

  void serialize(ByteWriter& w) const;
  static ChargeResult deserialize(ByteReader& r);
  bool operator==(const ChargeResult&) const = default;
};

class TrustedThirdParty {
 public:
  /// Generates fresh keys for one auction.  The bid configuration (bmax,
  /// rd, cr, disguise policy defaults) is owned by the TTP per §IV-C.2.
  TrustedThirdParty(PpbsBidConfig config, std::uint64_t seed,
                    ChargingRule rule = ChargingRule::kFirstPrice);

  const PpbsBidConfig& config() const noexcept { return config_; }
  ChargingRule charging_rule() const noexcept { return rule_; }

  /// Key distribution (TTP -> SUs over a secure channel).
  SuKeyBundle su_keys() const noexcept {
    return SuKeyBundle{g0_, gb_master_, gc_,
                       oracle_ != nullptr
                           ? std::optional<crypto::PaillierPublicKey>(
                                 oracle_->pub())
                           : std::nullopt};
  }
  const crypto::SecretKey& g0() const noexcept { return g0_; }

  /// The auctioneer-facing backend for this round's configuration: the
  /// HMAC singleton, or a PaillierBackend wired to this TTP's comparison
  /// oracle.  Stable for the TTP's lifetime (shared across copies).
  const crypto::BidBackend& bid_backend() const noexcept {
    return backend_ != nullptr ? *backend_ : crypto::hmac_backend();
  }

  /// The Paillier comparison oracle (null under the HMAC backend); the
  /// bench reads its per-op counters.
  const crypto::PaillierCompareOracle* paillier_oracle() const noexcept {
    return oracle_.get();
  }

  /// Processes one charge query (decrypt, verify, un-disguise).
  ChargeResult process(const ChargeQuery& query) const;

  /// Batch interface (paper §V-C.2): the auctioneer accumulates queries
  /// and flushes them during the TTP's online window.  Counters let the
  /// benches report TTP load.
  std::vector<ChargeResult> process_batch(
      const std::vector<ChargeQuery>& queries);

  std::size_t batches_processed() const noexcept { return batches_; }
  std::size_t queries_processed() const noexcept { return queries_; }

  /// Attaches (or detaches, with nullptr) an observability sink.  Each
  /// processed batch observes `ttp.batch_size`; each query increments
  /// `ttp.queries`, plus `ttp.manipulations` when the payload failed
  /// decrypt/verify or `ttp.invalid_charges` for disguised-/true-zero
  /// wins.  Not owned; keep it alive while attached.
  void set_metrics(obs::MetricsRegistry* metrics) noexcept {
    metrics_ = metrics;
  }
  obs::MetricsRegistry* metrics() const noexcept { return metrics_; }

 private:
  /// Decrypts and verifies one sealed payload against its submitted
  /// masked encoding (prefix family or Paillier ciphertext, by backend);
  /// nullopt on any integrity failure.
  std::optional<SealedBidPayload> open_and_verify(
      const crypto::SealedMessage& sealed,
      const prefix::HashedPrefixSet& family, std::uint64_t paillier_ct,
      ChannelId channel) const;

  PpbsBidConfig config_;
  ChargingRule rule_ = ChargingRule::kFirstPrice;
  crypto::SecretKey g0_;
  crypto::SecretKey gb_master_;
  crypto::SecretKey gc_;
  crypto::SealedBox box_;
  /// kPaillier backend only (both null otherwise); shared_ptr keeps the
  /// TTP copyable and bid_backend() references stable across copies.
  std::shared_ptr<const crypto::PaillierCompareOracle> oracle_;
  std::shared_ptr<const crypto::BidBackend> backend_;
  std::size_t batches_ = 0;
  std::size_t queries_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;  ///< not owned; may be null
};

}  // namespace lppa::core
