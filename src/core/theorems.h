// Closed-form analysis of the zero-disguise trade-off (paper Theorems 1-3)
// and the communication cost (Theorem 4), each paired with a Monte-Carlo
// estimator implementing the theorem's sampling experiment directly.
//
// The MC twins serve two purposes: they validate the closed forms in the
// parameter regions where the paper's derivation is exact (Theorem 1
// matches to MC noise), and they provide trustworthy numbers where the
// printed formulas are loose (Theorems 2-3 under-specify tie handling;
// see EXPERIMENTS.md for the measured discrepancies).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/ppbs_bid.h"

namespace lppa::core::theorems {

/// Theorem 1 closed form: probability that no disguised zero wins a
/// channel whose largest true bid is b_N (held by exactly one bidder)
/// when m zeros are independently replaced via `policy`.
///   p_f = [(q+p)^{m+1} - q^{m+1}] / ((m+1) p),  q = P[repl < b_N],
///   p = p_{b_N};   limit q^m when p == 0.
double thm1_zero_not_win(Money b_n, std::size_t m,
                         const ZeroDisguisePolicy& policy);

/// Monte-Carlo twin of Theorem 1: one original b_N holder, m replaced
/// zeros, winner drawn uniformly among the maximum holders; returns the
/// frequency with which the original holder wins.
double thm1_monte_carlo(Money b_n, std::size_t m,
                        const ZeroDisguisePolicy& policy, std::size_t trials,
                        Rng& rng);

/// Theorem 2 closed form (as stated in the paper): probability that the
/// auctioneer's t chosen largest prices are all disguised zeros (no
/// location leakage) for a channel with largest true bid b_N and m zeros.
double thm2_no_leakage(Money b_n, std::size_t m, std::size_t t,
                       const ZeroDisguisePolicy& policy);

/// Exact closed form for the same quantity.  The paper's printed
/// boundary-tie factor (j-1)/j under-counts the survivable tie
/// configurations; the exact factor for filling s = t-k boundary slots
/// from j tied zeros plus the original holder is (j+1-s)/(j+1).  This
/// variant matches the Monte-Carlo estimator to sampling noise; the
/// as-printed variant is kept for fidelity and is a strict lower bound.
double thm2_no_leakage_exact(Money b_n, std::size_t m, std::size_t t,
                             const ZeroDisguisePolicy& policy);

/// Monte-Carlo twin of Theorem 2: the full selection experiment — one
/// b_N holder, m replaced zeros, auctioneer keeps the t largest entries
/// (boundary ties resolved uniformly); returns the frequency with which
/// all t selections are zeros.
double thm2_monte_carlo(Money b_n, std::size_t m, std::size_t t,
                        const ZeroDisguisePolicy& policy, std::size_t trials,
                        Rng& rng);

/// Theorem 3 closed form (as stated): expected number of true (non-zero)
/// bids among the auctioneer's t-largest selection under the
/// best-protection policy p_r = 1/(1+bmax).  `sorted_bids` are the
/// non-zero bids in ascending order (the paper's b_1 <= ... <= b_N).
double thm3_expected_true_bids(const std::vector<Money>& sorted_bids,
                               std::size_t m, std::size_t t, Money bmax);

/// Monte-Carlo twin of Theorem 3: zeros replaced uniformly over
/// [0, bmax]; the auctioneer takes every user whose value ties the t-th
/// largest or better; returns the mean number of true bids selected.
double thm3_monte_carlo(const std::vector<Money>& sorted_bids, std::size_t m,
                        std::size_t t, Money bmax, std::size_t trials,
                        Rng& rng);

/// Theorem 4: total bid-submission transmission cost in bits,
/// h * k * N * (3w - 1) * (w + 1).
double thm4_comm_bits(double h, std::size_t k, std::size_t n, int w);

/// The h of Theorem 4 for our instantiation: HMAC-SHA-256 output (256
/// bits) over a (w+1)-bit numericalised prefix.
double hmac_length_ratio(int w);

}  // namespace lppa::core::theorems
