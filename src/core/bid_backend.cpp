#include "core/bid_backend.h"

#include "common/error.h"
#include "core/ppbs_bid.h"
#include "prefix/prefix.h"

namespace lppa::crypto {

namespace {

/// id 0: the seed scheme, verbatim.  encode_cell reproduces the exact
/// RNG draw order of the pre-backend BidSubmitter (of_value and of_range
/// draw nothing; pad_to draws iff padding is on), which is what keeps
/// the refactor byte-identical — the differential test pins it against
/// pre-refactor golden digests.
class HmacPrefixBackend final : public BidBackend {
 public:
  BidBackendId id() const noexcept override {
    return BidBackendId::kHmacPrefix;
  }
  const char* name() const noexcept override { return "hmac-prefix"; }

  void encode_cell(core::ChannelBidSubmission& cell, const BidEncodeCtx& ctx,
                   std::uint64_t scaled, Rng& rng) const override {
    LPPA_REQUIRE(ctx.key_ctx != nullptr,
                 "HMAC backend needs a channel key context");
    cell.value_family =
        prefix::HashedPrefixSet::of_value(*ctx.key_ctx, scaled, ctx.width);
    cell.range_set = prefix::HashedPrefixSet::of_range(
        *ctx.key_ctx, scaled, ctx.scaled_max, ctx.width);
    if (ctx.pad_range_sets) {
      cell.range_set.pad_to(prefix::max_range_prefixes(ctx.width), rng);
    }
  }

  bool ge(const core::ChannelBidSubmission& a,
          const core::ChannelBidSubmission& b) const override {
    // a >= b  iff  s_a ∈ [s_b, smax]  iff  G(s_a) ∩ Q([s_b, smax]) != ∅.
    return a.value_family.intersects(b.range_set);
  }

  std::optional<std::string> validate_cell(
      const core::ChannelBidSubmission&) const override {
    return std::nullopt;  // SubmissionValidator keeps the legacy checks
  }
};

}  // namespace

const BidBackend& hmac_backend() noexcept {
  static const HmacPrefixBackend instance;
  return instance;
}

// ------------------------------------------------------------- oracle

PaillierCompareOracle::PaillierCompareOracle(PaillierKeyPair keys,
                                             std::uint64_t scaled_max)
    : keys_(keys), scaled_max_(scaled_max) {
  LPPA_REQUIRE(keys_.pub.n > 0, "oracle requires a generated key pair");
  LPPA_REQUIRE(scaled_max_ >= 1, "scaled_max must be at least 1");
  // Sign-test exactness (see the class comment): blinded differences
  // must stay strictly inside (-n/2, n/2).
  LPPA_REQUIRE(keys_.pub.n / 128 > scaled_max_,
               "Paillier modulus too small for the bid range: need "
               "n > 128 * scaled_max for exact blinded comparisons");
}

std::uint64_t PaillierCompareOracle::decrypt(std::uint64_t ct) const {
  decrypts_.fetch_add(1, std::memory_order_relaxed);
  return keys_.priv.decrypt(ct, keys_.pub);
}

bool PaillierCompareOracle::ge(std::uint64_t ct_a, std::uint64_t ct_b) const {
  compares_.fetch_add(1, std::memory_order_relaxed);
  const PaillierPublicKey& pub = keys_.pub;
  // E(a - b) = E(a) * E(b)^(n-1): scaling by n-1 is homomorphic negation.
  const std::uint64_t diff = pub.add(ct_a, pub.scale(ct_b, pub.n - 1));
  // Multiplicative blind before decryption, derived from the ciphertext
  // pair so replays of the same query are deterministic.  What the
  // decryptor learns is k*(a-b), i.e. the sign and a blinded magnitude —
  // the standard blinded-comparison leakage model.
  const std::uint64_t k = 1 + ((ct_a ^ ct_b) & 63u);
  const std::uint64_t plain = keys_.priv.decrypt(pub.scale(diff, k), pub);
  // a >= b  ⇒  plain = k*(a-b) <= 64*scaled_max < n/2;
  // a <  b  ⇒  plain = n - k*(b-a) > n/2.
  return plain <= pub.n / 2;
}

// ------------------------------------------------------------ paillier

PaillierBackend::PaillierBackend(
    PaillierPublicKey pub, std::shared_ptr<const PaillierCompareOracle> oracle)
    : pub_(pub), oracle_(std::move(oracle)) {
  LPPA_REQUIRE(pub_.n > 0 && pub_.n_squared == pub_.n * pub_.n,
               "malformed Paillier public key");
}

void PaillierBackend::encode_cell(core::ChannelBidSubmission& cell,
                                  const BidEncodeCtx&, std::uint64_t scaled,
                                  Rng& rng) const {
  cell.paillier_ct = pub_.encrypt(scaled, rng);
}

bool PaillierBackend::ge(const core::ChannelBidSubmission& a,
                         const core::ChannelBidSubmission& b) const {
  if (oracle_ == nullptr) {
    detail::raise(ErrorKind::kState,
                  "Paillier order test requires the TTP comparison oracle; "
                  "this backend instance is encode-only");
  }
  return oracle_->ge(a.paillier_ct, b.paillier_ct);
}

std::optional<std::string> PaillierBackend::validate_cell(
    const core::ChannelBidSubmission& cell) const {
  if (cell.value_family.size() != 0 || cell.range_set.size() != 0) {
    return std::string(
        "Paillier cell carries HMAC prefix digests (backend mismatch)");
  }
  if (cell.paillier_ct == 0 || cell.paillier_ct >= pub_.n_squared) {
    return "Paillier ciphertext outside Z*_{n^2}: " +
           std::to_string(cell.paillier_ct);
  }
  return std::nullopt;
}

}  // namespace lppa::crypto
