#include "core/policy_advisor.h"

#include "core/theorems.h"

namespace lppa::core {

PolicyAdvisor::PolicyAdvisor(AdvisorScenario scenario, DisguiseFamily family)
    : scenario_(scenario), family_(family) {
  LPPA_REQUIRE(scenario_.bmax >= 1, "bmax must be at least 1");
  LPPA_REQUIRE(scenario_.b_n >= 1 && scenario_.b_n <= scenario_.bmax,
               "representative bid must lie in [1, bmax]");
  LPPA_REQUIRE(scenario_.t >= 1, "attacker harvests at least one price");
}

ZeroDisguisePolicy PolicyAdvisor::make_policy(double replace_prob) const {
  switch (family_) {
    case DisguiseFamily::kUniform:
      return ZeroDisguisePolicy::uniform(scenario_.bmax, replace_prob);
    case DisguiseFamily::kLinear:
      return ZeroDisguisePolicy::linear(scenario_.bmax, replace_prob);
  }
  LPPA_REQUIRE(false, "unknown disguise family");
  return ZeroDisguisePolicy::none(scenario_.bmax);
}

double PolicyAdvisor::privacy_at(double replace_prob) const {
  return theorems::thm2_no_leakage_exact(scenario_.b_n, scenario_.m,
                                         scenario_.t,
                                         make_policy(replace_prob));
}

double PolicyAdvisor::survival_at(double replace_prob) const {
  return theorems::thm1_zero_not_win(scenario_.b_n, scenario_.m,
                                     make_policy(replace_prob));
}

PolicyAdvice PolicyAdvisor::recommend(double privacy_target,
                                      double tolerance) const {
  LPPA_REQUIRE(privacy_target >= 0.0 && privacy_target <= 1.0,
               "privacy target must be a probability");
  LPPA_REQUIRE(tolerance > 0.0, "tolerance must be positive");

  PolicyAdvice advice;
  const double best = privacy_at(1.0);
  if (best < privacy_target) {
    // Even full disguise cannot reach the target under this family.
    advice.replace_prob = 1.0;
    advice.privacy = best;
    advice.top_bid_survival = survival_at(1.0);
    advice.target_achievable = false;
    advice.policy = make_policy(1.0);
    return advice;
  }

  // privacy_at is non-decreasing in the replace probability, so bisect
  // for the smallest probability meeting the target.
  double lo = 0.0, hi = 1.0;
  while (hi - lo > tolerance) {
    const double mid = (lo + hi) / 2.0;
    if (privacy_at(mid) >= privacy_target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  advice.replace_prob = hi;
  advice.privacy = privacy_at(hi);
  advice.top_bid_survival = survival_at(hi);
  advice.target_achievable = true;
  advice.policy = make_policy(hi);
  return advice;
}

}  // namespace lppa::core
