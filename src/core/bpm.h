// BPM — Bid-Price Mining attack (paper Algorithm 2).
//
// Truthful bids are proportional to channel quality at the bidder's
// position.  The attacker normalises the victim's bid vector into
// estimated quality ratios q̂_r = b_r / b_max, computes for every BCM
// candidate cell the squared distance
//     dq(m,n) = sum_r (q̂_r - q*_r(m,n) / q*_rmax(m,n))^2
// against the public per-cell quality statistics, and keeps the cells
// with the smallest dq.
#pragma once

#include <cstddef>
#include <vector>

#include "auction/bid.h"
#include "common/cellset.h"
#include "geo/coverage.h"

namespace lppa::core {

struct BpmOptions {
  /// Fraction of the BCM candidate cells to keep (the paper sweeps 1,
  /// 1/2, 1/3, ...; 1.0 degenerates to BCM's output re-ranked).
  double keep_fraction = 0.5;
  /// Hard cap on the number of returned cells (paper §VI-B introduces a
  /// threshold, e.g. 250, to stop huge candidate sets diluting the rank).
  /// 0 disables the cap.
  std::size_t max_cells = 0;
};

struct BpmResult {
  /// Kept cells, ascending by dq (best guess first).
  std::vector<std::size_t> cells;
  /// dq value per kept cell (same order).
  std::vector<double> dq;
};

class BpmAttack {
 public:
  explicit BpmAttack(const geo::Dataset& dataset) : dataset_(&dataset) {}

  /// Runs Algorithm 2 on the BCM output `possible` using the victim's bid
  /// vector.  Cells where the reference channel has zero recorded quality
  /// cannot be scored and are skipped (they cannot host a bidder whose
  /// best channel is r_max anyway).
  BpmResult run(const CellSet& possible, const auction::BidVector& bids,
                const BpmOptions& options) const;

  /// The paper's §III-B remark operationalised: "even without our basic
  /// attack, BPM would still be set up by searching the whole possible
  /// cells" — Algorithm 2 over the entire map, no BCM pre-filter.
  BpmResult run_global(const auction::BidVector& bids,
                       const BpmOptions& options) const;

 private:
  const geo::Dataset* dataset_;
};

}  // namespace lppa::core
