#include "core/ttp.h"

#include <algorithm>

#include "obs/metrics.h"

namespace lppa::core {

namespace {
// ttp.batch_size bucket ladder: powers of two around the default
// ttp_batch_size (16), so over/under-filled batches are visible.
constexpr double kBatchSizeBuckets[] = {1, 2, 4, 8, 16, 32, 64, 128, 256};
}  // namespace

namespace {

// Domain tags for the TTP's three key streams (ASCII "g0", "gbmaster",
// "gc").  Mixed through derive_stream_seed rather than XOR-ed into the
// seed: under the old `seed ^ tag` scheme the related seeds s and
// s ^ 0x6763 collapsed gc(s) onto g0(s ^ 0x6763) — one auction's sealing
// key equal to another's location-masking key.  See common/rng.h for the
// derivation and the golden-output compat note.
constexpr std::uint64_t kDomainG0 = 0x6730ULL;
constexpr std::uint64_t kDomainGbMaster = 0x67626d6173746572ULL;
constexpr std::uint64_t kDomainGc = 0x6763ULL;
// ASCII "pail": the Paillier keygen stream.  Only drawn when the config
// selects the Paillier backend, so the three HMAC key streams above are
// untouched by the backend choice.
constexpr std::uint64_t kDomainPaillier = 0x7061696cULL;

crypto::SecretKey derive_key(std::uint64_t seed, std::uint64_t domain) {
  Rng rng(derive_stream_seed(seed, domain));
  return crypto::SecretKey::generate(rng);
}

}  // namespace

TrustedThirdParty::TrustedThirdParty(PpbsBidConfig config, std::uint64_t seed,
                                     ChargingRule rule)
    : config_(std::move(config)),
      rule_(rule),
      g0_(derive_key(seed, kDomainG0)),
      gb_master_(derive_key(seed, kDomainGbMaster)),
      gc_(derive_key(seed, kDomainGc)),
      box_(gc_, config_.sealed_cipher) {
  config_.enc.validate();
  if (config_.backend == crypto::BidBackendId::kPaillier) {
    Rng prng(derive_stream_seed(seed, kDomainPaillier));
    const auto keys =
        crypto::paillier_keygen(config_.paillier_prime_bits, prng);
    oracle_ = std::make_shared<const crypto::PaillierCompareOracle>(
        keys, config_.enc.scaled_max());
    backend_ = std::make_shared<const crypto::PaillierBackend>(keys.pub,
                                                               oracle_);
  }
}

void ChargeQuery::serialize(ByteWriter& w) const {
  w.u64(user);
  w.u64(channel);
  w.bytes(sealed.serialize());
  value_family.serialize(w);
  // Implied backend tag, as in ChannelBidSubmission: an empty family
  // means the Paillier ciphertext follows; HMAC queries keep the
  // pre-backend byte layout.
  if (value_family.size() == 0) w.u64(paillier_ct);
  w.u8(runner_up_sealed.has_value() ? 1 : 0);
  if (runner_up_sealed.has_value()) {
    LPPA_REQUIRE(runner_up_family.has_value(),
                 "runner-up sealed payload without its prefix family");
    w.bytes(runner_up_sealed->serialize());
    runner_up_family->serialize(w);
    if (runner_up_family->size() == 0) w.u64(runner_up_ct);
  }
}

ChargeQuery ChargeQuery::deserialize(ByteReader& r) {
  ChargeQuery q;
  q.user = r.u64();
  q.channel = r.u64();
  q.sealed = crypto::SealedMessage::deserialize(r.bytes());
  q.value_family = prefix::HashedPrefixSet::deserialize(r);
  if (q.value_family.size() == 0) q.paillier_ct = r.u64();
  const std::uint8_t has_runner_up = r.u8();
  LPPA_PROTOCOL_CHECK(has_runner_up <= 1, "invalid runner-up flag");
  if (has_runner_up) {
    q.runner_up_sealed = crypto::SealedMessage::deserialize(r.bytes());
    q.runner_up_family = prefix::HashedPrefixSet::deserialize(r);
    if (q.runner_up_family->size() == 0) q.runner_up_ct = r.u64();
  }
  return q;
}

void ChargeResult::serialize(ByteWriter& w) const {
  w.u64(user);
  w.u64(channel);
  w.u8(valid ? 1 : 0);
  w.u64(charge);
  w.u8(manipulated ? 1 : 0);
}

ChargeResult ChargeResult::deserialize(ByteReader& r) {
  ChargeResult res;
  res.user = r.u64();
  res.channel = r.u64();
  const std::uint8_t valid_flag = r.u8();
  res.charge = r.u64();
  const std::uint8_t manipulated_flag = r.u8();
  LPPA_PROTOCOL_CHECK(valid_flag <= 1 && manipulated_flag <= 1,
                      "invalid boolean flag in ChargeResult");
  res.valid = valid_flag != 0;
  res.manipulated = manipulated_flag != 0;
  return res;
}

std::optional<SealedBidPayload> TrustedThirdParty::open_and_verify(
    const crypto::SealedMessage& sealed,
    const prefix::HashedPrefixSet& family, std::uint64_t paillier_ct,
    ChannelId channel) const {
  const auto plain = box_.open(sealed);
  if (!plain) return std::nullopt;  // not sealed under gc
  const SealedBidPayload payload =
      SealedBidPayload::deserialize(std::span<const std::uint8_t>(*plain));

  const auto& enc = config_.enc;
  // Verify the submitted masked encoding really encodes the sealed
  // scaled value (the bidder cannot under/over-state its price to the
  // TTP).  Paillier backend: decrypt the submitted ciphertext; HMAC
  // backend: recompute the prefix family.
  if (oracle_ != nullptr) {
    if (paillier_ct == 0 || paillier_ct >= oracle_->pub().n_squared ||
        oracle_->decrypt(paillier_ct) != payload.scaled) {
      return std::nullopt;
    }
  } else {
    const crypto::SecretKey key =
        derive_channel_key(gb_master_, channel, config_.per_channel_keys);
    const auto expected = prefix::HashedPrefixSet::of_value(
        key, payload.scaled, enc.scaled_width());
    if (expected != family) return std::nullopt;
  }

  // Consistency between the true bid and the scaled encoding: a positive
  // bid must sit exactly in its slot; a zero bid must either sit in the
  // zero band [0, rd] or be a disguise value in (rd, bmax+rd].
  const std::uint64_t effective = payload.scaled / enc.cr;
  if (payload.true_bid > enc.bmax ||
      (payload.true_bid > 0 && effective != payload.true_bid + enc.rd) ||
      (payload.true_bid == 0 && effective > enc.max_effective())) {
    return std::nullopt;
  }
  return payload;
}

ChargeResult TrustedThirdParty::process(const ChargeQuery& query) const {
  ChargeResult result;
  result.user = query.user;
  result.channel = query.channel;
  if (metrics_ != nullptr) metrics_->counter("ttp.queries").inc();

  const auto payload = open_and_verify(query.sealed, query.value_family,
                                       query.paillier_ct, query.channel);
  if (!payload) {
    result.manipulated = true;
    if (metrics_ != nullptr) metrics_->counter("ttp.manipulations").inc();
    return result;
  }
  if (payload->true_bid == 0) {
    // Disguised or true zero: the win is invalid, no charge (paper §V-B).
    result.valid = false;
    if (metrics_ != nullptr) metrics_->counter("ttp.invalid_charges").inc();
    return result;
  }
  result.valid = true;

  if (rule_ == ChargingRule::kFirstPrice) {
    result.charge = payload->true_bid;
    return result;
  }

  // Second-price extension: the winner pays the runner-up's true bid
  // (zero when the winner stood alone or the runner-up was a disguised
  // zero — a free but valid win, as in a Vickrey auction with no
  // reserve price).
  if (!query.runner_up_sealed.has_value()) {
    result.charge = 0;
    return result;
  }
  LPPA_PROTOCOL_CHECK(query.runner_up_family.has_value(),
                      "runner-up sealed payload without its prefix family");
  const auto runner_up =
      open_and_verify(*query.runner_up_sealed, *query.runner_up_family,
                      query.runner_up_ct, query.channel);
  if (!runner_up) {
    result.manipulated = true;
    result.valid = false;
    if (metrics_ != nullptr) metrics_->counter("ttp.manipulations").inc();
    return result;
  }
  result.charge = std::min(runner_up->true_bid, payload->true_bid);
  return result;
}

std::vector<ChargeResult> TrustedThirdParty::process_batch(
    const std::vector<ChargeQuery>& queries) {
  ++batches_;
  queries_ += queries.size();
  if (metrics_ != nullptr) {
    metrics_->counter("ttp.batches").inc();
    metrics_->histogram("ttp.batch_size", kBatchSizeBuckets)
        .observe(static_cast<double>(queries.size()));
  }
  std::vector<ChargeResult> results;
  results.reserve(queries.size());
  for (const auto& q : queries) results.push_back(process(q));
  return results;
}

}  // namespace lppa::core
