#include "core/encrypted_bid_table.h"

namespace lppa::core {

EncryptedBidTable::EncryptedBidTable(
    const std::vector<BidSubmission>& submissions, std::size_t num_channels)
    : submissions_(&submissions),
      users_(submissions.size()),
      channels_(num_channels) {
  LPPA_REQUIRE(users_ > 0, "EncryptedBidTable requires at least one user");
  LPPA_REQUIRE(channels_ > 0, "EncryptedBidTable requires at least one channel");
  for (const auto& s : submissions) {
    LPPA_REQUIRE(s.channels.size() == channels_,
                 "every submission must cover every channel");
  }
  present_.assign(users_ * channels_, true);
  live_ = users_ * channels_;
}

std::size_t EncryptedBidTable::idx(UserId u, ChannelId r) const {
  LPPA_REQUIRE(u < users_ && r < channels_, "bid table index out of range");
  return u * channels_ + r;
}

bool EncryptedBidTable::has(UserId u, ChannelId r) const {
  return present_[idx(u, r)];
}

void EncryptedBidTable::remove(UserId u, ChannelId r) {
  const std::size_t k = idx(u, r);
  if (present_[k]) {
    present_[k] = false;
    --live_;
  }
}

void EncryptedBidTable::remove_user(UserId u) {
  for (std::size_t r = 0; r < channels_; ++r) {
    const std::size_t k = idx(u, r);
    if (present_[k]) {
      present_[k] = false;
      --live_;
    }
  }
}

std::optional<auction::UserId> EncryptedBidTable::argmax_in_column(
    ChannelId r) const {
  std::optional<UserId> best;
  for (std::size_t u = 0; u < users_; ++u) {
    if (!present_[idx(u, r)]) continue;
    if (!best) {
      best = u;
      continue;
    }
    const auto& challenger = (*submissions_)[u].channels[r];
    const auto& incumbent = (*submissions_)[*best].channels[r];
    // Strictly-greater test keeps the first-seen user on ties, matching
    // the deterministic tie-break of the plaintext BidMatrix.
    if (!encrypted_ge(incumbent, challenger)) best = u;
  }
  return best;
}

bool EncryptedBidTable::empty() const noexcept { return live_ == 0; }

const ChannelBidSubmission& EncryptedBidTable::entry(UserId u,
                                                     ChannelId r) const {
  LPPA_REQUIRE(u < users_ && r < channels_, "bid table index out of range");
  return (*submissions_)[u].channels[r];
}

}  // namespace lppa::core
