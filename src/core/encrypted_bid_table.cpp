#include "core/encrypted_bid_table.h"

namespace lppa::core {

EncryptedBidTable::EncryptedBidTable(
    const std::vector<BidSubmission>& submissions, std::size_t num_channels)
    : submissions_(&submissions),
      users_(submissions.size()),
      channels_(num_channels) {
  LPPA_REQUIRE(users_ > 0, "EncryptedBidTable requires at least one user");
  LPPA_REQUIRE(channels_ > 0, "EncryptedBidTable requires at least one channel");
  for (const auto& s : submissions) {
    LPPA_REQUIRE(s.channels.size() == channels_,
                 "every submission must cover every channel");
  }
  present_.assign(users_ * channels_, true);
  live_ = users_ * channels_;
}

std::size_t EncryptedBidTable::idx(UserId u, ChannelId r) const {
  LPPA_REQUIRE(u < users_ && r < channels_, "bid table index out of range");
  return u * channels_ + r;
}

bool EncryptedBidTable::has(UserId u, ChannelId r) const {
  return present_[idx(u, r)];
}

void EncryptedBidTable::remove(UserId u, ChannelId r) {
  const std::size_t k = idx(u, r);
  if (present_[k]) {
    present_[k] = false;
    --live_;
  }
}

void EncryptedBidTable::remove_user(UserId u) {
  for (std::size_t r = 0; r < channels_; ++r) {
    const std::size_t k = idx(u, r);
    if (present_[k]) {
      present_[k] = false;
      --live_;
    }
  }
}

std::optional<auction::UserId> EncryptedBidTable::argmax_in_column(
    ChannelId r) const {
  std::optional<UserId> best;
  for (std::size_t u = 0; u < users_; ++u) {
    if (!present_[idx(u, r)]) continue;
    if (!best) {
      best = u;
      continue;
    }
    const auto& challenger = (*submissions_)[u].channels[r];
    const auto& incumbent = (*submissions_)[*best].channels[r];
    // Strictly-greater test keeps the first-seen user on ties, matching
    // the deterministic tie-break of the plaintext BidMatrix.
    if (!encrypted_ge(incumbent, challenger)) best = u;
  }
  return best;
}

bool EncryptedBidTable::empty() const noexcept { return live_ == 0; }

Bytes EncryptedBidTable::serialize() const {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(users_));
  w.u32(static_cast<std::uint32_t>(channels_));
  for (const auto& s : *submissions_) {
    w.bytes(s.serialize());
  }
  w.u64(live_);
  // Presence bitmap packed 8 cells per byte, row-major like idx().
  Bytes packed((present_.size() + 7) / 8, 0);
  for (std::size_t k = 0; k < present_.size(); ++k) {
    if (present_[k]) packed[k / 8] |= static_cast<std::uint8_t>(1u << (k % 8));
  }
  w.raw(packed);
  return w.take();
}

EncryptedBidTable EncryptedBidTable::deserialize(
    std::span<const std::uint8_t> wire) {
  ByteReader r(wire);
  EncryptedBidTable table;
  table.users_ = r.u32();
  table.channels_ = r.u32();
  LPPA_PROTOCOL_CHECK(table.users_ > 0 && table.channels_ > 0,
                      "bid table image has no users or channels");
  auto submissions = std::make_shared<std::vector<BidSubmission>>();
  submissions->reserve(table.users_);
  for (std::size_t u = 0; u < table.users_; ++u) {
    BidSubmission s = BidSubmission::deserialize(r.bytes());
    LPPA_PROTOCOL_CHECK(s.channels.size() == table.channels_,
                        "bid table image channel count mismatch");
    submissions->push_back(std::move(s));
  }
  const std::uint64_t stored_live = r.u64();
  const std::size_t cells = table.users_ * table.channels_;
  const Bytes packed = r.raw((cells + 7) / 8);
  LPPA_PROTOCOL_CHECK(r.at_end(), "trailing bytes after bid table image");
  table.present_.assign(cells, false);
  std::size_t live = 0;
  for (std::size_t k = 0; k < cells; ++k) {
    if ((packed[k / 8] >> (k % 8)) & 1u) {
      table.present_[k] = true;
      ++live;
    }
  }
  // Unused trailing bits of the last byte must be zero — a flip there
  // would otherwise be silently accepted.
  for (std::size_t b = cells; b < packed.size() * 8; ++b) {
    LPPA_PROTOCOL_CHECK(((packed[b / 8] >> (b % 8)) & 1u) == 0,
                        "bid table image has garbage padding bits");
  }
  // The live counter is what keeps empty() O(1); restoring it wrong
  // would stall or truncate the allocation loop, so cross-check it
  // against the bitmap instead of trusting either side alone.
  LPPA_PROTOCOL_CHECK(stored_live == live,
                      "bid table image live-cell count mismatch");
  table.live_ = live;
  table.owned_ = std::move(submissions);
  table.submissions_ = table.owned_.get();
  return table;
}

const ChannelBidSubmission& EncryptedBidTable::entry(UserId u,
                                                     ChannelId r) const {
  LPPA_REQUIRE(u < users_ && r < channels_, "bid table index out of range");
  return (*submissions_)[u].channels[r];
}

}  // namespace lppa::core
