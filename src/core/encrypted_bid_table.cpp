#include "core/encrypted_bid_table.h"

#include <algorithm>

#include "common/thread_pool.h"

namespace lppa::core {

namespace {

/// Bottom-up stable merge sort over user ids.  Deliberately hand-rolled
/// instead of std::stable_sort: the comparator runs masked membership
/// tests over UNTRUSTED digests, and a Byzantine submission can make the
/// induced relation inconsistent (not a strict weak ordering).  Feeding
/// that to std::stable_sort is undefined behaviour; a plain merge
/// consumes each element exactly once whatever the comparator answers,
/// so the worst an adversary buys is a scrambled order for the column
/// their forged digests live in — never UB on the auctioneer.
template <typename Greater>
void stable_merge_sort(std::vector<std::uint32_t>& items,
                       const Greater& greater) {
  const std::size_t n = items.size();
  if (n < 2) return;
  std::vector<std::uint32_t> buf(n);
  for (std::size_t width = 1; width < n; width *= 2) {
    for (std::size_t lo = 0; lo + width < n; lo += 2 * width) {
      const std::size_t mid = lo + width;
      const std::size_t hi = std::min(n, mid + width);
      std::size_t a = lo, b = mid, o = lo;
      while (a < mid && b < hi) {
        // The right run overtakes only when strictly greater, which keeps
        // the sort stable: equal masked bids stay in increasing-id order.
        buf[o++] = greater(items[b], items[a]) ? items[b++] : items[a++];
      }
      while (a < mid) buf[o++] = items[a++];
      while (b < hi) buf[o++] = items[b++];
      std::copy(buf.begin() + static_cast<std::ptrdiff_t>(lo),
                buf.begin() + static_cast<std::ptrdiff_t>(hi),
                items.begin() + static_cast<std::ptrdiff_t>(lo));
    }
  }
}

}  // namespace

EncryptedBidTable::EncryptedBidTable(
    const std::vector<BidSubmission>& submissions, std::size_t num_channels,
    ArgmaxStrategy strategy, std::size_t sort_threads,
    const crypto::BidBackend* backend)
    : submissions_(&submissions),
      users_(submissions.size()),
      channels_(num_channels),
      backend_(&crypto::resolve_backend(backend)),
      strategy_(strategy) {
  LPPA_REQUIRE(users_ > 0, "EncryptedBidTable requires at least one user");
  LPPA_REQUIRE(channels_ > 0, "EncryptedBidTable requires at least one channel");
  for (const auto& s : submissions) {
    LPPA_REQUIRE(s.channels.size() == channels_,
                 "every submission must cover every channel");
  }
  present_.assign(users_ * channels_, true);
  live_ = users_ * channels_;
  if (strategy_ == ArgmaxStrategy::kSortedColumns) {
    build_column_orders(sort_threads);
  }
}

EncryptedBidTable EncryptedBidTable::subset_view(
    const std::vector<BidSubmission>& all, std::size_t num_channels,
    std::vector<std::uint32_t> members, ArgmaxStrategy strategy,
    std::size_t sort_threads, const crypto::BidBackend* backend) {
  EncryptedBidTable t;
  t.submissions_ = &all;
  t.members_ = std::move(members);
  t.users_ = t.members_.size();
  t.channels_ = num_channels;
  t.backend_ = &crypto::resolve_backend(backend);
  t.strategy_ = strategy;
  LPPA_REQUIRE(t.users_ > 0, "EncryptedBidTable requires at least one user");
  LPPA_REQUIRE(t.channels_ > 0,
               "EncryptedBidTable requires at least one channel");
  for (const std::uint32_t id : t.members_) {
    LPPA_REQUIRE(id < all.size(), "subset member id out of range");
    LPPA_REQUIRE(all[id].channels.size() == t.channels_,
                 "every submission must cover every channel");
  }
  t.present_.assign(t.users_ * t.channels_, true);
  t.live_ = t.users_ * t.channels_;
  if (strategy == ArgmaxStrategy::kSortedColumns) {
    t.build_column_orders(sort_threads);
  }
  return t;
}

void EncryptedBidTable::build_column_orders(std::size_t sort_threads) {
  order_.assign(channels_, {});
  head_.assign(channels_, 0);
  // Columns are fully independent, so the per-column sorts parallelise
  // with no shared mutable state and a thread-count-independent result.
  parallel_for(channels_, sort_threads, [&](std::size_t r) {
    auto& ord = order_[r];
    ord.resize(users_);
    for (std::size_t u = 0; u < users_; ++u) {
      ord[u] = static_cast<std::uint32_t>(u);
    }
    stable_merge_sort(ord, [&](std::uint32_t u, std::uint32_t v) {
      // u strictly greater than v in the masked order:  NOT (v >= u).
      return !backend_->ge(sub(v).channels[r], sub(u).channels[r]);
    });
  });
}

std::size_t EncryptedBidTable::idx(UserId u, ChannelId r) const {
  LPPA_REQUIRE(u < users_ && r < channels_, "bid table index out of range");
  return u * channels_ + r;
}

bool EncryptedBidTable::has(UserId u, ChannelId r) const {
  return present_[idx(u, r)];
}

void EncryptedBidTable::remove(UserId u, ChannelId r) {
  const std::size_t k = idx(u, r);
  if (present_[k]) {
    present_[k] = false;
    --live_;
  }
}

void EncryptedBidTable::remove_user(UserId u) {
  for (std::size_t r = 0; r < channels_; ++r) {
    const std::size_t k = idx(u, r);
    if (present_[k]) {
      present_[k] = false;
      --live_;
    }
  }
}

void EncryptedBidTable::insert_user(UserId u) {
  LPPA_REQUIRE(u < users_, "bid table index out of range");
  for (std::size_t r = 0; r < channels_; ++r) {
    LPPA_REQUIRE(!present_[u * channels_ + r],
                 "insert_user requires a fully tombstoned slot");
  }
  for (std::size_t r = 0; r < channels_; ++r) {
    present_[u * channels_ + r] = true;
  }
  live_ += channels_;
  if (strategy_ != ArgmaxStrategy::kSortedColumns) return;
  const auto uid = static_cast<std::uint32_t>(u);
  for (std::size_t r = 0; r < channels_; ++r) {
    auto& ord = order_[r];
    std::size_t& h = head_[r];
    // Drop u's stale position first — the submission bytes behind the
    // slot were replaced, so the old rank means nothing.  Erasing a
    // (tombstoned) entry before the cursor shifts the cursor with it.
    const auto stale = std::find(ord.begin(), ord.end(), uid);
    LPPA_REQUIRE(stale != ord.end(), "column order lost a user id");
    if (static_cast<std::size_t>(stale - ord.begin()) < h) --h;
    ord.erase(stale);
    // Canonical position: descending masked bid, ties in increasing id —
    // exactly where the stable merge sort of a full rebuild places u.
    const auto& su = sub(u).channels[r];
    std::size_t p = 0;
    while (p < ord.size()) {
      const auto& sv = sub(ord[p]).channels[r];
      if (!backend_->ge(sv, su)) break;  // u strictly greater than ord[p]
      if (backend_->ge(su, sv) && uid < ord[p]) break;  // masked tie
      ++p;
    }
    ord.insert(ord.begin() + static_cast<std::ptrdiff_t>(p), uid);
    // Resurrection: a live entry may now sit before the cursor; pull the
    // cursor back so the tombstone-skip memoisation stays sound.
    if (p < h) h = p;
  }
}

std::optional<auction::UserId> EncryptedBidTable::argmax_in_column(
    ChannelId r) const {
  return strategy_ == ArgmaxStrategy::kSortedColumns ? argmax_sorted(r)
                                                     : argmax_scan(r);
}

std::optional<auction::UserId> EncryptedBidTable::argmax_sorted(
    ChannelId r) const {
  LPPA_REQUIRE(r < channels_, "bid table index out of range");
  const auto& ord = order_[r];
  std::size_t& h = head_[r];
  // Skip tombstones.  The only resurrection path (insert_user) pulls the
  // cursor back over the revived entry, so the skip is sound memoisation;
  // total cursor movement over a round is O(n) per column.
  while (h < ord.size() && !present_[ord[h] * channels_ + r]) ++h;
  if (h == ord.size()) return std::nullopt;
  return static_cast<UserId>(ord[h]);
}

std::optional<auction::UserId> EncryptedBidTable::argmax_scan(
    ChannelId r) const {
  std::optional<UserId> best;
  for (std::size_t u = 0; u < users_; ++u) {
    if (!present_[idx(u, r)]) continue;
    if (!best) {
      best = u;
      continue;
    }
    const auto& challenger = sub(u).channels[r];
    const auto& incumbent = sub(*best).channels[r];
    // Strictly-greater test keeps the first-seen user on ties, matching
    // the deterministic tie-break of the plaintext BidMatrix.
    if (!backend_->ge(incumbent, challenger)) best = u;
  }
  return best;
}

bool EncryptedBidTable::empty() const noexcept { return live_ == 0; }

Bytes EncryptedBidTable::serialize() const {
  LPPA_REQUIRE(members_.empty(),
               "subset (shard) tables do not serialize; emit the global image");
  return serialize_image(*submissions_, channels_, present_, live_, backend_);
}

Bytes EncryptedBidTable::serialize_image(
    const std::vector<BidSubmission>& submissions, std::size_t num_channels,
    const std::vector<bool>& present, std::size_t live,
    const crypto::BidBackend* backend) {
  LPPA_REQUIRE(present.size() == submissions.size() * num_channels,
               "presence bitmap does not match the table dimensions");
  const crypto::BidBackend& be = crypto::resolve_backend(backend);
  ByteWriter w;
  // HMAC images stay untagged (the seed format, bit-identical); other
  // backends lead with a magic u32 carrying their id.  The magic's high
  // bit is what restore keys off — a user count never has it set.
  if (be.id() != crypto::BidBackendId::kHmacPrefix) {
    w.u32(crypto::kImageMagic |
          static_cast<std::uint32_t>(static_cast<std::uint8_t>(be.id())));
  }
  w.u32(static_cast<std::uint32_t>(submissions.size()));
  w.u32(static_cast<std::uint32_t>(num_channels));
  for (const auto& s : submissions) {
    w.bytes(s.serialize());
  }
  w.u64(live);
  // Presence bitmap packed 8 cells per byte, row-major like idx().
  Bytes packed((present.size() + 7) / 8, 0);
  for (std::size_t k = 0; k < present.size(); ++k) {
    if (present[k]) packed[k / 8] |= static_cast<std::uint8_t>(1u << (k % 8));
  }
  w.raw(packed);
  return w.take();
}

EncryptedBidTable EncryptedBidTable::deserialize(
    std::span<const std::uint8_t> wire, ArgmaxStrategy strategy,
    std::size_t sort_threads, const crypto::BidBackend* backend) {
  ByteReader r(wire);
  EncryptedBidTable table;
  table.backend_ = &crypto::resolve_backend(backend);
  // Backend tag: legacy (HMAC) images start with the u32 user count,
  // whose high bit is never set; tagged images start with the magic.
  const std::uint32_t first = r.u32();
  crypto::BidBackendId image_backend = crypto::BidBackendId::kHmacPrefix;
  if ((first & 0x80000000u) != 0) {
    LPPA_PROTOCOL_CHECK((first & crypto::kImageMagicMask) ==
                            crypto::kImageMagic,
                        "bid table image has an unrecognised backend tag");
    image_backend =
        static_cast<crypto::BidBackendId>(static_cast<std::uint8_t>(first));
    table.users_ = r.u32();
  } else {
    table.users_ = first;
  }
  LPPA_PROTOCOL_CHECK(
      image_backend == table.backend_->id(),
      std::string("snapshot backend mismatch: image backend id ") +
          std::to_string(static_cast<int>(image_backend)) +
          ", session backend " + table.backend_->name());
  table.channels_ = r.u32();
  LPPA_PROTOCOL_CHECK(table.users_ > 0 && table.channels_ > 0,
                      "bid table image has no users or channels");
  auto submissions = std::make_shared<std::vector<BidSubmission>>();
  submissions->reserve(table.users_);
  for (std::size_t u = 0; u < table.users_; ++u) {
    BidSubmission s = BidSubmission::deserialize(r.bytes());
    LPPA_PROTOCOL_CHECK(s.channels.size() == table.channels_,
                        "bid table image channel count mismatch");
    submissions->push_back(std::move(s));
  }
  const std::uint64_t stored_live = r.u64();
  const std::size_t cells = table.users_ * table.channels_;
  const Bytes packed = r.raw((cells + 7) / 8);
  LPPA_PROTOCOL_CHECK(r.at_end(), "trailing bytes after bid table image");
  table.present_.assign(cells, false);
  std::size_t live = 0;
  for (std::size_t k = 0; k < cells; ++k) {
    if ((packed[k / 8] >> (k % 8)) & 1u) {
      table.present_[k] = true;
      ++live;
    }
  }
  // Unused trailing bits of the last byte must be zero — a flip there
  // would otherwise be silently accepted.
  for (std::size_t b = cells; b < packed.size() * 8; ++b) {
    LPPA_PROTOCOL_CHECK(((packed[b / 8] >> (b % 8)) & 1u) == 0,
                        "bid table image has garbage padding bits");
  }
  // The live counter is what keeps empty() O(1); restoring it wrong
  // would stall or truncate the allocation loop, so cross-check it
  // against the bitmap instead of trusting either side alone.
  LPPA_PROTOCOL_CHECK(stored_live == live,
                      "bid table image live-cell count mismatch");
  table.live_ = live;
  table.owned_ = std::move(submissions);
  table.submissions_ = table.owned_.get();
  // Column orders are a pure function of the submissions, so they are
  // rebuilt rather than shipped: the wire format stays byte-identical to
  // the seed, and a restored table answers argmax exactly like the one
  // that was snapshotted (cursors re-advance past tombstones lazily).
  table.strategy_ = strategy;
  if (strategy == ArgmaxStrategy::kSortedColumns) {
    table.build_column_orders(sort_threads);
  }
  return table;
}

const ChannelBidSubmission& EncryptedBidTable::entry(UserId u,
                                                     ChannelId r) const {
  LPPA_REQUIRE(u < users_ && r < channels_, "bid table index out of range");
  return sub(u).channels[r];
}

}  // namespace lppa::core
