// LppaAdversary: the curious-but-honest auctioneer attacking an LPPA
// round (paper §VI-C evaluation).
//
// Under the advanced submission scheme the auctioneer cannot read bid
// values or compare across channels, but within one channel column the
// masked encoding is order-preserving, so it can still *rank* the bids.
// The attack strategy evaluated in Fig. 5 is: per channel, rank all users
// and declare the channel "available" to the top-fraction of them, then
// run BCM on the inferred availability sets.  BPM is impossible — no
// price values survive the masking.  Zero-disguise poisons the rankings
// with fake positive bids, which is what drives the failure rate up.
#pragma once

#include <vector>

#include "core/attack_metrics.h"
#include "core/bcm.h"
#include "core/lppa_auction.h"

namespace lppa::core {

class LppaAdversary {
 public:
  /// The attacker knows the public coverage dataset (FCC data).
  explicit LppaAdversary(const geo::Dataset& dataset) : dataset_(&dataset) {}

  /// Per-channel descending ranking of users by masked bid order.
  /// rank[r] lists user ids from highest to lowest masked bid on r.
  std::vector<std::vector<UserId>> rank_columns(
      const std::vector<BidSubmission>& bids) const;

  /// Infers AS(i) estimates: channel r is deemed available to the top
  /// ceil(top_fraction * N) users of column r.
  std::vector<std::vector<std::size_t>> infer_available_sets(
      const std::vector<BidSubmission>& bids, double top_fraction) const;

  /// Full attack: inferred availability -> BCM possible sets, one
  /// LocationEstimate per user.
  std::vector<LocationEstimate> attack(const std::vector<BidSubmission>& bids,
                                       double top_fraction) const;

  /// Rank-reusing variants: rank_columns() is the expensive step (O(N log
  /// N) masked comparisons per channel), and the Fig. 5 sweeps evaluate
  /// many top_fraction values against the same submissions — compute the
  /// ranks once and fan the fractions out over them.
  static std::vector<std::vector<std::size_t>> infer_from_ranks(
      const std::vector<std::vector<UserId>>& ranks, std::size_t num_users,
      double top_fraction);

  /// Like infer_from_ranks, but each user's inferred channels come out
  /// most-confident-first (ordered by the user's rank position within the
  /// column): the ordering run_consistent() wants.
  static std::vector<std::vector<std::size_t>> infer_ordered_sets(
      const std::vector<std::vector<UserId>>& ranks, std::size_t num_users,
      double top_fraction);

  /// `consistent` selects the intersection strategy: true (default) is
  /// the rational consistent-subset BCM (skip channels that would empty
  /// the set — disguise then inflates the output region); false is the
  /// naive strict intersection (disguise then empties it outright).
  std::vector<LocationEstimate> attack_from_ranks(
      const std::vector<std::vector<UserId>>& ranks, std::size_t num_users,
      double top_fraction, bool consistent = true) const;

 private:
  const geo::Dataset* dataset_;
};

}  // namespace lppa::core
