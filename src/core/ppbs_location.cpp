#include "core/ppbs_location.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "prefix/digest_index.h"

namespace lppa::core {

Bytes LocationSubmission::serialize() const {
  ByteWriter w;
  x_family.serialize(w);
  y_family.serialize(w);
  x_range.serialize(w);
  y_range.serialize(w);
  return w.take();
}

LocationSubmission LocationSubmission::deserialize(
    std::span<const std::uint8_t> wire) {
  ByteReader r(wire);
  LocationSubmission s;
  s.x_family = prefix::HashedPrefixSet::deserialize(r);
  s.y_family = prefix::HashedPrefixSet::deserialize(r);
  s.x_range = prefix::HashedPrefixSet::deserialize(r);
  s.y_range = prefix::HashedPrefixSet::deserialize(r);
  LPPA_PROTOCOL_CHECK(r.at_end(), "trailing bytes after LocationSubmission");
  return s;
}

PpbsLocation::PpbsLocation(const crypto::SecretKey& g0, int coord_width,
                           std::uint64_t lambda, bool pad_ranges)
    : g0_ctx_(g0), coord_width_(coord_width), lambda_(lambda),
      pad_ranges_(pad_ranges) {
  LPPA_REQUIRE(coord_width >= 1 && coord_width <= prefix::kMaxWidth,
               "coordinate width out of range");
  // The whole interference box must be representable.
  const std::uint64_t max_coord =
      (coord_width >= 64) ? ~0ULL : ((std::uint64_t{1} << coord_width) - 1);
  LPPA_REQUIRE(2 * lambda <= max_coord,
               "interference diameter exceeds the coordinate space");
}

LocationSubmission PpbsLocation::submit(const auction::SuLocation& loc,
                                        Rng& rng) const {
  const std::uint64_t max_coord = (std::uint64_t{1} << coord_width_) - 1;
  LPPA_REQUIRE(loc.x <= max_coord - 2 * lambda_ &&
                   loc.y <= max_coord - 2 * lambda_,
               "location (plus interference radius) does not fit coord_width");

  auto clamp_lo = [this](std::uint64_t v) {
    return v >= 2 * lambda_ ? v - 2 * lambda_ : 0;
  };

  LocationSubmission s;
  s.x_family = prefix::HashedPrefixSet::of_value(g0_ctx_, loc.x, coord_width_);
  s.y_family = prefix::HashedPrefixSet::of_value(g0_ctx_, loc.y, coord_width_);
  s.x_range = prefix::HashedPrefixSet::of_range(
      g0_ctx_, clamp_lo(loc.x), loc.x + 2 * lambda_, coord_width_);
  s.y_range = prefix::HashedPrefixSet::of_range(
      g0_ctx_, clamp_lo(loc.y), loc.y + 2 * lambda_, coord_width_);
  if (pad_ranges_) {
    const std::size_t target = prefix::max_range_prefixes(coord_width_);
    s.x_range.pad_to(target, rng);
    s.y_range.pad_to(target, rng);
  }
  return s;
}

bool PpbsLocation::conflicts(const LocationSubmission& a,
                             const LocationSubmission& b) noexcept {
  // x_i in [x_j - 2λ, x_j + 2λ] and same for y.  The predicate is
  // symmetric in the plaintext, so one direction suffices.
  return prefix::box_match(a.x_family, a.y_family, b.x_range, b.y_range);
}

auction::ConflictGraph PpbsLocation::build_conflict_graph(
    const std::vector<LocationSubmission>& submissions,
    std::size_t num_threads) {
  const std::size_t n = submissions.size();
  auction::ConflictGraph g(n);
  if (n < 2) return g;

  // Index every x-range digest once: digest -> owning submission ids.
  prefix::DigestIndex x_index;
  std::size_t total = 0;
  for (const auto& s : submissions) total += s.x_range.size();
  x_index.reserve(total);
  for (std::size_t j = 0; j < n; ++j) {
    x_index.insert_all(submissions[j].x_range, static_cast<std::uint32_t>(j));
  }

  // Probe phase.  The pairwise build tests, for each pair i < j, whether
  // i's families hit j's ranges (one direction suffices — the plaintext
  // predicate is symmetric).  We reproduce exactly that: probing i's
  // x-family yields every j whose x-range shares a digest with it; only
  // candidates j > i are kept and y-confirmed, so the edge set matches
  // the pairwise build digest-for-digest.  hits[i] is written solely by
  // the worker that owns index i, making the loop race-free and the
  // result independent of the schedule.
  std::vector<std::vector<std::uint32_t>> hits(n);
  parallel_for(n, num_threads, [&](std::size_t i) {
    std::vector<std::uint32_t> candidates;
    for (const auto& d : submissions[i].x_family.digests()) {
      x_index.collect(d, candidates);
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    for (std::uint32_t j : candidates) {
      if (j <= i) continue;
      if (submissions[i].y_family.intersects(submissions[j].y_range)) {
        hits[i].push_back(j);
      }
    }
  });

  for (std::size_t i = 0; i < n; ++i) {
    for (std::uint32_t j : hits[i]) g.add_conflict(i, j);
  }
  return g;
}

auction::ConflictGraph PpbsLocation::build_conflict_graph_pairwise(
    const std::vector<LocationSubmission>& submissions) {
  auction::ConflictGraph g(submissions.size());
  for (std::size_t i = 0; i < submissions.size(); ++i) {
    for (std::size_t j = i + 1; j < submissions.size(); ++j) {
      if (conflicts(submissions[i], submissions[j])) {
        g.add_conflict(i, j);
      }
    }
  }
  return g;
}

}  // namespace lppa::core
