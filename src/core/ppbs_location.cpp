#include "core/ppbs_location.h"

namespace lppa::core {

Bytes LocationSubmission::serialize() const {
  ByteWriter w;
  x_family.serialize(w);
  y_family.serialize(w);
  x_range.serialize(w);
  y_range.serialize(w);
  return w.take();
}

LocationSubmission LocationSubmission::deserialize(
    std::span<const std::uint8_t> wire) {
  ByteReader r(wire);
  LocationSubmission s;
  s.x_family = prefix::HashedPrefixSet::deserialize(r);
  s.y_family = prefix::HashedPrefixSet::deserialize(r);
  s.x_range = prefix::HashedPrefixSet::deserialize(r);
  s.y_range = prefix::HashedPrefixSet::deserialize(r);
  LPPA_PROTOCOL_CHECK(r.at_end(), "trailing bytes after LocationSubmission");
  return s;
}

PpbsLocation::PpbsLocation(const crypto::SecretKey& g0, int coord_width,
                           std::uint64_t lambda, bool pad_ranges)
    : g0_(g0), coord_width_(coord_width), lambda_(lambda),
      pad_ranges_(pad_ranges) {
  LPPA_REQUIRE(coord_width >= 1 && coord_width <= prefix::kMaxWidth,
               "coordinate width out of range");
  // The whole interference box must be representable.
  const std::uint64_t max_coord =
      (coord_width >= 64) ? ~0ULL : ((std::uint64_t{1} << coord_width) - 1);
  LPPA_REQUIRE(2 * lambda <= max_coord,
               "interference diameter exceeds the coordinate space");
}

LocationSubmission PpbsLocation::submit(const auction::SuLocation& loc,
                                        Rng& rng) const {
  const std::uint64_t max_coord = (std::uint64_t{1} << coord_width_) - 1;
  LPPA_REQUIRE(loc.x <= max_coord - 2 * lambda_ &&
                   loc.y <= max_coord - 2 * lambda_,
               "location (plus interference radius) does not fit coord_width");

  auto clamp_lo = [this](std::uint64_t v) {
    return v >= 2 * lambda_ ? v - 2 * lambda_ : 0;
  };

  LocationSubmission s;
  s.x_family = prefix::HashedPrefixSet::of_value(g0_, loc.x, coord_width_);
  s.y_family = prefix::HashedPrefixSet::of_value(g0_, loc.y, coord_width_);
  s.x_range = prefix::HashedPrefixSet::of_range(
      g0_, clamp_lo(loc.x), loc.x + 2 * lambda_, coord_width_);
  s.y_range = prefix::HashedPrefixSet::of_range(
      g0_, clamp_lo(loc.y), loc.y + 2 * lambda_, coord_width_);
  if (pad_ranges_) {
    const std::size_t target = prefix::max_range_prefixes(coord_width_);
    s.x_range.pad_to(target, rng);
    s.y_range.pad_to(target, rng);
  }
  return s;
}

bool PpbsLocation::conflicts(const LocationSubmission& a,
                             const LocationSubmission& b) noexcept {
  // x_i in [x_j - 2λ, x_j + 2λ] and same for y.  The predicate is
  // symmetric in the plaintext, so one direction suffices.
  return prefix::box_match(a.x_family, a.y_family, b.x_range, b.y_range);
}

auction::ConflictGraph PpbsLocation::build_conflict_graph(
    const std::vector<LocationSubmission>& submissions) {
  auction::ConflictGraph g(submissions.size());
  for (std::size_t i = 0; i < submissions.size(); ++i) {
    for (std::size_t j = i + 1; j < submissions.size(); ++j) {
      if (conflicts(submissions[i], submissions[j])) {
        g.add_conflict(i, j);
      }
    }
  }
  return g;
}

}  // namespace lppa::core
