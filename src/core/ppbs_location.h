// PPBS — Private Location Submission protocol (paper §IV-A).
//
// Each SU submits, under the shared HMAC key g0,
//   H(G(loc_x)), H(G(loc_y))                         — its point, masked
//   H(Q([loc_x-2λ, loc_x+2λ])), H(Q([loc_y-2λ, ...])) — its interference
//                                                       box, masked
// and the auctioneer declares i,j in conflict iff i's point families
// intersect j's box ranges on both axes — which holds exactly when
// |Δx| <= 2λ and |Δy| <= 2λ, i.e. the plaintext conflict predicate of
// auction/conflict.h, without the auctioneer learning any coordinate.
#pragma once

#include <vector>

#include "auction/conflict.h"
#include "common/bytes.h"
#include "crypto/keys.h"
#include "prefix/hashed_set.h"

namespace lppa::core {

/// The SU -> auctioneer location message.
struct LocationSubmission {
  prefix::HashedPrefixSet x_family;
  prefix::HashedPrefixSet y_family;
  prefix::HashedPrefixSet x_range;
  prefix::HashedPrefixSet y_range;

  std::size_t wire_size() const noexcept {
    return x_family.wire_size() + y_family.wire_size() + x_range.wire_size() +
           y_range.wire_size();
  }

  Bytes serialize() const;
  static LocationSubmission deserialize(std::span<const std::uint8_t> wire);

  bool operator==(const LocationSubmission&) const = default;
};

class PpbsLocation {
 public:
  /// coord_width: bit width of the coordinate space; every loc +- 2λ must
  /// fit.  pad_ranges: pad each box range cover to the worst case 2w-2
  /// (recommended; hides range-cover cardinality, cf. §IV-C fix (v)).
  PpbsLocation(const crypto::SecretKey& g0, int coord_width,
               std::uint64_t lambda, bool pad_ranges = true);

  /// SU side: masks one location.  `rng` feeds the padding digests.
  LocationSubmission submit(const auction::SuLocation& loc, Rng& rng) const;

  /// Auctioneer side: true iff the protocol says i and j interfere.
  static bool conflicts(const LocationSubmission& a,
                        const LocationSubmission& b) noexcept;

  /// Auctioneer side: reconstructs the full conflict graph via a digest
  /// hash-join — every x-range digest goes into an inverted index
  /// (prefix::DigestIndex), each SU's x-family probes it, and only the
  /// x-axis hits get the y-axis confirmation.  O(n·w) expected instead
  /// of the O(n²·w) all-pairs merge, and bit-identical to the pairwise
  /// build (padding digests collide with probability 2⁻²⁵⁶ and both
  /// paths compare the same digest multisets).  `num_threads` spreads
  /// the probe loop over a thread pool (0 = hardware concurrency); the
  /// resulting graph is independent of the thread count.
  static auction::ConflictGraph build_conflict_graph(
      const std::vector<LocationSubmission>& submissions,
      std::size_t num_threads = 1);

  /// The original all-pairs reference build, kept for differential
  /// testing and as the perf baseline (bench/perf_scaling).
  static auction::ConflictGraph build_conflict_graph_pairwise(
      const std::vector<LocationSubmission>& submissions);

  int coord_width() const noexcept { return coord_width_; }
  std::uint64_t lambda() const noexcept { return lambda_; }

 private:
  /// Midstate-cached HMAC context for g0: every submission hashes ~4w
  /// prefixes under the same key, so the key schedule is absorbed once
  /// here instead of once per digest.  Immutable, hence safe to share
  /// across the parallel submission loop.
  crypto::HmacKeyCtx g0_ctx_;
  int coord_width_;
  std::uint64_t lambda_;
  bool pad_ranges_;
};

}  // namespace lppa::core
