// ShardedBidTable: the partition-aware view of the auctioneer's masked
// bid table — one EncryptedBidTable per shard, stitched back together by
// a deterministic cross-shard argmax merge.
//
// Each shard's table is a subset view over the global submissions vector
// (no submission is copied), covering only the SUs the ShardPlan
// assigned to that tile; shards sort their columns independently and in
// parallel.  A column-max query then asks every shard for its local
// winner (amortised O(1) on the sorted strategy) and merges the at-most
// num_shards candidates with the same masked comparison the global sort
// uses, breaking ties to the lowest global user id.
//
// Why the merge is exact: the masked encoding is order-preserving, so
// the single-partition answer is "the highest-value entry still present,
// lowest user id among equals".  Max over a partition is the max of the
// per-part maxima; the shard-local tie-break (lowest local id, with
// member lists ascending in global id) composed with the merge tie-break
// (lowest global id) yields exactly the same winner — so awards,
// charges, and the winner announcement are byte-identical to the
// unsharded path for ANY shard count and thread count.  The
// shard_differential test suite pins that, including SUs on tile
// borders and tiles narrower than the 2λ halo.
//
// Serialization: the wire image is the GLOBAL EncryptedBidTable image
// (EncryptedBidTable::serialize_image), so PR 3 journal snapshots are
// interchangeable between sharded and unsharded configurations — a
// snapshot taken under num_shards=1 restores into a sharded session and
// vice versa, byte-for-byte, or fails with a typed kProtocol error.
#pragma once

#include <memory>
#include <vector>

#include "core/encrypted_bid_table.h"

namespace lppa::obs {
class MetricsRegistry;
}  // namespace lppa::obs

namespace lppa::core {

class ShardedBidTable final : public auction::BidTableView {
 public:
  /// Builds per-shard tables over `submissions` partitioned by
  /// `shard_of` (shard_of[u] < num_shards; empty shards are legal).
  /// References the submissions; the caller keeps them alive.
  /// `num_threads` parallelises shard-table construction (each shard's
  /// column sort runs serially inside its task); the result is
  /// byte-identical for every thread count.  `metrics`, when set,
  /// records per-shard "shard.table_build" spans, a "shard.argmax" span
  /// per merged query, and the "shard.argmax_merges" counter.
  /// `backend` selects the masked order test for every shard table and
  /// the cross-shard merge (null = the seed HMAC backend).
  ShardedBidTable(const std::vector<BidSubmission>& submissions,
                  std::size_t num_channels, std::vector<std::uint32_t> shard_of,
                  std::size_t num_shards,
                  ArgmaxStrategy strategy = ArgmaxStrategy::kSortedColumns,
                  std::size_t num_threads = 1,
                  obs::MetricsRegistry* metrics = nullptr,
                  const crypto::BidBackend* backend = nullptr);

  /// Re-shards a restored (owning) global table image mid-allocation:
  /// the per-shard tables are rebuilt from the owned submissions and the
  /// global tombstones re-applied, so a recovering sharded auctioneer
  /// answers every query exactly as the table that was snapshotted —
  /// whatever num_shards the snapshotting process ran with.  Throws
  /// LppaError(kProtocol) when the shard map does not fit the image
  /// (wrong population, shard id out of range): a mis-reconfigured
  /// recovery must fail loudly, never silently diverge.
  static ShardedBidTable restore(EncryptedBidTable&& global,
                                 std::vector<std::uint32_t> shard_of,
                                 std::size_t num_shards,
                                 ArgmaxStrategy strategy =
                                     ArgmaxStrategy::kSortedColumns,
                                 std::size_t num_threads = 1,
                                 obs::MetricsRegistry* metrics = nullptr);

  /// The geometry-free balanced partition: user u -> u*num_shards/n.
  /// AuctioneerSession uses it when reconfigured sharded — the masked
  /// domain hides tile geometry from the wire session, and the partition
  /// choice never affects answers, only memory locality.
  static std::vector<std::uint32_t> contiguous_shards(std::size_t n,
                                                      std::size_t num_shards);

  std::size_t num_users() const noexcept override { return users_; }
  std::size_t num_channels() const noexcept override { return channels_; }
  std::size_t num_shards() const noexcept { return shards_.size(); }

  bool has(UserId u, ChannelId r) const override;
  void remove(UserId u, ChannelId r) override;
  void remove_user(UserId u) override;

  /// Churn maintenance: re-activates a fully tombstoned global slot after
  /// the caller replaced its backing submission (see
  /// EncryptedBidTable::insert_user).  The global mirror and the owning
  /// shard's subset table update together; the slot→shard assignment is
  /// fixed at construction, so the re-activated SU re-enters the same
  /// shard it left.
  void insert_user(UserId u);

  /// Deep copy (the per-shard tables live behind unique_ptr, so the
  /// implicit copy is deleted).  Allocation consumes a table; churn
  /// rounds clone the pristine maintained table and allocate on the copy.
  ShardedBidTable clone() const;

  /// Global column maximum: per-shard argmax + masked merge; ties break
  /// to the lowest global user id, matching both single-table
  /// strategies.
  std::optional<UserId> argmax_in_column(ChannelId r) const override;

  bool empty() const noexcept override { return live_ == 0; }

  /// The masked entry by GLOBAL user id (used for charge queries).
  const ChannelBidSubmission& entry(UserId u, ChannelId r) const;

  /// Global EncryptedBidTable-format image (see class comment).
  Bytes serialize() const;

 private:
  ShardedBidTable() = default;  ///< used by clone only

  std::size_t idx(UserId u, ChannelId r) const;
  void build_shards(ArgmaxStrategy strategy, std::size_t num_threads);

  const std::vector<BidSubmission>* submissions_ = nullptr;
  std::shared_ptr<const std::vector<BidSubmission>> owned_;  ///< restore path
  /// The masked order test; never null after construction.  restore()
  /// inherits the deserialized global image's backend.
  const crypto::BidBackend* backend_ = &crypto::hmac_backend();
  std::size_t users_ = 0;
  std::size_t channels_ = 0;
  std::vector<std::uint32_t> shard_of_;     ///< global id -> shard
  std::vector<std::uint32_t> local_index_;  ///< global id -> id inside shard
  std::vector<std::vector<std::uint32_t>> members_;  ///< shard -> global ids
  /// Empty shards hold nullptr (EncryptedBidTable requires >= 1 user).
  std::vector<std::unique_ptr<EncryptedBidTable>> shards_;
  /// Global presence mirror + live counter: authoritative for has() /
  /// empty() / serialize(); removals are forwarded to the owning shard
  /// so its sorted-column cursors keep skipping tombstones.
  std::vector<bool> present_;
  std::size_t live_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace lppa::core
