#include "core/adversary.h"

#include <algorithm>
#include <cmath>

namespace lppa::core {

std::vector<std::vector<auction::UserId>> LppaAdversary::rank_columns(
    const std::vector<BidSubmission>& bids) const {
  LPPA_REQUIRE(!bids.empty(), "no submissions to rank");
  const std::size_t channels = bids.front().channels.size();
  std::vector<std::vector<UserId>> ranks(channels);
  for (std::size_t r = 0; r < channels; ++r) {
    std::vector<UserId> order(bids.size());
    for (UserId u = 0; u < bids.size(); ++u) order[u] = u;
    // encrypted_ge(a, b) <=> s_a >= s_b, so "a strictly greater than b"
    // is !encrypted_ge(b, a); that is a valid strict weak ordering on the
    // (totally ordered) masked values.
    std::stable_sort(order.begin(), order.end(), [&](UserId a, UserId b) {
      return !encrypted_ge(bids[b].channels[r], bids[a].channels[r]);
    });
    ranks[r] = std::move(order);
  }
  return ranks;
}

std::vector<std::vector<std::size_t>> LppaAdversary::infer_from_ranks(
    const std::vector<std::vector<UserId>>& ranks, std::size_t num_users,
    double top_fraction) {
  LPPA_REQUIRE(top_fraction > 0.0 && top_fraction <= 1.0,
               "top_fraction must be in (0, 1]");
  const std::size_t take = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(top_fraction * static_cast<double>(num_users))));

  std::vector<std::vector<std::size_t>> available(num_users);
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    for (std::size_t pos = 0; pos < std::min(take, ranks[r].size()); ++pos) {
      available[ranks[r][pos]].push_back(r);
    }
  }
  return available;
}

std::vector<std::vector<std::size_t>> LppaAdversary::infer_available_sets(
    const std::vector<BidSubmission>& bids, double top_fraction) const {
  return infer_from_ranks(rank_columns(bids), bids.size(), top_fraction);
}

std::vector<std::vector<std::size_t>> LppaAdversary::infer_ordered_sets(
    const std::vector<std::vector<UserId>>& ranks, std::size_t num_users,
    double top_fraction) {
  LPPA_REQUIRE(top_fraction > 0.0 && top_fraction <= 1.0,
               "top_fraction must be in (0, 1]");
  const std::size_t take = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(top_fraction * static_cast<double>(num_users))));

  // Gather (rank position, channel) pairs per user, then order each
  // user's channels by how high the user ranked — the top-of-column
  // guesses are the trustworthy ones.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> scored(
      num_users);
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    for (std::size_t pos = 0; pos < std::min(take, ranks[r].size()); ++pos) {
      scored[ranks[r][pos]].emplace_back(pos, r);
    }
  }
  std::vector<std::vector<std::size_t>> ordered(num_users);
  for (std::size_t u = 0; u < num_users; ++u) {
    std::sort(scored[u].begin(), scored[u].end());
    ordered[u].reserve(scored[u].size());
    for (const auto& [pos, r] : scored[u]) ordered[u].push_back(r);
  }
  return ordered;
}

std::vector<LocationEstimate> LppaAdversary::attack_from_ranks(
    const std::vector<std::vector<UserId>>& ranks, std::size_t num_users,
    double top_fraction, bool consistent) const {
  const auto available =
      consistent ? infer_ordered_sets(ranks, num_users, top_fraction)
                 : infer_from_ranks(ranks, num_users, top_fraction);
  const BcmAttack bcm(*dataset_);
  std::vector<LocationEstimate> estimates;
  estimates.reserve(num_users);
  for (const auto& channels : available) {
    estimates.push_back(LocationEstimate::uniform_over(
        consistent ? bcm.run_consistent(channels)
                   : bcm.run_with_channels(channels)));
  }
  return estimates;
}

std::vector<LocationEstimate> LppaAdversary::attack(
    const std::vector<BidSubmission>& bids, double top_fraction) const {
  return attack_from_ranks(rank_columns(bids), bids.size(), top_fraction);
}

}  // namespace lppa::core
