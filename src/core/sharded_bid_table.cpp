#include "core/sharded_bid_table.h"

#include "common/thread_pool.h"
#include "obs/span.h"

namespace lppa::core {

ShardedBidTable::ShardedBidTable(const std::vector<BidSubmission>& submissions,
                                 std::size_t num_channels,
                                 std::vector<std::uint32_t> shard_of,
                                 std::size_t num_shards,
                                 ArgmaxStrategy strategy,
                                 std::size_t num_threads,
                                 obs::MetricsRegistry* metrics,
                                 const crypto::BidBackend* backend)
    : submissions_(&submissions),
      backend_(&crypto::resolve_backend(backend)),
      users_(submissions.size()),
      channels_(num_channels),
      shard_of_(std::move(shard_of)),
      metrics_(metrics) {
  LPPA_REQUIRE(users_ > 0, "ShardedBidTable requires at least one user");
  LPPA_REQUIRE(channels_ > 0, "ShardedBidTable requires at least one channel");
  LPPA_REQUIRE(num_shards >= 1, "ShardedBidTable requires at least one shard");
  LPPA_REQUIRE(shard_of_.size() == users_,
               "shard map must cover every submission");
  for (const std::uint32_t s : shard_of_) {
    LPPA_REQUIRE(s < num_shards, "shard id out of range");
  }
  for (const auto& s : submissions) {
    LPPA_REQUIRE(s.channels.size() == channels_,
                 "every submission must cover every channel");
  }
  members_.resize(num_shards);
  local_index_.resize(users_);
  for (std::size_t u = 0; u < users_; ++u) {
    auto& m = members_[shard_of_[u]];
    local_index_[u] = static_cast<std::uint32_t>(m.size());
    m.push_back(static_cast<std::uint32_t>(u));
  }
  present_.assign(users_ * channels_, true);
  live_ = users_ * channels_;
  build_shards(strategy, num_threads);
}

void ShardedBidTable::build_shards(ArgmaxStrategy strategy,
                                   std::size_t num_threads) {
  const std::size_t num_shards = members_.size();
  shards_.resize(num_shards);
  // One task per shard; each task sorts its columns serially so nested
  // pool scheduling never happens.  Shards are fully independent, so the
  // tables — and every later answer — are thread-count-invariant.
  parallel_for(num_shards, num_threads, [&](std::size_t s) {
    if (members_[s].empty()) return;
    obs::Span build_span(metrics_, "shard.table_build");
    shards_[s] = std::make_unique<EncryptedBidTable>(
        EncryptedBidTable::subset_view(*submissions_, channels_, members_[s],
                                       strategy, /*sort_threads=*/1,
                                       backend_));
  });
}

ShardedBidTable ShardedBidTable::restore(EncryptedBidTable&& global,
                                         std::vector<std::uint32_t> shard_of,
                                         std::size_t num_shards,
                                         ArgmaxStrategy strategy,
                                         std::size_t num_threads,
                                         obs::MetricsRegistry* metrics) {
  LPPA_REQUIRE(global.owned_ != nullptr,
               "restore needs an owning table (a deserialized image)");
  LPPA_PROTOCOL_CHECK(num_shards >= 1, "restored shard count must be >= 1");
  LPPA_PROTOCOL_CHECK(shard_of.size() == global.num_users(),
                      "shard map does not match the bid table image");
  for (const std::uint32_t s : shard_of) {
    LPPA_PROTOCOL_CHECK(s < num_shards,
                        "shard map entry outside the configured shard count");
  }
  ShardedBidTable table(*global.owned_, global.num_channels(),
                        std::move(shard_of), num_shards, strategy, num_threads,
                        metrics, global.backend_);
  // Keep the submissions alive: the subset views reference the vector
  // the shared_ptr owns.
  table.owned_ = global.owned_;
  table.submissions_ = table.owned_.get();
  // Re-apply the image's tombstones.  Shard cursors skip them lazily, so
  // the restored table resumes exactly where the snapshotted one left
  // off, whatever strategy or shard count either side ran.
  for (std::size_t u = 0; u < table.users_; ++u) {
    for (std::size_t r = 0; r < table.channels_; ++r) {
      if (!global.present_[u * table.channels_ + r]) {
        table.remove(u, r);
      }
    }
  }
  return table;
}

std::vector<std::uint32_t> ShardedBidTable::contiguous_shards(
    std::size_t n, std::size_t num_shards) {
  LPPA_REQUIRE(num_shards >= 1, "shard count must be >= 1");
  std::vector<std::uint32_t> shard_of(n);
  for (std::size_t u = 0; u < n; ++u) {
    shard_of[u] = static_cast<std::uint32_t>(u * num_shards / n);
  }
  return shard_of;
}

std::size_t ShardedBidTable::idx(UserId u, ChannelId r) const {
  LPPA_REQUIRE(u < users_ && r < channels_, "bid table index out of range");
  return u * channels_ + r;
}

bool ShardedBidTable::has(UserId u, ChannelId r) const {
  return present_[idx(u, r)];
}

void ShardedBidTable::remove(UserId u, ChannelId r) {
  const std::size_t k = idx(u, r);
  if (!present_[k]) return;
  present_[k] = false;
  --live_;
  shards_[shard_of_[u]]->remove(local_index_[u], r);
}

void ShardedBidTable::remove_user(UserId u) {
  for (std::size_t r = 0; r < channels_; ++r) {
    remove(u, r);
  }
}

void ShardedBidTable::insert_user(UserId u) {
  LPPA_REQUIRE(u < users_, "bid table index out of range");
  for (std::size_t r = 0; r < channels_; ++r) {
    LPPA_REQUIRE(!present_[u * channels_ + r],
                 "insert_user requires a fully tombstoned slot");
    present_[u * channels_ + r] = true;
  }
  live_ += channels_;
  // u was a member of its shard at construction, so the shard table
  // exists and holds u's (tombstoned) local slot.
  shards_[shard_of_[u]]->insert_user(local_index_[u]);
}

ShardedBidTable ShardedBidTable::clone() const {
  ShardedBidTable copy;
  copy.submissions_ = submissions_;
  copy.owned_ = owned_;
  copy.backend_ = backend_;
  copy.users_ = users_;
  copy.channels_ = channels_;
  copy.shard_of_ = shard_of_;
  copy.local_index_ = local_index_;
  copy.members_ = members_;
  copy.present_ = present_;
  copy.live_ = live_;
  copy.metrics_ = metrics_;
  copy.shards_.resize(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s] != nullptr) {
      copy.shards_[s] = std::make_unique<EncryptedBidTable>(*shards_[s]);
    }
  }
  return copy;
}

std::optional<auction::UserId> ShardedBidTable::argmax_in_column(
    ChannelId r) const {
  LPPA_REQUIRE(r < channels_, "bid table index out of range");
  obs::Span merge_span(metrics_, "shard.argmax");
  std::optional<UserId> best;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s] == nullptr) continue;
    const auto local = shards_[s]->argmax_in_column(r);
    if (!local) continue;
    const UserId g = members_[s][*local];
    if (!best) {
      best = g;
      continue;
    }
    const auto& challenger = (*submissions_)[g].channels[r];
    const auto& incumbent = (*submissions_)[*best].channels[r];
    const bool challenger_ge = backend_->ge(challenger, incumbent);
    // Strictly greater replaces; a masked tie keeps the lower GLOBAL id
    // (global ids interleave across shards, so the explicit comparison —
    // not the visit order — carries the tie-break).  The result is the
    // highest-value live entry with the lowest id among equals: exactly
    // the single-table stable-sort / first-seen-scan winner.
    if (challenger_ge && !backend_->ge(incumbent, challenger)) {
      best = g;
    } else if (challenger_ge && g < *best) {
      best = g;
    }
  }
  if (metrics_ != nullptr) metrics_->counter("shard.argmax_merges").inc();
  return best;
}

const ChannelBidSubmission& ShardedBidTable::entry(UserId u,
                                                   ChannelId r) const {
  LPPA_REQUIRE(u < users_ && r < channels_, "bid table index out of range");
  return (*submissions_)[u].channels[r];
}

Bytes ShardedBidTable::serialize() const {
  return EncryptedBidTable::serialize_image(*submissions_, channels_, present_,
                                            live_, backend_);
}

}  // namespace lppa::core
