// SubmissionValidator: structural admission control for PPBS submissions.
//
// The paper's correctness results (Theorems 1-3) silently assume every
// location and bid submission is well-formed: prefix families with
// exactly w+1 digests, range covers padded to the configured worst case,
// sealed payloads of the right shape.  A malformed submission — whether
// from a buggy SU, a corrupted link, or a Byzantine bidder — must be
// rejected with a typed LppaError(kProtocol) BEFORE it reaches the
// EncryptedBidTable or the conflict-graph build, where it would otherwise
// skew intersections silently or wedge the round.
//
// The validator checks structure only.  It cannot (by design — that is
// the privacy guarantee) check that a digest corresponds to any
// particular plaintext; value-level manipulation is caught later by the
// TTP when it opens the winner's sealed payload (core/ttp.h).
// Duplicate-SU-id detection is the ingestion layer's job
// (proto::AuctioneerSession), which sees sender identities.
#pragma once

#include <optional>
#include <string>

#include "core/lppa_auction.h"

namespace lppa::core {

class SubmissionValidator {
 public:
  explicit SubmissionValidator(const LppaConfig& config);

  /// Throwing forms: LppaError(kProtocol) with a rule-naming message.
  void check_location(const LocationSubmission& s) const;
  void check_bid(const BidSubmission& s) const;

  /// Non-throwing forms: nullopt when valid, else the rejection reason.
  std::optional<std::string> validate_location(
      const LocationSubmission& s) const;
  std::optional<std::string> validate_bid(const BidSubmission& s) const;

  /// Digest count of a well-formed prefix family over `width` bits (w+1).
  static std::size_t family_size(int width) noexcept {
    return static_cast<std::size_t>(width) + 1;
  }

 private:
  std::optional<std::string> validate_family(
      const prefix::HashedPrefixSet& set, int width, const char* what) const;
  std::optional<std::string> validate_range(const prefix::HashedPrefixSet& set,
                                            int width, bool padded,
                                            const char* what) const;

  int coord_width_;
  bool pad_location_ranges_;
  std::size_t num_channels_;
  int bid_width_;          ///< scaled_width of the [0, bmax] bid encoding
  bool pad_bid_ranges_;
  std::size_t sealed_payload_size_;  ///< ciphertext bytes of a SealedBidPayload
  /// The round's crypto backend: HMAC bids keep the legacy prefix-family
  /// structural checks below; Paillier bids delegate the per-cell shape
  /// test to the backend's validate_cell hook (empty families, ciphertext
  /// inside Z*_{n^2}).  Never null.
  const crypto::BidBackend* backend_;
};

}  // namespace lppa::core
