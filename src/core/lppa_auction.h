// LppaAuction: the end-to-end Location Privacy Preserving Dynamic
// Spectrum Auction — PPBS (masked location + bid submission) followed by
// PSD (greedy allocation in the masked domain + TTP-assisted charging).
//
// run() plays all three roles (SUs, auctioneer, TTP) in-process but keeps
// their information sets separate: everything the curious-but-honest
// auctioneer observes during the round is captured in AuctioneerView,
// which is exactly the input the LppaAdversary attacks get.
#pragma once

#include <cstdint>
#include <vector>

#include "auction/allocate.h"
#include "auction/plain_auction.h"
#include "core/encrypted_bid_table.h"
#include "core/ppbs_location.h"
#include "core/ttp.h"

namespace lppa::obs {
class MetricsRegistry;
class Span;
}  // namespace lppa::obs

namespace lppa::core {

struct LppaConfig {
  std::size_t num_channels = 1;
  std::uint64_t lambda = 1;   ///< half interference-square side
  int coord_width = 20;       ///< bits per location coordinate
  PpbsBidConfig bid;          ///< advanced-scheme parameters
  bool pad_location_ranges = true;
  std::size_t ttp_batch_size = 16;  ///< charge queries per TTP flush
  ChargingRule charging_rule = ChargingRule::kFirstPrice;
  /// Worker threads for the SU submission loop and the conflict-graph
  /// probe (0 = hardware concurrency).  Each SU draws from its own
  /// pre-forked RNG stream and writes only its own output slot, so the
  /// outcome is byte-identical for every thread count.
  std::size_t num_threads = 0;
  /// Run every submission through core::SubmissionValidator before it
  /// enters the conflict-graph build / EncryptedBidTable.  In-process
  /// submissions are honest by construction, so this is defence in depth
  /// here; the wire session (proto/) relies on the same validator to
  /// reject Byzantine submissions.
  bool validate_submissions = true;
  /// How the EncryptedBidTable answers column-max queries.  The sorted
  /// default turns the allocation loop from O(n²·w) masked comparisons
  /// into an O(n log n) one-off sort plus O(1) pops; kTournamentScan is
  /// the seed path, kept selectable for differential testing (both yield
  /// byte-identical awards/charges on honest submissions).
  ArgmaxStrategy argmax_strategy = ArgmaxStrategy::kSortedColumns;
  /// Geo-sharded execution (docs/performance.md, "Sharding").  >1 tiles
  /// the coordinate grid into that many partitions (shard/shard_plan.h):
  /// per-shard digest indexes + bid tables build and probe in parallel,
  /// with only boundary index entries exchanged between tiles (the halo)
  /// and a deterministic cross-shard argmax merge.  Awards, charges, and
  /// the winner announcement are byte-identical to the default
  /// single-partition path (1) for every shard count and thread count —
  /// pinned by tests/shard_differential_test.
  std::size_t num_shards = 1;
  /// The resolved crypto backend driving every masked comparison this
  /// round (bid-table sorts, argmax merges, the second-price runner-up
  /// scan).  Null means "resolve from bid.backend": LppaAuction's
  /// constructor fills it in from its own TTP, so embedders only ever
  /// set bid.backend.  Wire sessions that restore snapshots receive the
  /// TTP's backend explicitly through the same field.  Not owned.
  const crypto::BidBackend* backend = nullptr;
  /// Optional observability sink (obs/metrics.h): when set, every round
  /// records per-phase spans (auction.round > submit / validate /
  /// conflict_graph / allocate / charging), phase counters, and argmax
  /// strategy counters into it.  Null (the default) makes every
  /// instrumentation site a branch-and-skip.  Not owned; the caller
  /// keeps the registry alive for the config's lifetime.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Everything the auctioneer (and hence a curious-but-honest attacker)
/// sees in one round.
struct AuctioneerView {
  std::vector<LocationSubmission> locations;
  std::vector<BidSubmission> bids;
  auction::ConflictGraph conflicts{1};
  std::vector<auction::Award> awards;  ///< published winners with validity

  std::size_t location_wire_bytes = 0;
  std::size_t bid_wire_bytes = 0;
};

struct LppaOutcome {
  auction::AuctionOutcome outcome;  ///< TTP-validated awards
  AuctioneerView view;
  std::size_t manipulations_detected = 0;
};

/// Result of one allocation+charging pass over an already-built round
/// state (the maintained-churn entry point below).
struct MaintainedRoundOutcome {
  std::vector<auction::Award> awards;  ///< TTP-validated awards
  std::size_t manipulations_detected = 0;
};

class LppaAuction {
 public:
  LppaAuction(LppaConfig config, std::uint64_t ttp_seed);

  /// Runs one complete round over the true locations/bids.
  LppaOutcome run(const std::vector<auction::SuLocation>& locations,
                  const std::vector<BidVector>& bids, Rng& rng);

  /// The auctioneer+TTP tail of a round over pre-built state: greedy
  /// allocation on `table` (which it consumes — pass a clone of a
  /// maintained table) followed by batched TTP charging.  `bids` backs
  /// the charge queries and the second-price runner-up scan; `live`
  /// marks which roster slots currently participate — dead slots hold
  /// stale masked submissions and must never be consulted as runner-up
  /// candidates (they cannot win: the table has them tombstoned).
  /// run() is exactly this helper applied to a freshly built all-live
  /// round, so maintained churn rounds and from-scratch rounds share one
  /// charging/validation path byte for byte.
  MaintainedRoundOutcome allocate_and_charge(
      const std::vector<BidSubmission>& bids,
      const auction::ConflictGraph& conflicts, auction::BidTableView& table,
      const std::vector<bool>& live, Rng& rng, obs::Span* parent = nullptr);

  const LppaConfig& config() const noexcept { return config_; }
  const TrustedThirdParty& ttp() const noexcept { return ttp_; }
  TrustedThirdParty& ttp() noexcept { return ttp_; }

 private:
  LppaConfig config_;
  TrustedThirdParty ttp_;
};

}  // namespace lppa::core
