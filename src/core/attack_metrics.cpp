#include "core/attack_metrics.h"

#include "common/error.h"
#include "common/math_util.h"

namespace lppa::core {

LocationEstimate LocationEstimate::uniform_over(const CellSet& set) {
  return uniform_over(set.to_indices());
}

LocationEstimate LocationEstimate::uniform_over(std::vector<std::size_t> cells) {
  LocationEstimate e;
  e.cells = std::move(cells);
  return e;
}

AttackMetrics evaluate_attack(const LocationEstimate& estimate,
                              const geo::Grid& grid, const geo::Cell& truth) {
  LPPA_REQUIRE(estimate.weights.empty() ||
                   estimate.weights.size() == estimate.cells.size(),
               "weights must be empty or match the cell list");
  AttackMetrics m;
  m.possible_cells = estimate.cells.size();
  if (estimate.cells.empty()) {
    m.failed = true;
    return m;
  }

  // Normalise weights (uniform when absent).
  std::vector<double> probs;
  if (estimate.weights.empty()) {
    probs.assign(estimate.cells.size(),
                 1.0 / static_cast<double>(estimate.cells.size()));
  } else {
    double total = 0.0;
    for (double w : estimate.weights) {
      LPPA_REQUIRE(w >= 0.0, "attack weights must be non-negative");
      total += w;
    }
    LPPA_REQUIRE(total > 0.0, "attack weights must not all be zero");
    probs.reserve(estimate.weights.size());
    for (double w : estimate.weights) probs.push_back(w / total);
  }

  const std::size_t truth_index = grid.index(truth);
  m.failed = true;
  m.uncertainty_nats = entropy(probs);
  for (std::size_t i = 0; i < estimate.cells.size(); ++i) {
    const geo::Cell cell = grid.cell_at(estimate.cells[i]);
    m.incorrectness_m += probs[i] * grid.cell_distance_m(cell, truth);
    if (estimate.cells[i] == truth_index) m.failed = false;
  }
  return m;
}

AggregateMetrics aggregate(const std::vector<AttackMetrics>& metrics) {
  AggregateMetrics agg;
  agg.samples = metrics.size();
  if (metrics.empty()) return agg;
  for (const auto& m : metrics) {
    agg.mean_uncertainty_nats += m.uncertainty_nats;
    agg.mean_incorrectness_m += m.incorrectness_m;
    agg.failure_rate += m.failed ? 1.0 : 0.0;
    agg.mean_possible_cells += static_cast<double>(m.possible_cells);
    if (!m.failed) {
      ++agg.successes;
      agg.success_uncertainty_nats += m.uncertainty_nats;
      agg.success_incorrectness_m += m.incorrectness_m;
      agg.success_possible_cells += static_cast<double>(m.possible_cells);
    }
  }
  const auto n = static_cast<double>(metrics.size());
  agg.mean_uncertainty_nats /= n;
  agg.mean_incorrectness_m /= n;
  agg.failure_rate /= n;
  agg.mean_possible_cells /= n;
  if (agg.successes > 0) {
    const auto s = static_cast<double>(agg.successes);
    agg.success_uncertainty_nats /= s;
    agg.success_incorrectness_m /= s;
    agg.success_possible_cells /= s;
  }
  return agg;
}

AggregateMetrics average_aggregates(
    const std::vector<AggregateMetrics>& runs) {
  AggregateMetrics avg;
  if (runs.empty()) return avg;
  double success_weight = 0.0;
  for (const auto& run : runs) {
    avg.mean_uncertainty_nats += run.mean_uncertainty_nats;
    avg.mean_incorrectness_m += run.mean_incorrectness_m;
    avg.failure_rate += run.failure_rate;
    avg.mean_possible_cells += run.mean_possible_cells;
    avg.samples += run.samples;
    avg.successes += run.successes;
    const auto w = static_cast<double>(run.successes);
    avg.success_uncertainty_nats += w * run.success_uncertainty_nats;
    avg.success_incorrectness_m += w * run.success_incorrectness_m;
    avg.success_possible_cells += w * run.success_possible_cells;
    success_weight += w;
  }
  const auto n = static_cast<double>(runs.size());
  avg.mean_uncertainty_nats /= n;
  avg.mean_incorrectness_m /= n;
  avg.failure_rate /= n;
  avg.mean_possible_cells /= n;
  if (success_weight > 0.0) {
    avg.success_uncertainty_nats /= success_weight;
    avg.success_incorrectness_m /= success_weight;
    avg.success_possible_cells /= success_weight;
  }
  return avg;
}

}  // namespace lppa::core
