// Partition-aware conflict-graph construction: per-shard digest indexes
// plus a halo exchange of boundary index entries.
//
// The global build (PpbsLocation::build_conflict_graph) joins every SU's
// x-family against ONE index of all x-range digests.  Here each shard
// indexes only the x-ranges of its own tile's SUs *plus its halo* — the
// foreign SUs whose 2λ interference box overlaps the tile — and each SU
// probes only its home shard's index.
//
// Why this finds exactly the global edge set: take a conflicting pair
// (a, b), a < b.  If they share a tile, b's range sits in a's home index
// as a member entry.  If not, the conflict predicate |Δ| <= 2λ puts a
// inside b's interference box, so that box overlaps a's tile and the
// halo exchange has shipped b's range digests into a's home index.
// Either way, probing a discovers candidate b, keeps it (b > a), and
// y-confirms with the same family-vs-range orientation as the global
// build — so the tested digest multisets per pair are identical, and
// with them the graph (up to the same 2^-256 padding-collision caveat
// the indexed-vs-pairwise argument already carries; the global build can
// additionally "test" spurious far pairs that a halo never ships, whose
// x-hit probability is that same 2^-256).  No pair is ever reported
// twice: SU i is probed exactly once, in its home shard, and the j > i
// filter kills the mirror-image discovery.
#pragma once

#include <cstddef>
#include <vector>

#include "core/ppbs_location.h"
#include "shard/shard_plan.h"

namespace lppa::obs {
class MetricsRegistry;
class Span;
}  // namespace lppa::obs

namespace lppa::core {

/// What the sharded build observed — fed to shard.* obs counters and the
/// perf_scaling shard phase JSON.
struct ShardConflictStats {
  std::size_t halo_entries = 0;  ///< (digest, owner) pairs shipped by halos
  std::size_t boundary_sus = 0;  ///< SUs within 2λ of their tile edge
  std::size_t halo_edges = 0;    ///< edges crossing a tile border
  std::size_t local_edges = 0;   ///< edges inside one tile
  std::size_t peak_index_bytes = 0;  ///< largest per-shard DigestIndex
};

/// Builds the conflict graph from per-shard indexes + halo exchange.
/// Bit-identical to build_conflict_graph / the pairwise reference for
/// any shard count and `num_threads`; shards build and probe in parallel
/// (one task per shard, "shard.index_build" / "shard.probe" spans each).
auction::ConflictGraph build_conflict_graph_sharded(
    const std::vector<LocationSubmission>& submissions,
    const shard::ShardAssignment& assignment, std::size_t num_threads,
    obs::MetricsRegistry* metrics = nullptr,
    ShardConflictStats* stats = nullptr);

}  // namespace lppa::core
