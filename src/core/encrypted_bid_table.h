// EncryptedBidTable: the auctioneer's bid table T in the masked domain.
//
// Implements the same BidTableView interface as the plaintext BidMatrix,
// so PSD's greedy allocator (auction/allocate.h) runs unchanged; the only
// difference is that argmax_in_column compares bids via prefix-membership
// intersections instead of integer comparison.
//
// The masked encoding is order-preserving (a >= b iff a's value family
// intersects b's range cover), so the pairwise test induces a total
// preorder on each column.  The default strategy exploits that: each
// column's descending order is built ONCE with O(n log n) masked
// comparisons, and argmax_in_column becomes an amortised O(1) pop that
// skips tombstoned (removed) entries — instead of the seed's O(n)
// tournament re-run every Algorithm-3 iteration (O(n² · w) per round).
// The tournament scan is kept as an explicit strategy because it is the
// differential-testing reference the sorted path must match award-for-
// award, including across serialize → deserialize mid-allocation.
#pragma once

#include <memory>
#include <vector>

#include "auction/allocate.h"
#include "core/ppbs_bid.h"

namespace lppa::core {

/// How argmax_in_column finds the masked column maximum.
enum class ArgmaxStrategy : std::uint8_t {
  /// Build each column's total order up front (O(n log n) masked
  /// comparisons, optionally parallelised across columns), then pop the
  /// first still-present entry per query.  Default.
  kSortedColumns,
  /// The seed implementation: a fresh O(n) masked tournament per query.
  /// Kept as the differential-testing reference and perf baseline.
  kTournamentScan,
};

class EncryptedBidTable final : public auction::BidTableView {
 public:
  /// Holds a reference to the submissions for the duration of the
  /// allocation; the caller keeps them alive.  `sort_threads` spreads the
  /// per-column order construction over the shared thread pool (1 =
  /// serial, 0 = hardware concurrency); columns are sorted independently,
  /// so the resulting orders — and every argmax answer — are identical
  /// for any thread count.
  /// `backend` selects the masked order test (null = the seed HMAC
  /// backend, keeping every pre-backend call site valid); the table only
  /// ever calls its ge() hook.
  EncryptedBidTable(const std::vector<BidSubmission>& submissions,
                    std::size_t num_channels,
                    ArgmaxStrategy strategy = ArgmaxStrategy::kSortedColumns,
                    std::size_t sort_threads = 1,
                    const crypto::BidBackend* backend = nullptr);

  /// A table over the subset of `all` named by `members` (ascending
  /// global ids): user id u of this table is all[members[u]].  This is
  /// how one shard's table sees only its tile's SUs without copying any
  /// submission — the ShardedBidTable owns the member maps and the
  /// global-id translation.  Subset tables answer argmax/has/remove in
  /// LOCAL ids and cannot serialize (serialization is a whole-auction
  /// concern; the sharded wrapper emits the global image).
  static EncryptedBidTable subset_view(
      const std::vector<BidSubmission>& all, std::size_t num_channels,
      std::vector<std::uint32_t> members,
      ArgmaxStrategy strategy = ArgmaxStrategy::kSortedColumns,
      std::size_t sort_threads = 1,
      const crypto::BidBackend* backend = nullptr);

  std::size_t num_users() const noexcept override { return users_; }
  std::size_t num_channels() const noexcept override { return channels_; }

  bool has(UserId u, ChannelId r) const override;
  void remove(UserId u, ChannelId r) override;
  void remove_user(UserId u) override;

  /// Churn maintenance: re-activates a fully tombstoned slot AFTER the
  /// caller replaced the backing submission behind it (the table holds a
  /// reference, so the new masked bytes are already visible through
  /// sub(u)).  All of u's cells become present again and, under
  /// kSortedColumns, u is re-positioned in every column order exactly
  /// where a from-scratch stable sort of the current submissions would
  /// put it — so an incrementally maintained table stays bit-equal to a
  /// rebuilt one.  Cost O(n) per column vs O(n log n) for a rebuild.
  void insert_user(UserId u);

  /// Column maximum under the masked order; ties break to the lowest
  /// user id on both strategies (the sort is stable, the scan keeps the
  /// first-seen user).
  std::optional<UserId> argmax_in_column(ChannelId r) const override;

  bool empty() const noexcept override;

  ArgmaxStrategy strategy() const noexcept { return strategy_; }

  /// The masked entry (still present or not); used when assembling charge
  /// queries for the TTP.
  const ChannelBidSubmission& entry(UserId u, ChannelId r) const;

  /// Serializes the full table state — the masked submissions plus the
  /// presence bitmap (packed, with the live-cell count cross-checked at
  /// restore time) — so a recovering auctioneer can rebuild the table
  /// exactly as the allocator left it.  serialize→deserialize→serialize
  /// is byte-identical, which the round-trip property test pins.  The
  /// column orders and cursors are NOT serialized: they are a pure
  /// function of the submissions and are rebuilt on restore, keeping the
  /// wire format identical to the seed (PR 3 recovery images stay valid).
  Bytes serialize() const;

  /// The serialize() wire image as a pure function of its inputs, shared
  /// with ShardedBidTable so a sharded auctioneer's snapshot is
  /// byte-identical to the unsharded one (PR 3 journal images stay
  /// interchangeable across num_shards reconfigurations).  `present` is
  /// the row-major bitmap (users × channels) and `live` its set-bit
  /// count.
  /// Non-HMAC backends prefix the image with a magic u32 carrying the
  /// backend id (crypto::kImageMagic); the seed HMAC format stays
  /// untagged and bit-identical, so PR 3 recovery images remain valid.
  static Bytes serialize_image(const std::vector<BidSubmission>& submissions,
                               std::size_t num_channels,
                               const std::vector<bool>& present,
                               std::size_t live,
                               const crypto::BidBackend* backend = nullptr);

  /// Inverse of serialize().  The restored table OWNS its submissions
  /// (the wire image is self-contained), unlike the referencing
  /// constructor.  Throws LppaError(kProtocol) on truncation, corruption,
  /// a live-cell count that disagrees with the bitmap, or an image whose
  /// backend tag does not match `backend` (in either direction — an
  /// untagged HMAC image refuses a Paillier session and vice versa).
  static EncryptedBidTable deserialize(
      std::span<const std::uint8_t> wire,
      ArgmaxStrategy strategy = ArgmaxStrategy::kSortedColumns,
      std::size_t sort_threads = 1,
      const crypto::BidBackend* backend = nullptr);

  /// Live (still-present) cells; empty() is live_cells() == 0.
  std::size_t live_cells() const noexcept { return live_; }

 private:
  friend class ShardedBidTable;  ///< re-shards restored (owning) images

  EncryptedBidTable() = default;  ///< used by deserialize only

  std::size_t idx(UserId u, ChannelId r) const;

  /// The submission behind (possibly subset-mapped) user id u.
  const BidSubmission& sub(std::size_t u) const {
    return (*submissions_)[members_.empty() ? u : members_[u]];
  }

  /// Builds order_/head_ for every column (kSortedColumns only).
  void build_column_orders(std::size_t sort_threads);

  std::optional<UserId> argmax_scan(ChannelId r) const;
  std::optional<UserId> argmax_sorted(ChannelId r) const;

  const std::vector<BidSubmission>* submissions_ = nullptr;
  /// Subset view (shard) only: local user id -> index into submissions_.
  /// Empty = identity (the table covers the whole vector).
  std::vector<std::uint32_t> members_;
  /// Engaged when the table owns its submissions (deserialize path); the
  /// shared_ptr keeps submissions_ stable across copies and moves.
  std::shared_ptr<const std::vector<BidSubmission>> owned_;
  std::size_t users_ = 0;
  std::size_t channels_ = 0;
  /// The masked order test; never null after construction.
  const crypto::BidBackend* backend_ = &crypto::hmac_backend();
  std::vector<bool> present_;
  std::size_t live_ = 0;  ///< count of set bits in present_, so empty()
                          ///< is O(1) instead of an O(n·m) bitmap scan
                          ///< per allocation iteration

  ArgmaxStrategy strategy_ = ArgmaxStrategy::kSortedColumns;
  /// order_[r]: user ids of column r, descending by masked bid (stable on
  /// ties, so equal bids keep increasing-id order).  Removal is a
  /// tombstone in present_; only insert_user reorders, by splicing the
  /// re-activated user back to its canonical position.
  std::vector<std::vector<std::uint32_t>> order_;
  /// head_[r]: cursor into order_[r].  Everything before it is known
  /// tombstoned, so advancing it from const argmax queries is pure
  /// memoisation (it never skips a present entry).  The one resurrection
  /// path, insert_user, re-establishes the invariant by pulling the
  /// cursor back over the revived entry.
  mutable std::vector<std::size_t> head_;
};

}  // namespace lppa::core
