// EncryptedBidTable: the auctioneer's bid table T in the masked domain.
//
// Implements the same BidTableView interface as the plaintext BidMatrix,
// so PSD's greedy allocator (auction/allocate.h) runs unchanged; the only
// difference is that argmax_in_column compares bids via prefix-membership
// intersections instead of integer comparison.
#pragma once

#include <memory>
#include <vector>

#include "auction/allocate.h"
#include "core/ppbs_bid.h"

namespace lppa::core {

class EncryptedBidTable final : public auction::BidTableView {
 public:
  /// Holds a reference to the submissions for the duration of the
  /// allocation; the caller keeps them alive.
  EncryptedBidTable(const std::vector<BidSubmission>& submissions,
                    std::size_t num_channels);

  std::size_t num_users() const noexcept override { return users_; }
  std::size_t num_channels() const noexcept override { return channels_; }

  bool has(UserId u, ChannelId r) const override;
  void remove(UserId u, ChannelId r) override;
  void remove_user(UserId u) override;

  /// Single-pass tournament: keep the running max, replacing it whenever
  /// the candidate's masked encoding dominates.  O(n) intersections.
  std::optional<UserId> argmax_in_column(ChannelId r) const override;

  bool empty() const noexcept override;

  /// The masked entry (still present or not); used when assembling charge
  /// queries for the TTP.
  const ChannelBidSubmission& entry(UserId u, ChannelId r) const;

  /// Serializes the full table state — the masked submissions plus the
  /// presence bitmap (packed, with the live-cell count cross-checked at
  /// restore time) — so a recovering auctioneer can rebuild the table
  /// exactly as the allocator left it.  serialize→deserialize→serialize
  /// is byte-identical, which the round-trip property test pins.
  Bytes serialize() const;

  /// Inverse of serialize().  The restored table OWNS its submissions
  /// (the wire image is self-contained), unlike the referencing
  /// constructor.  Throws LppaError(kProtocol) on truncation, corruption,
  /// or a live-cell count that disagrees with the bitmap.
  static EncryptedBidTable deserialize(std::span<const std::uint8_t> wire);

 private:
  EncryptedBidTable() = default;  ///< used by deserialize only

  std::size_t idx(UserId u, ChannelId r) const;

  const std::vector<BidSubmission>* submissions_ = nullptr;
  /// Engaged when the table owns its submissions (deserialize path); the
  /// shared_ptr keeps submissions_ stable across copies and moves.
  std::shared_ptr<const std::vector<BidSubmission>> owned_;
  std::size_t users_ = 0;
  std::size_t channels_ = 0;
  std::vector<bool> present_;
  std::size_t live_ = 0;  ///< count of set bits in present_, so empty()
                          ///< is O(1) instead of an O(n·m) bitmap scan
                          ///< per allocation iteration
};

}  // namespace lppa::core
