#include "net/event_loop.h"

#include <sys/epoll.h>

#include <array>
#include <cerrno>
#include <cstring>

namespace lppa::net {

namespace {

std::uint32_t interest(bool want_read, bool want_write) {
  std::uint32_t ev = EPOLLRDHUP;
  if (want_read) ev |= EPOLLIN;
  if (want_write) ev |= EPOLLOUT;
  return ev;
}

}  // namespace

EventLoop::EventLoop() : epoll_(::epoll_create1(EPOLL_CLOEXEC)) {
  if (!epoll_.valid()) {
    throw LppaError(ErrorKind::kState,
                    std::string("epoll_create1: ") + std::strerror(errno));
  }
}

void EventLoop::add(int fd, std::uint64_t token, bool want_read,
                    bool want_write) {
  epoll_event ev{};
  ev.events = interest(want_read, want_write);
  ev.data.u64 = token;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
    throw LppaError(ErrorKind::kState,
                    std::string("epoll_ctl(ADD): ") + std::strerror(errno));
  }
}

void EventLoop::mod(int fd, std::uint64_t token, bool want_read,
                    bool want_write) {
  epoll_event ev{};
  ev.events = interest(want_read, want_write);
  ev.data.u64 = token;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, fd, &ev) < 0) {
    throw LppaError(ErrorKind::kState,
                    std::string("epoll_ctl(MOD): ") + std::strerror(errno));
  }
}

void EventLoop::del(int fd) noexcept {
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr);
}

void EventLoop::wait(int timeout_ms, std::vector<Event>& out) {
  out.clear();
  std::array<epoll_event, 128> events;
  int n;
  do {
    n = ::epoll_wait(epoll_.get(), events.data(),
                     static_cast<int>(events.size()), timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    throw LppaError(ErrorKind::kState,
                    std::string("epoll_wait: ") + std::strerror(errno));
  }
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Event e;
    e.token = events[static_cast<std::size_t>(i)].data.u64;
    const std::uint32_t mask = events[static_cast<std::size_t>(i)].events;
    e.readable = (mask & EPOLLIN) != 0;
    e.writable = (mask & EPOLLOUT) != 0;
    e.hangup = (mask & (EPOLLHUP | EPOLLERR | EPOLLRDHUP)) != 0;
    out.push_back(e);
  }
}

}  // namespace lppa::net
