#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace lppa::net {

namespace {

[[noreturn]] void raise_errno(const std::string& what) {
  throw LppaError(ErrorKind::kState, what + ": " + std::strerror(errno));
}

}  // namespace

void Fd::close_fd() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::string Endpoint::label() const {
  if (kind == Kind::kTcp) return "tcp:127.0.0.1:" + std::to_string(port);
  return "unix:" + path;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    raise_errno("fcntl(O_NONBLOCK)");
  }
}

int take_socket_error(int fd) {
  int err = 0;
  socklen_t len = sizeof err;
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
    raise_errno("getsockopt(SO_ERROR)");
  }
  return err;
}

void arm_abortive_close(int fd) {
  struct linger lg;
  lg.l_onoff = 1;
  lg.l_linger = 0;
  if (::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof lg) < 0) {
    raise_errno("setsockopt(SO_LINGER)");
  }
}

Fd listen_on(Endpoint& ep, int backlog) {
  if (ep.kind == Endpoint::Kind::kTcp) {
    Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid()) raise_errno("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(ep.port);
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
        0) {
      raise_errno("bind(" + ep.label() + ")");
    }
    if (::listen(fd.get(), backlog) < 0) raise_errno("listen");
    socklen_t len = sizeof addr;
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) <
        0) {
      raise_errno("getsockname");
    }
    ep.port = ntohs(addr.sin_port);
    set_nonblocking(fd.get());
    return fd;
  }

  LPPA_REQUIRE(!ep.path.empty(), "Unix endpoint needs a path");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  LPPA_REQUIRE(ep.path.size() < sizeof addr.sun_path,
               "Unix socket path too long");
  std::memcpy(addr.sun_path, ep.path.c_str(), ep.path.size() + 1);
  ::unlink(ep.path.c_str());  // stale socket from a previous run
  Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) raise_errno("socket(AF_UNIX)");
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    raise_errno("bind(" + ep.label() + ")");
  }
  if (::listen(fd.get(), backlog) < 0) raise_errno("listen");
  set_nonblocking(fd.get());
  return fd;
}

Fd connect_to(const Endpoint& ep) {
  if (ep.kind == Endpoint::Kind::kTcp) {
    Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid()) raise_errno("socket(AF_INET)");
    set_nonblocking(fd.get());
    // Loopback latency is dominated by scheduling, not segment count,
    // but Nagle still delays the small nack/ack frames; disable it.
    const int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(ep.port);
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof addr) < 0 &&
        errno != EINPROGRESS) {
      raise_errno("connect(" + ep.label() + ")");
    }
    return fd;
  }

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  LPPA_REQUIRE(ep.path.size() < sizeof addr.sun_path,
               "Unix socket path too long");
  std::memcpy(addr.sun_path, ep.path.c_str(), ep.path.size() + 1);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) raise_errno("socket(AF_UNIX)");
  set_nonblocking(fd.get());
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 &&
      errno != EINPROGRESS && errno != EAGAIN) {
    raise_errno("connect(" + ep.label() + ")");
  }
  return fd;
}

Fd accept_on(int listen_fd) {
  const int fd = ::accept4(listen_fd, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
      return Fd();
    }
    raise_errno("accept");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Fd(fd);
}

}  // namespace lppa::net
