#include "net/socket_fault.h"

namespace lppa::net {

SocketFaultInjector::SocketFaultInjector(std::uint64_t seed,
                                         SocketFaultSpec spec)
    : seed_(seed), spec_(spec) {
  LPPA_REQUIRE(spec.truncate >= 0 && spec.reset >= 0 && spec.delay >= 0 &&
                   spec.duplicate >= 0 && spec.fragment >= 0,
               "fault probabilities must be non-negative");
  LPPA_REQUIRE(spec.truncate + spec.reset + spec.delay + spec.duplicate +
                       spec.fragment <=
                   1.0,
               "socket fault probabilities must sum to at most 1");
  LPPA_REQUIRE(spec.delay <= 0.0 || spec.max_delay_ticks > 0,
               "delay fault needs max_delay_ticks >= 1");
}

SocketFaultDecision SocketFaultInjector::decide(std::size_t su,
                                                std::size_t seq,
                                                std::size_t frame_bytes) {
  if (su >= charged_.size()) {
    charged_.resize(su + 1, 0);
    next_seq_.resize(su + 1, 0);
  }
  LPPA_REQUIRE(seq >= next_seq_[su],
               "socket fault seq must be strictly increasing per SU");
  next_seq_[su] = seq + 1;
  ++counters_.frames;

  SocketFaultDecision d;
  if (su == spec_.mute_su) {
    d.kind = SocketFaultDecision::Kind::kMute;
    ++counters_.mutes;
    return d;  // targeted and permanent — never charged to the budget
  }
  if (charged_[su] >= spec_.max_faults_per_su) return d;  // budget spent

  // One Rng per decision, domain-separated by (su, seq): the verdict is
  // independent of call interleaving across SUs.
  Rng rng(derive_stream_seed(seed_, (static_cast<std::uint64_t>(su) << 20) |
                                        static_cast<std::uint64_t>(seq)));
  const double u = rng.uniform01();
  double edge = spec_.truncate;
  if (u < edge && frame_bytes > 1) {
    d.kind = SocketFaultDecision::Kind::kTruncate;
    // Cut strictly inside the frame so the peer always sees a torn
    // prefix, never an accidental clean delivery.
    d.cut_at = 1 + static_cast<std::size_t>(rng.below(frame_bytes - 1));
    ++counters_.truncations;
  } else if (u < (edge += spec_.reset)) {
    d.kind = SocketFaultDecision::Kind::kReset;
    ++counters_.resets;
  } else if (u < (edge += spec_.delay)) {
    d.kind = SocketFaultDecision::Kind::kDelay;
    d.delay_ticks =
        1 + static_cast<std::size_t>(rng.below(spec_.max_delay_ticks));
    ++counters_.delays;
  } else if (u < (edge += spec_.duplicate)) {
    d.kind = SocketFaultDecision::Kind::kDuplicate;
    ++counters_.duplicates;
  } else if (u < (edge += spec_.fragment)) {
    d.kind = SocketFaultDecision::Kind::kFragment;
    ++counters_.fragments;
  }
  if (d.kind != SocketFaultDecision::Kind::kNone) ++charged_[su];
  return d;
}

void SocketFaultInjector::require_within_deadline(
    std::size_t deadline_ticks) const {
  proto::FaultSpec bridge;
  bridge.delay = spec_.delay;
  bridge.max_delay_ticks = spec_.max_delay_ticks;
  proto::require_delay_within_deadline(bridge, deadline_ticks);
}

}  // namespace lppa::net
