#include "net/frame.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace lppa::net {

// The header is read with memcpy in host order and written through
// ByteWriter's explicit little-endian encoding; they only agree on LE
// hosts (every deployment target of this repo).
static_assert(std::endian::native == std::endian::little,
              "frame header decoding assumes a little-endian host");

Bytes encode_frame(std::span<const std::uint8_t> payload) {
  LPPA_REQUIRE(!payload.empty(), "frame payload must be non-empty");
  LPPA_REQUIRE(payload.size() <= kMaxFramePayload,
               "frame payload exceeds kMaxFramePayload");
  ByteWriter w;
  w.u32(kFrameMagic);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.raw(payload);
  return w.take();
}

void FrameDecoder::feed(std::span<const std::uint8_t> chunk) {
  LPPA_REQUIRE(!poisoned_, "feeding a poisoned FrameDecoder; reset() first");
  buf_.insert(buf_.end(), chunk.begin(), chunk.end());
}

std::optional<Bytes> FrameDecoder::next() {
  LPPA_PROTOCOL_CHECK(!poisoned_, "frame stream lost sync earlier");
  if (buf_.size() - pos_ < kFrameHeaderBytes) return std::nullopt;

  const auto rd32 = [&](std::size_t at) {
    std::uint32_t v;
    std::memcpy(&v, buf_.data() + at, sizeof v);
    return v;  // little-endian host; matches ByteWriter::u32
  };
  const std::uint32_t magic = rd32(pos_);
  if (magic != kFrameMagic) {
    poisoned_ = true;
    LPPA_PROTOCOL_CHECK(false, "bad frame magic: stream desynchronised");
  }
  const std::uint32_t length = rd32(pos_ + 4);
  if (length == 0 || length > kMaxFramePayload) {
    poisoned_ = true;
    LPPA_PROTOCOL_CHECK(false, "frame length out of range");
  }
  if (buf_.size() - pos_ < kFrameHeaderBytes + length) {
    // Incomplete payload; compact the consumed prefix away so a
    // long-lived connection does not grow its buffer without bound.
    if (pos_ > 0) {
      buf_.erase(buf_.begin(),
                 buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
      pos_ = 0;
    }
    return std::nullopt;
  }

  Bytes payload(buf_.begin() + static_cast<std::ptrdiff_t>(pos_ +
                                                           kFrameHeaderBytes),
                buf_.begin() + static_cast<std::ptrdiff_t>(
                                   pos_ + kFrameHeaderBytes + length));
  pos_ += kFrameHeaderBytes + length;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return payload;
}

void FrameDecoder::reset() noexcept {
  buf_.clear();
  pos_ = 0;
  poisoned_ = false;
}

}  // namespace lppa::net
