#include "net/client.h"

#include <algorithm>

#include "obs/metrics.h"

namespace lppa::net {

struct ClientPool::SuPeer {
  enum class State : std::uint8_t {
    kBackoff,     ///< waiting for retry_at, no socket
    kConnecting,  ///< nonblocking connect in flight
    kActive,      ///< submissions sent; serving nacks / awaiting outcome
    kDone,        ///< announcement held
  };

  std::size_t su = 0;
  std::size_t slot = 0;  ///< index into peers_ (the epoll token)
  Bytes location;
  Bytes bid;

  State state = State::kBackoff;
  SteadyClock::time_point retry_at{};  ///< epoch = connect immediately
  std::size_t attempt = 0;             ///< reconnect backoff wave
  std::unique_ptr<Connection> conn;
  std::size_t seq = 0;  ///< fault-injector send-attempt counter
  bool kill_after_flush = false;  ///< truncation fault: RST once flushed

  SteadyClock::time_point first_sent{};
  bool ack_seen = false;
  Bytes announcement;
};

ClientPool::ClientPool(ClientPoolConfig config, std::vector<SuEnvelopes> sus)
    : config_(std::move(config)) {
  LPPA_REQUIRE(!sus.empty(), "client pool needs at least one SU");
  std::size_t max_su = 0;
  for (const SuEnvelopes& e : sus) max_su = std::max(max_su, e.su);
  su_to_peer_.assign(max_su + 1, static_cast<std::size_t>(-1));
  peers_.reserve(sus.size());
  for (SuEnvelopes& e : sus) {
    LPPA_REQUIRE(su_to_peer_[e.su] == static_cast<std::size_t>(-1),
                 "duplicate SU in client pool");
    auto peer = std::make_unique<SuPeer>();
    peer->su = e.su;
    peer->slot = peers_.size();
    peer->location = std::move(e.location);
    peer->bid = std::move(e.bid);
    su_to_peer_[e.su] = peer->slot;
    peers_.push_back(std::move(peer));
  }
}

ClientPool::~ClientPool() = default;

const Bytes& ClientPool::announcement() const {
  for (const auto& peer : peers_) {
    if (peer->state == SuPeer::State::kDone) return peer->announcement;
  }
  throw LppaError(ErrorKind::kState, "no SU finished the round yet");
}

const Bytes& ClientPool::announcement_of(std::size_t su) const {
  LPPA_REQUIRE(su < su_to_peer_.size() &&
                   su_to_peer_[su] != static_cast<std::size_t>(-1),
               "unknown SU");
  return peers_[su_to_peer_[su]]->announcement;
}

void ClientPool::start_connects(SteadyClock::time_point now) {
  for (auto& peer_ptr : peers_) {
    SuPeer& peer = *peer_ptr;
    if (peer.state != SuPeer::State::kBackoff || now < peer.retry_at) {
      continue;
    }
    if (connecting_ >= config_.max_concurrent_connects) return;
    try {
      Fd fd = connect_to(config_.endpoint);
      peer.conn = std::make_unique<Connection>(std::move(fd), peer.slot,
                                               config_.limits, now);
      peer.kill_after_flush = false;
      loop_.add(peer.conn->fd(), peer.slot, /*want_read=*/true,
                /*want_write=*/true);
      peer.state = SuPeer::State::kConnecting;
      ++connecting_;
    } catch (const LppaError&) {
      // Listener gone (auctioneer mid-restart) — back off and retry.
      ++reconnects_;
      ++peer.attempt;
      peer.retry_at =
          now + config_.backoff.backoff_ticks(peer.attempt) * config_.tick;
    }
  }
}

bool ClientPool::send_with_faults(SuPeer& peer, const Bytes& envelope_bytes,
                                  SteadyClock::time_point now) {
  Bytes frame = encode_frame(envelope_bytes);
  SocketFaultDecision d;
  if (config_.faults != nullptr) {
    d = config_.faults->decide(peer.su, peer.seq++, frame.size());
  }
  using Kind = SocketFaultDecision::Kind;
  switch (d.kind) {
    case Kind::kNone:
      peer.conn->enqueue(std::move(frame));
      break;
    case Kind::kTruncate: {
      // Deliver a torn prefix, then die abortively once it flushed: the
      // server sees a half frame closed under it and must not leak any
      // partial state from it.
      Bytes prefix(frame.begin(),
                   frame.begin() + static_cast<std::ptrdiff_t>(d.cut_at));
      peer.conn->enqueue(std::move(prefix));
      peer.kill_after_flush = true;
      break;
    }
    case Kind::kReset:
      drop_connection(peer, /*abortive=*/true, now);
      return false;
    case Kind::kDelay:
      delayed_.push_back(
          {now + d.delay_ticks * config_.tick, peer.slot, std::move(frame)});
      break;
    case Kind::kDuplicate:
      peer.conn->enqueue(Bytes(frame));
      peer.conn->enqueue(std::move(frame));
      break;
    case Kind::kFragment:
      // One byte per send buffer: the server's decoder sees every
      // possible partial-read boundary of this frame.
      for (const std::uint8_t b : frame) {
        peer.conn->enqueue(Bytes(1, b));
      }
      break;
    case Kind::kMute:
      // Swallowed before the socket: the SU simply never arrives, the
      // connection stays healthy.  The wire twin of a drop=1.0 party
      // spec on the bus.
      break;
  }
  peer.conn->on_writable(now);
  if (peer.kill_after_flush && !peer.conn->wants_write()) {
    drop_connection(peer, /*abortive=*/true, now);
    return false;
  }
  return true;
}

void ClientPool::on_connected(SuPeer& peer, SteadyClock::time_point now) {
  peer.state = SuPeer::State::kActive;
  if (peer.first_sent == SteadyClock::time_point{}) peer.first_sent = now;
  // (Re)send both cached envelopes: this is what (re)binds the SU at the
  // server, and redundant halves dedupe there as benign redeliveries.
  if (!send_with_faults(peer, peer.location, now)) return;
  if (!send_with_faults(peer, peer.bid, now)) return;
  loop_.mod(peer.conn->fd(), peer.slot, /*want_read=*/true,
            peer.conn->wants_write());
}

void ClientPool::drop_connection(SuPeer& peer, bool abortive,
                                 SteadyClock::time_point now) {
  if (peer.conn != nullptr) {
    loop_.del(peer.conn->fd());
    if (abortive) arm_abortive_close(peer.conn->fd());
    peer.conn.reset();
  }
  if (peer.state == SuPeer::State::kConnecting) --connecting_;
  if (peer.state == SuPeer::State::kDone) return;
  peer.state = SuPeer::State::kBackoff;
  ++reconnects_;
  ++peer.attempt;
  peer.retry_at =
      now + config_.backoff.backoff_ticks(peer.attempt) * config_.tick;
  if (config_.metrics != nullptr) {
    config_.metrics->counter("net.client_reconnects").inc();
  }
}

void ClientPool::handle_frames(SuPeer& peer, const std::vector<Bytes>& frames,
                               SteadyClock::time_point now) {
  for (const Bytes& frame : frames) {
    std::uint8_t nack_mask = 0;
    bool is_nack = false;
    try {
      const proto::Envelope env = proto::Envelope::deserialize(frame);
      switch (env.type) {
        case proto::MessageType::kWinnerAnnouncement:
          peer.announcement = frame;
          peer.state = SuPeer::State::kDone;
          ++done_;
          round_us_.push_back(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  now - round_started_)
                  .count());
          drop_connection(peer, /*abortive=*/false, now);
          return;
        case proto::MessageType::kSubmissionAck:
          if (!peer.ack_seen) {
            peer.ack_seen = true;
            submit_us_.push_back(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    now - peer.first_sent)
                    .count());
          }
          continue;
        case proto::MessageType::kRetransmitRequest:
          is_nack = true;
          nack_mask = proto::RetransmitRequest::deserialize(env.payload).mask;
          break;
        default:
          continue;  // not addressed to the client protocol
      }
    } catch (const LppaError&) {
      // Damaged nack → full resend; over-answering is safe,
      // under-answering would stall the round (same rule as the bus SU).
      is_nack = true;
      nack_mask =
          proto::RetransmitRequest::kLocation | proto::RetransmitRequest::kBid;
    }
    if (is_nack) {
      if ((nack_mask & proto::RetransmitRequest::kLocation) != 0) {
        if (!send_with_faults(peer, peer.location, now)) return;
      }
      if ((nack_mask & proto::RetransmitRequest::kBid) != 0) {
        if (!send_with_faults(peer, peer.bid, now)) return;
      }
    }
  }
}

void ClientPool::flush_due_delays(SteadyClock::time_point now) {
  std::size_t kept = 0;
  for (DelayedFrame& d : delayed_) {
    if (d.due > now) {
      delayed_[kept++] = std::move(d);
      continue;
    }
    SuPeer& peer = *peers_[d.peer];
    if (peer.state == SuPeer::State::kActive && peer.conn != nullptr) {
      peer.conn->enqueue(std::move(d.frame));
      peer.conn->on_writable(now);
      loop_.mod(peer.conn->fd(), peer.slot, /*want_read=*/true,
                peer.conn->wants_write());
    }
    // Not active: the delayed frame dies with its connection; the
    // reconnect path resends the cached bytes anyway.
  }
  delayed_.resize(kept);
}

bool ClientPool::run(std::chrono::milliseconds timeout) {
  const auto start = SteadyClock::now();
  if (round_started_ == SteadyClock::time_point{}) round_started_ = start;
  const auto deadline = start + timeout;

  std::vector<EventLoop::Event> events;
  std::vector<Bytes> frames;
  while (!all_done()) {
    auto now = SteadyClock::now();
    if (now >= deadline) return false;
    start_connects(now);
    flush_due_delays(now);

    loop_.wait(5, events);
    now = SteadyClock::now();
    for (const EventLoop::Event& ev : events) {
      SuPeer& peer = *peers_[ev.token];
      if (peer.conn == nullptr) continue;

      if (peer.state == SuPeer::State::kConnecting) {
        if (ev.hangup || take_socket_error(peer.conn->fd()) != 0) {
          drop_connection(peer, /*abortive=*/false, now);
          continue;
        }
        if (!ev.writable) continue;
        --connecting_;
        on_connected(peer, now);
        continue;
      }
      if (peer.state != SuPeer::State::kActive) continue;

      if (ev.readable || ev.hangup) {
        frames.clear();
        const Connection::Io io = peer.conn->on_readable(frames, now);
        handle_frames(peer, frames, now);
        if (peer.state != SuPeer::State::kActive || peer.conn == nullptr) {
          continue;
        }
        if (io != Connection::Io::kOk) {
          drop_connection(peer, /*abortive=*/false, now);
          continue;
        }
      }
      if (ev.writable) {
        if (peer.conn->on_writable(now) == Connection::Io::kClosed) {
          drop_connection(peer, /*abortive=*/false, now);
          continue;
        }
        if (peer.kill_after_flush && !peer.conn->wants_write()) {
          drop_connection(peer, /*abortive=*/true, now);
          continue;
        }
      }
      loop_.mod(peer.conn->fd(), peer.slot, /*want_read=*/true,
                peer.conn->wants_write());
    }
  }
  return true;
}

}  // namespace lppa::net
