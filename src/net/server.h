// AuctioneerServer: the auctioneer side of the LPPA round over real
// sockets.
//
// One epoll thread multiplexes every SU connection into a single
// AuctioneerSession — the session code is unchanged from the in-process
// bus path; this layer only moves bytes.  The round logic mirrors
// proto::run_recoverable_wire_auction wave for wave, with the bus's
// logical clock mapped onto wall time (one tick = ServerConfig::tick),
// so a socket round at seed S commits byte-identical awards, charges
// and announcement to a bus round at seed S (net_session_test pins
// this, including under crash and fault injection).
//
// Robustness posture (docs/robustness.md has the full state machine):
//   * admission control — at most max_connections peers; excess accepts
//     are closed on sight, and a per-connection frame budget bounds what
//     any one peer can make us parse;
//   * backpressure — per-connection write queues are bounded; a peer
//     that will not drain its socket is evicted, never buffered without
//     limit;
//   * slow-loris — read/write progress deadlines (TransportLimits);
//   * crashes — a CrashInjector checkpoint firing anywhere in the round
//     tears the server down abortively (RST to every peer), exactly like
//     a process death; the driver rebuilds a new server from the
//     journal, and reconnecting clients redeliver already-sent bytes
//     which dedupe as benign.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "net/connection.h"
#include "net/event_loop.h"
#include "proto/parties.h"
#include "proto/session.h"

namespace lppa::net {

/// Transport-side server policy; the round-side policy (retries,
/// deadline, quorum) lives in SocketRoundOptions.
struct ServerConfig {
  Endpoint endpoint = Endpoint::tcp_loopback();
  /// Admission control: peers accepted concurrently; everyone past the
  /// cap is closed immediately after accept.
  std::size_t max_connections = 2048;
  /// Admission control: total frames one connection may deliver before
  /// it is evicted (valid or not — parsing is the resource defended).
  std::size_t max_frames_per_conn = 64;
  /// listen(2) backlog.  Size it to the expected connect burst: SYNs
  /// past the backlog are dropped and the peers retry on multi-second
  /// retransmission timers, which serialises what should be a stampede.
  /// The kernel clamps this to net.core.somaxconn.
  int listen_backlog = 256;
  TransportLimits limits;
  /// Wall-clock duration of one logical bus tick: backoff waves, round
  /// deadlines and fault delays are all specified in ticks and scheduled
  /// on this clock (see the mapping note in proto/fault.h).
  std::chrono::microseconds tick{1000};
  /// When true the server answers every accepted (or benignly duplicate)
  /// submission with a kSubmissionAck frame — bench/loadgen uses it to
  /// measure end-to-end submit latency.
  bool ack_submissions = false;
  obs::MetricsRegistry* metrics = nullptr;  ///< not owned; may be null
};

/// One scripted churn operation the server applies while admission is
/// still open: SU `user` departs the round (true) or returns to it
/// (false).  See SocketRoundOptions::churn.
struct SocketChurnOp {
  bool depart = true;
  std::size_t user = 0;
};

/// Round policy, mirroring proto::RecoverableSessionConfig field for
/// field (ticks mean wall ticks here, bus ticks there).
struct SocketRoundOptions {
  proto::HardenedSessionConfig hardened;
  std::size_t deadline_ticks = 0;  ///< 0 disables the round deadline
  std::size_t min_quorum = 1;
  std::size_t recovery_cost_ticks = 1;
  /// Scripted churn schedule, applied in order before admission closes.
  /// Each operation is journaled write-ahead by the session and followed
  /// by a CrashPoint::kMidChurn checkpoint; a restarted server resumes
  /// the schedule from AuctioneerSession::churn_ops_applied(), so every
  /// operation lands exactly once across crash/recovery attempts.
  std::vector<SocketChurnOp> churn;
};

class AuctioneerServer {
 public:
  enum class Status : std::uint8_t {
    kRunning,    ///< round in progress
    kPublished,  ///< announcement committed; serving it to late clients
    kCrashed,    ///< CrashSignal fired; rebuild from the journal
    kFailed,     ///< unrecoverable error (quorum, bind, ...) — rethrown
  };

  /// Builds the auctioneer for one round attempt.  Replays `journal`
  /// into a fresh session (crash recovery; an empty journal starts the
  /// round), binds the listen socket (rewriting an ephemeral TCP port
  /// into `server_config.endpoint` — pass the same resolved endpoint to
  /// every restart so clients can reconnect), and spawns the epoll
  /// thread.  `participating[u]` == false marks SU u as a known
  /// non-participant (never nacked, never awaited).  `start_ticks` seeds
  /// the round clock — the driver accumulates recovery costs there.
  /// None of the pointer parameters are owned; journal/report/crashes
  /// must outlive the server, and `report` is only driver-readable after
  /// a terminal status.
  AuctioneerServer(const core::LppaConfig& config, std::size_t num_users,
                   ServerConfig& server_config, SocketRoundOptions round,
                   std::vector<bool> participating,
                   core::TrustedThirdParty& ttp, std::uint64_t seed,
                   proto::RoundJournal* journal, proto::RoundReport* report,
                   proto::CrashInjector* crashes, std::size_t start_ticks);

  /// Stops the loop (if still running) and joins.  Deterministic with
  /// frames still queued: the loop thread is stopped FIRST (so nothing
  /// new is produced), then pool_.stop() drains — and thanks to
  /// ThreadPool's stopped-pool inline fallback the teardown cannot hang
  /// even if a straggling drain races the pool shutdown.
  ~AuctioneerServer();

  AuctioneerServer(const AuctioneerServer&) = delete;
  AuctioneerServer& operator=(const AuctioneerServer&) = delete;

  /// The endpoint clients should dial (ephemeral port resolved).
  const Endpoint& endpoint() const noexcept { return endpoint_; }

  Status status() const;
  /// Blocks until the status leaves kRunning and returns it.
  Status await_terminal();
  /// Rethrows the stored error after a kFailed status.
  [[noreturn]] void rethrow_failure();

  /// Asks the loop to exit (idempotent; the destructor calls it).
  void stop();

  /// Ticks consumed by this attempt (start_ticks + elapsed wall time /
  /// tick); meaningful after a terminal status.
  std::size_t ticks_used() const noexcept { return ticks_used_; }

 private:
  struct Peer;

  void run_loop();
  void loop_body();  ///< throws CrashSignal / LppaError out to run_loop
  void handle_frame(Peer& peer, const Bytes& frame,
                    const std::optional<proto::Envelope>& env,
                    SteadyClock::time_point now);
  void send_to_peer(Peer& peer, Bytes frame, SteadyClock::time_point now);
  void evict(std::uint64_t id, bool abortive, const char* why);
  void close_all_abortive();
  void drive_admission_timers(SteadyClock::time_point now);
  void commit_round();  ///< finalize → allocate → charge → publish
  std::size_t ticks_now(SteadyClock::time_point now) const;
  void set_status(Status s);

  // --- immutable configuration ------------------------------------------
  core::LppaConfig config_;
  std::size_t num_users_;
  ServerConfig server_config_;
  SocketRoundOptions round_;
  std::vector<bool> participating_;
  std::uint64_t seed_;
  proto::RoundJournal* journal_;
  proto::RoundReport* report_;
  proto::CrashInjector* crashes_;
  std::size_t start_ticks_;
  proto::TtpService ttp_service_;

  // --- loop-thread state (only touched by the epoll thread after
  // construction) ---------------------------------------------------------
  proto::AuctioneerSession session_;
  std::size_t wave_ = 0;
  std::size_t churn_next_ = 0;  ///< cursor into round_.churn
  Endpoint endpoint_;
  Fd listener_;
  EventLoop loop_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Peer>> peers_;
  /// Last bound connection per SU — where nacks / acks / the
  /// announcement go.  A reconnect rebinds the SU to its new connection.
  std::unordered_map<std::size_t, std::uint64_t> su_conn_;
  std::uint64_t next_conn_id_ = 1;
  SteadyClock::time_point started_at_;
  SteadyClock::time_point next_wave_at_;
  bool admission_open_ = true;
  Bytes announcement_;
  std::size_t ticks_used_ = 0;

  /// Parses drained frame batches in parallel (Envelope checksums are
  /// the per-frame cost).  Owned by the server so the shutdown ordering
  /// is explicit — see ~AuctioneerServer.
  ThreadPool pool_;

  // --- cross-thread coordination -----------------------------------------
  mutable std::mutex mutex_;
  std::condition_variable status_cv_;
  Status status_ = Status::kRunning;
  std::exception_ptr failure_;
  std::atomic<bool> stop_requested_{false};
  std::thread thread_;
};

}  // namespace lppa::net
