#include "net/server.h"

#include <algorithm>

#include "obs/metrics.h"
#include "proto/journal.h"

namespace lppa::net {

namespace {

constexpr std::uint64_t kListenerToken = 0;

std::uint8_t missing_mask(const proto::AuctioneerSession& session,
                          std::size_t u) {
  return static_cast<std::uint8_t>(
      (session.has_location(u) ? 0 : proto::RetransmitRequest::kLocation) |
      (session.has_bid(u) ? 0 : proto::RetransmitRequest::kBid));
}

Bytes make_nack_frame(std::uint8_t mask) {
  proto::Envelope nack;
  nack.type = proto::MessageType::kRetransmitRequest;
  proto::RetransmitRequest request;
  request.mask = mask;
  nack.payload = request.serialize();
  return encode_frame(nack.serialize());
}

Bytes make_ack_frame(std::uint64_t su, std::uint8_t mask) {
  proto::Envelope ack;
  ack.type = proto::MessageType::kSubmissionAck;
  ack.sender = su;
  proto::SubmissionAck body;
  body.mask = mask;
  ack.payload = body.serialize();
  return encode_frame(ack.serialize());
}

}  // namespace

struct AuctioneerServer::Peer {
  Connection conn;
  bool doomed = false;  ///< marked for eviction after the current batch

  Peer(Fd fd, std::uint64_t id, const TransportLimits& limits,
       SteadyClock::time_point now)
      : conn(std::move(fd), id, limits, now) {}
};

AuctioneerServer::AuctioneerServer(
    const core::LppaConfig& config, std::size_t num_users,
    ServerConfig& server_config, SocketRoundOptions round,
    std::vector<bool> participating, core::TrustedThirdParty& ttp,
    std::uint64_t seed, proto::RoundJournal* journal,
    proto::RoundReport* report, proto::CrashInjector* crashes,
    std::size_t start_ticks)
    : config_(config), num_users_(num_users), server_config_(server_config),
      round_(round), participating_(std::move(participating)), seed_(seed),
      journal_(journal), report_(report), crashes_(crashes),
      start_ticks_(start_ticks), ttp_service_(ttp),
      session_(config, num_users), endpoint_(server_config.endpoint),
      pool_(1) {
  LPPA_REQUIRE(journal_ != nullptr && report_ != nullptr,
               "server needs a journal and a report");
  LPPA_REQUIRE(participating_.size() == num_users_,
               "participating mask must cover every SU");
  LPPA_REQUIRE(round_.min_quorum >= 1,
               "a round needs a quorum of at least 1");
  LPPA_REQUIRE(server_config_.tick.count() > 0, "tick must be positive");

  // Crash recovery: rebuild the session from the journal, then attach it
  // (replay must not re-journal what is already durable).
  wave_ = proto::replay_session_journal(*journal_, session_, num_users_,
                                        *report_);
  // Journaled churn operations have already been re-applied by replay;
  // the scripted schedule resumes right after them.
  churn_next_ = std::min(session_.churn_ops_applied(), round_.churn.size());
  session_.attach_journal(journal_);
  if (journal_->empty()) journal_->append_round_start(num_users_);

  listener_ = listen_on(endpoint_, server_config_.listen_backlog);
  server_config.endpoint = endpoint_;  // ephemeral port resolved
  loop_.add(listener_.get(), kListenerToken, /*want_read=*/true,
            /*want_write=*/false);
  thread_ = std::thread([this] { run_loop(); });
}

AuctioneerServer::~AuctioneerServer() {
  stop();
  if (thread_.joinable()) thread_.join();
  // Members now tear down in reverse order; pool_.stop() (via its
  // destructor) runs only after the loop thread is gone, and the
  // stopped-pool inline fallback covers any other pool user racing us.
}

void AuctioneerServer::stop() { stop_requested_.store(true); }

AuctioneerServer::Status AuctioneerServer::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return status_;
}

AuctioneerServer::Status AuctioneerServer::await_terminal() {
  std::unique_lock<std::mutex> lock(mutex_);
  status_cv_.wait(lock, [this] { return status_ != Status::kRunning; });
  return status_;
}

void AuctioneerServer::rethrow_failure() {
  std::exception_ptr failure;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    failure = failure_;
  }
  if (failure) std::rethrow_exception(failure);
  throw LppaError(ErrorKind::kState, "server failed without a stored error");
}

void AuctioneerServer::set_status(Status s) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // First terminal status wins: a publish followed by the stop-path
    // sweep must not demote kPublished to kFailed.
    if (status_ != Status::kRunning) return;
    status_ = s;
  }
  status_cv_.notify_all();
}

std::size_t AuctioneerServer::ticks_now(SteadyClock::time_point now) const {
  const auto elapsed = now - started_at_;
  return start_ticks_ +
         static_cast<std::size_t>(elapsed / server_config_.tick);
}

void AuctioneerServer::run_loop() {
  try {
    loop_body();
    set_status(Status::kFailed);  // stopped before the round completed
    std::lock_guard<std::mutex> lock(mutex_);
    if (!failure_) {
      failure_ = std::make_exception_ptr(LppaError(
          ErrorKind::kState, "server stopped before the round completed"));
    }
  } catch (const proto::CrashSignal&) {
    // The auctioneer process "died": in-memory session lost, journal
    // survives, every peer sees an RST — exactly what a kernel cleaning
    // up a dead process would send.
    ticks_used_ = ticks_now(SteadyClock::now());
    close_all_abortive();
    set_status(Status::kCrashed);
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      failure_ = std::current_exception();
    }
    ticks_used_ = ticks_now(SteadyClock::now());
    close_all_abortive();
    set_status(Status::kFailed);
  }
}

void AuctioneerServer::loop_body() {
  obs::MetricsRegistry* const m = server_config_.metrics;
  started_at_ = SteadyClock::now();
  next_wave_at_ =
      started_at_ + 2 * round_.hardened.backoff_ticks(wave_) *
                        server_config_.tick;

  // A restart that already committed admission (or allocation) goes
  // straight back to the protocol tail; reconnecting peers only ever
  // redeliver, which dedupes.
  if (session_.admission_closed()) {
    admission_open_ = false;
    commit_round();
  }

  // Scripted churn: apply the remaining departure/return schedule before
  // any submission is ingested.  Each operation is write-ahead journaled
  // inside the session call, so the kMidChurn checkpoint that follows it
  // models a crash with the operation durable but the round unfinished —
  // the restarted server replays the journal and resumes the schedule at
  // churn_next_.
  if (!session_.admission_closed()) {
    while (churn_next_ < round_.churn.size()) {
      const SocketChurnOp& op = round_.churn[churn_next_];
      if (op.depart) {
        session_.churn_depart(op.user);
      } else {
        session_.churn_return(op.user);
      }
      ++churn_next_;
      if (crashes_ != nullptr) {
        crashes_->checkpoint(proto::CrashPoint::kMidChurn);
      }
    }
  }

  std::vector<EventLoop::Event> events;
  std::vector<Bytes> frames;
  std::vector<std::optional<proto::Envelope>> parsed;
  auto last_deadline_scan = started_at_;

  while (!stop_requested_.load()) {
    int timeout_ms = 20;
    if (admission_open_) {
      const auto now = SteadyClock::now();
      const auto until_wave = std::chrono::duration_cast<
          std::chrono::milliseconds>(next_wave_at_ - now).count();
      timeout_ms = static_cast<int>(std::clamp<long long>(until_wave, 0, 20));
    }
    loop_.wait(timeout_ms, events);
    const auto now = SteadyClock::now();

    bool accepted_any = false;
    for (const EventLoop::Event& ev : events) {
      if (ev.token == kListenerToken) {
        for (;;) {
          Fd fd = accept_on(listener_.get());
          if (!fd.valid()) break;
          if (peers_.size() >= server_config_.max_connections) {
            // Admission control: over the cap, close on sight.
            if (m != nullptr) m->counter("net.admission_rejected").inc();
            continue;  // fd destructor closes
          }
          const std::uint64_t id = next_conn_id_++;
          loop_.add(fd.get(), id, /*want_read=*/true, /*want_write=*/false);
          peers_.emplace(id, std::make_unique<Peer>(std::move(fd), id,
                                                    server_config_.limits,
                                                    now));
          if (m != nullptr) {
            m->counter("net.accepted").inc();
            m->gauge("net.connections")
                .set(static_cast<double>(peers_.size()));
          }
        }
        continue;
      }

      auto it = peers_.find(ev.token);
      if (it == peers_.end()) continue;  // evicted earlier this batch
      Peer& peer = *it->second;

      if (ev.readable || ev.hangup) {
        frames.clear();
        const Connection::Io io = peer.conn.on_readable(frames, now);
        if (!frames.empty()) {
          // Envelope parsing (a SHA-256 per frame) fans out over the
          // server's pool; results land in index-addressed slots so the
          // schedule is irrelevant.
          parsed.assign(frames.size(), std::nullopt);
          const std::size_t workers =
              std::min(frames.size() >= 4 ? pool_.worker_count() + 1 : 1,
                       frames.size());
          pool_.run(workers, [&](std::size_t w) {
            for (std::size_t i = w; i < frames.size(); i += workers) {
              try {
                parsed[i] = proto::Envelope::deserialize(frames[i]);
              } catch (const LppaError&) {
              }
            }
          });
          for (std::size_t i = 0; i < frames.size(); ++i) {
            if (m != nullptr) m->counter("net.frames_in").inc();
            if (peer.conn.frames_received > server_config_.max_frames_per_conn) {
              peer.doomed = true;
              if (m != nullptr) m->counter("net.evicted_budget").inc();
              break;
            }
            handle_frame(peer, frames[i], parsed[i], now);
            accepted_any = true;
            if (peer.doomed) break;
          }
        }
        if (peer.doomed) {
          evict(ev.token, /*abortive=*/false, "budget/backpressure");
          continue;
        }
        if (io == Connection::Io::kProtocolError) {
          if (m != nullptr) m->counter("net.protocol_errors").inc();
          ++report_->rejected_messages;
          evict(ev.token, /*abortive=*/false, "protocol");
          continue;
        }
        if (io == Connection::Io::kClosed) {
          evict(ev.token, /*abortive=*/false, "closed");
          continue;
        }
      }
      if (ev.writable) {
        if (peer.conn.on_writable(now) == Connection::Io::kClosed) {
          evict(ev.token, /*abortive=*/false, "closed");
          continue;
        }
      }
      loop_.mod(peer.conn.fd(), ev.token, /*want_read=*/true,
                peer.conn.wants_write());
    }

    // Completing the submission set closes admission without waiting for
    // the next wave timer.
    if (admission_open_ && accepted_any) {
      bool any_missing = false;
      for (const std::size_t u : session_.missing_users()) {
        if (participating_[u]) {
          any_missing = true;
          break;
        }
      }
      if (!any_missing) {
        admission_open_ = false;
        commit_round();
      }
    }

    if (admission_open_) drive_admission_timers(now);

    // Slow-loris / slow-reader sweep, amortised to 20 Hz.
    if (now - last_deadline_scan > std::chrono::milliseconds(50)) {
      last_deadline_scan = now;
      std::vector<std::uint64_t> expired;
      for (const auto& [id, peer] : peers_) {
        if (peer->conn.read_deadline_expired(now) ||
            peer->conn.write_deadline_expired(now)) {
          expired.push_back(id);
        }
      }
      for (const std::uint64_t id : expired) {
        if (m != nullptr) m->counter("net.evicted_deadline").inc();
        evict(id, /*abortive=*/false, "deadline");
      }
    }
  }
  ticks_used_ = std::max(ticks_used_, ticks_now(SteadyClock::now()));
}

void AuctioneerServer::handle_frame(Peer& peer, const Bytes& frame,
                                    const std::optional<proto::Envelope>& env,
                                    SteadyClock::time_point now) {
  // Published: the only service left is handing out the announcement —
  // any frame from any peer (a late joiner, a client that lost the
  // broadcast to a reset) is answered with it.
  if (!announcement_.empty()) {
    send_to_peer(peer, encode_frame(announcement_), now);
    return;
  }

  const bool is_submission =
      env.has_value() &&
      (env->type == proto::MessageType::kLocationSubmission ||
       env->type == proto::MessageType::kBidSubmission);

  switch (session_.try_ingest(frame)) {
    case proto::AuctioneerSession::IngestResult::kAccepted:
      if (crashes_ != nullptr) {
        crashes_->checkpoint(proto::CrashPoint::kAfterIngest);
      }
      break;
    case proto::AuctioneerSession::IngestResult::kDuplicateRedelivery:
      ++report_->duplicate_redeliveries;
      break;
    case proto::AuctioneerSession::IngestResult::kRejected:
    case proto::AuctioneerSession::IngestResult::kEquivocation:
      ++report_->rejected_messages;
      return;  // no binding, no ack for garbage
  }

  if (!is_submission || env->sender >= num_users_) return;
  const auto su = static_cast<std::size_t>(env->sender);

  // (Re)bind the SU to this connection: nacks and the announcement go to
  // the latest socket the SU spoke on.  Duplicates rebind too — after a
  // server restart the redelivered bytes are how a reconnecting client
  // re-identifies itself.
  peer.conn.bound_su = su;
  su_conn_[su] = peer.conn.id();

  if (server_config_.ack_submissions) {
    // Acked for accepted AND duplicate outcomes: under at-least-once
    // delivery the client may be waiting on the ack of a redelivery.
    const std::uint8_t mask =
        env->type == proto::MessageType::kLocationSubmission
            ? proto::RetransmitRequest::kLocation
            : proto::RetransmitRequest::kBid;
    send_to_peer(peer, make_ack_frame(env->sender, mask), now);
  }
}

void AuctioneerServer::send_to_peer(Peer& peer, Bytes frame,
                                    SteadyClock::time_point now) {
  obs::MetricsRegistry* const m = server_config_.metrics;
  if (!peer.conn.enqueue(std::move(frame))) {
    // Backpressure bound hit: the peer is not draining; evict rather
    // than buffer without limit.
    peer.doomed = true;
    if (m != nullptr) m->counter("net.evicted_backpressure").inc();
    return;
  }
  if (m != nullptr) m->counter("net.frames_out").inc();
  peer.conn.on_writable(now);  // opportunistic flush; EAGAIN just parks
}

void AuctioneerServer::evict(std::uint64_t id, bool abortive,
                             const char* /*why*/) {
  auto it = peers_.find(id);
  if (it == peers_.end()) return;
  Peer& peer = *it->second;
  loop_.del(peer.conn.fd());
  if (abortive) arm_abortive_close(peer.conn.fd());
  if (peer.conn.bound_su.has_value()) {
    auto bound = su_conn_.find(*peer.conn.bound_su);
    if (bound != su_conn_.end() && bound->second == id) su_conn_.erase(bound);
  }
  peers_.erase(it);
  if (server_config_.metrics != nullptr) {
    server_config_.metrics->gauge("net.connections")
        .set(static_cast<double>(peers_.size()));
  }
}

void AuctioneerServer::close_all_abortive() {
  std::vector<std::uint64_t> ids;
  ids.reserve(peers_.size());
  for (const auto& [id, peer] : peers_) ids.push_back(id);
  for (const std::uint64_t id : ids) evict(id, /*abortive=*/true, "crash");
  listener_ = Fd();  // stop accepting; the driver rebinds on restart
}

void AuctioneerServer::drive_admission_timers(SteadyClock::time_point now) {
  if (now < next_wave_at_) return;
  obs::MetricsRegistry* const m = server_config_.metrics;

  std::vector<std::size_t> missing;
  for (const std::size_t u : session_.missing_users()) {
    if (participating_[u]) missing.push_back(u);
  }
  if (missing.empty()) {
    admission_open_ = false;
    commit_round();
    return;
  }
  const std::size_t ticks = ticks_now(now);
  if (round_.deadline_ticks > 0 && ticks >= round_.deadline_ticks) {
    // Deadline gone (typically eaten by recoveries): commit with the
    // quorum of journaled submissions instead of waiting out the waves.
    report_->degraded = true;
    admission_open_ = false;
    commit_round();
    return;
  }
  if (wave_ >= round_.hardened.max_retries) {
    admission_open_ = false;
    commit_round();
    return;
  }

  report_->retry_waves = std::max(report_->retry_waves, wave_ + 1);
  for (const std::size_t u : missing) {
    const std::uint8_t mask = missing_mask(session_, u);
    journal_->append_nack(u, mask, wave_);
    if (m != nullptr) m->counter("net.nacks").inc();
    const auto bound = su_conn_.find(u);
    if (bound == su_conn_.end()) continue;  // not (re)connected yet
    const auto it = peers_.find(bound->second);
    if (it == peers_.end()) continue;
    Peer& peer = *it->second;
    send_to_peer(peer, make_nack_frame(mask), now);
    if (peer.doomed) {
      evict(bound->second, /*abortive=*/false, "backpressure");
    } else {
      loop_.mod(peer.conn.fd(), peer.conn.id(), /*want_read=*/true,
                peer.conn.wants_write());
    }
  }
  next_wave_at_ =
      now + 2 * round_.hardened.backoff_ticks(wave_) * server_config_.tick;
  ++wave_;
}

void AuctioneerServer::commit_round() {
  obs::MetricsRegistry* const m = server_config_.metrics;

  if (!session_.allocation_done()) {
    session_.finalize_participants(*report_);
    LPPA_PROTOCOL_CHECK(
        session_.participants().size() >= round_.min_quorum,
        "round below quorum: " + std::to_string(round_.min_quorum) +
            " participants required");
    if (crashes_ != nullptr) {
      crashes_->checkpoint(proto::CrashPoint::kAfterFinalize);
    }

    // Same allocation stream as every bus attempt: rebuild the generator
    // from the seed and discard the SU-side fork the driver spent.
    Rng master(seed_);
    (void)master.fork();
    session_.run_allocation(master);
    if (crashes_ != nullptr) {
      crashes_->checkpoint(proto::CrashPoint::kAfterAllocation);
    }
  }

  // Charging against the co-located TTP service.  The budget check stays
  // (parity with the bus driver's loop shape) even though the in-process
  // call cannot lose batches.
  const std::vector<Bytes> queries = session_.charge_query_envelopes();
  while (!session_.charging_complete()) {
    LPPA_PROTOCOL_CHECK(
        report_->charge_attempts < round_.hardened.max_charge_attempts,
        "TTP unreachable: charging incomplete after retry budget");
    ++report_->charge_attempts;
    for (const Bytes& query : queries) {
      session_.ingest_charge_results(ttp_service_.handle(query));
      if (crashes_ != nullptr) {
        crashes_->checkpoint(proto::CrashPoint::kAfterChargeCommit);
      }
    }
  }

  if (crashes_ != nullptr) {
    crashes_->checkpoint(proto::CrashPoint::kBeforePublish);
  }
  journal_->append(proto::JournalRecordType::kCommitted);

  announcement_ = session_.winner_announcement();
  report_->completed = true;
  report_->journal_records = journal_->num_records();
  report_->journal_bytes = journal_->data().size();
  const auto now = SteadyClock::now();
  ticks_used_ = ticks_now(now);
  if (m != nullptr) m->counter("net.published_rounds").inc();
  set_status(Status::kPublished);

  // Push the announcement to every open connection — it is the public
  // broadcast the bus delivers to everyone, including SUs the round
  // excluded (whose connections may never have identified themselves).
  // Anyone not connected right now gets it as the reply to their next
  // frame.
  const Bytes frame = encode_frame(announcement_);
  std::vector<std::uint64_t> doomed;
  for (const auto& [id, peer_ptr] : peers_) {
    Peer& peer = *peer_ptr;
    send_to_peer(peer, frame, now);
    if (peer.doomed) {
      doomed.push_back(id);
    } else {
      loop_.mod(peer.conn.fd(), peer.conn.id(), /*want_read=*/true,
                peer.conn.wants_write());
    }
  }
  for (const std::uint64_t id : doomed) {
    evict(id, /*abortive=*/false, "backpressure");
  }
}

}  // namespace lppa::net
