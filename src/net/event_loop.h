// Thin epoll wrapper: the readiness engine under the server and the
// client pool.
//
// Level-triggered deliberately: the connection code reads/writes until
// EAGAIN anyway, and level triggering means a frame left half-processed
// (e.g. the per-burst fairness cap fired) is re-reported on the next
// wait() instead of being lost until more bytes arrive — simpler to
// reason about under fault injection than edge-triggered wakeup rules.
#pragma once

#include <cstdint>
#include <vector>

#include "net/socket.h"

namespace lppa::net {

class EventLoop {
 public:
  struct Event {
    std::uint64_t token = 0;
    bool readable = false;
    bool writable = false;
    bool hangup = false;  ///< EPOLLHUP / EPOLLERR / EPOLLRDHUP
  };

  EventLoop();

  /// Registers `fd` under `token` (returned verbatim in events).
  void add(int fd, std::uint64_t token, bool want_read, bool want_write);
  void mod(int fd, std::uint64_t token, bool want_read, bool want_write);
  /// Unregisters; tolerates an fd that was already closed.
  void del(int fd) noexcept;

  /// Blocks up to timeout_ms (0 = poll, <0 = forever) and fills `out`.
  /// EINTR retries internally.
  void wait(int timeout_ms, std::vector<Event>& out);

 private:
  Fd epoll_;
};

}  // namespace lppa::net
