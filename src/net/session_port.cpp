#include "net/session_port.h"

#include <optional>

#include "common/thread_pool.h"

namespace lppa::net {

SocketAuctionResult run_recoverable_socket_auction(
    const core::LppaConfig& config, core::TrustedThirdParty& ttp,
    const std::vector<auction::SuLocation>& locations,
    const std::vector<auction::BidVector>& bids, std::uint64_t seed,
    ServerConfig server_config, SocketRoundOptions round,
    proto::CrashInjector* crashes, SocketFaultInjector* faults,
    const std::vector<std::size_t>& exclude) {
  LPPA_REQUIRE(locations.size() == bids.size(),
               "one location per bid vector required");
  LPPA_REQUIRE(!bids.empty(), "auction requires at least one bidder");
  const std::size_t n = bids.size();

  std::vector<bool> participating(n, true);
  for (const std::size_t u : exclude) {
    LPPA_REQUIRE(u < n, "excluded SU index out of range");
    participating[u] = false;
  }
  if (faults != nullptr) {
    faults->require_within_deadline(round.deadline_ticks);
  }

  SocketAuctionResult result;
  proto::RoundReport& report = result.report;
  report.num_users = n;
  report.deadline_ticks = round.deadline_ticks;

  // --- SU side: mask exactly once, cache the bytes forever ---------------
  // Identical RNG discipline to the bus drivers: one boot fork for all
  // SU-side randomness, per-SU forks in index order whether or not the
  // SU participates, so socket and bus runs (and runs excluding the
  // other path's losses) regenerate byte-identical submissions.
  const core::SuKeyBundle keys = ttp.su_keys();
  std::vector<SuEnvelopes> endpoints;
  {
    Rng boot(seed);
    Rng su_master = boot.fork();
    std::vector<Rng> su_rngs;
    su_rngs.reserve(n);
    for (std::size_t u = 0; u < n; ++u) su_rngs.push_back(su_master.fork());

    std::vector<std::optional<SuEnvelopes>> built(n);
    parallel_for(n, 0, [&](std::size_t u) {
      if (!participating[u]) return;
      const proto::SuClient client(u, config, keys);
      SuEnvelopes e;
      e.su = u;
      e.location = client.location_envelope(locations[u], su_rngs[u]);
      e.bid = client.bid_envelope(bids[u], su_rngs[u]);
      built[u] = std::move(e);
    });
    for (std::size_t u = 0; u < n; ++u) {
      if (!built[u].has_value()) continue;
      result.envelopes_built += 2;
      endpoints.push_back(std::move(*built[u]));
    }
  }
  LPPA_REQUIRE(!endpoints.empty(), "every SU is excluded from the round");

  // --- Durable state: what a crash cannot erase --------------------------
  proto::RoundJournal journal;
  std::size_t ticks = 0;
  std::optional<ClientPool> pool;

  // Generous wall ceiling so a wedged round fails loudly instead of
  // hanging the caller; sized for the slowest sanitized crash-matrix
  // sweeps, not for the happy path (which ends in milliseconds).
  const auto hard_deadline =
      SteadyClock::now() + std::chrono::seconds(120);
  const auto check_wall = [&] {
    LPPA_PROTOCOL_CHECK(SteadyClock::now() < hard_deadline,
                        "socket round wedged: wall ceiling reached");
  };

  for (;;) {
    check_wall();
    AuctioneerServer server(config, n, server_config, round, participating,
                            ttp, seed, &journal, &report, crashes, ticks);
    if (!pool.has_value()) {
      // First server bound the endpoint (ephemeral port now resolved);
      // every restart rebinds the same address.
      ClientPoolConfig client_config;
      client_config.endpoint = server_config.endpoint;
      client_config.backoff = round.hardened;
      client_config.tick = server_config.tick;
      client_config.limits = server_config.limits;
      client_config.faults = faults;
      client_config.metrics = server_config.metrics;
      pool.emplace(std::move(client_config), std::move(endpoints));
    }

    // Pump the clients while the server round runs in its own thread.
    while (server.status() == AuctioneerServer::Status::kRunning) {
      pool->run(std::chrono::milliseconds(20));
      check_wall();
    }

    const AuctioneerServer::Status status = server.await_terminal();
    if (status == AuctioneerServer::Status::kCrashed) {
      // The auctioneer died; the journal and the SUs (their sockets got
      // an RST) survive.  Restarting costs ticks, which is how crashes
      // erode the deadline.
      ++report.crash_recoveries;
      ticks = server.ticks_used() + round.recovery_cost_ticks;
      continue;  // ~server closes the listener; loop rebinds
    }
    if (status == AuctioneerServer::Status::kFailed) {
      server.rethrow_failure();
    }

    // Published: let every SU collect the announcement (late clients are
    // answered on reconnect), then retire the server.
    while (!pool->run(std::chrono::milliseconds(50))) {
      check_wall();
    }
    ticks = server.ticks_used();
    break;
  }

  result.announcement = pool->announcement();
  const proto::Envelope e = proto::Envelope::deserialize(result.announcement);
  result.awards = proto::WinnerAnnouncement::deserialize(e.payload).awards;
  result.journal = journal.data();
  result.reconnects = pool->reconnects();
  if (faults != nullptr) result.socket_faults = faults->counters();
  report.ticks_used = ticks;
  report.journal_records = journal.num_records();
  report.journal_bytes = journal.data().size();
  return result;
}

SocketAuctionResult run_hardened_socket_auction(
    const core::LppaConfig& config, core::TrustedThirdParty& ttp,
    const std::vector<auction::SuLocation>& locations,
    const std::vector<auction::BidVector>& bids, std::uint64_t seed,
    ServerConfig server_config, const proto::HardenedSessionConfig& hardened,
    SocketFaultInjector* faults, const std::vector<std::size_t>& exclude) {
  SocketRoundOptions round;
  round.hardened = hardened;
  return run_recoverable_socket_auction(config, ttp, locations, bids, seed,
                                        std::move(server_config), round,
                                        /*crashes=*/nullptr, faults, exclude);
}

}  // namespace lppa::net
