// Length-prefixed socket framing for Envelope bytes.
//
// A socket stream has no message boundaries: a nonblocking read can
// return half a header, a frame and a half, or one byte.  The frame
// layer restores boundaries with an 8-byte header:
//
//   u32 magic    0x4150504C ("LPPA" when read as little-endian bytes)
//   u32 length   payload byte count, 1..kMaxFramePayload
//   payload      one proto::Envelope
//
// The payload's integrity is covered by the Envelope's own trailing
// 4-byte SHA-256 frame checksum (proto/messages.h) — the frame header
// adds no second checksum, it only adds sync (magic) and extent
// (length).  A flipped payload bit therefore still yields a
// structurally complete frame whose *Envelope* parse fails with
// LppaError(kProtocol); a damaged header desynchronises the stream and
// fails at the frame layer instead.  docs/PROTOCOL.md documents the
// full layout.
//
// FrameDecoder is an incremental state machine: feed() accepts
// arbitrary chunk boundaries (every prefix and every split of a valid
// frame is legal input — pinned exhaustively by net_frame_test), next()
// yields completed payloads.  Malformed framing (bad magic, zero or
// oversized length) throws LppaError(kProtocol) and poisons the
// decoder: once sync is lost nothing later on the same byte stream is
// trustworthy, so every subsequent next() keeps throwing until reset().
// No partial state leaks across either path — a frame is returned only
// whole, and reset() restores a freshly-constructed decoder.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.h"

namespace lppa::net {

inline constexpr std::uint32_t kFrameMagic = 0x4150504Cu;  // "LPPA"
inline constexpr std::size_t kFrameHeaderBytes = 8;
/// Generous ceiling: the largest legitimate payload (a full-scale bid
/// submission) is tens of KiB; anything near this bound is an attack or
/// a desynchronised stream, and rejecting it caps per-connection memory.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 22;  // 4 MiB

/// Wraps `payload` (one serialized Envelope) in a frame header.
Bytes encode_frame(std::span<const std::uint8_t> payload);

class FrameDecoder {
 public:
  /// Appends a chunk of stream bytes.  Accepts any chunking, including
  /// single bytes.  Throws LppaError(kState) on a poisoned decoder —
  /// feeding a desynchronised stream is a caller bug.
  void feed(std::span<const std::uint8_t> chunk);

  /// Extracts the next complete payload, or nullopt when the buffered
  /// bytes end mid-header or mid-payload.  Throws LppaError(kProtocol)
  /// on bad magic or an out-of-range length (and on every later call
  /// until reset()).
  std::optional<Bytes> next();

  /// Bytes buffered but not yet returned as frames.  0 after the stream
  /// ended exactly on a frame boundary — the "no partial state" check.
  std::size_t buffered() const noexcept { return buf_.size() - pos_; }

  /// True once a framing error fired; only reset() clears it.
  bool poisoned() const noexcept { return poisoned_; }

  /// Restores the freshly-constructed state (empty buffer, not
  /// poisoned).  The only way to reuse a decoder after sync loss.
  void reset() noexcept;

 private:
  Bytes buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
  bool poisoned_ = false;
};

}  // namespace lppa::net
