// Per-connection state machine: framing, bounded write queue, deadlines.
//
// A Connection owns one nonblocking stream socket plus everything the
// server (or client pool) needs to survive a hostile peer:
//
//   * torn frames   — reads go through an incremental FrameDecoder, so
//                     any chunking (down to single bytes) reassembles;
//   * partial writes— the outbound side is a queue of byte buffers with
//                     a cursor; EAGAIN mid-buffer just parks the rest
//                     until the next EPOLLOUT;
//   * slow-loris    — progress deadlines: a peer that keeps the
//                     connection open but never completes a frame (or
//                     never drains its inbound side while we have
//                     queued output) trips read/write deadlines and is
//                     evicted by the owner;
//   * memory bombs  — enqueue() refuses to grow the write queue past
//                     max_write_queue_bytes (the owner evicts the slow
//                     client), and the decoder caps frame length.
//
// Connections never run their own thread; the owning event loop calls
// on_readable / on_writable and polls deadlines.  docs/robustness.md
// has the lifecycle diagram.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <optional>

#include "net/frame.h"
#include "net/socket.h"

namespace lppa::net {

using SteadyClock = std::chrono::steady_clock;

/// Hard limits every connection is held to; the admission-control half
/// lives in ServerConfig (connection count, per-peer frame budget).
struct TransportLimits {
  std::size_t max_write_queue_bytes = 1u << 20;  ///< backpressure bound
  /// A peer with an incomplete inbound frame (or no frame yet) must make
  /// byte progress within this window — the slow-loris gate.
  std::chrono::milliseconds read_deadline{2000};
  /// A peer must drain our queued output within this window.
  std::chrono::milliseconds write_deadline{2000};
  /// recv() calls per on_readable call before yielding back to the loop
  /// — fairness: one chatty peer cannot starve the rest of a tick.
  /// Every byte read IS fully decoded before yielding (leftover buffer
  /// is always an incomplete frame), so nothing decodable is stranded
  /// waiting for an epoll event that will never fire.
  std::size_t max_reads_per_burst = 4;
};

class Connection {
 public:
  enum class Io : std::uint8_t {
    kOk,             ///< progressed (possibly zero bytes ready)
    kClosed,         ///< orderly EOF or ECONNRESET from the peer
    kProtocolError,  ///< framing violation; stream is unusable
  };

  Connection(Fd fd, std::uint64_t id, const TransportLimits& limits,
             SteadyClock::time_point now);

  std::uint64_t id() const noexcept { return id_; }
  int fd() const noexcept { return fd_.get(); }

  /// Drains the socket (until EAGAIN or the burst cap) and appends every
  /// completed frame payload to `frames`.
  Io on_readable(std::vector<Bytes>& frames, SteadyClock::time_point now);

  /// Flushes the write queue until EAGAIN or empty.
  Io on_writable(SteadyClock::time_point now);

  /// Queues one pre-encoded frame; false when the queue would exceed
  /// max_write_queue_bytes (the caller evicts — backpressure is an
  /// eviction decision, not silent truncation).
  bool enqueue(Bytes frame);

  bool wants_write() const noexcept { return !write_queue_.empty(); }
  std::size_t queued_bytes() const noexcept { return queued_bytes_; }

  /// Deadline checks, evaluated by the owner's timer scan.  A read
  /// deadline only arms while the peer owes us bytes (mid-frame, or
  /// nothing valid received yet): an idle bound client waiting for the
  /// announcement is not a slow-loris.
  bool read_deadline_expired(SteadyClock::time_point now) const;
  bool write_deadline_expired(SteadyClock::time_point now) const;

  /// SU index this connection authenticated as (first accepted
  /// envelope's sender); unbound connections cannot receive nacks.
  std::optional<std::size_t> bound_su;
  /// Total frames the peer delivered (valid or not) — the per-peer
  /// admission budget the server enforces.
  std::size_t frames_received = 0;
  /// True once at least one complete frame arrived.
  bool saw_frame = false;

 private:
  Fd fd_;
  std::uint64_t id_;
  TransportLimits limits_;
  FrameDecoder decoder_;
  std::deque<Bytes> write_queue_;
  std::size_t write_offset_ = 0;  ///< consumed prefix of the front buffer
  std::size_t queued_bytes_ = 0;
  SteadyClock::time_point last_read_progress_;
  SteadyClock::time_point write_blocked_since_{};  ///< zero = not blocked
};

}  // namespace lppa::net
