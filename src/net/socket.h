// RAII file descriptors and nonblocking TCP / Unix-domain plumbing.
//
// Everything here is a thin, throwing wrapper over the POSIX calls the
// transport needs: loopback TCP listeners on ephemeral ports (tests and
// loadgen never hardcode a port), Unix-domain listeners for the
// lowest-overhead local path, and nonblocking connects.  Syscall
// failures throw LppaError(kState) with errno text — callers treat a
// failed bind/connect like any other lifecycle error.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "common/error.h"

namespace lppa::net {

/// Move-only owner of one file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { close_fd(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      close_fd();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  void reset() noexcept { close_fd(); }

 private:
  void close_fd() noexcept;
  int fd_ = -1;
};

/// Where a server listens / a client connects.
struct Endpoint {
  enum class Kind : std::uint8_t { kTcp, kUnix };
  Kind kind = Kind::kTcp;
  /// kTcp: port on 127.0.0.1; 0 asks the kernel for an ephemeral port
  /// (listen_on rewrites it with the actual one).
  std::uint16_t port = 0;
  /// kUnix: filesystem path of the socket (stale files are unlinked on
  /// bind; the listener unlinks again on destruction via the caller).
  std::string path;

  static Endpoint tcp_loopback(std::uint16_t port = 0) {
    Endpoint e;
    e.kind = Kind::kTcp;
    e.port = port;
    return e;
  }
  static Endpoint unix_path(std::string path) {
    Endpoint e;
    e.kind = Kind::kUnix;
    e.path = std::move(path);
    return e;
  }
  std::string label() const;
};

/// Binds + listens, nonblocking.  Rewrites ep.port for ephemeral TCP;
/// unlinks a stale ep.path for Unix sockets.
Fd listen_on(Endpoint& ep, int backlog = 256);

/// Starts a nonblocking connect; EINPROGRESS is success (poll for
/// writability, then check take_socket_error()).
Fd connect_to(const Endpoint& ep);

/// Accepts one pending connection (nonblocking); invalid Fd when the
/// backlog is empty.
Fd accept_on(int listen_fd);

void set_nonblocking(int fd);

/// Reads and clears SO_ERROR (0 = connect succeeded).
int take_socket_error(int fd);

/// Arms SO_LINGER with timeout 0 so close() sends RST instead of FIN —
/// how the fault injector models a connection reset.
void arm_abortive_close(int fd);

}  // namespace lppa::net
