// Socket ports of the hardened / recoverable wire-auction drivers.
//
// These are the src/net twins of proto::run_hardened_wire_auction and
// proto::run_recoverable_wire_auction: the same round semantics — nack
// waves under exponential backoff, strike/equivocation bookkeeping,
// deadline-quorum degradation, write-ahead journal recovery after a
// mid-round auctioneer crash — but with every SU↔auctioneer message
// travelling through a real nonblocking socket (TCP loopback or
// Unix-domain) instead of the in-process MessageBus.
//
// The invariant the tests pin: at the same seed, the socket round
// commits byte-identical awards, charges and announcement to the bus
// round — clean, under socket-level fault injection
// (SocketFaultInjector), and across auctioneer crashes at every
// CrashPoint — and the SUs never rebuild an envelope
// (SocketAuctionResult::envelopes_built counts exactly one
// location+bid build per participant, however many times the bytes were
// redelivered).
#pragma once

#include "net/client.h"
#include "net/server.h"

namespace lppa::net {

struct SocketAuctionResult {
  std::vector<auction::Award> awards;
  proto::RoundReport report;
  /// The durable journal at round commit.
  Bytes journal;
  /// The published kWinnerAnnouncement envelope bytes, as every SU
  /// received them over its socket.
  Bytes announcement;
  /// Location/bid envelope constructions performed — exactly
  /// 2 × participants when the zero-resubmission invariant holds.
  std::size_t envelopes_built = 0;
  /// Client connection attempts after a loss (faults, evictions,
  /// crashes); 0 on a clean run.
  std::size_t reconnects = 0;
  /// Transport fault totals (zero when no injector was attached).
  SocketFaultCounters socket_faults;
};

/// Runs one crash-tolerant auction round over sockets.  `server_config`
/// is taken by value; its endpoint may name an ephemeral port (0) —
/// the resolved endpoint is what the internal restarts rebind.  Pass a
/// CrashInjector to kill the auctioneer at its checkpoints, a
/// SocketFaultInjector to mangle client traffic, and `exclude` for SUs
/// that sit the round out (their RNG streams are still consumed — same
/// contract as the bus drivers).
SocketAuctionResult run_recoverable_socket_auction(
    const core::LppaConfig& config, core::TrustedThirdParty& ttp,
    const std::vector<auction::SuLocation>& locations,
    const std::vector<auction::BidVector>& bids, std::uint64_t seed,
    ServerConfig server_config, SocketRoundOptions round = {},
    proto::CrashInjector* crashes = nullptr,
    SocketFaultInjector* faults = nullptr,
    const std::vector<std::size_t>& exclude = {});

/// The hardened (crash-free) socket round: exactly
/// run_recoverable_socket_auction with no crash injector and no
/// deadline by default — the same byte-equivalence the bus drivers
/// guarantee between their hardened and recoverable paths.
SocketAuctionResult run_hardened_socket_auction(
    const core::LppaConfig& config, core::TrustedThirdParty& ttp,
    const std::vector<auction::SuLocation>& locations,
    const std::vector<auction::BidVector>& bids, std::uint64_t seed,
    ServerConfig server_config,
    const proto::HardenedSessionConfig& hardened = {},
    SocketFaultInjector* faults = nullptr,
    const std::vector<std::size_t>& exclude = {});

}  // namespace lppa::net
