#include "net/connection.h"

#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>

namespace lppa::net {

Connection::Connection(Fd fd, std::uint64_t id, const TransportLimits& limits,
                       SteadyClock::time_point now)
    : fd_(std::move(fd)), id_(id), limits_(limits),
      last_read_progress_(now) {}

Connection::Io Connection::on_readable(std::vector<Bytes>& frames,
                                       SteadyClock::time_point now) {
  std::array<std::uint8_t, 16384> chunk;
  std::size_t reads = 0;
  for (;;) {
    const ssize_t n = ::recv(fd_.get(), chunk.data(), chunk.size(), 0);
    if (n > 0) {
      last_read_progress_ = now;
      try {
        decoder_.feed(
            std::span<const std::uint8_t>(chunk.data(),
                                          static_cast<std::size_t>(n)));
        while (auto frame = decoder_.next()) {
          ++frames_received;
          saw_frame = true;
          frames.push_back(std::move(*frame));
        }
      } catch (const LppaError&) {
        return Io::kProtocolError;  // desynchronised framing
      }
      if (++reads >= limits_.max_reads_per_burst) return Io::kOk;
      continue;
    }
    if (n == 0) return Io::kClosed;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Io::kOk;
    if (errno == EINTR) continue;
    return Io::kClosed;  // ECONNRESET and friends
  }
}

Connection::Io Connection::on_writable(SteadyClock::time_point now) {
  while (!write_queue_.empty()) {
    const Bytes& front = write_queue_.front();
    const std::size_t remaining = front.size() - write_offset_;
    const ssize_t n = ::send(fd_.get(), front.data() + write_offset_,
                             remaining, MSG_NOSIGNAL);
    if (n > 0) {
      write_offset_ += static_cast<std::size_t>(n);
      queued_bytes_ -= static_cast<std::size_t>(n);
      if (write_offset_ == front.size()) {
        write_queue_.pop_front();
        write_offset_ = 0;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (write_blocked_since_ == SteadyClock::time_point{}) {
        write_blocked_since_ = now;
      }
      return Io::kOk;
    }
    if (n < 0 && errno == EINTR) continue;
    return Io::kClosed;  // EPIPE / ECONNRESET
  }
  write_blocked_since_ = SteadyClock::time_point{};
  return Io::kOk;
}

bool Connection::enqueue(Bytes frame) {
  if (queued_bytes_ + frame.size() > limits_.max_write_queue_bytes) {
    return false;
  }
  queued_bytes_ += frame.size();
  write_queue_.push_back(std::move(frame));
  return true;
}

bool Connection::read_deadline_expired(SteadyClock::time_point now) const {
  // Owed bytes: a partially buffered frame, or no complete frame yet
  // (a connection that never says anything is the classic slow-loris).
  const bool peer_owes_bytes = decoder_.buffered() > 0 || !saw_frame;
  return peer_owes_bytes &&
         now - last_read_progress_ > limits_.read_deadline;
}

bool Connection::write_deadline_expired(SteadyClock::time_point now) const {
  return write_blocked_since_ != SteadyClock::time_point{} &&
         now - write_blocked_since_ > limits_.write_deadline;
}

}  // namespace lppa::net
