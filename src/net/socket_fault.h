// SocketFaultInjector: deterministic transport-level fault injection.
//
// The bus-level proto::FaultInjector rules on whole messages; the socket
// transport extends the model down to the byte stream.  Five fault
// classes, mutually exclusive per frame (one uniform draw cascaded
// through them, same discipline as FaultSpec):
//
//   kTruncate  — the frame is cut at a deterministic byte boundary and
//                the connection is torn down (the peer sees a torn frame
//                followed by EOF / RST and must reconnect + resend);
//   kReset    — the connection is aborted (SO_LINGER 0 → RST) before the
//                frame is sent at all;
//   kDelay    — the frame is held for 1..max_delay_ticks ticks (one tick
//                = one ClientPoolConfig::tick wall duration) before
//                hitting the socket;
//   kDuplicate — the frame bytes are written twice back to back (the
//                session's redelivery classification must absorb it);
//   kFragment  — the frame is written in 1-byte chunks with the socket
//                flushed between them, exercising every partial-read
//                boundary of the server's FrameDecoder.
//
// Plus one targeted, non-probabilistic class: SocketFaultSpec::mute_su
// names an SU whose every frame is silently swallowed (kMute) — the
// deterministic "silent party" the deadline-quorum degradation tests
// need, mirroring a bus FaultSpec{drop=1.0} party spec.
//
// Determinism: the verdict for (su, seq) is a pure function of the
// injector seed — each decision re-derives its own Rng from
// derive_stream_seed(seed, su << 20 | seq), so verdicts do not depend on
// arrival order, retries elsewhere, or thread scheduling.  A per-SU
// fault budget (max_faults_per_su) guarantees convergence: once an SU
// has burned its budget, its traffic is delivered clean, so every
// faulted round terminates with the same awards as a clean one.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "proto/fault.h"

namespace lppa::net {

/// Per-frame transport fault probabilities.  Mutually exclusive per
/// frame; all zero = clean transport.
struct SocketFaultSpec {
  double truncate = 0.0;   ///< cut mid-frame, then tear the connection
  double reset = 0.0;      ///< abortive close before sending
  double delay = 0.0;      ///< held 1..max_delay_ticks ticks
  double duplicate = 0.0;  ///< frame bytes sent twice
  double fragment = 0.0;   ///< sent one byte at a time
  std::size_t max_delay_ticks = 2;
  /// Faults charged per SU before its traffic goes clean; bounds the
  /// retry storm so every faulted round converges.
  std::size_t max_faults_per_su = 4;

  static constexpr std::size_t kNoMute = static_cast<std::size_t>(-1);
  /// Targeted, deterministic fault: every frame of this SU is silently
  /// dropped before it reaches the socket — the wire twin of a bus
  /// FaultSpec{drop=1.0} party spec.  Unlike the probabilistic classes
  /// it is not charged against max_faults_per_su (a muted SU never goes
  /// clean), which is what makes deadline-quorum degradation
  /// deterministic over sockets.
  std::size_t mute_su = kNoMute;
};

/// Counters mirroring proto::FaultCounters for the socket classes.
struct SocketFaultCounters {
  std::size_t frames = 0;  ///< frames the injector ruled on
  std::size_t truncations = 0;
  std::size_t resets = 0;
  std::size_t delays = 0;
  std::size_t duplicates = 0;
  std::size_t fragments = 0;
  std::size_t mutes = 0;  ///< frames swallowed by SocketFaultSpec::mute_su
};

struct SocketFaultDecision {
  enum class Kind : std::uint8_t {
    kNone,
    kTruncate,
    kReset,
    kDelay,
    kDuplicate,
    kFragment,
    kMute,
  };
  Kind kind = Kind::kNone;
  std::size_t cut_at = 0;      ///< kTruncate: bytes delivered before the cut
  std::size_t delay_ticks = 0; ///< kDelay: hold duration
};

class SocketFaultInjector {
 public:
  explicit SocketFaultInjector(std::uint64_t seed, SocketFaultSpec spec = {});

  /// Rules on send attempt `seq` (per-SU, 0-based, strictly increasing
  /// — the client numbers every send attempt, including resends) of
  /// `su`, whose encoded size is `frame_bytes`.  The verdict is a pure
  /// function of (seed, su, seq, frame_bytes) plus the SU's remaining
  /// fault budget, which itself only depends on the SU's earlier seqs —
  /// so a fault schedule never depends on thread scheduling or on other
  /// SUs' traffic.
  SocketFaultDecision decide(std::size_t su, std::size_t seq,
                             std::size_t frame_bytes);

  /// Validates the delay budget against a session deadline, reusing the
  /// bus-level rule (satellite 2): throws LppaError(kInvalidArgument)
  /// when a delayed frame could land after the round commits.
  void require_within_deadline(std::size_t deadline_ticks) const;

  const SocketFaultSpec& spec() const noexcept { return spec_; }
  const SocketFaultCounters& counters() const noexcept { return counters_; }
  void reset_counters() noexcept { counters_ = SocketFaultCounters{}; }

 private:
  std::uint64_t seed_;
  SocketFaultSpec spec_;
  SocketFaultCounters counters_;
  /// Faults already charged to each SU (budget bookkeeping) and the
  /// highest seq ruled on (so replays don't double-count).
  std::vector<std::size_t> charged_;
  std::vector<std::size_t> next_seq_;
};

}  // namespace lppa::net
