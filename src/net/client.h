// ClientPool: every SU endpoint of a socket round, multiplexed into one
// epoll loop.
//
// Each SU's submission envelopes are built exactly once by the driver
// (the zero-resubmission invariant: a crashing auctioneer must never
// force an SU to re-mask, which would widen the linkage-attack window)
// and handed to the pool as cached bytes.  The pool's whole protocol is
// then:
//
//   connect → send cached location + bid → answer nacks with the same
//   cached bytes → wait for the winner announcement → done
//
// with capped exponential reconnect backoff
// (HardenedSessionConfig::backoff_ticks on the wall-tick clock) around
// every connection loss — resets, evictions, server crashes, refused
// connects while the auctioneer is rebuilding from its journal.
//
// A SocketFaultInjector, when attached, sits in the send path and
// mangles traffic at the byte level (truncate / reset / delay /
// duplicate / fragment); see socket_fault.h for the determinism and
// convergence guarantees.
#pragma once

#include <chrono>
#include <memory>
#include <vector>

#include "net/connection.h"
#include "net/event_loop.h"
#include "net/socket_fault.h"
#include "proto/session.h"

namespace lppa::net {

struct ClientPoolConfig {
  Endpoint endpoint;
  /// Reconnect backoff schedule (backoff_ticks(attempt) wall ticks).
  proto::HardenedSessionConfig backoff;
  /// Wall-clock duration of one tick; keep equal to ServerConfig::tick.
  std::chrono::microseconds tick{1000};
  TransportLimits limits;
  /// Connects in flight at once — staggers a multi-thousand-SU stampede
  /// so the listener backlog never overflows.
  std::size_t max_concurrent_connects = 128;
  SocketFaultInjector* faults = nullptr;     ///< not owned; may be null
  obs::MetricsRegistry* metrics = nullptr;   ///< not owned; may be null
};

/// One SU's cached wire bytes (built once, resent verbatim forever).
struct SuEnvelopes {
  std::size_t su = 0;
  Bytes location;
  Bytes bid;
};

class ClientPool {
 public:
  ClientPool(ClientPoolConfig config, std::vector<SuEnvelopes> sus);
  ~ClientPool();

  ClientPool(const ClientPool&) = delete;
  ClientPool& operator=(const ClientPool&) = delete;

  /// Drives every SU until all hold the announcement or `timeout`
  /// passes.  Callable repeatedly (progress is kept); returns all_done.
  bool run(std::chrono::milliseconds timeout);

  bool all_done() const noexcept { return done_ == peers_.size(); }
  std::size_t done_count() const noexcept { return done_; }

  /// The announcement envelope bytes (identical for every SU — the
  /// parity tests assert it); requires at least one finished SU.
  const Bytes& announcement() const;
  /// Per-SU announcement (empty until that SU finished).
  const Bytes& announcement_of(std::size_t su) const;

  /// Connection attempts made after a loss (initial connects excluded).
  std::size_t reconnects() const noexcept { return reconnects_; }

  /// Latency samples in microseconds: submit = first send → first
  /// kSubmissionAck (requires ServerConfig::ack_submissions), round =
  /// pool start → announcement.
  const std::vector<double>& submit_latencies_us() const noexcept {
    return submit_us_;
  }
  const std::vector<double>& round_latencies_us() const noexcept {
    return round_us_;
  }

 private:
  struct SuPeer;

  void start_connects(SteadyClock::time_point now);
  void on_connected(SuPeer& peer, SteadyClock::time_point now);
  /// Sends one cached envelope through the fault pipeline; returns false
  /// when the fault tore the connection down (stop sending more).
  bool send_with_faults(SuPeer& peer, const Bytes& envelope_bytes,
                        SteadyClock::time_point now);
  void handle_frames(SuPeer& peer, const std::vector<Bytes>& frames,
                     SteadyClock::time_point now);
  void drop_connection(SuPeer& peer, bool abortive,
                       SteadyClock::time_point now);
  void flush_due_delays(SteadyClock::time_point now);

  ClientPoolConfig config_;
  EventLoop loop_;
  std::vector<std::unique_ptr<SuPeer>> peers_;
  std::vector<std::size_t> su_to_peer_;  ///< SU index -> peers_ slot
  struct DelayedFrame {
    SteadyClock::time_point due;
    std::size_t peer;  ///< peers_ slot
    Bytes frame;
  };
  std::vector<DelayedFrame> delayed_;
  std::size_t done_ = 0;
  std::size_t connecting_ = 0;
  std::size_t reconnects_ = 0;
  SteadyClock::time_point round_started_{};
  std::vector<double> submit_us_;
  std::vector<double> round_us_;
};

}  // namespace lppa::net
