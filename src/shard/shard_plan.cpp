#include "shard/shard_plan.h"

#include <algorithm>

#include "common/error.h"

namespace lppa::shard {

ShardPlan ShardPlan::make(int coord_width, std::uint64_t lambda,
                          std::size_t num_shards) {
  LPPA_REQUIRE(coord_width >= 1 && coord_width <= 62,
               "coordinate width out of range");
  LPPA_REQUIRE(num_shards >= 1, "shard plan requires at least one shard");

  ShardPlan plan;
  plan.side_ = std::uint64_t{1} << coord_width;
  plan.lambda_ = lambda;
  // tiles_x = the divisor of num_shards closest to sqrt from below, so
  // the grid is as square as the factorisation allows (9 -> 3x3,
  // 4 -> 2x2, 2 -> 1x2, primes -> 1xP strips).
  std::size_t tx = 1;
  for (std::size_t d = 1; d * d <= num_shards; ++d) {
    if (num_shards % d == 0) tx = d;
  }
  plan.tiles_x_ = tx;
  plan.tiles_y_ = num_shards / tx;
  LPPA_REQUIRE(plan.tiles_y_ <= plan.side_,
               "more shards than coordinate columns");
  plan.width_x_ = (plan.side_ + plan.tiles_x_ - 1) / plan.tiles_x_;
  plan.width_y_ = (plan.side_ + plan.tiles_y_ - 1) / plan.tiles_y_;
  return plan;
}

std::size_t ShardPlan::tile_x_of(std::uint64_t x) const noexcept {
  return std::min<std::size_t>(static_cast<std::size_t>(x / width_x_),
                               tiles_x_ - 1);
}

std::size_t ShardPlan::tile_y_of(std::uint64_t y) const noexcept {
  return std::min<std::size_t>(static_cast<std::size_t>(y / width_y_),
                               tiles_y_ - 1);
}

std::uint32_t ShardPlan::tile_of(const auction::SuLocation& loc) const noexcept {
  return static_cast<std::uint32_t>(tile_y_of(loc.y) * tiles_x_ +
                                    tile_x_of(loc.x));
}

ShardPlan::TileBounds ShardPlan::bounds(std::uint32_t tile) const {
  LPPA_REQUIRE(tile < num_shards(), "tile id out of range");
  const std::size_t tx = tile % tiles_x_;
  const std::size_t ty = tile / tiles_x_;
  TileBounds b;
  b.x_lo = static_cast<std::uint64_t>(tx) * width_x_;
  b.x_hi = std::min(side_ - 1, b.x_lo + width_x_ - 1);
  b.y_lo = static_cast<std::uint64_t>(ty) * width_y_;
  b.y_hi = std::min(side_ - 1, b.y_lo + width_y_ - 1);
  return b;
}

bool ShardPlan::on_boundary(const auction::SuLocation& loc) const noexcept {
  // Boundary iff the clamped interference box touches a second tile —
  // the exact condition under which assign() would put this SU into a
  // foreign halo (an SU hugging the FIELD edge has no neighbour there
  // and is not a boundary SU).
  const std::uint64_t r = 2 * lambda_;
  const std::uint64_t bx_lo = loc.x >= r ? loc.x - r : 0;
  const std::uint64_t bx_hi = std::min(side_ - 1, loc.x + r);
  const std::uint64_t by_lo = loc.y >= r ? loc.y - r : 0;
  const std::uint64_t by_hi = std::min(side_ - 1, loc.y + r);
  return tile_x_of(bx_lo) != tile_x_of(bx_hi) ||
         tile_y_of(by_lo) != tile_y_of(by_hi);
}

std::vector<std::uint32_t> ShardPlan::halo_tiles_of(
    const auction::SuLocation& loc) const {
  // The interference box [loc ± 2λ], clamped to the field.  Every tile
  // the box touches — except the home tile — receives the SU in its
  // halo: any foreign SU it conflicts with necessarily lives inside that
  // box, hence inside one of those tiles.
  const std::uint64_t r = 2 * lambda_;
  const std::uint64_t bx_lo = loc.x >= r ? loc.x - r : 0;
  const std::uint64_t bx_hi = std::min(side_ - 1, loc.x + r);
  const std::uint64_t by_lo = loc.y >= r ? loc.y - r : 0;
  const std::uint64_t by_hi = std::min(side_ - 1, loc.y + r);
  const std::uint32_t home = tile_of(loc);
  std::vector<std::uint32_t> tiles;
  for (std::size_t ty = tile_y_of(by_lo); ty <= tile_y_of(by_hi); ++ty) {
    for (std::size_t tx = tile_x_of(bx_lo); tx <= tile_x_of(bx_hi); ++tx) {
      const std::uint32_t t = static_cast<std::uint32_t>(ty * tiles_x_ + tx);
      if (t != home) tiles.push_back(t);
    }
  }
  return tiles;
}

ShardAssignment ShardPlan::assign(
    const std::vector<auction::SuLocation>& locations) const {
  return assign_live(locations,
                     std::vector<bool>(locations.size(), true));
}

ShardAssignment ShardPlan::assign_live(
    const std::vector<auction::SuLocation>& locations,
    const std::vector<bool>& live) const {
  LPPA_REQUIRE(live.size() == locations.size(),
               "live mask must cover every slot");
  const std::size_t n = locations.size();
  const std::size_t shards = num_shards();

  ShardAssignment a;
  a.num_shards = shards;
  a.shard_of.resize(n, 0);
  a.members.resize(shards);
  a.halo.resize(shards);

  for (std::size_t u = 0; u < n; ++u) {
    if (!live[u]) continue;  // dead slot: shard_of = 0, in no list
    const auction::SuLocation& loc = locations[u];
    LPPA_REQUIRE(loc.x < side_ && loc.y < side_,
                 "location outside the coordinate space");
    const std::uint32_t home = tile_of(loc);
    a.shard_of[u] = home;
    a.members[home].push_back(static_cast<std::uint32_t>(u));
    const auto tiles = halo_tiles_of(loc);
    for (const std::uint32_t t : tiles) {
      a.halo[t].push_back(static_cast<std::uint32_t>(u));
    }
    if (!tiles.empty()) ++a.boundary_sus;
  }
  // Members and halos are filled in one ascending sweep over u, so every
  // per-tile list is already sorted — which the sharded conflict build
  // and the sharded bid table both rely on for deterministic tie-breaks.
  return a;
}

void ShardPlan::reassign(ShardAssignment& a, std::uint32_t u,
                         const std::optional<auction::SuLocation>& old_loc,
                         const std::optional<auction::SuLocation>& new_loc) const {
  LPPA_REQUIRE(u < a.shard_of.size(), "reassign: SU id outside the roster");
  LPPA_REQUIRE(a.num_shards == num_shards(),
               "reassign: assignment built by a different plan");
  // Sorted splice in/out keeps every list in the ascending order the
  // single-sweep assign() produces, so == against a rebuild stays exact.
  const auto sorted_erase = [u](std::vector<std::uint32_t>& v) {
    const auto it = std::lower_bound(v.begin(), v.end(), u);
    LPPA_REQUIRE(it != v.end() && *it == u,
                 "reassign: SU missing from a shard list");
    v.erase(it);
  };
  const auto sorted_insert = [u](std::vector<std::uint32_t>& v) {
    const auto it = std::lower_bound(v.begin(), v.end(), u);
    LPPA_REQUIRE(it == v.end() || *it != u,
                 "reassign: SU already present in a shard list");
    v.insert(it, u);
  };
  if (old_loc.has_value()) {
    sorted_erase(a.members[tile_of(*old_loc)]);
    const auto tiles = halo_tiles_of(*old_loc);
    for (const std::uint32_t t : tiles) sorted_erase(a.halo[t]);
    if (!tiles.empty()) --a.boundary_sus;
    a.shard_of[u] = 0;  // dead-slot convention, matching assign_live
  }
  if (new_loc.has_value()) {
    LPPA_REQUIRE(new_loc->x < side_ && new_loc->y < side_,
                 "location outside the coordinate space");
    const std::uint32_t home = tile_of(*new_loc);
    a.shard_of[u] = home;
    sorted_insert(a.members[home]);
    const auto tiles = halo_tiles_of(*new_loc);
    for (const std::uint32_t t : tiles) sorted_insert(a.halo[t]);
    if (!tiles.empty()) ++a.boundary_sus;
  }
}

}  // namespace lppa::shard
