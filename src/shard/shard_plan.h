// ShardPlan: geo-partitioning of the PPBS coordinate space into a grid
// of tiles, one auction partition (shard) per tile.
//
// The paper's interference predicate is strictly local (|Δx| <= 2λ and
// |Δy| <= 2λ, auction/conflict.h), and its evaluation already treats the
// map as four independent areas — so conflict discovery, the encrypted
// argmax, and allocation decompose spatially almost for free.  A
// ShardPlan makes that seam explicit: the 2^coord_width-wide square is
// cut into tiles_x × tiles_y near-equal tiles; every SU has one home
// tile, and the only cross-tile state is the HALO — for each tile, the
// foreign SUs whose interference box overlaps it.  Any conflicting pair
// either shares a tile or each endpoint sits in the other endpoint's
// tile halo, so per-tile digest indexes extended by halo entries
// discover exactly the global conflict edge set (core/shard_conflict.h
// carries the proof sketch).
//
// Routing and privacy: tile geometry is public (TTP-published), and each
// SU can derive its own tile id and halo memberships from its plaintext
// coordinates, so the auctioneer learns only tile-granular placement —
// the same coarsening sim/cloaking.h already models and quantifies.
// When the tile grid is a power of two per axis, the tile id is exactly
// the leading log2(tiles) bits of each coordinate — the value whose
// hashed prefix heads the SU's submitted x/y families — i.e. routing
// reads the prefix-range structure of the submission, never a raw
// coordinate.  In this in-process reproduction the plan computes
// assignments directly from the SU-side locations LppaAuction::run
// already holds on the SUs' behalf.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "auction/conflict.h"

namespace lppa::shard {

/// Which SUs each tile owns and which foreign SUs it must see (halo).
struct ShardAssignment {
  std::size_t num_shards = 1;
  /// SU -> home tile.
  std::vector<std::uint32_t> shard_of;
  /// Per tile: owned SU ids, ascending.
  std::vector<std::vector<std::uint32_t>> members;
  /// Per tile: foreign SU ids whose interference box overlaps the tile,
  /// ascending.  These are the entries the halo exchange ships.
  std::vector<std::vector<std::uint32_t>> halo;
  /// Distinct SUs that appear in at least one foreign halo (i.e. sit
  /// within 2λ of their own tile's edge).
  std::size_t boundary_sus = 0;

  /// Total halo list length across tiles (one SU may appear in up to
  /// three foreign halos at a tile corner).
  std::size_t halo_entries() const noexcept {
    std::size_t total = 0;
    for (const auto& h : halo) total += h.size();
    return total;
  }

  bool operator==(const ShardAssignment&) const = default;
};

class ShardPlan {
 public:
  /// Tiles the [0, 2^coord_width) square into a tiles_x × tiles_y grid
  /// with tiles_x * tiles_y == num_shards (tiles_x is the divisor of
  /// num_shards closest to its square root from below, so 9 shards make
  /// a 3×3 grid and 2 shards a 1×2 split).  λ only parameterises halo
  /// membership; tile geometry is independent of it, so tiles narrower
  /// than 2λ are legal — the halos then simply cover whole neighbouring
  /// tiles and sharding degrades gracefully instead of miscomputing.
  static ShardPlan make(int coord_width, std::uint64_t lambda,
                        std::size_t num_shards);

  std::size_t num_shards() const noexcept { return tiles_x_ * tiles_y_; }
  std::size_t tiles_x() const noexcept { return tiles_x_; }
  std::size_t tiles_y() const noexcept { return tiles_y_; }
  std::uint64_t lambda() const noexcept { return lambda_; }

  /// Inclusive coordinate bounds of one tile.
  struct TileBounds {
    std::uint64_t x_lo = 0, x_hi = 0, y_lo = 0, y_hi = 0;
  };
  TileBounds bounds(std::uint32_t tile) const;

  /// Home tile of a location (row-major: tile = ty * tiles_x + tx).
  std::uint32_t tile_of(const auction::SuLocation& loc) const noexcept;

  /// True when `loc`'s interference box [loc ± 2λ] reaches outside its
  /// home tile (i.e. the SU is a boundary SU).
  bool on_boundary(const auction::SuLocation& loc) const noexcept;

  /// Foreign tiles touched by `loc`'s clamped interference box — the
  /// halos `loc` belongs to.  Empty iff the SU is not a boundary SU.
  /// The churn layer uses this to know which per-tile digest indexes
  /// hold (or must receive) an SU's x-range entries.
  std::vector<std::uint32_t> halo_tiles_of(
      const auction::SuLocation& loc) const;

  /// Computes the full partition: home tiles, per-tile member lists, and
  /// per-tile halos.  Deterministic — a pure function of the locations
  /// and the plan, independent of any thread count.
  ShardAssignment assign(
      const std::vector<auction::SuLocation>& locations) const;

  /// assign() restricted to the slots `live` marks true — the churn
  /// roster keeps a fixed slot universe where dead slots have no
  /// location.  Dead slots get shard_of = 0 and appear in no member or
  /// halo list, so an incrementally maintained assignment (reassign) is
  /// comparable by == to a from-scratch rebuild over the same roster.
  ShardAssignment assign_live(const std::vector<auction::SuLocation>& locations,
                              const std::vector<bool>& live) const;

  /// Incremental churn update of one SU's membership: `old_loc` →
  /// `new_loc`, where nullopt means absent (so arrival = nullopt→loc,
  /// departure = loc→nullopt, move = loc→loc).  Maintains the ascending
  /// order of every member/halo list and the exact boundary_sus count;
  /// after any event sequence the assignment equals assign_live over the
  /// resulting roster.  O(tiles touched · log n) per event.
  void reassign(ShardAssignment& a, std::uint32_t u,
                const std::optional<auction::SuLocation>& old_loc,
                const std::optional<auction::SuLocation>& new_loc) const;

 private:
  ShardPlan() = default;

  std::size_t tile_x_of(std::uint64_t x) const noexcept;
  std::size_t tile_y_of(std::uint64_t y) const noexcept;

  std::uint64_t side_ = 0;  ///< 2^coord_width
  std::uint64_t lambda_ = 0;
  std::size_t tiles_x_ = 1;
  std::size_t tiles_y_ = 1;
  std::uint64_t width_x_ = 0;  ///< ceil(side / tiles_x)
  std::uint64_t width_y_ = 0;
};

}  // namespace lppa::shard
