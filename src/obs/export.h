// File exporters for MetricsRegistry snapshots — the implementation
// behind every `--metrics <path>` flag (examples/lppa_cli,
// examples/wire_session, bench/*).
//
// Format is chosen by extension: a path ending in ".prom" gets the
// Prometheus text page, anything else the JSON snapshot.  Failures
// (unwritable directory, disk full) are reported, never swallowed — a
// silently dropped metrics dump is a lost result, the same bug class as
// the silently dropped bench --json dump this PR fixes.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace lppa::obs {

/// Writes the snapshot to `path`.  Returns true on success; on failure
/// returns false and, when `error` is non-null, stores a one-line
/// description of what went wrong.
bool write_metrics_file(const MetricsRegistry& registry,
                        const std::string& path, std::string* error = nullptr);

}  // namespace lppa::obs
