#include "obs/export.h"

#include <cstring>
#include <fstream>

namespace lppa::obs {

bool write_metrics_file(const MetricsRegistry& registry,
                        const std::string& path, std::string* error) {
  const bool prometheus =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error != nullptr) {
      *error = "cannot open '" + path + "' for writing: " +
               std::strerror(errno);
    }
    return false;
  }
  if (prometheus) {
    registry.write_prometheus(out);
  } else {
    registry.write_json(out);
  }
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "short write to '" + path + "'";
    return false;
  }
  return true;
}

}  // namespace lppa::obs
