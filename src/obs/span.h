// obs::Span — RAII phase timer with explicit parent handles.
//
// A span measures one named region (an auction phase, a retry wave, a
// recovery replay) on the steady clock and records itself into a
// MetricsRegistry when it ends: once as a trace record carrying its
// parent edge (so a round's phases reconstruct as a tree) and once as an
// observation of the "span.<name>.us" histogram (so latencies aggregate
// across rounds).
//
// Parents are explicit — `Span child(reg, "allocate", &round)` — rather
// than thread-local ambient state: the auction stack hops between the
// caller's thread and the pool workers, and implicit context would
// either tear or need TLS coordination the hot path cannot afford.
//
// A span built over a null registry is inert: no clock reads, no
// allocation, nothing recorded.  Instrumented code therefore creates
// spans unconditionally and lets disabled observability cost one branch.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace lppa::obs {

class Span {
 public:
  /// Starts the span; `registry` may be null (inert span).  `parent` may
  /// be null (root span) or any span that is still alive.
  Span(MetricsRegistry* registry, std::string_view name,
       const Span* parent = nullptr)
      : registry_(registry),
        parent_(parent != nullptr ? parent->id() : 0) {
    if (registry_ == nullptr) return;
    name_ = name;
    id_ = registry_->next_span_id();
    start_ = std::chrono::steady_clock::now();
  }

  ~Span() { end(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Stops the clock and records the span; idempotent, so an explicit
  /// end() before destruction pins the measured region exactly.
  void end() noexcept {
    if (registry_ == nullptr || ended_) return;
    ended_ = true;
    const auto stop = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(stop - start_).count();
    try {
      registry_->record_span(name_, id_, parent_, us);
    } catch (...) {
      // Observability must never take the round down with it.
    }
  }

  /// 0 for inert spans, unique per registry otherwise.
  std::uint64_t id() const noexcept { return id_; }

 private:
  MetricsRegistry* registry_;
  std::string name_;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::chrono::steady_clock::time_point start_{};
  bool ended_ = false;
};

}  // namespace lppa::obs
