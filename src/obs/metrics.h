// obs::MetricsRegistry — lock-cheap operational metrics for a live
// auction service.
//
// The registry owns three metric kinds, all updatable without taking any
// lock once created:
//   * Counter   — monotonic, relaxed atomic u64 (events, bytes, faults),
//   * Gauge     — last-value double (journal size, queue depths),
//   * Histogram — fixed upper-bound buckets with atomic counts plus a
//                 running sum/count (latencies, batch sizes).
//
// The registry's mutex guards only metric *creation* and export
// snapshots; hot paths resolve their metrics once (or per round) and
// then touch only atomics.  Instrumented components take a nullable
// `MetricsRegistry*` — a null registry means every instrumentation site
// is a branch-and-skip, which is what keeps the enabled-vs-disabled
// overhead under the perf gate.
//
// Exporters: write_json() (one snapshot object, strict obs::json) and
// write_prometheus() (text exposition format, one page per scrape).
// See docs/observability.md for the metric name catalogue.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace lppa::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value metric; may move in either direction.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with Prometheus `le` (inclusive upper bound)
/// semantics: observation v lands in the first bucket with v <= bound;
/// anything above the last bound lands in the implicit +Inf bucket.
/// Bucket counts are stored per-bucket (not cumulative) and cumulated at
/// export time.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty, finite, and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& upper_bounds() const noexcept { return bounds_; }

  /// Count of bucket i; i == upper_bounds().size() is the +Inf bucket.
  std::uint64_t bucket_count(std::size_t i) const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds + Inf
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// One completed span (obs/span.h): a named timed region with an
/// explicit parent edge, forming the per-round phase tree.
struct SpanRecord {
  std::string name;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 = root
  double wall_us = 0.0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates a metric.  References stay valid for the
  /// registry's lifetime; hot paths should hold the reference instead of
  /// re-resolving per event.  Metric names use lower-case dotted paths
  /// ("bus.messages"); the Prometheus exporter maps dots to underscores.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// An empty `upper_bounds` selects default_time_buckets_us().  When the
  /// histogram already exists the bounds argument is ignored — bounds are
  /// fixed at first creation.
  Histogram& histogram(std::string_view name,
                       std::span<const double> upper_bounds = {});

  /// The default latency ladder, in microseconds: 1, 2, 5 decades from
  /// 10us to 50s.
  static std::span<const double> default_time_buckets_us() noexcept;

  // --- Span plumbing (driven by obs::Span) -------------------------------
  std::uint64_t next_span_id() noexcept {
    return 1 + span_ids_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Appends a completed span and feeds its duration into the
  /// "span.<name>.us" histogram.  Keeps at most kMaxSpans records; the
  /// histograms keep aggregating beyond that, and spans_dropped() says
  /// how many trace records were shed.
  void record_span(std::string_view name, std::uint64_t id,
                   std::uint64_t parent, double wall_us);
  std::vector<SpanRecord> spans() const;
  std::uint64_t spans_dropped() const noexcept;

  static constexpr std::size_t kMaxSpans = 4096;

  // --- Exporters ---------------------------------------------------------
  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {...}, "spans": [...], "spans_dropped": n}.
  /// Strict obs::json output; `indent` as in JsonWriter.
  void write_json(std::ostream& out, int indent = 2) const;
  std::string json(int indent = 2) const;

  /// Prometheus text exposition format (counters as `_total`-suffix-free
  /// counters, histograms with cumulative `le` buckets + _sum/_count).
  void write_prometheus(std::ostream& out) const;
  std::string prometheus() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::vector<SpanRecord> spans_;
  std::atomic<std::uint64_t> span_ids_{0};
  std::uint64_t spans_dropped_ = 0;
};

}  // namespace lppa::obs
