#include "obs/metrics.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>

#include "common/error.h"
#include "obs/json.h"

namespace lppa::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  LPPA_REQUIRE(!bounds_.empty(), "Histogram needs at least one bucket bound");
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    LPPA_REQUIRE(std::isfinite(bounds_[i]),
                 "Histogram bucket bounds must be finite");
    LPPA_REQUIRE(i == 0 || bounds_[i - 1] < bounds_[i],
                 "Histogram bucket bounds must be strictly increasing");
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::observe(double v) noexcept {
  // NaN observations are unattributable to any bucket; count them in
  // +Inf so count() stays consistent with the bucket total.
  std::size_t idx = bounds_.size();
  if (!std::isnan(v)) {
    idx = static_cast<std::size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  }
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  if (std::isfinite(v)) sum_.fetch_add(v, std::memory_order_relaxed);
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  LPPA_REQUIRE(i <= bounds_.size(), "Histogram bucket index out of range");
  return buckets_[i].load(std::memory_order_relaxed);
}

std::span<const double> MetricsRegistry::default_time_buckets_us() noexcept {
  static constexpr std::array<double, 19> kBuckets = {
      10.0,      20.0,      50.0,       100.0,      200.0,
      500.0,     1000.0,    2000.0,     5000.0,     10000.0,
      20000.0,   50000.0,   100000.0,   200000.0,   500000.0,
      1000000.0, 2000000.0, 5000000.0,  50000000.0};
  return kBuckets;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (upper_bounds.empty()) upper_bounds = default_time_buckets_us();
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::vector<double>(
                          upper_bounds.begin(), upper_bounds.end())))
             .first;
  }
  return *it->second;
}

void MetricsRegistry::record_span(std::string_view name, std::uint64_t id,
                                  std::uint64_t parent, double wall_us) {
  histogram(std::string("span.") + std::string(name) + ".us")
      .observe(wall_us);
  std::lock_guard<std::mutex> lock(mutex_);
  if (spans_.size() >= kMaxSpans) {
    ++spans_dropped_;
    return;
  }
  spans_.push_back(SpanRecord{std::string(name), id, parent, wall_us});
}

std::vector<SpanRecord> MetricsRegistry::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::uint64_t MetricsRegistry::spans_dropped() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_dropped_;
}

void MetricsRegistry::write_json(std::ostream& out, int indent) const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonWriter w(out, indent);
  w.begin_object();

  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.field(name, c->value());
  w.end_object();

  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) w.field(name, g->value());
  w.end_object();

  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.field("count", h->count());
    w.field("sum", h->sum());
    w.key("buckets").begin_array();
    const auto& bounds = h->upper_bounds();
    for (std::size_t i = 0; i <= bounds.size(); ++i) {
      w.begin_object();
      if (i < bounds.size()) {
        w.field("le", bounds[i]);
      } else {
        w.field("le", "+Inf");  // string: JSON has no infinity literal
      }
      w.field("count", h->bucket_count(i));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();

  w.key("spans").begin_array();
  for (const SpanRecord& s : spans_) {
    w.begin_object();
    w.field("id", s.id);
    w.field("parent", s.parent);
    w.field("name", s.name);
    w.field("wall_us", s.wall_us);
    w.end_object();
  }
  w.end_array();
  w.field("spans_dropped", spans_dropped_);

  w.end_object();
  out << '\n';
}

std::string MetricsRegistry::json(int indent) const {
  std::ostringstream out;
  write_json(out, indent);
  return out.str();
}

namespace {

/// Prometheus metric names admit [a-zA-Z0-9_:] only; the registry's
/// dotted names map dots (and anything else) to underscores.
std::string prom_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

/// Prometheus floats: unlike JSON the text format HAS +Inf/NaN spellings.
std::string prom_number(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return json_number(v);
}

}  // namespace

void MetricsRegistry::write_prometheus(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) {
    const std::string pn = prom_name(name);
    out << "# TYPE " << pn << " counter\n" << pn << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string pn = prom_name(name);
    out << "# TYPE " << pn << " gauge\n"
        << pn << " " << prom_number(g->value()) << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string pn = prom_name(name);
    out << "# TYPE " << pn << " histogram\n";
    const auto& bounds = h->upper_bounds();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cumulative += h->bucket_count(i);
      out << pn << "_bucket{le=\"" << prom_number(bounds[i]) << "\"} "
          << cumulative << "\n";
    }
    cumulative += h->bucket_count(bounds.size());
    out << pn << "_bucket{le=\"+Inf\"} " << cumulative << "\n"
        << pn << "_sum " << prom_number(h->sum()) << "\n"
        << pn << "_count " << h->count() << "\n";
  }
}

std::string MetricsRegistry::prometheus() const {
  std::ostringstream out;
  write_prometheus(out);
  return out.str();
}

}  // namespace lppa::obs
