// obs::json — the repo's single strict JSON emitter.
//
// Every JSON artifact the library or the bench binaries produce
// (RoundReport::to_json, BENCH_*.json dumps, metrics snapshots) goes
// through this writer, so escaping and number formatting are decided in
// exactly one place:
//   * strings are escaped per RFC 8259 (quote, backslash, and every
//     control byte below 0x20; other bytes pass through untouched, so
//     UTF-8 payloads survive verbatim),
//   * doubles are emitted with the shortest decimal form that parses
//     back to the identical value, and non-finite values (inf/NaN, which
//     JSON cannot represent) are emitted as `null` rather than producing
//     an unparseable document.
//
// The writer is a push-style state machine over an ostream; misuse (a
// value where a key is required, unbalanced scopes) throws
// LppaError(kInvalidArgument) instead of silently emitting garbage.
#pragma once

#include <concepts>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"

namespace lppa::obs {

/// Appends the RFC 8259 escape of `s` (without surrounding quotes).
void append_json_escaped(std::string& out, std::string_view s);

/// `s` as a quoted, escaped JSON string literal.
std::string json_quote(std::string_view s);

/// `v` in the shortest decimal form that round-trips, or "null" when
/// non-finite.  Never emits "inf"/"nan", which strict parsers reject.
std::string json_number(double v);

class JsonWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.  `indent` > 0
  /// pretty-prints with that many spaces per level (newline-separated
  /// items), 0 emits the compact single-line form.
  explicit JsonWriter(std::ostream& out, int indent = 0)
      : out_(out), indent_(indent) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; must be directly inside an object and must be
  /// followed by exactly one value (or scope).
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b);
  JsonWriter& value(double v);
  JsonWriter& null();

  template <typename T>
    requires(std::integral<T> && !std::same_as<T, bool>)
  JsonWriter& value(T v) {
    before_value();
    if constexpr (std::signed_integral<T>) {
      out_ << static_cast<long long>(v);
    } else {
      out_ << static_cast<unsigned long long>(v);
    }
    return *this;
  }

  /// Splices pre-serialized JSON produced by another JsonWriter (e.g. a
  /// RoundReport::to_json() string embedded in a bench dump).  The
  /// caller vouches for its validity; no re-escaping happens.
  JsonWriter& raw(std::string_view json);

  /// Convenience: key(name) followed by value(v).
  template <typename T>
  JsonWriter& field(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  /// True once the single top-level value is complete and every scope is
  /// closed — the moment the stream holds one well-formed document.
  bool complete() const noexcept {
    return stack_.empty() && top_level_done_;
  }

 private:
  enum class Scope : std::uint8_t { kObject, kArray };
  struct Frame {
    Scope scope;
    std::size_t items = 0;
    bool key_pending = false;
  };

  void before_value();
  void newline_indent();

  std::ostream& out_;
  int indent_ = 0;
  std::vector<Frame> stack_;
  bool top_level_done_ = false;
};

}  // namespace lppa::obs
