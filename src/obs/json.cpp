#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace lppa::obs {

void append_json_escaped(std::string& out, std::string_view s) {
  static constexpr char kHex[] = "0123456789abcdef";
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          out += "\\u00";
          out += kHex[(u >> 4) & 0xF];
          out += kHex[u & 0xF];
        } else {
          out += c;
        }
    }
  }
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  append_json_escaped(out, s);
  out += '"';
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  // Shortest decimal that parses back to the identical bits: try the
  // 15/16/17 significant-digit forms in order.  %g never emits JSON-
  // invalid forms for finite values (no hex floats, no leading '+').
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  out_ << '\n';
  for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_);
       ++i) {
    out_ << ' ';
  }
}

void JsonWriter::before_value() {
  if (stack_.empty()) {
    LPPA_REQUIRE(!top_level_done_,
                 "JsonWriter: a document holds exactly one top-level value");
    top_level_done_ = true;
    return;
  }
  Frame& frame = stack_.back();
  if (frame.scope == Scope::kObject) {
    LPPA_REQUIRE(frame.key_pending,
                 "JsonWriter: object members need key() before the value");
    frame.key_pending = false;
    return;  // key() already emitted the separator and counted the item
  }
  if (frame.items++ > 0) out_ << (indent_ > 0 ? "," : ", ");
  newline_indent();
}

JsonWriter& JsonWriter::key(std::string_view name) {
  LPPA_REQUIRE(!stack_.empty() && stack_.back().scope == Scope::kObject,
               "JsonWriter: key() outside an object");
  Frame& frame = stack_.back();
  LPPA_REQUIRE(!frame.key_pending, "JsonWriter: key() after a dangling key");
  if (frame.items++ > 0) out_ << (indent_ > 0 ? "," : ", ");
  newline_indent();
  frame.key_pending = true;
  out_ << json_quote(name) << ": ";
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  stack_.push_back({Scope::kObject});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  LPPA_REQUIRE(!stack_.empty() && stack_.back().scope == Scope::kObject,
               "JsonWriter: end_object() without a matching begin_object()");
  LPPA_REQUIRE(!stack_.back().key_pending,
               "JsonWriter: end_object() with a dangling key");
  const bool had_items = stack_.back().items > 0;
  stack_.pop_back();
  if (had_items) newline_indent();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  stack_.push_back({Scope::kArray});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  LPPA_REQUIRE(!stack_.empty() && stack_.back().scope == Scope::kArray,
               "JsonWriter: end_array() without a matching begin_array()");
  const bool had_items = stack_.back().items > 0;
  stack_.pop_back();
  if (had_items) newline_indent();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  out_ << json_quote(s);
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  before_value();
  out_ << (b ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  out_ << json_number(v);
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ << "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  LPPA_REQUIRE(!json.empty(), "JsonWriter: raw() needs a non-empty document");
  before_value();
  out_ << json;
  return *this;
}

}  // namespace lppa::obs
