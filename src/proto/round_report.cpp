#include "proto/round_report.h"

#include <sstream>

namespace lppa::proto {

const char* to_string(RoundReport::ExclusionReason reason) noexcept {
  switch (reason) {
    case RoundReport::ExclusionReason::kTimeout:
      return "timeout";
    case RoundReport::ExclusionReason::kInvalid:
      return "invalid";
    case RoundReport::ExclusionReason::kEquivocation:
      return "equivocation";
  }
  return "?";
}

std::string RoundReport::summary() const {
  std::ostringstream out;
  out << "round " << round << ": " << survivors.size() << "/" << num_users
      << " survived";
  if (!excluded.empty()) {
    out << ", excluded";
    for (const auto& e : excluded) {
      out << " su" << e.user << "(" << to_string(e.reason) << ")";
    }
  }
  out << ", retry_waves=" << retry_waves
      << ", rejected=" << rejected_messages
      << ", faults[drop=" << faults.drops << " dup=" << faults.duplicates
      << " reorder=" << faults.reorders << " corrupt=" << faults.corruptions
      << " delay=" << faults.delays << "]"
      << (completed ? ", completed" : ", INCOMPLETE");
  return out.str();
}

}  // namespace lppa::proto
