#include "proto/round_report.h"

#include <sstream>

namespace lppa::proto {

const char* to_string(RoundReport::ExclusionReason reason) noexcept {
  switch (reason) {
    case RoundReport::ExclusionReason::kTimeout:
      return "timeout";
    case RoundReport::ExclusionReason::kInvalid:
      return "invalid";
    case RoundReport::ExclusionReason::kEquivocation:
      return "equivocation";
  }
  return "?";
}

std::string RoundReport::summary() const {
  std::ostringstream out;
  out << "round " << round << ": " << survivors.size() << "/" << num_users
      << " survived";
  if (!excluded.empty()) {
    out << ", excluded";
    for (const auto& e : excluded) {
      out << " su" << e.user << "(" << to_string(e.reason) << ")";
    }
  }
  out << ", retry_waves=" << retry_waves
      << ", rejected=" << rejected_messages
      << ", faults[drop=" << faults.drops << " dup=" << faults.duplicates
      << " reorder=" << faults.reorders << " corrupt=" << faults.corruptions
      << " delay=" << faults.delays << "]";
  if (crash_recoveries > 0) {
    out << ", recoveries=" << crash_recoveries << " (replayed "
        << replayed_records << " of " << journal_records << " records)";
  }
  if (degraded) {
    out << ", DEGRADED (deadline " << deadline_ticks << " ticks, used "
        << ticks_used << ")";
  }
  out << (completed ? ", completed" : ", INCOMPLETE");
  return out.str();
}

namespace {

/// Minimal JSON string escaping for the detail fields (quotes,
/// backslashes, control bytes); everything else the reports emit is
/// plain ASCII.
void append_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xF]
              << "0123456789abcdef"[c & 0xF];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

std::string RoundReport::to_json() const {
  std::ostringstream out;
  out << "{\"round\": " << round << ", \"num_users\": " << num_users
      << ", \"completed\": " << (completed ? "true" : "false")
      << ", \"degraded\": " << (degraded ? "true" : "false")
      << ", \"survivors\": [";
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    out << (i ? ", " : "") << survivors[i];
  }
  out << "], \"excluded\": [";
  for (std::size_t i = 0; i < excluded.size(); ++i) {
    const Exclusion& e = excluded[i];
    out << (i ? ", " : "") << "{\"user\": " << e.user << ", \"reason\": \""
        << to_string(e.reason) << "\", \"detail\": ";
    append_json_string(out, e.detail);
    out << "}";
  }
  out << "], \"retry_waves\": " << retry_waves
      << ", \"charge_attempts\": " << charge_attempts
      << ", \"rejected_messages\": " << rejected_messages
      << ", \"duplicate_redeliveries\": " << duplicate_redeliveries
      << ", \"crash_recoveries\": " << crash_recoveries
      << ", \"journal_records\": " << journal_records
      << ", \"journal_bytes\": " << journal_bytes
      << ", \"replayed_records\": " << replayed_records
      << ", \"deadline_ticks\": " << deadline_ticks
      << ", \"ticks_used\": " << ticks_used << ", \"faults\": {\"messages\": "
      << faults.messages << ", \"drops\": " << faults.drops
      << ", \"duplicates\": " << faults.duplicates
      << ", \"reorders\": " << faults.reorders
      << ", \"corruptions\": " << faults.corruptions
      << ", \"delays\": " << faults.delays << "}}";
  return out.str();
}

}  // namespace lppa::proto
