#include "proto/round_report.h"

#include <sstream>

#include "obs/json.h"

namespace lppa::proto {

const char* to_string(RoundReport::ExclusionReason reason) noexcept {
  switch (reason) {
    case RoundReport::ExclusionReason::kTimeout:
      return "timeout";
    case RoundReport::ExclusionReason::kInvalid:
      return "invalid";
    case RoundReport::ExclusionReason::kEquivocation:
      return "equivocation";
  }
  return "?";
}

std::string RoundReport::summary() const {
  std::ostringstream out;
  out << "round " << round << ": " << survivors.size() << "/" << num_users
      << " survived";
  if (!excluded.empty()) {
    out << ", excluded";
    for (const auto& e : excluded) {
      out << " su" << e.user << "(" << to_string(e.reason) << ")";
    }
  }
  out << ", retry_waves=" << retry_waves
      << ", rejected=" << rejected_messages
      << ", faults[drop=" << faults.drops << " dup=" << faults.duplicates
      << " reorder=" << faults.reorders << " corrupt=" << faults.corruptions
      << " delay=" << faults.delays << "]";
  if (crash_recoveries > 0) {
    out << ", recoveries=" << crash_recoveries << " (replayed "
        << replayed_records << " of " << journal_records << " records)";
  }
  if (degraded) {
    out << ", DEGRADED (deadline " << deadline_ticks << " ticks, used "
        << ticks_used << ")";
  }
  out << (completed ? ", completed" : ", INCOMPLETE");
  return out.str();
}

std::string RoundReport::to_json() const {
  // The shared emitter (obs/json.h) handles all escaping: an adversarial
  // Exclusion::detail — validator text quoting hostile peer bytes —
  // cannot break the document.
  std::ostringstream out;
  obs::JsonWriter w(out);
  w.begin_object()
      .field("round", round)
      .field("num_users", num_users)
      .field("completed", completed)
      .field("degraded", degraded);
  w.key("survivors").begin_array();
  for (const std::size_t u : survivors) w.value(u);
  w.end_array();
  w.key("excluded").begin_array();
  for (const Exclusion& e : excluded) {
    w.begin_object()
        .field("user", e.user)
        .field("reason", to_string(e.reason))
        .field("detail", std::string_view(e.detail))
        .end_object();
  }
  w.end_array();
  w.field("retry_waves", retry_waves)
      .field("charge_attempts", charge_attempts)
      .field("rejected_messages", rejected_messages)
      .field("duplicate_redeliveries", duplicate_redeliveries)
      .field("crash_recoveries", crash_recoveries)
      .field("journal_records", journal_records)
      .field("journal_bytes", journal_bytes)
      .field("replayed_records", replayed_records)
      .field("deadline_ticks", deadline_ticks)
      .field("ticks_used", ticks_used);
  w.key("faults")
      .begin_object()
      .field("messages", faults.messages)
      .field("drops", faults.drops)
      .field("duplicates", faults.duplicates)
      .field("reorders", faults.reorders)
      .field("corruptions", faults.corruptions)
      .field("delays", faults.delays)
      .end_object();
  w.end_object();
  return out.str();
}

}  // namespace lppa::proto
