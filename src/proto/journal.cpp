#include "proto/journal.h"

#include "crypto/sha256.h"

namespace lppa::proto {

namespace {

std::uint32_t body_checksum(std::span<const std::uint8_t> body) {
  const crypto::Digest d = crypto::Sha256::hash(body);
  return static_cast<std::uint32_t>(d.bytes[0]) |
         (static_cast<std::uint32_t>(d.bytes[1]) << 8) |
         (static_cast<std::uint32_t>(d.bytes[2]) << 16) |
         (static_cast<std::uint32_t>(d.bytes[3]) << 24);
}

bool known_type(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(JournalRecordType::kRoundStart) &&
         raw <= static_cast<std::uint8_t>(JournalRecordType::kChurnArrival);
}

}  // namespace

JournalRecord::UserNote JournalRecord::user_note() const {
  LPPA_REQUIRE(type == JournalRecordType::kStrike ||
                   type == JournalRecordType::kEquivocation,
               "record carries no user note");
  ByteReader r(payload);
  UserNote note;
  note.user = r.u64();
  const Bytes detail = r.bytes();
  note.detail.assign(detail.begin(), detail.end());
  LPPA_PROTOCOL_CHECK(r.at_end(), "trailing bytes after journal user note");
  return note;
}

JournalRecord::Nack JournalRecord::nack() const {
  LPPA_REQUIRE(type == JournalRecordType::kNackSent,
               "record is not a nack record");
  ByteReader r(payload);
  Nack nack;
  nack.user = r.u64();
  nack.mask = r.u8();
  nack.wave = r.u64();
  LPPA_PROTOCOL_CHECK(r.at_end(), "trailing bytes after journal nack");
  return nack;
}

std::uint64_t JournalRecord::churn_user() const {
  LPPA_REQUIRE(type == JournalRecordType::kChurnDeparture ||
                   type == JournalRecordType::kChurnArrival,
               "record is not a churn record");
  ByteReader r(payload);
  const std::uint64_t u = r.u64();
  LPPA_PROTOCOL_CHECK(r.at_end(), "trailing bytes after journal churn record");
  return u;
}

std::uint64_t JournalRecord::round_start_users() const {
  LPPA_REQUIRE(type == JournalRecordType::kRoundStart,
               "record is not a round-start record");
  ByteReader r(payload);
  const std::uint64_t n = r.u64();
  LPPA_PROTOCOL_CHECK(r.at_end(), "trailing bytes after journal round start");
  return n;
}

void RoundJournal::append(JournalRecordType type,
                          std::span<const std::uint8_t> payload) {
  ByteWriter body;
  body.u8(static_cast<std::uint8_t>(type));
  body.raw(payload);
  ByteWriter frame;
  frame.u32(static_cast<std::uint32_t>(body.size()));
  frame.raw(body.data());
  frame.u32(body_checksum(body.data()));
  const Bytes framed = frame.take();
  log_.insert(log_.end(), framed.begin(), framed.end());
  ++records_;
}

void RoundJournal::append_round_start(std::uint64_t num_users) {
  ByteWriter w;
  w.u64(num_users);
  append(JournalRecordType::kRoundStart, w.data());
}

void RoundJournal::append_user_note(JournalRecordType type, std::uint64_t user,
                                    std::string_view detail) {
  LPPA_REQUIRE(type == JournalRecordType::kStrike ||
                   type == JournalRecordType::kEquivocation,
               "user notes are strike or equivocation records");
  ByteWriter w;
  w.u64(user);
  w.bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(detail.data()), detail.size()));
  append(type, w.data());
}

void RoundJournal::append_nack(std::uint64_t user, std::uint8_t mask,
                               std::uint64_t wave) {
  ByteWriter w;
  w.u64(user);
  w.u8(mask);
  w.u64(wave);
  append(JournalRecordType::kNackSent, w.data());
}

void RoundJournal::append_churn(JournalRecordType type, std::uint64_t user) {
  LPPA_REQUIRE(type == JournalRecordType::kChurnDeparture ||
                   type == JournalRecordType::kChurnArrival,
               "churn records are departure or arrival records");
  ByteWriter w;
  w.u64(user);
  append(type, w.data());
}

std::vector<JournalRecord> RoundJournal::read(
    std::span<const std::uint8_t> wire) {
  std::vector<JournalRecord> records;
  ByteReader r(wire);
  while (!r.at_end()) {
    LPPA_PROTOCOL_CHECK(r.remaining() >= 4,
                        "journal record shorter than its length prefix");
    const std::uint32_t body_len = r.u32();
    LPPA_PROTOCOL_CHECK(body_len >= 1, "journal record body is empty");
    LPPA_PROTOCOL_CHECK(r.remaining() >= static_cast<std::size_t>(body_len) + 4,
                        "journal record truncated");
    const Bytes body = r.raw(body_len);
    const std::uint32_t stored = r.u32();
    LPPA_PROTOCOL_CHECK(stored == body_checksum(body),
                        "journal record checksum mismatch");
    LPPA_PROTOCOL_CHECK(known_type(body[0]), "unknown journal record type");
    JournalRecord record;
    record.type = static_cast<JournalRecordType>(body[0]);
    record.payload.assign(body.begin() + 1, body.end());
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace lppa::proto
