#include "proto/bus.h"

#include <algorithm>

#include "obs/metrics.h"
#include "proto/fault.h"

namespace lppa::proto {

void MessageBus::set_metrics(obs::MetricsRegistry* metrics) noexcept {
  metrics_ = metrics;
}

std::string Address::label() const {
  switch (kind) {
    case Kind::kSecondaryUser:
      return "su" + std::to_string(index);
    case Kind::kAuctioneer:
      return "auctioneer";
    case Kind::kTtp:
      return "ttp";
  }
  return "?";
}

void MessageBus::deliver(const Address& to, Bytes message, bool front) {
  auto& queue = queues_[to];
  if (front) {
    queue.push_front(std::move(message));
  } else {
    queue.push_back(std::move(message));
  }
}

void MessageBus::send(const Address& from, const Address& to, Bytes message) {
  auto& stats = stats_[{from, to}];
  ++stats.messages;
  stats.bytes += message.size();
  if (metrics_ != nullptr) {
    metrics_->counter("bus.messages").inc();
    metrics_->counter("bus.bytes").inc(message.size());
    if (to.kind == Address::Kind::kAuctioneer) {
      metrics_->counter("bus.to_auctioneer.messages").inc();
    } else if (to.kind == Address::Kind::kTtp) {
      metrics_->counter("bus.to_ttp.messages").inc();
    }
  }

  if (injector_ == nullptr) {
    deliver(to, std::move(message), /*front=*/false);
    return;
  }

  const FaultDecision d = injector_->decide(from, to);
  if (d.corrupt) injector_->corrupt_in_place(message);
  switch (d.delivery) {
    case FaultDecision::Delivery::kDrop:
      return;
    case FaultDecision::Delivery::kDuplicate:
      deliver(to, message, /*front=*/false);
      deliver(to, std::move(message), /*front=*/false);
      return;
    case FaultDecision::Delivery::kReorder:
      deliver(to, std::move(message), /*front=*/true);
      return;
    case FaultDecision::Delivery::kDelay:
      delayed_.push_back(Delayed{to, std::move(message), d.delay_ticks});
      return;
    case FaultDecision::Delivery::kNormal:
      deliver(to, std::move(message), /*front=*/false);
      return;
  }
}

void MessageBus::advance(std::size_t ticks) {
  for (std::size_t t = 0; t < ticks; ++t) {
    if (delayed_.empty()) return;
    // Deliver in send order; erase-from-vector keeps that order stable.
    auto it = delayed_.begin();
    while (it != delayed_.end()) {
      if (--it->ticks_left == 0) {
        if (metrics_ != nullptr) metrics_->counter("bus.delayed_flushed").inc();
        deliver(it->to, std::move(it->message), /*front=*/false);
        it = delayed_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

std::optional<Bytes> MessageBus::receive(const Address& to) {
  auto it = queues_.find(to);
  if (it == queues_.end() || it->second.empty()) return std::nullopt;
  Bytes front = std::move(it->second.front());
  it->second.pop_front();
  return front;
}

std::size_t MessageBus::pending(const Address& to) const {
  auto it = queues_.find(to);
  return it == queues_.end() ? 0 : it->second.size();
}

LinkStats MessageBus::link(const Address& from, const Address& to) const {
  auto it = stats_.find({from, to});
  return it == stats_.end() ? LinkStats{} : it->second;
}

LinkStats MessageBus::total_into(Address::Kind to_kind) const {
  LinkStats total;
  for (const auto& [link, stats] : stats_) {
    if (link.second.kind == to_kind) {
      total.messages += stats.messages;
      total.bytes += stats.bytes;
    }
  }
  return total;
}

}  // namespace lppa::proto
