#include "proto/bus.h"

namespace lppa::proto {

std::string Address::label() const {
  switch (kind) {
    case Kind::kSecondaryUser:
      return "su" + std::to_string(index);
    case Kind::kAuctioneer:
      return "auctioneer";
    case Kind::kTtp:
      return "ttp";
  }
  return "?";
}

void MessageBus::send(const Address& from, const Address& to, Bytes message) {
  auto& stats = stats_[{from, to}];
  ++stats.messages;
  stats.bytes += message.size();
  queues_[to].push_back(std::move(message));
}

std::optional<Bytes> MessageBus::receive(const Address& to) {
  auto it = queues_.find(to);
  if (it == queues_.end() || it->second.empty()) return std::nullopt;
  Bytes front = std::move(it->second.front());
  it->second.pop_front();
  return front;
}

std::size_t MessageBus::pending(const Address& to) const {
  auto it = queues_.find(to);
  return it == queues_.end() ? 0 : it->second.size();
}

LinkStats MessageBus::link(const Address& from, const Address& to) const {
  auto it = stats_.find({from, to});
  return it == stats_.end() ? LinkStats{} : it->second;
}

LinkStats MessageBus::total_into(Address::Kind to_kind) const {
  LinkStats total;
  for (const auto& [link, stats] : stats_) {
    if (link.second.kind == to_kind) {
      total.messages += stats.messages;
      total.bytes += stats.bytes;
    }
  }
  return total;
}

}  // namespace lppa::proto
