// The three protocol roles as wire-level state machines.
//
// Each party only ever consumes and produces Envelope bytes; the session
// driver (proto/session.h) moves those bytes over a MessageBus.  The
// information separation of the paper is structural here: SuClient holds
// the TTP-issued keys, AuctioneerSession holds none, TtpService wraps
// the TrustedThirdParty.
#pragma once

#include <optional>
#include <vector>

#include "auction/allocate.h"
#include "core/encrypted_bid_table.h"
#include "core/lppa_auction.h"
#include "core/sharded_bid_table.h"
#include "core/submission_validator.h"
#include "proto/journal.h"
#include "proto/messages.h"
#include "proto/round_report.h"

namespace lppa::proto {

/// A secondary user: masks its location and bids under the TTP-issued
/// keys and emits submission envelopes.
class SuClient {
 public:
  SuClient(std::size_t user_index, const core::LppaConfig& config,
           const core::SuKeyBundle& keys);

  std::size_t user_index() const noexcept { return user_index_; }

  /// The PPBS location submission as a wire envelope.
  Bytes location_envelope(const auction::SuLocation& location, Rng& rng) const;

  /// The PPBS (advanced) bid submission as a wire envelope.
  Bytes bid_envelope(const auction::BidVector& bids, Rng& rng) const;

 private:
  std::size_t user_index_;
  core::LppaConfig config_;
  core::PpbsLocation location_protocol_;
  core::BidSubmitter submitter_;
};

/// The auctioneer: ingests submissions, reconstructs the conflict graph,
/// allocates in the masked domain, emits charge-query batches, ingests
/// the TTP's results and publishes the winner announcement.
///
/// Every submission passes core::SubmissionValidator before it is
/// stored, so nothing malformed ever reaches the conflict-graph build or
/// the EncryptedBidTable.  Two ingestion modes share that validation:
/// the strict ingest() throws on any problem (the classic lock-step
/// session), while try_ingest() classifies the problem and keeps the
/// session usable — the hardened session uses it to survive Byzantine
/// senders, corrupted links, and benign redeliveries, then finalizes the
/// round over whichever users delivered valid submissions.
class AuctioneerSession {
 public:
  AuctioneerSession(const core::LppaConfig& config, std::size_t num_users);

  /// Feeds one envelope from an SU.  Throws LppaError(kProtocol) on
  /// malformed, duplicate, mistyped or out-of-range submissions.
  void ingest(const Bytes& envelope_bytes);

  /// How try_ingest classified one envelope.
  enum class IngestResult : std::uint8_t {
    kAccepted,              ///< stored; counts towards readiness
    kDuplicateRedelivery,   ///< byte-identical re-arrival; harmless
    kRejected,              ///< unparseable / invalid / unattributable
    kEquivocation,          ///< second, different valid submission: the
                            ///< sender is excluded from the round
  };

  /// Fault-tolerant ingest: never throws on peer-supplied garbage.
  /// Rejections with an attributable sender count as strikes against it;
  /// equivocation marks the sender excluded.  `error`, when non-null,
  /// receives the reason for any non-accepted outcome.
  ///
  /// When the session config carries an obs::MetricsRegistry, each
  /// classification increments `session.accepted` / `session.duplicates`
  /// / `session.rejected` / `session.equivocations`.
  IngestResult try_ingest(const Bytes& envelope_bytes,
                          std::string* error = nullptr);

  /// Attaches (or detaches, with nullptr) a write-ahead journal: from
  /// then on every state transition — accepted submissions, strikes,
  /// equivocations, the admission and allocation phase commits, accepted
  /// charge batches — is appended *as part of* the transition, so a
  /// crash at any point between transitions finds the log complete.
  /// The journal is not owned; attach it AFTER replaying an old log
  /// (replay must not re-journal what is already durable).
  void attach_journal(RoundJournal* journal) noexcept { journal_ = journal; }

  /// Journal-replay hooks: re-apply a recorded strike / equivocation
  /// verdict without re-seeing the offending message (only accepted
  /// envelopes are journaled in full).  Used by the recovery driver.
  void replay_strike(std::size_t user, const std::string& detail);
  void replay_equivocation(std::size_t user, const std::string& detail);

  /// Churn: SU `user` leaves the auction before admission closes.  Its
  /// stored submissions and their accepted wire bytes are cleared and the
  /// slot is marked absent — submissions from an absent SU are rejected
  /// (without a strike) until churn_return.  Crucially, clearing the
  /// wire bytes means a departed-then-returned SU's FRESH submission is
  /// classified kAccepted, never kEquivocation: equivocation is a fork of
  /// one round's identity, not a property of rejoining a round.  (An
  /// equivocation verdict already on record stays sticky — leaving does
  /// not repair a forked identity.)  Journaled as kChurnDeparture
  /// (write-ahead); only allowed before finalize_participants.
  void churn_depart(std::size_t user);

  /// Churn: SU `user` (re)joins the open admission phase; its slot
  /// accepts fresh submissions again.  Journaled as kChurnArrival.
  void churn_return(std::size_t user);

  /// True while `user` is departed (between churn_depart and
  /// churn_return).
  bool is_absent(std::size_t user) const;

  /// Count of churn operations applied so far (departures + returns),
  /// including ones re-applied by journal replay.  A crash-recovering
  /// driver resumes its scripted churn schedule from this cursor instead
  /// of re-issuing operations the journal already made durable.
  std::size_t churn_ops_applied() const noexcept { return churn_ops_; }

  /// True once every present user's location and bid submission has
  /// arrived (absent/departed users are not awaited).
  bool ready() const noexcept;

  bool has_location(std::size_t user) const;
  bool has_bid(std::size_t user) const;
  /// True when `user` equivocated and is out of the round.
  bool is_excluded(std::size_t user) const;

  /// Users still missing a valid location or bid (equivocators are not
  /// listed — retransmission cannot repair a forked identity).
  std::vector<std::size_t> missing_users() const;

  /// Closes admission: users missing a valid submission (or excluded for
  /// equivocation) are written into `report.excluded` with a reason, the
  /// rest become the round's participants.  Throws LppaError(kProtocol)
  /// when nobody survives.  Idempotent once called.
  void finalize_participants(RoundReport& report);

  /// Participants of the finalized round (original SU ids, ascending).
  const std::vector<std::size_t>& participants() const noexcept {
    return participants_;
  }

  /// Runs conflict-graph construction + greedy allocation (Algorithm 3)
  /// over the participants.  Without a prior finalize_participants()
  /// call it requires ready() and runs over everyone (legacy mode).
  /// Award::user carries original SU ids either way.
  void run_allocation(Rng& rng);

  /// Charge-query batches for the TTP (respects ttp_batch_size).
  /// Requires run_allocation() to have happened.
  std::vector<Bytes> charge_query_envelopes() const;

  /// Feeds one charge-result envelope back from the TTP.  Duplicate
  /// results for an award are idempotent.
  void ingest_charge_results(const Bytes& envelope_bytes);

  /// True once every award has a TTP charge result.
  bool charging_complete() const noexcept;

  /// True once finalize_participants() (or a restore past it) happened.
  bool admission_closed() const noexcept { return finalized_; }

  /// True once run_allocation() (or a restore of its snapshot) happened.
  bool allocation_done() const noexcept { return allocated_; }

  /// Serializes the complete session state — accepted submission wire
  /// bytes (the conflict-graph inputs), strikes and exclusion verdicts,
  /// the finalized participant set, and after allocation the
  /// EncryptedBidTable image plus awards and charge progress — into a
  /// self-contained byte image.  The journal stores this as the
  /// allocation phase commit; snapshot→restore_from→snapshot is
  /// byte-identical.
  Bytes snapshot() const;

  /// Inverse of snapshot(), applied to a freshly constructed session of
  /// the same config and population size.  Throws LppaError(kProtocol)
  /// on a damaged image and LppaError(kState) if the session already
  /// holds state.  The conflict graph is rebuilt deterministically from
  /// the restored location submissions (no randomness is involved), so
  /// a restored session continues the round byte-identically.
  void restore_from(std::span<const std::uint8_t> wire);

  /// The published outcome; requires charging_complete().
  Bytes winner_announcement() const;
  const std::vector<auction::Award>& awards() const noexcept {
    return awards_;
  }

  /// The conflict graph over participants (compacted indices when the
  /// round was finalized with exclusions).
  const auction::ConflictGraph& conflicts() const;

 private:
  IngestResult classify_and_store(const Bytes& envelope_bytes,
                                  std::string* error);
  void note_ingest(IngestResult result) const;
  const core::BidSubmission& bid_of(auction::UserId user) const;
  void compact_participants();

  core::LppaConfig config_;
  std::size_t num_users_;
  core::SubmissionValidator validator_;
  std::vector<std::optional<core::LocationSubmission>> locations_;
  std::vector<std::optional<core::BidSubmission>> bids_;
  std::vector<Bytes> location_wire_;  ///< accepted bytes, for dedupe
  std::vector<Bytes> bid_wire_;
  std::vector<bool> absent_;  ///< departed (churn) — slot closed for ingest
  std::vector<bool> equivocated_;
  std::vector<std::size_t> strikes_;       ///< attributable invalid messages
  std::vector<std::string> last_error_;    ///< last rejection reason per user
  std::vector<std::size_t> participants_;  ///< original ids, ascending
  std::vector<std::size_t> compact_index_;  ///< original id -> bid_store_ slot
  bool finalized_ = false;
  std::vector<core::BidSubmission> bid_store_;  ///< participants, compacted
  std::optional<auction::ConflictGraph> conflicts_;
  /// The masked bid table as the allocator left it (cells consumed).
  /// References bid_store_ on the run_allocation path and owns its
  /// submissions on the restore path; the session is used in place by
  /// the drivers, never moved, so the reference stays valid.
  std::optional<core::EncryptedBidTable> table_;
  /// The partitioned twin of table_, used when config_.num_shards > 1.
  /// The wire session never sees tile geometry (submissions are masked),
  /// so it shards with the geometry-free contiguous partition — the
  /// partition choice never affects answers, only locality.  Snapshots
  /// stay in the global EncryptedBidTable image format either way, so a
  /// journal written under num_shards=1 restores into a sharded session
  /// and vice versa.
  std::optional<core::ShardedBidTable> sharded_table_;
  std::vector<auction::Award> awards_;
  std::vector<bool> charge_done_;  ///< per-award TTP result received
  bool allocated_ = false;
  std::size_t churn_ops_ = 0;  ///< applied churn operations (see getter)
  RoundJournal* journal_ = nullptr;  ///< not owned; may be null
};

/// The periodically-available TTP endpoint.
class TtpService {
 public:
  explicit TtpService(core::TrustedThirdParty& ttp) : ttp_(&ttp) {}

  /// Decrypts/validates one charge-query batch envelope, returns the
  /// result batch envelope.
  Bytes handle(const Bytes& envelope_bytes);

 private:
  core::TrustedThirdParty* ttp_;
};

}  // namespace lppa::proto
