// The three protocol roles as wire-level state machines.
//
// Each party only ever consumes and produces Envelope bytes; the session
// driver (proto/session.h) moves those bytes over a MessageBus.  The
// information separation of the paper is structural here: SuClient holds
// the TTP-issued keys, AuctioneerSession holds none, TtpService wraps
// the TrustedThirdParty.
#pragma once

#include <optional>
#include <vector>

#include "auction/allocate.h"
#include "core/encrypted_bid_table.h"
#include "core/lppa_auction.h"
#include "proto/messages.h"

namespace lppa::proto {

/// A secondary user: masks its location and bids under the TTP-issued
/// keys and emits submission envelopes.
class SuClient {
 public:
  SuClient(std::size_t user_index, const core::LppaConfig& config,
           const core::SuKeyBundle& keys);

  std::size_t user_index() const noexcept { return user_index_; }

  /// The PPBS location submission as a wire envelope.
  Bytes location_envelope(const auction::SuLocation& location, Rng& rng) const;

  /// The PPBS (advanced) bid submission as a wire envelope.
  Bytes bid_envelope(const auction::BidVector& bids, Rng& rng) const;

 private:
  std::size_t user_index_;
  core::LppaConfig config_;
  core::PpbsLocation location_protocol_;
  core::BidSubmitter submitter_;
};

/// The auctioneer: ingests submissions, reconstructs the conflict graph,
/// allocates in the masked domain, emits charge-query batches, ingests
/// the TTP's results and publishes the winner announcement.
class AuctioneerSession {
 public:
  AuctioneerSession(const core::LppaConfig& config, std::size_t num_users);

  /// Feeds one envelope from an SU.  Throws LppaError(kProtocol) on
  /// malformed, duplicate, mistyped or out-of-range submissions.
  void ingest(const Bytes& envelope_bytes);

  /// True once every user's location and bid submission has arrived.
  bool ready() const noexcept;

  /// Runs conflict-graph construction + greedy allocation (Algorithm 3).
  /// Requires ready().
  void run_allocation(Rng& rng);

  /// Charge-query batches for the TTP (respects ttp_batch_size).
  /// Requires run_allocation() to have happened.
  std::vector<Bytes> charge_query_envelopes() const;

  /// Feeds one charge-result envelope back from the TTP.
  void ingest_charge_results(const Bytes& envelope_bytes);

  /// The published outcome; requires all charge results ingested.
  Bytes winner_announcement() const;
  const std::vector<auction::Award>& awards() const noexcept {
    return awards_;
  }

  const auction::ConflictGraph& conflicts() const;

 private:
  core::LppaConfig config_;
  std::size_t num_users_;
  std::vector<std::optional<core::LocationSubmission>> locations_;
  std::vector<std::optional<core::BidSubmission>> bids_;
  std::vector<core::BidSubmission> bid_store_;  ///< materialised at allocation
  std::optional<auction::ConflictGraph> conflicts_;
  std::vector<auction::Award> awards_;
  std::size_t results_ingested_ = 0;
  bool allocated_ = false;
};

/// The periodically-available TTP endpoint.
class TtpService {
 public:
  explicit TtpService(core::TrustedThirdParty& ttp) : ttp_(&ttp) {}

  /// Decrypts/validates one charge-query batch envelope, returns the
  /// result batch envelope.
  Bytes handle(const Bytes& envelope_bytes);

 private:
  core::TrustedThirdParty* ttp_;
};

}  // namespace lppa::proto
