#include "proto/parties.h"

#include <algorithm>
#include <numeric>

#include "obs/metrics.h"

namespace lppa::proto {

namespace {
constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
}  // namespace

// ------------------------------------------------------------- SuClient

SuClient::SuClient(std::size_t user_index, const core::LppaConfig& config,
                   const core::SuKeyBundle& keys)
    : user_index_(user_index),
      config_(config),
      location_protocol_(keys.g0, config.coord_width, config.lambda,
                         config.pad_location_ranges),
      submitter_(config.bid, keys.gb_master, keys.gc, keys.paillier) {}

Bytes SuClient::location_envelope(const auction::SuLocation& location,
                                  Rng& rng) const {
  Envelope e;
  e.type = MessageType::kLocationSubmission;
  e.sender = user_index_;
  e.payload = location_protocol_.submit(location, rng).serialize();
  return e.serialize();
}

Bytes SuClient::bid_envelope(const auction::BidVector& bids, Rng& rng) const {
  LPPA_REQUIRE(bids.size() == config_.num_channels,
               "bid vector must cover every auctioned channel");
  Envelope e;
  e.type = MessageType::kBidSubmission;
  e.sender = user_index_;
  e.payload = submitter_.submit(bids, rng).serialize();
  return e.serialize();
}

// ----------------------------------------------------- AuctioneerSession

AuctioneerSession::AuctioneerSession(const core::LppaConfig& config,
                                     std::size_t num_users)
    : config_(config),
      num_users_(num_users),
      validator_(config),
      locations_(num_users),
      bids_(num_users),
      location_wire_(num_users),
      bid_wire_(num_users),
      absent_(num_users, false),
      equivocated_(num_users, false),
      strikes_(num_users, 0),
      last_error_(num_users) {
  LPPA_REQUIRE(num_users > 0, "auction requires at least one user");
  // Normalise the backend pointer once (null = HMAC); the validator has
  // already rejected a pointer that contradicts config.bid.backend.
  config_.backend = &crypto::resolve_backend(config_.backend);
}

AuctioneerSession::IngestResult AuctioneerSession::classify_and_store(
    const Bytes& envelope_bytes, std::string* error) {
  const auto fail = [error](const std::string& msg) {
    if (error != nullptr) *error = msg;
  };

  Envelope e;
  try {
    e = Envelope::deserialize(envelope_bytes);
  } catch (const LppaError& err) {
    fail(err.what());
    return IngestResult::kRejected;
  }
  if (e.sender >= num_users_) {
    fail("submission from unknown user");
    return IngestResult::kRejected;
  }
  const std::size_t u = e.sender;
  if (equivocated_[u]) {
    fail("sender already excluded for equivocation");
    return IngestResult::kRejected;
  }
  if (absent_[u]) {
    // A departed SU's stray late traffic is not misbehaviour (no strike,
    // no journal entry — nothing changed); it is simply not in the round
    // until churn_return re-opens the slot.
    fail("submission from departed user");
    return IngestResult::kRejected;
  }

  // Helper shared by both submission kinds: parse + validate, then slot
  // with duplicate/equivocation classification.  The parse/validate step
  // runs BEFORE the duplicate check so that a corrupted redelivery of an
  // already-accepted submission counts as a transit-damaged message (a
  // strike), never as equivocation.  Every state change is journaled
  // before it is applied (write-ahead), so a crash between transitions
  // always finds the log covering the session's in-memory state.
  const auto slot = [&](auto parsed, auto& store, auto& wire,
                        const char* what) -> IngestResult {
    if (store[u].has_value()) {
      if (wire[u] == envelope_bytes) {
        fail(std::string("duplicate ") + what + " submission");
        return IngestResult::kDuplicateRedelivery;
      }
      last_error_[u] = std::string("conflicting ") + what + " submissions";
      if (journal_ != nullptr) {
        journal_->append_user_note(JournalRecordType::kEquivocation, u,
                                   last_error_[u]);
      }
      equivocated_[u] = true;
      fail(last_error_[u]);
      return IngestResult::kEquivocation;
    }
    if (journal_ != nullptr) {
      journal_->append(JournalRecordType::kAccepted, envelope_bytes);
    }
    store[u] = std::move(parsed);
    wire[u] = envelope_bytes;
    return IngestResult::kAccepted;
  };

  // An attributable invalid message is a state change (strikes decide
  // the kInvalid-vs-kTimeout exclusion reason), so it is journaled too.
  const auto strike = [&](const std::string& detail) {
    last_error_[u] = detail;
    if (journal_ != nullptr) {
      journal_->append_user_note(JournalRecordType::kStrike, u, detail);
    }
    ++strikes_[u];
    fail(last_error_[u]);
    return IngestResult::kRejected;
  };

  switch (e.type) {
    case MessageType::kLocationSubmission: {
      core::LocationSubmission s;
      try {
        s = core::LocationSubmission::deserialize(e.payload);
      } catch (const LppaError& err) {
        return strike(err.what());
      }
      if (auto verr = validator_.validate_location(s)) {
        return strike("invalid location submission: " + *verr);
      }
      return slot(std::move(s), locations_, location_wire_, "location");
    }
    case MessageType::kBidSubmission: {
      core::BidSubmission s;
      try {
        s = core::BidSubmission::deserialize(e.payload);
      } catch (const LppaError& err) {
        return strike(err.what());
      }
      if (auto verr = validator_.validate_bid(s)) {
        return strike("invalid bid submission: " + *verr);
      }
      return slot(std::move(s), bids_, bid_wire_, "bid");
    }
    default:
      fail("unexpected message type for auctioneer");
      return IngestResult::kRejected;
  }
}

void AuctioneerSession::replay_strike(std::size_t user,
                                      const std::string& detail) {
  LPPA_REQUIRE(user < num_users_, "user index out of range");
  ++strikes_[user];
  last_error_[user] = detail;
}

void AuctioneerSession::replay_equivocation(std::size_t user,
                                            const std::string& detail) {
  LPPA_REQUIRE(user < num_users_, "user index out of range");
  equivocated_[user] = true;
  last_error_[user] = detail;
}

void AuctioneerSession::churn_depart(std::size_t user) {
  LPPA_REQUIRE(user < num_users_, "user index out of range");
  LPPA_REQUIRE(!finalized_, "churn is only allowed before admission closes");
  LPPA_REQUIRE(!absent_[user], "user already departed");
  // Write-ahead: the departure record is durable before the slot state
  // changes, so a crash mid-churn replays to the identical session.
  if (journal_ != nullptr) {
    journal_->append_churn(JournalRecordType::kChurnDeparture, user);
  }
  absent_[user] = true;
  locations_[user].reset();
  bids_[user].reset();
  location_wire_[user].clear();
  bid_wire_[user].clear();
  last_error_[user] = "departed before admission closed";
  ++churn_ops_;
  if (config_.metrics != nullptr) {
    config_.metrics->counter("churn.session_departures").inc();
  }
}

void AuctioneerSession::churn_return(std::size_t user) {
  LPPA_REQUIRE(user < num_users_, "user index out of range");
  LPPA_REQUIRE(!finalized_, "churn is only allowed before admission closes");
  LPPA_REQUIRE(absent_[user], "user is not departed");
  if (journal_ != nullptr) {
    journal_->append_churn(JournalRecordType::kChurnArrival, user);
  }
  absent_[user] = false;
  last_error_[user].clear();
  ++churn_ops_;
  if (config_.metrics != nullptr) {
    config_.metrics->counter("churn.session_arrivals").inc();
  }
}

bool AuctioneerSession::is_absent(std::size_t user) const {
  LPPA_REQUIRE(user < num_users_, "user index out of range");
  return absent_[user];
}

void AuctioneerSession::note_ingest(IngestResult result) const {
  obs::MetricsRegistry* const m = config_.metrics;
  if (m == nullptr) return;
  switch (result) {
    case IngestResult::kAccepted:
      m->counter("session.accepted").inc();
      break;
    case IngestResult::kDuplicateRedelivery:
      m->counter("session.duplicates").inc();
      break;
    case IngestResult::kRejected:
      m->counter("session.rejected").inc();
      break;
    case IngestResult::kEquivocation:
      m->counter("session.equivocations").inc();
      break;
  }
}

void AuctioneerSession::ingest(const Bytes& envelope_bytes) {
  std::string error;
  const IngestResult result = classify_and_store(envelope_bytes, &error);
  note_ingest(result);
  LPPA_PROTOCOL_CHECK(result == IngestResult::kAccepted, error);
}

AuctioneerSession::IngestResult AuctioneerSession::try_ingest(
    const Bytes& envelope_bytes, std::string* error) {
  const IngestResult result = classify_and_store(envelope_bytes, error);
  note_ingest(result);
  return result;
}

bool AuctioneerSession::ready() const noexcept {
  for (std::size_t u = 0; u < num_users_; ++u) {
    if (absent_[u]) continue;
    if (!locations_[u].has_value() || !bids_[u].has_value()) return false;
  }
  return true;
}

bool AuctioneerSession::has_location(std::size_t user) const {
  LPPA_REQUIRE(user < num_users_, "user index out of range");
  return locations_[user].has_value();
}

bool AuctioneerSession::has_bid(std::size_t user) const {
  LPPA_REQUIRE(user < num_users_, "user index out of range");
  return bids_[user].has_value();
}

bool AuctioneerSession::is_excluded(std::size_t user) const {
  LPPA_REQUIRE(user < num_users_, "user index out of range");
  return equivocated_[user];
}

std::vector<std::size_t> AuctioneerSession::missing_users() const {
  std::vector<std::size_t> missing;
  for (std::size_t u = 0; u < num_users_; ++u) {
    if (equivocated_[u] || absent_[u]) continue;
    if (!locations_[u].has_value() || !bids_[u].has_value()) {
      missing.push_back(u);
    }
  }
  return missing;
}

void AuctioneerSession::finalize_participants(RoundReport& report) {
  if (!finalized_) {
    for (std::size_t u = 0; u < num_users_; ++u) {
      if (!equivocated_[u] && locations_[u].has_value() &&
          bids_[u].has_value()) {
        participants_.push_back(u);
      }
    }
    finalized_ = true;
    if (journal_ != nullptr) {
      journal_->append(JournalRecordType::kFinalized);
    }
  }

  // The report section is rebuilt from state on every call, so a
  // recovered session (restored from a snapshot that is already
  // finalized) can still account for its exclusions.
  report.num_users = num_users_;
  report.excluded.clear();
  std::size_t next_participant = 0;
  for (std::size_t u = 0; u < num_users_; ++u) {
    if (next_participant < participants_.size() &&
        participants_[next_participant] == u) {
      ++next_participant;
      continue;
    }
    if (equivocated_[u]) {
      report.excluded.push_back(
          {u, RoundReport::ExclusionReason::kEquivocation, last_error_[u]});
    } else {
      const auto reason = strikes_[u] > 0
                              ? RoundReport::ExclusionReason::kInvalid
                              : RoundReport::ExclusionReason::kTimeout;
      report.excluded.push_back({u, reason, last_error_[u]});
    }
  }
  report.survivors = participants_;
  LPPA_PROTOCOL_CHECK(!participants_.empty(),
                      "no valid participants survived the round");
}

void AuctioneerSession::compact_participants() {
  // Compact the participants to contiguous indices: the conflict graph,
  // bid table and allocator all run over [0, m); awards are mapped back
  // to original SU ids afterwards.  A fault-free full round compacts to
  // the identity, so the legacy path is bit-for-bit unchanged.  The
  // conflict-graph rebuild involves no randomness, which is what lets a
  // restored session recompute it instead of journaling the edges.
  const std::size_t m = participants_.size();
  compact_index_.assign(num_users_, kNoSlot);
  std::vector<core::LocationSubmission> locations;
  locations.reserve(m);
  bid_store_.clear();
  bid_store_.reserve(m);
  for (std::size_t k = 0; k < m; ++k) {
    const std::size_t u = participants_[k];
    compact_index_[u] = k;
    locations.push_back(*locations_[u]);
    bid_store_.push_back(*bids_[u]);
  }
  conflicts_ =
      core::PpbsLocation::build_conflict_graph(locations, config_.num_threads);
}

void AuctioneerSession::run_allocation(Rng& rng) {
  LPPA_REQUIRE(!allocated_, "allocation already ran");
  if (!finalized_) {
    LPPA_REQUIRE(ready(), "submissions still missing");
    for (std::size_t u = 0; u < num_users_; ++u) {
      if (!absent_[u]) participants_.push_back(u);
    }
    LPPA_REQUIRE(!participants_.empty(), "every user departed the round");
    finalized_ = true;
  }

  compact_participants();
  if (config_.num_shards > 1) {
    sharded_table_.emplace(bid_store_, config_.num_channels,
                           core::ShardedBidTable::contiguous_shards(
                               bid_store_.size(), config_.num_shards),
                           config_.num_shards, config_.argmax_strategy,
                           config_.num_threads, config_.metrics,
                           config_.backend);
    awards_ = auction::greedy_allocate(*sharded_table_, *conflicts_, rng);
  } else {
    table_.emplace(bid_store_, config_.num_channels,
                   core::ArgmaxStrategy::kSortedColumns, /*sort_threads=*/1,
                   config_.backend);
    awards_ = auction::greedy_allocate(*table_, *conflicts_, rng);
  }
  for (auto& award : awards_) {
    award.user = participants_[award.user];
  }
  charge_done_.assign(awards_.size(), false);
  allocated_ = true;
  if (journal_ != nullptr) {
    journal_->append(JournalRecordType::kAllocated, snapshot());
  }
}

const core::BidSubmission& AuctioneerSession::bid_of(
    auction::UserId user) const {
  const std::size_t slot = compact_index_[user];
  LPPA_REQUIRE(slot != kNoSlot, "user is not a participant");
  return bid_store_[slot];
}

std::vector<Bytes> AuctioneerSession::charge_query_envelopes() const {
  LPPA_REQUIRE(allocated_, "allocation has not run yet");
  std::vector<Bytes> batches;
  std::vector<core::ChargeQuery> pending;
  auto flush = [&] {
    if (pending.empty()) return;
    Envelope e;
    e.type = MessageType::kChargeQueryBatch;
    e.payload = serialize_charge_queries(pending);
    batches.push_back(e.serialize());
    pending.clear();
  };
  for (const auto& award : awards_) {
    const auto& entry = bid_of(award.user).channels[award.channel];
    core::ChargeQuery query{award.user,         award.channel, entry.sealed,
                            entry.value_family, entry.paillier_ct,
                            std::nullopt,       std::nullopt,  0};
    if (config_.charging_rule == core::ChargingRule::kSecondPrice) {
      std::optional<auction::UserId> second;
      for (const std::size_t u : participants_) {
        if (u == award.user) continue;
        if (!second ||
            !config_.backend->ge(bid_of(*second).channels[award.channel],
                                 bid_of(u).channels[award.channel])) {
          second = u;
        }
      }
      if (second) {
        const auto& runner_up = bid_of(*second).channels[award.channel];
        query.runner_up_sealed = runner_up.sealed;
        query.runner_up_family = runner_up.value_family;
        query.runner_up_ct = runner_up.paillier_ct;
      }
    }
    pending.push_back(std::move(query));
    if (pending.size() >= config_.ttp_batch_size) flush();
  }
  flush();
  return batches;
}

void AuctioneerSession::ingest_charge_results(const Bytes& envelope_bytes) {
  const Envelope e = Envelope::deserialize(envelope_bytes);
  LPPA_PROTOCOL_CHECK(e.type == MessageType::kChargeResultBatch,
                      "expected a charge-result batch");
  const auto results = deserialize_charge_results(e.payload);
  // Journal before applying (write-ahead); a duplicate batch — one that
  // prices no award for the first time — changes nothing and is NOT
  // journaled, which keeps redeliveries after a recovery from bloating
  // the log.
  if (journal_ != nullptr) {
    bool advances = false;
    for (const auto& res : results) {
      for (std::size_t i = 0; i < awards_.size(); ++i) {
        if (awards_[i].user == res.user && awards_[i].channel == res.channel &&
            !charge_done_[i]) {
          advances = true;
        }
      }
    }
    if (advances) {
      journal_->append(JournalRecordType::kChargeCommit, envelope_bytes);
    }
  }
  for (const auto& res : results) {
    bool matched = false;
    for (std::size_t i = 0; i < awards_.size(); ++i) {
      auto& award = awards_[i];
      if (award.user == res.user && award.channel == res.channel) {
        award.valid = res.valid && !res.manipulated;
        award.charge = res.manipulated ? 0 : res.charge;
        charge_done_[i] = true;
        matched = true;
      }
    }
    LPPA_PROTOCOL_CHECK(matched, "charge result for an unknown award");
  }
}

bool AuctioneerSession::charging_complete() const noexcept {
  if (!allocated_) return false;
  return std::all_of(charge_done_.begin(), charge_done_.end(),
                     [](bool done) { return done; });
}

Bytes AuctioneerSession::winner_announcement() const {
  LPPA_REQUIRE(charging_complete(), "charge results still outstanding");
  Envelope e;
  e.type = MessageType::kWinnerAnnouncement;
  WinnerAnnouncement wa;
  wa.awards = awards_;
  e.payload = wa.serialize();
  return e.serialize();
}

const auction::ConflictGraph& AuctioneerSession::conflicts() const {
  LPPA_REQUIRE(conflicts_.has_value(), "allocation has not run yet");
  return *conflicts_;
}

namespace {
constexpr std::uint8_t kSnapHasLocation = 1;
constexpr std::uint8_t kSnapHasBid = 2;
constexpr std::uint8_t kSnapEquivocated = 4;
constexpr std::uint8_t kSnapAbsent = 8;
}  // namespace

Bytes AuctioneerSession::snapshot() const {
  ByteWriter w;
  w.u64(num_users_);
  for (std::size_t u = 0; u < num_users_; ++u) {
    const std::uint8_t flags =
        (locations_[u].has_value() ? kSnapHasLocation : 0) |
        (bids_[u].has_value() ? kSnapHasBid : 0) |
        (equivocated_[u] ? kSnapEquivocated : 0) |
        (absent_[u] ? kSnapAbsent : 0);
    w.u8(flags);
    // The accepted wire bytes carry the submissions (they re-parse on
    // restore through the same checksummed envelope path they arrived
    // by), and double as the dedupe reference for post-recovery
    // redeliveries.
    w.bytes(location_wire_[u]);
    w.bytes(bid_wire_[u]);
    w.u64(strikes_[u]);
    const std::string& err = last_error_[u];
    w.bytes(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(err.data()), err.size()));
  }
  w.u8(finalized_ ? 1 : 0);
  if (finalized_) {
    w.u32(static_cast<std::uint32_t>(participants_.size()));
    for (const std::size_t u : participants_) w.u64(u);
  }
  w.u8(allocated_ ? 1 : 0);
  if (allocated_) {
    // Both tables emit the same global image, so snapshots taken under
    // any shard count restore under any other.
    w.bytes(sharded_table_ ? sharded_table_->serialize()
                           : table_->serialize());
    w.u32(static_cast<std::uint32_t>(awards_.size()));
    for (std::size_t i = 0; i < awards_.size(); ++i) {
      const auto& a = awards_[i];
      w.u64(a.user);
      w.u64(a.channel);
      w.u64(a.charge);
      w.u8(a.valid ? 1 : 0);
      w.u8(charge_done_[i] ? 1 : 0);
    }
  }
  return w.take();
}

void AuctioneerSession::restore_from(std::span<const std::uint8_t> wire) {
  if (finalized_ || allocated_) {
    detail::raise(ErrorKind::kState,
                  "restore_from requires a freshly constructed session");
  }
  for (std::size_t u = 0; u < num_users_; ++u) {
    if (locations_[u].has_value() || bids_[u].has_value()) {
      detail::raise(ErrorKind::kState,
                    "restore_from requires a freshly constructed session");
    }
  }

  ByteReader r(wire);
  LPPA_PROTOCOL_CHECK(r.u64() == num_users_,
                      "session snapshot population size mismatch");
  for (std::size_t u = 0; u < num_users_; ++u) {
    const std::uint8_t flags = r.u8();
    LPPA_PROTOCOL_CHECK(flags <= (kSnapHasLocation | kSnapHasBid |
                                  kSnapEquivocated | kSnapAbsent),
                        "unknown session snapshot flags");
    LPPA_PROTOCOL_CHECK(
        (flags & kSnapAbsent) == 0 ||
            (flags & (kSnapHasLocation | kSnapHasBid)) == 0,
        "snapshot marks an absent user with stored submissions");
    const Bytes loc_wire = r.bytes();
    const Bytes bid_wire = r.bytes();
    if (flags & kSnapHasLocation) {
      const Envelope e = Envelope::deserialize(loc_wire);
      LPPA_PROTOCOL_CHECK(
          e.type == MessageType::kLocationSubmission && e.sender == u,
          "snapshot location envelope does not match its slot");
      locations_[u] = core::LocationSubmission::deserialize(e.payload);
      location_wire_[u] = loc_wire;
    } else {
      LPPA_PROTOCOL_CHECK(loc_wire.empty(),
                          "snapshot carries bytes for an absent location");
    }
    if (flags & kSnapHasBid) {
      const Envelope e = Envelope::deserialize(bid_wire);
      LPPA_PROTOCOL_CHECK(
          e.type == MessageType::kBidSubmission && e.sender == u,
          "snapshot bid envelope does not match its slot");
      bids_[u] = core::BidSubmission::deserialize(e.payload);
      bid_wire_[u] = bid_wire;
    } else {
      LPPA_PROTOCOL_CHECK(bid_wire.empty(),
                          "snapshot carries bytes for an absent bid");
    }
    equivocated_[u] = (flags & kSnapEquivocated) != 0;
    absent_[u] = (flags & kSnapAbsent) != 0;
    strikes_[u] = r.u64();
    const Bytes err = r.bytes();
    last_error_[u].assign(err.begin(), err.end());
  }

  const std::uint8_t finalized = r.u8();
  LPPA_PROTOCOL_CHECK(finalized <= 1, "invalid snapshot finalized flag");
  if (finalized != 0) {
    const std::uint32_t m = r.u32();
    LPPA_PROTOCOL_CHECK(m >= 1 && m <= num_users_,
                        "snapshot participant count out of range");
    std::size_t prev = 0;
    for (std::uint32_t k = 0; k < m; ++k) {
      const std::uint64_t u = r.u64();
      LPPA_PROTOCOL_CHECK(u < num_users_ && (k == 0 || u > prev),
                          "snapshot participants not strictly ascending");
      LPPA_PROTOCOL_CHECK(locations_[u].has_value() && bids_[u].has_value() &&
                              !equivocated_[u],
                          "snapshot participant lacks valid submissions");
      participants_.push_back(u);
      prev = u;
    }
    finalized_ = true;
  }

  const std::uint8_t allocated = r.u8();
  LPPA_PROTOCOL_CHECK(allocated <= 1, "invalid snapshot allocated flag");
  if (allocated != 0) {
    LPPA_PROTOCOL_CHECK(finalized_, "snapshot allocated without finalizing");
    // The conflict graph is rebuilt from the restored location
    // submissions — deterministic, no randomness — so only the bid
    // table's consumed-cell state needs the serialized image.
    compact_participants();
    core::EncryptedBidTable global = core::EncryptedBidTable::deserialize(
        r.bytes(), core::ArgmaxStrategy::kSortedColumns, /*sort_threads=*/1,
        config_.backend);
    LPPA_PROTOCOL_CHECK(global.num_users() == participants_.size() &&
                            global.num_channels() == config_.num_channels,
                        "snapshot bid table dimensions mismatch");
    if (config_.num_shards > 1) {
      // Re-shard the restored image: the snapshot may have been taken
      // under any shard count (including 1) — the global image plus the
      // deterministic contiguous partition reproduces the exact table.
      sharded_table_ = core::ShardedBidTable::restore(
          std::move(global),
          core::ShardedBidTable::contiguous_shards(participants_.size(),
                                                   config_.num_shards),
          config_.num_shards, config_.argmax_strategy, config_.num_threads,
          config_.metrics);
    } else {
      table_ = std::move(global);
    }
    const std::uint32_t num_awards = r.u32();
    awards_.reserve(num_awards);
    for (std::uint32_t i = 0; i < num_awards; ++i) {
      auction::Award a;
      a.user = r.u64();
      a.channel = r.u64();
      a.charge = r.u64();
      const std::uint8_t valid = r.u8();
      const std::uint8_t done = r.u8();
      LPPA_PROTOCOL_CHECK(valid <= 1 && done <= 1,
                          "invalid snapshot award flags");
      LPPA_PROTOCOL_CHECK(a.user < num_users_ &&
                              compact_index_[a.user] != kNoSlot &&
                              a.channel < config_.num_channels,
                          "snapshot award outside the participant set");
      a.valid = valid != 0;
      awards_.push_back(a);
      charge_done_.push_back(done != 0);
    }
    allocated_ = true;
  }
  LPPA_PROTOCOL_CHECK(r.at_end(), "trailing bytes after session snapshot");
}

// ------------------------------------------------------------ TtpService

Bytes TtpService::handle(const Bytes& envelope_bytes) {
  const Envelope e = Envelope::deserialize(envelope_bytes);
  LPPA_PROTOCOL_CHECK(e.type == MessageType::kChargeQueryBatch,
                      "TTP expects charge-query batches");
  const auto queries = deserialize_charge_queries(e.payload);
  const auto results = ttp_->process_batch(queries);
  Envelope out;
  out.type = MessageType::kChargeResultBatch;
  out.payload = serialize_charge_results(results);
  return out.serialize();
}

}  // namespace lppa::proto
