#include "proto/parties.h"

#include <algorithm>
#include <numeric>

namespace lppa::proto {

namespace {
constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
}  // namespace

// ------------------------------------------------------------- SuClient

SuClient::SuClient(std::size_t user_index, const core::LppaConfig& config,
                   const core::SuKeyBundle& keys)
    : user_index_(user_index),
      config_(config),
      location_protocol_(keys.g0, config.coord_width, config.lambda,
                         config.pad_location_ranges),
      submitter_(config.bid, keys.gb_master, keys.gc) {}

Bytes SuClient::location_envelope(const auction::SuLocation& location,
                                  Rng& rng) const {
  Envelope e;
  e.type = MessageType::kLocationSubmission;
  e.sender = user_index_;
  e.payload = location_protocol_.submit(location, rng).serialize();
  return e.serialize();
}

Bytes SuClient::bid_envelope(const auction::BidVector& bids, Rng& rng) const {
  LPPA_REQUIRE(bids.size() == config_.num_channels,
               "bid vector must cover every auctioned channel");
  Envelope e;
  e.type = MessageType::kBidSubmission;
  e.sender = user_index_;
  e.payload = submitter_.submit(bids, rng).serialize();
  return e.serialize();
}

// ----------------------------------------------------- AuctioneerSession

AuctioneerSession::AuctioneerSession(const core::LppaConfig& config,
                                     std::size_t num_users)
    : config_(config),
      num_users_(num_users),
      validator_(config),
      locations_(num_users),
      bids_(num_users),
      location_wire_(num_users),
      bid_wire_(num_users),
      equivocated_(num_users, false),
      strikes_(num_users, 0),
      last_error_(num_users) {
  LPPA_REQUIRE(num_users > 0, "auction requires at least one user");
}

AuctioneerSession::IngestResult AuctioneerSession::classify_and_store(
    const Bytes& envelope_bytes, std::string* error) {
  const auto fail = [error](const std::string& msg) {
    if (error != nullptr) *error = msg;
  };

  Envelope e;
  try {
    e = Envelope::deserialize(envelope_bytes);
  } catch (const LppaError& err) {
    fail(err.what());
    return IngestResult::kRejected;
  }
  if (e.sender >= num_users_) {
    fail("submission from unknown user");
    return IngestResult::kRejected;
  }
  const std::size_t u = e.sender;
  if (equivocated_[u]) {
    fail("sender already excluded for equivocation");
    return IngestResult::kRejected;
  }

  // Helper shared by both submission kinds: parse + validate, then slot
  // with duplicate/equivocation classification.  The parse/validate step
  // runs BEFORE the duplicate check so that a corrupted redelivery of an
  // already-accepted submission counts as a transit-damaged message (a
  // strike), never as equivocation.
  const auto slot = [&](auto parsed, auto& store, auto& wire,
                        const char* what) -> IngestResult {
    if (store[u].has_value()) {
      if (wire[u] == envelope_bytes) {
        fail(std::string("duplicate ") + what + " submission");
        return IngestResult::kDuplicateRedelivery;
      }
      equivocated_[u] = true;
      last_error_[u] = std::string("conflicting ") + what + " submissions";
      fail(last_error_[u]);
      return IngestResult::kEquivocation;
    }
    store[u] = std::move(parsed);
    wire[u] = envelope_bytes;
    return IngestResult::kAccepted;
  };

  switch (e.type) {
    case MessageType::kLocationSubmission: {
      core::LocationSubmission s;
      try {
        s = core::LocationSubmission::deserialize(e.payload);
      } catch (const LppaError& err) {
        ++strikes_[u];
        last_error_[u] = err.what();
        fail(last_error_[u]);
        return IngestResult::kRejected;
      }
      if (auto verr = validator_.validate_location(s)) {
        ++strikes_[u];
        last_error_[u] = "invalid location submission: " + *verr;
        fail(last_error_[u]);
        return IngestResult::kRejected;
      }
      return slot(std::move(s), locations_, location_wire_, "location");
    }
    case MessageType::kBidSubmission: {
      core::BidSubmission s;
      try {
        s = core::BidSubmission::deserialize(e.payload);
      } catch (const LppaError& err) {
        ++strikes_[u];
        last_error_[u] = err.what();
        fail(last_error_[u]);
        return IngestResult::kRejected;
      }
      if (auto verr = validator_.validate_bid(s)) {
        ++strikes_[u];
        last_error_[u] = "invalid bid submission: " + *verr;
        fail(last_error_[u]);
        return IngestResult::kRejected;
      }
      return slot(std::move(s), bids_, bid_wire_, "bid");
    }
    default:
      fail("unexpected message type for auctioneer");
      return IngestResult::kRejected;
  }
}

void AuctioneerSession::ingest(const Bytes& envelope_bytes) {
  std::string error;
  const IngestResult result = classify_and_store(envelope_bytes, &error);
  LPPA_PROTOCOL_CHECK(result == IngestResult::kAccepted, error);
}

AuctioneerSession::IngestResult AuctioneerSession::try_ingest(
    const Bytes& envelope_bytes, std::string* error) {
  return classify_and_store(envelope_bytes, error);
}

bool AuctioneerSession::ready() const noexcept {
  for (std::size_t u = 0; u < num_users_; ++u) {
    if (!locations_[u].has_value() || !bids_[u].has_value()) return false;
  }
  return true;
}

bool AuctioneerSession::has_location(std::size_t user) const {
  LPPA_REQUIRE(user < num_users_, "user index out of range");
  return locations_[user].has_value();
}

bool AuctioneerSession::has_bid(std::size_t user) const {
  LPPA_REQUIRE(user < num_users_, "user index out of range");
  return bids_[user].has_value();
}

bool AuctioneerSession::is_excluded(std::size_t user) const {
  LPPA_REQUIRE(user < num_users_, "user index out of range");
  return equivocated_[user];
}

std::vector<std::size_t> AuctioneerSession::missing_users() const {
  std::vector<std::size_t> missing;
  for (std::size_t u = 0; u < num_users_; ++u) {
    if (equivocated_[u]) continue;
    if (!locations_[u].has_value() || !bids_[u].has_value()) {
      missing.push_back(u);
    }
  }
  return missing;
}

void AuctioneerSession::finalize_participants(RoundReport& report) {
  if (finalized_) return;
  report.num_users = num_users_;
  for (std::size_t u = 0; u < num_users_; ++u) {
    if (equivocated_[u]) {
      report.excluded.push_back(
          {u, RoundReport::ExclusionReason::kEquivocation, last_error_[u]});
    } else if (!locations_[u].has_value() || !bids_[u].has_value()) {
      const auto reason = strikes_[u] > 0
                              ? RoundReport::ExclusionReason::kInvalid
                              : RoundReport::ExclusionReason::kTimeout;
      report.excluded.push_back({u, reason, last_error_[u]});
    } else {
      participants_.push_back(u);
    }
  }
  report.survivors = participants_;
  finalized_ = true;
  LPPA_PROTOCOL_CHECK(!participants_.empty(),
                      "no valid participants survived the round");
}

void AuctioneerSession::run_allocation(Rng& rng) {
  LPPA_REQUIRE(!allocated_, "allocation already ran");
  if (!finalized_) {
    LPPA_REQUIRE(ready(), "submissions still missing");
    participants_.resize(num_users_);
    std::iota(participants_.begin(), participants_.end(), std::size_t{0});
    finalized_ = true;
  }

  // Compact the participants to contiguous indices: the conflict graph,
  // bid table and allocator all run over [0, m); awards are mapped back
  // to original SU ids afterwards.  A fault-free full round compacts to
  // the identity, so the legacy path is bit-for-bit unchanged.
  const std::size_t m = participants_.size();
  compact_index_.assign(num_users_, kNoSlot);
  std::vector<core::LocationSubmission> locations;
  locations.reserve(m);
  bid_store_.clear();
  bid_store_.reserve(m);
  for (std::size_t k = 0; k < m; ++k) {
    const std::size_t u = participants_[k];
    compact_index_[u] = k;
    locations.push_back(*locations_[u]);
    bid_store_.push_back(*bids_[u]);
  }
  conflicts_ =
      core::PpbsLocation::build_conflict_graph(locations, config_.num_threads);
  core::EncryptedBidTable table(bid_store_, config_.num_channels);
  awards_ = auction::greedy_allocate(table, *conflicts_, rng);
  for (auto& award : awards_) {
    award.user = participants_[award.user];
  }
  charge_done_.assign(awards_.size(), false);
  allocated_ = true;
}

const core::BidSubmission& AuctioneerSession::bid_of(
    auction::UserId user) const {
  const std::size_t slot = compact_index_[user];
  LPPA_REQUIRE(slot != kNoSlot, "user is not a participant");
  return bid_store_[slot];
}

std::vector<Bytes> AuctioneerSession::charge_query_envelopes() const {
  LPPA_REQUIRE(allocated_, "allocation has not run yet");
  std::vector<Bytes> batches;
  std::vector<core::ChargeQuery> pending;
  auto flush = [&] {
    if (pending.empty()) return;
    Envelope e;
    e.type = MessageType::kChargeQueryBatch;
    e.payload = serialize_charge_queries(pending);
    batches.push_back(e.serialize());
    pending.clear();
  };
  for (const auto& award : awards_) {
    const auto& entry = bid_of(award.user).channels[award.channel];
    core::ChargeQuery query{award.user, award.channel, entry.sealed,
                            entry.value_family, std::nullopt, std::nullopt};
    if (config_.charging_rule == core::ChargingRule::kSecondPrice) {
      std::optional<auction::UserId> second;
      for (const std::size_t u : participants_) {
        if (u == award.user) continue;
        if (!second ||
            !core::encrypted_ge(bid_of(*second).channels[award.channel],
                                bid_of(u).channels[award.channel])) {
          second = u;
        }
      }
      if (second) {
        const auto& runner_up = bid_of(*second).channels[award.channel];
        query.runner_up_sealed = runner_up.sealed;
        query.runner_up_family = runner_up.value_family;
      }
    }
    pending.push_back(std::move(query));
    if (pending.size() >= config_.ttp_batch_size) flush();
  }
  flush();
  return batches;
}

void AuctioneerSession::ingest_charge_results(const Bytes& envelope_bytes) {
  const Envelope e = Envelope::deserialize(envelope_bytes);
  LPPA_PROTOCOL_CHECK(e.type == MessageType::kChargeResultBatch,
                      "expected a charge-result batch");
  for (const auto& res : deserialize_charge_results(e.payload)) {
    bool matched = false;
    for (std::size_t i = 0; i < awards_.size(); ++i) {
      auto& award = awards_[i];
      if (award.user == res.user && award.channel == res.channel) {
        award.valid = res.valid && !res.manipulated;
        award.charge = res.manipulated ? 0 : res.charge;
        charge_done_[i] = true;
        matched = true;
      }
    }
    LPPA_PROTOCOL_CHECK(matched, "charge result for an unknown award");
  }
}

bool AuctioneerSession::charging_complete() const noexcept {
  if (!allocated_) return false;
  return std::all_of(charge_done_.begin(), charge_done_.end(),
                     [](bool done) { return done; });
}

Bytes AuctioneerSession::winner_announcement() const {
  LPPA_REQUIRE(charging_complete(), "charge results still outstanding");
  Envelope e;
  e.type = MessageType::kWinnerAnnouncement;
  WinnerAnnouncement wa;
  wa.awards = awards_;
  e.payload = wa.serialize();
  return e.serialize();
}

const auction::ConflictGraph& AuctioneerSession::conflicts() const {
  LPPA_REQUIRE(conflicts_.has_value(), "allocation has not run yet");
  return *conflicts_;
}

// ------------------------------------------------------------ TtpService

Bytes TtpService::handle(const Bytes& envelope_bytes) {
  const Envelope e = Envelope::deserialize(envelope_bytes);
  LPPA_PROTOCOL_CHECK(e.type == MessageType::kChargeQueryBatch,
                      "TTP expects charge-query batches");
  const auto queries = deserialize_charge_queries(e.payload);
  const auto results = ttp_->process_batch(queries);
  Envelope out;
  out.type = MessageType::kChargeResultBatch;
  out.payload = serialize_charge_results(results);
  return out.serialize();
}

}  // namespace lppa::proto
