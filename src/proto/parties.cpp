#include "proto/parties.h"

namespace lppa::proto {

// ------------------------------------------------------------- SuClient

SuClient::SuClient(std::size_t user_index, const core::LppaConfig& config,
                   const core::SuKeyBundle& keys)
    : user_index_(user_index),
      config_(config),
      location_protocol_(keys.g0, config.coord_width, config.lambda,
                         config.pad_location_ranges),
      submitter_(config.bid, keys.gb_master, keys.gc) {}

Bytes SuClient::location_envelope(const auction::SuLocation& location,
                                  Rng& rng) const {
  Envelope e;
  e.type = MessageType::kLocationSubmission;
  e.sender = user_index_;
  e.payload = location_protocol_.submit(location, rng).serialize();
  return e.serialize();
}

Bytes SuClient::bid_envelope(const auction::BidVector& bids, Rng& rng) const {
  LPPA_REQUIRE(bids.size() == config_.num_channels,
               "bid vector must cover every auctioned channel");
  Envelope e;
  e.type = MessageType::kBidSubmission;
  e.sender = user_index_;
  e.payload = submitter_.submit(bids, rng).serialize();
  return e.serialize();
}

// ----------------------------------------------------- AuctioneerSession

AuctioneerSession::AuctioneerSession(const core::LppaConfig& config,
                                     std::size_t num_users)
    : config_(config),
      num_users_(num_users),
      locations_(num_users),
      bids_(num_users) {
  LPPA_REQUIRE(num_users > 0, "auction requires at least one user");
}

void AuctioneerSession::ingest(const Bytes& envelope_bytes) {
  const Envelope e = Envelope::deserialize(envelope_bytes);
  LPPA_PROTOCOL_CHECK(e.sender < num_users_, "submission from unknown user");
  switch (e.type) {
    case MessageType::kLocationSubmission: {
      LPPA_PROTOCOL_CHECK(!locations_[e.sender].has_value(),
                          "duplicate location submission");
      locations_[e.sender] = core::LocationSubmission::deserialize(e.payload);
      break;
    }
    case MessageType::kBidSubmission: {
      LPPA_PROTOCOL_CHECK(!bids_[e.sender].has_value(),
                          "duplicate bid submission");
      auto submission = core::BidSubmission::deserialize(e.payload);
      LPPA_PROTOCOL_CHECK(submission.channels.size() == config_.num_channels,
                          "bid submission does not cover every channel");
      bids_[e.sender] = std::move(submission);
      break;
    }
    default:
      LPPA_PROTOCOL_CHECK(false, "unexpected message type for auctioneer");
  }
}

bool AuctioneerSession::ready() const noexcept {
  for (std::size_t u = 0; u < num_users_; ++u) {
    if (!locations_[u].has_value() || !bids_[u].has_value()) return false;
  }
  return true;
}

void AuctioneerSession::run_allocation(Rng& rng) {
  LPPA_REQUIRE(ready(), "submissions still missing");
  LPPA_REQUIRE(!allocated_, "allocation already ran");

  std::vector<core::LocationSubmission> locations;
  locations.reserve(num_users_);
  for (const auto& loc : locations_) locations.push_back(*loc);
  conflicts_ = core::PpbsLocation::build_conflict_graph(locations);

  bid_store_.clear();
  bid_store_.reserve(num_users_);
  for (const auto& bid : bids_) bid_store_.push_back(*bid);
  core::EncryptedBidTable table(bid_store_, config_.num_channels);
  awards_ = auction::greedy_allocate(table, *conflicts_, rng);
  allocated_ = true;
}

std::vector<Bytes> AuctioneerSession::charge_query_envelopes() const {
  LPPA_REQUIRE(allocated_, "allocation has not run yet");
  std::vector<Bytes> batches;
  std::vector<core::ChargeQuery> pending;
  auto flush = [&] {
    if (pending.empty()) return;
    Envelope e;
    e.type = MessageType::kChargeQueryBatch;
    e.payload = serialize_charge_queries(pending);
    batches.push_back(e.serialize());
    pending.clear();
  };
  for (const auto& award : awards_) {
    const auto& entry = bid_store_[award.user].channels[award.channel];
    core::ChargeQuery query{award.user, award.channel, entry.sealed,
                            entry.value_family, std::nullopt, std::nullopt};
    if (config_.charging_rule == core::ChargingRule::kSecondPrice) {
      std::optional<auction::UserId> second;
      for (auction::UserId u = 0; u < bid_store_.size(); ++u) {
        if (u == award.user) continue;
        if (!second ||
            !core::encrypted_ge(bid_store_[*second].channels[award.channel],
                                bid_store_[u].channels[award.channel])) {
          second = u;
        }
      }
      if (second) {
        const auto& runner_up = bid_store_[*second].channels[award.channel];
        query.runner_up_sealed = runner_up.sealed;
        query.runner_up_family = runner_up.value_family;
      }
    }
    pending.push_back(std::move(query));
    if (pending.size() >= config_.ttp_batch_size) flush();
  }
  flush();
  return batches;
}

void AuctioneerSession::ingest_charge_results(const Bytes& envelope_bytes) {
  const Envelope e = Envelope::deserialize(envelope_bytes);
  LPPA_PROTOCOL_CHECK(e.type == MessageType::kChargeResultBatch,
                      "expected a charge-result batch");
  for (const auto& res : deserialize_charge_results(e.payload)) {
    bool matched = false;
    for (auto& award : awards_) {
      if (award.user == res.user && award.channel == res.channel) {
        award.valid = res.valid && !res.manipulated;
        award.charge = res.manipulated ? 0 : res.charge;
        matched = true;
      }
    }
    LPPA_PROTOCOL_CHECK(matched, "charge result for an unknown award");
    ++results_ingested_;
  }
}

Bytes AuctioneerSession::winner_announcement() const {
  LPPA_REQUIRE(results_ingested_ >= awards_.size(),
               "charge results still outstanding");
  Envelope e;
  e.type = MessageType::kWinnerAnnouncement;
  WinnerAnnouncement wa;
  wa.awards = awards_;
  e.payload = wa.serialize();
  return e.serialize();
}

const auction::ConflictGraph& AuctioneerSession::conflicts() const {
  LPPA_REQUIRE(conflicts_.has_value(), "allocation has not run yet");
  return *conflicts_;
}

// ------------------------------------------------------------ TtpService

Bytes TtpService::handle(const Bytes& envelope_bytes) {
  const Envelope e = Envelope::deserialize(envelope_bytes);
  LPPA_PROTOCOL_CHECK(e.type == MessageType::kChargeQueryBatch,
                      "TTP expects charge-query batches");
  const auto queries = deserialize_charge_queries(e.payload);
  const auto results = ttp_->process_batch(queries);
  Envelope out;
  out.type = MessageType::kChargeResultBatch;
  out.payload = serialize_charge_results(results);
  return out.serialize();
}

}  // namespace lppa::proto
