// RoundReport: the per-round log of a hardened auction round.
//
// Graceful degradation is only useful if it is observable: when the
// auctioneer completes a round without some parties, operators (and the
// fault-injection tests) need to see exactly who was excluded, why, how
// many retry waves it took, and what the network did.  One RoundReport
// is produced per hardened round (proto/session.h) and accumulated per
// experiment (sim/multi_round.h).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "proto/fault.h"

namespace lppa::proto {

struct RoundReport {
  /// Why an SU was excluded from the round.
  enum class ExclusionReason : std::uint8_t {
    kTimeout,       ///< no (valid) submission arrived within the retry budget
    kInvalid,       ///< submissions arrived but every one failed validation
    kEquivocation,  ///< two different valid submissions under one identity
  };
  struct Exclusion {
    std::size_t user = 0;
    ExclusionReason reason = ExclusionReason::kTimeout;
    std::string detail;  ///< last validator / protocol error, if any
  };

  std::size_t round = 0;      ///< round index within a multi-round run
  std::size_t num_users = 0;  ///< configured population size
  bool completed = false;     ///< allocation + charging finished

  std::vector<std::size_t> survivors;  ///< SU ids that made it to allocation
  std::vector<Exclusion> excluded;

  std::size_t retry_waves = 0;      ///< retransmission waves issued
  std::size_t charge_attempts = 0;  ///< send attempts of the charging phase
  std::size_t rejected_messages = 0;  ///< unparseable or invalid messages seen
  std::size_t duplicate_redeliveries = 0;  ///< benign identical re-arrivals

  // --- Crash recovery (proto::run_recoverable_wire_auction) -------------
  std::size_t crash_recoveries = 0;  ///< auctioneer restarts this round
  std::size_t journal_records = 0;   ///< journal records written by round end
  std::size_t journal_bytes = 0;     ///< durable journal size in bytes
  std::size_t replayed_records = 0;  ///< records replayed across recoveries

  // --- Deadline / quorum degradation -------------------------------------
  /// True when the round deadline expired (typically while recovering)
  /// and the session committed with the quorum of journaled submissions
  /// instead of waiting out further retry waves.
  bool degraded = false;
  std::size_t deadline_ticks = 0;  ///< configured round deadline (0 = none)
  std::size_t ticks_used = 0;      ///< bus ticks the round consumed

  /// Injected-fault totals for the round (zero when no injector attached).
  FaultCounters faults;

  /// One-line human-readable summary for logs.
  std::string summary() const;

  /// The report as one JSON object, schema-stable for the BENCH_*.json
  /// sweeps (bench/abl_faults, bench/abl_recovery).
  std::string to_json() const;
};

/// Log label of an exclusion reason ("timeout" / "invalid" /
/// "equivocation").
const char* to_string(RoundReport::ExclusionReason reason) noexcept;

}  // namespace lppa::proto
