// RoundReport: the per-round log of a hardened auction round.
//
// Graceful degradation is only useful if it is observable: when the
// auctioneer completes a round without some parties, operators (and the
// fault-injection tests) need to see exactly who was excluded, why, how
// many retry waves it took, and what the network did.  One RoundReport
// is produced per hardened round (proto/session.h) and accumulated per
// experiment (sim/multi_round.h).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "proto/fault.h"

namespace lppa::proto {

struct RoundReport {
  /// Why an SU was excluded from the round.
  enum class ExclusionReason : std::uint8_t {
    kTimeout,       ///< no (valid) submission arrived within the retry budget
    kInvalid,       ///< submissions arrived but every one failed validation
    kEquivocation,  ///< two different valid submissions under one identity
  };
  struct Exclusion {
    std::size_t user = 0;
    ExclusionReason reason = ExclusionReason::kTimeout;
    std::string detail;  ///< last validator / protocol error, if any
  };

  std::size_t round = 0;      ///< round index within a multi-round run
  std::size_t num_users = 0;  ///< configured population size
  bool completed = false;     ///< allocation + charging finished

  std::vector<std::size_t> survivors;  ///< SU ids that made it to allocation
  std::vector<Exclusion> excluded;

  std::size_t retry_waves = 0;      ///< retransmission waves issued
  std::size_t charge_attempts = 0;  ///< send attempts of the charging phase
  std::size_t rejected_messages = 0;  ///< unparseable or invalid messages seen
  std::size_t duplicate_redeliveries = 0;  ///< benign identical re-arrivals

  /// Injected-fault totals for the round (zero when no injector attached).
  FaultCounters faults;

  /// One-line human-readable summary for logs.
  std::string summary() const;
};

/// Log label of an exclusion reason ("timeout" / "invalid" /
/// "equivocation").
const char* to_string(RoundReport::ExclusionReason reason) noexcept;

}  // namespace lppa::proto
