// Typed message envelopes for the wire protocol.
//
// Every blob on the MessageBus is an Envelope: a one-byte type tag, the
// sender's claimed SU index (meaningful for submissions), the typed
// payload produced by the core serialisers, and a trailing frame
// checksum.  A corrupted, truncated or mistyped envelope surfaces as
// LppaError(kProtocol) at the receiver — never as undefined behaviour —
// which the fuzz tests exercise.  The checksum makes corruption always
// *detectable*: without it, a bit flip inside an HMAC'd digest yields a
// structurally valid submission that no validator could distinguish
// from a Byzantine bid (digests are opaque by design).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "core/ppbs_location.h"
#include "core/ttp.h"

namespace lppa::proto {

enum class MessageType : std::uint8_t {
  kLocationSubmission = 1,
  kBidSubmission = 2,
  kChargeQueryBatch = 3,
  kChargeResultBatch = 4,
  kWinnerAnnouncement = 5,
  kRetransmitRequest = 6,  ///< auctioneer -> SU: resend missing submissions
  kSubmissionAck = 7,      ///< auctioneer -> SU: submission accepted (socket
                           ///< transport only, when ServerConfig::
                           ///< ack_submissions — lets bench/loadgen measure
                           ///< end-to-end submit latency)
};

struct Envelope {
  MessageType type = MessageType::kLocationSubmission;
  std::uint64_t sender = 0;  ///< SU index for submissions, else 0
  Bytes payload;

  Bytes serialize() const;
  static Envelope deserialize(std::span<const std::uint8_t> wire);
};

/// Auctioneer -> SU nack: which of the SU's submissions never arrived
/// (or arrived damaged) and should be resent.  Sent during the hardened
/// session's retry waves (proto/session.h).
struct RetransmitRequest {
  static constexpr std::uint8_t kLocation = 1;
  static constexpr std::uint8_t kBid = 2;

  std::uint8_t mask = 0;  ///< OR of kLocation / kBid

  Bytes serialize() const;
  static RetransmitRequest deserialize(std::span<const std::uint8_t> wire);
};

/// Auctioneer -> SU ack of one accepted submission half (socket
/// transport, ack mode only).  Mirrors RetransmitRequest's mask
/// vocabulary; exactly one bit is set per ack.
struct SubmissionAck {
  std::uint8_t mask = 0;  ///< RetransmitRequest::kLocation or ::kBid

  Bytes serialize() const;
  static SubmissionAck deserialize(std::span<const std::uint8_t> wire);
};

/// The published outcome: winners, their channels, validated charges.
struct WinnerAnnouncement {
  std::vector<auction::Award> awards;

  Bytes serialize() const;
  static WinnerAnnouncement deserialize(std::span<const std::uint8_t> wire);
};

/// Batch wrappers around the core charge messages.
Bytes serialize_charge_queries(const std::vector<core::ChargeQuery>& queries);
std::vector<core::ChargeQuery> deserialize_charge_queries(
    std::span<const std::uint8_t> wire);

Bytes serialize_charge_results(const std::vector<core::ChargeResult>& results);
std::vector<core::ChargeResult> deserialize_charge_results(
    std::span<const std::uint8_t> wire);

}  // namespace lppa::proto
