#include "proto/messages.h"

#include "crypto/sha256.h"

namespace lppa::proto {

namespace {

/// Frame checksum: the first four bytes of SHA-256 over the framed
/// fields.  Not an authenticator (there is no key) — it exists so that
/// *any* in-transit corruption is detectable at parse time rather than
/// surfacing as a structurally valid submission with scrambled digests,
/// which no later layer could tell from a Byzantine bid.
std::uint32_t frame_checksum(std::span<const std::uint8_t> framed) {
  const crypto::Digest d = crypto::Sha256::hash(framed);
  return static_cast<std::uint32_t>(d.bytes[0]) |
         (static_cast<std::uint32_t>(d.bytes[1]) << 8) |
         (static_cast<std::uint32_t>(d.bytes[2]) << 16) |
         (static_cast<std::uint32_t>(d.bytes[3]) << 24);
}

}  // namespace

Bytes Envelope::serialize() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(sender);
  w.bytes(payload);
  w.u32(frame_checksum(w.data()));
  return w.take();
}

Envelope Envelope::deserialize(std::span<const std::uint8_t> wire) {
  LPPA_PROTOCOL_CHECK(wire.size() >= 4, "Envelope shorter than its checksum");
  const auto framed = wire.first(wire.size() - 4);
  ByteReader checksum_reader(wire.subspan(wire.size() - 4));
  LPPA_PROTOCOL_CHECK(checksum_reader.u32() == frame_checksum(framed),
                      "Envelope checksum mismatch");
  ByteReader r(framed);
  Envelope e;
  const std::uint8_t raw_type = r.u8();
  LPPA_PROTOCOL_CHECK(
      raw_type >= static_cast<std::uint8_t>(MessageType::kLocationSubmission) &&
          raw_type <= static_cast<std::uint8_t>(MessageType::kSubmissionAck),
      "unknown message type");
  e.type = static_cast<MessageType>(raw_type);
  e.sender = r.u64();
  e.payload = r.bytes();
  LPPA_PROTOCOL_CHECK(r.at_end(), "trailing bytes after Envelope");
  return e;
}

Bytes RetransmitRequest::serialize() const {
  ByteWriter w;
  w.u8(mask);
  return w.take();
}

RetransmitRequest RetransmitRequest::deserialize(
    std::span<const std::uint8_t> wire) {
  ByteReader r(wire);
  RetransmitRequest req;
  req.mask = r.u8();
  LPPA_PROTOCOL_CHECK(req.mask != 0 && req.mask <= (kLocation | kBid),
                      "invalid retransmit mask");
  LPPA_PROTOCOL_CHECK(r.at_end(), "trailing bytes after RetransmitRequest");
  return req;
}

Bytes SubmissionAck::serialize() const {
  ByteWriter w;
  w.u8(mask);
  return w.take();
}

SubmissionAck SubmissionAck::deserialize(std::span<const std::uint8_t> wire) {
  ByteReader r(wire);
  SubmissionAck ack;
  ack.mask = r.u8();
  LPPA_PROTOCOL_CHECK(ack.mask == RetransmitRequest::kLocation ||
                          ack.mask == RetransmitRequest::kBid,
                      "invalid submission-ack mask");
  LPPA_PROTOCOL_CHECK(r.at_end(), "trailing bytes after SubmissionAck");
  return ack;
}

Bytes WinnerAnnouncement::serialize() const {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(awards.size()));
  for (const auto& a : awards) {
    w.u64(a.user);
    w.u64(a.channel);
    w.u64(a.charge);
    w.u8(a.valid ? 1 : 0);
  }
  return w.take();
}

WinnerAnnouncement WinnerAnnouncement::deserialize(
    std::span<const std::uint8_t> wire) {
  ByteReader r(wire);
  WinnerAnnouncement wa;
  const std::uint32_t n = r.u32();
  wa.awards.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    auction::Award a;
    a.user = r.u64();
    a.channel = r.u64();
    a.charge = r.u64();
    const std::uint8_t valid = r.u8();
    LPPA_PROTOCOL_CHECK(valid <= 1, "invalid Award validity flag");
    a.valid = valid != 0;
    wa.awards.push_back(a);
  }
  LPPA_PROTOCOL_CHECK(r.at_end(), "trailing bytes after WinnerAnnouncement");
  return wa;
}

Bytes serialize_charge_queries(const std::vector<core::ChargeQuery>& queries) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(queries.size()));
  for (const auto& q : queries) q.serialize(w);
  return w.take();
}

std::vector<core::ChargeQuery> deserialize_charge_queries(
    std::span<const std::uint8_t> wire) {
  ByteReader r(wire);
  const std::uint32_t n = r.u32();
  std::vector<core::ChargeQuery> queries;
  queries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    queries.push_back(core::ChargeQuery::deserialize(r));
  }
  LPPA_PROTOCOL_CHECK(r.at_end(), "trailing bytes after charge query batch");
  return queries;
}

Bytes serialize_charge_results(
    const std::vector<core::ChargeResult>& results) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(results.size()));
  for (const auto& res : results) res.serialize(w);
  return w.take();
}

std::vector<core::ChargeResult> deserialize_charge_results(
    std::span<const std::uint8_t> wire) {
  ByteReader r(wire);
  const std::uint32_t n = r.u32();
  std::vector<core::ChargeResult> results;
  results.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    results.push_back(core::ChargeResult::deserialize(r));
  }
  LPPA_PROTOCOL_CHECK(r.at_end(), "trailing bytes after charge result batch");
  return results;
}

}  // namespace lppa::proto
