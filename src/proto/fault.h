// FaultInjector: seeded, per-party message-fault injection for the
// MessageBus.
//
// The wire harness is where the library's robustness claims get tested:
// every experiment should be runnable under dropped, duplicated,
// reordered, corrupted, and delayed messages, and under Byzantine
// parties that corrupt everything they send.  The injector decides the
// fate of each message at send time from its own Rng stream, so a fault
// schedule is a pure function of (seed, message sequence) — the same
// seed reproduces the same faults regardless of what the parties do with
// their own randomness.
//
// Attach to a bus with MessageBus::set_fault_injector; the bus consults
// decide() per send and applies the verdict (see proto/bus.h).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"

namespace lppa::obs {
class MetricsRegistry;
}  // namespace lppa::obs

namespace lppa::proto {

struct Address;  // proto/bus.h

/// Per-party fault probabilities.  The five delivery faults are mutually
/// exclusive per message (one uniform draw is cascaded through them);
/// corruption composes with delivery for Byzantine senders.
///
/// Tick-based delays vs wall-clock transports: `delay` holds a message
/// for 1..max_delay_ticks *bus ticks*, and a tick is whatever the
/// session driver says it is.  On the in-process MessageBus a tick is
/// one MessageBus::advance() call — the hardened/recoverable sessions
/// spend ticks explicitly (HardenedSessionConfig::backoff_ticks,
/// RecoverableSessionConfig::deadline_ticks), so delays and deadlines
/// share one logical clock by construction.  The socket transport
/// (src/net) has no advance(): it maps one tick to one wall-clock
/// `ServerConfig::tick` / `ClientPoolConfig::tick` duration, and its
/// fault delays are scheduled on that clock.  Under either mapping a
/// delay that can exceed the session deadline is a misconfiguration,
/// not a fault model: the message is indistinguishable from a drop, the
/// round degrades or excludes the sender, and the "delay" counter lies
/// about what was simulated.  require_delay_within_deadline() turns
/// that silent misbehaviour into a typed error at configuration time.
struct FaultSpec {
  double drop = 0.0;       ///< message silently discarded
  double duplicate = 0.0;  ///< delivered twice
  double reorder = 0.0;    ///< jumps the destination queue
  double corrupt = 0.0;    ///< random bytes flipped in transit
  double delay = 0.0;      ///< held for 1..max_delay_ticks bus ticks
  std::size_t max_delay_ticks = 2;
};

/// Validates that `spec`'s delay fault cannot outlive a session deadline
/// of `deadline_ticks` ticks (0 = no deadline, always fine).  Throws
/// LppaError(kInvalidArgument) when spec.delay > 0 and
/// spec.max_delay_ticks >= deadline_ticks: a delayed message could then
/// land after the round committed, which every driver would silently
/// misreport as a drop/exclusion.  Both the in-process recoverable
/// session tests and the socket transport (net::SocketFaultInjector)
/// call this before arming an injector against a deadlined round.
void require_delay_within_deadline(const FaultSpec& spec,
                                   std::size_t deadline_ticks);

/// Running totals of injected faults; copied into RoundReport.
struct FaultCounters {
  std::size_t messages = 0;  ///< sends the injector ruled on
  std::size_t drops = 0;
  std::size_t duplicates = 0;
  std::size_t reorders = 0;
  std::size_t corruptions = 0;
  std::size_t delays = 0;
};

/// The injector's verdict for one message.
struct FaultDecision {
  enum class Delivery : std::uint8_t {
    kNormal,
    kDrop,
    kDuplicate,
    kReorder,
    kDelay,
  };
  Delivery delivery = Delivery::kNormal;
  bool corrupt = false;
  std::size_t delay_ticks = 0;  ///< meaningful when delivery == kDelay
};

class FaultInjector {
 public:
  /// `spec` applies to every sender without an override.
  explicit FaultInjector(std::uint64_t seed, FaultSpec spec = {});

  /// Overrides the fault profile of one sender.
  void set_party_spec(const Address& party, FaultSpec spec);

  /// Marks a party Byzantine: every message it sends is corrupted (its
  /// delivery faults still apply on top).  Models a bidder that always
  /// submits garbage.
  void mark_byzantine(const Address& party);
  bool is_byzantine(const Address& party) const;

  /// Rules on one message from `from`; advances the fault Rng stream.
  FaultDecision decide(const Address& from, const Address& to);

  /// Flips 1-4 random bytes of `message` in place (appends one garbage
  /// byte when empty, so corruption is never a no-op).
  void corrupt_in_place(Bytes& message);

  const FaultCounters& counters() const noexcept { return counters_; }
  void reset_counters() noexcept { counters_ = FaultCounters{}; }

  /// Attaches (or detaches, with nullptr) an observability sink: decide()
  /// mirrors FaultCounters into per-fault-type counters `fault.messages`
  /// / `fault.drops` / `fault.duplicates` / `fault.reorders` /
  /// `fault.corruptions` / `fault.delays`.  Not owned.
  void set_metrics(obs::MetricsRegistry* metrics) noexcept;

 private:
  const FaultSpec& spec_for(const Address& party) const;

  Rng rng_;
  FaultSpec default_spec_;
  std::map<std::pair<std::uint8_t, std::size_t>, FaultSpec> overrides_;
  std::set<std::pair<std::uint8_t, std::size_t>> byzantine_;
  FaultCounters counters_;
  obs::MetricsRegistry* metrics_ = nullptr;  ///< not owned; may be null
};

/// Where the recoverable session (proto/session.h) may lose the
/// auctioneer process.  Each point sits just after the matching journal
/// record is durable, so a crash there loses all in-memory state but
/// never the log — the atomicity contract of a write-ahead design.
enum class CrashPoint : std::uint8_t {
  kAfterIngest = 0,       ///< after an accepted submission was journaled
  kAfterFinalize = 1,     ///< after the admission phase commit
  kAfterAllocation = 2,   ///< after the allocation snapshot commit
  kAfterChargeCommit = 3, ///< after a charge-result batch was journaled
  kBeforePublish = 4,     ///< charging complete, announcement not yet out
  kMidChurn = 5,          ///< after a churn (departure/arrival) record
};
inline constexpr std::size_t kNumCrashPoints = 6;

/// Thrown by CrashInjector::checkpoint to model the auctioneer process
/// dying.  Deliberately NOT an LppaError: protocol-boundary code catches
/// LppaError to classify peer garbage, and a crash must tear through
/// those handlers like a real process death would.
struct CrashSignal {
  CrashPoint point = CrashPoint::kAfterIngest;
  std::size_t hit = 0;  ///< which occurrence of the point fired
};

/// CrashInjector: kills the auctioneer at seeded or explicitly armed
/// crash points.  Sibling of FaultInjector — the injector owns the crash
/// schedule so a crashy run is a pure function of (seed / armed points,
/// checkpoint sequence), independent of the parties' randomness.
///
/// Three modes:
///   * default-constructed: pure counter (never crashes) — a dry run
///     measures how many times each point is reached, which the
///     crash-matrix test sweeps exhaustively;
///   * arm(point, nth): crash exactly at the nth hit of a point, once;
///   * seeded(seed, prob, max): each checkpoint crashes with probability
///     `prob` until `max` crashes fired — the multi-round sim schedule.
class CrashInjector {
 public:
  CrashInjector() = default;

  static CrashInjector seeded(std::uint64_t seed, double crash_prob,
                              std::size_t max_crashes);

  /// Arms one crash: the nth (0-based) future hit of `point` throws.
  void arm(CrashPoint point, std::size_t nth);

  /// Counts the hit and throws CrashSignal when the schedule says so.
  void checkpoint(CrashPoint point);

  std::size_t hits(CrashPoint point) const noexcept {
    return hits_[static_cast<std::size_t>(point)];
  }
  std::size_t total_hits() const noexcept;
  std::size_t crashes_fired() const noexcept { return crashes_; }

 private:
  struct Armed {
    CrashPoint point;
    std::size_t nth;
    bool fired = false;
  };

  std::array<std::size_t, kNumCrashPoints> hits_{};
  std::vector<Armed> armed_;
  std::optional<Rng> rng_;  ///< engaged in seeded mode
  double crash_prob_ = 0.0;
  std::size_t max_crashes_ = 0;
  std::size_t crashes_ = 0;
};

}  // namespace lppa::proto
