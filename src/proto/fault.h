// FaultInjector: seeded, per-party message-fault injection for the
// MessageBus.
//
// The wire harness is where the library's robustness claims get tested:
// every experiment should be runnable under dropped, duplicated,
// reordered, corrupted, and delayed messages, and under Byzantine
// parties that corrupt everything they send.  The injector decides the
// fate of each message at send time from its own Rng stream, so a fault
// schedule is a pure function of (seed, message sequence) — the same
// seed reproduces the same faults regardless of what the parties do with
// their own randomness.
//
// Attach to a bus with MessageBus::set_fault_injector; the bus consults
// decide() per send and applies the verdict (see proto/bus.h).
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "common/bytes.h"
#include "common/rng.h"

namespace lppa::proto {

struct Address;  // proto/bus.h

/// Per-party fault probabilities.  The five delivery faults are mutually
/// exclusive per message (one uniform draw is cascaded through them);
/// corruption composes with delivery for Byzantine senders.
struct FaultSpec {
  double drop = 0.0;       ///< message silently discarded
  double duplicate = 0.0;  ///< delivered twice
  double reorder = 0.0;    ///< jumps the destination queue
  double corrupt = 0.0;    ///< random bytes flipped in transit
  double delay = 0.0;      ///< held for 1..max_delay_ticks bus ticks
  std::size_t max_delay_ticks = 2;
};

/// Running totals of injected faults; copied into RoundReport.
struct FaultCounters {
  std::size_t messages = 0;  ///< sends the injector ruled on
  std::size_t drops = 0;
  std::size_t duplicates = 0;
  std::size_t reorders = 0;
  std::size_t corruptions = 0;
  std::size_t delays = 0;
};

/// The injector's verdict for one message.
struct FaultDecision {
  enum class Delivery : std::uint8_t {
    kNormal,
    kDrop,
    kDuplicate,
    kReorder,
    kDelay,
  };
  Delivery delivery = Delivery::kNormal;
  bool corrupt = false;
  std::size_t delay_ticks = 0;  ///< meaningful when delivery == kDelay
};

class FaultInjector {
 public:
  /// `spec` applies to every sender without an override.
  explicit FaultInjector(std::uint64_t seed, FaultSpec spec = {});

  /// Overrides the fault profile of one sender.
  void set_party_spec(const Address& party, FaultSpec spec);

  /// Marks a party Byzantine: every message it sends is corrupted (its
  /// delivery faults still apply on top).  Models a bidder that always
  /// submits garbage.
  void mark_byzantine(const Address& party);
  bool is_byzantine(const Address& party) const;

  /// Rules on one message from `from`; advances the fault Rng stream.
  FaultDecision decide(const Address& from, const Address& to);

  /// Flips 1-4 random bytes of `message` in place (appends one garbage
  /// byte when empty, so corruption is never a no-op).
  void corrupt_in_place(Bytes& message);

  const FaultCounters& counters() const noexcept { return counters_; }
  void reset_counters() noexcept { counters_ = FaultCounters{}; }

 private:
  const FaultSpec& spec_for(const Address& party) const;

  Rng rng_;
  FaultSpec default_spec_;
  std::map<std::pair<std::uint8_t, std::size_t>, FaultSpec> overrides_;
  std::set<std::pair<std::uint8_t, std::size_t>> byzantine_;
  FaultCounters counters_;
};

}  // namespace lppa::proto
