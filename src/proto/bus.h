// MessageBus: a synchronous store-and-forward byte transport between the
// protocol parties, with per-link volume accounting.
//
// The wire harness (proto/session.h) runs the whole auction through this
// bus so that (a) every protocol message provably round-trips through
// its byte encoding and (b) the Theorem 4 communication-cost accounting
// is measured on real link traffic rather than struct sizes.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace lppa::obs {
class MetricsRegistry;
}  // namespace lppa::obs

namespace lppa::proto {

class FaultInjector;  // proto/fault.h

/// A protocol endpoint: one of N secondary users, the auctioneer, or the
/// TTP.
struct Address {
  enum class Kind : std::uint8_t { kSecondaryUser, kAuctioneer, kTtp };
  Kind kind = Kind::kAuctioneer;
  std::size_t index = 0;  ///< SU index; 0 for auctioneer/TTP

  static Address su(std::size_t index) {
    return {Kind::kSecondaryUser, index};
  }
  static Address auctioneer() { return {Kind::kAuctioneer, 0}; }
  static Address ttp() { return {Kind::kTtp, 0}; }

  auto operator<=>(const Address&) const = default;
  std::string label() const;
};

/// Aggregate traffic of one directed link.
struct LinkStats {
  std::size_t messages = 0;
  std::size_t bytes = 0;
};

class MessageBus {
 public:
  /// Enqueues a message; counted against the (from, to) link.  When a
  /// fault injector is attached the message may instead be dropped,
  /// duplicated, reordered (jump the queue), corrupted in transit, or
  /// held back until enough advance() ticks pass.  Link stats always
  /// count the send attempt — they are sender-side accounting.
  void send(const Address& from, const Address& to, Bytes message);

  /// Pops the oldest message addressed to `to`, or nullopt.
  std::optional<Bytes> receive(const Address& to);

  /// Messages currently queued for an endpoint.
  std::size_t pending(const Address& to) const;

  /// Attaches (or detaches, with nullptr) a fault injector.  The bus does
  /// not own it; the caller keeps it alive while attached.
  void set_fault_injector(FaultInjector* injector) noexcept {
    injector_ = injector;
  }
  FaultInjector* fault_injector() const noexcept { return injector_; }

  /// Attaches (or detaches, with nullptr) an observability sink: every
  /// send increments `bus.messages` / `bus.bytes`, deliveries into the
  /// auctioneer and TTP are broken out as `bus.to_auctioneer.messages` /
  /// `bus.to_ttp.messages`, and delay-buffer flushes count under
  /// `bus.delayed_flushed`.  Not owned.
  void set_metrics(obs::MetricsRegistry* metrics) noexcept;

  /// One unit of simulated network time: delayed messages whose timer
  /// expires are moved into their destination queues (in the order they
  /// were sent).  A no-op without delayed traffic.
  void advance(std::size_t ticks = 1);

  /// Messages currently held in the delay buffer.
  std::size_t delayed() const noexcept { return delayed_.size(); }

  /// Traffic of one directed link so far.
  LinkStats link(const Address& from, const Address& to) const;

  /// Total traffic into an endpoint kind (e.g. everything the auctioneer
  /// received from all SUs).
  LinkStats total_into(Address::Kind to_kind) const;

 private:
  struct Delayed {
    Address to;
    Bytes message;
    std::size_t ticks_left;
  };

  void deliver(const Address& to, Bytes message, bool front);

  std::map<Address, std::deque<Bytes>> queues_;
  std::map<std::pair<Address, Address>, LinkStats> stats_;
  std::vector<Delayed> delayed_;
  FaultInjector* injector_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;  ///< not owned; may be null
};

}  // namespace lppa::proto
