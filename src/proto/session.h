// Wire-level auction session: the complete LPPA round with every message
// travelling through a MessageBus as bytes.
//
// run_wire_auction follows exactly the RNG discipline of
// core::LppaAuction::run (one fork for all SU-side randomness, then the
// caller's stream for allocation), so under identical seeds both paths
// produce identical awards — a property the integration tests assert.
#pragma once

#include "core/lppa_auction.h"
#include "proto/bus.h"
#include "proto/parties.h"
#include "proto/round_report.h"

namespace lppa::proto {

struct WireAuctionResult {
  std::vector<auction::Award> awards;
  /// Total SU -> auctioneer submission traffic.
  LinkStats submission_traffic;
  /// Auctioneer <-> TTP charging traffic (both directions summed).
  LinkStats charging_traffic;
  /// Number of charge-query batches the TTP served.
  std::size_t ttp_batches = 0;
};

/// Runs one full auction over the bus.  `ttp` provides the keys and the
/// charging service (it outlives the call); `bus` accumulates traffic
/// stats across calls if reused.
WireAuctionResult run_wire_auction(
    const core::LppaConfig& config, core::TrustedThirdParty& ttp,
    const std::vector<auction::SuLocation>& locations,
    const std::vector<auction::BidVector>& bids, MessageBus& bus, Rng& rng);

/// Retry / timeout policy of the hardened session.  "Time" is bus ticks
/// (MessageBus::advance), so the whole schedule is deterministic.
struct HardenedSessionConfig {
  /// Retransmission waves before a silent SU is declared unresponsive.
  std::size_t max_retries = 6;
  /// Ticks waited before the first retry wave; doubles every wave
  /// (exponential backoff), which gives delayed messages time to land.
  std::size_t backoff_base_ticks = 1;
  /// Ceiling on any single backoff wait.  Doubling per wave would
  /// overflow (and shift past the word size, which is undefined) for
  /// large retry budgets; the schedule therefore plateaus here.
  std::size_t max_backoff_ticks = 4096;
  /// Send attempts per charge-query batch before the TTP is declared
  /// unreachable (which aborts the round — charging has no graceful
  /// fallback, the TTP is the round's root of trust).
  std::size_t max_charge_attempts = 8;

  /// The backoff wait for retry wave `wave`:
  /// min(backoff_base_ticks * 2^wave, max_backoff_ticks), computed
  /// without ever shifting past the word size — well-defined for any
  /// wave, however large.
  std::size_t backoff_ticks(std::size_t wave) const noexcept;
};

struct HardenedWireResult {
  /// TTP-validated awards over the surviving SUs; Award::user carries
  /// original SU ids.
  std::vector<auction::Award> awards;
  RoundReport report;
};

/// Runs one auction round that tolerates faults: every submission is
/// validated (core::SubmissionValidator), missing or damaged submissions
/// are nacked with kRetransmitRequest under exponential backoff, and SUs
/// that never deliver a valid pair are excluded so the round completes
/// with the survivors.  With a fault-free bus and an empty `exclude` the
/// awards match run_wire_auction exactly.
///
/// `exclude` lists SUs that do not participate at all (their RNG streams
/// are still consumed, so a run excluding exactly the parties a faulty
/// run lost produces byte-identical submissions for the survivors — the
/// equivalence the fault tests assert).  Attach a FaultInjector to `bus`
/// before calling to inject faults.
HardenedWireResult run_hardened_wire_auction(
    const core::LppaConfig& config, core::TrustedThirdParty& ttp,
    const std::vector<auction::SuLocation>& locations,
    const std::vector<auction::BidVector>& bids, MessageBus& bus, Rng& rng,
    const HardenedSessionConfig& hardened = {},
    const std::vector<std::size_t>& exclude = {});

/// Policy of the crash-tolerant session (hardened policy + round deadline
/// and recovery accounting).
struct RecoverableSessionConfig {
  HardenedSessionConfig hardened;
  /// Round deadline in bus ticks; 0 disables it.  When the deadline
  /// expires while submissions are still missing (typically because
  /// recoveries consumed the tick budget), the round degrades: it commits
  /// with the quorum of journaled submissions instead of waiting out the
  /// remaining retry waves, and the report records the degradation.
  std::size_t deadline_ticks = 0;
  /// Minimum number of participants a (possibly degraded) commit needs;
  /// below it the round aborts with LppaError(kProtocol).
  std::size_t min_quorum = 1;
  /// Bus ticks each auctioneer restart costs (journal re-read, state
  /// rebuild) — this is what makes crashes eat into the deadline.
  std::size_t recovery_cost_ticks = 1;
};

struct RecoverableWireResult {
  /// TTP-validated awards; Award::user carries original SU ids.
  std::vector<auction::Award> awards;
  RoundReport report;
  /// The durable journal as it stands at round commit.
  Bytes journal;
  /// The published kWinnerAnnouncement envelope, for byte-identity
  /// assertions across crashy and crash-free runs.
  Bytes announcement;
};

/// Runs one crash-tolerant auction round: every AuctioneerSession state
/// transition is write-ahead journaled, and when `crashes` fires a
/// CrashSignal at one of its checkpoints the auctioneer is rebuilt from
/// the journal alone — accepted envelopes re-ingested, exclusion
/// verdicts replayed, the allocation snapshot restored — and the round
/// continues.  Recovery is deterministic: the same `seed` produces the
/// same awards and the same announcement bytes whether the round crashed
/// zero times or at every checkpoint, and the SUs never resubmit (only
/// already-sent bytes are redelivered, deduped as benign).
///
/// Takes a seed rather than an Rng& deliberately: every restart must
/// reconstruct the identical allocation stream, which a caller-owned
/// generator (partially consumed by the dead attempt) could not provide.
///
/// With no injector and recov.deadline_ticks == 0 this is byte-equivalent
/// to run_hardened_wire_auction over Rng(seed).
RecoverableWireResult run_recoverable_wire_auction(
    const core::LppaConfig& config, core::TrustedThirdParty& ttp,
    const std::vector<auction::SuLocation>& locations,
    const std::vector<auction::BidVector>& bids, MessageBus& bus,
    std::uint64_t seed, const RecoverableSessionConfig& recov = {},
    CrashInjector* crashes = nullptr,
    const std::vector<std::size_t>& exclude = {});

/// Rebuilds a crashed auctioneer's state from its write-ahead journal:
/// accepted envelopes are re-ingested through the normal path, strike /
/// equivocation verdicts and churn departures/arrivals are replayed, and
/// a post-allocation crash restores the last kAllocated snapshot plus
/// later charge batches.  Returns the retry wave to resume at.  The
/// journal must be attached to the session only AFTER replaying (replay
/// must not re-journal what is already durable).  This is the exact
/// helper run_recoverable_wire_auction recovers with, exposed so churn
/// harnesses can crash and rebuild sessions mid-churn.
std::size_t replay_session_journal(const RoundJournal& journal,
                                   AuctioneerSession& session,
                                   std::size_t num_users, RoundReport& report);

}  // namespace lppa::proto
