// Wire-level auction session: the complete LPPA round with every message
// travelling through a MessageBus as bytes.
//
// run_wire_auction follows exactly the RNG discipline of
// core::LppaAuction::run (one fork for all SU-side randomness, then the
// caller's stream for allocation), so under identical seeds both paths
// produce identical awards — a property the integration tests assert.
#pragma once

#include "core/lppa_auction.h"
#include "proto/bus.h"
#include "proto/parties.h"
#include "proto/round_report.h"

namespace lppa::proto {

struct WireAuctionResult {
  std::vector<auction::Award> awards;
  /// Total SU -> auctioneer submission traffic.
  LinkStats submission_traffic;
  /// Auctioneer <-> TTP charging traffic (both directions summed).
  LinkStats charging_traffic;
  /// Number of charge-query batches the TTP served.
  std::size_t ttp_batches = 0;
};

/// Runs one full auction over the bus.  `ttp` provides the keys and the
/// charging service (it outlives the call); `bus` accumulates traffic
/// stats across calls if reused.
WireAuctionResult run_wire_auction(
    const core::LppaConfig& config, core::TrustedThirdParty& ttp,
    const std::vector<auction::SuLocation>& locations,
    const std::vector<auction::BidVector>& bids, MessageBus& bus, Rng& rng);

/// Retry / timeout policy of the hardened session.  "Time" is bus ticks
/// (MessageBus::advance), so the whole schedule is deterministic.
struct HardenedSessionConfig {
  /// Retransmission waves before a silent SU is declared unresponsive.
  std::size_t max_retries = 6;
  /// Ticks waited before the first retry wave; doubles every wave
  /// (exponential backoff), which gives delayed messages time to land.
  std::size_t backoff_base_ticks = 1;
  /// Send attempts per charge-query batch before the TTP is declared
  /// unreachable (which aborts the round — charging has no graceful
  /// fallback, the TTP is the round's root of trust).
  std::size_t max_charge_attempts = 8;
};

struct HardenedWireResult {
  /// TTP-validated awards over the surviving SUs; Award::user carries
  /// original SU ids.
  std::vector<auction::Award> awards;
  RoundReport report;
};

/// Runs one auction round that tolerates faults: every submission is
/// validated (core::SubmissionValidator), missing or damaged submissions
/// are nacked with kRetransmitRequest under exponential backoff, and SUs
/// that never deliver a valid pair are excluded so the round completes
/// with the survivors.  With a fault-free bus and an empty `exclude` the
/// awards match run_wire_auction exactly.
///
/// `exclude` lists SUs that do not participate at all (their RNG streams
/// are still consumed, so a run excluding exactly the parties a faulty
/// run lost produces byte-identical submissions for the survivors — the
/// equivalence the fault tests assert).  Attach a FaultInjector to `bus`
/// before calling to inject faults.
HardenedWireResult run_hardened_wire_auction(
    const core::LppaConfig& config, core::TrustedThirdParty& ttp,
    const std::vector<auction::SuLocation>& locations,
    const std::vector<auction::BidVector>& bids, MessageBus& bus, Rng& rng,
    const HardenedSessionConfig& hardened = {},
    const std::vector<std::size_t>& exclude = {});

}  // namespace lppa::proto
