// Wire-level auction session: the complete LPPA round with every message
// travelling through a MessageBus as bytes.
//
// run_wire_auction follows exactly the RNG discipline of
// core::LppaAuction::run (one fork for all SU-side randomness, then the
// caller's stream for allocation), so under identical seeds both paths
// produce identical awards — a property the integration tests assert.
#pragma once

#include "core/lppa_auction.h"
#include "proto/bus.h"
#include "proto/parties.h"

namespace lppa::proto {

struct WireAuctionResult {
  std::vector<auction::Award> awards;
  /// Total SU -> auctioneer submission traffic.
  LinkStats submission_traffic;
  /// Auctioneer <-> TTP charging traffic (both directions summed).
  LinkStats charging_traffic;
  /// Number of charge-query batches the TTP served.
  std::size_t ttp_batches = 0;
};

/// Runs one full auction over the bus.  `ttp` provides the keys and the
/// charging service (it outlives the call); `bus` accumulates traffic
/// stats across calls if reused.
WireAuctionResult run_wire_auction(
    const core::LppaConfig& config, core::TrustedThirdParty& ttp,
    const std::vector<auction::SuLocation>& locations,
    const std::vector<auction::BidVector>& bids, MessageBus& bus, Rng& rng);

}  // namespace lppa::proto
