#include "proto/fault.h"

#include "obs/metrics.h"
#include "proto/bus.h"

namespace lppa::proto {

namespace {

std::pair<std::uint8_t, std::size_t> key_of(const Address& party) {
  return {static_cast<std::uint8_t>(party.kind), party.index};
}

}  // namespace

void require_delay_within_deadline(const FaultSpec& spec,
                                   std::size_t deadline_ticks) {
  if (deadline_ticks == 0 || spec.delay <= 0.0) return;
  LPPA_REQUIRE(spec.max_delay_ticks < deadline_ticks,
               "fault delay budget (" +
                   std::to_string(spec.max_delay_ticks) +
                   " ticks) reaches the session deadline (" +
                   std::to_string(deadline_ticks) +
                   " ticks): a delayed message could land after commit and "
                   "would be indistinguishable from a drop");
}

FaultInjector::FaultInjector(std::uint64_t seed, FaultSpec spec)
    : rng_(seed), default_spec_(spec) {}

void FaultInjector::set_party_spec(const Address& party, FaultSpec spec) {
  overrides_[key_of(party)] = spec;
}

void FaultInjector::mark_byzantine(const Address& party) {
  byzantine_.insert(key_of(party));
}

bool FaultInjector::is_byzantine(const Address& party) const {
  return byzantine_.count(key_of(party)) > 0;
}

void FaultInjector::set_metrics(obs::MetricsRegistry* metrics) noexcept {
  metrics_ = metrics;
}

const FaultSpec& FaultInjector::spec_for(const Address& party) const {
  const auto it = overrides_.find(key_of(party));
  return it == overrides_.end() ? default_spec_ : it->second;
}

FaultDecision FaultInjector::decide(const Address& from, const Address&) {
  const FaultSpec& spec = spec_for(from);
  ++counters_.messages;

  FaultDecision d;
  d.corrupt = is_byzantine(from);

  // One uniform draw cascaded through the delivery faults keeps them
  // mutually exclusive and makes the probabilities read off the spec.
  double u = rng_.uniform01();
  if (u < spec.drop) {
    d.delivery = FaultDecision::Delivery::kDrop;
  } else if ((u -= spec.drop) < spec.duplicate) {
    d.delivery = FaultDecision::Delivery::kDuplicate;
  } else if ((u -= spec.duplicate) < spec.reorder) {
    d.delivery = FaultDecision::Delivery::kReorder;
  } else if ((u -= spec.reorder) < spec.corrupt) {
    d.corrupt = true;
  } else if ((u -= spec.corrupt) < spec.delay) {
    d.delivery = FaultDecision::Delivery::kDelay;
    d.delay_ticks =
        1 + rng_.below(spec.max_delay_ticks == 0 ? 1 : spec.max_delay_ticks);
  }

  switch (d.delivery) {
    case FaultDecision::Delivery::kDrop: ++counters_.drops; break;
    case FaultDecision::Delivery::kDuplicate: ++counters_.duplicates; break;
    case FaultDecision::Delivery::kReorder: ++counters_.reorders; break;
    case FaultDecision::Delivery::kDelay: ++counters_.delays; break;
    case FaultDecision::Delivery::kNormal: break;
  }
  if (d.corrupt) ++counters_.corruptions;
  if (metrics_ != nullptr) {
    metrics_->counter("fault.messages").inc();
    switch (d.delivery) {
      case FaultDecision::Delivery::kDrop:
        metrics_->counter("fault.drops").inc();
        break;
      case FaultDecision::Delivery::kDuplicate:
        metrics_->counter("fault.duplicates").inc();
        break;
      case FaultDecision::Delivery::kReorder:
        metrics_->counter("fault.reorders").inc();
        break;
      case FaultDecision::Delivery::kDelay:
        metrics_->counter("fault.delays").inc();
        break;
      case FaultDecision::Delivery::kNormal:
        break;
    }
    if (d.corrupt) metrics_->counter("fault.corruptions").inc();
  }
  return d;
}

CrashInjector CrashInjector::seeded(std::uint64_t seed, double crash_prob,
                                    std::size_t max_crashes) {
  LPPA_REQUIRE(crash_prob >= 0.0 && crash_prob <= 1.0,
               "crash probability must be in [0, 1]");
  CrashInjector injector;
  injector.rng_.emplace(seed);
  injector.crash_prob_ = crash_prob;
  injector.max_crashes_ = max_crashes;
  return injector;
}

void CrashInjector::arm(CrashPoint point, std::size_t nth) {
  armed_.push_back({point, nth, false});
}

void CrashInjector::checkpoint(CrashPoint point) {
  const std::size_t hit = hits_[static_cast<std::size_t>(point)]++;
  for (Armed& a : armed_) {
    if (!a.fired && a.point == point && a.nth == hit) {
      a.fired = true;
      ++crashes_;
      throw CrashSignal{point, hit};
    }
  }
  // Seeded mode consumes one draw per checkpoint whether or not it
  // fires, so the schedule is a pure function of the checkpoint sequence.
  if (rng_ && crashes_ < max_crashes_ && rng_->bernoulli(crash_prob_)) {
    ++crashes_;
    throw CrashSignal{point, hit};
  }
}

std::size_t CrashInjector::total_hits() const noexcept {
  std::size_t total = 0;
  for (const std::size_t h : hits_) total += h;
  return total;
}

void FaultInjector::corrupt_in_place(Bytes& message) {
  if (message.empty()) {
    message.push_back(static_cast<std::uint8_t>(rng_.below(256)));
    return;
  }
  const std::size_t flips = 1 + rng_.below(4);
  for (std::size_t f = 0; f < flips; ++f) {
    const std::size_t pos = rng_.below(message.size());
    // XOR with a non-zero byte so every flip really changes the message.
    message[pos] ^= static_cast<std::uint8_t>(1 + rng_.below(255));
  }
}

}  // namespace lppa::proto
