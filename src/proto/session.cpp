#include "proto/session.h"

#include "proto/fault.h"

namespace lppa::proto {

WireAuctionResult run_wire_auction(
    const core::LppaConfig& config, core::TrustedThirdParty& ttp,
    const std::vector<auction::SuLocation>& locations,
    const std::vector<auction::BidVector>& bids, MessageBus& bus, Rng& rng) {
  LPPA_REQUIRE(locations.size() == bids.size(),
               "one location per bid vector required");
  LPPA_REQUIRE(!bids.empty(), "auction requires at least one bidder");

  const std::size_t n = bids.size();
  const Address auctioneer = Address::auctioneer();
  const Address ttp_addr = Address::ttp();

  // --- SU side: mask and transmit (same RNG discipline as LppaAuction) ---
  const core::SuKeyBundle keys = ttp.su_keys();
  Rng su_master = rng.fork();
  for (std::size_t u = 0; u < n; ++u) {
    Rng su_rng = su_master.fork();
    const SuClient client(u, config, keys);
    bus.send(Address::su(u), auctioneer,
             client.location_envelope(locations[u], su_rng));
    bus.send(Address::su(u), auctioneer,
             client.bid_envelope(bids[u], su_rng));
  }

  // --- Auctioneer: drain the queue, allocate, query the TTP --------------
  AuctioneerSession session(config, n);
  while (auto message = bus.receive(auctioneer)) {
    session.ingest(*message);
  }
  LPPA_PROTOCOL_CHECK(session.ready(), "missing submissions on the bus");
  session.run_allocation(rng);

  WireAuctionResult result;
  TtpService service(ttp);
  for (const auto& query_envelope : session.charge_query_envelopes()) {
    bus.send(auctioneer, ttp_addr, query_envelope);
    const auto delivered = bus.receive(ttp_addr);
    LPPA_PROTOCOL_CHECK(delivered.has_value(), "charge query lost on the bus");
    bus.send(ttp_addr, auctioneer, service.handle(*delivered));
    const auto response = bus.receive(auctioneer);
    LPPA_PROTOCOL_CHECK(response.has_value(), "charge result lost on the bus");
    session.ingest_charge_results(*response);
    ++result.ttp_batches;
  }

  // --- Publication ---------------------------------------------------------
  const Bytes announcement = session.winner_announcement();
  const Envelope e = Envelope::deserialize(announcement);
  result.awards = WinnerAnnouncement::deserialize(e.payload).awards;

  result.submission_traffic = bus.total_into(Address::Kind::kAuctioneer);
  // Subtract the TTP->auctioneer leg to isolate SU submissions.
  const LinkStats ttp_to_auctioneer = bus.link(ttp_addr, auctioneer);
  result.submission_traffic.messages -= ttp_to_auctioneer.messages;
  result.submission_traffic.bytes -= ttp_to_auctioneer.bytes;

  const LinkStats to_ttp = bus.link(auctioneer, ttp_addr);
  result.charging_traffic.messages =
      to_ttp.messages + ttp_to_auctioneer.messages;
  result.charging_traffic.bytes = to_ttp.bytes + ttp_to_auctioneer.bytes;
  return result;
}

HardenedWireResult run_hardened_wire_auction(
    const core::LppaConfig& config, core::TrustedThirdParty& ttp,
    const std::vector<auction::SuLocation>& locations,
    const std::vector<auction::BidVector>& bids, MessageBus& bus, Rng& rng,
    const HardenedSessionConfig& hardened,
    const std::vector<std::size_t>& exclude) {
  LPPA_REQUIRE(locations.size() == bids.size(),
               "one location per bid vector required");
  LPPA_REQUIRE(!bids.empty(), "auction requires at least one bidder");

  const std::size_t n = bids.size();
  const Address auctioneer = Address::auctioneer();
  const Address ttp_addr = Address::ttp();

  std::vector<bool> participating(n, true);
  for (const std::size_t u : exclude) {
    LPPA_REQUIRE(u < n, "excluded SU index out of range");
    participating[u] = false;
  }

  HardenedWireResult result;
  RoundReport& report = result.report;
  report.num_users = n;

  // --- SU side: mask once, cache the envelopes for retransmission --------
  // Every SU's stream is forked in index order whether or not it
  // participates, so a run restricted to the survivors of a faulty run
  // regenerates byte-identical submissions for them.
  const core::SuKeyBundle keys = ttp.su_keys();
  Rng su_master = rng.fork();
  struct SuEndpoint {
    Bytes location;
    Bytes bid;
  };
  std::vector<SuEndpoint> endpoints(n);
  for (std::size_t u = 0; u < n; ++u) {
    Rng su_rng = su_master.fork();
    if (!participating[u]) continue;
    const SuClient client(u, config, keys);
    endpoints[u].location = client.location_envelope(locations[u], su_rng);
    endpoints[u].bid = client.bid_envelope(bids[u], su_rng);
    bus.send(Address::su(u), auctioneer, endpoints[u].location);
    bus.send(Address::su(u), auctioneer, endpoints[u].bid);
  }

  // --- Auctioneer: drain / nack / backoff until complete or give up ------
  AuctioneerSession session(config, n);
  const auto drain_auctioneer = [&] {
    while (auto message = bus.receive(auctioneer)) {
      switch (session.try_ingest(*message)) {
        case AuctioneerSession::IngestResult::kAccepted:
          break;
        case AuctioneerSession::IngestResult::kDuplicateRedelivery:
          ++report.duplicate_redeliveries;
          break;
        case AuctioneerSession::IngestResult::kRejected:
        case AuctioneerSession::IngestResult::kEquivocation:
          ++report.rejected_messages;
          break;
      }
    }
  };

  for (std::size_t wave = 0;; ++wave) {
    drain_auctioneer();
    std::vector<std::size_t> missing;
    for (const std::size_t u : session.missing_users()) {
      if (participating[u]) missing.push_back(u);
    }
    if (missing.empty() || wave >= hardened.max_retries) break;
    report.retry_waves = wave + 1;

    // Nack exactly what is missing; resends of already-accepted halves
    // dedupe harmlessly at the auctioneer.
    for (const std::size_t u : missing) {
      Envelope nack;
      nack.type = MessageType::kRetransmitRequest;
      RetransmitRequest request;
      request.mask = static_cast<std::uint8_t>(
          (session.has_location(u) ? 0 : RetransmitRequest::kLocation) |
          (session.has_bid(u) ? 0 : RetransmitRequest::kBid));
      nack.payload = request.serialize();
      bus.send(auctioneer, Address::su(u), nack.serialize());
    }
    // Exponential backoff: waiting also flushes delay-faulted messages.
    bus.advance(hardened.backoff_base_ticks << wave);

    // SU endpoints answer nacks with their cached envelope bytes.  A
    // damaged nack still triggers a full resend — over-answering is safe,
    // under-answering would stall the round.
    for (std::size_t u = 0; u < n; ++u) {
      if (!participating[u]) continue;
      while (auto message = bus.receive(Address::su(u))) {
        std::uint8_t mask = RetransmitRequest::kLocation | RetransmitRequest::kBid;
        try {
          const Envelope e = Envelope::deserialize(*message);
          if (e.type != MessageType::kRetransmitRequest) continue;
          mask = RetransmitRequest::deserialize(e.payload).mask;
        } catch (const LppaError&) {
        }
        if (mask & RetransmitRequest::kLocation) {
          bus.send(Address::su(u), auctioneer, endpoints[u].location);
        }
        if (mask & RetransmitRequest::kBid) {
          bus.send(Address::su(u), auctioneer, endpoints[u].bid);
        }
      }
    }
    bus.advance(hardened.backoff_base_ticks << wave);
  }

  session.finalize_participants(report);
  session.run_allocation(rng);

  // --- Charging: resend the full query set until every award is priced ---
  // The TTP itself is trusted but the link to it is not: queries and
  // results can be dropped or corrupted, so the batches are re-sent
  // wholesale (the TTP is stateless per batch and results are idempotent)
  // until charging_complete() or the attempt budget runs out.
  TtpService service(ttp);
  const std::vector<Bytes> query_envelopes = session.charge_query_envelopes();
  while (!session.charging_complete()) {
    LPPA_PROTOCOL_CHECK(
        report.charge_attempts < hardened.max_charge_attempts,
        "TTP unreachable: charging incomplete after retry budget");
    ++report.charge_attempts;
    for (const auto& query_envelope : query_envelopes) {
      bus.send(auctioneer, ttp_addr, query_envelope);
    }
    bus.advance(hardened.backoff_base_ticks);
    while (auto message = bus.receive(ttp_addr)) {
      try {
        bus.send(ttp_addr, auctioneer, service.handle(*message));
      } catch (const LppaError&) {
        ++report.rejected_messages;  // damaged query; the resend covers it
      }
    }
    bus.advance(hardened.backoff_base_ticks);
    while (auto message = bus.receive(auctioneer)) {
      try {
        session.ingest_charge_results(*message);
      } catch (const LppaError&) {
        ++report.rejected_messages;  // damaged result batch
      }
    }
  }

  // --- Publication --------------------------------------------------------
  const Bytes announcement = session.winner_announcement();
  const Envelope e = Envelope::deserialize(announcement);
  result.awards = WinnerAnnouncement::deserialize(e.payload).awards;
  report.completed = true;
  if (const FaultInjector* injector = bus.fault_injector()) {
    report.faults = injector->counters();
  }
  return result;
}

}  // namespace lppa::proto
