#include "proto/session.h"

#include <algorithm>
#include <limits>

#include "obs/metrics.h"
#include "obs/span.h"
#include "proto/fault.h"
#include "proto/journal.h"

namespace lppa::proto {

std::size_t HardenedSessionConfig::backoff_ticks(
    std::size_t wave) const noexcept {
  if (backoff_base_ticks == 0) return 0;
  // base * 2^wave overflows exactly when base > max >> wave; comparing
  // that way never shifts by more than the word size and never wraps.
  if (wave >= static_cast<std::size_t>(
                  std::numeric_limits<std::size_t>::digits) ||
      backoff_base_ticks > (max_backoff_ticks >> wave)) {
    return max_backoff_ticks;
  }
  return backoff_base_ticks << wave;
}

WireAuctionResult run_wire_auction(
    const core::LppaConfig& config, core::TrustedThirdParty& ttp,
    const std::vector<auction::SuLocation>& locations,
    const std::vector<auction::BidVector>& bids, MessageBus& bus, Rng& rng) {
  LPPA_REQUIRE(locations.size() == bids.size(),
               "one location per bid vector required");
  LPPA_REQUIRE(!bids.empty(), "auction requires at least one bidder");

  const std::size_t n = bids.size();
  const Address auctioneer = Address::auctioneer();
  const Address ttp_addr = Address::ttp();

  // --- SU side: mask and transmit (same RNG discipline as LppaAuction) ---
  const core::SuKeyBundle keys = ttp.su_keys();
  Rng su_master = rng.fork();
  for (std::size_t u = 0; u < n; ++u) {
    Rng su_rng = su_master.fork();
    const SuClient client(u, config, keys);
    bus.send(Address::su(u), auctioneer,
             client.location_envelope(locations[u], su_rng));
    bus.send(Address::su(u), auctioneer,
             client.bid_envelope(bids[u], su_rng));
  }

  // --- Auctioneer: drain the queue, allocate, query the TTP --------------
  AuctioneerSession session(config, n);
  while (auto message = bus.receive(auctioneer)) {
    session.ingest(*message);
  }
  LPPA_PROTOCOL_CHECK(session.ready(), "missing submissions on the bus");
  session.run_allocation(rng);

  WireAuctionResult result;
  TtpService service(ttp);
  for (const auto& query_envelope : session.charge_query_envelopes()) {
    bus.send(auctioneer, ttp_addr, query_envelope);
    const auto delivered = bus.receive(ttp_addr);
    LPPA_PROTOCOL_CHECK(delivered.has_value(), "charge query lost on the bus");
    bus.send(ttp_addr, auctioneer, service.handle(*delivered));
    const auto response = bus.receive(auctioneer);
    LPPA_PROTOCOL_CHECK(response.has_value(), "charge result lost on the bus");
    session.ingest_charge_results(*response);
    ++result.ttp_batches;
  }

  // --- Publication ---------------------------------------------------------
  const Bytes announcement = session.winner_announcement();
  const Envelope e = Envelope::deserialize(announcement);
  result.awards = WinnerAnnouncement::deserialize(e.payload).awards;

  result.submission_traffic = bus.total_into(Address::Kind::kAuctioneer);
  // Subtract the TTP->auctioneer leg to isolate SU submissions.
  const LinkStats ttp_to_auctioneer = bus.link(ttp_addr, auctioneer);
  result.submission_traffic.messages -= ttp_to_auctioneer.messages;
  result.submission_traffic.bytes -= ttp_to_auctioneer.bytes;

  const LinkStats to_ttp = bus.link(auctioneer, ttp_addr);
  result.charging_traffic.messages =
      to_ttp.messages + ttp_to_auctioneer.messages;
  result.charging_traffic.bytes = to_ttp.bytes + ttp_to_auctioneer.bytes;
  return result;
}

HardenedWireResult run_hardened_wire_auction(
    const core::LppaConfig& config, core::TrustedThirdParty& ttp,
    const std::vector<auction::SuLocation>& locations,
    const std::vector<auction::BidVector>& bids, MessageBus& bus, Rng& rng,
    const HardenedSessionConfig& hardened,
    const std::vector<std::size_t>& exclude) {
  LPPA_REQUIRE(locations.size() == bids.size(),
               "one location per bid vector required");
  LPPA_REQUIRE(!bids.empty(), "auction requires at least one bidder");

  const std::size_t n = bids.size();
  const Address auctioneer = Address::auctioneer();
  const Address ttp_addr = Address::ttp();

  std::vector<bool> participating(n, true);
  for (const std::size_t u : exclude) {
    LPPA_REQUIRE(u < n, "excluded SU index out of range");
    participating[u] = false;
  }

  HardenedWireResult result;
  RoundReport& report = result.report;
  report.num_users = n;

  obs::MetricsRegistry* const m = config.metrics;
  obs::Span round_span(m, "wire.round");
  if (m != nullptr) m->counter("wire.rounds").inc();

  // --- SU side: mask once, cache the envelopes for retransmission --------
  // Every SU's stream is forked in index order whether or not it
  // participates, so a run restricted to the survivors of a faulty run
  // regenerates byte-identical submissions for them.
  const core::SuKeyBundle keys = ttp.su_keys();
  Rng su_master = rng.fork();
  struct SuEndpoint {
    Bytes location;
    Bytes bid;
  };
  std::vector<SuEndpoint> endpoints(n);
  for (std::size_t u = 0; u < n; ++u) {
    Rng su_rng = su_master.fork();
    if (!participating[u]) continue;
    const SuClient client(u, config, keys);
    endpoints[u].location = client.location_envelope(locations[u], su_rng);
    endpoints[u].bid = client.bid_envelope(bids[u], su_rng);
    bus.send(Address::su(u), auctioneer, endpoints[u].location);
    bus.send(Address::su(u), auctioneer, endpoints[u].bid);
  }

  // --- Auctioneer: drain / nack / backoff until complete or give up ------
  AuctioneerSession session(config, n);
  const auto drain_auctioneer = [&] {
    while (auto message = bus.receive(auctioneer)) {
      switch (session.try_ingest(*message)) {
        case AuctioneerSession::IngestResult::kAccepted:
          break;
        case AuctioneerSession::IngestResult::kDuplicateRedelivery:
          ++report.duplicate_redeliveries;
          break;
        case AuctioneerSession::IngestResult::kRejected:
        case AuctioneerSession::IngestResult::kEquivocation:
          ++report.rejected_messages;
          break;
      }
    }
  };

  obs::Span admission_span(m, "wire.admission", &round_span);
  for (std::size_t wave = 0;; ++wave) {
    drain_auctioneer();
    std::vector<std::size_t> missing;
    for (const std::size_t u : session.missing_users()) {
      if (participating[u]) missing.push_back(u);
    }
    if (missing.empty() || wave >= hardened.max_retries) break;
    report.retry_waves = wave + 1;

    // Nack exactly what is missing; resends of already-accepted halves
    // dedupe harmlessly at the auctioneer.
    for (const std::size_t u : missing) {
      Envelope nack;
      nack.type = MessageType::kRetransmitRequest;
      RetransmitRequest request;
      request.mask = static_cast<std::uint8_t>(
          (session.has_location(u) ? 0 : RetransmitRequest::kLocation) |
          (session.has_bid(u) ? 0 : RetransmitRequest::kBid));
      nack.payload = request.serialize();
      if (m != nullptr) m->counter("wire.nacks").inc();
      bus.send(auctioneer, Address::su(u), nack.serialize());
    }
    // Exponential backoff: waiting also flushes delay-faulted messages.
    bus.advance(hardened.backoff_ticks(wave));

    // SU endpoints answer nacks with their cached envelope bytes.  A
    // damaged nack still triggers a full resend — over-answering is safe,
    // under-answering would stall the round.
    for (std::size_t u = 0; u < n; ++u) {
      if (!participating[u]) continue;
      while (auto message = bus.receive(Address::su(u))) {
        std::uint8_t mask = RetransmitRequest::kLocation | RetransmitRequest::kBid;
        try {
          const Envelope e = Envelope::deserialize(*message);
          if (e.type != MessageType::kRetransmitRequest) continue;
          mask = RetransmitRequest::deserialize(e.payload).mask;
        } catch (const LppaError&) {
        }
        if (mask & RetransmitRequest::kLocation) {
          bus.send(Address::su(u), auctioneer, endpoints[u].location);
        }
        if (mask & RetransmitRequest::kBid) {
          bus.send(Address::su(u), auctioneer, endpoints[u].bid);
        }
      }
    }
    bus.advance(hardened.backoff_ticks(wave));
  }
  admission_span.end();

  {
    obs::Span allocation_span(m, "wire.allocation", &round_span);
    session.finalize_participants(report);
    session.run_allocation(rng);
  }

  // --- Charging: resend the full query set until every award is priced ---
  // The TTP itself is trusted but the link to it is not: queries and
  // results can be dropped or corrupted, so the batches are re-sent
  // wholesale (the TTP is stateless per batch and results are idempotent)
  // until charging_complete() or the attempt budget runs out.
  TtpService service(ttp);
  obs::Span charging_span(m, "wire.charging", &round_span);
  const std::vector<Bytes> query_envelopes = session.charge_query_envelopes();
  while (!session.charging_complete()) {
    LPPA_PROTOCOL_CHECK(
        report.charge_attempts < hardened.max_charge_attempts,
        "TTP unreachable: charging incomplete after retry budget");
    ++report.charge_attempts;
    for (const auto& query_envelope : query_envelopes) {
      bus.send(auctioneer, ttp_addr, query_envelope);
    }
    bus.advance(hardened.backoff_base_ticks);
    while (auto message = bus.receive(ttp_addr)) {
      try {
        bus.send(ttp_addr, auctioneer, service.handle(*message));
      } catch (const LppaError&) {
        ++report.rejected_messages;  // damaged query; the resend covers it
      }
    }
    bus.advance(hardened.backoff_base_ticks);
    while (auto message = bus.receive(auctioneer)) {
      try {
        session.ingest_charge_results(*message);
      } catch (const LppaError&) {
        ++report.rejected_messages;  // damaged result batch
      }
    }
  }
  charging_span.end();

  // --- Publication --------------------------------------------------------
  const Bytes announcement = session.winner_announcement();
  const Envelope e = Envelope::deserialize(announcement);
  result.awards = WinnerAnnouncement::deserialize(e.payload).awards;
  report.completed = true;
  if (const FaultInjector* injector = bus.fault_injector()) {
    report.faults = injector->counters();
  }
  if (m != nullptr) {
    m->counter("wire.completed_rounds").inc();
    m->counter("wire.retry_waves").inc(report.retry_waves);
    m->counter("wire.charge_attempts").inc(report.charge_attempts);
    m->counter("wire.rejected_messages").inc(report.rejected_messages);
    m->counter("wire.duplicate_redeliveries")
        .inc(report.duplicate_redeliveries);
  }
  return result;
}

namespace {

/// Rebuilds a crashed auctioneer's state from the journal.  Post-
/// allocation crashes restore the snapshot in the last kAllocated commit
/// and re-apply later charge batches; earlier crashes replay the record
/// stream through the same ingest path the bytes originally took.
/// Returns the wave the retry schedule should resume at.  The journal is
/// NOT attached to the session yet — replay must not re-journal what is
/// already durable.
std::size_t replay_journal(const RoundJournal& journal,
                           AuctioneerSession& session, std::size_t num_users,
                           RoundReport& report) {
  const std::vector<JournalRecord> records = RoundJournal::read(journal.data());
  if (records.empty()) return 0;
  LPPA_PROTOCOL_CHECK(records.front().type == JournalRecordType::kRoundStart &&
                          records.front().round_start_users() == num_users,
                      "journal does not open this round");

  std::size_t last_alloc = records.size();
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].type == JournalRecordType::kAllocated) last_alloc = i;
  }

  if (last_alloc != records.size()) {
    session.restore_from(records[last_alloc].payload);
    ++report.replayed_records;
    for (std::size_t i = last_alloc + 1; i < records.size(); ++i) {
      const JournalRecord& rec = records[i];
      LPPA_PROTOCOL_CHECK(rec.type == JournalRecordType::kChargeCommit,
                          "unexpected journal record after allocation commit");
      session.ingest_charge_results(rec.payload);
      ++report.replayed_records;
    }
    session.finalize_participants(report);  // rebuild the exclusion section
    return 0;  // admission is long closed; the wave counter is moot
  }

  std::size_t resume_wave = 0;
  for (const JournalRecord& rec : records) {
    switch (rec.type) {
      case JournalRecordType::kRoundStart:
        break;
      case JournalRecordType::kAccepted: {
        std::string error;
        const auto outcome = session.try_ingest(rec.payload, &error);
        LPPA_PROTOCOL_CHECK(
            outcome == AuctioneerSession::IngestResult::kAccepted,
            "journaled submission failed re-ingest: " + error);
        break;
      }
      case JournalRecordType::kStrike: {
        const auto note = rec.user_note();
        session.replay_strike(note.user, note.detail);
        break;
      }
      case JournalRecordType::kEquivocation: {
        const auto note = rec.user_note();
        session.replay_equivocation(note.user, note.detail);
        break;
      }
      case JournalRecordType::kNackSent:
        resume_wave = std::max(resume_wave,
                               static_cast<std::size_t>(rec.nack().wave) + 1);
        break;
      case JournalRecordType::kFinalized:
        session.finalize_participants(report);
        break;
      case JournalRecordType::kChurnDeparture:
        session.churn_depart(rec.churn_user());
        break;
      case JournalRecordType::kChurnArrival:
        session.churn_return(rec.churn_user());
        break;
      default:
        LPPA_PROTOCOL_CHECK(false,
                            "journal record out of phase before allocation");
    }
    ++report.replayed_records;
  }
  return resume_wave;
}

}  // namespace

std::size_t replay_session_journal(const RoundJournal& journal,
                                   AuctioneerSession& session,
                                   std::size_t num_users, RoundReport& report) {
  return replay_journal(journal, session, num_users, report);
}

RecoverableWireResult run_recoverable_wire_auction(
    const core::LppaConfig& config, core::TrustedThirdParty& ttp,
    const std::vector<auction::SuLocation>& locations,
    const std::vector<auction::BidVector>& bids, MessageBus& bus,
    std::uint64_t seed, const RecoverableSessionConfig& recov,
    CrashInjector* crashes, const std::vector<std::size_t>& exclude) {
  LPPA_REQUIRE(locations.size() == bids.size(),
               "one location per bid vector required");
  LPPA_REQUIRE(!bids.empty(), "auction requires at least one bidder");
  LPPA_REQUIRE(recov.min_quorum >= 1, "a round needs a quorum of at least 1");

  const std::size_t n = bids.size();
  const HardenedSessionConfig& hardened = recov.hardened;
  const Address auctioneer = Address::auctioneer();
  const Address ttp_addr = Address::ttp();

  std::vector<bool> participating(n, true);
  for (const std::size_t u : exclude) {
    LPPA_REQUIRE(u < n, "excluded SU index out of range");
    participating[u] = false;
  }

  RecoverableWireResult result;
  RoundReport& report = result.report;
  report.num_users = n;
  report.deadline_ticks = recov.deadline_ticks;

  obs::MetricsRegistry* const m = config.metrics;
  obs::Span round_span(m, "wire.round");
  if (m != nullptr) m->counter("wire.rounds").inc();

  // --- SU side: mask and transmit exactly once ---------------------------
  // The SU endpoints survive auctioneer crashes; their envelopes are
  // built and sent once, before any attempt, and only ever leave the
  // endpoint again as nack-answering retransmissions of the SAME bytes.
  // Same RNG discipline as the hardened session, so a crash-free run is
  // byte-equivalent to run_hardened_wire_auction over Rng(seed).
  const core::SuKeyBundle keys = ttp.su_keys();
  struct SuEndpoint {
    Bytes location;
    Bytes bid;
  };
  std::vector<SuEndpoint> endpoints(n);
  {
    Rng boot(seed);
    Rng su_master = boot.fork();
    for (std::size_t u = 0; u < n; ++u) {
      Rng su_rng = su_master.fork();
      if (!participating[u]) continue;
      const SuClient client(u, config, keys);
      endpoints[u].location = client.location_envelope(locations[u], su_rng);
      endpoints[u].bid = client.bid_envelope(bids[u], su_rng);
      bus.send(Address::su(u), auctioneer, endpoints[u].location);
      bus.send(Address::su(u), auctioneer, endpoints[u].bid);
    }
  }

  // --- Durable state: what a crash cannot erase --------------------------
  RoundJournal journal;
  TtpService service(ttp);
  std::size_t ticks = 0;
  const auto advance = [&](std::size_t t) {
    bus.advance(t);
    ticks += t;
  };
  const auto deadline_expired = [&] {
    return recov.deadline_ticks > 0 && ticks >= recov.deadline_ticks;
  };

  for (;;) {
    try {
      obs::Span attempt_span(m, "wire.attempt", &round_span);
      // Each attempt reconstructs the full generator from the seed (the
      // SU-side fork is spent above and discarded here) so the
      // allocation stream is identical no matter how many attempts died.
      Rng master(seed);
      (void)master.fork();

      AuctioneerSession session(config, n);
      const std::size_t resume_wave =
          replay_journal(journal, session, n, report);
      session.attach_journal(&journal);
      if (journal.empty()) journal.append_round_start(n);

      const auto drain_auctioneer = [&] {
        while (auto message = bus.receive(auctioneer)) {
          switch (session.try_ingest(*message)) {
            case AuctioneerSession::IngestResult::kAccepted:
              if (crashes != nullptr) {
                crashes->checkpoint(CrashPoint::kAfterIngest);
              }
              break;
            case AuctioneerSession::IngestResult::kDuplicateRedelivery:
              ++report.duplicate_redeliveries;
              break;
            case AuctioneerSession::IngestResult::kRejected:
            case AuctioneerSession::IngestResult::kEquivocation:
              ++report.rejected_messages;
              break;
          }
        }
      };

      if (!session.allocation_done()) {
        if (!session.admission_closed()) {
          for (std::size_t wave = resume_wave;; ++wave) {
            drain_auctioneer();
            std::vector<std::size_t> missing;
            for (const std::size_t u : session.missing_users()) {
              if (participating[u]) missing.push_back(u);
            }
            if (missing.empty()) break;
            if (deadline_expired()) {
              // Deadline gone (typically eaten by recoveries): commit
              // with the quorum of journaled submissions instead of
              // waiting out the remaining waves.
              report.degraded = true;
              break;
            }
            if (wave >= hardened.max_retries) break;
            report.retry_waves = std::max(report.retry_waves, wave + 1);

            for (const std::size_t u : missing) {
              Envelope nack;
              nack.type = MessageType::kRetransmitRequest;
              RetransmitRequest request;
              request.mask = static_cast<std::uint8_t>(
                  (session.has_location(u) ? 0 : RetransmitRequest::kLocation) |
                  (session.has_bid(u) ? 0 : RetransmitRequest::kBid));
              nack.payload = request.serialize();
              journal.append_nack(u, request.mask, wave);
              if (m != nullptr) m->counter("wire.nacks").inc();
              bus.send(auctioneer, Address::su(u), nack.serialize());
            }
            advance(hardened.backoff_ticks(wave));

            for (std::size_t u = 0; u < n; ++u) {
              if (!participating[u]) continue;
              while (auto message = bus.receive(Address::su(u))) {
                std::uint8_t mask =
                    RetransmitRequest::kLocation | RetransmitRequest::kBid;
                try {
                  const Envelope e = Envelope::deserialize(*message);
                  if (e.type != MessageType::kRetransmitRequest) continue;
                  mask = RetransmitRequest::deserialize(e.payload).mask;
                } catch (const LppaError&) {
                }
                if (mask & RetransmitRequest::kLocation) {
                  bus.send(Address::su(u), auctioneer, endpoints[u].location);
                }
                if (mask & RetransmitRequest::kBid) {
                  bus.send(Address::su(u), auctioneer, endpoints[u].bid);
                }
              }
            }
            advance(hardened.backoff_ticks(wave));
          }
        } else {
          // Admission was already committed before the crash; whatever
          // is still on the bus can only be a redelivery.
          drain_auctioneer();
        }

        session.finalize_participants(report);
        LPPA_PROTOCOL_CHECK(
            session.participants().size() >= recov.min_quorum,
            "round below quorum: " + std::to_string(recov.min_quorum) +
                " participants required");
        if (crashes != nullptr) crashes->checkpoint(CrashPoint::kAfterFinalize);

        session.run_allocation(master);
        if (crashes != nullptr) {
          crashes->checkpoint(CrashPoint::kAfterAllocation);
        }
      }

      // --- Charging: identical discipline to the hardened session ------
      const std::vector<Bytes> query_envelopes =
          session.charge_query_envelopes();
      while (!session.charging_complete()) {
        LPPA_PROTOCOL_CHECK(
            report.charge_attempts < hardened.max_charge_attempts,
            "TTP unreachable: charging incomplete after retry budget");
        ++report.charge_attempts;
        for (const auto& query_envelope : query_envelopes) {
          bus.send(auctioneer, ttp_addr, query_envelope);
        }
        advance(hardened.backoff_base_ticks);
        while (auto message = bus.receive(ttp_addr)) {
          try {
            bus.send(ttp_addr, auctioneer, service.handle(*message));
          } catch (const LppaError&) {
            ++report.rejected_messages;
          }
        }
        advance(hardened.backoff_base_ticks);
        while (auto message = bus.receive(auctioneer)) {
          try {
            session.ingest_charge_results(*message);
            // CrashSignal is not an LppaError, so a crash here tears
            // through this handler like a real process death.
            if (crashes != nullptr) {
              crashes->checkpoint(CrashPoint::kAfterChargeCommit);
            }
          } catch (const LppaError&) {
            ++report.rejected_messages;
          }
        }
      }

      if (crashes != nullptr) crashes->checkpoint(CrashPoint::kBeforePublish);
      journal.append(JournalRecordType::kCommitted);

      const Bytes announcement = session.winner_announcement();
      const Envelope e = Envelope::deserialize(announcement);
      result.awards = WinnerAnnouncement::deserialize(e.payload).awards;
      result.announcement = announcement;
      result.journal = journal.data();
      report.completed = true;
      report.journal_records = journal.num_records();
      report.journal_bytes = journal.data().size();
      report.ticks_used = ticks;
      if (const FaultInjector* injector = bus.fault_injector()) {
        report.faults = injector->counters();
      }
      if (m != nullptr) {
        m->counter("wire.completed_rounds").inc();
        m->counter("wire.retry_waves").inc(report.retry_waves);
        m->counter("wire.charge_attempts").inc(report.charge_attempts);
        m->counter("wire.rejected_messages").inc(report.rejected_messages);
        m->counter("wire.duplicate_redeliveries")
            .inc(report.duplicate_redeliveries);
        m->counter("wire.replayed_records").inc(report.replayed_records);
        if (report.degraded) m->counter("wire.degraded_rounds").inc();
        m->gauge("wire.journal_bytes")
            .set(static_cast<double>(report.journal_bytes));
      }
      return result;
    } catch (const CrashSignal&) {
      // The auctioneer process died.  Its in-memory session is gone; the
      // journal and the bus (the outside world) survive.  Restarting
      // costs ticks, which is how crashes erode the deadline.
      ++report.crash_recoveries;
      if (m != nullptr) m->counter("wire.crash_recoveries").inc();
      ticks += recov.recovery_cost_ticks;
    }
  }
}

}  // namespace lppa::proto
