#include "proto/session.h"

namespace lppa::proto {

WireAuctionResult run_wire_auction(
    const core::LppaConfig& config, core::TrustedThirdParty& ttp,
    const std::vector<auction::SuLocation>& locations,
    const std::vector<auction::BidVector>& bids, MessageBus& bus, Rng& rng) {
  LPPA_REQUIRE(locations.size() == bids.size(),
               "one location per bid vector required");
  LPPA_REQUIRE(!bids.empty(), "auction requires at least one bidder");

  const std::size_t n = bids.size();
  const Address auctioneer = Address::auctioneer();
  const Address ttp_addr = Address::ttp();

  // --- SU side: mask and transmit (same RNG discipline as LppaAuction) ---
  const core::SuKeyBundle keys = ttp.su_keys();
  Rng su_master = rng.fork();
  for (std::size_t u = 0; u < n; ++u) {
    Rng su_rng = su_master.fork();
    const SuClient client(u, config, keys);
    bus.send(Address::su(u), auctioneer,
             client.location_envelope(locations[u], su_rng));
    bus.send(Address::su(u), auctioneer,
             client.bid_envelope(bids[u], su_rng));
  }

  // --- Auctioneer: drain the queue, allocate, query the TTP --------------
  AuctioneerSession session(config, n);
  while (auto message = bus.receive(auctioneer)) {
    session.ingest(*message);
  }
  LPPA_PROTOCOL_CHECK(session.ready(), "missing submissions on the bus");
  session.run_allocation(rng);

  WireAuctionResult result;
  TtpService service(ttp);
  for (const auto& query_envelope : session.charge_query_envelopes()) {
    bus.send(auctioneer, ttp_addr, query_envelope);
    const auto delivered = bus.receive(ttp_addr);
    LPPA_PROTOCOL_CHECK(delivered.has_value(), "charge query lost on the bus");
    bus.send(ttp_addr, auctioneer, service.handle(*delivered));
    const auto response = bus.receive(auctioneer);
    LPPA_PROTOCOL_CHECK(response.has_value(), "charge result lost on the bus");
    session.ingest_charge_results(*response);
    ++result.ttp_batches;
  }

  // --- Publication ---------------------------------------------------------
  const Bytes announcement = session.winner_announcement();
  const Envelope e = Envelope::deserialize(announcement);
  result.awards = WinnerAnnouncement::deserialize(e.payload).awards;

  result.submission_traffic = bus.total_into(Address::Kind::kAuctioneer);
  // Subtract the TTP->auctioneer leg to isolate SU submissions.
  const LinkStats ttp_to_auctioneer = bus.link(ttp_addr, auctioneer);
  result.submission_traffic.messages -= ttp_to_auctioneer.messages;
  result.submission_traffic.bytes -= ttp_to_auctioneer.bytes;

  const LinkStats to_ttp = bus.link(auctioneer, ttp_addr);
  result.charging_traffic.messages =
      to_ttp.messages + ttp_to_auctioneer.messages;
  result.charging_traffic.bytes = to_ttp.bytes + ttp_to_auctioneer.bytes;
  return result;
}

}  // namespace lppa::proto
