// RoundJournal: the auctioneer's write-ahead log for one auction round.
//
// A crash of the auctioneer mid-round must not force the SUs to resubmit
// their PPBS envelopes — every resubmission widens the window for the
// BCM/BPM linkage attacks the protocol defends against.  The journal
// therefore records every state transition of an AuctioneerSession as a
// length-prefixed, checksummed record *before* the round advances past
// it: accepted submission envelopes (full wire bytes — they are what a
// recovering session re-ingests), validation strikes and equivocation
// verdicts (they decide exclusion reasons), retransmit nacks (they pin
// the wave counter), phase commits (the allocation commit carries a full
// AuctioneerSession::snapshot()), and accepted charge-result batches.
// Replaying the journal into a fresh session reproduces the crashed
// session's state byte-for-byte; proto::run_recoverable_wire_auction
// (session.h) drives that recovery loop.
//
// The record framing deliberately mirrors the Envelope discipline: any
// truncation or byte flip of the log surfaces as LppaError(kProtocol) at
// read time — never as undefined behaviour or a silently shortened
// round — which the journal corpus tests exercise bit by bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace lppa::proto {

/// One kind of journaled state transition.
enum class JournalRecordType : std::uint8_t {
  kRoundStart = 1,      ///< payload: u64 num_users
  kAccepted = 2,        ///< payload: accepted submission envelope bytes
  kStrike = 3,          ///< payload: u64 user + error string
  kEquivocation = 4,    ///< payload: u64 user + error string
  kNackSent = 5,        ///< payload: u64 user, u8 mask, u64 wave
  kFinalized = 6,       ///< phase commit: admission closed (empty payload)
  kAllocated = 7,       ///< phase commit: payload = session snapshot
  kChargeCommit = 8,    ///< payload: accepted charge-result envelope bytes
  kCommitted = 9,       ///< phase commit: round published (empty payload)
  kChurnDeparture = 10, ///< payload: u64 user — SU left; its slot cleared
  kChurnArrival = 11,   ///< payload: u64 user — SU (re)joined; slot open
};

struct JournalRecord {
  JournalRecordType type = JournalRecordType::kRoundStart;
  Bytes payload;

  /// Decoded payload of a kStrike / kEquivocation record.
  struct UserNote {
    std::uint64_t user = 0;
    std::string detail;
  };
  /// Decoded payload of a kNackSent record.
  struct Nack {
    std::uint64_t user = 0;
    std::uint8_t mask = 0;
    std::uint64_t wave = 0;
  };

  UserNote user_note() const;  ///< requires kStrike / kEquivocation
  Nack nack() const;           ///< requires kNackSent
  std::uint64_t round_start_users() const;  ///< requires kRoundStart
  std::uint64_t churn_user() const;  ///< requires kChurnDeparture / kChurnArrival
};

/// Append-only write-ahead log.  Each record is framed as
///   u32 body_length | body (u8 type + payload) | u32 checksum
/// where the checksum is the first four bytes of SHA-256 over the body —
/// the same detectability argument as the Envelope frame checksum: a
/// recovering auctioneer must never rebuild state from a damaged log.
class RoundJournal {
 public:
  void append(JournalRecordType type, std::span<const std::uint8_t> payload = {});

  // Typed appenders for the structured payloads.
  void append_round_start(std::uint64_t num_users);
  void append_user_note(JournalRecordType type, std::uint64_t user,
                        std::string_view detail);
  void append_nack(std::uint64_t user, std::uint8_t mask, std::uint64_t wave);
  void append_churn(JournalRecordType type, std::uint64_t user);

  /// The durable bytes (what would survive the crash on disk).
  const Bytes& data() const noexcept { return log_; }
  std::size_t num_records() const noexcept { return records_; }
  bool empty() const noexcept { return records_ == 0; }

  /// Decodes a journal byte image back into records.  Throws
  /// LppaError(kProtocol) on any truncated, corrupted, or mistyped
  /// record; a valid prefix before the damage is NOT returned — recovery
  /// from a damaged log must fail loudly, not quietly shorten the round.
  static std::vector<JournalRecord> read(std::span<const std::uint8_t> wire);

 private:
  Bytes log_;
  std::size_t records_ = 0;
};

}  // namespace lppa::proto
