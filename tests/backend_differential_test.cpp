// Backend differential suite (ISSUE S3, ctest label `backend`).
//
// Pins the three contracts of the BidBackend refactor:
//   1. The HMAC prefix backend is the seed code path BYTE-FOR-BYTE: run
//      digests (bid wire + awards) and session digests (snapshot +
//      announcement) equal goldens captured on the pre-backend tree.
//   2. The Paillier backend satisfies every backend-agnostic invariant —
//      conflict-free allocation, charge <= true bid, deterministic
//      tie-breaks invariant across shard/thread counts and argmax
//      strategies, snapshot round-trips — without being award-identical
//      to HMAC (the two backends draw per-cell randomness differently).
//   3. Snapshot images are backend-tagged: restoring across backends is
//      a typed kProtocol rejection in both directions, at the table
//      layer and through the wire session.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/lppa_auction.h"
#include "core/submission_validator.h"
#include "crypto/sha256.h"
#include "proto/parties.h"
#include "proto/round_report.h"

namespace lppa {
namespace {

struct World {
  std::vector<auction::SuLocation> locations;
  std::vector<auction::BidVector> bids;
};

World make_world(std::size_t n, std::size_t k, std::uint64_t seed) {
  Rng rng(seed);
  World w;
  for (std::size_t i = 0; i < n; ++i) {
    w.locations.push_back({rng.below(5000), rng.below(5000)});
    auction::BidVector bv(k);
    for (auto& b : bv) b = rng.below(16);
    w.bids.push_back(bv);
  }
  return w;
}

core::LppaConfig make_config(
    std::size_t k,
    crypto::BidBackendId backend = crypto::BidBackendId::kHmacPrefix) {
  core::LppaConfig cfg;
  cfg.num_channels = k;
  cfg.lambda = 100;
  cfg.coord_width = 14;
  cfg.bid = core::PpbsBidConfig::advanced(15, 3, 4,
                                          core::ZeroDisguisePolicy::none(15));
  cfg.bid.backend = backend;
  cfg.ttp_batch_size = 4;
  return cfg;
}

constexpr std::uint64_t kTtpSeed = 77;
constexpr std::uint64_t kRoundSeed = 5;

/// Digest of one engine round: every masked bid's wire image followed by
/// the award list.  Matches the golden-capture recipe exactly.
std::string run_digest(const core::LppaOutcome& out) {
  crypto::Sha256 h;
  for (const auto& b : out.view.bids) {
    const Bytes wire = b.serialize();
    h.update(std::span<const std::uint8_t>(wire));
  }
  for (const auto& a : out.outcome.awards) {
    const std::string s = "u" + std::to_string(a.user) + "c" +
                          std::to_string(a.channel) + "p" +
                          std::to_string(a.charge) + "v" +
                          std::to_string(a.valid ? 1 : 0) + ";";
    h.update(s);
  }
  return h.finalize().hex();
}

core::LppaOutcome run_engine(const World& w, core::ChargingRule rule,
                             std::size_t shards, std::size_t threads,
                             crypto::BidBackendId backend) {
  core::LppaConfig cfg = make_config(3, backend);
  cfg.charging_rule = rule;
  cfg.num_shards = shards;
  cfg.num_threads = threads;
  core::LppaAuction engine(cfg, kTtpSeed);
  Rng rng(kRoundSeed);
  return engine.run(w.locations, w.bids, rng);
}

/// Drives a full wire session (ingest -> finalize -> allocate -> charge)
/// and returns {snapshot, announcement} bytes.  Same recipe as the
/// golden capture, parameterised by backend.
struct SessionRun {
  Bytes snapshot;
  Bytes announcement;
};

SessionRun run_session(const World& w, core::ChargingRule rule,
                       std::size_t shards, crypto::BidBackendId backend) {
  core::LppaConfig cfg = make_config(3, backend);
  cfg.charging_rule = rule;
  cfg.num_shards = shards;
  core::TrustedThirdParty ttp(cfg.bid, kTtpSeed, rule);
  cfg.backend = &ttp.bid_backend();
  proto::AuctioneerSession session(cfg, w.locations.size());
  Rng boot(kRoundSeed);
  Rng su_master = boot.fork();
  for (std::size_t i = 0; i < w.locations.size(); ++i) {
    Rng r = su_master.fork();
    const proto::SuClient client(i, cfg, ttp.su_keys());
    session.ingest(client.location_envelope(w.locations[i], r));
    session.ingest(client.bid_envelope(w.bids[i], r));
  }
  proto::RoundReport report;
  session.finalize_participants(report);
  Rng master(kRoundSeed);
  (void)master.fork();
  session.run_allocation(master);
  proto::TtpService svc(ttp);
  for (const Bytes& q : session.charge_query_envelopes()) {
    session.ingest_charge_results(svc.handle(q));
  }
  return {session.snapshot(), session.winner_announcement()};
}

std::string hex(const Bytes& b) {
  return crypto::Sha256::hash(std::span<const std::uint8_t>(b)).hex();
}

// ---------------------------------------------------------------------------
// 1. HMAC backend == seed, byte for byte.
//
// Goldens captured on the pre-refactor tree (commit "Add async socket
// transport...") with tools equivalent to this file's helpers: world
// make_world(10, 3, 21), TTP seed 77, round seed 5.
// ---------------------------------------------------------------------------

TEST(HmacGolden, RunDigestsMatchSeedCapture) {
  const World w = make_world(10, 3, 21);
  const std::map<core::ChargingRule, std::string> golden = {
      {core::ChargingRule::kFirstPrice,
       "51ff06127a173382759954b70aeff028cfe3d1621261edbd1e50fa9b48fbe58c"},
      {core::ChargingRule::kSecondPrice,
       "552de03b518bfd0d3f009f30195469a7fc7bdce9c81d58b3db7565ffe5d215c9"},
  };
  for (const auto& [rule, digest] : golden) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      const auto out = run_engine(w, rule, shards, /*threads=*/1,
                                  crypto::BidBackendId::kHmacPrefix);
      EXPECT_EQ(run_digest(out), digest)
          << "rule=" << static_cast<int>(rule) << " shards=" << shards;
    }
  }
}

TEST(HmacGolden, SessionDigestsMatchSeedCapture) {
  const World w = make_world(10, 3, 21);
  struct Golden {
    std::string snap;
    std::string ann;
  };
  const std::map<core::ChargingRule, Golden> golden = {
      {core::ChargingRule::kFirstPrice,
       {"da9596ff33bc46a546663e9bb8a0496ff3d5401c693d65271253a37dff2a30a9",
        "bf4c21eb0f693d3830718c2c0652e42e999daad3dbc83dca2ec3e97f05e6740a"}},
      {core::ChargingRule::kSecondPrice,
       {"5a80f5a4f4db6641f59b7168472cfa444cf8422f32ace6b888365ca7e972c587",
        "d320173bce64bb7ee79b7ab3065e520891c90544508c8762b149838b5f4817e0"}},
  };
  for (const auto& [rule, g] : golden) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      const SessionRun run = run_session(
          w, rule, shards, crypto::BidBackendId::kHmacPrefix);
      EXPECT_EQ(hex(run.snapshot), g.snap)
          << "rule=" << static_cast<int>(rule) << " shards=" << shards;
      EXPECT_EQ(hex(run.announcement), g.ann)
          << "rule=" << static_cast<int>(rule) << " shards=" << shards;
    }
  }
}

// ---------------------------------------------------------------------------
// 2. Shared invariants — both backends, both charging rules.
// ---------------------------------------------------------------------------

class BackendInvariants
    : public ::testing::TestWithParam<
          std::tuple<crypto::BidBackendId, core::ChargingRule>> {};

TEST_P(BackendInvariants, AllocationIsConflictFreeAndChargesAreBounded) {
  const auto [backend, rule] = GetParam();
  const World w = make_world(10, 3, 21);
  const auto out = run_engine(w, rule, /*shards=*/1, /*threads=*/1, backend);

  EXPECT_EQ(out.manipulations_detected, 0u);
  std::set<std::size_t> winners;
  for (const auto& a : out.outcome.awards) {
    // Greedy allocation removes a winner's whole row: one channel per SU.
    EXPECT_TRUE(winners.insert(a.user).second) << "user " << a.user;
    if (!a.valid) continue;
    const auction::Money true_bid = w.bids[a.user][a.channel];
    EXPECT_GT(true_bid, 0u);
    EXPECT_LE(a.charge, true_bid)
        << "user " << a.user << " channel " << a.channel;
    if (rule == core::ChargingRule::kFirstPrice) {
      EXPECT_EQ(a.charge, true_bid);
    }
  }
  // No two same-channel winners may interfere (paper constraint; the
  // conflict graph in the view is exactly what the allocator consulted).
  for (std::size_t i = 0; i < out.outcome.awards.size(); ++i) {
    for (std::size_t j = i + 1; j < out.outcome.awards.size(); ++j) {
      const auto& a = out.outcome.awards[i];
      const auto& b = out.outcome.awards[j];
      if (a.channel != b.channel) continue;
      EXPECT_FALSE(out.view.conflicts.conflicts(a.user, b.user))
          << "users " << a.user << "/" << b.user << " share channel "
          << a.channel;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Backends, BackendInvariants,
    ::testing::Combine(::testing::Values(crypto::BidBackendId::kHmacPrefix,
                                         crypto::BidBackendId::kPaillier),
                       ::testing::Values(core::ChargingRule::kFirstPrice,
                                         core::ChargingRule::kSecondPrice)));

TEST(PaillierEngine, DeterministicAcrossShardsThreadsAndReruns) {
  const World w = make_world(10, 3, 21);
  for (const auto rule :
       {core::ChargingRule::kFirstPrice, core::ChargingRule::kSecondPrice}) {
    std::optional<std::string> reference;
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
        const auto out = run_engine(w, rule, shards, threads,
                                    crypto::BidBackendId::kPaillier);
        const std::string digest = run_digest(out);
        if (!reference.has_value()) {
          reference = digest;
        } else {
          EXPECT_EQ(digest, *reference)
              << "rule=" << static_cast<int>(rule) << " shards=" << shards
              << " threads=" << threads;
        }
      }
    }
    // A fresh engine over the same seeds reproduces the round exactly
    // (keygen, blinding and encryption randomness all derive from them).
    const auto rerun = run_engine(w, rule, /*shards=*/1, /*threads=*/1,
                                  crypto::BidBackendId::kPaillier);
    EXPECT_EQ(run_digest(rerun), *reference);
  }
}

// ---------------------------------------------------------------------------
// 3. Table-level differential: sorted vs tournament argmax on Paillier
//    submissions under random removal / insert_user interleavings, with
//    a serialize -> deserialize hop mid-stream.
// ---------------------------------------------------------------------------

TEST(PaillierTable, StrategiesAgreeUnderChurnInterleavings) {
  constexpr std::size_t kUsers = 8;
  constexpr std::size_t kChannels = 3;
  core::PpbsBidConfig bid = core::PpbsBidConfig::advanced(
      15, 3, 4, core::ZeroDisguisePolicy::none(15));
  bid.backend = crypto::BidBackendId::kPaillier;
  core::TrustedThirdParty ttp(bid, kTtpSeed);
  const crypto::BidBackend* backend = &ttp.bid_backend();
  const auto keys = ttp.su_keys();
  ASSERT_TRUE(keys.paillier.has_value());
  const core::BidSubmitter submitter(ttp.config(), keys.gb_master, keys.gc,
                                     keys.paillier);

  Rng rng(1234);
  std::vector<core::BidSubmission> subs;
  for (std::size_t u = 0; u < kUsers; ++u) {
    auction::BidVector bv(kChannels);
    for (auto& b : bv) b = rng.below(16);
    subs.push_back(submitter.submit(bv, rng));
  }

  core::EncryptedBidTable sorted(subs, kChannels,
                                 core::ArgmaxStrategy::kSortedColumns,
                                 /*sort_threads=*/1, backend);
  core::EncryptedBidTable scan(subs, kChannels,
                               core::ArgmaxStrategy::kTournamentScan,
                               /*sort_threads=*/1, backend);

  const auto expect_agreement = [&](const char* when) {
    for (std::size_t r = 0; r < kChannels; ++r) {
      EXPECT_EQ(sorted.argmax_in_column(r), scan.argmax_in_column(r))
          << when << " channel " << r;
    }
  };

  std::vector<bool> user_gone(kUsers, false);
  expect_agreement("initial");
  for (int step = 0; step < 60; ++step) {
    const std::size_t r = rng.below(kChannels);
    const auto top = sorted.argmax_in_column(r);
    ASSERT_EQ(top, scan.argmax_in_column(r)) << "step " << step;
    const std::uint64_t op = rng.below(10);
    if (op < 5 && top.has_value()) {
      sorted.remove(*top, r);
      scan.remove(*top, r);
    } else if (op < 8) {
      const std::size_t u = rng.below(kUsers);
      if (!user_gone[u]) {
        sorted.remove_user(u);
        scan.remove_user(u);
        user_gone[u] = true;
      }
    } else {
      // Revive some fully tombstoned slot (churn return with the same
      // masked submission behind it).
      for (std::size_t u = 0; u < kUsers; ++u) {
        if (user_gone[u]) {
          sorted.insert_user(u);
          scan.insert_user(u);
          user_gone[u] = false;
          break;
        }
      }
    }
    expect_agreement("after op");

    if (step == 30) {
      // Mid-stream snapshot hop: the restored table must answer argmax
      // exactly like the live ones, on either strategy.
      const Bytes wire = sorted.serialize();
      const auto restored = core::EncryptedBidTable::deserialize(
          wire, core::ArgmaxStrategy::kTournamentScan, /*sort_threads=*/1,
          backend);
      for (std::size_t c = 0; c < kChannels; ++c) {
        EXPECT_EQ(restored.argmax_in_column(c), sorted.argmax_in_column(c))
            << "restored channel " << c;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 4. Snapshot backend tagging: cross-backend restores are typed rejects.
// ---------------------------------------------------------------------------

std::vector<core::BidSubmission> make_submissions(
    core::TrustedThirdParty& ttp, std::size_t users, std::size_t channels,
    std::uint64_t seed) {
  const auto keys = ttp.su_keys();
  const core::BidSubmitter submitter(ttp.config(), keys.gb_master, keys.gc,
                                     keys.paillier);
  Rng rng(seed);
  std::vector<core::BidSubmission> subs;
  for (std::size_t u = 0; u < users; ++u) {
    auction::BidVector bv(channels);
    for (auto& b : bv) b = rng.below(16);
    subs.push_back(submitter.submit(bv, rng));
  }
  return subs;
}

TEST(SnapshotInterop, TableImageRejectsForeignBackendBothWays) {
  core::PpbsBidConfig hmac_bid = core::PpbsBidConfig::advanced(
      15, 3, 4, core::ZeroDisguisePolicy::none(15));
  core::PpbsBidConfig paillier_bid = hmac_bid;
  paillier_bid.backend = crypto::BidBackendId::kPaillier;
  core::TrustedThirdParty hmac_ttp(hmac_bid, kTtpSeed);
  core::TrustedThirdParty paillier_ttp(paillier_bid, kTtpSeed);
  const crypto::BidBackend* paillier = &paillier_ttp.bid_backend();
  ASSERT_EQ(paillier->id(), crypto::BidBackendId::kPaillier);

  const auto hmac_subs = make_submissions(hmac_ttp, 4, 2, 9);
  const auto paillier_subs = make_submissions(paillier_ttp, 4, 2, 9);

  const Bytes hmac_wire = core::EncryptedBidTable(hmac_subs, 2).serialize();
  const Bytes paillier_wire =
      core::EncryptedBidTable(paillier_subs, 2,
                              core::ArgmaxStrategy::kSortedColumns,
                              /*sort_threads=*/1, paillier)
          .serialize();

  // Legacy untagged HMAC image: bit-compatible with the seed (no magic),
  // restorable under the default backend...
  EXPECT_FALSE(hmac_wire.empty());
  EXPECT_NO_THROW(core::EncryptedBidTable::deserialize(hmac_wire));
  // ...but refused by a Paillier session.
  try {
    core::EncryptedBidTable::deserialize(
        hmac_wire, core::ArgmaxStrategy::kSortedColumns, 1, paillier);
    FAIL() << "HMAC image must not restore under the Paillier backend";
  } catch (const LppaError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kProtocol);
  }

  // Tagged Paillier image: restores under its own backend, refused by
  // the default/HMAC one.
  EXPECT_NO_THROW(core::EncryptedBidTable::deserialize(
      paillier_wire, core::ArgmaxStrategy::kSortedColumns, 1, paillier));
  try {
    core::EncryptedBidTable::deserialize(paillier_wire);
    FAIL() << "Paillier image must not restore under the HMAC backend";
  } catch (const LppaError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kProtocol);
  }
}

TEST(SnapshotInterop, WireSessionRejectsForeignSnapshot) {
  const World w = make_world(6, 2, 31);
  auto session_snapshot = [&](crypto::BidBackendId backend) {
    core::LppaConfig cfg = make_config(2, backend);
    core::TrustedThirdParty ttp(cfg.bid, kTtpSeed, cfg.charging_rule);
    cfg.backend = &ttp.bid_backend();
    proto::AuctioneerSession session(cfg, w.locations.size());
    Rng boot(kRoundSeed);
    Rng su_master = boot.fork();
    for (std::size_t i = 0; i < w.locations.size(); ++i) {
      Rng r = su_master.fork();
      const proto::SuClient client(i, cfg, ttp.su_keys());
      session.ingest(client.location_envelope(w.locations[i], r));
      session.ingest(client.bid_envelope(w.bids[i], r));
    }
    proto::RoundReport report;
    session.finalize_participants(report);
    Rng master(kRoundSeed);
    (void)master.fork();
    session.run_allocation(master);
    return session.snapshot();
  };

  const Bytes paillier_snap =
      session_snapshot(crypto::BidBackendId::kPaillier);
  core::LppaConfig hmac_cfg = make_config(2);
  proto::AuctioneerSession hmac_session(hmac_cfg, w.locations.size());
  try {
    hmac_session.restore_from(paillier_snap);
    FAIL() << "Paillier session snapshot must not restore into an HMAC "
              "session";
  } catch (const LppaError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kProtocol);
  }
}

// ---------------------------------------------------------------------------
// 5. Paillier wire session: full round, snapshot round-trip, restore
//    across shard counts.
// ---------------------------------------------------------------------------

TEST(PaillierSession, FullRoundAndSnapshotRoundTrip) {
  const World w = make_world(8, 3, 21);
  for (const auto rule :
       {core::ChargingRule::kFirstPrice, core::ChargingRule::kSecondPrice}) {
    core::LppaConfig cfg = make_config(3, crypto::BidBackendId::kPaillier);
    cfg.charging_rule = rule;
    core::TrustedThirdParty ttp(cfg.bid, kTtpSeed, rule);
    cfg.backend = &ttp.bid_backend();

    proto::AuctioneerSession session(cfg, w.locations.size());
    Rng boot(kRoundSeed);
    Rng su_master = boot.fork();
    for (std::size_t i = 0; i < w.locations.size(); ++i) {
      Rng r = su_master.fork();
      const proto::SuClient client(i, cfg, ttp.su_keys());
      session.ingest(client.location_envelope(w.locations[i], r));
      session.ingest(client.bid_envelope(w.bids[i], r));
    }
    proto::RoundReport report;
    session.finalize_participants(report);
    Rng master(kRoundSeed);
    (void)master.fork();
    session.run_allocation(master);
    proto::TtpService svc(ttp);
    for (const Bytes& q : session.charge_query_envelopes()) {
      session.ingest_charge_results(svc.handle(q));
    }
    ASSERT_TRUE(session.charging_complete());
    const Bytes snap = session.snapshot();
    const Bytes ann = session.winner_announcement();

    for (const auto& a : session.awards()) {
      if (!a.valid) continue;
      EXPECT_LE(a.charge, w.bids[a.user][a.channel]);
    }

    // Restore into a fresh session — including one reconfigured to a
    // different shard count, which re-shards the restored global image.
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      core::LppaConfig cfg2 = cfg;
      cfg2.num_shards = shards;
      proto::AuctioneerSession restored(cfg2, w.locations.size());
      restored.restore_from(snap);
      EXPECT_EQ(restored.snapshot(), snap) << "shards=" << shards;
      proto::TtpService svc2(ttp);
      for (const Bytes& q : restored.charge_query_envelopes()) {
        restored.ingest_charge_results(svc2.handle(q));
      }
      EXPECT_EQ(restored.winner_announcement(), ann) << "shards=" << shards;
    }
  }
}

// ---------------------------------------------------------------------------
// 6. Homomorphic-property and oracle sweeps on the TTP-held key.
// ---------------------------------------------------------------------------

TEST(PaillierOracle, ComparisonSweepMatchesPlaintextOrder) {
  core::PpbsBidConfig bid = core::PpbsBidConfig::advanced(
      15, 3, 4, core::ZeroDisguisePolicy::none(15));
  bid.backend = crypto::BidBackendId::kPaillier;
  core::TrustedThirdParty ttp(bid, kTtpSeed);
  const auto* oracle = ttp.paillier_oracle();
  ASSERT_NE(oracle, nullptr);
  const auto& pub = oracle->pub();
  const std::uint64_t smax = bid.enc.scaled_max();
  ASSERT_GT(pub.n, 128 * smax) << "oracle exactness bound";

  Rng rng(555);
  const std::size_t before = oracle->compares();
  std::size_t queried = 0;
  for (std::uint64_t a = 0; a <= smax; a += 3) {
    for (std::uint64_t b = 0; b <= smax; b += 5) {
      const std::uint64_t ct_a = pub.encrypt(a, rng);
      const std::uint64_t ct_b = pub.encrypt(b, rng);
      EXPECT_EQ(oracle->ge(ct_a, ct_b), a >= b) << a << " vs " << b;
      ++queried;
    }
  }
  EXPECT_EQ(oracle->compares(), before + queried);
}

TEST(PaillierOracle, HomomorphismsHoldOnOracleDecrypts) {
  core::PpbsBidConfig bid = core::PpbsBidConfig::advanced(
      15, 3, 4, core::ZeroDisguisePolicy::none(15));
  bid.backend = crypto::BidBackendId::kPaillier;
  core::TrustedThirdParty ttp(bid, kTtpSeed);
  const auto* oracle = ttp.paillier_oracle();
  ASSERT_NE(oracle, nullptr);
  const auto& pub = oracle->pub();

  Rng rng(777);
  const std::size_t before = oracle->decrypts();
  std::size_t decrypted = 0;
  for (int i = 0; i < 40; ++i) {
    const std::uint64_t a = rng.below(pub.n);
    const std::uint64_t b = rng.below(pub.n);
    const std::uint64_t k = rng.below(1000);
    EXPECT_EQ(oracle->decrypt(pub.add(pub.encrypt(a, rng),
                                      pub.encrypt(b, rng))),
              (a + b) % pub.n);
    EXPECT_EQ(oracle->decrypt(pub.scale(pub.encrypt(a, rng), k)),
              static_cast<std::uint64_t>(
                  (static_cast<__uint128_t>(a) * k) % pub.n));
    decrypted += 2;
  }
  EXPECT_EQ(oracle->decrypts(), before + decrypted);
}

// ---------------------------------------------------------------------------
// 7. Validator: the Paillier cell-shape checks are typed and named.
// ---------------------------------------------------------------------------

TEST(PaillierValidator, RejectsHmacShapedCellsAndDegenerateCiphertexts) {
  core::LppaConfig cfg = make_config(2, crypto::BidBackendId::kPaillier);
  core::TrustedThirdParty ttp(cfg.bid, kTtpSeed);
  cfg.backend = &ttp.bid_backend();
  const core::SubmissionValidator validator(cfg);

  // An honest Paillier submission passes.
  auto subs = make_submissions(ttp, 1, 2, 3);
  EXPECT_EQ(validator.validate_bid(subs[0]), std::nullopt);

  // A cell carrying HMAC prefix digests under the Paillier config is a
  // backend mismatch.
  core::PpbsBidConfig hmac_bid = cfg.bid;
  hmac_bid.backend = crypto::BidBackendId::kHmacPrefix;
  core::TrustedThirdParty hmac_ttp(hmac_bid, kTtpSeed);
  const auto hmac_subs = make_submissions(hmac_ttp, 1, 2, 3);
  const auto mismatch = validator.validate_bid(hmac_subs[0]);
  ASSERT_TRUE(mismatch.has_value());
  EXPECT_NE(mismatch->find("backend mismatch"), std::string::npos)
      << *mismatch;

  // A zero ciphertext is outside Z*_{n^2}.
  auto degenerate = subs[0];
  degenerate.channels[0].paillier_ct = 0;
  const auto zero_ct = validator.validate_bid(degenerate);
  ASSERT_TRUE(zero_ct.has_value());
  EXPECT_NE(zero_ct->find("Z*_{n^2}"), std::string::npos) << *zero_ct;
}

}  // namespace
}  // namespace lppa
