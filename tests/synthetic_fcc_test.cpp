#include "geo/synthetic_fcc.h"

#include <gtest/gtest.h>

namespace lppa::geo {
namespace {

SyntheticFccConfig small_config(int channels = 12) {
  SyntheticFccConfig cfg;
  cfg.rows = 40;
  cfg.cols = 40;
  cfg.cell_size_m = 750.0;
  cfg.num_channels = channels;
  return cfg;
}

TEST(AreaPreset, FourPresetsExist) {
  EXPECT_EQ(area_preset_count(), 4);
  for (int a = 1; a <= 4; ++a) {
    const auto& p = area_preset(a);
    EXPECT_FALSE(p.name.empty());
    EXPECT_GT(p.pathloss_exponent, 1.0);
    EXPECT_GE(p.shadow_sigma_db, 0.0);
    EXPECT_LT(p.tx_power_min_dbm, p.tx_power_max_dbm);
  }
  EXPECT_THROW(area_preset(0), LppaError);
  EXPECT_THROW(area_preset(5), LppaError);
}

TEST(AreaPreset, UrbanHasHarsherTerrainThanRural) {
  EXPECT_GT(area_preset(1).pathloss_exponent,
            area_preset(4).pathloss_exponent);
  EXPECT_GT(area_preset(1).shadow_sigma_db, area_preset(4).shadow_sigma_db);
}

TEST(GenerateDataset, DeterministicPerSeed) {
  const auto cfg = small_config();
  const Dataset a = generate_dataset(area_preset(4), cfg, 42);
  const Dataset b = generate_dataset(area_preset(4), cfg, 42);
  ASSERT_EQ(a.channel_count(), b.channel_count());
  for (std::size_t r = 0; r < a.channel_count(); ++r) {
    EXPECT_EQ(a.availability(r), b.availability(r));
    EXPECT_EQ(a.channel(r).rssi_dbm, b.channel(r).rssi_dbm);
  }
}

TEST(GenerateDataset, DifferentSeedsDiffer) {
  const auto cfg = small_config();
  const Dataset a = generate_dataset(area_preset(4), cfg, 1);
  const Dataset b = generate_dataset(area_preset(4), cfg, 2);
  bool any_diff = false;
  for (std::size_t r = 0; r < a.channel_count(); ++r) {
    if (!(a.availability(r) == b.availability(r))) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(GenerateDataset, EveryAreaYieldsMixedCoverage) {
  // Each area must produce, in aggregate, both covered and free territory,
  // otherwise the attacks degenerate.
  const auto cfg = small_config(20);
  for (int area = 1; area <= 4; ++area) {
    const Dataset ds = generate_dataset(area_preset(area), cfg, 7);
    std::size_t available = 0;
    const std::size_t total = ds.grid().cell_count() * ds.channel_count();
    for (std::size_t r = 0; r < ds.channel_count(); ++r) {
      available += ds.availability(r).count();
    }
    const double frac =
        static_cast<double>(available) / static_cast<double>(total);
    EXPECT_GT(frac, 0.05) << "area " << area;
    EXPECT_LT(frac, 0.95) << "area " << area;
  }
}

TEST(GenerateDataset, QualityPositiveOnlyWhereAvailable) {
  const Dataset ds = generate_dataset(area_preset(3), small_config(), 11);
  for (std::size_t r = 0; r < ds.channel_count(); ++r) {
    for (std::size_t i = 0; i < ds.grid().cell_count(); ++i) {
      if (ds.quality_at_index(r, i) > 0.0) {
        EXPECT_TRUE(ds.availability(r).contains(i));
      } else {
        // quality 0 happens both when covered and exactly at threshold.
        SUCCEED();
      }
    }
  }
}

TEST(GenerateDataset, RespectsChannelCount) {
  const Dataset ds = generate_dataset(area_preset(2), small_config(5), 3);
  EXPECT_EQ(ds.channel_count(), 5u);
  SyntheticFccConfig bad = small_config(0);
  EXPECT_THROW(generate_dataset(area_preset(2), bad, 3), LppaError);
}

TEST(TowerForChannel, StaysWithinSpread) {
  const auto& preset = area_preset(4);
  const auto cfg = small_config();
  Rng rng(9);
  const double w = cfg.cols * cfg.cell_size_m;
  const double h = cfg.rows * cfg.cell_size_m;
  for (int i = 0; i < 200; ++i) {
    const Tower t = tower_for_channel(preset, cfg, rng);
    EXPECT_GE(t.position.x, -preset.tower_spread * w);
    EXPECT_LE(t.position.x, w + preset.tower_spread * w);
    EXPECT_GE(t.position.y, -preset.tower_spread * h);
    EXPECT_LE(t.position.y, h + preset.tower_spread * h);
    EXPECT_GE(t.tx_power_dbm, preset.tx_power_min_dbm);
    EXPECT_LE(t.tx_power_dbm, preset.tx_power_max_dbm);
  }
}

TEST(GenerateDataset, MultiTowerNetworksShrinkAvailability) {
  auto cfg = small_config(20);
  cfg.max_towers_per_channel = 1;
  const Dataset single = generate_dataset(area_preset(3), cfg, 31);
  cfg.max_towers_per_channel = 4;
  const Dataset multi = generate_dataset(area_preset(3), cfg, 31);
  auto avail_fraction = [](const Dataset& ds) {
    std::size_t total = 0;
    for (std::size_t r = 0; r < ds.channel_count(); ++r) {
      total += ds.availability(r).count();
    }
    return static_cast<double>(total) /
           static_cast<double>(ds.grid().cell_count() * ds.channel_count());
  };
  // More transmitters per channel protect more territory on average.
  EXPECT_LT(avail_fraction(multi), avail_fraction(single));
}

TEST(GenerateDataset, MultiTowerIsDeterministicAndValid) {
  auto cfg = small_config(8);
  cfg.max_towers_per_channel = 3;
  const Dataset a = generate_dataset(area_preset(2), cfg, 5);
  const Dataset b = generate_dataset(area_preset(2), cfg, 5);
  for (std::size_t r = 0; r < a.channel_count(); ++r) {
    EXPECT_EQ(a.availability(r), b.availability(r));
    EXPECT_EQ(a.channel(r).rssi_dbm, b.channel(r).rssi_dbm);
  }
  cfg.max_towers_per_channel = 0;
  EXPECT_THROW(generate_dataset(area_preset(2), cfg, 5), LppaError);
}

TEST(GenerateDataset, CoverageIsSpatiallyCoherent) {
  // A coverage map should be blobs, not salt-and-pepper: the fraction of
  // available cells whose 4-neighbourhood disagrees should be small.
  const Dataset ds = generate_dataset(area_preset(4), small_config(8), 21);
  const auto& grid = ds.grid();
  for (std::size_t r = 0; r < ds.channel_count(); ++r) {
    const auto& avail = ds.availability(r);
    std::size_t boundary = 0;
    for (int row = 0; row < grid.rows(); ++row) {
      for (int col = 0; col + 1 < grid.cols(); ++col) {
        const bool a = avail.contains(grid.index({row, col}));
        const bool b = avail.contains(grid.index({row, col + 1}));
        if (a != b) ++boundary;
      }
    }
    const double frac = static_cast<double>(boundary) /
                        static_cast<double>(grid.cell_count());
    EXPECT_LT(frac, 0.30) << "channel " << r;
  }
}

}  // namespace
}  // namespace lppa::geo
