#include "core/bpm.h"

#include <gtest/gtest.h>

#include "core/bcm.h"

namespace lppa::core {
namespace {

// 2x2 world, three channels, hand-dialled quality (q = headroom/30dB):
//   quality[channel][cell]
//     ch0: 0.7  0.5  0.9  0.4
//     ch1: 1.0  1.0  0.9  0.8
//     ch2: 0.5  0.6  0.3  0.2
geo::Dataset quality_dataset() {
  const geo::Grid g(2, 2, 100.0);
  geo::Dataset ds(g, -81.0);
  auto channel = [&](std::initializer_list<double> qualities) {
    std::vector<double> rssi;
    for (double q : qualities) rssi.push_back(-81.0 - 30.0 * q);
    return finalize_channel(g, std::move(rssi), -81.0, 30.0);
  };
  ds.add_channel(channel({0.7, 0.5, 0.9, 0.4}));
  ds.add_channel(channel({1.0, 1.0, 0.9, 0.8}));
  ds.add_channel(channel({0.5, 0.6, 0.3, 0.2}));
  return ds;
}

CellSet all_cells() { return CellSet::full(4); }

TEST(BpmAttack, ExactQualityBidsPinpointTheCell) {
  const auto ds = quality_dataset();
  const BpmAttack bpm(ds);
  // Bids proportional to cell 0's qualities: {7, 10, 5} -> q̂ exactly
  // matches cell 0, so dq(cell 0) == 0 and it ranks first.
  BpmOptions opts;
  opts.keep_fraction = 0.25;  // keep 1 of 4
  const auto result = bpm.run(all_cells(), {7, 10, 5}, opts);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_EQ(result.cells[0], 0u);
  EXPECT_NEAR(result.dq[0], 0.0, 1e-12);
}

TEST(BpmAttack, ResultsSortedByDqAscending) {
  const auto ds = quality_dataset();
  const BpmAttack bpm(ds);
  BpmOptions opts;
  opts.keep_fraction = 1.0;
  const auto result = bpm.run(all_cells(), {7, 10, 5}, opts);
  ASSERT_EQ(result.cells.size(), 4u);
  for (std::size_t i = 1; i < result.dq.size(); ++i) {
    EXPECT_LE(result.dq[i - 1], result.dq[i]);
  }
  EXPECT_EQ(result.cells[0], 0u);
}

TEST(BpmAttack, KeepFractionRoundsUp) {
  const auto ds = quality_dataset();
  const BpmAttack bpm(ds);
  BpmOptions opts;
  opts.keep_fraction = 0.3;  // ceil(0.3 * 4) = 2
  const auto result = bpm.run(all_cells(), {7, 10, 5}, opts);
  EXPECT_EQ(result.cells.size(), 2u);
}

TEST(BpmAttack, MaxCellsCapApplies) {
  const auto ds = quality_dataset();
  const BpmAttack bpm(ds);
  BpmOptions opts;
  opts.keep_fraction = 1.0;
  opts.max_cells = 2;
  const auto result = bpm.run(all_cells(), {7, 10, 5}, opts);
  EXPECT_EQ(result.cells.size(), 2u);
}

TEST(BpmAttack, AllZeroBidsYieldNothing) {
  const auto ds = quality_dataset();
  const BpmAttack bpm(ds);
  const auto result = bpm.run(all_cells(), {0, 0, 0}, BpmOptions{});
  EXPECT_TRUE(result.cells.empty());
}

TEST(BpmAttack, SkipsCellsWhereReferenceChannelIsDead) {
  // Reference channel (max bid) is ch1; kill it in cell 2 and that cell
  // becomes unscorable.
  const geo::Grid g(2, 2, 100.0);
  geo::Dataset ds(g, -81.0);
  auto channel = [&](std::initializer_list<double> qualities) {
    std::vector<double> rssi;
    for (double q : qualities) {
      rssi.push_back(q <= 0.0 ? -50.0 : -81.0 - 30.0 * q);
    }
    return finalize_channel(g, std::move(rssi), -81.0, 30.0);
  };
  ds.add_channel(channel({0.7, 0.5, 0.9, 0.4}));
  ds.add_channel(channel({1.0, 1.0, 0.0, 0.8}));  // dead in cell 2
  const BpmAttack bpm(ds);
  BpmOptions opts;
  opts.keep_fraction = 1.0;
  const auto result = bpm.run(CellSet::full(4), {7, 10}, opts);
  EXPECT_EQ(result.cells.size(), 3u);
  for (std::size_t c : result.cells) EXPECT_NE(c, 2u);
}

TEST(BpmAttack, RestrictedPossibleSetIsRespected) {
  const auto ds = quality_dataset();
  const BpmAttack bpm(ds);
  CellSet possible(4);
  possible.insert(2);
  possible.insert(3);
  BpmOptions opts;
  opts.keep_fraction = 1.0;
  const auto result = bpm.run(possible, {7, 10, 5}, opts);
  for (std::size_t c : result.cells) {
    EXPECT_TRUE(c == 2u || c == 3u);
  }
}

TEST(BpmAttack, InvalidOptionsRejected) {
  const auto ds = quality_dataset();
  const BpmAttack bpm(ds);
  BpmOptions opts;
  opts.keep_fraction = 0.0;
  EXPECT_THROW(bpm.run(all_cells(), {1, 1, 1}, opts), LppaError);
  opts.keep_fraction = 1.1;
  EXPECT_THROW(bpm.run(all_cells(), {1, 1, 1}, opts), LppaError);
}

TEST(BpmAttack, GlobalVariantEqualsFullMapRun) {
  const auto ds = quality_dataset();
  const BpmAttack bpm(ds);
  BpmOptions opts;
  opts.keep_fraction = 0.5;
  const auto via_full_set = bpm.run(all_cells(), {7, 10, 5}, opts);
  const auto global = bpm.run_global({7, 10, 5}, opts);
  EXPECT_EQ(global.cells, via_full_set.cells);
  EXPECT_EQ(global.dq, via_full_set.dq);
}

TEST(BpmAttack, GlobalVariantStillFindsTheCellWithoutBcm) {
  const auto ds = quality_dataset();
  const BpmAttack bpm(ds);
  BpmOptions opts;
  opts.keep_fraction = 0.25;
  const auto result = bpm.run_global({7, 10, 5}, opts);
  ASSERT_FALSE(result.cells.empty());
  EXPECT_EQ(result.cells[0], 0u);  // exact-quality bids -> cell 0 first
}

TEST(BpmAttack, NoisyBidsStillRankTrueCellHighly) {
  // 20% noise on the bids must keep the true cell within the top half.
  const auto ds = quality_dataset();
  const BpmAttack bpm(ds);
  BpmOptions opts;
  opts.keep_fraction = 0.5;
  // True cell 2 qualities {0.9, 0.9, 0.3}; bids with mild distortion.
  const auto result = bpm.run(all_cells(), {9, 10, 3}, opts);
  ASSERT_FALSE(result.cells.empty());
  bool found = false;
  for (std::size_t c : result.cells) found |= (c == 2u);
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace lppa::core
