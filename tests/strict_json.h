// A minimal strict JSON (RFC 8259) parser for tests.
//
// The obs::json writer promises that every artifact the repo emits —
// RoundReport::to_json(), the BENCH_*.json dumps, metrics snapshots —
// parses under a *strict* reader: no bare control bytes inside strings,
// no trailing commas, no NaN/Infinity literals, exactly one top-level
// value.  This parser exists so the tests can hold the writer to that
// promise without trusting the writer's own notion of validity.
//
// It builds a tiny DOM (JsonValue) good enough to assert round-trips:
// object member order is preserved, numbers keep their double value,
// strings are fully unescaped.
#pragma once

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lppa::testjson {

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonMembers = std::vector<std::pair<std::string, JsonValue>>;

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::shared_ptr<JsonArray> array;
  std::shared_ptr<JsonMembers> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  /// Object member lookup; throws if absent or not an object.
  const JsonValue& at(std::string_view key) const {
    if (kind != Kind::kObject) throw std::runtime_error("not an object");
    for (const auto& [k, v] : *object) {
      if (k == key) return v;
    }
    throw std::runtime_error("missing key: " + std::string(key));
  }
  bool has(std::string_view key) const {
    if (kind != Kind::kObject) return false;
    for (const auto& [k, v] : *object) {
      if (k == key) return true;
    }
    return false;
  }
  const JsonValue& operator[](std::size_t i) const {
    if (kind != Kind::kArray) throw std::runtime_error("not an array");
    return array->at(i);
  }
  std::size_t size() const {
    if (kind == Kind::kArray) return array->size();
    if (kind == Kind::kObject) return object->size();
    throw std::runtime_error("size() on scalar");
  }
};

/// Strict recursive-descent parser.  Throws std::runtime_error with a
/// byte offset on the first deviation from RFC 8259.
class StrictParser {
 public:
  explicit StrictParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("strict JSON error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }
  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (take() != c) fail(std::string("expected '") + c + "'");
  }

  void skip_ws() {
    // RFC 8259: only space, tab, LF, CR are whitespace.
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't': return parse_literal("true", literal_bool(true));
      case 'f': return parse_literal("false", literal_bool(false));
      case 'n': return parse_literal("null", JsonValue{});
      default: return parse_number();
    }
  }

  static JsonValue literal_bool(bool b) {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    v.boolean = b;
    return v;
  }

  JsonValue parse_literal(std::string_view word, JsonValue v) {
    for (char c : word) {
      if (pos_ >= text_.size() || text_[pos_] != c) {
        fail("invalid literal (NaN/Infinity are not JSON)");
      }
      ++pos_;
    }
    return v;
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    v.object = std::make_shared<JsonMembers>();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("object key must be a string");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      v.object->emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = take();
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    v.array = std::make_shared<JsonArray>();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      v.array->push_back(parse_value(depth + 1));
      skip_ws();
      const char c = take();
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const unsigned char c = static_cast<unsigned char>(take());
      if (c == '"') return out;
      if (c < 0x20) fail("bare control byte in string");
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          // The writer only \u-escapes control bytes, so a 1-byte
          // decode suffices; reject surrogates outright.
          if (code >= 0xD800 && code <= 0xDFFF) fail("lone surrogate");
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    // Integer part: "0" alone or nonzero-led digits (no leading zeros).
    if (pos_ >= text_.size()) fail("truncated number");
    if (text_[pos_] == '0') {
      ++pos_;
    } else if (text_[pos_] >= '1' && text_[pos_] <= '9') {
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    } else {
      fail("invalid number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("digit required after decimal point");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("digit required in exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    if (!std::isfinite(v.number)) fail("number overflows double");
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

inline JsonValue parse_strict(std::string_view text) {
  return StrictParser(text).parse_document();
}

}  // namespace lppa::testjson
