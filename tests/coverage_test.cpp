#include "geo/coverage.h"

#include <gtest/gtest.h>

namespace lppa::geo {
namespace {

Grid tiny_grid() { return Grid(2, 3, 100.0); }

TEST(FinalizeChannel, ThresholdSplitsAvailability) {
  const Grid g = tiny_grid();
  // rssi: first three cells covered (above threshold), last three free.
  const std::vector<double> rssi = {-50, -70, -80.9, -81, -100, -130};
  const auto ch = finalize_channel(g, rssi, -81.0, 30.0);
  EXPECT_FALSE(ch.available.contains(0));
  EXPECT_FALSE(ch.available.contains(1));
  EXPECT_FALSE(ch.available.contains(2));
  EXPECT_TRUE(ch.available.contains(3));  // exactly at threshold: available
  EXPECT_TRUE(ch.available.contains(4));
  EXPECT_TRUE(ch.available.contains(5));
}

TEST(FinalizeChannel, QualityIsNormalisedHeadroom) {
  const Grid g = tiny_grid();
  const std::vector<double> rssi = {-81, -96, -111, -150, -50, -81.0001};
  const auto ch = finalize_channel(g, rssi, -81.0, 30.0);
  EXPECT_DOUBLE_EQ(ch.quality[0], 0.0);  // zero headroom
  EXPECT_DOUBLE_EQ(ch.quality[1], 0.5);  // 15 dB of 30
  EXPECT_DOUBLE_EQ(ch.quality[2], 1.0);  // full span
  EXPECT_DOUBLE_EQ(ch.quality[3], 1.0);  // clamped above the span
  EXPECT_DOUBLE_EQ(ch.quality[4], 0.0);  // unavailable -> 0
  EXPECT_GT(ch.quality[5], 0.0);
}

TEST(FinalizeChannel, RejectsMismatchedRaster) {
  EXPECT_THROW(finalize_channel(tiny_grid(), std::vector<double>(5), -81.0),
               LppaError);
  EXPECT_THROW(
      finalize_channel(tiny_grid(), std::vector<double>(6), -81.0, 0.0),
      LppaError);
}

Dataset make_dataset() {
  const Grid g = tiny_grid();
  Dataset ds(g, -81.0);
  // Channel 0: available in cells 3..5.
  ds.add_channel(finalize_channel(g, {-50, -60, -70, -90, -100, -110}, -81.0));
  // Channel 1: available everywhere.
  ds.add_channel(
      finalize_channel(g, {-90, -95, -100, -105, -110, -115}, -81.0));
  // Channel 2: available nowhere.
  ds.add_channel(finalize_channel(g, {-10, -20, -30, -40, -50, -60}, -81.0));
  return ds;
}

TEST(Dataset, ChannelAccessors) {
  const Dataset ds = make_dataset();
  EXPECT_EQ(ds.channel_count(), 3u);
  EXPECT_EQ(ds.availability(0).count(), 3u);
  EXPECT_EQ(ds.availability(1).count(), 6u);
  EXPECT_EQ(ds.availability(2).count(), 0u);
  EXPECT_THROW(ds.channel(3), LppaError);
}

TEST(Dataset, QualityLookups) {
  const Dataset ds = make_dataset();
  EXPECT_EQ(ds.quality(2, {0, 0}), 0.0);
  EXPECT_GT(ds.quality(1, {0, 0}), 0.0);
  EXPECT_EQ(ds.quality(0, {0, 0}), 0.0);              // covered cell
  EXPECT_GT(ds.quality_at_index(0, 4), 0.0);          // free cell
  EXPECT_THROW(ds.quality_at_index(0, 6), LppaError);  // out of range
}

TEST(Dataset, AvailableChannelsPerCell) {
  const Dataset ds = make_dataset();
  EXPECT_EQ(ds.available_channels({0, 0}), (std::vector<std::size_t>{1}));
  EXPECT_EQ(ds.available_channels({1, 1}), (std::vector<std::size_t>{0, 1}));
}

TEST(Dataset, RestrictedToKeepsPrefixOfChannels) {
  const Dataset ds = make_dataset();
  const Dataset head = ds.restricted_to(2);
  EXPECT_EQ(head.channel_count(), 2u);
  EXPECT_EQ(head.availability(0), ds.availability(0));
  EXPECT_EQ(head.availability(1), ds.availability(1));
  EXPECT_THROW(ds.restricted_to(4), LppaError);
}

TEST(Dataset, RejectsForeignRaster) {
  Dataset ds(tiny_grid(), -81.0);
  ChannelCoverage wrong(5);
  EXPECT_THROW(ds.add_channel(wrong), LppaError);
}

TEST(Dataset, SerializeRoundTripPreservesEverything) {
  const Dataset ds = make_dataset();
  const Bytes wire = ds.serialize();
  const Dataset restored = Dataset::deserialize(wire);
  EXPECT_EQ(restored.grid(), ds.grid());
  EXPECT_DOUBLE_EQ(restored.threshold_dbm(), ds.threshold_dbm());
  ASSERT_EQ(restored.channel_count(), ds.channel_count());
  for (std::size_t r = 0; r < ds.channel_count(); ++r) {
    EXPECT_EQ(restored.availability(r), ds.availability(r)) << r;
    // rssi quantised to centi-dB: inputs here are exact centi-dB values.
    EXPECT_EQ(restored.channel(r).rssi_dbm, ds.channel(r).rssi_dbm) << r;
    EXPECT_EQ(restored.channel(r).quality, ds.channel(r).quality) << r;
  }
}

TEST(Dataset, DeserializeRejectsCorruption) {
  const Dataset ds = make_dataset();
  Bytes wire = ds.serialize();
  Bytes truncated(wire.begin(), wire.end() - 1);
  EXPECT_THROW(Dataset::deserialize(truncated), LppaError);
  Bytes padded = wire;
  padded.push_back(0);
  EXPECT_THROW(Dataset::deserialize(padded), LppaError);
  Bytes zero_rows = wire;
  zero_rows[0] = zero_rows[1] = zero_rows[2] = zero_rows[3] = 0;
  EXPECT_THROW(Dataset::deserialize(zero_rows), LppaError);
}

TEST(Dataset, QualityPositiveImpliesAvailable) {
  const Dataset ds = make_dataset();
  for (std::size_t r = 0; r < ds.channel_count(); ++r) {
    for (std::size_t i = 0; i < ds.grid().cell_count(); ++i) {
      if (ds.quality_at_index(r, i) > 0.0) {
        EXPECT_TRUE(ds.availability(r).contains(i));
      }
    }
  }
}

}  // namespace
}  // namespace lppa::geo
