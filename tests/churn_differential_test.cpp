// Churn differential suite: incrementally maintained round state
// (core::ChurnState — ConflictGraph deltas, ShardPlan::reassign,
// ShardedBidTable insert_user/remove_user over tombstones) must stay
// IDENTICAL to a from-scratch rebuild after every event of randomized
// arrival/departure/move/rebid sequences, for every shard and thread
// count — graphs and assignments by ==, tables by their serialized byte
// image, and allocation outcomes award-for-award.
#include "core/churn_state.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "sim/churn.h"

namespace lppa {
namespace {

struct MaskedWorld {
  core::LppaConfig config;
  std::unique_ptr<core::LppaAuction> auction;
  std::unique_ptr<core::PpbsLocation> location_protocol;
  std::unique_ptr<core::BidSubmitter> submitter;

  explicit MaskedWorld(const sim::ChurnScheduleConfig& sc,
                       std::size_t num_shards, std::size_t threads) {
    config.num_channels = sc.num_channels;
    config.lambda = sc.lambda;
    config.coord_width = sc.coord_width;
    config.bid = core::PpbsBidConfig::advanced(
        sc.bmax, 3, 4, core::ZeroDisguisePolicy::none(sc.bmax));
    config.num_shards = num_shards;
    config.num_threads = threads;
    auction = std::make_unique<core::LppaAuction>(config, /*ttp_seed=*/7);
    const core::SuKeyBundle keys = auction->ttp().su_keys();
    location_protocol = std::make_unique<core::PpbsLocation>(
        keys.g0, config.coord_width, config.lambda,
        config.pad_location_ranges);
    submitter = std::make_unique<core::BidSubmitter>(
        auction->ttp().config(), keys.gb_master, keys.gc);
  }
};

/// Builds the initial ChurnState for the schedule's round-zero roster.
core::ChurnState make_state(const MaskedWorld& w,
                            const sim::ChurnSchedule& schedule, Rng& mask) {
  const std::size_t capacity = schedule.config().capacity;
  std::vector<auction::SuLocation> locations(capacity);
  std::vector<core::LocationSubmission> loc_subs(capacity);
  std::vector<core::BidSubmission> bid_subs(capacity);
  const auction::BidVector zeros(w.config.num_channels, 0);
  for (std::size_t u = 0; u < capacity; ++u) {
    Rng su_rng = mask.fork();
    if (schedule.live()[u]) {
      locations[u] = schedule.locations()[u];
      loc_subs[u] = w.location_protocol->submit(locations[u], su_rng);
      bid_subs[u] = w.submitter->submit(schedule.bids()[u], su_rng);
    } else {
      bid_subs[u] = w.submitter->submit(zeros, su_rng);
    }
  }
  return core::ChurnState(w.config, std::move(locations),
                          std::move(loc_subs), std::move(bid_subs),
                          schedule.live());
}

void apply_event(core::ChurnState& state, const MaskedWorld& w,
                 const sim::ChurnEvent& ev, Rng& mask) {
  Rng su_rng = mask.fork();
  switch (ev.kind) {
    case sim::ChurnEvent::Kind::kArrive:
      state.add_su(ev.user, ev.loc,
                   w.location_protocol->submit(ev.loc, su_rng),
                   w.submitter->submit(ev.bids, su_rng));
      break;
    case sim::ChurnEvent::Kind::kDepart:
      state.remove_su(ev.user);
      break;
    case sim::ChurnEvent::Kind::kMove:
      state.move_su(ev.user, ev.loc,
                    w.location_protocol->submit(ev.loc, su_rng));
      break;
    case sim::ChurnEvent::Kind::kRebid:
      state.rebid_su(ev.user, w.submitter->submit(ev.bids, su_rng));
      break;
  }
}

TEST(ChurnSchedule, IsAPureFunctionOfItsConfig) {
  sim::ChurnScheduleConfig sc;
  sc.capacity = 12;
  sc.initial_live = 6;
  sc.num_channels = 3;
  sc.seed = 99;
  sim::ChurnSchedule a(sc);
  sim::ChurnSchedule b(sc);
  EXPECT_EQ(a.live(), b.live());
  EXPECT_EQ(a.locations(), b.locations());
  for (int round = 0; round < 5; ++round) {
    const auto ea = a.next_round();
    const auto eb = b.next_round();
    ASSERT_EQ(ea.size(), eb.size()) << "round " << round;
    for (std::size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i].kind, eb[i].kind);
      EXPECT_EQ(ea[i].user, eb[i].user);
      EXPECT_TRUE(ea[i].loc == eb[i].loc);
      EXPECT_EQ(ea[i].bids, eb[i].bids);
    }
    EXPECT_EQ(a.live(), b.live());
    EXPECT_EQ(a.live_count(), b.live_count());
  }
}

TEST(ChurnSchedule, RespectsCapacityAndLiveness) {
  sim::ChurnScheduleConfig sc;
  sc.capacity = 10;
  sc.initial_live = 4;
  sc.num_channels = 2;
  sc.arrive_prob = 0.5;
  sc.depart_prob = 0.4;
  sc.seed = 3;
  sim::ChurnSchedule schedule(sc);
  std::vector<bool> live(schedule.live());
  for (int round = 0; round < 30; ++round) {
    for (const auto& ev : schedule.next_round()) {
      ASSERT_LT(ev.user, sc.capacity);
      switch (ev.kind) {
        case sim::ChurnEvent::Kind::kArrive:
          ASSERT_FALSE(live[ev.user]) << "arrival into a live slot";
          live[ev.user] = true;
          break;
        case sim::ChurnEvent::Kind::kDepart:
          ASSERT_TRUE(live[ev.user]) << "departure from a dead slot";
          live[ev.user] = false;
          break;
        case sim::ChurnEvent::Kind::kMove:
        case sim::ChurnEvent::Kind::kRebid:
          ASSERT_TRUE(live[ev.user]) << "move/rebid of a dead slot";
          break;
      }
    }
    EXPECT_EQ(live, schedule.live());
    EXPECT_GE(schedule.live_count(), 1u) << "schedule emptied the auction";
  }
}

TEST(ChurnDifferential, IncrementalEqualsRebuildAcrossShardAndThreadCounts) {
  sim::ChurnScheduleConfig sc;
  sc.capacity = 14;
  sc.initial_live = 7;
  sc.num_channels = 3;
  sc.coord_width = 12;
  sc.lambda = 96;
  sc.seed = 20130708;

  for (const std::size_t shards : {std::size_t{1}, std::size_t{3},
                                   std::size_t{4}}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
      const MaskedWorld w(sc, shards, threads);
      sim::ChurnSchedule schedule(sc);
      Rng mask(4242);
      core::ChurnState state = make_state(w, schedule, mask);

      for (int round = 0; round < 8; ++round) {
        // Check after EVERY event, not just every round: a stale digest
        // or a mis-spliced column order must be caught at the op that
        // introduced it, not masked by a later one.
        for (const auto& ev : schedule.next_round()) {
          apply_event(state, w, ev, mask);
          ASSERT_TRUE(state.graph() == state.rebuild_conflicts())
              << "shards=" << shards << " threads=" << threads << " round="
              << round << " after event on user " << ev.user;
          ASSERT_TRUE(state.assignment() == state.rebuild_assignment())
              << "shards=" << shards << " threads=" << threads << " round="
              << round;
          ASSERT_EQ(state.serialize_table(),
                    state.rebuild_table().serialize())
              << "shards=" << shards << " threads=" << threads << " round="
              << round;
        }

        // Allocation parity on the round's final state.
        core::ShardedBidTable maintained_table = state.table_for_allocation();
        core::ShardedBidTable rebuilt_table = state.rebuild_table();
        Rng rng_a(900 + round), rng_b(900 + round);
        const auto a = w.auction->allocate_and_charge(
            state.bids(), state.graph(), maintained_table, state.live(),
            rng_a);
        const auto b = w.auction->allocate_and_charge(
            state.bids(), state.rebuild_conflicts(), rebuilt_table,
            state.live(), rng_b);
        ASSERT_EQ(a.awards, b.awards)
            << "shards=" << shards << " threads=" << threads << " round="
            << round;
        EXPECT_EQ(a.manipulations_detected, b.manipulations_detected);
      }
    }
  }
}

TEST(ChurnDifferential, SlotReuseCyclesStayExact) {
  // The same slot repeatedly dies and is reborn elsewhere (the tombstone
  // resurrection path of EncryptedBidTable::insert_user and the
  // dead-chain recycling of DigestIndex::erase) — the tightest loop on
  // the removal-path machinery this PR audits.
  sim::ChurnScheduleConfig sc;
  sc.capacity = 6;
  sc.initial_live = 6;
  sc.num_channels = 2;
  sc.coord_width = 12;
  sc.lambda = 200;
  const MaskedWorld w(sc, /*num_shards=*/4, /*threads=*/1);

  sim::ChurnSchedule seed_roster(sc);
  Rng mask(777);
  core::ChurnState state = make_state(w, seed_roster, mask);
  Rng scenario(31);
  for (int cycle = 0; cycle < 25; ++cycle) {
    const std::size_t u = scenario.below(sc.capacity);
    if (state.live()[u]) {
      if (state.live_count() == 1) continue;
      state.remove_su(u);
    } else {
      Rng su_rng = mask.fork();
      const auction::SuLocation loc = {scenario.below(3696),
                                       scenario.below(3696)};
      auction::BidVector bids(sc.num_channels);
      for (auto& b : bids) b = scenario.below(16);
      state.add_su(u, loc, w.location_protocol->submit(loc, su_rng),
                   w.submitter->submit(bids, su_rng));
    }
    ASSERT_TRUE(state.graph() == state.rebuild_conflicts()) << "cycle "
                                                            << cycle;
    ASSERT_TRUE(state.assignment() == state.rebuild_assignment())
        << "cycle " << cycle;
    ASSERT_EQ(state.serialize_table(), state.rebuild_table().serialize())
        << "cycle " << cycle;
  }
}

TEST(ChurnDifferential, ChurnCountersTrackEvents) {
  sim::ChurnScheduleConfig sc;
  sc.capacity = 10;
  sc.initial_live = 5;
  sc.num_channels = 2;
  sc.coord_width = 12;
  sc.lambda = 100;
  sc.seed = 8;
  obs::MetricsRegistry metrics;
  MaskedWorld w(sc, /*num_shards=*/2, /*threads=*/1);
  w.config.metrics = &metrics;
  sim::ChurnSchedule schedule(sc);
  Rng mask(99);
  core::ChurnState state = make_state(w, schedule, mask);

  std::size_t arrivals = 0, departures = 0, moves = 0, rebids = 0;
  for (int round = 0; round < 6; ++round) {
    for (const auto& ev : schedule.next_round()) {
      apply_event(state, w, ev, mask);
      switch (ev.kind) {
        case sim::ChurnEvent::Kind::kArrive: ++arrivals; break;
        case sim::ChurnEvent::Kind::kDepart: ++departures; break;
        case sim::ChurnEvent::Kind::kMove: ++moves; break;
        case sim::ChurnEvent::Kind::kRebid: ++rebids; break;
      }
    }
  }
  EXPECT_EQ(metrics.counter("churn.arrivals").value(), arrivals);
  EXPECT_EQ(metrics.counter("churn.departures").value(), departures);
  EXPECT_EQ(metrics.counter("churn.moves").value(), moves);
  EXPECT_EQ(metrics.counter("churn.rebids").value(), rebids);
  // Digest bookkeeping never leaks: live pairs == inserted - erased, and
  // a full drain (minus one mandatory survivor) erases almost all.
  EXPECT_GE(metrics.counter("churn.digests_inserted").value(),
            metrics.counter("churn.digests_erased").value());
}

}  // namespace
}  // namespace lppa
