#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace lppa {
namespace {

TEST(ThreadPoolTest, RunExecutesEveryWorkerIdExactlyOnce) {
  ThreadPool pool(3);
  for (std::size_t workers : {std::size_t{1}, std::size_t{4}, std::size_t{9}}) {
    std::vector<std::atomic<int>> seen(workers);
    pool.run(workers, [&](std::size_t w) { seen[w].fetch_add(1); });
    for (std::size_t w = 0; w < workers; ++w) {
      EXPECT_EQ(seen[w].load(), 1) << "worker " << w << " of " << workers;
    }
  }
}

TEST(ThreadPoolTest, RunWithZeroWorkersIsANoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.run(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, WorkerExceptionPropagatesToCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.run(4,
               [](std::size_t w) {
                 if (w == 3) throw std::runtime_error("boom");
               }),
      std::runtime_error);
  // The pool stays usable after a throwing batch.
  std::atomic<int> count{0};
  pool.run(4, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 4);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    const std::size_t n = 10'000;
    std::vector<std::atomic<int>> hits(n);
    parallel_for(n, threads, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelForTest, MatchesSerialResult) {
  const std::size_t n = 4096;
  std::vector<std::uint64_t> serial(n), parallel(n);
  auto f = [](std::size_t i) {
    // A cheap but index-sensitive function.
    std::uint64_t v = i * 0x9e3779b97f4a7c15ULL;
    v ^= v >> 29;
    return v;
  };
  for (std::size_t i = 0; i < n; ++i) serial[i] = f(i);
  parallel_for(n, 5, [&](std::size_t i) { parallel[i] = f(i); });
  EXPECT_EQ(parallel, serial);
}

TEST(ParallelForTest, HandlesEmptyAndTinyRanges) {
  int calls = 0;
  parallel_for(0, 8, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);

  std::vector<std::atomic<int>> hits(3);
  parallel_for(3, 8, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, PropagatesBodyException) {
  EXPECT_THROW(parallel_for(100, 4,
                            [](std::size_t i) {
                              if (i == 57) throw std::runtime_error("bad");
                            }),
               std::runtime_error);
}

TEST(ParallelForTest, LowestErroringIndexWinsDeterministically) {
  // Several indices throw; the exception that reaches the caller must be
  // the one from the LOWEST index, for every thread count — otherwise a
  // fault in a parallel submission loop would be attributed to a
  // different SU from run to run.
  for (std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{5}, std::size_t{16}}) {
    try {
      parallel_for(10'000, threads, [](std::size_t i) {
        if (i % 1000 == 7) throw std::runtime_error(std::to_string(i));
      });
      FAIL() << "expected an exception with " << threads << " threads";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "7") << threads << " threads";
    }
  }
}

TEST(ParallelForTest, IndicesBelowTheErrorAlwaysRun) {
  // The deterministic-capture contract: indices below the winning error
  // are always executed; indices above it may be skipped.
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const std::size_t n = 5'000;
    const std::size_t bad = 2'500;
    std::vector<std::atomic<int>> hits(n);
    try {
      parallel_for(n, threads, [&](std::size_t i) {
        if (i == bad) throw std::runtime_error("bad");
        hits[i].fetch_add(1);
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error&) {
    }
    for (std::size_t i = 0; i < bad; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " skipped with "
                                   << threads << " threads";
    }
  }
}

TEST(ThreadPoolTest, HardwareThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
  EXPECT_GE(ThreadPool::shared().worker_count(), 1u);
}

}  // namespace
}  // namespace lppa
