#include "common/bytes.h"

#include <gtest/gtest.h>

namespace lppa {
namespace {

TEST(ByteWriter, FixedWidthLittleEndian) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0102030405060708ULL);
  const Bytes& b = w.data();
  ASSERT_EQ(b.size(), 1u + 2 + 4 + 8);
  EXPECT_EQ(b[0], 0xab);
  EXPECT_EQ(b[1], 0x34);  // u16 low byte first
  EXPECT_EQ(b[2], 0x12);
  EXPECT_EQ(b[3], 0xef);  // u32 low byte first
  EXPECT_EQ(b[6], 0xde);
  EXPECT_EQ(b[7], 0x08);  // u64 low byte first
  EXPECT_EQ(b[14], 0x01);
}

TEST(ByteRoundTrip, AllScalarWidths) {
  ByteWriter w;
  w.u8(7);
  w.u16(65535);
  w.u32(0);
  w.u64(~0ULL);
  ByteReader r(std::span<const std::uint8_t>(w.data()));
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 65535);
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_EQ(r.u64(), ~0ULL);
  EXPECT_TRUE(r.at_end());
}

TEST(ByteRoundTrip, LengthPrefixedBytes) {
  ByteWriter w;
  const Bytes payload = {1, 2, 3, 4, 5};
  w.bytes(payload);
  w.bytes(Bytes{});  // empty payload round-trips too
  ByteReader r(std::span<const std::uint8_t>(w.data()));
  EXPECT_EQ(r.bytes(), payload);
  EXPECT_EQ(r.bytes(), Bytes{});
  EXPECT_TRUE(r.at_end());
}

TEST(ByteRoundTrip, RawBytes) {
  ByteWriter w;
  const Bytes payload = {9, 8, 7};
  w.raw(payload);
  ByteReader r(std::span<const std::uint8_t>(w.data()));
  EXPECT_EQ(r.raw(3), payload);
}

TEST(ByteReader, TruncationThrowsProtocolError) {
  const Bytes b = {1, 2};
  ByteReader r(b);
  EXPECT_EQ(r.u16(), 0x0201);
  try {
    (void)r.u8();
    FAIL() << "expected LppaError";
  } catch (const LppaError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kProtocol);
  }
}

TEST(ByteReader, LengthPrefixLongerThanBufferThrows) {
  ByteWriter w;
  w.u32(1000);  // claims 1000 bytes follow
  w.u8(1);
  ByteReader r(std::span<const std::uint8_t>(w.data()));
  EXPECT_THROW(r.bytes(), LppaError);
}

TEST(ByteReader, RemainingTracksPosition) {
  const Bytes b = {1, 2, 3, 4};
  ByteReader r(b);
  EXPECT_EQ(r.remaining(), 4u);
  r.u16();
  EXPECT_EQ(r.remaining(), 2u);
  r.raw(2);
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(r.at_end());
}

TEST(Hex, EncodesLowercase) {
  const Bytes b = {0x00, 0xff, 0xa5};
  EXPECT_EQ(to_hex(b), "00ffa5");
}

TEST(Hex, RoundTrip) {
  const Bytes b = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x11};
  EXPECT_EQ(from_hex(to_hex(b)), b);
}

TEST(Hex, AcceptsUppercase) {
  EXPECT_EQ(from_hex("DEADBEEF"), (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(Hex, RejectsOddLength) { EXPECT_THROW(from_hex("abc"), LppaError); }

TEST(Hex, RejectsNonHexCharacters) { EXPECT_THROW(from_hex("zz"), LppaError); }

TEST(Hex, EmptyStringYieldsEmptyBytes) {
  EXPECT_TRUE(from_hex("").empty());
  EXPECT_EQ(to_hex(Bytes{}), "");
}

TEST(CtEqual, MatchesOperatorEqualOnAllInputs) {
  const Bytes a = {1, 2, 3, 4};
  const Bytes b = {1, 2, 3, 4};
  const Bytes first_differs = {9, 2, 3, 4};
  const Bytes last_differs = {1, 2, 3, 9};
  const Bytes shorter = {1, 2, 3};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_TRUE(ct_equal(a, a));
  EXPECT_FALSE(ct_equal(a, first_differs));
  EXPECT_FALSE(ct_equal(a, last_differs));
  EXPECT_FALSE(ct_equal(a, shorter));
  EXPECT_FALSE(ct_equal(shorter, a));
}

TEST(CtEqual, EmptySpansAreEqual) {
  EXPECT_TRUE(ct_equal(Bytes{}, Bytes{}));
  EXPECT_FALSE(ct_equal(Bytes{}, Bytes{0}));
}

TEST(CtEqual, SingleBitDifferencesAreDetectedEverywhere) {
  Bytes base(32, 0x5a);
  for (std::size_t byte = 0; byte < base.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes flipped = base;
      flipped[byte] ^= static_cast<std::uint8_t>(1 << bit);
      EXPECT_FALSE(ct_equal(base, flipped)) << byte << ":" << bit;
    }
  }
}

}  // namespace
}  // namespace lppa
