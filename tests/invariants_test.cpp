// End-to-end invariant sweeps: properties that must hold for EVERY seed,
// exercised across many randomly generated worlds.  These are the
// regression net for the whole pipeline — any change to the protocol,
// the allocator or the generators that breaks a paper-level guarantee
// trips one of these.
#include <gtest/gtest.h>

#include <set>

#include "auction/plain_auction.h"
#include "core/adversary.h"
#include "core/bcm.h"
#include "proto/session.h"
#include "sim/scenario.h"

namespace lppa {
namespace {

struct World {
  std::vector<auction::SuLocation> locations;
  std::vector<auction::BidVector> bids;
  core::LppaConfig config;
};

World random_world(Rng& rng) {
  World w;
  const std::size_t n = 5 + rng.below(15);
  const std::size_t k = 1 + rng.below(5);
  for (std::size_t i = 0; i < n; ++i) {
    w.locations.push_back({rng.below(3000), rng.below(3000)});
    auction::BidVector bv(k);
    for (auto& b : bv) b = rng.below(16);
    w.bids.push_back(bv);
  }
  w.config.num_channels = k;
  w.config.lambda = 50 + rng.below(300);
  w.config.coord_width = 13;
  const double replace = rng.uniform01();
  w.config.bid = core::PpbsBidConfig::advanced(
      15, 1 + rng.below(8), 1 + rng.below(6),
      core::ZeroDisguisePolicy::uniform(15, replace));
  w.config.ttp_batch_size = 1 + rng.below(8);
  if (rng.bernoulli(0.3)) {
    w.config.charging_rule = core::ChargingRule::kSecondPrice;
  }
  return w;
}

class EndToEndInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EndToEndInvariants, LppaRoundSatisfiesAllGuarantees) {
  Rng world_rng(GetParam());
  for (int round = 0; round < 5; ++round) {
    const World w = random_world(world_rng);
    core::LppaAuction engine(w.config, GetParam() * 31 + round);
    Rng rng(GetParam() + round);
    const auto result = engine.run(w.locations, w.bids, rng);

    // 1. The masked conflict graph equals the plaintext one.
    EXPECT_EQ(result.view.conflicts,
              auction::ConflictGraph::from_locations(w.locations,
                                                     w.config.lambda));

    // 2. Nobody wins twice; co-channel winners never conflict.
    std::set<core::UserId> winners;
    const auto& awards = result.outcome.awards;
    for (std::size_t i = 0; i < awards.size(); ++i) {
      EXPECT_TRUE(winners.insert(awards[i].user).second);
      for (std::size_t j = i + 1; j < awards.size(); ++j) {
        if (awards[i].channel == awards[j].channel) {
          EXPECT_FALSE(result.view.conflicts.conflicts(awards[i].user,
                                                       awards[j].user));
        }
      }
    }

    // 3. Charging integrity: no manipulation on honest runs; valid
    //    charges never exceed the winner's true bid; invalid awards are
    //    exactly the true-zero wins and carry no charge.
    EXPECT_EQ(result.manipulations_detected, 0u);
    for (const auto& award : awards) {
      const auto true_bid = w.bids[award.user][award.channel];
      if (award.valid) {
        EXPECT_GT(true_bid, 0u);
        EXPECT_LE(award.charge, true_bid);
        if (w.config.charging_rule == core::ChargingRule::kFirstPrice) {
          EXPECT_EQ(award.charge, true_bid);
        }
      } else {
        EXPECT_EQ(award.charge, 0u);
        EXPECT_EQ(true_bid, 0u);
      }
    }

    // 4. TTP accounting matches the award count and batch size.
    EXPECT_EQ(engine.ttp().queries_processed(), awards.size());
    const std::size_t expected_batches =
        (awards.size() + w.config.ttp_batch_size - 1) /
        w.config.ttp_batch_size;
    EXPECT_EQ(engine.ttp().batches_processed(),
              awards.empty() ? 0 : expected_batches);
  }
}

TEST_P(EndToEndInvariants, WireHarnessAlwaysMatchesInMemory) {
  Rng world_rng(GetParam() ^ 0xabcdef);
  for (int round = 0; round < 3; ++round) {
    const World w = random_world(world_rng);
    const std::uint64_t ttp_seed = GetParam() * 7 + round;

    core::LppaAuction engine(w.config, ttp_seed);
    Rng rng_mem(GetParam() + round);
    const auto in_memory = engine.run(w.locations, w.bids, rng_mem);

    core::TrustedThirdParty ttp(w.config.bid, ttp_seed,
                                w.config.charging_rule);
    proto::MessageBus bus;
    Rng rng_wire(GetParam() + round);
    const auto wire = proto::run_wire_auction(w.config, ttp, w.locations,
                                              w.bids, bus, rng_wire);
    EXPECT_EQ(wire.awards, in_memory.outcome.awards)
        << "seed " << GetParam() << " round " << round;
  }
}

TEST_P(EndToEndInvariants, HonestBidderAlwaysInsideOwnBcmSet) {
  // The bedrock of the BCM attack: with truthful per-cell bids, the
  // victim is always inside the intersection.
  sim::ScenarioConfig cfg;
  cfg.area_id = 1 + static_cast<int>(GetParam() % 4);
  cfg.fcc.rows = 25;
  cfg.fcc.cols = 25;
  cfg.fcc.num_channels = 10;
  cfg.num_users = 15;
  cfg.seed = GetParam();
  const sim::Scenario scenario(cfg);
  const core::BcmAttack bcm(scenario.dataset());
  for (const auto& su : scenario.users()) {
    EXPECT_TRUE(bcm.run(su.bids).contains(
        scenario.dataset().grid().index(su.cell)));
  }
}

TEST_P(EndToEndInvariants, MaskedOrderAlwaysMatchesScaledOrder) {
  Rng rng(GetParam() ^ 0x5eed);
  crypto::SecretKey gb = crypto::SecretKey::generate(rng);
  crypto::SecretKey gc = crypto::SecretKey::generate(rng);
  const auto cfg = core::PpbsBidConfig::advanced(
      15, 2, 3, core::ZeroDisguisePolicy::none(15));
  const core::BidSubmitter submitter(cfg, gb, gc);
  const crypto::SealedBox box(gc);

  std::vector<std::pair<std::uint64_t, core::ChannelBidSubmission>> subs;
  for (int i = 0; i < 12; ++i) {
    auto sub = submitter.encode_bid(0, rng.below(16), rng);
    const auto plain = box.open(sub.sealed);
    ASSERT_TRUE(plain.has_value());
    const auto payload = core::SealedBidPayload::deserialize(*plain);
    subs.emplace_back(payload.scaled, std::move(sub));
  }
  for (const auto& [sa, a] : subs) {
    for (const auto& [sb, b] : subs) {
      EXPECT_EQ(core::encrypted_ge(a, b), sa >= sb);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndInvariants,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55));

}  // namespace
}  // namespace lppa
