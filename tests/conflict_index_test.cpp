// Differential tests for the indexed conflict-graph build.
//
// The digest hash-join (prefix::DigestIndex) must reproduce the
// all-pairs reference graph *exactly* — not merely with high
// probability — because both paths compare the same digest multisets;
// and the thread count must be observationally irrelevant everywhere it
// appears (conflict-graph probing, full auction rounds).
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/lppa_auction.h"
#include "core/ppbs_location.h"
#include "prefix/digest_index.h"

namespace lppa::core {
namespace {

TEST(DigestIndexTest, CollectReturnsAllOwnersOfADigest) {
  Rng rng(7);
  const auto key = crypto::SecretKey::generate(rng);
  prefix::DigestIndex index;
  const auto set_a = prefix::HashedPrefixSet::of_value(key, 42, 10);
  const auto set_b = prefix::HashedPrefixSet::of_value(key, 42, 10);
  const auto set_c = prefix::HashedPrefixSet::of_value(key, 999, 10);
  index.insert_all(set_a, 0);
  index.insert_all(set_b, 1);
  index.insert_all(set_c, 2);

  // Every digest of value 42's family is owned by 0 and 1; value 999
  // shares only the short prefixes with 42.
  std::vector<std::uint32_t> owners;
  index.collect(set_a.digests()[0], owners);
  std::sort(owners.begin(), owners.end());
  ASSERT_GE(owners.size(), 2u);
  EXPECT_EQ(owners[0], 0u);
  EXPECT_EQ(owners[1], 1u);
  EXPECT_EQ(index.entry_count(), set_a.size() + set_b.size() + set_c.size());
}

TEST(DigestIndexTest, MissingDigestCollectsNothing) {
  prefix::DigestIndex index;
  crypto::Digest d;
  d.bytes[0] = 0xab;
  std::vector<std::uint32_t> owners;
  EXPECT_EQ(index.collect(d, owners), 0u);
  index.insert(d, 5);
  crypto::Digest other = d;
  other.bytes[31] ^= 1;
  EXPECT_EQ(index.collect(other, owners), 0u);
  EXPECT_EQ(index.collect(d, owners), 1u);
  EXPECT_EQ(owners, std::vector<std::uint32_t>{5u});
}

TEST(DigestIndexTest, SurvivesRehashing) {
  Rng rng(11);
  prefix::DigestIndex index;  // no reserve: forces several growth steps
  std::vector<crypto::Digest> digests;
  for (std::uint32_t i = 0; i < 3000; ++i) {
    crypto::Digest d;
    for (auto& b : d.bytes) b = static_cast<std::uint8_t>(rng.below(256));
    digests.push_back(d);
    index.insert(d, i);
  }
  EXPECT_EQ(index.distinct_digests(), 3000u);
  std::vector<std::uint32_t> owners;
  for (std::uint32_t i = 0; i < 3000; ++i) {
    owners.clear();
    ASSERT_EQ(index.collect(digests[i], owners), 1u);
    EXPECT_EQ(owners[0], i);
  }
}

TEST(DigestIndexTest, ReservePreSizesSoInsertionsNeverRehash) {
  Rng rng(13);
  prefix::DigestIndex index;
  EXPECT_EQ(index.slot_capacity(), 0u);
  const std::size_t expected = 1777;  // deliberately not a power of two
  index.reserve(expected);
  const std::size_t capacity = index.slot_capacity();
  EXPECT_GE(capacity, 2 * expected);  // load factor stays <= 0.5
  EXPECT_GT(index.memory_bytes(), 0u);
  for (std::uint32_t i = 0; i < expected; ++i) {
    crypto::Digest d;
    for (auto& b : d.bytes) b = static_cast<std::uint8_t>(rng.below(256));
    index.insert(d, i);
    // The shard build pre-sizes each per-shard index from its exact
    // member+halo digest count; this pin is what makes that sizing a
    // no-rehash guarantee rather than a heuristic.
    ASSERT_EQ(index.slot_capacity(), capacity) << "rehashed at insert " << i;
  }
  EXPECT_EQ(index.entry_count(), expected);
  EXPECT_LE(index.distinct_digests(), expected);
  // One insert beyond the reservation may legitimately grow the table.
  crypto::Digest extra;
  extra.bytes[0] = 0x5a;
  index.insert(extra, 0);
  EXPECT_GE(index.slot_capacity(), capacity);
  // Each slot stores at least the 32-byte digest key, so the reported
  // footprint is bounded below by the slot array alone.
  EXPECT_GT(index.memory_bytes(), index.slot_capacity() * 32);
}

TEST(DigestIndexTest, ReserveZeroIsSafeAndUsable) {
  // The churn layer sizes per-tile indexes from live digest counts,
  // which hit zero whenever a tile empties out — reserve(0) must neither
  // divide by zero nor leave the table unusable.
  prefix::DigestIndex index;
  index.reserve(0);
  const std::size_t capacity = index.slot_capacity();
  EXPECT_GT(capacity, 0u);
  EXPECT_EQ(capacity & (capacity - 1), 0u) << "capacity not a power of two";
  EXPECT_GT(index.memory_bytes(), 0u);
  EXPECT_EQ(index.entry_count(), 0u);
  EXPECT_EQ(index.distinct_digests(), 0u);

  crypto::Digest d;
  d.bytes[7] = 0x42;
  std::vector<std::uint32_t> owners;
  EXPECT_EQ(index.collect(d, owners), 0u);
  EXPECT_FALSE(index.erase(d, 3));
  index.insert(d, 3);
  ASSERT_EQ(index.collect(d, owners), 1u);
  EXPECT_EQ(owners, std::vector<std::uint32_t>{3u});
}

TEST(DigestIndexTest, AllDuplicateDigestsNeverRehash) {
  // Pathological input: every insertion carries the SAME digest (one
  // occupied slot, arbitrarily long owner chain).  The load factor is
  // measured in occupied slots, so no amount of duplicates may trigger a
  // rehash, and the capacity/footprint figures must stay sane.
  prefix::DigestIndex index;
  index.reserve(8);
  const std::size_t capacity = index.slot_capacity();
  crypto::Digest d;
  d.bytes[0] = 0xee;
  constexpr std::uint32_t kOwners = 10000;
  for (std::uint32_t owner = 0; owner < kOwners; ++owner) {
    index.insert(d, owner);
    ASSERT_EQ(index.slot_capacity(), capacity)
        << "duplicate insert " << owner << " rehashed";
  }
  EXPECT_EQ(index.distinct_digests(), 1u);
  EXPECT_EQ(index.entry_count(), kOwners);
  EXPECT_GT(index.memory_bytes(), kOwners * sizeof(std::uint32_t));
  std::vector<std::uint32_t> owners;
  EXPECT_EQ(index.collect(d, owners), static_cast<std::size_t>(kOwners));

  // Erasure walks the chain by owner and recycles entries; the slot
  // itself stays occupied (dead chain) so probing remains intact.
  for (std::uint32_t owner = 0; owner < kOwners; ++owner) {
    EXPECT_TRUE(index.erase(d, owner));
  }
  EXPECT_EQ(index.entry_count(), 0u);
  owners.clear();
  EXPECT_EQ(index.collect(d, owners), 0u);
  index.insert(d, 7);  // revives the dead chain in place
  ASSERT_EQ(index.collect(d, owners), 1u);
  EXPECT_EQ(owners, std::vector<std::uint32_t>{7u});
  EXPECT_EQ(index.distinct_digests(), 1u);
}

TEST(DigestIndexTest, EraseIsMultisetSymmetricWithInsert) {
  // An owner can legitimately hold the same digest twice (family and
  // range covers share short prefixes); erase must remove exactly one
  // pair per call, mirroring insert call-for-call.
  prefix::DigestIndex index;
  crypto::Digest d;
  d.bytes[3] = 0x99;
  index.insert(d, 5);
  index.insert(d, 5);
  EXPECT_EQ(index.entry_count(), 2u);
  EXPECT_TRUE(index.erase(d, 5));
  std::vector<std::uint32_t> owners;
  ASSERT_EQ(index.collect(d, owners), 1u);
  EXPECT_EQ(owners, std::vector<std::uint32_t>{5u});
  EXPECT_TRUE(index.erase(d, 5));
  EXPECT_FALSE(index.erase(d, 5));
  EXPECT_EQ(index.entry_count(), 0u);
}

TEST(ConflictIndexTest, IndexedMatchesPairwiseOver200RandomScenarios) {
  Rng rng(20130708);
  for (int scenario = 0; scenario < 220; ++scenario) {
    const int width = static_cast<int>(rng.uniform_int(8, 14));
    const std::uint64_t max_coord = (std::uint64_t{1} << width) - 1;
    const std::uint64_t lambda = rng.below(max_coord / 4 + 1);
    const bool pad = rng.bernoulli(0.5);
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 40));

    const auto g0 = crypto::SecretKey::generate(rng);
    const PpbsLocation protocol(g0, width, lambda, pad);
    std::vector<LocationSubmission> subs;
    subs.reserve(n);
    const std::uint64_t hi = max_coord - 2 * lambda;
    for (std::size_t i = 0; i < n; ++i) {
      subs.push_back(protocol.submit({rng.below(hi + 1), rng.below(hi + 1)},
                                     rng));
    }

    const auto pairwise = PpbsLocation::build_conflict_graph_pairwise(subs);
    const auto indexed = PpbsLocation::build_conflict_graph(subs, 1);
    const auto indexed_mt = PpbsLocation::build_conflict_graph(subs, 3);
    ASSERT_EQ(indexed, pairwise)
        << "scenario " << scenario << " width=" << width
        << " lambda=" << lambda << " pad=" << pad << " n=" << n;
    ASSERT_EQ(indexed_mt, pairwise)
        << "scenario " << scenario << " (3 threads)";
  }
}

TEST(ConflictIndexTest, DegenerateInputsMatchPairwise) {
  Rng rng(99);
  const auto g0 = crypto::SecretKey::generate(rng);
  const int width = 10;
  const std::uint64_t lambda = 16;
  const PpbsLocation protocol(g0, width, lambda, /*pad_ranges=*/true);

  // Zero SUs: both builds reject identically (a conflict graph over an
  // empty population is a caller error, not an empty graph).
  const std::vector<LocationSubmission> none;
  EXPECT_THROW(PpbsLocation::build_conflict_graph_pairwise(none), LppaError);
  EXPECT_THROW(PpbsLocation::build_conflict_graph(none, 1), LppaError);
  EXPECT_THROW(PpbsLocation::build_conflict_graph(none, 4), LppaError);

  // One SU: a single node, no self-edge.
  const std::vector<LocationSubmission> one{protocol.submit({100, 100}, rng)};
  const auto one_pairwise = PpbsLocation::build_conflict_graph_pairwise(one);
  EXPECT_EQ(PpbsLocation::build_conflict_graph(one, 1), one_pairwise);
  EXPECT_EQ(one_pairwise.num_users(), 1u);
  EXPECT_FALSE(one_pairwise.conflicts(0, 0));

  // All-identical locations: every pair conflicts, and (crucially for
  // the hash-join) every digest bucket holds every SU.
  std::vector<LocationSubmission> same;
  for (int i = 0; i < 6; ++i) same.push_back(protocol.submit({64, 64}, rng));
  const auto same_pairwise = PpbsLocation::build_conflict_graph_pairwise(same);
  EXPECT_EQ(PpbsLocation::build_conflict_graph(same, 1), same_pairwise);
  EXPECT_EQ(PpbsLocation::build_conflict_graph(same, 3), same_pairwise);
  for (std::size_t i = 0; i < same.size(); ++i) {
    for (std::size_t j = i + 1; j < same.size(); ++j) {
      EXPECT_TRUE(same_pairwise.conflicts(i, j));
    }
  }

  // Grid boundary: corners of the coordinate space, where loc±2λ clamps
  // against 0 and the width limit.
  const std::uint64_t hi = ((std::uint64_t{1} << width) - 1) - 2 * lambda;
  std::vector<LocationSubmission> corners;
  for (const auto& loc : std::vector<auction::SuLocation>{
           {0, 0}, {0, hi}, {hi, 0}, {hi, hi}, {hi / 2, hi / 2}}) {
    corners.push_back(protocol.submit(loc, rng));
  }
  const auto corner_pairwise =
      PpbsLocation::build_conflict_graph_pairwise(corners);
  EXPECT_EQ(PpbsLocation::build_conflict_graph(corners, 1), corner_pairwise);
  EXPECT_EQ(PpbsLocation::build_conflict_graph(corners, 4), corner_pairwise);
}

LppaOutcome run_with_threads(std::size_t num_threads) {
  LppaConfig cfg;
  cfg.num_channels = 6;
  cfg.lambda = 60;
  cfg.coord_width = 14;
  cfg.num_threads = num_threads;
  cfg.charging_rule = ChargingRule::kSecondPrice;
  cfg.bid = PpbsBidConfig::advanced(15, 3, 4,
                                    ZeroDisguisePolicy::linear(15, 0.3));
  LppaAuction auction(cfg, /*ttp_seed=*/99);

  Rng rng(4242);
  const std::uint64_t hi = ((std::uint64_t{1} << 14) - 1) - 2 * cfg.lambda;
  std::vector<auction::SuLocation> locations;
  std::vector<BidVector> bids;
  for (int i = 0; i < 48; ++i) {
    locations.push_back({rng.below(hi + 1), rng.below(hi + 1)});
    BidVector bv(cfg.num_channels);
    for (auto& b : bv) b = rng.below(16);
    bids.push_back(bv);
  }
  return auction.run(locations, bids, rng);
}

TEST(ConflictIndexTest, ThreadCountIsObservationallyIrrelevant) {
  const LppaOutcome serial = run_with_threads(1);
  const LppaOutcome parallel = run_with_threads(4);

  EXPECT_EQ(parallel.view.locations, serial.view.locations);
  EXPECT_EQ(parallel.view.bids, serial.view.bids);
  EXPECT_EQ(parallel.view.conflicts, serial.view.conflicts);
  EXPECT_EQ(parallel.view.awards, serial.view.awards);
  EXPECT_EQ(parallel.view.location_wire_bytes,
            serial.view.location_wire_bytes);
  EXPECT_EQ(parallel.view.bid_wire_bytes, serial.view.bid_wire_bytes);
  EXPECT_EQ(parallel.outcome.awards, serial.outcome.awards);
  EXPECT_EQ(parallel.manipulations_detected, serial.manipulations_detected);

  // Byte-identical on the wire, too.
  ASSERT_EQ(parallel.view.locations.size(), serial.view.locations.size());
  for (std::size_t i = 0; i < serial.view.locations.size(); ++i) {
    EXPECT_EQ(parallel.view.locations[i].serialize(),
              serial.view.locations[i].serialize());
    EXPECT_EQ(parallel.view.bids[i].serialize(),
              serial.view.bids[i].serialize());
  }
}

}  // namespace
}  // namespace lppa::core
