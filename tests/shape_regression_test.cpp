// Shape-regression tests: scaled-down versions of the EXPERIMENTS.md
// claims, so a change that silently flips a paper-level conclusion
// (who wins, which direction a curve moves) fails CI rather than only
// showing up in bench output.
#include <gtest/gtest.h>

#include "sim/cloaking.h"
#include "sim/experiments.h"

namespace lppa::sim {
namespace {

ScenarioConfig world(std::size_t users = 40, int channels = 20,
                     int area = 3) {
  ScenarioConfig cfg;
  cfg.area_id = area;
  cfg.fcc.rows = 60;
  cfg.fcc.cols = 60;
  cfg.fcc.num_channels = channels;
  cfg.num_users = users;
  cfg.seed = 20130708;
  return cfg;
}

TEST(ShapeRegression, Fig4aMoreChannelsShrinkBcm) {
  const Scenario s(world(40, 20, 4));
  double prev = 1e18;
  for (std::size_t k : {5u, 10u, 20u}) {
    const auto point = run_attack_point(s, k, 1.0, 0);
    EXPECT_LE(point.bcm.mean_possible_cells, prev) << k;
    prev = point.bcm.mean_possible_cells;
  }
}

TEST(ShapeRegression, Fig4bBcmNeverFailsBpmTradesSizeForError) {
  const Scenario s(world(40, 20, 4));
  const auto half = run_attack_point(s, 20, 0.5, 0);
  const auto eighth = run_attack_point(s, 20, 0.125, 0);
  EXPECT_DOUBLE_EQ(half.bcm.failure_rate, 0.0);
  EXPECT_DOUBLE_EQ(eighth.bcm.failure_rate, 0.0);
  EXPECT_LT(eighth.bpm.mean_possible_cells, half.bpm.mean_possible_cells);
  EXPECT_GE(eighth.bpm.failure_rate, half.bpm.failure_rate);
}

TEST(ShapeRegression, Fig5dLppaFailureFarAboveBaseline) {
  const Scenario s(world());
  DefenseOptions opts;
  opts.replace_prob = 0.5;
  opts.top_fraction = 0.5;
  const auto point = run_defense_point(s, opts, 99);
  EXPECT_DOUBLE_EQ(point.plain_bcm.failure_rate, 0.0);
  EXPECT_GT(point.lppa.failure_rate, 0.5);
}

TEST(ShapeRegression, Fig5dFailureRisesWithAttackerPercentage) {
  const Scenario s(world());
  DefenseOptions narrow, wide;
  narrow.replace_prob = wide.replace_prob = 0.3;
  narrow.top_fraction = 0.25;
  wide.top_fraction = 1.0;
  const auto a = run_defense_point(s, narrow, 5);
  const auto b = run_defense_point(s, wide, 5);
  EXPECT_LE(a.lppa.failure_rate, b.lppa.failure_rate + 1e-9);
}

TEST(ShapeRegression, Fig5aCellsAndUncertaintyFallWithPercentage) {
  const Scenario s(world());
  DefenseOptions narrow, wide;
  narrow.replace_prob = wide.replace_prob = 0.4;
  narrow.top_fraction = 0.25;
  wide.top_fraction = 0.8;
  const auto a = run_defense_point(s, narrow, 7);
  const auto b = run_defense_point(s, wide, 7);
  EXPECT_GT(a.lppa.mean_possible_cells, b.lppa.mean_possible_cells);
  EXPECT_GT(a.lppa.mean_uncertainty_nats, b.lppa.mean_uncertainty_nats);
}

TEST(ShapeRegression, Fig5eRevenueRatioFallsWithReplaceProb) {
  Scenario s(world());
  const auto low = run_performance_point(s, 0.1, 3, 4, 2, 31);
  const auto high = run_performance_point(s, 1.0, 3, 4, 2, 31);
  EXPECT_GT(low.bid_sum_ratio, high.bid_sum_ratio);
  EXPECT_GT(low.bid_sum_ratio, 0.7);   // mild disguise is cheap
  EXPECT_GT(high.bid_sum_ratio, 0.3);  // full disguise is costly, not fatal
}

TEST(ShapeRegression, CloakingNeverBeatsLppaOnFailure) {
  const Scenario s(world());
  const auto cloak = run_cloaking_point(s, 10, 3);
  DefenseOptions opts;
  opts.replace_prob = 0.5;
  const auto lppa = run_defense_point(s, opts, 3);
  EXPECT_LT(cloak.privacy.failure_rate + 0.2, lppa.lppa.failure_rate);
}

TEST(ShapeRegression, Area2HasLargestBcmOutput) {
  // This claim is about the terrain presets, which are calibrated at the
  // bench scale — run it there (100x100 cells, 30 channels).
  double area2 = 0.0, others_max = 0.0;
  for (int area = 1; area <= 4; ++area) {
    auto cfg = world(40, 30, area);
    cfg.fcc.rows = 100;
    cfg.fcc.cols = 100;
    const Scenario s(cfg);
    const auto point = run_attack_point(s, 30, 1.0, 0);
    if (area == 2) {
      area2 = point.bcm.mean_possible_cells;
    } else {
      others_max = std::max(others_max, point.bcm.mean_possible_cells);
    }
  }
  EXPECT_GT(area2, others_max);
}

}  // namespace
}  // namespace lppa::sim
