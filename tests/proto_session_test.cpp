#include "proto/session.h"

#include <gtest/gtest.h>

namespace lppa::proto {
namespace {

struct WireWorld {
  std::vector<auction::SuLocation> locations;
  std::vector<auction::BidVector> bids;
  core::LppaConfig config;
};

WireWorld make_world(std::size_t n, std::size_t k, std::uint64_t seed) {
  Rng rng(seed);
  WireWorld w;
  for (std::size_t i = 0; i < n; ++i) {
    w.locations.push_back({rng.below(5000), rng.below(5000)});
    auction::BidVector bv(k);
    for (auto& b : bv) b = rng.below(16);
    w.bids.push_back(bv);
  }
  w.config.num_channels = k;
  w.config.lambda = 100;
  w.config.coord_width = 14;
  w.config.bid = core::PpbsBidConfig::advanced(
      15, 3, 4, core::ZeroDisguisePolicy::none(15));
  w.config.ttp_batch_size = 4;
  return w;
}

TEST(WireAuction, MatchesInMemoryEngineExactly) {
  const WireWorld w = make_world(14, 3, 21);

  core::LppaAuction engine(w.config, 777);
  Rng rng_mem(5);
  const auto in_memory = engine.run(w.locations, w.bids, rng_mem);

  core::TrustedThirdParty ttp(w.config.bid, 777);
  MessageBus bus;
  Rng rng_wire(5);
  const auto wire =
      run_wire_auction(w.config, ttp, w.locations, w.bids, bus, rng_wire);

  EXPECT_EQ(wire.awards, in_memory.outcome.awards);
}

TEST(WireAuction, SubmissionTrafficMatchesWireSizes) {
  const WireWorld w = make_world(6, 2, 31);
  core::TrustedThirdParty ttp(w.config.bid, 3);
  MessageBus bus;
  Rng rng(9);
  const auto result =
      run_wire_auction(w.config, ttp, w.locations, w.bids, bus, rng);
  // Two messages per SU (location + bids).
  EXPECT_EQ(result.submission_traffic.messages, 12u);
  EXPECT_GT(result.submission_traffic.bytes, 0u);
  // Charging traffic: at least one batch each way.
  EXPECT_GE(result.charging_traffic.messages, 2u);
  EXPECT_EQ(result.ttp_batches, ttp.batches_processed());
}

TEST(WireAuction, BatchSizeControlsTtpBatches) {
  WireWorld w = make_world(12, 2, 41);
  w.config.ttp_batch_size = 3;
  core::TrustedThirdParty ttp(w.config.bid, 5);
  MessageBus bus;
  Rng rng(11);
  const auto result =
      run_wire_auction(w.config, ttp, w.locations, w.bids, bus, rng);
  const std::size_t awards = result.awards.size();
  EXPECT_EQ(result.ttp_batches, (awards + 2) / 3);
}

TEST(WireAuction, SecondPriceRunsOverTheWire) {
  WireWorld w = make_world(10, 2, 51);
  w.config.charging_rule = core::ChargingRule::kSecondPrice;
  core::TrustedThirdParty ttp(w.config.bid, 7,
                              core::ChargingRule::kSecondPrice);
  MessageBus bus;
  Rng rng(13);
  const auto result =
      run_wire_auction(w.config, ttp, w.locations, w.bids, bus, rng);
  for (const auto& award : result.awards) {
    if (award.valid) {
      EXPECT_LE(award.charge, w.bids[award.user][award.channel]);
    }
  }
}

TEST(AuctioneerSession, RejectsDuplicateAndForeignSubmissions) {
  const WireWorld w = make_world(2, 2, 61);
  core::TrustedThirdParty ttp(w.config.bid, 9);
  AuctioneerSession session(w.config, 2);
  Rng rng(1);
  const SuClient client(0, w.config, ttp.su_keys());
  const Bytes loc = client.location_envelope(w.locations[0], rng);
  session.ingest(loc);
  EXPECT_THROW(session.ingest(loc), LppaError);  // duplicate

  const SuClient stranger(7, w.config, ttp.su_keys());  // index out of range
  EXPECT_THROW(
      session.ingest(stranger.location_envelope(w.locations[0], rng)),
      LppaError);
}

TEST(AuctioneerSession, RefusesToRunIncomplete) {
  const WireWorld w = make_world(2, 2, 71);
  core::TrustedThirdParty ttp(w.config.bid, 9);
  AuctioneerSession session(w.config, 2);
  EXPECT_FALSE(session.ready());
  Rng rng(1);
  EXPECT_THROW(session.run_allocation(rng), LppaError);
  EXPECT_THROW(session.charge_query_envelopes(), LppaError);
}

TEST(AuctioneerSession, RejectsWrongChannelCount) {
  const WireWorld w = make_world(2, 2, 81);
  core::TrustedThirdParty ttp(w.config.bid, 9);
  AuctioneerSession session(w.config, 2);
  Rng rng(1);
  auto bad_config = w.config;
  bad_config.num_channels = 3;  // SU encodes 3 channels, auction expects 2
  const SuClient client(0, bad_config, ttp.su_keys());
  EXPECT_THROW(session.ingest(client.bid_envelope({1, 2, 3}, rng)),
               LppaError);
}

TEST(AuctioneerSession, DepartedThenReturnedSuIsNotAnEquivocator) {
  // Churn semantics: an SU that departs and later returns submits a
  // FRESH masked pair (new position, new masks).  The second submission
  // differs byte-for-byte from the first, which is exactly the
  // equivocation signature — but churn_depart cleared the stored pair,
  // so the returned SU's submission must land on the empty-slot path and
  // be accepted without a strike.
  const WireWorld w = make_world(3, 2, 141);
  core::TrustedThirdParty ttp(w.config.bid, 9);
  AuctioneerSession session(w.config, 3);
  Rng rng(1);
  const SuClient client(0, w.config, ttp.su_keys());

  const Bytes first_loc = client.location_envelope(w.locations[0], rng);
  const Bytes first_bid = client.bid_envelope(w.bids[0], rng);
  ASSERT_EQ(session.try_ingest(first_loc),
            AuctioneerSession::IngestResult::kAccepted);
  ASSERT_EQ(session.try_ingest(first_bid),
            AuctioneerSession::IngestResult::kAccepted);

  session.churn_depart(0);
  EXPECT_TRUE(session.is_absent(0));
  // While absent, traffic from the departed sender is rejected — but
  // without a strike and without an equivocation verdict.
  std::string error;
  EXPECT_EQ(session.try_ingest(first_loc, &error),
            AuctioneerSession::IngestResult::kRejected);
  EXPECT_FALSE(session.is_excluded(0));

  session.churn_return(0);
  EXPECT_FALSE(session.is_absent(0));
  // Fresh pair, different bytes (new masks and a new position).
  const auction::SuLocation moved = {w.locations[0].x + 57,
                                     w.locations[0].y + 31};
  const Bytes second_loc = client.location_envelope(moved, rng);
  const Bytes second_bid = client.bid_envelope(w.bids[0], rng);
  ASSERT_NE(second_loc, first_loc);
  EXPECT_EQ(session.try_ingest(second_loc, &error),
            AuctioneerSession::IngestResult::kAccepted)
      << error;
  EXPECT_EQ(session.try_ingest(second_bid, &error),
            AuctioneerSession::IngestResult::kAccepted)
      << error;
  EXPECT_FALSE(session.is_excluded(0));

  // A genuinely equivocating sender still gets caught: a THIRD,
  // different pair while the second is stored.
  const Bytes third_loc = client.location_envelope(w.locations[0], rng);
  EXPECT_EQ(session.try_ingest(third_loc),
            AuctioneerSession::IngestResult::kEquivocation);
  EXPECT_TRUE(session.is_excluded(0));
}

TEST(AuctioneerSession, ChurnRecordsReplayAndSnapshotRoundTrip) {
  // Journaled churn: depart/return records replay into the same state —
  // and the snapshot codec round-trips the absent flag.
  const WireWorld w = make_world(3, 2, 151);
  core::TrustedThirdParty ttp(w.config.bid, 9);
  Rng rng(3);
  std::vector<Bytes> locs, bids;
  for (std::size_t u = 0; u < 3; ++u) {
    const SuClient client(u, w.config, ttp.su_keys());
    locs.push_back(client.location_envelope(w.locations[u], rng));
    bids.push_back(client.bid_envelope(w.bids[u], rng));
  }

  AuctioneerSession session(w.config, 3);
  RoundJournal journal;
  journal.append_round_start(3);
  session.attach_journal(&journal);
  for (std::size_t u = 0; u < 3; ++u) {
    ASSERT_EQ(session.try_ingest(locs[u]),
              AuctioneerSession::IngestResult::kAccepted);
    ASSERT_EQ(session.try_ingest(bids[u]),
              AuctioneerSession::IngestResult::kAccepted);
  }
  session.churn_depart(1);
  session.churn_depart(2);
  session.churn_return(2);
  // Departure cleared user 2's stored pair; the returned SU re-submits
  // a fresh pair (journaled like any other admission).
  {
    Rng fresh(11);
    const SuClient client(2, w.config, ttp.su_keys());
    ASSERT_EQ(session.try_ingest(
                  client.location_envelope(w.locations[2], fresh)),
              AuctioneerSession::IngestResult::kAccepted);
    ASSERT_EQ(session.try_ingest(client.bid_envelope(w.bids[2], fresh)),
              AuctioneerSession::IngestResult::kAccepted);
  }

  // Journal replay reproduces the exact state (the return value is the
  // resume wave counter; the record count lands in the report).
  AuctioneerSession replayed(w.config, 3);
  RoundReport report;
  replay_session_journal(journal, replayed, 3, report);
  EXPECT_GT(report.replayed_records, 0u);
  EXPECT_TRUE(replayed.is_absent(1));
  EXPECT_FALSE(replayed.is_absent(2));
  EXPECT_EQ(replayed.snapshot(), session.snapshot());

  // Snapshot restore round-trips the absent flag too.
  AuctioneerSession restored(w.config, 3);
  restored.restore_from(session.snapshot());
  EXPECT_TRUE(restored.is_absent(1));
  EXPECT_FALSE(restored.is_absent(2));
  EXPECT_EQ(restored.snapshot(), session.snapshot());

  // ready() ignores absent slots: everyone live has submitted, so the
  // round can close without user 1.
  EXPECT_TRUE(session.ready());
  EXPECT_EQ(session.missing_users(), std::vector<std::size_t>{});
}

TEST(TtpService, RejectsNonChargeEnvelopes) {
  const WireWorld w = make_world(2, 2, 91);
  core::TrustedThirdParty ttp(w.config.bid, 9);
  TtpService service(ttp);
  Envelope e;
  e.type = MessageType::kLocationSubmission;
  EXPECT_THROW(service.handle(e.serialize()), LppaError);
}

TEST(WireAuction, ReusedBusAccumulatesRounds) {
  const WireWorld w = make_world(5, 2, 101);
  core::TrustedThirdParty ttp(w.config.bid, 15);
  MessageBus bus;
  Rng rng(17);
  const auto first =
      run_wire_auction(w.config, ttp, w.locations, w.bids, bus, rng);
  core::TrustedThirdParty ttp2(w.config.bid, 16);
  const auto second =
      run_wire_auction(w.config, ttp2, w.locations, w.bids, bus, rng);
  // Stats accumulate across rounds on a reused bus.
  EXPECT_EQ(second.submission_traffic.messages,
            2 * first.submission_traffic.messages);
}

}  // namespace
}  // namespace lppa::proto
