#include "proto/session.h"

#include <gtest/gtest.h>

namespace lppa::proto {
namespace {

struct WireWorld {
  std::vector<auction::SuLocation> locations;
  std::vector<auction::BidVector> bids;
  core::LppaConfig config;
};

WireWorld make_world(std::size_t n, std::size_t k, std::uint64_t seed) {
  Rng rng(seed);
  WireWorld w;
  for (std::size_t i = 0; i < n; ++i) {
    w.locations.push_back({rng.below(5000), rng.below(5000)});
    auction::BidVector bv(k);
    for (auto& b : bv) b = rng.below(16);
    w.bids.push_back(bv);
  }
  w.config.num_channels = k;
  w.config.lambda = 100;
  w.config.coord_width = 14;
  w.config.bid = core::PpbsBidConfig::advanced(
      15, 3, 4, core::ZeroDisguisePolicy::none(15));
  w.config.ttp_batch_size = 4;
  return w;
}

TEST(WireAuction, MatchesInMemoryEngineExactly) {
  const WireWorld w = make_world(14, 3, 21);

  core::LppaAuction engine(w.config, 777);
  Rng rng_mem(5);
  const auto in_memory = engine.run(w.locations, w.bids, rng_mem);

  core::TrustedThirdParty ttp(w.config.bid, 777);
  MessageBus bus;
  Rng rng_wire(5);
  const auto wire =
      run_wire_auction(w.config, ttp, w.locations, w.bids, bus, rng_wire);

  EXPECT_EQ(wire.awards, in_memory.outcome.awards);
}

TEST(WireAuction, SubmissionTrafficMatchesWireSizes) {
  const WireWorld w = make_world(6, 2, 31);
  core::TrustedThirdParty ttp(w.config.bid, 3);
  MessageBus bus;
  Rng rng(9);
  const auto result =
      run_wire_auction(w.config, ttp, w.locations, w.bids, bus, rng);
  // Two messages per SU (location + bids).
  EXPECT_EQ(result.submission_traffic.messages, 12u);
  EXPECT_GT(result.submission_traffic.bytes, 0u);
  // Charging traffic: at least one batch each way.
  EXPECT_GE(result.charging_traffic.messages, 2u);
  EXPECT_EQ(result.ttp_batches, ttp.batches_processed());
}

TEST(WireAuction, BatchSizeControlsTtpBatches) {
  WireWorld w = make_world(12, 2, 41);
  w.config.ttp_batch_size = 3;
  core::TrustedThirdParty ttp(w.config.bid, 5);
  MessageBus bus;
  Rng rng(11);
  const auto result =
      run_wire_auction(w.config, ttp, w.locations, w.bids, bus, rng);
  const std::size_t awards = result.awards.size();
  EXPECT_EQ(result.ttp_batches, (awards + 2) / 3);
}

TEST(WireAuction, SecondPriceRunsOverTheWire) {
  WireWorld w = make_world(10, 2, 51);
  w.config.charging_rule = core::ChargingRule::kSecondPrice;
  core::TrustedThirdParty ttp(w.config.bid, 7,
                              core::ChargingRule::kSecondPrice);
  MessageBus bus;
  Rng rng(13);
  const auto result =
      run_wire_auction(w.config, ttp, w.locations, w.bids, bus, rng);
  for (const auto& award : result.awards) {
    if (award.valid) {
      EXPECT_LE(award.charge, w.bids[award.user][award.channel]);
    }
  }
}

TEST(AuctioneerSession, RejectsDuplicateAndForeignSubmissions) {
  const WireWorld w = make_world(2, 2, 61);
  core::TrustedThirdParty ttp(w.config.bid, 9);
  AuctioneerSession session(w.config, 2);
  Rng rng(1);
  const SuClient client(0, w.config, ttp.su_keys());
  const Bytes loc = client.location_envelope(w.locations[0], rng);
  session.ingest(loc);
  EXPECT_THROW(session.ingest(loc), LppaError);  // duplicate

  const SuClient stranger(7, w.config, ttp.su_keys());  // index out of range
  EXPECT_THROW(
      session.ingest(stranger.location_envelope(w.locations[0], rng)),
      LppaError);
}

TEST(AuctioneerSession, RefusesToRunIncomplete) {
  const WireWorld w = make_world(2, 2, 71);
  core::TrustedThirdParty ttp(w.config.bid, 9);
  AuctioneerSession session(w.config, 2);
  EXPECT_FALSE(session.ready());
  Rng rng(1);
  EXPECT_THROW(session.run_allocation(rng), LppaError);
  EXPECT_THROW(session.charge_query_envelopes(), LppaError);
}

TEST(AuctioneerSession, RejectsWrongChannelCount) {
  const WireWorld w = make_world(2, 2, 81);
  core::TrustedThirdParty ttp(w.config.bid, 9);
  AuctioneerSession session(w.config, 2);
  Rng rng(1);
  auto bad_config = w.config;
  bad_config.num_channels = 3;  // SU encodes 3 channels, auction expects 2
  const SuClient client(0, bad_config, ttp.su_keys());
  EXPECT_THROW(session.ingest(client.bid_envelope({1, 2, 3}, rng)),
               LppaError);
}

TEST(TtpService, RejectsNonChargeEnvelopes) {
  const WireWorld w = make_world(2, 2, 91);
  core::TrustedThirdParty ttp(w.config.bid, 9);
  TtpService service(ttp);
  Envelope e;
  e.type = MessageType::kLocationSubmission;
  EXPECT_THROW(service.handle(e.serialize()), LppaError);
}

TEST(WireAuction, ReusedBusAccumulatesRounds) {
  const WireWorld w = make_world(5, 2, 101);
  core::TrustedThirdParty ttp(w.config.bid, 15);
  MessageBus bus;
  Rng rng(17);
  const auto first =
      run_wire_auction(w.config, ttp, w.locations, w.bids, bus, rng);
  core::TrustedThirdParty ttp2(w.config.bid, 16);
  const auto second =
      run_wire_auction(w.config, ttp2, w.locations, w.bids, bus, rng);
  // Stats accumulate across rounds on a reused bus.
  EXPECT_EQ(second.submission_traffic.messages,
            2 * first.submission_traffic.messages);
}

}  // namespace
}  // namespace lppa::proto
