#include "sim/multi_round.h"

#include <gtest/gtest.h>

namespace lppa::sim {
namespace {

ScenarioConfig small_config() {
  ScenarioConfig cfg;
  cfg.area_id = 3;
  cfg.fcc.rows = 30;
  cfg.fcc.cols = 30;
  cfg.fcc.num_channels = 12;
  cfg.num_users = 20;
  cfg.seed = 77;
  return cfg;
}

TEST(ScenarioRebid, KeepsPositionsChangesBids) {
  Scenario s(small_config());
  const auto before = s.users();
  s.rebid(123);
  bool any_bid_changed = false;
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(s.users()[i].cell, before[i].cell);
    EXPECT_EQ(s.users()[i].loc, before[i].loc);
    if (s.users()[i].bids != before[i].bids) any_bid_changed = true;
  }
  EXPECT_TRUE(any_bid_changed);
}

TEST(ScenarioRebid, DeterministicPerSeed) {
  Scenario a(small_config()), b(small_config());
  a.rebid(9);
  b.rebid(9);
  for (std::size_t i = 0; i < a.users().size(); ++i) {
    EXPECT_EQ(a.users()[i].bids, b.users()[i].bids);
  }
}

TEST(ScenarioRebid, BidsStillRespectAvailability) {
  Scenario s(small_config());
  s.rebid(55);
  for (const auto& su : s.users()) {
    const std::size_t cell = s.dataset().grid().index(su.cell);
    for (std::size_t r = 0; r < su.bids.size(); ++r) {
      if (!s.dataset().availability(r).contains(cell)) {
        EXPECT_EQ(su.bids[r], 0u);
      }
    }
  }
}

TEST(MultiRound, RequiresAtLeastOneRound) {
  Scenario s(small_config());
  MultiRoundConfig cfg;
  cfg.rounds = 0;
  EXPECT_THROW(run_multi_round(s, cfg, 1), LppaError);
}

TEST(MultiRound, OneRoundIsMixingInvariant) {
  // With a single round there is nothing to link: mixing on and off must
  // produce identical knowledge.
  Scenario s1(small_config()), s2(small_config());
  MultiRoundConfig with_mix, without_mix;
  with_mix.rounds = without_mix.rounds = 1;
  with_mix.mix_ids = true;
  without_mix.mix_ids = false;
  const auto a = run_multi_round(s1, with_mix, 42);
  const auto b = run_multi_round(s2, without_mix, 42);
  EXPECT_EQ(a.metrics.failure_rate, b.metrics.failure_rate);
  EXPECT_EQ(a.mean_channels_used, b.mean_channels_used);
}

TEST(MultiRound, LinkingSharpensTheAttack) {
  // Without mixing, 8 linked rounds must not attack WORSE than a single
  // round (majority voting filters disguise noise).
  Scenario s1(small_config()), s2(small_config());
  MultiRoundConfig single, linked;
  single.rounds = 1;
  single.mix_ids = false;
  linked.rounds = 8;
  linked.mix_ids = false;
  const auto one = run_multi_round(s1, single, 7);
  const auto many = run_multi_round(s2, linked, 7);
  EXPECT_LE(many.metrics.failure_rate, one.metrics.failure_rate);
}

TEST(MultiRound, MixingCapsTheAttacker) {
  // With mixing, many rounds must not help much: failure rate stays in
  // the neighbourhood of the single-round level rather than collapsing.
  Scenario s1(small_config()), s2(small_config());
  MultiRoundConfig single, mixed;
  single.rounds = 1;
  mixed.rounds = 8;
  mixed.mix_ids = true;
  const auto one = run_multi_round(s1, single, 11);
  const auto many = run_multi_round(s2, mixed, 11);
  EXPECT_GE(many.metrics.failure_rate, one.metrics.failure_rate * 0.5);
}

TEST(MultiRound, DeterministicPerSeed) {
  Scenario s1(small_config()), s2(small_config());
  MultiRoundConfig cfg;
  cfg.rounds = 3;
  cfg.mix_ids = false;
  const auto a = run_multi_round(s1, cfg, 99);
  const auto b = run_multi_round(s2, cfg, 99);
  EXPECT_EQ(a.metrics.failure_rate, b.metrics.failure_rate);
  EXPECT_EQ(a.metrics.mean_possible_cells, b.metrics.mean_possible_cells);
  EXPECT_EQ(a.mean_channels_used, b.mean_channels_used);
}

}  // namespace
}  // namespace lppa::sim
