#include "core/ttp.h"

#include <gtest/gtest.h>

namespace lppa::core {
namespace {

struct TtpTest : ::testing::Test {
  PpbsBidConfig cfg = PpbsBidConfig::advanced(
      15, 3, 4, ZeroDisguisePolicy::uniform(15, 0.5));
  TrustedThirdParty ttp{cfg, 4242};
  BidSubmitter submitter{cfg, ttp.su_keys().gb_master, ttp.su_keys().gc};
  Rng rng{1};

  ChargeQuery query_for(ChannelId r, Money bid) {
    const auto sub = submitter.encode_bid(r, bid, rng);
    return ChargeQuery{/*user=*/3, r, sub.sealed, sub.value_family, 0,
                       std::nullopt, std::nullopt, 0};
  }
};

TEST_F(TtpTest, KeysAreDeterministicPerSeed) {
  const TrustedThirdParty again(cfg, 4242);
  EXPECT_EQ(again.su_keys().g0, ttp.su_keys().g0);
  EXPECT_EQ(again.su_keys().gb_master, ttp.su_keys().gb_master);
  EXPECT_EQ(again.su_keys().gc, ttp.su_keys().gc);
  const TrustedThirdParty other(cfg, 4243);
  EXPECT_NE(other.su_keys().gc, ttp.su_keys().gc);
}

TEST_F(TtpTest, KeysAreMutuallyDistinct) {
  const auto keys = ttp.su_keys();
  EXPECT_NE(keys.g0, keys.gb_master);
  EXPECT_NE(keys.g0, keys.gc);
  EXPECT_NE(keys.gb_master, keys.gc);
}

TEST_F(TtpTest, PositiveBidChargedFirstPrice) {
  const auto result = ttp.process(query_for(2, 9));
  EXPECT_TRUE(result.valid);
  EXPECT_FALSE(result.manipulated);
  EXPECT_EQ(result.charge, 9u);
  EXPECT_EQ(result.user, 3u);
  EXPECT_EQ(result.channel, 2u);
}

TEST_F(TtpTest, TrueZeroIsInvalid) {
  // Run several times: zeros are sometimes disguised, sometimes kept in
  // the zero band — both must come back invalid with no charge.
  for (int i = 0; i < 30; ++i) {
    const auto result = ttp.process(query_for(0, 0));
    EXPECT_FALSE(result.valid);
    EXPECT_FALSE(result.manipulated);
    EXPECT_EQ(result.charge, 0u);
  }
}

TEST_F(TtpTest, TamperedPrefixFamilyFlagsManipulation) {
  auto query = query_for(1, 7);
  // Swap in the prefix family of a different (higher) price.
  const auto other = submitter.encode_bid(1, 12, rng);
  query.value_family = other.value_family;
  const auto result = ttp.process(query);
  EXPECT_TRUE(result.manipulated);
  EXPECT_FALSE(result.valid);
  EXPECT_EQ(result.charge, 0u);
}

TEST_F(TtpTest, ForeignSealedBoxFlagsManipulation) {
  auto query = query_for(1, 7);
  Rng key_rng(99);
  const crypto::SecretKey wrong = crypto::SecretKey::generate(key_rng);
  const crypto::SealedBox wrong_box(wrong);
  const Bytes plain = SealedBidPayload{7, 40}.serialize();
  query.sealed = wrong_box.seal(plain, rng);
  const auto result = ttp.process(query);
  EXPECT_TRUE(result.manipulated);
}

TEST_F(TtpTest, InconsistentPayloadFlagsManipulation) {
  // Seal a payload whose scaled value does not match the claimed bid's
  // slot, with a consistent prefix family: a cheating bidder trying to
  // win at the price of 12 while paying 2.
  const crypto::SealedBox box(ttp.su_keys().gc);
  const std::uint64_t scaled_for_12 = cfg.enc.cr * (12 + cfg.enc.rd);
  const Bytes plain = SealedBidPayload{2, scaled_for_12}.serialize();
  const auto family = prefix::HashedPrefixSet::of_value(
      derive_channel_key(ttp.su_keys().gb_master, 0, true), scaled_for_12,
      cfg.enc.scaled_width());
  ChargeQuery query{0, 0, box.seal(plain, rng), family, 0, std::nullopt,
                    std::nullopt, 0};
  const auto result = ttp.process(query);
  EXPECT_TRUE(result.manipulated);
}

TEST_F(TtpTest, OverflowingTrueBidFlagsManipulation) {
  const crypto::SealedBox box(ttp.su_keys().gc);
  const std::uint64_t scaled = cfg.enc.cr * (16 + cfg.enc.rd);
  const Bytes plain = SealedBidPayload{16, scaled}.serialize();
  const auto family = prefix::HashedPrefixSet::of_value(
      derive_channel_key(ttp.su_keys().gb_master, 0, true), scaled,
      cfg.enc.scaled_width());
  ChargeQuery query{0, 0, box.seal(plain, rng), family, 0, std::nullopt,
                    std::nullopt, 0};
  EXPECT_TRUE(ttp.process(query).manipulated);
}

TEST_F(TtpTest, WrongChannelKeyFlagsManipulation) {
  // A submission for channel 2 replayed as a channel-5 charge query fails
  // the per-channel prefix verification.
  const auto sub = submitter.encode_bid(2, 9, rng);
  ChargeQuery query{0, /*channel=*/5, sub.sealed, sub.value_family, 0,
                    std::nullopt, std::nullopt, 0};
  EXPECT_TRUE(ttp.process(query).manipulated);
}

TEST_F(TtpTest, BatchProcessingCountsLoad) {
  std::vector<ChargeQuery> batch;
  batch.push_back(query_for(0, 5));
  batch.push_back(query_for(1, 0));
  batch.push_back(query_for(2, 15));
  const auto results = ttp.process_batch(batch);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].valid);
  EXPECT_FALSE(results[1].valid);
  EXPECT_TRUE(results[2].valid);
  EXPECT_EQ(results[2].charge, 15u);
  EXPECT_EQ(ttp.batches_processed(), 1u);
  EXPECT_EQ(ttp.queries_processed(), 3u);
  ttp.process_batch({});
  EXPECT_EQ(ttp.batches_processed(), 2u);
  EXPECT_EQ(ttp.queries_processed(), 3u);
}

struct SecondPriceTest : ::testing::Test {
  PpbsBidConfig cfg = PpbsBidConfig::advanced(15, 3, 4,
                                              ZeroDisguisePolicy::none(15));
  TrustedThirdParty ttp{cfg, 808, ChargingRule::kSecondPrice};
  BidSubmitter submitter{cfg, ttp.su_keys().gb_master, ttp.su_keys().gc};
  Rng rng{2};

  ChargeQuery query_with_runner_up(Money winner, Money runner_up) {
    const auto w = submitter.encode_bid(0, winner, rng);
    const auto r = submitter.encode_bid(0, runner_up, rng);
    ChargeQuery q{0, 0, w.sealed, w.value_family, 0, r.sealed,
                  r.value_family, 0};
    return q;
  }
};

TEST_F(SecondPriceTest, WinnerPaysRunnerUpPrice) {
  const auto result = ttp.process(query_with_runner_up(12, 7));
  EXPECT_TRUE(result.valid);
  EXPECT_FALSE(result.manipulated);
  EXPECT_EQ(result.charge, 7u);
}

TEST_F(SecondPriceTest, LoneWinnerPaysNothing) {
  const auto sub = submitter.encode_bid(0, 12, rng);
  const auto result =
      ttp.process(ChargeQuery{0, 0, sub.sealed, sub.value_family, 0,
                              std::nullopt, std::nullopt, 0});
  EXPECT_TRUE(result.valid);
  EXPECT_EQ(result.charge, 0u);
}

TEST_F(SecondPriceTest, ZeroRunnerUpMeansFreeWin) {
  const auto result = ttp.process(query_with_runner_up(12, 0));
  EXPECT_TRUE(result.valid);
  EXPECT_EQ(result.charge, 0u);
}

TEST_F(SecondPriceTest, ChargeNeverExceedsOwnBid) {
  // Tie-break noise can hand the auctioneer a "runner-up" with the same
  // true price; the charge is capped at the winner's own bid.
  const auto result = ttp.process(query_with_runner_up(7, 7));
  EXPECT_TRUE(result.valid);
  EXPECT_LE(result.charge, 7u);
}

TEST_F(SecondPriceTest, ZeroWinnerStillInvalid) {
  const auto result = ttp.process(query_with_runner_up(0, 5));
  EXPECT_FALSE(result.valid);
  EXPECT_EQ(result.charge, 0u);
}

TEST_F(SecondPriceTest, TamperedRunnerUpFlagsManipulation) {
  auto query = query_with_runner_up(12, 7);
  const auto other = submitter.encode_bid(0, 3, rng);
  query.runner_up_family = other.value_family;  // family/sealed mismatch
  const auto result = ttp.process(query);
  EXPECT_TRUE(result.manipulated);
  EXPECT_FALSE(result.valid);
}

TEST_F(SecondPriceTest, FirstPriceRuleIgnoresRunnerUp) {
  TrustedThirdParty first(cfg, 808, ChargingRule::kFirstPrice);
  const BidSubmitter fp_submitter(cfg, first.su_keys().gb_master,
                                  first.su_keys().gc);
  const auto w = fp_submitter.encode_bid(0, 12, rng);
  const auto r = fp_submitter.encode_bid(0, 7, rng);
  const auto result = first.process(
      ChargeQuery{0, 0, w.sealed, w.value_family, 0, r.sealed,
                  r.value_family, 0});
  EXPECT_TRUE(result.valid);
  EXPECT_EQ(result.charge, 12u);
}

TEST_F(TtpTest, BasicSchemeChargingWorksToo) {
  const auto basic_cfg = PpbsBidConfig::basic(14);
  TrustedThirdParty basic_ttp(basic_cfg, 5);
  const BidSubmitter basic_submitter(basic_cfg,
                                     basic_ttp.su_keys().gb_master,
                                     basic_ttp.su_keys().gc);
  const auto sub = basic_submitter.encode_bid(3, 11, rng);
  const auto result =
      basic_ttp.process(ChargeQuery{1, 3, sub.sealed, sub.value_family, 0,
                                    std::nullopt, std::nullopt, 0});
  EXPECT_TRUE(result.valid);
  EXPECT_EQ(result.charge, 11u);
}

}  // namespace
}  // namespace lppa::core
