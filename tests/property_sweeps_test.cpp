// Cross-module property sweeps (TEST_P over widths, sizes, and seeds):
// broad randomised invariants that complement the per-module unit tests.
#include <gtest/gtest.h>

#include <set>

#include "auction/bid_matrix.h"
#include "core/ppbs_location.h"
#include "crypto/paillier.h"
#include "geo/synthetic_fcc.h"
#include "prefix/hashed_set.h"

namespace lppa {
namespace {

// ---------------------------------------------------------------- prefix

class HashedSetWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(HashedSetWidthSweep, MaskedMembershipMatchesArithmetic) {
  const int w = GetParam();
  Rng rng(static_cast<std::uint64_t>(w) * 31 + 5);
  const auto key = crypto::SecretKey::generate(rng);
  const std::uint64_t top =
      (w >= 63) ? ~0ULL >> 1 : ((std::uint64_t{1} << w) - 1);
  for (int round = 0; round < 60; ++round) {
    std::uint64_t a = rng.below(top + 1);
    std::uint64_t b = rng.below(top + 1);
    if (a > b) std::swap(a, b);
    const std::uint64_t x = rng.below(top + 1);
    auto family = prefix::HashedPrefixSet::of_value(key, x, w);
    auto range = prefix::HashedPrefixSet::of_range(key, a, b, w);
    range.pad_to(prefix::max_range_prefixes(w), rng);
    EXPECT_EQ(family.intersects(range), x >= a && x <= b)
        << "w=" << w << " x=" << x << " [" << a << "," << b << "]";
    // Serialisation round-trip preserves the answer.
    ByteWriter buf;
    range.serialize(buf);
    ByteReader r(std::span<const std::uint8_t>(buf.data()));
    const auto restored = prefix::HashedPrefixSet::deserialize(r);
    EXPECT_EQ(family.intersects(restored), x >= a && x <= b);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, HashedSetWidthSweep,
                         ::testing::Values(4, 7, 11, 17, 29, 45, 62));

// ---------------------------------------------------------------- ppbs

class LocationWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(LocationWidthSweep, ConflictPredicateHoldsAcrossWidths) {
  const int w = GetParam();
  Rng rng(static_cast<std::uint64_t>(w) * 101 + 9);
  const auto g0 = crypto::SecretKey::generate(rng);
  const std::uint64_t lambda = 1 + rng.below(std::uint64_t{1} << (w - 3));
  const core::PpbsLocation protocol(g0, w, lambda);
  const std::uint64_t coord_top = (std::uint64_t{1} << w) - 1 - 2 * lambda;
  for (int round = 0; round < 40; ++round) {
    const auction::SuLocation a{rng.below(coord_top + 1),
                                rng.below(coord_top + 1)};
    const auction::SuLocation b{rng.below(coord_top + 1),
                                rng.below(coord_top + 1)};
    const auto sa = protocol.submit(a, rng);
    const auto sb = protocol.submit(b, rng);
    EXPECT_EQ(core::PpbsLocation::conflicts(sa, sb),
              auction::locations_conflict(a, b, lambda))
        << "w=" << w << " lambda=" << lambda;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, LocationWidthSweep,
                         ::testing::Values(8, 12, 17, 24, 33));

// --------------------------------------------------------------- auction

class AllocationSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllocationSeedSweep, GreedyInvariantsHoldOnRandomWorlds) {
  Rng rng(GetParam());
  for (int round = 0; round < 8; ++round) {
    const std::size_t n = 2 + rng.below(30);
    const std::size_t k = 1 + rng.below(6);
    std::vector<auction::SuLocation> locs;
    std::vector<auction::BidVector> bids;
    for (std::size_t i = 0; i < n; ++i) {
      locs.push_back({rng.below(1500), rng.below(1500)});
      auction::BidVector bv(k);
      for (auto& b : bv) b = rng.below(16);
      bids.push_back(bv);
    }
    const std::uint64_t lambda = 20 + rng.below(300);
    const auto g = auction::ConflictGraph::from_locations(locs, lambda);

    auction::BidMatrix table(bids, k);
    Rng alloc_rng(GetParam() * 13 + round);
    const auto awards = auction::greedy_allocate(table, g, alloc_rng);

    // Table fully drained; at most one award per user; channel-sharing
    // winners mutually conflict-free; the number of awards on a channel
    // never exceeds a maximal independent set bound (trivially n).
    EXPECT_TRUE(table.empty());
    std::set<auction::UserId> winners;
    for (const auto& a : awards) {
      EXPECT_TRUE(winners.insert(a.user).second);
      EXPECT_LT(a.user, n);
      EXPECT_LT(a.channel, k);
    }
    for (std::size_t i = 0; i < awards.size(); ++i) {
      for (std::size_t j = i + 1; j < awards.size(); ++j) {
        if (awards[i].channel == awards[j].channel) {
          EXPECT_FALSE(g.conflicts(awards[i].user, awards[j].user));
        }
      }
    }
    // Sweep-line graph agrees on the same world.
    EXPECT_EQ(auction::ConflictGraph::from_locations_sweep(locs, lambda), g);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocationSeedSweep,
                         ::testing::Values(2, 4, 6, 10, 14, 22));

// ---------------------------------------------------------------- crypto

class PaillierHomomorphismSweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PaillierHomomorphismSweep, CompositeHomomorphicExpressions) {
  Rng rng(GetParam() * 1009 + 3);
  const auto keys = crypto::paillier_keygen(14, rng);
  for (int round = 0; round < 20; ++round) {
    const std::uint64_t a = rng.below(keys.pub.n);
    const std::uint64_t b = rng.below(keys.pub.n);
    const std::uint64_t k1 = rng.below(50);
    const std::uint64_t k2 = rng.below(50);
    // Dec(E(a)^k1 * E(b)^k2) == k1*a + k2*b (mod n).
    const std::uint64_t combined = keys.pub.add(
        keys.pub.scale(keys.pub.encrypt(a, rng), k1),
        keys.pub.scale(keys.pub.encrypt(b, rng), k2));
    const auto expected = static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(a) * k1 +
         static_cast<__uint128_t>(b) * k2) %
        keys.pub.n);
    EXPECT_EQ(keys.priv.decrypt(combined, keys.pub), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaillierHomomorphismSweep,
                         ::testing::Values(1, 2, 3, 4));

// ------------------------------------------------------------------- geo

class DatasetRoundTripSweep : public ::testing::TestWithParam<int> {};

TEST_P(DatasetRoundTripSweep, SnapshotsAreFaithfulAcrossAreas) {
  geo::SyntheticFccConfig cfg;
  cfg.rows = 25;
  cfg.cols = 25;
  cfg.num_channels = 6;
  const auto ds = geo::generate_dataset(geo::area_preset(GetParam()), cfg,
                                        static_cast<std::uint64_t>(GetParam()));
  const auto restored = geo::Dataset::deserialize(ds.serialize());
  ASSERT_EQ(restored.channel_count(), ds.channel_count());
  for (std::size_t r = 0; r < ds.channel_count(); ++r) {
    // Availability is exactly preserved (centi-dB quantisation cannot
    // move a value across the threshold by more than 0.005 dB, and the
    // threshold itself is quantised identically).
    EXPECT_EQ(restored.availability(r), ds.availability(r)) << "ch " << r;
    for (std::size_t i = 0; i < ds.grid().cell_count(); i += 37) {
      EXPECT_NEAR(restored.channel(r).rssi_dbm[i], ds.channel(r).rssi_dbm[i],
                  0.005);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Areas, DatasetRoundTripSweep,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace lppa
