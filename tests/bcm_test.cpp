#include "core/bcm.h"

#include <gtest/gtest.h>

#include "geo/synthetic_fcc.h"

namespace lppa::core {
namespace {

// A 2x2 world with hand-placed availability:
//   channel 0 available in cells {0, 1}
//   channel 1 available in cells {1, 3}
//   channel 2 available in cells {0, 1, 2, 3}
geo::Dataset tiny_dataset() {
  const geo::Grid g(2, 2, 100.0);
  geo::Dataset ds(g, -81.0);
  auto raster = [&](std::initializer_list<std::size_t> free_cells) {
    std::vector<double> rssi(4, -50.0);  // covered by default
    for (std::size_t i : free_cells) rssi[i] = -120.0;
    return finalize_channel(g, std::move(rssi), -81.0);
  };
  ds.add_channel(raster({0, 1}));
  ds.add_channel(raster({1, 3}));
  ds.add_channel(raster({0, 1, 2, 3}));
  return ds;
}

TEST(BcmAttack, NoPositiveBidsLeavesFullMap) {
  const auto ds = tiny_dataset();
  const BcmAttack bcm(ds);
  EXPECT_EQ(bcm.run({0, 0, 0}).count(), 4u);
}

TEST(BcmAttack, SingleChannelGivesItsAvailability) {
  const auto ds = tiny_dataset();
  const BcmAttack bcm(ds);
  const CellSet p = bcm.run({5, 0, 0});
  EXPECT_EQ(p, ds.availability(0));
}

TEST(BcmAttack, IntersectionNarrowsTheSet) {
  const auto ds = tiny_dataset();
  const BcmAttack bcm(ds);
  const CellSet p = bcm.run({5, 3, 0});
  EXPECT_EQ(p.count(), 1u);
  EXPECT_TRUE(p.contains(1));
}

TEST(BcmAttack, UninformativeChannelDoesNotNarrow) {
  const auto ds = tiny_dataset();
  const BcmAttack bcm(ds);
  EXPECT_EQ(bcm.run({5, 3, 0}), bcm.run({5, 3, 9}));
}

TEST(BcmAttack, BidValueIrrelevantOnlySupportMatters) {
  const auto ds = tiny_dataset();
  const BcmAttack bcm(ds);
  EXPECT_EQ(bcm.run({1, 1, 0}), bcm.run({15, 9, 0}));
}

TEST(BcmAttack, RunWithChannelsMatchesBidPath) {
  const auto ds = tiny_dataset();
  const BcmAttack bcm(ds);
  EXPECT_EQ(bcm.run_with_channels({0, 1}), bcm.run({7, 2, 0}));
}

TEST(BcmAttack, ContradictoryChannelsYieldEmptySet) {
  const geo::Grid g(2, 2, 100.0);
  geo::Dataset ds(g, -81.0);
  auto raster = [&](std::initializer_list<std::size_t> free_cells) {
    std::vector<double> rssi(4, -50.0);
    for (std::size_t i : free_cells) rssi[i] = -120.0;
    return finalize_channel(g, std::move(rssi), -81.0);
  };
  ds.add_channel(raster({0}));
  ds.add_channel(raster({3}));
  const BcmAttack bcm(ds);
  EXPECT_TRUE(bcm.run_with_channels({0, 1}).empty());
}

TEST(BcmAttack, RejectsOversizedBidVector) {
  const auto ds = tiny_dataset();
  const BcmAttack bcm(ds);
  EXPECT_THROW(bcm.run({1, 1, 1, 1}), LppaError);
}

TEST(BcmAttack, ConsistentSkipsEmptyingChannels) {
  const geo::Grid g(2, 2, 100.0);
  geo::Dataset ds(g, -81.0);
  auto raster = [&](std::initializer_list<std::size_t> free_cells) {
    std::vector<double> rssi(4, -50.0);
    for (std::size_t i : free_cells) rssi[i] = -120.0;
    return finalize_channel(g, std::move(rssi), -81.0);
  };
  ds.add_channel(raster({0, 1}));  // channel 0
  ds.add_channel(raster({2, 3}));  // channel 1: disjoint from 0
  ds.add_channel(raster({0}));     // channel 2
  const BcmAttack bcm(ds);
  // Strict intersection of {0,1} is empty; the consistent variant keeps
  // the first channel and skips the contradicting one.
  EXPECT_TRUE(bcm.run_with_channels({0, 1}).empty());
  const CellSet kept = bcm.run_consistent({0, 1});
  EXPECT_EQ(kept, ds.availability(0));
  // Order matters: trusting channel 1 first keeps channel 1's region.
  EXPECT_EQ(bcm.run_consistent({1, 0}), ds.availability(1));
  // Consistent channels still narrow normally.
  EXPECT_EQ(bcm.run_consistent({0, 2}).count(), 1u);
}

TEST(BcmAttack, ConsistentEqualsStrictWhenChannelsAgree) {
  const auto ds = tiny_dataset();
  const BcmAttack bcm(ds);
  EXPECT_EQ(bcm.run_consistent({0, 1}), bcm.run_with_channels({0, 1}));
  EXPECT_EQ(bcm.run_consistent({}), bcm.run_with_channels({}));
}

TEST(BcmAttack, TruthfulBidderAlwaysInsideResult) {
  // Property: when bids come from true availability, the victim's cell is
  // always in the BCM output (the attack never "fails" on honest input).
  const auto cfg = [] {
    geo::SyntheticFccConfig c;
    c.rows = 30;
    c.cols = 30;
    c.num_channels = 15;
    return c;
  }();
  const auto ds = geo::generate_dataset(geo::area_preset(4), cfg, 5);
  const BcmAttack bcm(ds);
  Rng rng(77);
  for (int round = 0; round < 50; ++round) {
    const std::size_t cell = rng.below(ds.grid().cell_count());
    auction::BidVector bids(ds.channel_count(), 0);
    for (std::size_t r = 0; r < ds.channel_count(); ++r) {
      if (ds.availability(r).contains(cell) && rng.bernoulli(0.7)) {
        bids[r] = 1 + rng.below(15);
      }
    }
    EXPECT_TRUE(bcm.run(bids).contains(cell));
  }
}

}  // namespace
}  // namespace lppa::core
