#include "auction/conflict.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace lppa::auction {
namespace {

TEST(LocationsConflict, InclusiveThreshold) {
  const std::uint64_t lambda = 5;  // conflict iff both deltas <= 10
  EXPECT_TRUE(locations_conflict({100, 100}, {100, 100}, lambda));
  EXPECT_TRUE(locations_conflict({100, 100}, {110, 100}, lambda));
  EXPECT_TRUE(locations_conflict({100, 100}, {110, 110}, lambda));
  EXPECT_FALSE(locations_conflict({100, 100}, {111, 100}, lambda));
  EXPECT_FALSE(locations_conflict({100, 100}, {100, 111}, lambda));
}

TEST(LocationsConflict, RequiresBothAxes) {
  const std::uint64_t lambda = 5;
  // Close in x, far in y.
  EXPECT_FALSE(locations_conflict({0, 0}, {1, 100}, lambda));
  // Close in y, far in x.
  EXPECT_FALSE(locations_conflict({0, 0}, {100, 1}, lambda));
}

TEST(LocationsConflict, Symmetric) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const SuLocation a{rng.below(1000), rng.below(1000)};
    const SuLocation b{rng.below(1000), rng.below(1000)};
    const std::uint64_t lambda = rng.below(50) + 1;
    EXPECT_EQ(locations_conflict(a, b, lambda),
              locations_conflict(b, a, lambda));
  }
}

TEST(ConflictGraph, RejectsEmpty) {
  EXPECT_THROW(ConflictGraph g(0), LppaError);
}

TEST(ConflictGraph, AddAndQuery) {
  ConflictGraph g(4);
  g.add_conflict(0, 2);
  EXPECT_TRUE(g.conflicts(0, 2));
  EXPECT_TRUE(g.conflicts(2, 0));
  EXPECT_FALSE(g.conflicts(0, 1));
  EXPECT_FALSE(g.conflicts(0, 0));  // no self conflicts
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(ConflictGraph, RejectsSelfAndOutOfRange) {
  ConflictGraph g(3);
  EXPECT_THROW(g.add_conflict(1, 1), LppaError);
  EXPECT_THROW(g.add_conflict(0, 3), LppaError);
  EXPECT_THROW(g.conflicts(3, 0), LppaError);
  EXPECT_THROW(g.neighbors(3), LppaError);
}

TEST(ConflictGraph, NeighborsBitset) {
  ConflictGraph g(5);
  g.add_conflict(0, 1);
  g.add_conflict(0, 3);
  const auto& n0 = g.neighbors(0);
  EXPECT_EQ(n0.count(), 2u);
  EXPECT_TRUE(n0.contains(1));
  EXPECT_TRUE(n0.contains(3));
  EXPECT_EQ(g.neighbors(2).count(), 0u);
}

TEST(ConflictGraph, FromLocationsMatchesPredicate) {
  Rng rng(17);
  std::vector<SuLocation> locs;
  for (int i = 0; i < 40; ++i) {
    locs.push_back({rng.below(500), rng.below(500)});
  }
  const std::uint64_t lambda = 30;
  const ConflictGraph g = ConflictGraph::from_locations(locs, lambda);
  for (std::size_t i = 0; i < locs.size(); ++i) {
    for (std::size_t j = 0; j < locs.size(); ++j) {
      if (i == j) continue;
      EXPECT_EQ(g.conflicts(i, j),
                locations_conflict(locs[i], locs[j], lambda))
          << i << "," << j;
    }
  }
}

TEST(ConflictGraph, SweepVariantMatchesQuadraticExactly) {
  Rng rng(23);
  for (int round = 0; round < 20; ++round) {
    std::vector<SuLocation> locs;
    const std::size_t n = 1 + rng.below(60);
    for (std::size_t i = 0; i < n; ++i) {
      locs.push_back({rng.below(2000), rng.below(2000)});
    }
    const std::uint64_t lambda = rng.below(200);
    EXPECT_EQ(ConflictGraph::from_locations_sweep(locs, lambda),
              ConflictGraph::from_locations(locs, lambda))
        << "round " << round;
  }
}

TEST(ConflictGraph, SweepHandlesDuplicatesAndTies) {
  // Identical coordinates and exact-2λ gaps are the sweep's edge cases.
  std::vector<SuLocation> locs = {{10, 10}, {10, 10}, {30, 10}, {31, 10}};
  const std::uint64_t lambda = 10;  // conflict iff gap <= 20
  EXPECT_EQ(ConflictGraph::from_locations_sweep(locs, lambda),
            ConflictGraph::from_locations(locs, lambda));
}

TEST(ConflictGraph, DenseClusterFullyConnected) {
  // All users in one tiny cluster conflict pairwise.
  std::vector<SuLocation> locs = {{10, 10}, {11, 12}, {12, 11}, {9, 9}};
  const ConflictGraph g = ConflictGraph::from_locations(locs, 10);
  EXPECT_EQ(g.edge_count(), 6u);  // complete K4
}

TEST(ConflictGraph, SparseUsersHaveNoEdges) {
  std::vector<SuLocation> locs = {{0, 0}, {1000, 0}, {0, 1000}, {1000, 1000}};
  const ConflictGraph g = ConflictGraph::from_locations(locs, 10);
  EXPECT_EQ(g.edge_count(), 0u);
}

}  // namespace
}  // namespace lppa::auction
