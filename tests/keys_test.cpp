#include "crypto/keys.h"

#include <gtest/gtest.h>

#include <set>

namespace lppa::crypto {
namespace {

TEST(SecretKey, GenerateIsDeterministicPerRngState) {
  lppa::Rng a(42), b(42);
  EXPECT_EQ(SecretKey::generate(a), SecretKey::generate(b));
}

TEST(SecretKey, ConsecutiveGenerationsDiffer) {
  lppa::Rng rng(42);
  const SecretKey k1 = SecretKey::generate(rng);
  const SecretKey k2 = SecretKey::generate(rng);
  EXPECT_NE(k1, k2);
}

TEST(SecretKey, GeneratedBytesAreNotRawRngOutput) {
  // The key must be whitened: its first 8 bytes must not equal the next
  // raw RNG word of an identically-seeded generator.
  lppa::Rng rng(7);
  lppa::Rng probe(7);
  const std::uint64_t raw = probe.next();
  const SecretKey key = SecretKey::generate(rng);
  std::uint64_t head = 0;
  for (int i = 0; i < 8; ++i) {
    head |= static_cast<std::uint64_t>(key.bytes()[static_cast<std::size_t>(i)]) << (8 * i);
  }
  EXPECT_NE(head, raw);
}

TEST(SecretKey, FromBytesRoundTrip) {
  Bytes raw(32);
  for (std::size_t i = 0; i < raw.size(); ++i) raw[i] = static_cast<std::uint8_t>(i * 3);
  const SecretKey key = SecretKey::from_bytes(raw);
  EXPECT_TRUE(std::equal(raw.begin(), raw.end(), key.bytes().begin()));
}

TEST(SecretKey, FromBytesRejectsWrongLength) {
  EXPECT_THROW(SecretKey::from_bytes(Bytes(31)), LppaError);
  EXPECT_THROW(SecretKey::from_bytes(Bytes(33)), LppaError);
  EXPECT_THROW(SecretKey::from_bytes(Bytes{}), LppaError);
}

TEST(SecretKey, DeriveIsDeterministic) {
  lppa::Rng rng(1);
  const SecretKey master = SecretKey::generate(rng);
  EXPECT_EQ(master.derive("gb", 5), master.derive("gb", 5));
}

TEST(SecretKey, DeriveSeparatesIndices) {
  lppa::Rng rng(2);
  const SecretKey master = SecretKey::generate(rng);
  std::set<std::string> seen;
  for (std::uint64_t r = 0; r < 200; ++r) {
    const SecretKey sub = master.derive("gb", r);
    const std::string hex =
        to_hex(std::span<const std::uint8_t>(sub.bytes()));
    EXPECT_TRUE(seen.insert(hex).second) << "collision at index " << r;
  }
}

TEST(SecretKey, DeriveSeparatesLabels) {
  lppa::Rng rng(3);
  const SecretKey master = SecretKey::generate(rng);
  EXPECT_NE(master.derive("enc", 0), master.derive("mac", 0));
  EXPECT_NE(master.derive("gb", 0), master.derive("g0", 0));
}

TEST(SecretKey, DeriveDiffersFromMaster) {
  lppa::Rng rng(4);
  const SecretKey master = SecretKey::generate(rng);
  EXPECT_NE(master.derive("x", 0), master);
}

TEST(SecretKey, DefaultConstructedIsAllZero) {
  const SecretKey key;
  for (const auto b : key.bytes()) EXPECT_EQ(b, 0);
}

}  // namespace
}  // namespace lppa::crypto
