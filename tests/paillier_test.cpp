#include "crypto/paillier.h"

#include <gtest/gtest.h>

#include <numeric>

namespace lppa::crypto {
namespace {

TEST(Primality, KnownSmallValues) {
  EXPECT_FALSE(is_prime_u64(0));
  EXPECT_FALSE(is_prime_u64(1));
  EXPECT_TRUE(is_prime_u64(2));
  EXPECT_TRUE(is_prime_u64(3));
  EXPECT_FALSE(is_prime_u64(4));
  EXPECT_TRUE(is_prime_u64(97));
  EXPECT_FALSE(is_prime_u64(91));  // 7 * 13
  EXPECT_TRUE(is_prime_u64(7919));
}

TEST(Primality, CarmichaelNumbersRejected) {
  for (std::uint64_t carmichael : {561ULL, 1105ULL, 1729ULL, 2465ULL,
                                   2821ULL, 6601ULL, 8911ULL}) {
    EXPECT_FALSE(is_prime_u64(carmichael)) << carmichael;
  }
}

TEST(Primality, LargeKnownValues) {
  EXPECT_TRUE(is_prime_u64(2147483647ULL));          // 2^31 - 1
  EXPECT_TRUE(is_prime_u64(4294967291ULL));          // largest 32-bit prime
  EXPECT_FALSE(is_prime_u64(4294967295ULL));         // 2^32 - 1 composite
  EXPECT_TRUE(is_prime_u64(1000000007ULL));
  EXPECT_FALSE(is_prime_u64(1000000007ULL * 3));
}

TEST(Primality, AgreesWithTrialDivisionBelow2000) {
  auto trial = [](std::uint64_t n) {
    if (n < 2) return false;
    for (std::uint64_t d = 2; d * d <= n; ++d) {
      if (n % d == 0) return false;
    }
    return true;
  };
  for (std::uint64_t n = 0; n < 2000; ++n) {
    EXPECT_EQ(is_prime_u64(n), trial(n)) << n;
  }
}

TEST(RandomPrime, RespectsBitWidth) {
  Rng rng(7);
  for (int bits : {4, 8, 12, 16, 24, 32}) {
    for (int i = 0; i < 10; ++i) {
      const std::uint64_t p = random_prime(bits, rng);
      EXPECT_TRUE(is_prime_u64(p));
      EXPECT_GE(p, std::uint64_t{1} << (bits - 1));
      EXPECT_LT(p, std::uint64_t{1} << bits);
    }
  }
  EXPECT_THROW(random_prime(2, rng), LppaError);
  EXPECT_THROW(random_prime(33, rng), LppaError);
}

TEST(RandomPrime, MinimumWidthThreeBits) {
  // bits=3 is the documented floor: candidates live in [4, 7] and the
  // only odd primes there are 5 and 7.
  Rng rng(11);
  for (int i = 0; i < 25; ++i) {
    const std::uint64_t p = random_prime(3, rng);
    EXPECT_TRUE(p == 5 || p == 7) << p;
  }
}

TEST(ModPow, MatchesNaive) {
  EXPECT_EQ(modpow_u64(2, 10, 1000), 24u);
  EXPECT_EQ(modpow_u64(7, 0, 13), 1u);
  EXPECT_EQ(modpow_u64(0, 5, 13), 0u);
  EXPECT_EQ(modpow_u64(5, 117, 19), [&] {
    std::uint64_t r = 1;
    for (int i = 0; i < 117; ++i) r = r * 5 % 19;
    return r;
  }());
  // Fermat: a^(p-1) = 1 mod p.
  EXPECT_EQ(modpow_u64(123456789, 1000000006, 1000000007), 1u);
}

TEST(ModInv, InvertsCoprimes) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t m = 2 + rng.below(1 << 20);
    const std::uint64_t a = 1 + rng.below(m - 1);
    const auto inv = modinv_u64(a, m);
    if (std::gcd(a, m) == 1) {
      ASSERT_TRUE(inv.has_value());
      EXPECT_EQ(a * *inv % m, 1u);
    } else {
      EXPECT_FALSE(inv.has_value());
    }
  }
}

TEST(ModInv, NonCoprimeEdgesReturnNullopt) {
  // The nullopt branch is what paillier_keygen's mu-inverse failure path
  // rides: L(g^lambda) not coprime with n retries the whole keygen
  // attempt instead of producing a bogus mu.
  EXPECT_FALSE(modinv_u64(6, 9).has_value());
  EXPECT_FALSE(modinv_u64(0, 7).has_value());
  EXPECT_FALSE(modinv_u64(4, 8).has_value());
  ASSERT_TRUE(modinv_u64(1, 2).has_value());
  EXPECT_EQ(*modinv_u64(1, 2), 1u);
  EXPECT_THROW(modinv_u64(3, 1), LppaError);  // modulus must exceed 1
}

TEST(PaillierKeygen, FourBitKeysExerciseTheDistinctPrimeRetry) {
  // Exactly two 4-bit primes exist (11 and 13), so the q == p retry loop
  // must fire whenever the first two draws collide; every keypair ends up
  // with the same modulus 11 * 13 and lambda = lcm(10, 12).
  Rng rng(31);
  for (int i = 0; i < 10; ++i) {
    auto keys = paillier_keygen(4, rng);
    EXPECT_EQ(keys.pub.n, 143u);
    EXPECT_EQ(keys.pub.n_squared, 143u * 143u);
    EXPECT_EQ(keys.priv.lambda, 60u);
    EXPECT_EQ(keys.priv.decrypt(keys.pub.encrypt(100, rng), keys.pub), 100u);
  }
}

TEST(PaillierKeygen, PrimeBitsBoundsAreTyped) {
  Rng rng(5);
  for (const int bits : {3, 17}) {
    try {
      paillier_keygen(bits, rng);
      FAIL() << "prime_bits " << bits << " must be rejected";
    } catch (const LppaError& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kInvalidArgument) << bits;
    }
  }
}

struct PaillierTest : ::testing::Test {
  Rng rng{2024};
  PaillierKeyPair keys = paillier_keygen(12, rng);
};

TEST_F(PaillierTest, KeyStructure) {
  EXPECT_EQ(keys.pub.n_squared, keys.pub.n * keys.pub.n);
  EXPECT_GT(keys.priv.lambda, 0u);
  EXPECT_GT(keys.priv.mu, 0u);
}

TEST_F(PaillierTest, EncryptDecryptRoundTrip) {
  for (std::uint64_t m : {0ULL, 1ULL, 7ULL, 1000ULL}) {
    const std::uint64_t c = keys.pub.encrypt(m, rng);
    EXPECT_EQ(keys.priv.decrypt(c, keys.pub), m) << "m=" << m;
  }
  // Boundary plaintext n-1.
  const std::uint64_t top = keys.pub.n - 1;
  EXPECT_EQ(keys.priv.decrypt(keys.pub.encrypt(top, rng), keys.pub), top);
}

TEST_F(PaillierTest, EncryptionIsRandomised) {
  const std::uint64_t c1 = keys.pub.encrypt(42, rng);
  const std::uint64_t c2 = keys.pub.encrypt(42, rng);
  EXPECT_NE(c1, c2);
  EXPECT_EQ(keys.priv.decrypt(c1, keys.pub), 42u);
  EXPECT_EQ(keys.priv.decrypt(c2, keys.pub), 42u);
}

TEST_F(PaillierTest, RejectsOversizedPlaintext) {
  EXPECT_THROW(keys.pub.encrypt(keys.pub.n, rng), LppaError);
}

TEST_F(PaillierTest, OversizedPlaintextRejectionIsTyped) {
  // A plaintext >= n must be the typed kInvalidArgument rejection — never
  // a silent mod-n wrap that encrypts a different number than requested.
  for (const std::uint64_t m : {keys.pub.n, keys.pub.n + 1, ~std::uint64_t{0}}) {
    try {
      keys.pub.encrypt(m, rng);
      FAIL() << "plaintext " << m << " must be rejected";
    } catch (const LppaError& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kInvalidArgument) << m;
    }
  }
}

TEST_F(PaillierTest, HomomorphicAddition) {
  Rng value_rng(5);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t a = value_rng.below(keys.pub.n);
    const std::uint64_t b = value_rng.below(keys.pub.n);
    const std::uint64_t sum_ct =
        keys.pub.add(keys.pub.encrypt(a, rng), keys.pub.encrypt(b, rng));
    EXPECT_EQ(keys.priv.decrypt(sum_ct, keys.pub),
              (a + b) % keys.pub.n);
  }
}

TEST_F(PaillierTest, HomomorphicScalarMultiplication) {
  Rng value_rng(9);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t m = value_rng.below(keys.pub.n);
    const std::uint64_t k = value_rng.below(1000);
    const std::uint64_t ct = keys.pub.scale(keys.pub.encrypt(m, rng), k);
    EXPECT_EQ(keys.priv.decrypt(ct, keys.pub),
              static_cast<std::uint64_t>(
                  (static_cast<__uint128_t>(m) * k) % keys.pub.n));
  }
}

TEST_F(PaillierTest, WrongKeyDecryptsGarbage) {
  Rng other_rng(777);
  const PaillierKeyPair other = paillier_keygen(12, other_rng);
  const std::uint64_t c = keys.pub.encrypt(42, rng);
  // Decryption under an unrelated key essentially never recovers 42 (it
  // can even violate L's precondition, which throws).
  try {
    EXPECT_NE(other.priv.decrypt(c % other.pub.n_squared, other.pub), 42u);
  } catch (const LppaError&) {
    SUCCEED();
  }
}

TEST_F(PaillierTest, KeygenDeterministicPerRngState) {
  Rng a(99), b(99);
  const auto ka = paillier_keygen(10, a);
  const auto kb = paillier_keygen(10, b);
  EXPECT_EQ(ka.pub.n, kb.pub.n);
  EXPECT_EQ(ka.priv.lambda, kb.priv.lambda);
}

TEST_F(PaillierTest, CiphertextBitsTrackModulus) {
  EXPECT_GE(keys.pub.ciphertext_bits(), 40);  // ~2x 2x12-bit primes
  EXPECT_LE(keys.pub.ciphertext_bits(), 48);
}

class PaillierKeySizes : public ::testing::TestWithParam<int> {};

TEST_P(PaillierKeySizes, RoundTripAcrossSizes) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
  const auto keys = paillier_keygen(GetParam(), rng);
  for (std::uint64_t m : {0ULL, 15ULL, 255ULL}) {
    if (m >= keys.pub.n) continue;
    EXPECT_EQ(keys.priv.decrypt(keys.pub.encrypt(m, rng), keys.pub), m);
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, PaillierKeySizes,
                         ::testing::Values(4, 6, 8, 10, 12, 14, 16));

}  // namespace
}  // namespace lppa::crypto
