#include "crypto/hmac.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace lppa::crypto {
namespace {

Bytes str_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

// RFC 4231 test case 1: 20-byte 0x0b key, "Hi There".
TEST(HmacRawKey, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Bytes msg = str_bytes("Hi There");
  EXPECT_EQ(hmac_sha256_raw_key(key, msg).hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2: key "Jefe", msg "what do ya want for nothing?".
TEST(HmacRawKey, Rfc4231Case2) {
  EXPECT_EQ(hmac_sha256_raw_key(str_bytes("Jefe"),
                                str_bytes("what do ya want for nothing?"))
                .hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: 20-byte 0xaa key, 50 bytes of 0xdd.
TEST(HmacRawKey, Rfc4231Case3) {
  EXPECT_EQ(hmac_sha256_raw_key(Bytes(20, 0xaa), Bytes(50, 0xdd)).hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 4: 25-byte incrementing key, 50 bytes of 0xcd.
TEST(HmacRawKey, Rfc4231Case4) {
  Bytes key(25);
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = static_cast<std::uint8_t>(i + 1);
  EXPECT_EQ(hmac_sha256_raw_key(key, Bytes(50, 0xcd)).hex(),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

// RFC 4231 test case 6: 131-byte 0xaa key (forces key pre-hashing).
TEST(HmacRawKey, Rfc4231Case6OversizedKey) {
  EXPECT_EQ(
      hmac_sha256_raw_key(
          Bytes(131, 0xaa),
          str_bytes("Test Using Larger Than Block-Size Key - Hash Key First"))
          .hex(),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// RFC 4231 test case 7: oversized key AND long message.
TEST(HmacRawKey, Rfc4231Case7) {
  EXPECT_EQ(hmac_sha256_raw_key(
                Bytes(131, 0xaa),
                str_bytes("This is a test using a larger than block-size key "
                          "and a larger than block-size data. The key needs "
                          "to be hashed before being used by the HMAC "
                          "algorithm."))
                .hex(),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

TEST(HmacSecretKey, MatchesRawKeyPath) {
  lppa::Rng rng(1);
  const SecretKey key = SecretKey::generate(rng);
  const Bytes msg = str_bytes("some message");
  const Bytes raw_key(key.bytes().begin(), key.bytes().end());
  EXPECT_EQ(hmac_sha256(key, msg), hmac_sha256_raw_key(raw_key, msg));
}

TEST(HmacSecretKey, StringOverloadMatchesByteOverload) {
  lppa::Rng rng(2);
  const SecretKey key = SecretKey::generate(rng);
  EXPECT_EQ(hmac_sha256(key, "payload"),
            hmac_sha256(key, str_bytes("payload")));
}

TEST(HmacSecretKey, DifferentKeysDifferentMacs) {
  lppa::Rng rng(3);
  const SecretKey k1 = SecretKey::generate(rng);
  const SecretKey k2 = SecretKey::generate(rng);
  EXPECT_NE(hmac_sha256(k1, "m"), hmac_sha256(k2, "m"));
}

TEST(HmacSecretKey, DifferentMessagesDifferentMacs) {
  lppa::Rng rng(4);
  const SecretKey key = SecretKey::generate(rng);
  EXPECT_NE(hmac_sha256(key, "m1"), hmac_sha256(key, "m2"));
}

TEST(HmacU64, EncodesLittleEndian) {
  lppa::Rng rng(5);
  const SecretKey key = SecretKey::generate(rng);
  const std::uint64_t v = 0x0123456789abcdefULL;
  Bytes le(8);
  for (int i = 0; i < 8; ++i) le[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v >> (8 * i));
  EXPECT_EQ(hmac_sha256_u64(key, v), hmac_sha256(key, le));
}

TEST(HmacU64, DistinctValuesDistinctDigests) {
  lppa::Rng rng(6);
  const SecretKey key = SecretKey::generate(rng);
  // The protocol relies on HMAC being injective in practice over the
  // numericalised prefixes; spot-check a dense range.
  std::set<Digest> seen;
  for (std::uint64_t v = 0; v < 2000; ++v) {
    EXPECT_TRUE(seen.insert(hmac_sha256_u64(key, v)).second) << v;
  }
}

TEST(HmacIncremental, ChunkSizeNeverMatters) {
  // Property: any partition of the message into update() calls yields
  // the same MAC.
  lppa::Rng rng(8);
  const SecretKey key = SecretKey::generate(rng);
  Bytes msg(257);
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.below(256));
  const Digest expected = hmac_sha256(key, msg);
  for (std::size_t chunk : {1u, 3u, 16u, 63u, 64u, 65u, 256u}) {
    HmacSha256 mac(key);
    for (std::size_t off = 0; off < msg.size(); off += chunk) {
      const std::size_t take = std::min(chunk, msg.size() - off);
      mac.update(std::span<const std::uint8_t>(msg.data() + off, take));
    }
    EXPECT_EQ(mac.finalize(), expected) << "chunk " << chunk;
  }
}

TEST(HmacIncremental, MatchesOneShot) {
  lppa::Rng rng(7);
  const SecretKey key = SecretKey::generate(rng);
  const Bytes msg = str_bytes("split me into pieces");
  HmacSha256 mac(key);
  mac.update(std::span<const std::uint8_t>(msg.data(), 6));
  mac.update(std::span<const std::uint8_t>(msg.data() + 6, msg.size() - 6));
  EXPECT_EQ(mac.finalize(), hmac_sha256(key, msg));
}

// ------------------------------------------------------------------ ctx

// Every RFC 4231 case, driven explicitly through HmacKeyCtx::from_raw_key
// so the midstate-cached path (not just the convenience wrappers built on
// it) is pinned against the published vectors.  Covers short keys
// (zero-padding), an oversized key (pre-hashing), and messages shorter
// and longer than one compression block.
TEST(HmacKeyCtxRfc4231, AllCasesThroughMidstatePath) {
  struct Case {
    Bytes key;
    Bytes msg;
    const char* hex;
  };
  Bytes case4_key(25);
  for (std::size_t i = 0; i < case4_key.size(); ++i) {
    case4_key[i] = static_cast<std::uint8_t>(i + 1);
  }
  const Case cases[] = {
      {Bytes(20, 0x0b), str_bytes("Hi There"),
       "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"},
      {str_bytes("Jefe"), str_bytes("what do ya want for nothing?"),
       "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"},
      {Bytes(20, 0xaa), Bytes(50, 0xdd),
       "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"},
      {case4_key, Bytes(50, 0xcd),
       "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"},
      {Bytes(131, 0xaa),
       str_bytes("Test Using Larger Than Block-Size Key - Hash Key First"),
       "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"},
      {Bytes(131, 0xaa),
       str_bytes("This is a test using a larger than block-size key "
                 "and a larger than block-size data. The key needs "
                 "to be hashed before being used by the HMAC "
                 "algorithm."),
       "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"},
  };
  for (const Case& c : cases) {
    const HmacKeyCtx ctx = HmacKeyCtx::from_raw_key(c.key);
    EXPECT_EQ(ctx.mac(c.msg).hex(), c.hex);
    // The context is reusable: a second mac() from the same midstates
    // must not be perturbed by the first.
    EXPECT_EQ(ctx.mac(c.msg).hex(), c.hex);
  }
}

TEST(HmacKeyCtx, SecretKeyCtorMatchesRawKeyCtor) {
  lppa::Rng rng(9);
  const SecretKey key = SecretKey::generate(rng);
  const HmacKeyCtx a(key);
  const HmacKeyCtx b = HmacKeyCtx::from_raw_key(key.bytes());
  const Bytes msg = str_bytes("midstate");
  EXPECT_EQ(a.mac(msg), b.mac(msg));
}

TEST(HmacKeyCtx, MacU64MatchesOneShot) {
  lppa::Rng rng(10);
  const SecretKey key = SecretKey::generate(rng);
  const HmacKeyCtx ctx(key);
  for (std::uint64_t v : {0ull, 1ull, 0xffull, 0x0123456789abcdefull, ~0ull}) {
    EXPECT_EQ(ctx.mac_u64(v), hmac_sha256_u64(key, v)) << v;
  }
}

// Property: the batch API is digest-for-digest identical to per-call
// hmac_sha256_u64 for random keys and values — this is what lets
// prefix/hashed_set switch to the batched path without any behavioural
// review of its callers.
TEST(HmacBatch, EquivalentToPerCallForRandomKeysAndValues) {
  lppa::Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const SecretKey key = SecretKey::generate(rng);
    const std::size_t count = static_cast<std::size_t>(rng.below(65));
    std::vector<std::uint64_t> values(count);
    for (auto& v : values) v = rng.next();
    std::vector<Digest> batch(count);
    hmac_sha256_u64_batch(key, values, batch);
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(batch[i], hmac_sha256_u64(key, values[i]))
          << "trial " << trial << " index " << i;
    }
  }
}

TEST(HmacBatch, EmptyBatchIsANoop) {
  lppa::Rng rng(12);
  const SecretKey key = SecretKey::generate(rng);
  hmac_sha256_u64_batch(key, {}, {});
}

TEST(HmacBatch, MismatchedSpansThrow) {
  lppa::Rng rng(13);
  const SecretKey key = SecretKey::generate(rng);
  const std::uint64_t v = 7;
  std::vector<Digest> out(2);
  EXPECT_THROW(
      hmac_sha256_u64_batch(key, std::span<const std::uint64_t>(&v, 1), out),
      lppa::LppaError);
}

}  // namespace
}  // namespace lppa::crypto
