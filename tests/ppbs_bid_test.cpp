#include "core/ppbs_bid.h"

#include <gtest/gtest.h>

#include <map>

#include "crypto/sealed_box.h"

namespace lppa::core {
namespace {

// ------------------------------------------------------------- policies

TEST(ZeroDisguisePolicy, NoneKeepsZero) {
  const auto p = ZeroDisguisePolicy::none(15);
  EXPECT_EQ(p.bmax(), 15u);
  EXPECT_DOUBLE_EQ(p.replace_prob(), 0.0);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(p.sample(rng), 0u);
}

TEST(ZeroDisguisePolicy, UniformSplitsReplaceMass) {
  const auto p = ZeroDisguisePolicy::uniform(10, 0.4);
  EXPECT_NEAR(p.replace_prob(), 0.4, 1e-12);
  for (Money t = 1; t <= 10; ++t) {
    EXPECT_NEAR(p.probs()[static_cast<std::size_t>(t)], 0.04, 1e-12);
  }
}

TEST(ZeroDisguisePolicy, LinearWeightsDecrease) {
  const auto p = ZeroDisguisePolicy::linear(10, 0.5);
  for (Money t = 1; t < 10; ++t) {
    EXPECT_GE(p.probs()[static_cast<std::size_t>(t)],
              p.probs()[static_cast<std::size_t>(t) + 1]);
  }
  double total = 0.0;
  for (double q : p.probs()) total += q;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZeroDisguisePolicy, BestProtectionIsFlat) {
  const auto p = ZeroDisguisePolicy::best_protection(9);
  for (double q : p.probs()) EXPECT_NEAR(q, 0.1, 1e-12);
}

TEST(ZeroDisguisePolicy, FromProbsValidates) {
  EXPECT_THROW(ZeroDisguisePolicy::from_probs({1.0}), LppaError);     // bmax 0
  EXPECT_THROW(ZeroDisguisePolicy::from_probs({0.5, 0.6}), LppaError);  // sum
  EXPECT_THROW(ZeroDisguisePolicy::from_probs({1.5, -0.5}), LppaError);
  EXPECT_NO_THROW(ZeroDisguisePolicy::from_probs({0.25, 0.5, 0.25}));
}

TEST(ZeroDisguisePolicy, SampleFollowsDistribution) {
  const auto p = ZeroDisguisePolicy::from_probs({0.5, 0.0, 0.5});
  Rng rng(9);
  std::map<Money, int> counts;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[p.sample(rng)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.5, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.5, 0.02);
}

// --------------------------------------------------------------- params

TEST(BidEncodingParams, ScaledBoundsAndWidth) {
  const BidEncodingParams e{15, 3, 4};
  EXPECT_EQ(e.max_effective(), 18u);
  EXPECT_EQ(e.scaled_max(), 75u);  // 4*19 - 1
  EXPECT_EQ(e.scaled_width(), 7);
  const BidEncodingParams basic{14, 0, 1};
  EXPECT_EQ(basic.scaled_max(), 14u);
  EXPECT_EQ(basic.scaled_width(), 4);  // the paper's w=4 example
}

TEST(BidEncodingParams, ValidationRejectsDegenerates) {
  EXPECT_THROW((BidEncodingParams{0, 0, 1}).validate(), LppaError);
  EXPECT_THROW((BidEncodingParams{15, 0, 0}).validate(), LppaError);
  // Overflowing the prefix width cap.
  EXPECT_THROW(
      (BidEncodingParams{~0ULL >> 2, 0, 8}).validate(), LppaError);
}

TEST(PpbsBidConfig, BasicDisablesEveryFix) {
  const auto cfg = PpbsBidConfig::basic(14);
  EXPECT_EQ(cfg.enc.rd, 0u);
  EXPECT_EQ(cfg.enc.cr, 1u);
  EXPECT_FALSE(cfg.per_channel_keys);
  EXPECT_FALSE(cfg.pad_range_sets);
  EXPECT_DOUBLE_EQ(cfg.policy.replace_prob(), 0.0);
}

TEST(PpbsBidConfig, AdvancedRequiresMatchingPolicy) {
  EXPECT_THROW(PpbsBidConfig::advanced(15, 3, 4,
                                       ZeroDisguisePolicy::uniform(10, 0.5)),
               LppaError);
}

// --------------------------------------------------------------- payload

TEST(SealedBidPayload, RoundTrip) {
  const SealedBidPayload p{7, 31};
  const auto restored = SealedBidPayload::deserialize(p.serialize());
  EXPECT_EQ(restored, p);
}

TEST(SealedBidPayload, RejectsWrongLength) {
  Bytes wire = SealedBidPayload{1, 2}.serialize();
  wire.push_back(0);
  EXPECT_THROW(SealedBidPayload::deserialize(wire), LppaError);
  wire.resize(8);
  EXPECT_THROW(SealedBidPayload::deserialize(wire), LppaError);
}

// ------------------------------------------------------------- submitter

struct SubmitterTest : ::testing::Test {
  Rng rng{2024};
  crypto::SecretKey gb = crypto::SecretKey::generate(rng);
  crypto::SecretKey gc = crypto::SecretKey::generate(rng);

  SealedBidPayload open(const ChannelBidSubmission& sub) {
    const crypto::SealedBox box(gc);
    const auto plain = box.open(sub.sealed);
    EXPECT_TRUE(plain.has_value());
    return SealedBidPayload::deserialize(*plain);
  }
};

TEST_F(SubmitterTest, PositiveBidLandsInItsScaledSlot) {
  const auto cfg = PpbsBidConfig::advanced(15, 3, 4,
                                           ZeroDisguisePolicy::none(15));
  const BidSubmitter submitter(cfg, gb, gc);
  for (Money v = 1; v <= 15; ++v) {
    const auto sub = submitter.encode_bid(0, v, rng);
    const auto payload = open(sub);
    EXPECT_EQ(payload.true_bid, v);
    // Slot: [cr*(v+rd), cr*(v+rd+1) - 1].
    EXPECT_GE(payload.scaled, 4 * (v + 3));
    EXPECT_LE(payload.scaled, 4 * (v + 4) - 1);
  }
}

TEST_F(SubmitterTest, TrueZeroMapsIntoZeroBand) {
  const auto cfg = PpbsBidConfig::advanced(15, 3, 4,
                                           ZeroDisguisePolicy::none(15));
  const BidSubmitter submitter(cfg, gb, gc);
  for (int i = 0; i < 50; ++i) {
    const auto payload = open(submitter.encode_bid(0, 0, rng));
    EXPECT_EQ(payload.true_bid, 0u);
    EXPECT_LE(payload.scaled / 4, 3u);  // effective in [0, rd]
  }
}

TEST_F(SubmitterTest, DisguisedZeroLooksPositiveButSealsZero) {
  const auto cfg = PpbsBidConfig::advanced(
      15, 3, 4, ZeroDisguisePolicy::uniform(15, 1.0));  // always disguise
  const BidSubmitter submitter(cfg, gb, gc);
  for (int i = 0; i < 50; ++i) {
    const auto payload = open(submitter.encode_bid(0, 0, rng));
    EXPECT_EQ(payload.true_bid, 0u);
    EXPECT_GT(payload.scaled / 4, 3u);  // effective beyond the zero band
    EXPECT_LE(payload.scaled / 4, 18u);
  }
}

TEST_F(SubmitterTest, RejectsBidAboveBmax) {
  const BidSubmitter submitter(PpbsBidConfig::basic(10), gb, gc);
  EXPECT_THROW(submitter.encode_bid(0, 11, rng), LppaError);
}

TEST_F(SubmitterTest, RangeSetsPaddedToWorstCase) {
  const auto cfg = PpbsBidConfig::advanced(15, 3, 4,
                                           ZeroDisguisePolicy::none(15));
  const BidSubmitter submitter(cfg, gb, gc);
  const int w = cfg.enc.scaled_width();
  for (Money v : {Money{0}, Money{7}, Money{15}}) {
    const auto sub = submitter.encode_bid(0, v, rng);
    EXPECT_EQ(sub.range_set.size(), prefix::max_range_prefixes(w));
    EXPECT_EQ(sub.value_family.size(), static_cast<std::size_t>(w) + 1);
  }
}

TEST_F(SubmitterTest, BasicSchemeLeavesRangeCardinalityVariable) {
  const BidSubmitter submitter(PpbsBidConfig::basic(14), gb, gc);
  const auto lo = submitter.encode_bid(0, 5, rng);
  const auto hi = submitter.encode_bid(0, 10, rng);
  EXPECT_NE(lo.range_set.size(), hi.range_set.size());
}

TEST_F(SubmitterTest, EncryptedGeIsOrderPreserving) {
  const BidSubmitter submitter(PpbsBidConfig::basic(14), gb, gc);
  std::vector<ChannelBidSubmission> subs;
  for (Money v = 0; v <= 14; ++v) subs.push_back(submitter.encode_bid(0, v, rng));
  for (Money a = 0; a <= 14; ++a) {
    for (Money b = 0; b <= 14; ++b) {
      EXPECT_EQ(encrypted_ge(subs[a], subs[b]), a >= b)
          << "a=" << a << " b=" << b;
    }
  }
}

TEST_F(SubmitterTest, PaperExampleBidsOrderedCorrectly) {
  // Fig. 3: bids {6, 10, 0, 5} with bmax 14 — 10 dominates all.
  const BidSubmitter submitter(PpbsBidConfig::basic(14), gb, gc);
  std::vector<ChannelBidSubmission> subs;
  for (Money v : {Money{6}, Money{10}, Money{0}, Money{5}}) {
    subs.push_back(submitter.encode_bid(0, v, rng));
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(encrypted_ge(subs[1], subs[i]), true);
  }
  EXPECT_TRUE(encrypted_ge(subs[0], subs[3]));   // 6 >= 5
  EXPECT_FALSE(encrypted_ge(subs[0], subs[1]));  // 6 < 10
}

TEST_F(SubmitterTest, PerChannelKeysBreakCrossChannelComparison) {
  const auto cfg = PpbsBidConfig::advanced(15, 0, 1,
                                           ZeroDisguisePolicy::none(15));
  const BidSubmitter submitter(cfg, gb, gc);
  Money hits = 0;
  for (int round = 0; round < 30; ++round) {
    const auto big_ch0 = submitter.encode_bid(0, 15, rng);
    const auto small_ch1 = submitter.encode_bid(1, 1, rng);
    // Cross-channel "comparison" must be meaningless noise (no shared
    // key => no intersections at all).
    if (encrypted_ge(big_ch0, small_ch1)) ++hits;
  }
  EXPECT_EQ(hits, 0u);
}

TEST_F(SubmitterTest, SharedKeyModeAllowsCrossChannelComparison) {
  const BidSubmitter submitter(PpbsBidConfig::basic(14), gb, gc);
  const auto big_ch0 = submitter.encode_bid(0, 14, rng);
  const auto small_ch1 = submitter.encode_bid(1, 1, rng);
  // This is precisely the leak the advanced scheme closes.
  EXPECT_TRUE(encrypted_ge(big_ch0, small_ch1));
}

TEST_F(SubmitterTest, ChannelKeyDerivation) {
  const auto adv = PpbsBidConfig::advanced(15, 3, 4,
                                           ZeroDisguisePolicy::none(15));
  const BidSubmitter advanced(adv, gb, gc);
  EXPECT_NE(advanced.channel_key(0), advanced.channel_key(1));
  EXPECT_EQ(advanced.channel_key(2),
            derive_channel_key(gb, 2, /*per_channel_keys=*/true));
  const BidSubmitter basic(PpbsBidConfig::basic(14), gb, gc);
  EXPECT_EQ(basic.channel_key(0), basic.channel_key(1));
}

TEST_F(SubmitterTest, SubmitCoversAllChannels) {
  const BidSubmitter submitter(PpbsBidConfig::basic(14), gb, gc);
  const auto sub = submitter.submit({1, 2, 3, 4, 5}, rng);
  EXPECT_EQ(sub.channels.size(), 5u);
  EXPECT_GT(sub.wire_size(), 0u);
}

TEST_F(SubmitterTest, ChannelSubmissionSerializeRoundTrip) {
  const auto cfg = PpbsBidConfig::advanced(15, 3, 4,
                                           ZeroDisguisePolicy::none(15));
  const BidSubmitter submitter(cfg, gb, gc);
  const auto sub = submitter.encode_bid(2, 9, rng);
  ByteWriter w;
  sub.serialize(w);
  ByteReader r(std::span<const std::uint8_t>(w.data()));
  const auto restored = ChannelBidSubmission::deserialize(r);
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(restored, sub);
}

TEST_F(SubmitterTest, BidSubmissionSerializeRoundTrip) {
  const BidSubmitter submitter(PpbsBidConfig::basic(14), gb, gc);
  const auto sub = submitter.submit({3, 0, 14, 7}, rng);
  const Bytes wire = sub.serialize();
  const auto restored = BidSubmission::deserialize(wire);
  EXPECT_EQ(restored, sub);
  // Round-tripped submissions stay comparable / TTP-openable.
  EXPECT_EQ(encrypted_ge(restored.channels[2], restored.channels[0]),
            encrypted_ge(sub.channels[2], sub.channels[0]));
}

TEST_F(SubmitterTest, BidSubmissionDeserializeRejectsTrailingBytes) {
  const BidSubmitter submitter(PpbsBidConfig::basic(14), gb, gc);
  Bytes wire = submitter.submit({3, 7}, rng).serialize();
  wire.push_back(0);
  EXPECT_THROW(BidSubmission::deserialize(wire), LppaError);
}

TEST_F(SubmitterTest, SameBidDifferentCiphertexts) {
  // With cr > 1 the same price encodes differently each time (fix (iv)).
  const auto cfg = PpbsBidConfig::advanced(15, 3, 4,
                                           ZeroDisguisePolicy::none(15));
  const BidSubmitter submitter(cfg, gb, gc);
  const auto a = submitter.encode_bid(0, 7, rng);
  const auto b = submitter.encode_bid(0, 7, rng);
  // Scaled slots differ with probability 3/4; try until they do (bounded).
  bool differ = !(a.value_family == b.value_family);
  for (int i = 0; i < 20 && !differ; ++i) {
    const auto c = submitter.encode_bid(0, 7, rng);
    differ = !(c.value_family == a.value_family);
  }
  EXPECT_TRUE(differ);
}

TEST_F(SubmitterTest, ScaledOrderStillRespectsTrueOrder) {
  // cr-randomisation never reorders distinct prices.
  const auto cfg = PpbsBidConfig::advanced(15, 3, 4,
                                           ZeroDisguisePolicy::none(15));
  const BidSubmitter submitter(cfg, gb, gc);
  for (int round = 0; round < 50; ++round) {
    const Money a = 1 + rng.below(15);
    const Money b = 1 + rng.below(15);
    const auto sa = submitter.encode_bid(0, a, rng);
    const auto sb = submitter.encode_bid(0, b, rng);
    if (a > b) {
      EXPECT_TRUE(encrypted_ge(sa, sb));
    }
    if (a < b) {
      EXPECT_FALSE(encrypted_ge(sa, sb));
    }
  }
}

}  // namespace
}  // namespace lppa::core
