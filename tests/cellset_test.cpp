#include "common/cellset.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace lppa {
namespace {

TEST(CellSet, StartsEmpty) {
  CellSet s(100);
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(s.empty());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(s.contains(i));
}

TEST(CellSet, FullContainsEverything) {
  CellSet s = CellSet::full(130);  // non-multiple of 64 exercises the tail
  EXPECT_EQ(s.count(), 130u);
  for (std::size_t i = 0; i < 130; ++i) EXPECT_TRUE(s.contains(i));
}

TEST(CellSet, InsertEraseContains) {
  CellSet s(64);
  s.insert(0);
  s.insert(63);
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(63));
  EXPECT_EQ(s.count(), 2u);
  s.erase(0);
  EXPECT_FALSE(s.contains(0));
  EXPECT_EQ(s.count(), 1u);
  s.erase(0);  // erasing an absent element is a no-op
  EXPECT_EQ(s.count(), 1u);
}

TEST(CellSet, OutOfRangeThrows) {
  CellSet s(10);
  EXPECT_THROW(s.contains(10), LppaError);
  EXPECT_THROW(s.insert(10), LppaError);
  EXPECT_THROW(s.erase(10), LppaError);
}

TEST(CellSet, EmptyUniverseRejected) {
  EXPECT_THROW(CellSet s(0), LppaError);
}

TEST(CellSet, IntersectionAndUnion) {
  CellSet a(20), b(20);
  a.insert(1);
  a.insert(2);
  a.insert(3);
  b.insert(2);
  b.insert(3);
  b.insert(4);
  const CellSet i = a & b;
  EXPECT_EQ(i.count(), 2u);
  EXPECT_TRUE(i.contains(2));
  EXPECT_TRUE(i.contains(3));
  const CellSet u = a | b;
  EXPECT_EQ(u.count(), 4u);
}

TEST(CellSet, Difference) {
  CellSet a(20), b(20);
  a.insert(1);
  a.insert(2);
  b.insert(2);
  const CellSet d = a - b;
  EXPECT_EQ(d.count(), 1u);
  EXPECT_TRUE(d.contains(1));
}

TEST(CellSet, ComplementRoundTrip) {
  CellSet a(70);
  a.insert(5);
  a.insert(69);
  const CellSet c = a.complement();
  EXPECT_EQ(c.count(), 68u);
  EXPECT_FALSE(c.contains(5));
  EXPECT_FALSE(c.contains(69));
  EXPECT_EQ(c.complement(), a);
}

TEST(CellSet, ComplementTailBitsStayClear) {
  // Universe of 70 bits: complement must not set the 58 spare tail bits,
  // which would corrupt count().
  CellSet empty(70);
  EXPECT_EQ(empty.complement().count(), 70u);
}

TEST(CellSet, MixedUniverseSizesRejected) {
  CellSet a(10), b(11);
  EXPECT_THROW(a &= b, LppaError);
  EXPECT_THROW(a |= b, LppaError);
  EXPECT_THROW(a -= b, LppaError);
}

TEST(CellSet, ToIndicesAscending) {
  CellSet s(200);
  s.insert(150);
  s.insert(3);
  s.insert(64);
  EXPECT_EQ(s.to_indices(), (std::vector<std::size_t>{3, 64, 150}));
}

TEST(CellSet, ForEachVisitsExactlyMembers) {
  CellSet s(100);
  s.insert(0);
  s.insert(64);
  s.insert(99);
  std::vector<std::size_t> seen;
  s.for_each([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 64, 99}));
}

// Algebraic-identity property sweep over random sets.
class CellSetAlgebra : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CellSetAlgebra, DeMorganAndFriendsHold) {
  const std::size_t universe = GetParam();
  Rng rng(universe * 7919 + 1);
  for (int round = 0; round < 10; ++round) {
    CellSet a(universe), b(universe);
    for (std::size_t i = 0; i < universe; ++i) {
      if (rng.bernoulli(0.3)) a.insert(i);
      if (rng.bernoulli(0.5)) b.insert(i);
    }
    // De Morgan: ~(a & b) == ~a | ~b
    EXPECT_EQ((a & b).complement(), a.complement() | b.complement());
    // a - b == a & ~b
    EXPECT_EQ(a - b, a & b.complement());
    // Idempotence and absorption.
    EXPECT_EQ(a & a, a);
    EXPECT_EQ(a | a, a);
    EXPECT_EQ(a & (a | b), a);
    // Inclusion-exclusion on counts.
    EXPECT_EQ((a | b).count() + (a & b).count(), a.count() + b.count());
  }
}

INSTANTIATE_TEST_SUITE_P(UniverseSizes, CellSetAlgebra,
                         ::testing::Values(1, 63, 64, 65, 128, 1000, 10000));

}  // namespace
}  // namespace lppa
