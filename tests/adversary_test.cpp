#include "core/adversary.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "geo/synthetic_fcc.h"

namespace lppa::core {
namespace {

geo::Dataset small_dataset() {
  geo::SyntheticFccConfig cfg;
  cfg.rows = 20;
  cfg.cols = 20;
  cfg.num_channels = 6;
  return geo::generate_dataset(geo::area_preset(4), cfg, 13);
}

struct AdversaryTest : ::testing::Test {
  geo::Dataset dataset = small_dataset();
  PpbsBidConfig cfg = PpbsBidConfig::advanced(15, 3, 4,
                                              ZeroDisguisePolicy::none(15));
  TrustedThirdParty ttp{cfg, 7};
  BidSubmitter submitter{cfg, ttp.su_keys().gb_master, ttp.su_keys().gc};
  Rng rng{3};

  std::vector<BidSubmission> submit(const std::vector<BidVector>& bids) {
    std::vector<BidSubmission> subs;
    for (const auto& bv : bids) subs.push_back(submitter.submit(bv, rng));
    return subs;
  }
};

TEST_F(AdversaryTest, RankColumnsMatchesTrueBidOrder) {
  const std::vector<BidVector> bids = {
      {3, 9, 1, 0, 5, 2}, {7, 2, 4, 1, 0, 8}, {1, 5, 9, 3, 2, 0}};
  const auto subs = submit(bids);
  const LppaAdversary adversary(dataset);
  const auto ranks = adversary.rank_columns(subs);
  ASSERT_EQ(ranks.size(), 6u);
  for (std::size_t r = 0; r < 6; ++r) {
    // Expected order: users sorted by true bid descending (distinct bids
    // -> unique order; disguise off so masked order == true order up to
    // cr-slot randomisation which preserves distinct-value order).
    std::vector<UserId> expected = {0, 1, 2};
    std::stable_sort(expected.begin(), expected.end(),
                     [&](UserId a, UserId b) { return bids[a][r] > bids[b][r]; });
    EXPECT_EQ(ranks[r], expected) << "channel " << r;
  }
}

TEST_F(AdversaryTest, InferAvailableSetsTakesTopFraction) {
  std::vector<BidVector> bids;
  for (int u = 0; u < 10; ++u) {
    BidVector bv(6, 0);
    bv[0] = static_cast<Money>(u + 1);  // distinct positives on channel 0
    bids.push_back(bv);
  }
  const auto subs = submit(bids);
  const LppaAdversary adversary(dataset);
  const auto sets = adversary.infer_available_sets(subs, 0.3);
  // Top ceil(0.3*10) = 3 users on channel 0 are users 9, 8, 7.
  std::size_t with_channel0 = 0;
  for (std::size_t u = 0; u < 10; ++u) {
    const bool has0 = std::find(sets[u].begin(), sets[u].end(), 0u) !=
                      sets[u].end();
    if (has0) {
      ++with_channel0;
      EXPECT_GE(u, 7u);
    }
  }
  EXPECT_EQ(with_channel0, 3u);
}

TEST_F(AdversaryTest, TopFractionValidation) {
  const auto subs = submit({{1, 2, 3, 4, 5, 6}});
  const LppaAdversary adversary(dataset);
  EXPECT_THROW(adversary.infer_available_sets(subs, 0.0), LppaError);
  EXPECT_THROW(adversary.infer_available_sets(subs, 1.5), LppaError);
  EXPECT_NO_THROW(adversary.infer_available_sets(subs, 1.0));
}

TEST_F(AdversaryTest, AttackProducesOneEstimatePerUser) {
  const std::vector<BidVector> bids(5, BidVector{1, 0, 3, 0, 2, 0});
  const auto subs = submit(bids);
  const LppaAdversary adversary(dataset);
  const auto estimates = adversary.attack(subs, 0.5);
  EXPECT_EQ(estimates.size(), 5u);
}

TEST_F(AdversaryTest, FullFractionMarksEveryChannelForEveryone) {
  const std::vector<BidVector> bids(4, BidVector{1, 2, 3, 4, 5, 6});
  const auto subs = submit(bids);
  const LppaAdversary adversary(dataset);
  const auto sets = adversary.infer_available_sets(subs, 1.0);
  for (const auto& s : sets) EXPECT_EQ(s.size(), 6u);
}

TEST_F(AdversaryTest, DisguisePoisonsTheRanking) {
  // With full disguise, zero bidders can outrank genuine bidders; over
  // enough channels the adversary's inferred sets must contain false
  // positives.
  const auto noisy_cfg = PpbsBidConfig::advanced(
      15, 3, 4, ZeroDisguisePolicy::uniform(15, 1.0));
  const TrustedThirdParty noisy_ttp(noisy_cfg, 17);
  const BidSubmitter noisy_submitter(noisy_cfg,
                                     noisy_ttp.su_keys().gb_master,
                                     noisy_ttp.su_keys().gc);
  std::vector<BidVector> bids;
  for (int u = 0; u < 10; ++u) {
    BidVector bv(6, 0);
    if (u < 2) {
      for (auto& b : bv) b = 8;  // two genuine mid-price bidders
    }
    bids.push_back(bv);
  }
  std::vector<BidSubmission> subs;
  for (const auto& bv : bids) subs.push_back(noisy_submitter.submit(bv, rng));
  const LppaAdversary adversary(dataset);
  const auto sets = adversary.infer_available_sets(subs, 0.3);
  std::size_t false_positive_slots = 0;
  for (std::size_t u = 2; u < 10; ++u) false_positive_slots += sets[u].size();
  EXPECT_GT(false_positive_slots, 0u);
}

TEST_F(AdversaryTest, OrderedSetsMostConfidentFirst) {
  // The user under test ranks 1st on channel 3 and 2nd on channel 0,
  // and below the top-3 cut everywhere else (the other users' positive
  // bids push its zeros down): the ordered set must be exactly {3, 0}.
  std::vector<BidVector> bids;
  bids.push_back({8, 0, 0, 15, 0, 0});     // the user under test
  bids.push_back({10, 9, 9, 1, 9, 9});     // beats it on channel 0
  for (int u = 0; u < 4; ++u) bids.push_back({1, 9, 9, 1, 9, 9});
  const auto subs = submit(bids);
  const LppaAdversary adversary(dataset);
  const auto ranks = adversary.rank_columns(subs);
  const auto ordered =
      LppaAdversary::infer_ordered_sets(ranks, bids.size(), 0.5);
  EXPECT_EQ(ordered[0], (std::vector<std::size_t>{3, 0}));
}

TEST_F(AdversaryTest, OrderedSetsContainSameChannelsAsUnordered) {
  const std::vector<BidVector> bids(6, BidVector{4, 0, 9, 1, 0, 7});
  const auto subs = submit(bids);
  const LppaAdversary adversary(dataset);
  const auto ranks = adversary.rank_columns(subs);
  const auto plain = LppaAdversary::infer_from_ranks(ranks, 6, 0.5);
  auto ordered = LppaAdversary::infer_ordered_sets(ranks, 6, 0.5);
  for (std::size_t u = 0; u < 6; ++u) {
    auto a = plain[u];
    auto b = ordered[u];
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "user " << u;
  }
}

TEST_F(AdversaryTest, ConsistentAttackNeverReturnsEmptySets) {
  const auto noisy_cfg = PpbsBidConfig::advanced(
      15, 3, 4, ZeroDisguisePolicy::uniform(15, 1.0));
  const TrustedThirdParty noisy_ttp(noisy_cfg, 23);
  const BidSubmitter noisy_submitter(noisy_cfg,
                                     noisy_ttp.su_keys().gb_master,
                                     noisy_ttp.su_keys().gc);
  std::vector<BidVector> bids(8, BidVector(6, 0));  // all zeros, all forged
  std::vector<BidSubmission> subs;
  for (const auto& bv : bids) subs.push_back(noisy_submitter.submit(bv, rng));
  const LppaAdversary adversary(dataset);
  const auto ranks = adversary.rank_columns(subs);
  const auto consistent =
      adversary.attack_from_ranks(ranks, subs.size(), 0.5, true);
  for (const auto& e : consistent) EXPECT_FALSE(e.cells.empty());
  // The naive strict variant can (and here typically does) empty out.
  const auto strict =
      adversary.attack_from_ranks(ranks, subs.size(), 0.5, false);
  std::size_t empties = 0;
  for (const auto& e : strict) empties += e.cells.empty() ? 1 : 0;
  EXPECT_GT(empties, 0u);
}

TEST_F(AdversaryTest, RankingNeedsSubmissions) {
  const LppaAdversary adversary(dataset);
  EXPECT_THROW(adversary.rank_columns({}), LppaError);
}

}  // namespace
}  // namespace lppa::core
