#include "geo/whitespace_db.h"

#include <gtest/gtest.h>

#include "geo/synthetic_fcc.h"

namespace lppa::geo {
namespace {

Dataset tiny_dataset() {
  const Grid g(2, 2, 100.0);
  Dataset ds(g, -81.0);
  auto channel = [&](std::initializer_list<double> qualities) {
    std::vector<double> rssi;
    for (double q : qualities) {
      rssi.push_back(q < 0.0 ? -50.0 : -81.0 - 30.0 * q);
    }
    return finalize_channel(g, std::move(rssi), -81.0, 30.0);
  };
  // quality per cell; -1 marks "covered / unavailable".
  ds.add_channel(channel({0.7, -1.0, 0.9, 0.4}));
  ds.add_channel(channel({-1.0, -1.0, 0.5, 0.2}));
  return ds;
}

TEST(WhiteSpaceDatabase, QueryReturnsAvailableChannelsWithQuality) {
  const Dataset ds = tiny_dataset();
  const WhiteSpaceDatabase db(ds);
  const auto cell0 = db.query(Cell{0, 0});
  ASSERT_EQ(cell0.size(), 1u);
  EXPECT_EQ(cell0[0].channel, 0u);
  EXPECT_NEAR(cell0[0].quality, 0.7, 1e-9);

  const auto cell2 = db.query(Cell{1, 0});
  ASSERT_EQ(cell2.size(), 2u);
  EXPECT_NEAR(cell2[0].quality, 0.9, 1e-9);
  EXPECT_NEAR(cell2[1].quality, 0.5, 1e-9);
}

TEST(WhiteSpaceDatabase, CoveredCellHasNoChannels) {
  const Dataset ds = tiny_dataset();
  const WhiteSpaceDatabase db(ds);
  EXPECT_TRUE(db.query(Cell{0, 1}).empty());
}

TEST(WhiteSpaceDatabase, PositionQueryResolvesToContainingCell) {
  const Dataset ds = tiny_dataset();
  const WhiteSpaceDatabase db(ds);
  // Point in cell (1, 0): x in [0,100), y in [100,200).
  EXPECT_EQ(db.query(Point{50.0, 150.0}), db.query(Cell{1, 0}));
}

TEST(WhiteSpaceDatabase, PublicStatisticsMatchDataset) {
  const Dataset ds = tiny_dataset();
  const WhiteSpaceDatabase db(ds);
  EXPECT_EQ(db.quality(0, {0, 0}), ds.quality(0, {0, 0}));
  EXPECT_TRUE(db.available(0, {0, 0}));
  EXPECT_FALSE(db.available(1, {0, 0}));
  EXPECT_EQ(db.channel_count(), 2u);
  EXPECT_EQ(db.grid(), ds.grid());
}

TEST(WhiteSpaceDatabase, CountsQueries) {
  const Dataset ds = tiny_dataset();
  const WhiteSpaceDatabase db(ds);
  EXPECT_EQ(db.queries_served(), 0u);
  db.query(Cell{0, 0});
  db.query(Point{10.0, 10.0});
  EXPECT_EQ(db.queries_served(), 2u);
  // Statistic lookups are bulk-download, not metered queries.
  db.quality(0, {0, 0});
  EXPECT_EQ(db.queries_served(), 2u);
}

TEST(WhiteSpaceDatabase, ConsistentWithSyntheticDataset) {
  SyntheticFccConfig cfg;
  cfg.rows = 20;
  cfg.cols = 20;
  cfg.num_channels = 8;
  const Dataset ds = generate_dataset(area_preset(4), cfg, 9);
  const WhiteSpaceDatabase db(ds);
  for (int row = 0; row < 20; row += 5) {
    for (int col = 0; col < 20; col += 5) {
      const Cell cell{row, col};
      const auto listed = db.query(cell);
      EXPECT_EQ(listed.size(), ds.available_channels(cell).size());
      for (const auto& info : listed) {
        EXPECT_TRUE(db.available(info.channel, cell));
        EXPECT_EQ(info.quality, ds.quality(info.channel, cell));
      }
    }
  }
}

}  // namespace
}  // namespace lppa::geo
