#include "geo/grid.h"

#include <gtest/gtest.h>

#include <cmath>

namespace lppa::geo {
namespace {

TEST(Grid, RejectsDegenerateDimensions) {
  EXPECT_THROW(Grid(0, 10, 1.0), LppaError);
  EXPECT_THROW(Grid(10, 0, 1.0), LppaError);
  EXPECT_THROW(Grid(10, 10, 0.0), LppaError);
  EXPECT_THROW(Grid(10, 10, -1.0), LppaError);
}

TEST(Grid, BasicGeometry) {
  const Grid g(100, 100, 750.0);  // the paper's 75 km x 75 km area
  EXPECT_EQ(g.cell_count(), 10000u);
  EXPECT_DOUBLE_EQ(g.width_m(), 75000.0);
  EXPECT_DOUBLE_EQ(g.height_m(), 75000.0);
}

TEST(Grid, IndexCellRoundTrip) {
  const Grid g(7, 13, 10.0);
  for (std::size_t i = 0; i < g.cell_count(); ++i) {
    EXPECT_EQ(g.index(g.cell_at(i)), i);
  }
}

TEST(Grid, IndexIsRowMajor) {
  const Grid g(10, 20, 1.0);
  EXPECT_EQ(g.index({0, 0}), 0u);
  EXPECT_EQ(g.index({0, 19}), 19u);
  EXPECT_EQ(g.index({1, 0}), 20u);
  EXPECT_EQ(g.index({9, 19}), 199u);
}

TEST(Grid, BoundsChecking) {
  const Grid g(5, 5, 1.0);
  EXPECT_TRUE(g.in_bounds({0, 0}));
  EXPECT_TRUE(g.in_bounds({4, 4}));
  EXPECT_FALSE(g.in_bounds({5, 0}));
  EXPECT_FALSE(g.in_bounds({0, -1}));
  EXPECT_THROW(g.index({5, 0}), LppaError);
  EXPECT_THROW(g.cell_at(25), LppaError);
  EXPECT_THROW(g.center({-1, 0}), LppaError);
}

TEST(Grid, CenterIsCellMidpoint) {
  const Grid g(10, 10, 100.0);
  const Point p = g.center({2, 3});
  EXPECT_DOUBLE_EQ(p.x, 350.0);  // col 3 -> [300,400)
  EXPECT_DOUBLE_EQ(p.y, 250.0);  // row 2 -> [200,300)
}

TEST(Grid, CellOfInvertsCenter) {
  const Grid g(20, 30, 50.0);
  for (int r = 0; r < 20; ++r) {
    for (int c = 0; c < 30; ++c) {
      EXPECT_EQ(g.cell_of(g.center({r, c})), (Cell{r, c}));
    }
  }
}

TEST(Grid, CellOfClampsOutOfBoundsPoints) {
  const Grid g(10, 10, 10.0);
  EXPECT_EQ(g.cell_of({-5.0, -5.0}), (Cell{0, 0}));
  EXPECT_EQ(g.cell_of({1e6, 1e6}), (Cell{9, 9}));
  EXPECT_EQ(g.cell_of({100.0, 0.0}), (Cell{0, 9}));  // exactly on the edge
}

TEST(Grid, CellDistance) {
  const Grid g(10, 10, 100.0);
  EXPECT_DOUBLE_EQ(g.cell_distance_m({0, 0}, {0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(g.cell_distance_m({0, 0}, {0, 3}), 300.0);
  EXPECT_DOUBLE_EQ(g.cell_distance_m({0, 0}, {3, 4}), 500.0);
  // Symmetry.
  EXPECT_DOUBLE_EQ(g.cell_distance_m({2, 7}, {8, 1}),
                   g.cell_distance_m({8, 1}, {2, 7}));
}

TEST(PointDistance, Euclidean) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

}  // namespace
}  // namespace lppa::geo
