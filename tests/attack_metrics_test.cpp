#include "core/attack_metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace lppa::core {
namespace {

geo::Grid grid() { return geo::Grid(10, 10, 100.0); }

TEST(LocationEstimate, UniformOverCellSet) {
  CellSet s(100);
  s.insert(3);
  s.insert(42);
  const auto e = LocationEstimate::uniform_over(s);
  EXPECT_EQ(e.cells, (std::vector<std::size_t>{3, 42}));
  EXPECT_TRUE(e.weights.empty());
}

TEST(EvaluateAttack, EmptyEstimateFails) {
  const auto m = evaluate_attack(LocationEstimate{}, grid(), {0, 0});
  EXPECT_TRUE(m.failed);
  EXPECT_EQ(m.possible_cells, 0u);
  EXPECT_EQ(m.uncertainty_nats, 0.0);
  EXPECT_EQ(m.incorrectness_m, 0.0);
}

TEST(EvaluateAttack, SingletonCorrectGuess) {
  const geo::Grid g = grid();
  LocationEstimate e;
  e.cells = {g.index({4, 7})};
  const auto m = evaluate_attack(e, g, {4, 7});
  EXPECT_FALSE(m.failed);
  EXPECT_EQ(m.possible_cells, 1u);
  EXPECT_EQ(m.uncertainty_nats, 0.0);
  EXPECT_EQ(m.incorrectness_m, 0.0);
}

TEST(EvaluateAttack, SingletonWrongGuess) {
  const geo::Grid g = grid();
  LocationEstimate e;
  e.cells = {g.index({0, 0})};
  const auto m = evaluate_attack(e, g, {0, 4});
  EXPECT_TRUE(m.failed);
  EXPECT_DOUBLE_EQ(m.incorrectness_m, 400.0);
}

TEST(EvaluateAttack, UniformEntropyIsLogN) {
  const geo::Grid g = grid();
  LocationEstimate e;
  for (std::size_t i = 0; i < 8; ++i) e.cells.push_back(i);
  const auto m = evaluate_attack(e, g, {0, 0});
  EXPECT_NEAR(m.uncertainty_nats, std::log(8.0), 1e-12);
  EXPECT_FALSE(m.failed);
}

TEST(EvaluateAttack, WeightedPosterior) {
  const geo::Grid g = grid();
  LocationEstimate e;
  e.cells = {g.index({0, 0}), g.index({0, 2})};
  e.weights = {3.0, 1.0};  // P = {0.75, 0.25}
  const auto m = evaluate_attack(e, g, {0, 0});
  EXPECT_FALSE(m.failed);
  // incorrectness = 0.75*0 + 0.25*200.
  EXPECT_DOUBLE_EQ(m.incorrectness_m, 50.0);
  EXPECT_NEAR(m.uncertainty_nats,
              -(0.75 * std::log(0.75) + 0.25 * std::log(0.25)), 1e-12);
}

TEST(EvaluateAttack, RejectsMalformedWeights) {
  const geo::Grid g = grid();
  LocationEstimate e;
  e.cells = {0, 1};
  e.weights = {1.0};  // length mismatch
  EXPECT_THROW(evaluate_attack(e, g, {0, 0}), LppaError);
  e.weights = {1.0, -1.0};
  EXPECT_THROW(evaluate_attack(e, g, {0, 0}), LppaError);
  e.weights = {0.0, 0.0};
  EXPECT_THROW(evaluate_attack(e, g, {0, 0}), LppaError);
}

TEST(Aggregate, EmptyInput) {
  const auto agg = aggregate({});
  EXPECT_EQ(agg.samples, 0u);
  EXPECT_EQ(agg.failure_rate, 0.0);
}

TEST(Aggregate, MeansAndFailureRate) {
  std::vector<AttackMetrics> ms(4);
  ms[0] = {std::log(4.0), 100.0, false, 4};
  ms[1] = {std::log(2.0), 200.0, false, 2};
  ms[2] = {0.0, 0.0, true, 0};
  ms[3] = {0.0, 300.0, true, 1};
  const auto agg = aggregate(ms);
  EXPECT_EQ(agg.samples, 4u);
  EXPECT_EQ(agg.successes, 2u);
  EXPECT_DOUBLE_EQ(agg.failure_rate, 0.5);
  EXPECT_NEAR(agg.mean_uncertainty_nats,
              (std::log(4.0) + std::log(2.0)) / 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(agg.mean_incorrectness_m, 150.0);
  EXPECT_DOUBLE_EQ(agg.mean_possible_cells, 1.75);
  // Success-conditioned means only cover the first two entries.
  EXPECT_NEAR(agg.success_uncertainty_nats,
              (std::log(4.0) + std::log(2.0)) / 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(agg.success_incorrectness_m, 150.0);
  EXPECT_DOUBLE_EQ(agg.success_possible_cells, 3.0);
}

TEST(AverageAggregates, EqualWeightPerRunWeightedSuccesses) {
  AggregateMetrics a;
  a.mean_possible_cells = 10.0;
  a.failure_rate = 0.2;
  a.samples = 4;
  a.successes = 1;
  a.success_possible_cells = 8.0;
  AggregateMetrics b;
  b.mean_possible_cells = 30.0;
  b.failure_rate = 0.6;
  b.samples = 4;
  b.successes = 3;
  b.success_possible_cells = 4.0;
  const auto avg = average_aggregates({a, b});
  EXPECT_DOUBLE_EQ(avg.mean_possible_cells, 20.0);
  EXPECT_DOUBLE_EQ(avg.failure_rate, 0.4);
  EXPECT_EQ(avg.samples, 8u);
  EXPECT_EQ(avg.successes, 4u);
  // Success-conditioned: (1*8 + 3*4) / 4 = 5.
  EXPECT_DOUBLE_EQ(avg.success_possible_cells, 5.0);
}

TEST(AverageAggregates, EmptyAndSingleton) {
  EXPECT_EQ(average_aggregates({}).samples, 0u);
  AggregateMetrics a;
  a.mean_incorrectness_m = 7.0;
  a.successes = 2;
  a.success_incorrectness_m = 3.0;
  const auto avg = average_aggregates({a});
  EXPECT_DOUBLE_EQ(avg.mean_incorrectness_m, 7.0);
  EXPECT_DOUBLE_EQ(avg.success_incorrectness_m, 3.0);
}

TEST(Aggregate, AllFailedLeavesSuccessFieldsZero) {
  std::vector<AttackMetrics> ms(2);
  ms[0].failed = true;
  ms[1].failed = true;
  const auto agg = aggregate(ms);
  EXPECT_EQ(agg.successes, 0u);
  EXPECT_EQ(agg.success_possible_cells, 0.0);
  EXPECT_DOUBLE_EQ(agg.failure_rate, 1.0);
}

}  // namespace
}  // namespace lppa::core
