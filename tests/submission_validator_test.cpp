#include "core/submission_validator.h"

#include <gtest/gtest.h>

#include "core/ppbs_bid.h"
#include "core/ppbs_location.h"
#include "core/ttp.h"
#include "prefix/prefix.h"

namespace lppa::core {
namespace {

LppaConfig make_config() {
  LppaConfig config;
  config.num_channels = 3;
  config.lambda = 100;
  config.coord_width = 14;
  config.bid = PpbsBidConfig::advanced(15, 3, 4, ZeroDisguisePolicy::none(15));
  return config;
}

struct Corpus {
  LppaConfig config = make_config();
  TrustedThirdParty ttp{config.bid, 7};
  SubmissionValidator validator{config};
  Rng rng{11};

  LocationSubmission honest_location() {
    const PpbsLocation protocol(ttp.su_keys().g0, config.coord_width,
                                config.lambda, config.pad_location_ranges);
    return protocol.submit({1200, 3400}, rng);
  }

  BidSubmission honest_bid() {
    const BidSubmitter submitter(config.bid, ttp.su_keys().gb_master,
                                 ttp.su_keys().gc);
    return submitter.submit({0, 7, 15}, rng);
  }
};

/// Rebuilds a HashedPrefixSet with the digest at `drop` removed.
prefix::HashedPrefixSet truncated(const prefix::HashedPrefixSet& set,
                                  std::size_t drop) {
  std::vector<crypto::Digest> digests(set.digests().begin(),
                                      set.digests().end());
  digests.erase(digests.begin() + static_cast<std::ptrdiff_t>(drop));
  return prefix::HashedPrefixSet::from_digests(std::move(digests));
}

/// Rebuilds a HashedPrefixSet with the first digest appearing twice.
prefix::HashedPrefixSet with_duplicate(const prefix::HashedPrefixSet& set) {
  std::vector<crypto::Digest> digests(set.digests().begin(),
                                      set.digests().end());
  digests.push_back(digests.front());
  return prefix::HashedPrefixSet::from_digests(std::move(digests));
}

TEST(SubmissionValidator, AcceptsHonestSubmissions) {
  Corpus c;
  EXPECT_EQ(c.validator.validate_location(c.honest_location()), std::nullopt);
  EXPECT_EQ(c.validator.validate_bid(c.honest_bid()), std::nullopt);
  EXPECT_NO_THROW(c.validator.check_location(c.honest_location()));
  EXPECT_NO_THROW(c.validator.check_bid(c.honest_bid()));
}

TEST(SubmissionValidator, FamilySizeIsWidthPlusOne) {
  EXPECT_EQ(SubmissionValidator::family_size(14), 15u);
  Corpus c;
  const auto s = c.honest_location();
  EXPECT_EQ(s.x_family.size(), SubmissionValidator::family_size(14));
}

TEST(SubmissionValidator, RejectsTruncatedDigestFamily) {
  Corpus c;
  auto s = c.honest_location();
  s.x_family = truncated(s.x_family, 0);
  const auto error = c.validator.validate_location(s);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("x_family"), std::string::npos);
  try {
    c.validator.check_location(s);
    FAIL() << "expected LppaError";
  } catch (const LppaError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kProtocol);
  }
}

TEST(SubmissionValidator, RejectsDuplicateDigestInFamily) {
  Corpus c;
  auto s = c.honest_location();
  s.y_family = with_duplicate(truncated(s.y_family, 0));  // size stays w+1
  const auto error = c.validator.validate_location(s);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("duplicate digest"), std::string::npos);
}

TEST(SubmissionValidator, RejectsUnpaddedRangeCoverWhenPaddingIsOn) {
  Corpus c;
  ASSERT_TRUE(c.config.pad_location_ranges);
  auto s = c.honest_location();
  ASSERT_EQ(s.x_range.size(),
            prefix::max_range_prefixes(c.config.coord_width));
  s.x_range = truncated(s.x_range, 0);
  const auto error = c.validator.validate_location(s);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("x_range"), std::string::npos);
}

TEST(SubmissionValidator, RejectsOversizedRangeCover) {
  Corpus c;
  auto s = c.honest_location();
  std::vector<crypto::Digest> digests(s.y_range.digests().begin(),
                                      s.y_range.digests().end());
  crypto::Digest extra{};
  extra.bytes[0] = 0xAB;
  digests.push_back(extra);
  s.y_range = prefix::HashedPrefixSet::from_digests(std::move(digests));
  EXPECT_TRUE(c.validator.validate_location(s).has_value());
}

TEST(SubmissionValidator, RejectsWrongChannelCount) {
  Corpus c;
  auto s = c.honest_bid();
  s.channels.pop_back();
  const auto error = c.validator.validate_bid(s);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("channels"), std::string::npos);
  try {
    c.validator.check_bid(s);
    FAIL() << "expected LppaError";
  } catch (const LppaError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kProtocol);
  }
}

TEST(SubmissionValidator, RejectsOversizedBidEncoding) {
  Corpus c;
  auto s = c.honest_bid();
  // A bid value beyond scaled_max needs a wider prefix family; its w'+1
  // digests (w' > w) exceed the configured family size and are rejected —
  // this is the structural [0, bmax] bound of the issue.
  const int width = c.config.bid.enc.scaled_width();
  const std::uint64_t beyond = c.config.bid.enc.scaled_max() + 1;
  s.channels[1].value_family = prefix::HashedPrefixSet::of_value(
      c.ttp.su_keys().gb_master, beyond, width + 1);
  const auto error = c.validator.validate_bid(s);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("value_family"), std::string::npos);
}

TEST(SubmissionValidator, RejectsWrongSealedPayloadSize) {
  Corpus c;
  auto s = c.honest_bid();
  s.channels[0].sealed.ciphertext.pop_back();
  const auto error = c.validator.validate_bid(s);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("sealed payload"), std::string::npos);
}

TEST(SubmissionValidator, InProcessEngineRunsWithValidationOn) {
  // The validator is wired into LppaAuction::run (defence in depth: the
  // in-process SUs are honest by construction).  Validation must accept
  // every honest round and leave the outcome untouched.
  Corpus c;
  const std::vector<auction::SuLocation> locations{{10, 10}, {5000, 5000}};
  const std::vector<BidVector> bids{{1, 2, 3}, {4, 5, 6}};

  ASSERT_TRUE(c.config.validate_submissions);
  LppaAuction engine(c.config, 7);
  Rng rng(3);
  const auto validated = engine.run(locations, bids, rng);

  auto unchecked_config = c.config;
  unchecked_config.validate_submissions = false;
  LppaAuction unchecked(unchecked_config, 7);
  Rng rng2(3);
  const auto baseline = unchecked.run(locations, bids, rng2);
  EXPECT_EQ(validated.outcome.awards, baseline.outcome.awards);
}

}  // namespace
}  // namespace lppa::core
