#include "geo/render.h"

#include <gtest/gtest.h>

namespace lppa::geo {
namespace {

TEST(RenderAsciiMap, TinyGridExact) {
  const Grid g(2, 3, 1.0);
  CellSet s(6);
  s.insert(g.index({0, 0}));  // bottom-left
  s.insert(g.index({1, 2}));  // top-right
  // Row 1 renders first (top), row 0 last (bottom).
  EXPECT_EQ(render_ascii_map(g, s), "..#\n#..\n");
}

TEST(RenderAsciiMap, MarkOverridesGlyph) {
  const Grid g(2, 2, 1.0);
  CellSet s(4);
  s.insert(g.index({0, 1}));
  const Cell victim{0, 1};
  EXPECT_EQ(render_ascii_map(g, s, &victim), "..\n.X\n");
  const Cell elsewhere{1, 0};
  EXPECT_EQ(render_ascii_map(g, s, &elsewhere), "X.\n.#\n");
}

TEST(RenderAsciiMap, CustomGlyphs) {
  const Grid g(1, 2, 1.0);
  CellSet s(2);
  s.insert(0);
  RenderOptions opts;
  opts.set_char = 'o';
  opts.clear_char = '-';
  EXPECT_EQ(render_ascii_map(g, s, nullptr, opts), "o-\n");
}

TEST(RenderAsciiMap, DownsamplingOrsBlocks) {
  const Grid g(4, 4, 1.0);
  CellSet s(16);
  s.insert(g.index({0, 0}));  // only one cell in the bottom-left block
  RenderOptions opts;
  opts.block = 2;
  EXPECT_EQ(render_ascii_map(g, s, nullptr, opts), "..\n#.\n");
}

TEST(RenderAsciiMap, ValidatesInputs) {
  const Grid g(2, 2, 1.0);
  CellSet wrong(5);
  EXPECT_THROW(render_ascii_map(g, wrong), LppaError);
  CellSet ok(4);
  RenderOptions opts;
  opts.block = 0;
  EXPECT_THROW(render_ascii_map(g, ok, nullptr, opts), LppaError);
}

TEST(RenderAsciiField, RampCoversRange) {
  const Grid g(1, 3, 1.0);
  const auto field = [](std::size_t i) {
    return static_cast<double>(i) / 2.0;  // 0, 0.5, 1
  };
  const std::string out = render_ascii_field(g, field, 0.0, 1.0);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], ' ');   // minimum
  EXPECT_EQ(out[2], '@');   // maximum
  EXPECT_NE(out[1], ' ');   // middle is neither extreme
  EXPECT_NE(out[1], '@');
}

TEST(RenderAsciiField, ClampsOutOfRangeValues) {
  const Grid g(1, 2, 1.0);
  const auto field = [](std::size_t i) { return i == 0 ? -100.0 : 100.0; };
  const std::string out = render_ascii_field(g, field, 0.0, 1.0);
  EXPECT_EQ(out[0], ' ');
  EXPECT_EQ(out[1], '@');
}

TEST(RenderAsciiField, ValidatesRange) {
  const Grid g(1, 1, 1.0);
  EXPECT_THROW(render_ascii_field(
                   g, [](std::size_t) { return 0.0; }, 1.0, 1.0),
               LppaError);
}

}  // namespace
}  // namespace lppa::geo
