#include "proto/messages.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace lppa::proto {
namespace {

TEST(Envelope, RoundTrip) {
  Envelope e;
  e.type = MessageType::kBidSubmission;
  e.sender = 42;
  e.payload = {1, 2, 3};
  const auto restored = Envelope::deserialize(e.serialize());
  EXPECT_EQ(restored.type, e.type);
  EXPECT_EQ(restored.sender, e.sender);
  EXPECT_EQ(restored.payload, e.payload);
}

TEST(Envelope, RejectsUnknownType) {
  Envelope e;
  e.type = MessageType::kBidSubmission;
  Bytes wire = e.serialize();
  wire[0] = 99;  // invalid type tag
  EXPECT_THROW(Envelope::deserialize(wire), LppaError);
  wire[0] = 0;
  EXPECT_THROW(Envelope::deserialize(wire), LppaError);
}

TEST(Envelope, RejectsTrailingBytes) {
  Bytes wire = Envelope{}.serialize();
  wire.push_back(0);
  EXPECT_THROW(Envelope::deserialize(wire), LppaError);
}

TEST(WinnerAnnouncement, RoundTrip) {
  WinnerAnnouncement wa;
  wa.awards = {{3, 1, 9, true}, {5, 0, 0, false}};
  const auto restored = WinnerAnnouncement::deserialize(wa.serialize());
  EXPECT_EQ(restored.awards, wa.awards);
}

TEST(WinnerAnnouncement, RejectsBadValidityFlag) {
  WinnerAnnouncement wa;
  wa.awards = {{3, 1, 9, true}};
  Bytes wire = wa.serialize();
  wire.back() = 2;  // validity flag is the final byte
  EXPECT_THROW(WinnerAnnouncement::deserialize(wire), LppaError);
}

struct ChargeBatchTest : ::testing::Test {
  Rng rng{5};
  crypto::SecretKey gb = crypto::SecretKey::generate(rng);
  crypto::SecretKey gc = crypto::SecretKey::generate(rng);
  core::PpbsBidConfig cfg = core::PpbsBidConfig::advanced(
      15, 3, 4, core::ZeroDisguisePolicy::none(15));
  core::BidSubmitter submitter{cfg, gb, gc};
};

TEST_F(ChargeBatchTest, QueriesRoundTrip) {
  std::vector<core::ChargeQuery> queries;
  const auto sub1 = submitter.encode_bid(0, 7, rng);
  queries.push_back({1, 0, sub1.sealed, sub1.value_family, 0, std::nullopt,
                     std::nullopt, 0});
  const auto sub2 = submitter.encode_bid(1, 12, rng);
  const auto runner = submitter.encode_bid(1, 4, rng);
  queries.push_back({2, 1, sub2.sealed, sub2.value_family, 0, runner.sealed,
                     runner.value_family, 0});

  const Bytes wire = serialize_charge_queries(queries);
  const auto restored = deserialize_charge_queries(wire);
  ASSERT_EQ(restored.size(), 2u);
  EXPECT_EQ(restored[0].user, 1u);
  EXPECT_EQ(restored[0].sealed, queries[0].sealed);
  EXPECT_EQ(restored[0].value_family, queries[0].value_family);
  EXPECT_FALSE(restored[0].runner_up_sealed.has_value());
  EXPECT_EQ(restored[1].channel, 1u);
  ASSERT_TRUE(restored[1].runner_up_sealed.has_value());
  EXPECT_EQ(*restored[1].runner_up_sealed, *queries[1].runner_up_sealed);
  EXPECT_EQ(*restored[1].runner_up_family, *queries[1].runner_up_family);
}

TEST_F(ChargeBatchTest, EmptyBatchRoundTrips) {
  EXPECT_TRUE(deserialize_charge_queries(serialize_charge_queries({})).empty());
  EXPECT_TRUE(deserialize_charge_results(serialize_charge_results({})).empty());
}

TEST_F(ChargeBatchTest, ResultsRoundTrip) {
  const std::vector<core::ChargeResult> results = {
      {1, 0, true, 9, false}, {2, 3, false, 0, true}};
  const auto restored =
      deserialize_charge_results(serialize_charge_results(results));
  EXPECT_EQ(restored, results);
}

TEST_F(ChargeBatchTest, RoundTrippedQueryStillProcessable) {
  const core::TrustedThirdParty ttp(cfg, 11);
  const core::BidSubmitter real_submitter(cfg, ttp.su_keys().gb_master,
                                          ttp.su_keys().gc);
  const auto sub = real_submitter.encode_bid(2, 9, rng);
  const std::vector<core::ChargeQuery> queries = {
      {7, 2, sub.sealed, sub.value_family, 0, std::nullopt, std::nullopt,
       0}};
  const auto restored =
      deserialize_charge_queries(serialize_charge_queries(queries));
  const auto result = ttp.process(restored[0]);
  EXPECT_TRUE(result.valid);
  EXPECT_EQ(result.charge, 9u);
}

// Fuzz-flavoured robustness: random truncations and byte flips of valid
// messages must raise LppaError, never crash or return garbage silently.
class MessageFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MessageFuzz, TruncationsAndFlipsNeverCrash) {
  Rng rng(GetParam());
  crypto::SecretKey gb = crypto::SecretKey::generate(rng);
  crypto::SecretKey gc = crypto::SecretKey::generate(rng);
  const auto cfg = core::PpbsBidConfig::advanced(
      15, 3, 4, core::ZeroDisguisePolicy::none(15));
  const core::BidSubmitter submitter(cfg, gb, gc);
  Envelope e;
  e.type = MessageType::kBidSubmission;
  e.sender = 1;
  e.payload = submitter.submit({3, 0, 9}, rng).serialize();
  const Bytes wire = e.serialize();

  for (int round = 0; round < 50; ++round) {
    Bytes mutated = wire;
    if (rng.bernoulli(0.5) && !mutated.empty()) {
      mutated.resize(rng.below(mutated.size()));
    } else if (!mutated.empty()) {
      mutated[rng.below(mutated.size())] ^=
          static_cast<std::uint8_t>(1 + rng.below(255));
    }
    try {
      const Envelope parsed = Envelope::deserialize(mutated);
      // A flipped payload byte can still parse as an envelope; the next
      // layer must then either parse or throw cleanly too.
      (void)core::BidSubmission::deserialize(parsed.payload);
    } catch (const LppaError&) {
      // expected for most mutations
    }
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessageFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace lppa::proto
